#pragma once

// Column-generation solver for the steady-state broadcast optimum, based on
// the arborescence-packing view of the MTP problem (Edmonds' branching
// theorem, the structural result behind [5, 6]):
//
//   maximize  sum_T lambda_T                        (T: spanning arborescence)
//   s.t.      sum_T lambda_T * out_u(T) <= 1        (one-port emission,  all u)
//             sum_T lambda_T * in_u(T)  <= 1        (one-port reception, all u)
//             lambda >= 0
//   where  out_u(T) = sum of T_e over T's arcs leaving u, in_u(T) likewise.
//
// The master LP has only 2p rows; columns (arborescences) are generated
// lazily.  Given master duals y^out, y^in, the most violated column is the
// *minimum-weight spanning arborescence* under arc prices
// w_e = T_e * (y^out_{from(e)} + y^in_{to(e)}), found with Chu-Liu/Edmonds.
// Optimality is reached when that minimum weight is >= 1.
//
// Besides the optimal throughput TP* and edge loads n_e = sum_{T ∋ e}
// lambda_T, this solver yields the explicit *multi-tree schedule* -- the set
// of spanning trees and rates achieving TP* -- which the paper describes as
// the "very complicated" step it deliberately skips.  The cutting-plane
// solver (ssb_cutting_plane.hpp) computes the same value and remains as a
// cross-check; column generation is the production solver because the
// cutting-plane master stalls on platforms with massively degenerate
// optimal faces (see DESIGN.md).

#include <vector>

#include "lp/simplex.hpp"
#include "platform/platform.hpp"
#include "ssb/ssb_options.hpp"
#include "ssb/ssb_solution.hpp"

namespace bt {

// PackedTree (one tree of the optimal fractional packing) lives in
// ssb_solution.hpp so every solver's result can carry tree columns.

struct SsbPackingSolution : SsbSolution {
  /// The multi-tree schedule: trees with positive rate; sum of rates = TP*.
  /// Identical to SsbSolution::tree_columns (kept as a named field for the
  /// packing-specific callers; the base field is what downstream schedule
  /// synthesis consumes uniformly across solvers).
  std::vector<PackedTree> trees;
};

/// Shared fields (tolerance, incremental_master, port_model, engine knobs)
/// live in SsbSolveOptions so planner sessions configure both SSB masters
/// uniformly; the base's pricing defaults (Devex + dual steepest-edge) are
/// this master's production configuration.
struct SsbColumnGenOptions : SsbSolveOptions {
  std::size_t max_columns = 5000;
  /// Simplex engine for the master; only consulted on the rebuild path
  /// (the incremental master always runs the sparse LU engine).
  LpEngine master_engine = LpEngine::kSparse;
  /// Wentges dual smoothing for the pricing oracle (incremental master
  /// only): price with y_hat = alpha * y_prev + (1 - alpha) * y instead of
  /// the raw master duals, which oscillate heavily on the degenerate packing
  /// master and otherwise drive hundreds of near-redundant pricing rounds
  /// at scale (2-12x fewer rounds at 80 nodes).  When the smoothed duals
  /// mis-price (no improving column), the round re-prices with the exact
  /// duals, so convergence and optimality are unaffected.  0 disables.
  double dual_smoothing = 0.5;
  /// Publish the positive-rate columns through the base class's
  /// SsbSolution::tree_columns (on by default), so colgen-sourced schedule
  /// synthesis -- and planner sessions seeding re-solves from the column
  /// pool -- skip the edge-load decomposition heuristic entirely (the
  /// master's columns are an exact decomposition).  Disable to measure the
  /// decomposer on colgen loads.
  bool export_tree_columns = true;
};

/// Solve the SSB program by arborescence column generation.  Throws
/// bt::Error if the master LP fails or the column cap is hit.
SsbPackingSolution solve_ssb_column_generation(const Platform& platform,
                                               const SsbColumnGenOptions& options = {});

/// Production entry point used by the experiment harness: currently the
/// column-generation solver.
SsbPackingSolution solve_ssb(const Platform& platform);

}  // namespace bt
