#include "ssb/ssb_scatter.hpp"

#include <vector>

#include "lp/simplex.hpp"
#include "util/error.hpp"

namespace bt {

SsbSolution solve_scatter_optimal(const Platform& platform) {
  const Digraph& g = platform.graph();
  const NodeId source = platform.source();
  const std::size_t p = g.num_nodes();
  const std::size_t m = g.num_edges();
  BT_REQUIRE(p >= 2, "solve_scatter_optimal: need at least two nodes");

  std::vector<NodeId> destinations;
  for (NodeId w = 0; w < p; ++w) {
    if (w != source) destinations.push_back(w);
  }
  const std::size_t num_dest = destinations.size();

  LpProblem lp(Objective::kMaximize);
  auto x_var = [&](EdgeId e, std::size_t k) { return e * num_dest + k; };
  for (EdgeId e = 0; e < m; ++e) {
    for (std::size_t k = 0; k < num_dest; ++k) lp.add_variable(0.0);
  }
  const std::size_t tp_var = lp.add_variable(1.0, "TP");

  for (std::size_t k = 0; k < num_dest; ++k) {
    const NodeId w = destinations[k];
    // Net outflow TP at the source, net inflow TP at w, conservation
    // elsewhere (net forms; see ssb_direct.cpp for why gross sums are wrong).
    std::vector<LpTerm> source_row;
    for (EdgeId e : g.out_edges(source)) source_row.push_back({x_var(e, k), 1.0});
    for (EdgeId e : g.in_edges(source)) source_row.push_back({x_var(e, k), -1.0});
    source_row.push_back({tp_var, -1.0});
    lp.add_constraint(source_row, RowSense::kEqual, 0.0);

    std::vector<LpTerm> dest_row;
    for (EdgeId e : g.in_edges(w)) dest_row.push_back({x_var(e, k), 1.0});
    for (EdgeId e : g.out_edges(w)) dest_row.push_back({x_var(e, k), -1.0});
    dest_row.push_back({tp_var, -1.0});
    lp.add_constraint(dest_row, RowSense::kEqual, 0.0);

    for (NodeId v = 0; v < p; ++v) {
      if (v == source || v == w) continue;
      std::vector<LpTerm> row;
      for (EdgeId e : g.in_edges(v)) row.push_back({x_var(e, k), 1.0});
      for (EdgeId e : g.out_edges(v)) row.push_back({x_var(e, k), -1.0});
      lp.add_constraint(row, RowSense::kEqual, 0.0);
    }
  }

  // One-port occupation with n_e = sum_w x_e^w: ports directly constrain the
  // summed flows, no auxiliary n variables needed.
  for (NodeId u = 0; u < p; ++u) {
    std::vector<LpTerm> out_row, in_row;
    for (EdgeId e : g.out_edges(u)) {
      for (std::size_t k = 0; k < num_dest; ++k) {
        out_row.push_back({x_var(e, k), platform.edge_time(e)});
      }
    }
    for (EdgeId e : g.in_edges(u)) {
      for (std::size_t k = 0; k < num_dest; ++k) {
        in_row.push_back({x_var(e, k), platform.edge_time(e)});
      }
    }
    if (!out_row.empty()) lp.add_constraint(out_row, RowSense::kLessEqual, 1.0);
    if (!in_row.empty()) lp.add_constraint(in_row, RowSense::kLessEqual, 1.0);
  }

  const LpSolution lp_solution = solve_lp(lp);
  BT_REQUIRE(lp_solution.status == LpStatus::kOptimal,
             "solve_scatter_optimal: LP not optimal: " + to_string(lp_solution.status));

  SsbSolution solution;
  solution.solved = true;
  solution.throughput = lp_solution.objective;
  solution.lp_iterations = lp_solution.iterations;
  solution.edge_load.assign(m, 0.0);
  for (EdgeId e = 0; e < m; ++e) {
    for (std::size_t k = 0; k < num_dest; ++k) {
      solution.edge_load[e] += lp_solution.x[x_var(e, k)];
    }
  }
  return solution;
}

}  // namespace bt
