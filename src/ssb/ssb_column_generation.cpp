#include "ssb/ssb_column_generation.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "graph/min_arborescence.hpp"
#include "lp/simplex.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace bt {

namespace {

/// Column coefficients of a tree: its serialized occupation of every node's
/// out and in port per unit rate.
struct TreeColumn {
  std::vector<EdgeId> edges;
  std::vector<double> out_time;  ///< per node
  std::vector<double> in_time;   ///< per node
};

TreeColumn make_column(const Platform& platform, std::vector<EdgeId> edges) {
  TreeColumn column;
  column.out_time.assign(platform.num_nodes(), 0.0);
  column.in_time.assign(platform.num_nodes(), 0.0);
  for (EdgeId e : edges) {
    const double t = platform.edge_time(e);
    column.out_time[platform.graph().from(e)] += t;
    column.in_time[platform.graph().to(e)] += t;
  }
  column.edges = std::move(edges);
  return column;
}

// Master row layout (both solve paths): under the bidirectional one-port
// model, out-port of node u = row 2u, in-port = row 2u + 1; under the
// unidirectional model one combined row u per node.  Rows exist even for
// nodes without arcs so the indexing is stable as columns arrive.
std::vector<LpTerm> master_terms(const TreeColumn& column, std::size_t p, PortModel model) {
  std::vector<LpTerm> terms;
  if (model == PortModel::kBidirectional) {
    for (NodeId u = 0; u < p; ++u) {
      if (column.out_time[u] != 0.0) terms.push_back({2 * u, column.out_time[u]});
      if (column.in_time[u] != 0.0) terms.push_back({2 * u + 1, column.in_time[u]});
    }
  } else {
    for (NodeId u = 0; u < p; ++u) {
      const double occupation = column.out_time[u] + column.in_time[u];
      if (occupation != 0.0) terms.push_back({u, occupation});
    }
  }
  return terms;
}

}  // namespace

SsbPackingSolution solve_ssb_column_generation(const Platform& platform,
                                               const SsbColumnGenOptions& options) {
  const Digraph& g = platform.graph();
  const std::size_t p = g.num_nodes();
  BT_REQUIRE(p >= 2, "solve_ssb_column_generation: need at least two nodes");
  const NodeId source = platform.source();

  // Deduplicate generated trees by sorted arc list: the pricing oracle can
  // legitimately return an existing tree when the LP is already optimal.
  std::set<std::vector<EdgeId>> seen;
  std::vector<TreeColumn> columns;
  auto add_column = [&](std::vector<EdgeId> edges) {
    std::vector<EdgeId> key = edges;
    std::sort(key.begin(), key.end());
    if (!seen.insert(std::move(key)).second) return false;
    columns.push_back(make_column(platform, std::move(edges)));
    return true;
  };

  // Seed with one arborescence (cheapest total time; any spanning tree works).
  {
    const auto seed = min_arborescence(g, source, platform.edge_times());
    BT_REQUIRE(seed.found, "solve_ssb_column_generation: platform not spanning");
    add_column(seed.edges);
  }

  SsbPackingSolution solution;
  std::vector<double> lambda;

  const PortModel model = options.port_model;
  const std::size_t num_master_rows = model == PortModel::kBidirectional ? 2 * p : p;
  // Master rows for the first `ncols` columns, transposed from the
  // canonical per-column layout of master_terms (rows exist even when
  // empty, so indexing is stable as columns arrive).
  auto build_master_rows = [&](std::size_t ncols) {
    std::vector<std::vector<LpTerm>> rows(num_master_rows);
    for (std::size_t j = 0; j < ncols; ++j) {
      for (const LpTerm& t : master_terms(columns[j], p, model)) {
        rows[t.var].push_back({j, t.coeff});
      }
    }
    return rows;
  };

  // Pricing step shared by both master paths: min-weight arborescence under
  // the port duals `y` (2p or p entries, row layout as above).  Returns
  // true when an improving column was appended.
  auto price_and_append = [&](const std::vector<double>& y) {
    std::vector<double> price(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const double y_out =
          std::max(0.0, model == PortModel::kBidirectional ? y[2 * g.from(e)] : y[g.from(e)]);
      const double y_in =
          std::max(0.0, model == PortModel::kBidirectional ? y[2 * g.to(e) + 1] : y[g.to(e)]);
      price[e] = platform.edge_time(e) * (y_out + y_in);
    }
    const auto priced = min_arborescence(g, source, price);
    BT_ASSERT(priced.found, "solve_ssb_column_generation: pricing lost spanning property");

    // Reduced cost of the best tree: 1 - priced.weight.  Non-positive means
    // no improving column exists and (for exact duals) the master is optimal.
    if (priced.weight >= 1.0 - options.tolerance) return false;
    return add_column(priced.edges);  // duplicate: numerically converged
  };

  // Master engine knobs shared by both paths (the rebuild path adds its
  // engine selection and warm basis per round).
  SimplexOptions master_lp_options;
  master_lp_options.pricing = options.master_pricing;
  master_lp_options.dual_row_rule = options.master_dual_row_rule;
  master_lp_options.solve_mode = options.master_solve_mode;
  master_lp_options.collect_kernel_timing = options.master_kernel_timing;

  if (options.incremental_master) {
    // ---- Standing master: rows are fixed up front, each pricing round
    // appends one column and re-optimizes from the current basis. ----
    LpProblem lp(Objective::kMaximize);
    lp.add_variable(1.0, "tree0");
    for (const std::vector<LpTerm>& row : build_master_rows(1)) {
      lp.add_constraint(row, RowSense::kLessEqual, 1.0);
    }
    IncrementalSimplex engine(lp, master_lp_options);
    std::vector<double> smoothed;  // Wentges stabilization center
    while (columns.size() < options.max_columns) {
      ++solution.separation_rounds;
      Timer master_timer;
      const LpSolution master = engine.solve();
      solution.master_wall_ms += master_timer.millis();
      BT_REQUIRE(master.status == LpStatus::kOptimal,
                 "solve_ssb_column_generation: master LP " + to_string(master.status));
      solution.lp_iterations += master.iterations;
      lambda = master.x;

      // Price under smoothed duals; on mis-pricing fall back to the exact
      // duals, which alone certify optimality.
      const double alpha = options.dual_smoothing;
      bool progressed;
      if (alpha > 0.0 && !smoothed.empty()) {
        for (std::size_t i = 0; i < smoothed.size(); ++i) {
          smoothed[i] = alpha * smoothed[i] + (1.0 - alpha) * master.duals[i];
        }
        progressed = price_and_append(smoothed);
        if (!progressed) {
          smoothed = master.duals;  // re-center the stabilization
          progressed = price_and_append(master.duals);
        }
      } else {
        smoothed = master.duals;
        progressed = price_and_append(master.duals);
      }
      if (!progressed) break;
      engine.add_column(1.0, master_terms(columns.back(), p, model));
    }
    solution.lp_stats.accumulate(engine.engine_stats());
  } else {
    // ---- Legacy path: rebuild the whole master LP every round and re-solve
    // it from the previous optimal basis (kept for benchmarking). ----
    std::vector<std::size_t> warm_basis;  // master basis carried across rounds
    while (columns.size() < options.max_columns) {
      ++solution.separation_rounds;
      LpProblem lp(Objective::kMaximize);
      for (std::size_t j = 0; j < columns.size(); ++j) {
        lp.add_variable(1.0, "tree" + std::to_string(j));
      }
      for (const std::vector<LpTerm>& row : build_master_rows(columns.size())) {
        lp.add_constraint(row, RowSense::kLessEqual, 1.0);
      }

      SimplexOptions lp_options = master_lp_options;
      lp_options.engine = options.master_engine;
      lp_options.stats = &solution.lp_stats;
      if (!warm_basis.empty()) lp_options.warm_basis = &warm_basis;
      Timer master_timer;
      const LpSolution master = solve_lp(lp, lp_options);
      solution.master_wall_ms += master_timer.millis();
      BT_REQUIRE(master.status == LpStatus::kOptimal,
                 "solve_ssb_column_generation: master LP " + to_string(master.status));
      solution.lp_iterations += master.iterations;
      lambda = master.x;
      warm_basis = master.basis;
      if (!price_and_append(master.duals)) break;
    }
  }
  BT_REQUIRE(columns.size() < options.max_columns,
             "solve_ssb_column_generation: column cap hit without convergence");

  // ---- Assemble the solution. ----
  solution.solved = true;
  solution.edge_load.assign(g.num_edges(), 0.0);
  solution.throughput = 0.0;
  for (std::size_t j = 0; j < columns.size(); ++j) {
    const double rate = j < lambda.size() ? lambda[j] : 0.0;
    solution.throughput += rate;
    if (rate <= 0.0) continue;
    for (EdgeId e : columns[j].edges) solution.edge_load[e] += rate;
    PackedTree tree;
    tree.edges = columns[j].edges;
    tree.rate = rate;
    solution.trees.push_back(std::move(tree));
  }
  if (options.export_tree_columns) solution.tree_columns = solution.trees;
  solution.cuts_generated = columns.size();
  return solution;
}

SsbPackingSolution solve_ssb(const Platform& platform) {
  return solve_ssb_column_generation(platform);
}

}  // namespace bt
