#include "ssb/ssb_column_generation.hpp"

#include "ssb/planner_session.hpp"

namespace bt {

// Batch facade: one throwaway PlannerSession per call.  The session's
// packing path (ssb/planner_session.cpp) is the former body of this file --
// the arborescence pricing oracle, Wentges dual smoothing, the standing
// incremental master -- plus the tree-column pool that long-lived sessions
// re-seed warm re-solves from.
SsbPackingSolution solve_ssb_column_generation(const Platform& platform,
                                               const SsbColumnGenOptions& options) {
  PlannerSessionOptions session_options;
  session_options.colgen = options;
  PlannerSession session(platform, session_options);
  return session.solve_packing();
}

SsbPackingSolution solve_ssb(const Platform& platform) {
  return solve_ssb_column_generation(platform);
}

}  // namespace bt
