#pragma once

// Shared result type of the steady-state broadcast (SSB) optimum solvers.
//
// Both solvers compute, for a platform under the bidirectional one-port
// model, the optimal MTP throughput TP* of program (2) of the paper and the
// per-arc message loads n_{u,v} at an optimal solution.  TP* is the absolute
// reference all STP heuristics are compared against, and the loads feed the
// LP-based heuristics (Algorithms 6 and 7).

#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"
#include "lp/engine_stats.hpp"

namespace bt {

/// Port model of the steady-state broadcast program.  The paper works under
/// the bidirectional one-port model (a node's send port and receive port
/// serialize independently, so out- and in-occupation each get their own
/// <= 1 row); the unidirectional variant serializes sends and receives
/// through a single port (one combined row per node), which models
/// half-duplex NICs.  All three solvers accept either model and agree on
/// the optimum within it.
enum class PortModel { kBidirectional, kUnidirectional };

/// Quality tier of an answer on the planner's degradation ladder (see
/// ssb/planner_session.hpp).  Every answer the service hands out carries
/// one, so callers can always tell an exact optimum from a degraded stand-in
/// produced under a deadline or after a solver fault.
enum class PlanTier {
  /// The LP optimum from the ordinary warm/cold solve.
  kExact = 0,
  /// The LP optimum, but only after an error rollback dropped the standing
  /// masters and the retry rebuilt them from the cut/column pools.
  kRebuild = 1,
  /// A single LP-load-priced arborescence rated by its port occupation --
  /// a feasible broadcast plan, not an optimum (budget exhausted, or both
  /// LP rungs failed).  quality_gap estimates the loss.
  kHeuristic = 2,
};

inline const char* to_string(PlanTier tier) {
  switch (tier) {
    case PlanTier::kExact: return "exact";
    case PlanTier::kRebuild: return "rebuild";
    case PlanTier::kHeuristic: return "heuristic";
  }
  return "?";
}

/// One spanning broadcast tree of a fractional multi-tree packing: the
/// tree's arcs and its rate lambda_T (slices per time-unit routed along it).
struct PackedTree {
  std::vector<EdgeId> edges;  ///< spanning arborescence arcs
  double rate = 0.0;          ///< lambda_T: slices per time-unit along it
};

struct SsbSolution {
  bool solved = false;
  /// Optimal steady-state throughput TP* (slices per time-unit).
  double throughput = 0.0;
  /// n_{u,v}: fractional slices crossing each arc per time-unit at optimum,
  /// indexed by arc id.
  std::vector<double> edge_load;
  /// Weighted tree columns certifying the throughput, when the solver holds
  /// them natively: the column-generation master prices spanning
  /// arborescences, so at optimality its positive-rate columns are an exact
  /// decomposition of edge_load (rates sum to TP*).  The cutting-plane and
  /// direct solvers leave this empty; sched/tree_decomposition.hpp then
  /// reconstructs a decomposition from edge_load instead.
  std::vector<PackedTree> tree_columns;
  /// Where on the degradation ladder this answer was produced.  Batch
  /// solves always report kExact (they fail instead of degrading); the
  /// session/service ladder fills the lower tiers.
  PlanTier tier = PlanTier::kExact;
  /// Estimated relative distance to the optimum: 0 for the exact tiers; for
  /// kHeuristic, (last_good_TP - TP) / last_good_TP against the most recent
  /// LP optimum this session produced (0 when none exists yet).
  double quality_gap = 0.0;
  /// Diagnostics.
  std::size_t lp_iterations = 0;
  std::size_t separation_rounds = 0;  ///< cutting-plane solver only
  std::size_t cuts_generated = 0;     ///< cutting-plane solver only
  /// Degenerate-stall escape hatches that keep n >= ~500 platforms
  /// solvable (cutting-plane solver only; both 0 at the sizes the paper
  /// reports).  cold_polish_stalls: times a *cold* polish re-derivation
  /// (value or stable master) stalled through its pivot budget and the
  /// remaining polish flipped to the warm standing masters -- the result
  /// is then warm-polished rather than pool-determined-bitwise.
  /// stable_stalls: times the lexicographic (stable) master stalled cold
  /// with no warm fallback and the solve downgraded to the value master's
  /// loads.
  std::size_t cold_polish_stalls = 0;
  std::size_t stable_stalls = 0;
  /// Wall-clock spent inside master LP solves (excludes separation /
  /// pricing oracles), for the incremental-vs-rebuild ablations.
  double master_wall_ms = 0.0;
  /// Hypersparsity / pricing diagnostics of the master LP engine(s):
  /// FTRAN/BTRAN reach fractions, pivot and refactorization counts, the
  /// pricing mode the masters ran under (see lp/engine_stats.hpp).
  LpEngineStats lp_stats;
  /// Wall-clock of the parallel oracle phases (per-destination max-flow
  /// separation, arborescence pricing) and the pool width they ran at.
  ParallelPhaseStats phase_stats;
};

}  // namespace bt
