#pragma once

// Shared result type of the steady-state broadcast (SSB) optimum solvers.
//
// Both solvers compute, for a platform under the bidirectional one-port
// model, the optimal MTP throughput TP* of program (2) of the paper and the
// per-arc message loads n_{u,v} at an optimal solution.  TP* is the absolute
// reference all STP heuristics are compared against, and the loads feed the
// LP-based heuristics (Algorithms 6 and 7).

#include <cstddef>
#include <vector>

namespace bt {

struct SsbSolution {
  bool solved = false;
  /// Optimal steady-state throughput TP* (slices per time-unit).
  double throughput = 0.0;
  /// n_{u,v}: fractional slices crossing each arc per time-unit at optimum,
  /// indexed by arc id.
  std::vector<double> edge_load;
  /// Diagnostics.
  std::size_t lp_iterations = 0;
  std::size_t separation_rounds = 0;  ///< cutting-plane solver only
  std::size_t cuts_generated = 0;     ///< cutting-plane solver only
};

}  // namespace bt
