#pragma once

// Cutting-plane solver for the steady-state broadcast LP (program (2)).
//
// Projecting the commodity variables x^{u,v}_w out of program (2) via
// max-flow/min-cut duality leaves a compact master LP over the arc loads n_e
// and the throughput TP:
//
//   maximize TP
//   s.t.  sum_{e in out(u)} T_e n_e <= 1        (one-port emission)
//         sum_{e in in(u)}  T_e n_e <= 1        (one-port reception)
//         sum_{e in C} n_e >= TP                (every source->w cut C)
//
// Cut constraints are generated lazily: solve the master over the current
// pool, run Dinic from the source to every destination under capacities n*,
// and add the min cuts of violated destinations.  On convergence the master
// value and min_w maxflow(n*) agree, which certifies optimality (both a
// feasible primal of the projection and a feasible multi-commodity flow of
// the original program exist at that value).
//
// This is the production solver -- it handles every platform size used in
// the paper's experiments; ssb_direct.hpp validates it on small instances.

#include "platform/platform.hpp"
#include "ssb/ssb_solution.hpp"

namespace bt {

struct SsbCuttingPlaneOptions {
  double tolerance = 1e-7;
  /// Safety cap on separation rounds (each round adds >= 1 new cut).
  std::size_t max_rounds = 400;
  /// Anti-degeneracy perturbation: each load variable n_e gets objective
  /// coefficient -load_penalty * T_e, so among the (massively degenerate)
  /// TP-optimal face the master returns the minimal-serialized-load vertex.
  /// Without it the master ping-pongs between optimal vertices and the
  /// separation needs hundreds of rounds beyond ~40 nodes; with it,
  /// paper-size platforms converge in ~10.  The throughput bias is bounded
  /// by load_penalty * (total serialized load) <= load_penalty * p, far
  /// below `tolerance` at the default.  Set to 0 for the pure master.
  double load_penalty = 1e-6;
};

/// Solve the SSB program by lazy cut generation.  Throws bt::Error if the
/// master LP fails or the round cap is hit without convergence.
SsbSolution solve_ssb_cutting_plane(const Platform& platform,
                                    const SsbCuttingPlaneOptions& options = {});

}  // namespace bt
