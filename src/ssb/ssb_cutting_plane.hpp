#pragma once

// Cutting-plane solver for the steady-state broadcast LP (program (2)).
//
// Projecting the commodity variables x^{u,v}_w out of program (2) via
// max-flow/min-cut duality leaves a compact master LP over the arc loads n_e
// and the throughput TP:
//
//   maximize TP
//   s.t.  sum_{e in out(u)} T_e n_e <= 1        (one-port emission)
//         sum_{e in in(u)}  T_e n_e <= 1        (one-port reception)
//         sum_{e in C} n_e >= TP                (every source->w cut C)
//
// (under the unidirectional port model the two port rows merge into one
// combined row per node).  Cut constraints are generated lazily: solve the
// master over the current pool, run Dinic from the source to every
// destination under capacities n*, and add the min cuts of violated
// destinations.  On convergence the master value and min_w maxflow(n*)
// agree, which certifies optimality (both a feasible primal of the
// projection and a feasible multi-commodity flow of the original program
// exist at that value).
//
// The master runs *incrementally* by default: one IncrementalSimplex stands
// across separation rounds, every violated cut is appended as a row (which
// keeps the standing basis dual feasible -- the new slack is basic and the
// old duals still price every column), and reoptimize_dual() restores
// primal feasibility with a handful of dual pivots instead of re-solving
// from the slack basis.  The rebuild-every-round path is kept for
// benchmarking (SsbCuttingPlaneOptions::incremental_master = false).
//
// Degeneracy is tamed lexicographically: each round first solves the pure
// master for the throughput value TP_b only, then re-solves with TP pinned
// at TP_b minimizing a tie-broken weighted load.  The load-minimal vertex
// is generically unique, so the loads fed to the separation oracle -- and
// with them the whole cut trajectory -- are identical however the master
// is re-optimized.  The reported throughput is the *unpenalized* TP_b
// (matching the exact rational optimum of the program; the pre-PR-3 code
// folded a 1e-6 load penalty into the reported value).  A final polish
// pass re-derives value and loads with cold solves over the converged
// (sorted) pool and rounds the reported throughput to the certificate's
// resolution (~6e-11 relative), so the incremental and rebuild paths
// report bitwise-identical throughput even when degenerate min-cut ties
// let their pools differ in equivalent cuts.

#include "lp/simplex.hpp"
#include "platform/platform.hpp"
#include "ssb/ssb_options.hpp"
#include "ssb/ssb_solution.hpp"

namespace bt {

/// Shared fields (tolerance, incremental_master, port_model, engine knobs)
/// live in SsbSolveOptions so planner sessions configure both SSB masters
/// uniformly.  This struct overrides the pricing defaults: the
/// lexicographic two-master rounds re-optimize in a handful of pivots
/// each, where the candidate-list Dantzig scan wins and reference weights
/// never amortize their per-pivot pivot-row cost (see the hypersparse-core
/// ablation in BENCH_lp.json).  All combinations remain selectable.
struct SsbCuttingPlaneOptions : SsbSolveOptions {
  SsbCuttingPlaneOptions() {
    master_pricing = PricingRule::kDantzig;
    master_dual_row_rule = DualRowRule::kDevex;
  }
  /// Safety cap, applied to each of the two separation loops independently
  /// (main loop: every non-final round adds >= 1 new cut; polish loop:
  /// usually 1-2 rounds re-deriving the reported value with cold solves).
  /// SsbSolution::separation_rounds counts both loops.
  std::size_t max_rounds = 400;
  /// Anti-degeneracy stabilization: when positive, every round runs the
  /// lexicographic second stage (minimize tie-broken weighted load subject
  /// to TP >= TP_b - eps) and separates on its unique stable vertex.
  /// Without it the pure master ping-pongs between optimal vertices and
  /// the separation needs hundreds of rounds beyond ~40 nodes; with it,
  /// paper-size platforms converge in ~10.  The stabilization only steers
  /// the *search*: the reported throughput is always the unpenalized
  /// master value.  Set to 0 to disable (pure master throughout).  The
  /// magnitude is otherwise ignored -- the second stage minimizes the
  /// weighted load outright, so scaling its objective cannot change the
  /// vertex; the field stays a double for compatibility with the pre-PR-3
  /// objective-penalty options.
  double load_penalty = 1e-6;
};

/// Solve the SSB program by lazy cut generation.  Throws bt::Error if the
/// master LP fails or the round cap is hit without convergence.
SsbSolution solve_ssb_cutting_plane(const Platform& platform,
                                    const SsbCuttingPlaneOptions& options = {});

}  // namespace bt
