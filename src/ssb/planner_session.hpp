#pragma once

// PlannerSession: the long-lived, session-oriented core of the broadcast
// planner.
//
// The batch solvers (ssb_cutting_plane.hpp, ssb_column_generation.hpp)
// historically rebuilt the world per call; everything incremental built
// since -- standing IncrementalSimplex masters, Forrest-Tomlin updates,
// the cut and column pools, exported tree columns -- is exactly what an
// *online* planner needs.  A PlannerSession owns one platform together
// with all of that warm optimization state and exposes an explicit
// lifecycle:
//
//   load (construct) -> solve() -> query (throughput / edge loads /
//   schedule()) -> mutate (set_link_cost / scale_link_time / remove_link /
//   add_node) -> re-solve (the next solve() call is a warm delta re-plan)
//
// Solver state held across calls:
//
//  * Cutting plane: the deduplicated cut pool plus the standing value and
//    stable masters (see ssb_cutting_plane.hpp for the lexicographic
//    two-master scheme).  Platform deltas are translated into row/column
//    appends on the standing masters -- a changed link time "kills" the
//    arc's column with an appended  n_e <= 0  row and adds a replacement
//    column carrying the new port-row coefficients (cut rows are
//    time-free, so the replacement only re-enters the pooled cuts that
//    contain the arc); a removed link just kills its column.  Both keep
//    the standing basis dual feasible, so the next solve() re-converges
//    with a handful of dual pivots plus a short separation tail instead
//    of a cold solve.  A differential test pins warm == cold to <= 1e-9
//    relative throughput.
//
//  * Column generation: the tree-column pool.  Mutations re-seed the
//    packing master from the pooled trees (minus any tree over a removed
//    arc, with occupation coefficients refreshed from the current link
//    times) and only the pricing gap is closed -- the pool-seeded re-solve
//    of the ROADMAP.
//
//  * Schedule synthesis: the current platform version's PeriodicSchedule,
//    re-synthesized lazily after mutations.
//
// add_node is the structural fallback: pooled cuts are no longer
// source->w cuts of the grown graph and pooled trees no longer span, so
// the session resets its solver state and the next solve() is cold (by
// design -- the delta machinery covers the *numeric* mutations).
//
// Error rollback: if a solve fails (numerical breakdown that even the
// rebuild-from-pool retry cannot repair, a round/column cap, a platform
// disconnected by removals), the standing masters are discarded before
// the error propagates, the pools are kept, and the session stays usable:
// the next solve() rebuilds from the pools instead of continuing from an
// indeterminate master.
//
// A PlannerSession is NOT internally synchronized; the service layer
// (service/planner_service.hpp) wraps sessions in a many-readers /
// one-writer guard.

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "platform/platform.hpp"
#include "sched/periodic_schedule.hpp"
#include "ssb/ssb_column_generation.hpp"
#include "ssb/ssb_cutting_plane.hpp"
#include "ssb/ssb_solution.hpp"
#include "util/timer.hpp"

namespace bt {

struct PlannerSessionOptions {
  /// Options of the standing cutting-plane masters (the TP* reference
  /// path; solve()).
  SsbCuttingPlaneOptions cutting;
  /// Options of the packing master (solve_packing()); its tree columns
  /// also feed schedule() when fresh.
  SsbColumnGenOptions colgen;
  /// Re-derive the reported value and loads with *cold* master solves over
  /// the converged pool, rounding to the certificate's resolution -- the
  /// batch behavior, which makes the warm and rebuild paths report
  /// bitwise-identical throughput (see ssb_cutting_plane.hpp).  The
  /// service turns this off: re-plans then stay entirely on the standing
  /// masters (the polish rounds tighten the certificate warmly to ~3e-10
  /// relative before rounding), trading bitwise reproducibility for
  /// latency while keeping warm-vs-cold agreement well under 1e-9.
  /// At degenerate scale (n >= ~500) a cold polish solve can stall through
  /// its pivot budget; the solve then flips its remaining polish to the
  /// warm path (SsbSolution::cold_polish_stalls) instead of failing.
  bool cold_polish = true;
};

/// Session diagnostics: how queries were answered and how mutations were
/// absorbed.  LP-engine-level detail (pivots, reach fractions, appended
/// rows/columns, rhs updates) rides SsbSolution::lp_stats of the solutions
/// returned by solve()/solve_packing().
struct PlannerSessionStats {
  std::uint64_t cutting_solves = 0;   ///< solve() runs that did LP work
  std::uint64_t warm_resolves = 0;    ///< ... continuing standing masters
  std::uint64_t packing_solves = 0;   ///< solve_packing() runs with LP work
  std::uint64_t schedules_built = 0;  ///< schedule() synthesis runs
  std::uint64_t mutations = 0;        ///< platform deltas applied
  std::uint64_t kill_rows = 0;        ///< arc columns retired by n_e <= 0 rows
  std::uint64_t replacement_columns = 0;  ///< arc columns re-entered
  std::uint64_t master_rebuilds = 0;  ///< breakdown rebuilds from the pool
  std::uint64_t rollbacks = 0;        ///< failed solves that reset masters
  std::uint64_t stable_stalls = 0;    ///< lex-polish stalls downgraded to value loads
  std::uint64_t cold_polish_stalls = 0;  ///< cold polish stalls flipped to warm polish
  std::uint64_t heuristic_plans = 0;  ///< solve_laddered answers from the heuristic rung
  std::uint64_t budget_exhausts = 0;  ///< solves aborted by a ladder deadline
};

/// Deadline / degradation policy of solve_laddered().  The ladder runs
///
///   warm/cold LP solve (kExact) -> rollback + pool-rebuild LP solve
///   (kRebuild) -> LP-load-priced single arborescence (kHeuristic)
///
/// falling one rung per failure.  Budgets bound the LP rungs: a solve whose
/// cumulative master pivots reach `pivot_budget`, or whose wall clock passes
/// `wall_budget_ms`, aborts at the next separation-round boundary and the
/// ladder drops straight to the heuristic rung (a rebuild would only burn
/// the budget again).  Budgets are checked between rounds, so the first
/// round always completes -- the budget is a deadline, not a starvation
/// knob.  Pivot budgets are deterministic (pivot counts are bitwise
/// width-invariant); wall budgets are best-effort and should not be used
/// where reproducibility matters.
struct LadderOptions {
  std::size_t pivot_budget = 0;   ///< 0 = unlimited
  double wall_budget_ms = 0.0;    ///< 0 = unlimited (best-effort, non-deterministic)
  bool allow_rebuild = true;      ///< permit the kRebuild rung
  bool allow_heuristic = true;    ///< permit the kHeuristic rung (else rethrow)
};

/// One link of a node joining the platform (add_node).
struct SessionLink {
  NodeId peer = 0;
  LinkCost cost;
};

/// The grown platform of an add_node delta: `platform` plus one node wired
/// by the given incoming (peer -> new) and outgoing (new -> peer) links,
/// with per-node overheads preserved (0 for the new node).  Arc ids of the
/// old platform are stable; the new arcs follow, in-links first.  Shared by
/// PlannerSession::add_node and the service layer (which must grow its base
/// platform and every warm session consistently).
Platform grow_platform(const Platform& platform, const std::vector<SessionLink>& in_links,
                       const std::vector<SessionLink>& out_links);

/// Id remap of a shrink_platform call: old node/arc id -> new id, with
/// Digraph::npos for the removed node and its incident arcs.  Surviving ids
/// keep their relative order (they are compacted, not permuted).
struct ShrinkRemap {
  std::vector<NodeId> node_map;
  std::vector<EdgeId> edge_map;
};

/// The shrunk platform of a node-leave delta: `platform` minus `node` and
/// every arc touching it, per-node overheads preserved.  The mirror of
/// grow_platform, shared by the service layer's remove_node.  Requires node
/// != source and at least three nodes; throws (via the Platform
/// constructor) if the remaining platform cannot broadcast.
Platform shrink_platform(const Platform& platform, NodeId node, ShrinkRemap* remap = nullptr);

class PlannerSession {
 public:
  /// Load: the session copies the platform and seeds its pools.  Throws
  /// bt::Error on platforms with fewer than two nodes.
  explicit PlannerSession(Platform platform, PlannerSessionOptions options = {});

  PlannerSession(PlannerSession&&) noexcept = default;
  PlannerSession& operator=(PlannerSession&&) noexcept = default;

  const Platform& platform() const { return platform_; }
  const PlannerSessionOptions& options() const { return options_; }
  /// Bumped by every mutation; schedule/solution caches key on it.
  std::uint64_t version() const { return version_; }
  bool link_removed(EdgeId e) const;
  const PlannerSessionStats& stats() const { return stats_; }

  /// Solve (or warm re-solve) the cutting-plane masters for TP* and the
  /// stable edge loads.  Cached until the next mutation.  On failure the
  /// standing masters roll back (see header comment) and the error
  /// propagates; the session remains usable.
  const SsbSolution& solve();

  /// solve() behind the degradation ladder (see LadderOptions): never fails
  /// on a recoverable solver fault or an exhausted budget as long as the
  /// platform can broadcast at all -- it degrades instead, and the answer's
  /// SsbSolution::tier / quality_gap say how far.  A heuristic-tier answer
  /// caches like any other solution (the next mutation clears it) and
  /// carries its tree in tree_columns, so schedule() synthesizes from it
  /// directly.
  const SsbSolution& solve_laddered(const LadderOptions& ladder = {});

  /// TP* of the current platform (solve() + one field).
  double throughput() { return solve().throughput; }

  /// Solve (or pool-seeded re-solve) the packing master: TP* plus the
  /// explicit multi-tree schedule columns.  Cached until the next mutation.
  const SsbPackingSolution& solve_packing();

  /// The synthesized periodic schedule of the current platform version,
  /// built lazily and cached.  Uses the packing solution's exact tree
  /// columns when they are fresh, else decomposes the cutting-plane loads.
  const PeriodicSchedule& schedule();

  // ---- mutation layer -----------------------------------------------------

  /// Replace arc e's affine cost (degraded or re-measured link).  Also
  /// restores a removed link.  Standing masters absorb this as a warm
  /// kill-and-replace delta.
  void set_link_cost(EdgeId e, LinkCost cost);

  /// Scale arc e's cost (alpha and beta) by `factor` -- "link (u,v)
  /// degraded 30%" is factor 1/0.7 on its arcs.  Requires factor > 0.
  void scale_link_time(EdgeId e, double factor);

  /// Remove arc e: its column is killed in the standing masters and pooled
  /// trees over it are dropped.  Arc ids stay stable (the arc remains in
  /// the graph, pinned to zero load).  If removals disconnect the platform
  /// the next solve() throws; restore the link with set_link_cost.
  void remove_link(EdgeId e);

  /// Grow the platform by one node with the given incoming (peer -> new)
  /// and outgoing (new -> peer) links.  Structural fallback: resets all
  /// standing solver state; the next solve() is cold.  Returns the new
  /// node's id.  Throws if the grown platform cannot broadcast.
  NodeId add_node(const std::vector<SessionLink>& in_links,
                  const std::vector<SessionLink>& out_links);

  /// Reference cold solve of the *current* (mutated) platform through a
  /// fresh throwaway session -- what a batch caller would compute from
  /// scratch.  Differential tests and the service bench compare warm
  /// re-plans against it.
  SsbSolution solve_cold() const;

 private:
  static constexpr std::size_t kNoRow = static_cast<std::size_t>(-1);

  // cutting-plane internals
  double stabilization_weight(EdgeId e) const;
  SimplexOptions cutting_master_options(LpEngineStats* stats) const;
  SimplexOptions stable_master_options(LpEngineStats* stats) const;
  std::vector<LpTerm> cut_row(const std::vector<EdgeId>& cut, bool standing) const;
  const std::vector<EdgeId>* add_cut(std::vector<EdgeId> cut);
  LpProblem build_cutting_master(bool stable, double tp_floor, bool record);
  void reset_cutting_state();
  void run_cutting_solve();
  void kill_arc_column(EdgeId e);
  void replace_arc_column(EdgeId e);

  // packing internals
  void reset_packing_state();
  void run_packing_solve();
  void drop_pool_trees_containing(EdgeId e);

  // ladder internals
  void check_solve_budget(const SsbSolution& solution);
  SsbSolution heuristic_solution() const;

  void note_mutation();

  Platform platform_;
  PlannerSessionOptions options_;
  std::vector<char> removed_;
  std::uint64_t version_ = 0;
  PlannerSessionStats stats_;

  // ---- cutting-plane state ----
  /// Cut pool, deduplicated by sorted arc-id list.  std::set iteration is
  /// content-sorted, so any master built from the pool depends only on the
  /// pool's *content*, not on the order cuts were discovered in.
  std::set<std::vector<EdgeId>> cut_pool_;
  std::unique_ptr<IncrementalSimplex> value_master_, stable_master_;
  bool value_cold_ = true, stable_cold_ = true;
  /// Arc -> live column index in the standing masters (identity until a
  /// kill-and-replace delta retires a column), and whether the arc still
  /// has a live column at all.
  std::vector<std::size_t> var_of_arc_;
  std::vector<char> var_alive_;
  bool mapping_identity_ = true;
  std::size_t tp_var_ = 0;
  /// Value-master port-row index of each node's out/in port (the stable
  /// master's rows sit at +1 past its TP-floor row).  Under the
  /// unidirectional model both arrays hold the node's combined row.
  std::vector<std::size_t> out_row_, in_row_;
  /// Pool cuts in standing-master row order, with their value-master row.
  struct CutEntry {
    const std::vector<EdgeId>* cut;
    std::size_t value_row;
  };
  std::vector<CutEntry> master_cuts_;
  bool cutting_dirty_ = true;
  SsbSolution cutting_solution_;

  // ---- packing state ----
  std::set<std::vector<EdgeId>> tree_seen_;          ///< dedup keys (sorted)
  std::vector<std::vector<EdgeId>> tree_pool_;       ///< discovery order
  bool packing_dirty_ = true;
  SsbPackingSolution packing_solution_;

  // ---- schedule cache ----
  std::unique_ptr<PeriodicSchedule> schedule_;
  std::uint64_t schedule_version_ = 0;

  // ---- ladder state ----
  /// Budgets of the solve_laddered call in flight (0 = unlimited outside
  /// one); checked by run_cutting_solve at round boundaries.
  std::size_t pivot_budget_ = 0;
  double wall_budget_ms_ = 0.0;
  Timer budget_timer_;
  bool budget_hit_ = false;
  /// The most recent LP-optimal answer: prices the heuristic rung's
  /// arborescence and anchors quality_gap.
  double last_good_tp_ = 0.0;
  std::vector<double> last_good_loads_;
};

}  // namespace bt
