#include "ssb/ssb_cutting_plane.hpp"

#include "ssb/planner_session.hpp"

namespace bt {

// Batch facade: one throwaway PlannerSession per call.  The session's
// cutting-plane path (ssb/planner_session.cpp) is the former body of this
// file -- the standing incremental masters, the lexicographic two-master
// rounds, the cut pool, the cold polish -- so batch callers and long-lived
// planner sessions exercise the exact same solver.
SsbSolution solve_ssb_cutting_plane(const Platform& platform,
                                    const SsbCuttingPlaneOptions& options) {
  PlannerSessionOptions session_options;
  session_options.cutting = options;
  session_options.cold_polish = true;
  PlannerSession session(platform, session_options);
  return session.solve();
}

}  // namespace bt
