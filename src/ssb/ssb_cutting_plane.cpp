#include "ssb/ssb_cutting_plane.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <vector>

#include "flow/maxflow.hpp"
#include "lp/simplex.hpp"
#include "util/error.hpp"

namespace bt {

SsbSolution solve_ssb_cutting_plane(const Platform& platform,
                                    const SsbCuttingPlaneOptions& options) {
  const Digraph& g = platform.graph();
  const NodeId source = platform.source();
  const std::size_t p = g.num_nodes();
  const std::size_t m = g.num_edges();
  BT_REQUIRE(p >= 2, "solve_ssb_cutting_plane: need at least two nodes");

  // Cut pool, deduplicated by sorted arc-id list.
  std::set<std::vector<EdgeId>> cut_pool;
  auto add_cut = [&](std::vector<EdgeId> cut) {
    std::sort(cut.begin(), cut.end());
    return cut_pool.insert(std::move(cut)).second;
  };

  // Seed cuts: the singleton source cut and the singleton destination cuts.
  {
    std::vector<EdgeId> source_cut(g.out_edges(source));
    add_cut(std::move(source_cut));
    for (NodeId w = 0; w < p; ++w) {
      if (w == source) continue;
      std::vector<EdgeId> dest_cut(g.in_edges(w));
      add_cut(std::move(dest_cut));
    }
  }

  SsbSolution solution;
  MaxFlowSolver flow_solver(g);

  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    ++solution.separation_rounds;

    // ---- Master LP over the current cut pool.  Loads carry a tiny negative
    // objective weight (see SsbCuttingPlaneOptions::load_penalty) so the
    // master returns a stable vertex of the degenerate optimal face. ----
    LpProblem lp(Objective::kMaximize);
    std::vector<std::size_t> n_var(m);
    for (EdgeId e = 0; e < m; ++e) {
      n_var[e] = lp.add_variable(-options.load_penalty * platform.edge_time(e),
                                 "n" + std::to_string(e));
    }
    const std::size_t tp_var = lp.add_variable(1.0, "TP");

    for (NodeId u = 0; u < p; ++u) {
      std::vector<LpTerm> out_row, in_row;
      for (EdgeId e : g.out_edges(u)) out_row.push_back({n_var[e], platform.edge_time(e)});
      for (EdgeId e : g.in_edges(u)) in_row.push_back({n_var[e], platform.edge_time(e)});
      if (!out_row.empty()) lp.add_constraint(out_row, RowSense::kLessEqual, 1.0);
      if (!in_row.empty()) lp.add_constraint(in_row, RowSense::kLessEqual, 1.0);
    }
    // Cut rows are written TP - sum_{e in C} n_e <= 0 so every master row is
    // a <= with non-negative rhs: the all-slack basis is feasible and the
    // simplex never needs a phase-1 pass.
    for (const auto& cut : cut_pool) {
      std::vector<LpTerm> row;
      row.reserve(cut.size() + 1);
      row.push_back({tp_var, 1.0});
      for (EdgeId e : cut) row.push_back({n_var[e], -1.0});
      lp.add_constraint(row, RowSense::kLessEqual, 0.0);
    }

    const LpSolution master = solve_lp(lp);
    BT_REQUIRE(master.status == LpStatus::kOptimal,
               "solve_ssb_cutting_plane: master LP " + to_string(master.status));
    solution.lp_iterations += master.iterations;

    std::vector<double> load(m);
    for (EdgeId e = 0; e < m; ++e) load[e] = std::max(0.0, master.x[n_var[e]]);
    const double master_tp = master.x[tp_var];

    // ---- Separation: per-destination max-flow under capacities n*. ----
    double min_flow = std::numeric_limits<double>::infinity();
    bool added_cut = false;
    for (NodeId w = 0; w < p; ++w) {
      if (w == source) continue;
      MaxFlowResult flow = flow_solver.solve(source, w, load);
      min_flow = std::min(min_flow, flow.value);
      if (flow.value < master_tp - options.tolerance) {
        if (add_cut(std::move(flow.min_cut_edges))) added_cut = true;
      }
    }

    if (!added_cut || min_flow >= master_tp - options.tolerance) {
      // Converged: the master value is attainable (min_w maxflow matches).
      solution.solved = true;
      solution.throughput = std::min(master_tp, min_flow);
      solution.edge_load = std::move(load);
      solution.cuts_generated = cut_pool.size();
      return solution;
    }
  }
  BT_REQUIRE(false, "solve_ssb_cutting_plane: separation did not converge within round cap");
  return solution;  // unreachable
}

}  // namespace bt
