#include "ssb/ssb_cutting_plane.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <set>
#include <vector>

#include "flow/maxflow.hpp"
#include "lp/simplex.hpp"
#include "ssb/ssb_port_rows.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace bt {

namespace {

/// Relative spread of the per-arc stabilization weights.  Minimizing the
/// plain serialized load still leaves ties between load patterns; distinct
/// per-arc weights make the load-minimal vertex of each round generically
/// unique, so the separation trajectory (and with it the whole solver) is
/// independent of how the master happens to be re-optimized.
constexpr double kWeightTieBreak = 0.25;

double stabilization_weight(const Platform& platform, EdgeId e) {
  // Uniformly spaced fractions maximize the minimum pairwise gap, keeping
  // every alternative-optimum gap far above the master tolerance.
  const double frac = static_cast<double>(e) / static_cast<double>(platform.num_edges());
  return platform.edge_time(e) * (1.0 + kWeightTieBreak * frac);
}

/// Master tolerance: tighter than the solver default so the tie-broken
/// stabilization weights resolve alternative optima (vertex gaps are
/// ~T_e * kWeightTieBreak / m, orders of magnitude above this).  Engine
/// knobs (pricing rules, solve mode, kernel timing) come from the caller;
/// `stats` receives the LpEngineStats of cold solve_lp calls.
SimplexOptions master_options(const SsbCuttingPlaneOptions& options, LpEngineStats* stats) {
  SimplexOptions lp;
  lp.tolerance = 1e-10;
  lp.pricing = options.master_pricing;
  lp.dual_row_rule = options.master_dual_row_rule;
  lp.solve_mode = options.master_solve_mode;
  lp.collect_kernel_timing = options.master_kernel_timing;
  lp.stats = stats;
  return lp;
}

}  // namespace

SsbSolution solve_ssb_cutting_plane(const Platform& platform,
                                    const SsbCuttingPlaneOptions& options) {
  const Digraph& g = platform.graph();
  const NodeId source = platform.source();
  const std::size_t p = g.num_nodes();
  const std::size_t m = g.num_edges();
  BT_REQUIRE(p >= 2, "solve_ssb_cutting_plane: need at least two nodes");

  // Cut pool, deduplicated by sorted arc-id list.  std::set iteration is
  // content-sorted, so any master built from the pool depends only on the
  // pool's *content*, not on the order cuts were discovered in.  add_cut
  // returns the pooled cut when it was new, nullptr for duplicates.
  std::set<std::vector<EdgeId>> cut_pool;
  auto add_cut = [&](std::vector<EdgeId> cut) -> const std::vector<EdgeId>* {
    std::sort(cut.begin(), cut.end());
    const auto inserted = cut_pool.insert(std::move(cut));
    return inserted.second ? &*inserted.first : nullptr;
  };

  // Seed cuts: the singleton source cut and the singleton destination cuts.
  {
    std::vector<EdgeId> source_cut(g.out_edges(source));
    add_cut(std::move(source_cut));
    for (NodeId w = 0; w < p; ++w) {
      if (w == source) continue;
      std::vector<EdgeId> dest_cut(g.in_edges(w));
      add_cut(std::move(dest_cut));
    }
  }

  // Both masters share the variable layout n_e = e, TP = m (the incremental
  // engines rely on it when appending cut rows), the port rows and the pool
  // cut rows.  They differ in objective and in one extra row:
  //
  //  * value master:  maximize TP -- the unpenalized master.  Its optimal
  //    *value* TP_b is what the solver reports; its vertex may wander the
  //    degenerate optimal face and is never used.
  //  * stable master: minimize sum_e w_e n_e subject to TP >= TP_b - eps
  //    (lexicographic second stage, row 0).  Its vertex is generically
  //    unique thanks to the tie-broken weights, so the loads fed to the
  //    separation oracle -- and hence the cut trajectory -- are stable.
  //
  // This replaces the old single -1e-6 load-penalty objective, which both
  // biased the reported throughput down by O(penalty * load) and left the
  // returned vertex ambiguous between solve strategies.
  const std::size_t tp_var = m;
  auto cut_row = [&](const std::vector<EdgeId>& cut) {
    // TP - sum_{e in C} n_e <= 0: cut rows keep non-negative rhs, so a cold
    // value-master solve starts from the feasible all-slack basis.
    std::vector<LpTerm> row;
    row.reserve(cut.size() + 1);
    row.push_back({tp_var, 1.0});
    for (EdgeId e : cut) row.push_back({e, -1.0});
    return row;
  };
  const bool stabilized = options.load_penalty > 0.0;
  auto build_master = [&](bool stable, double tp_floor) {
    LpProblem lp(Objective::kMaximize);
    for (EdgeId e = 0; e < m; ++e) {
      const double weight = stable ? -stabilization_weight(platform, e) : 0.0;
      lp.add_variable(weight, "n" + std::to_string(e));
    }
    lp.add_variable(stable ? 0.0 : 1.0, "TP");
    if (stable) lp.add_constraint({{tp_var, 1.0}}, RowSense::kGreaterEqual, tp_floor);
    add_port_rows(lp, platform, options.port_model, [](EdgeId e) { return e; });
    for (const auto& cut : cut_pool) lp.add_constraint(cut_row(cut), RowSense::kLessEqual, 0.0);
    return lp;
  };

  SsbSolution solution;
  MaxFlowSolver flow_solver(g);

  // Separation: per-destination max-flow under capacities `load`; cuts of
  // destinations below `tp - tol` enter the pool (and `new_cuts`, for the
  // incremental masters).  Returns whether any *new* cut was added.
  std::vector<std::vector<EdgeId>> new_cuts;
  auto separate = [&](const std::vector<double>& load, double tp, double tol,
                      double& min_flow) {
    min_flow = std::numeric_limits<double>::infinity();
    new_cuts.clear();
    bool added = false;
    for (NodeId w = 0; w < p; ++w) {
      if (w == source) continue;
      MaxFlowResult flow = flow_solver.solve(source, w, load);
      min_flow = std::min(min_flow, flow.value);
      if (flow.value < tp - tol) {
        if (const std::vector<EdgeId>* cut = add_cut(std::move(flow.min_cut_edges))) {
          new_cuts.push_back(*cut);
          added = true;
        }
      }
    }
    return added;
  };

  // Standing incremental masters (value + stable); null on the rebuild path
  // and during the cold polish rounds.
  std::unique_ptr<IncrementalSimplex> value_master, stable_master;
  bool value_cold = true;   // next value solve is the engine's first
  bool stable_cold = true;

  std::vector<double> load(m);
  double master_tp = 0.0;
  double min_flow = 0.0;

  // One separation round: value solve -> TP_b, stable solve -> loads,
  // max-flow separation at tolerance `tol`.  `warm` selects the standing
  // incremental masters; the cold path rebuilds both LPs from the pool, so
  // its result is a pure function of the pool content.  `count_master`
  // accumulates the LP time into master_wall_ms -- the polish rounds are
  // excluded there, since they are identical cold work on both ablation
  // paths and would dilute the incremental-vs-rebuild master metric.
  // Returns true when converged (no new cut and the certificate holds).
  auto round = [&](bool warm, double tol, bool count_master) {
    ++solution.separation_rounds;
    Timer master_timer;

    LpSolution value_sol;
    if (warm) {
      if (value_master == nullptr) {
        value_master = std::make_unique<IncrementalSimplex>(build_master(false, 0.0),
                                                            master_options(options, &solution.lp_stats));
      }
      value_sol = value_cold ? value_master->solve() : value_master->reoptimize_dual();
      value_cold = false;
      if (value_sol.status != LpStatus::kOptimal) {
        // Numerical breakdown of the standing master (drifted basis the
        // engine could not repair): the pool fully determines the model,
        // so rebuild it cold and continue incrementally from there.  Fold
        // the replaced instance's lifetime stats in first.
        solution.lp_stats.accumulate(value_master->engine_stats());
        value_master = std::make_unique<IncrementalSimplex>(
            build_master(false, 0.0), master_options(options, &solution.lp_stats));
        value_sol = value_master->solve();
      }
    } else {
      value_sol = solve_lp(build_master(false, 0.0), master_options(options, &solution.lp_stats));
    }
    BT_REQUIRE(value_sol.status == LpStatus::kOptimal,
               "solve_ssb_cutting_plane: value master " + to_string(value_sol.status));
    solution.lp_iterations += value_sol.iterations;
    master_tp = value_sol.x[tp_var];

    const double eps_lex = 1e-10 * std::max(1.0, master_tp);
    const double tp_floor = master_tp - eps_lex;
    const LpSolution* load_sol = &value_sol;
    LpSolution stable_sol;
    if (stabilized) {
      if (warm) {
        if (stable_master == nullptr) {
          stable_master = std::make_unique<IncrementalSimplex>(build_master(true, tp_floor),
                                                               master_options(options, &solution.lp_stats));
        } else {
          stable_master->set_row_rhs(0, tp_floor);
        }
        stable_sol = stable_cold ? stable_master->solve() : stable_master->reoptimize_dual();
        stable_cold = false;
        if (stable_sol.status != LpStatus::kOptimal) {
          // Numerical breakdown: rebuild the standing stable master from
          // the pool (see the value master above; stats folded in first).
          solution.lp_stats.accumulate(stable_master->engine_stats());
          stable_master = std::make_unique<IncrementalSimplex>(
              build_master(true, tp_floor), master_options(options, &solution.lp_stats));
          stable_sol = stable_master->solve();
        }
      } else {
        stable_sol = solve_lp(build_master(true, tp_floor), master_options(options, &solution.lp_stats));
      }
      BT_REQUIRE(stable_sol.status == LpStatus::kOptimal,
                 "solve_ssb_cutting_plane: stable master " + to_string(stable_sol.status));
      solution.lp_iterations += stable_sol.iterations;
      load_sol = &stable_sol;
    }
    for (EdgeId e = 0; e < m; ++e) load[e] = std::max(0.0, load_sol->x[e]);
    if (count_master) solution.master_wall_ms += master_timer.millis();

    const bool added = separate(load, master_tp, tol, min_flow);
    if (warm && !new_cuts.empty()) {
      for (const auto& cut : new_cuts) {
        value_master->append_row(cut_row(cut), RowSense::kLessEqual, 0.0);
        if (stable_master != nullptr) {
          stable_master->append_row(cut_row(cut), RowSense::kLessEqual, 0.0);
        }
      }
    }
    // Converged exactly when no *new* cut exists: every destination whose
    // min-cut value sits below master_tp - tol already has that cut in the
    // pool, so repeating the (deterministic) round cannot make progress
    // and the bracket [min_flow, master_tp] is as tight as this arithmetic
    // gets.  The exit is purely combinatorial -- comparing min_flow
    // against the tolerance here would make the stopping round flip on
    // last-ulp load differences between the warm and cold paths.
    return !added;
  };

  // ---- Separation loop at the caller's tolerance. ----
  bool converged = false;
  for (std::size_t r = 0; r < options.max_rounds && !converged; ++r) {
    converged = round(options.incremental_master, options.tolerance, /*count_master=*/true);
  }
  BT_REQUIRE(converged,
             "solve_ssb_cutting_plane: separation did not converge within round cap");

  // ---- Polish rounds: tighten the certificate to ~1e-9 relative and
  // re-derive the reported value/loads with *cold* solves, so the answer is
  // a pure function of the converged pool (the incremental and rebuild
  // paths report bitwise-identical throughput once their pools agree).
  // Without the stabilization stage (load_penalty = 0) the pure master's
  // vertex ping-pong cannot be expected to close a 3e-10 gap, so the
  // polish keeps the caller's tolerance there, as the old code did. ----
  converged = false;
  for (std::size_t r = 0; r < options.max_rounds && !converged; ++r) {
    const double polish_tol =
        stabilized ? 3e-10 * std::max(1.0, master_tp) : options.tolerance;
    converged = round(false, polish_tol, /*count_master=*/false);
  }
  BT_REQUIRE(converged, "solve_ssb_cutting_plane: polish separation did not converge");

  solution.solved = true;
  // The certificate brackets the optimum: min_flow <= TP* <= master_tp,
  // normally with master_tp - min_flow below the polish tolerance (the lex
  // floor keeps min_flow an eps_lex below the value optimum).  Report the
  // attainable end of the bracket, rounded to 2^-34 relative (~6e-11):
  // the certificate does not support finer digits, and discarding them
  // makes the reported value identical across solve strategies -- the
  // warm (incremental) and cold (rebuild) paths may legitimately pool
  // different-but-equivalent min cuts when the optimal face is degenerate,
  // which perturbs the last ulps of the solved value.
  const double raw = std::min(master_tp, min_flow);
  BT_ASSERT(raw > 0.0 && std::isfinite(raw), "solve_ssb_cutting_plane: bad throughput");
  const double grain = std::ldexp(1.0, std::ilogb(raw) - 34);
  solution.throughput = std::round(raw / grain) * grain;
  solution.edge_load = std::move(load);
  solution.cuts_generated = cut_pool.size();
  // Cold solve_lp calls accumulated into lp_stats as they ran; fold in the
  // standing incremental masters' lifetime stats.
  if (value_master != nullptr) solution.lp_stats.accumulate(value_master->engine_stats());
  if (stable_master != nullptr) solution.lp_stats.accumulate(stable_master->engine_stats());
  return solution;
}

}  // namespace bt
