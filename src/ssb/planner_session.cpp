#include "ssb/planner_session.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "flow/maxflow.hpp"
#include "graph/min_arborescence.hpp"
#include "lp/simplex.hpp"
#include "sched/orchestrate.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace bt {

namespace {

/// Relative spread of the per-arc stabilization weights.  Minimizing the
/// plain serialized load still leaves ties between load patterns; distinct
/// per-arc weights make the load-minimal vertex of each round generically
/// unique, so the separation trajectory (and with it the whole solver) is
/// independent of how the master happens to be re-optimized.
constexpr double kWeightTieBreak = 0.25;

/// Price of a removed arc in the packing pricing oracle: any arborescence
/// forced through one instantly fails the reduced-cost test (weight >= 1),
/// so removed arcs never enter the column pool and the oracle's "no
/// improving column" verdict stays an optimality certificate for the
/// surviving platform.
constexpr double kRemovedArcPrice = 1e30;

// ---- packing column helpers ------------------------------------------------

/// Column coefficients of a tree: its serialized occupation of every node's
/// out and in port per unit rate.
struct TreeColumn {
  std::vector<EdgeId> edges;
  std::vector<double> out_time;  ///< per node
  std::vector<double> in_time;   ///< per node
};

TreeColumn make_column(const Platform& platform, std::vector<EdgeId> edges) {
  TreeColumn column;
  column.out_time.assign(platform.num_nodes(), 0.0);
  column.in_time.assign(platform.num_nodes(), 0.0);
  for (EdgeId e : edges) {
    const double t = platform.edge_time(e);
    column.out_time[platform.graph().from(e)] += t;
    column.in_time[platform.graph().to(e)] += t;
  }
  column.edges = std::move(edges);
  return column;
}

// Packing master row layout (both solve paths): under the bidirectional
// one-port model, out-port of node u = row 2u, in-port = row 2u + 1; under
// the unidirectional model one combined row u per node.  Rows exist even for
// nodes without arcs so the indexing is stable as columns arrive.
std::vector<LpTerm> master_terms(const TreeColumn& column, std::size_t p, PortModel model) {
  std::vector<LpTerm> terms;
  if (model == PortModel::kBidirectional) {
    for (NodeId u = 0; u < p; ++u) {
      if (column.out_time[u] != 0.0) terms.push_back({2 * u, column.out_time[u]});
      if (column.in_time[u] != 0.0) terms.push_back({2 * u + 1, column.in_time[u]});
    }
  } else {
    for (NodeId u = 0; u < p; ++u) {
      const double occupation = column.out_time[u] + column.in_time[u];
      if (occupation != 0.0) terms.push_back({u, occupation});
    }
  }
  return terms;
}

}  // namespace

// ---- lifecycle --------------------------------------------------------------

PlannerSession::PlannerSession(Platform platform, PlannerSessionOptions options)
    : platform_(std::move(platform)), options_(std::move(options)) {
  BT_REQUIRE(platform_.num_nodes() >= 2, "PlannerSession: need at least two nodes");
  removed_.assign(platform_.num_edges(), 0);
  reset_cutting_state();
  reset_packing_state();
}

bool PlannerSession::link_removed(EdgeId e) const {
  BT_REQUIRE(e < removed_.size(), "PlannerSession::link_removed: arc out of range");
  return removed_[e] != 0;
}

// ---- cutting-plane internals ------------------------------------------------

double PlannerSession::stabilization_weight(EdgeId e) const {
  // Uniformly spaced fractions maximize the minimum pairwise gap, keeping
  // every alternative-optimum gap far above the master tolerance.
  const double frac = static_cast<double>(e) / static_cast<double>(platform_.num_edges());
  return platform_.edge_time(e) * (1.0 + kWeightTieBreak * frac);
}

/// Master tolerance: tighter than the solver default so the tie-broken
/// stabilization weights resolve alternative optima (vertex gaps are
/// ~T_e * kWeightTieBreak / m, orders of magnitude above this).  Engine
/// knobs (pricing rules, solve mode, kernel timing) come from the options;
/// `stats` receives the LpEngineStats of cold solve_lp calls and must be
/// null for the standing masters (they outlive any per-solve stats record;
/// their lifetime stats are folded in via engine_stats() instead).
SimplexOptions PlannerSession::cutting_master_options(LpEngineStats* stats) const {
  SimplexOptions lp;
  lp.tolerance = 1e-10;
  lp.pricing = options_.cutting.master_pricing;
  lp.dual_row_rule = options_.cutting.master_dual_row_rule;
  lp.solve_mode = options_.cutting.master_solve_mode;
  lp.collect_kernel_timing = options_.cutting.master_kernel_timing;
  lp.stats = stats;
  return lp;
}

/// The stable (lexicographic) master gets a flat pivot budget instead of
/// the engine's auto cap (60 * (rows + cols)).  Converging stable solves
/// use a few thousand pivots at most -- warm rounds re-optimize in a
/// handful -- so 100k is >10x headroom; but on the degenerate optimal face
/// at n >= ~500 the auto cap grows to millions and a stall would grind for
/// minutes before run_cutting_solve's downgrade path can fire.
SimplexOptions PlannerSession::stable_master_options(LpEngineStats* stats) const {
  SimplexOptions lp = cutting_master_options(stats);
  lp.max_iterations = 100000;
  return lp;
}

std::vector<LpTerm> PlannerSession::cut_row(const std::vector<EdgeId>& cut, bool standing) const {
  // TP - sum_{e in C} n_e <= 0: cut rows keep non-negative rhs, so a cold
  // value-master solve starts from the feasible all-slack basis.  Standing
  // masters address arcs through var_of_arc_ (replacement columns after
  // kill-and-replace deltas); dead arcs keep their pinned-to-zero column in
  // the row, which leaves the inequality valid.
  std::vector<LpTerm> row;
  row.reserve(cut.size() + 1);
  row.push_back({tp_var_, 1.0});
  for (EdgeId e : cut) row.push_back({standing ? var_of_arc_[e] : e, -1.0});
  return row;
}

const std::vector<EdgeId>* PlannerSession::add_cut(std::vector<EdgeId> cut) {
  std::sort(cut.begin(), cut.end());
  const auto inserted = cut_pool_.insert(std::move(cut));
  return inserted.second ? &*inserted.first : nullptr;
}

LpProblem PlannerSession::build_cutting_master(bool stable, double tp_floor, bool record) {
  const Digraph& g = platform_.graph();
  const std::size_t m = g.num_edges();
  const PortModel model = options_.cutting.port_model;

  if (record) {
    // A recorded build resets the kill-and-replace mapping: the fresh
    // master is identity-mapped again (removed arcs stay dead -- their
    // pin rows are part of the build).  Only the value master records;
    // the stable master's rows sit one past it (TP-floor row 0).
    BT_ASSERT(!stable, "PlannerSession: only the value master records its layout");
    var_of_arc_.resize(m);
    var_alive_.resize(m);
    for (EdgeId e = 0; e < m; ++e) {
      var_of_arc_[e] = e;
      var_alive_[e] = removed_[e] ? 0 : 1;
    }
    mapping_identity_ = true;
    out_row_.assign(g.num_nodes(), kNoRow);
    in_row_.assign(g.num_nodes(), kNoRow);
    master_cuts_.clear();
  }

  // Both masters share the variable layout n_e = e, TP = m (the incremental
  // engines rely on it when appending cut rows), the port rows and the pool
  // cut rows.  They differ in objective and in one extra row:
  //
  //  * value master:  maximize TP -- the unpenalized master.  Its optimal
  //    *value* TP_b is what the solver reports; its vertex may wander the
  //    degenerate optimal face and is never used.
  //  * stable master: minimize sum_e w_e n_e subject to TP >= TP_b - eps
  //    (lexicographic second stage, row 0).  Its vertex is generically
  //    unique thanks to the tie-broken weights, so the loads fed to the
  //    separation oracle -- and hence the cut trajectory -- are stable.
  LpProblem lp(Objective::kMaximize);
  for (EdgeId e = 0; e < m; ++e) {
    const double weight = stable ? -stabilization_weight(e) : 0.0;
    lp.add_variable(weight, "n" + std::to_string(e));
  }
  lp.add_variable(stable ? 0.0 : 1.0, "TP");

  std::size_t row = 0;
  if (stable) {
    lp.add_constraint({{tp_var_, 1.0}}, RowSense::kGreaterEqual, tp_floor);
    ++row;
  }
  // Port rows: the same emission as ssb_port_rows.hpp (out row then in row
  // per node, skipping empty ports), inlined so the row indices can be
  // recorded for the replacement columns of later link-cost deltas.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (model == PortModel::kBidirectional) {
      std::vector<LpTerm> out_terms, in_terms;
      for (EdgeId e : g.out_edges(u)) out_terms.push_back({e, platform_.edge_time(e)});
      for (EdgeId e : g.in_edges(u)) in_terms.push_back({e, platform_.edge_time(e)});
      if (!out_terms.empty()) {
        lp.add_constraint(out_terms, RowSense::kLessEqual, 1.0);
        if (record) out_row_[u] = row;
        ++row;
      }
      if (!in_terms.empty()) {
        lp.add_constraint(in_terms, RowSense::kLessEqual, 1.0);
        if (record) in_row_[u] = row;
        ++row;
      }
    } else {
      std::vector<LpTerm> terms;
      for (EdgeId e : g.out_edges(u)) terms.push_back({e, platform_.edge_time(e)});
      for (EdgeId e : g.in_edges(u)) terms.push_back({e, platform_.edge_time(e)});
      if (!terms.empty()) {
        lp.add_constraint(terms, RowSense::kLessEqual, 1.0);
        if (record) {
          out_row_[u] = row;
          in_row_[u] = row;
        }
        ++row;
      }
    }
  }
  for (const auto& cut : cut_pool_) {
    lp.add_constraint(cut_row(cut, /*standing=*/false), RowSense::kLessEqual, 0.0);
    if (record) master_cuts_.push_back({&cut, row});
    ++row;
  }
  // Removed arcs keep their variable (the layout is arc-indexed) but are
  // pinned to zero load.
  for (EdgeId e = 0; e < m; ++e) {
    if (removed_[e]) lp.add_constraint({{e, 1.0}}, RowSense::kLessEqual, 0.0);
  }
  return lp;
}

void PlannerSession::reset_cutting_state() {
  const Digraph& g = platform_.graph();
  const std::size_t m = g.num_edges();
  cut_pool_.clear();
  value_master_.reset();
  stable_master_.reset();
  value_cold_ = stable_cold_ = true;
  var_of_arc_.resize(m);
  var_alive_.resize(m);
  for (EdgeId e = 0; e < m; ++e) {
    var_of_arc_[e] = e;
    var_alive_[e] = removed_[e] ? 0 : 1;
  }
  mapping_identity_ = true;
  tp_var_ = m;
  out_row_.assign(g.num_nodes(), kNoRow);
  in_row_.assign(g.num_nodes(), kNoRow);
  master_cuts_.clear();
  cutting_dirty_ = true;
  cutting_solution_ = SsbSolution{};

  // Seed cuts: the singleton source cut and the singleton destination cuts.
  std::vector<EdgeId> source_cut(g.out_edges(platform_.source()));
  add_cut(std::move(source_cut));
  for (NodeId w = 0; w < g.num_nodes(); ++w) {
    if (w == platform_.source()) continue;
    std::vector<EdgeId> dest_cut(g.in_edges(w));
    add_cut(std::move(dest_cut));
  }
}

void PlannerSession::run_cutting_solve() {
  const Digraph& g = platform_.graph();
  const NodeId source = platform_.source();
  const std::size_t p = g.num_nodes();
  const std::size_t m = g.num_edges();
  const SsbCuttingPlaneOptions& options = options_.cutting;
  const bool stabilized = options.load_penalty > 0.0;
  // Degeneracy at scale (the 1000-node-ceiling item in ROADMAP.md): from a
  // few hundred nodes up the *cold* re-derivation solves can stall through
  // their whole pivot budget on the tie-broken optimal face.  Two sticky
  // downgrades keep the solve finite, each paid at most once per solve:
  //
  //  * A cold *polish* solve (value or stable) that exhausts its cap while
  //    standing masters exist flips the remaining polish rounds to the warm
  //    path (cold_polish_stalls) -- stabilization is kept, only the
  //    pool-determined-bitwise property of cold_polish is lost for that
  //    instance.
  //  * A cold *stable* solve that stalls with no warm fallback (the
  //    standing stable master's first factorization, or the rebuild
  //    ablation) drops stabilization and reports the value master's loads
  //    (stable_stalls).
  //
  // Each stall is a pure function of the pool content, so every pool width
  // downgrades at the same round and width-determinism is preserved.
  bool stabilize_active = stabilized;
  bool polish_cold_stalled = false;

  SsbSolution solution;

  // Separation: per-destination max-flow under capacities `load`; cuts of
  // destinations below `tp - tol` enter the pool (and `new_cuts`, for the
  // standing masters).  Returns whether any *new* cut was added.
  //
  // The oracle fans the destinations out over the worker pool in contiguous
  // chunks, one MaxFlowSolver per chunk (the solver's touched-arc restore
  // path mutates shared state, so instances are single-consumer -- see
  // flow/maxflow.hpp).  Each task writes only its destinations' slots of
  // `sep_results`; the min-flow reduction and the add_cut appends then run
  // serially in destination order.  solve() results depend only on
  // (source, sink, load), so the chunk layout -- and with it the pool
  // width -- changes scheduling only: the cut trajectory, and hence the
  // solution, is bitwise-identical to the serial oracle.  Solvers persist
  // across rounds so the same-capacity restore fast path still applies
  // within each round's chunk.
  ThreadPool& pool = options.pool != nullptr ? *options.pool : global_thread_pool();
  std::vector<NodeId> dests;
  dests.reserve(p - 1);
  for (NodeId w = 0; w < p; ++w) {
    if (w != source) dests.push_back(w);
  }
  const ChunkSplit split(dests.size(), pool.num_threads());
  std::vector<std::unique_ptr<MaxFlowSolver>> chunk_solver(split.chunks);
  std::vector<MaxFlowResult> chunk_scratch(split.chunks);
  struct DestResult {
    double value = 0.0;
    bool violated = false;
    std::vector<EdgeId> cut;
  };
  std::vector<DestResult> sep_results(dests.size());

  std::vector<const std::vector<EdgeId>*> new_cuts;
  auto separate = [&](const std::vector<double>& load, double tp, double tol,
                      double& min_flow) {
    // Fault hook, counted once per round in this serial section (never
    // inside the parallel fan-out), so the trigger index is width-invariant.
    if (fault_fire(FaultSite::kSeparationOracle)) {
      throw Error("fault injection: separation oracle failure");
    }
    Timer separation_timer;
    parallel_for(pool, split.chunks, [&](std::size_t c) {
      if (chunk_solver[c] == nullptr) chunk_solver[c] = std::make_unique<MaxFlowSolver>(g);
      MaxFlowSolver& solver = *chunk_solver[c];
      MaxFlowResult& flow = chunk_scratch[c];
      for (std::size_t i = split.chunk_begin(c); i < split.chunk_begin(c + 1); ++i) {
        solver.solve(source, dests[i], load, flow);
        DestResult& slot = sep_results[i];
        slot.value = flow.value;
        slot.violated = flow.value < tp - tol;
        if (slot.violated) {
          slot.cut = flow.min_cut_edges;
        } else {
          slot.cut.clear();
        }
      }
    });
    min_flow = std::numeric_limits<double>::infinity();
    new_cuts.clear();
    bool added = false;
    for (DestResult& slot : sep_results) {
      min_flow = std::min(min_flow, slot.value);
      if (slot.violated) {
        if (const std::vector<EdgeId>* cut = add_cut(std::move(slot.cut))) {
          new_cuts.push_back(cut);
          added = true;
        }
      }
    }
    solution.phase_stats.separation_wall_ms += separation_timer.millis();
    return added;
  };
  solution.phase_stats.oracle_threads = pool.num_threads();

  std::vector<double> load(m);
  double master_tp = 0.0;
  double min_flow = 0.0;

  // One separation round: value solve -> TP_b, stable solve -> loads,
  // max-flow separation at tolerance `tol`.  `warm` selects the standing
  // incremental masters; the cold path rebuilds both LPs from the pool, so
  // its result is a pure function of the pool content.  `count_master`
  // accumulates the LP time into master_wall_ms -- the polish rounds are
  // excluded there, since they are identical work on both ablation paths
  // and would dilute the incremental-vs-rebuild master metric.
  // Returns true when converged (no new cut and the certificate holds).
  auto round = [&](bool warm, double tol, bool count_master) {
    // Deadline ladder: between rounds is the only safe abort point (the
    // masters are consistent), and pivot counts are width-invariant, so a
    // pivot-budget abort fires at the same round on every pool width.
    check_solve_budget(solution);
    ++solution.separation_rounds;
    Timer master_timer;

    LpSolution value_sol;
    if (warm) {
      if (value_master_ == nullptr) {
        value_master_ = std::make_unique<IncrementalSimplex>(
            build_cutting_master(false, 0.0, /*record=*/true),
            cutting_master_options(nullptr));
        value_cold_ = true;
        // The stable master must share the (re-)recorded row layout; force
        // its rebuild from the same pool later this round.
        stable_master_.reset();
        stable_cold_ = true;
      }
      value_sol = value_cold_ ? value_master_->solve() : value_master_->reoptimize_dual();
      value_cold_ = false;
      if (value_sol.status != LpStatus::kOptimal) {
        // Numerical breakdown of the standing master (drifted basis the
        // engine could not repair): the pool fully determines the model,
        // so rebuild it cold and continue incrementally from there.  Fold
        // the replaced instance's lifetime stats in first.
        solution.lp_stats.accumulate(value_master_->engine_stats());
        ++stats_.master_rebuilds;
        value_master_ = std::make_unique<IncrementalSimplex>(
            build_cutting_master(false, 0.0, /*record=*/true),
            cutting_master_options(nullptr));
        stable_master_.reset();
        stable_cold_ = true;
        value_sol = value_master_->solve();
      }
    } else {
      SimplexOptions cold_options = cutting_master_options(&solution.lp_stats);
      // Polish re-derivations get a flat pivot cap well above any
      // non-degenerate cold polish solve seen in the sweeps, so a
      // degenerate stall escapes to the warm fallback in bounded time
      // instead of grinding through the auto cap (~60*(rows+cols)).
      if (!count_master) cold_options.max_iterations = 250000;
      value_sol = solve_lp(build_cutting_master(false, 0.0, /*record=*/false), cold_options);
      if (!count_master && value_sol.status == LpStatus::kIterationLimit &&
          value_master_ != nullptr) {
        solution.lp_iterations += value_sol.iterations;
        ++solution.cold_polish_stalls;
        ++stats_.cold_polish_stalls;
        polish_cold_stalled = true;
        return false;
      }
    }
    BT_REQUIRE(value_sol.status == LpStatus::kOptimal,
               "solve_ssb_cutting_plane: value master " + to_string(value_sol.status));
    solution.lp_iterations += value_sol.iterations;
    master_tp = value_sol.x[tp_var_];

    const double eps_lex = 1e-10 * std::max(1.0, master_tp);
    const double tp_floor = master_tp - eps_lex;
    const LpSolution* load_sol = &value_sol;
    LpSolution stable_sol;
    if (stabilize_active) {
      bool was_cold = !warm;
      if (warm) {
        if (stable_master_ == nullptr) {
          stable_master_ = std::make_unique<IncrementalSimplex>(
              build_cutting_master(true, tp_floor, /*record=*/false),
              stable_master_options(nullptr));
          stable_cold_ = true;
        } else {
          stable_master_->set_row_rhs(0, tp_floor);
        }
        was_cold = stable_cold_;
        stable_sol = stable_cold_ ? stable_master_->solve() : stable_master_->reoptimize_dual();
        stable_cold_ = false;
        if (stable_sol.status != LpStatus::kOptimal && !was_cold) {
          // Numerical breakdown: rebuild BOTH standing masters from the
          // pool.  The stable master's rows must stay one past the value
          // master's for the kill-and-replace deltas, and the value master
          // may carry append-order cut rows a pool rebuild would not
          // reproduce -- so the pair is rebuilt together (stats folded in
          // first; the value master re-solves cold next round).
          solution.lp_stats.accumulate(stable_master_->engine_stats());
          solution.lp_stats.accumulate(value_master_->engine_stats());
          ++stats_.master_rebuilds;
          value_master_ = std::make_unique<IncrementalSimplex>(
              build_cutting_master(false, 0.0, /*record=*/true),
              cutting_master_options(nullptr));
          value_cold_ = true;
          stable_master_ = std::make_unique<IncrementalSimplex>(
              build_cutting_master(true, tp_floor, /*record=*/false),
              stable_master_options(nullptr));
          stable_sol = stable_master_->solve();
          stable_cold_ = false;
          was_cold = true;
        }
      } else {
        stable_sol = solve_lp(build_cutting_master(true, tp_floor, /*record=*/false),
                              stable_master_options(&solution.lp_stats));
      }
      solution.lp_iterations += stable_sol.iterations;
      if (stable_sol.status == LpStatus::kIterationLimit && was_cold) {
        if (!warm && !count_master && value_master_ != nullptr) {
          // Degenerate stall of a cold polish re-derivation, but the
          // standing masters are available: flip the remaining polish to
          // the warm path (this round is redone there) and keep the
          // stabilization stage.
          ++solution.cold_polish_stalls;
          ++stats_.cold_polish_stalls;
          polish_cold_stalled = true;
          return false;
        }
        // Degenerate stall with no warm fallback: a cold solve exhausted
        // its pivot budget, so a rebuild cannot help.  Downgrade to the
        // value loads (load_sol already points there) and run the rest of
        // this solve unstabilized; the polish keeps the caller's tolerance
        // below.
        ++solution.stable_stalls;
        ++stats_.stable_stalls;
        stabilize_active = false;
        if (stable_master_ != nullptr) {
          solution.lp_stats.accumulate(stable_master_->engine_stats());
          stable_master_.reset();
          stable_cold_ = true;
        }
      } else {
        BT_REQUIRE(stable_sol.status == LpStatus::kOptimal,
                   "solve_ssb_cutting_plane: stable master " + to_string(stable_sol.status));
        load_sol = &stable_sol;
      }
    }
    for (EdgeId e = 0; e < m; ++e) {
      if (warm) {
        load[e] = var_alive_[e] ? std::max(0.0, load_sol->x[var_of_arc_[e]]) : 0.0;
      } else {
        load[e] = removed_[e] ? 0.0 : std::max(0.0, load_sol->x[e]);
      }
    }
    if (count_master) solution.master_wall_ms += master_timer.millis();

    const bool added = separate(load, master_tp, tol, min_flow);
    // New cuts go to the standing masters whenever they exist -- including
    // cold polish rounds, so a session's masters stay pool-complete for the
    // next warm re-plan (a batch solve never re-uses them, so this is
    // invisible there).
    if (value_master_ != nullptr && !new_cuts.empty()) {
      for (const std::vector<EdgeId>* cut : new_cuts) {
        const std::size_t value_row =
            value_master_->append_row(cut_row(*cut, /*standing=*/true), RowSense::kLessEqual, 0.0);
        master_cuts_.push_back({cut, value_row});
        if (stable_master_ != nullptr) {
          stable_master_->append_row(cut_row(*cut, /*standing=*/true), RowSense::kLessEqual, 0.0);
        }
      }
    }
    // Converged exactly when no *new* cut exists: every destination whose
    // min-cut value sits below master_tp - tol already has that cut in the
    // pool, so repeating the (deterministic) round cannot make progress
    // and the bracket [min_flow, master_tp] is as tight as this arithmetic
    // gets.  The exit is purely combinatorial -- comparing min_flow
    // against the tolerance here would make the stopping round flip on
    // last-ulp load differences between the warm and cold paths.
    return !added;
  };

  // ---- Separation loop at the caller's tolerance. ----
  bool converged = false;
  for (std::size_t r = 0; r < options.max_rounds && !converged; ++r) {
    converged = round(options.incremental_master, options.tolerance, /*count_master=*/true);
  }
  BT_REQUIRE(converged,
             "solve_ssb_cutting_plane: separation did not converge within round cap");
  // Removals can sever the source from part of the platform; the LP then
  // caps TP at 0 through an all-removed cut.  Fail with a diagnosis instead
  // of tripping the bad-throughput assert below.
  BT_REQUIRE(master_tp > 1e-12,
             "PlannerSession: platform cannot broadcast (removals cut the source off)");

  // ---- Polish rounds: tighten the certificate to ~1e-9 relative.  With
  // cold_polish the value/loads are re-derived with *cold* solves, so the
  // answer is a pure function of the converged pool (the incremental and
  // rebuild paths report bitwise-identical throughput once their pools
  // agree).  Without it (service re-plans) the standing masters polish
  // warmly at the same tolerance -- not bitwise pool-determined, but the
  // certificate still brackets TP* within the rounding grain.  A cold
  // polish solve that stalls through its pivot cap flips the remaining
  // rounds to the warm path (see the downgrade ladder above).  Without the
  // stabilization stage (load_penalty = 0, or a stable-master stall
  // downgraded the solve) the pure master's vertex
  // ping-pong cannot be expected to close a 3e-10 gap, so the polish keeps
  // the caller's tolerance there, as the old code did. ----
  bool polish_warm = !options_.cold_polish && options.incremental_master;
  converged = false;
  for (std::size_t r = 0; r < options.max_rounds && !converged; ++r) {
    const double polish_tol =
        stabilize_active ? 3e-10 * std::max(1.0, master_tp) : options.tolerance;
    converged = round(polish_warm, polish_tol, /*count_master=*/false);
    if (polish_cold_stalled) {
      polish_cold_stalled = false;
      polish_warm = true;
    }
  }
  BT_REQUIRE(converged, "solve_ssb_cutting_plane: polish separation did not converge");

  solution.solved = true;
  // The certificate brackets the optimum: min_flow <= TP* <= master_tp,
  // normally with master_tp - min_flow below the polish tolerance (the lex
  // floor keeps min_flow an eps_lex below the value optimum).  Report the
  // attainable end of the bracket, rounded to 2^-34 relative (~6e-11):
  // the certificate does not support finer digits, and discarding them
  // makes the reported value identical across solve strategies -- the
  // warm (incremental) and cold (rebuild) paths may legitimately pool
  // different-but-equivalent min cuts when the optimal face is degenerate,
  // which perturbs the last ulps of the solved value.
  const double raw = std::min(master_tp, min_flow);
  BT_ASSERT(raw > 0.0 && std::isfinite(raw), "solve_ssb_cutting_plane: bad throughput");
  const double grain = std::ldexp(1.0, std::ilogb(raw) - 34);
  solution.throughput = std::round(raw / grain) * grain;
  solution.edge_load = std::move(load);
  solution.cuts_generated = cut_pool_.size();
  // Cold solve_lp calls accumulated into lp_stats as they ran; fold in the
  // standing masters' lifetime stats (cumulative over the session -- for a
  // batch wrapper the session lives exactly one solve, so this matches the
  // historical per-call record).
  if (value_master_ != nullptr) solution.lp_stats.accumulate(value_master_->engine_stats());
  if (stable_master_ != nullptr) solution.lp_stats.accumulate(stable_master_->engine_stats());
  cutting_solution_ = std::move(solution);
}

const SsbSolution& PlannerSession::solve() {
  if (!cutting_dirty_) return cutting_solution_;
  ++stats_.cutting_solves;
  if (value_master_ != nullptr) ++stats_.warm_resolves;
  try {
    run_cutting_solve();
  } catch (...) {
    // Roll back: a partially re-optimized master is indeterminate, but the
    // pool is append-only and stays valid.  Dropping the masters makes the
    // next solve() rebuild them from the pool, so the session survives the
    // error.
    ++stats_.rollbacks;
    value_master_.reset();
    stable_master_.reset();
    value_cold_ = stable_cold_ = true;
    throw;
  }
  cutting_dirty_ = false;
  // run_cutting_solve builds a fresh SsbSolution, so the tier is kExact
  // here; an optimum also re-anchors the heuristic rung's reference.
  last_good_tp_ = cutting_solution_.throughput;
  last_good_loads_ = cutting_solution_.edge_load;
  return cutting_solution_;
}

void PlannerSession::check_solve_budget(const SsbSolution& solution) {
  const bool pivots_out = pivot_budget_ > 0 && solution.lp_iterations >= pivot_budget_;
  const bool wall_out = wall_budget_ms_ > 0.0 && budget_timer_.millis() >= wall_budget_ms_;
  if (!pivots_out && !wall_out) return;
  budget_hit_ = true;
  ++stats_.budget_exhausts;
  throw Error("PlannerSession: solve budget exhausted (ladder deadline)");
}

/// The heuristic rung: one arborescence priced by the last LP optimum's
/// loads -- arcs the optimum leaned on are cheap, so the tree follows the
/// optimal flow pattern where it can -- rated by its own port occupation
/// (the tree streamed alone saturates its busiest port; rate = 1 / that
/// occupation).  Always a feasible broadcast plan; typically within a few
/// tens of percent of TP* (quality_gap reports the estimate).
SsbSolution PlannerSession::heuristic_solution() const {
  const Digraph& g = platform_.graph();
  const std::size_t m = g.num_edges();
  std::vector<double> price(m);
  for (EdgeId e = 0; e < m; ++e) {
    if (removed_[e]) {
      price[e] = kRemovedArcPrice;
      continue;
    }
    const double load = e < last_good_loads_.size() ? last_good_loads_[e] : 0.0;
    price[e] = platform_.edge_time(e) / (1.0 + load);
  }
  const auto tree = min_arborescence(g, platform_.source(), price);
  BT_REQUIRE(tree.found, "PlannerSession: heuristic rung found no spanning arborescence");
  for (EdgeId e : tree.edges) {
    BT_REQUIRE(!removed_[e],
               "PlannerSession: platform cannot broadcast (removals cut the source off)");
  }

  std::vector<double> out_time(g.num_nodes(), 0.0), in_time(g.num_nodes(), 0.0);
  for (EdgeId e : tree.edges) {
    const double t = platform_.edge_time(e);
    out_time[g.from(e)] += t;
    in_time[g.to(e)] += t;
  }
  double max_load = 0.0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (options_.cutting.port_model == PortModel::kBidirectional) {
      max_load = std::max({max_load, out_time[u], in_time[u]});
    } else {
      max_load = std::max(max_load, out_time[u] + in_time[u]);
    }
  }
  BT_ASSERT(max_load > 0.0, "PlannerSession: heuristic tree occupies no port");
  const double rate = 1.0 / max_load;

  SsbSolution solution;
  solution.solved = true;
  solution.throughput = rate;
  solution.edge_load.assign(m, 0.0);
  for (EdgeId e : tree.edges) solution.edge_load[e] = rate;
  PackedTree column;
  column.edges = tree.edges;
  column.rate = rate;
  solution.tree_columns.push_back(std::move(column));
  solution.tier = PlanTier::kHeuristic;
  solution.quality_gap =
      last_good_tp_ > 0.0 ? std::max(0.0, (last_good_tp_ - rate) / last_good_tp_) : 0.0;
  return solution;
}

const SsbSolution& PlannerSession::solve_laddered(const LadderOptions& ladder) {
  if (!cutting_dirty_) return cutting_solution_;
  pivot_budget_ = ladder.pivot_budget;
  wall_budget_ms_ = ladder.wall_budget_ms;
  budget_timer_.reset();
  budget_hit_ = false;
  struct BudgetReset {
    PlannerSession* session;
    ~BudgetReset() {
      session->pivot_budget_ = 0;
      session->wall_budget_ms_ = 0.0;
    }
  } reset{this};

  try {
    return solve();  // rung 0: tier kExact
  } catch (const Error&) {
    // An exhausted budget skips the rebuild rung -- a rebuild is the
    // *expensive* recovery, and would only burn the budget again.
    const bool try_rebuild = ladder.allow_rebuild && !budget_hit_;
    if (try_rebuild) {
      try {
        // Rung 1: the rollback above dropped the standing masters but kept
        // the pools, so this solve() rebuilds from pool content.
        solve();
        cutting_solution_.tier = PlanTier::kRebuild;
        return cutting_solution_;
      } catch (const Error&) {
        if (!ladder.allow_heuristic) throw;
      }
    } else if (!ladder.allow_heuristic) {
      throw;
    }
  }

  // Rung 2: heuristic stand-in.  Throws only when the platform genuinely
  // cannot broadcast; the session stays usable either way (a failure leaves
  // cutting_dirty_ set, success caches like any other solution).
  cutting_solution_ = heuristic_solution();
  cutting_dirty_ = false;
  ++stats_.heuristic_plans;
  return cutting_solution_;
}

// ---- mutation layer ---------------------------------------------------------

void PlannerSession::note_mutation() {
  ++version_;
  ++stats_.mutations;
  cutting_dirty_ = true;
  packing_dirty_ = true;
}

void PlannerSession::kill_arc_column(EdgeId e) {
  if (!var_alive_[e]) return;
  const std::vector<LpTerm> pin = {{var_of_arc_[e], 1.0}};
  value_master_->append_row(pin, RowSense::kLessEqual, 0.0);
  if (stable_master_ != nullptr) stable_master_->append_row(pin, RowSense::kLessEqual, 0.0);
  var_alive_[e] = 0;
  mapping_identity_ = false;
  ++stats_.kill_rows;
}

void PlannerSession::replace_arc_column(EdgeId e) {
  const Digraph& g = platform_.graph();
  const double t = platform_.edge_time(e);
  // Port rows carry the (new) arc time; cut rows are time-free, so the
  // replacement re-enters exactly the pooled cuts that contain the arc with
  // the same -1 coefficient the original column had.
  std::vector<LpTerm> terms;
  terms.reserve(master_cuts_.size() + 2);
  const std::size_t from_row = out_row_[g.from(e)];
  const std::size_t to_row = in_row_[g.to(e)];
  BT_ASSERT(from_row != kNoRow && to_row != kNoRow,
            "PlannerSession: arc endpoints lost their port rows");
  terms.push_back({from_row, t});
  terms.push_back({to_row, t});
  for (const CutEntry& entry : master_cuts_) {
    if (std::binary_search(entry.cut->begin(), entry.cut->end(), e)) {
      terms.push_back({entry.value_row, -1.0});
    }
  }
  const std::size_t var = value_master_->add_column(0.0, terms);
  if (stable_master_ != nullptr) {
    std::vector<LpTerm> stable_terms = terms;
    for (LpTerm& term : stable_terms) ++term.var;  // rows sit past the TP-floor row
    const std::size_t stable_var =
        stable_master_->add_column(-stabilization_weight(e), stable_terms);
    BT_ASSERT(stable_var == var, "PlannerSession: standing masters lost column sync");
  }
  var_of_arc_[e] = var;
  var_alive_[e] = 1;
  mapping_identity_ = false;
  ++stats_.replacement_columns;
}

void PlannerSession::set_link_cost(EdgeId e, LinkCost cost) {
  platform_.set_link_cost(e, cost);  // validates arc id and cost
  removed_[e] = 0;
  const bool stabilized = options_.cutting.load_penalty > 0.0;
  if (value_master_ != nullptr && (!stabilized || stable_master_ != nullptr)) {
    kill_arc_column(e);
    replace_arc_column(e);
  } else {
    // No consistent standing pair to delta (pre-first-solve, post-rollback,
    // or legacy rebuild mode): drop them and let the next solve rebuild
    // from the pool, which link-cost changes leave valid (cut rows are
    // time-free).
    value_master_.reset();
    stable_master_.reset();
    value_cold_ = stable_cold_ = true;
  }
  note_mutation();
}

void PlannerSession::scale_link_time(EdgeId e, double factor) {
  BT_REQUIRE(factor > 0.0 && std::isfinite(factor),
             "PlannerSession::scale_link_time: factor must be positive and finite");
  const LinkCost& cost = platform_.link_cost(e);
  set_link_cost(e, LinkCost{cost.alpha * factor, cost.beta * factor});
}

void PlannerSession::remove_link(EdgeId e) {
  BT_REQUIRE(e < platform_.num_edges(), "PlannerSession::remove_link: arc out of range");
  if (removed_[e]) return;  // idempotent
  removed_[e] = 1;
  const bool stabilized = options_.cutting.load_penalty > 0.0;
  if (value_master_ != nullptr && (!stabilized || stable_master_ != nullptr)) {
    kill_arc_column(e);
  } else {
    value_master_.reset();
    stable_master_.reset();
    value_cold_ = stable_cold_ = true;
  }
  drop_pool_trees_containing(e);
  note_mutation();
}

Platform grow_platform(const Platform& platform, const std::vector<SessionLink>& in_links,
                       const std::vector<SessionLink>& out_links) {
  BT_REQUIRE(!in_links.empty(),
             "grow_platform: the new node needs an incoming link to be reachable");
  const std::size_t old_nodes = platform.num_nodes();
  const std::size_t old_edges = platform.num_edges();
  for (const SessionLink& l : in_links) {
    BT_REQUIRE(l.peer < old_nodes, "grow_platform: peer out of range");
  }
  for (const SessionLink& l : out_links) {
    BT_REQUIRE(l.peer < old_nodes, "grow_platform: peer out of range");
  }

  Digraph g = platform.graph();
  const NodeId node = g.add_node();
  std::vector<LinkCost> costs;
  costs.reserve(old_edges + in_links.size() + out_links.size());
  for (EdgeId e = 0; e < old_edges; ++e) costs.push_back(platform.link_cost(e));
  for (const SessionLink& l : in_links) {
    g.add_edge(l.peer, node);
    costs.push_back(l.cost);
  }
  for (const SessionLink& l : out_links) {
    g.add_edge(node, l.peer);
    costs.push_back(l.cost);
  }
  // The Platform constructor re-validates costs and reachability.
  Platform grown(std::move(g), std::move(costs), platform.slice_size(), platform.source());
  std::vector<double> send, recv;
  send.reserve(old_nodes + 1);
  recv.reserve(old_nodes + 1);
  for (NodeId u = 0; u < old_nodes; ++u) {
    send.push_back(platform.send_overhead(u));
    recv.push_back(platform.recv_overhead(u));
  }
  send.push_back(0.0);
  recv.push_back(0.0);
  grown.set_send_overheads(std::move(send));
  grown.set_recv_overheads(std::move(recv));
  return grown;
}

Platform shrink_platform(const Platform& platform, NodeId node, ShrinkRemap* remap) {
  const std::size_t old_nodes = platform.num_nodes();
  const std::size_t old_edges = platform.num_edges();
  BT_REQUIRE(node < old_nodes, "shrink_platform: node out of range");
  BT_REQUIRE(node != platform.source(), "shrink_platform: cannot remove the source");
  BT_REQUIRE(old_nodes > 2, "shrink_platform: a platform needs at least two nodes");

  std::vector<NodeId> node_map(old_nodes);
  for (NodeId u = 0; u < old_nodes; ++u) {
    node_map[u] = u == node ? Digraph::npos : (u < node ? u : u - 1);
  }
  const Digraph& old_g = platform.graph();
  Digraph g(old_nodes - 1);
  std::vector<LinkCost> costs;
  std::vector<EdgeId> edge_map(old_edges, Digraph::npos);
  costs.reserve(old_edges);
  for (EdgeId e = 0; e < old_edges; ++e) {
    const NodeId u = old_g.from(e), v = old_g.to(e);
    if (u == node || v == node) continue;
    edge_map[e] = g.add_edge(node_map[u], node_map[v]);
    costs.push_back(platform.link_cost(e));
  }
  // The Platform constructor re-validates reachability: a leave that
  // disconnects the platform throws here.
  Platform shrunk(std::move(g), std::move(costs), platform.slice_size(),
                  node_map[platform.source()]);
  std::vector<double> send, recv;
  send.reserve(old_nodes - 1);
  recv.reserve(old_nodes - 1);
  for (NodeId u = 0; u < old_nodes; ++u) {
    if (u == node) continue;
    send.push_back(platform.send_overhead(u));
    recv.push_back(platform.recv_overhead(u));
  }
  shrunk.set_send_overheads(std::move(send));
  shrunk.set_recv_overheads(std::move(recv));
  if (remap != nullptr) {
    remap->node_map = std::move(node_map);
    remap->edge_map = std::move(edge_map);
  }
  return shrunk;
}

NodeId PlannerSession::add_node(const std::vector<SessionLink>& in_links,
                                const std::vector<SessionLink>& out_links) {
  platform_ = grow_platform(platform_, in_links, out_links);
  const NodeId node = platform_.num_nodes() - 1;
  removed_.resize(platform_.num_edges(), 0);

  // Structural fallback: pooled cuts are no longer source->w cuts of the
  // grown graph and pooled trees no longer span it.  Reset everything; the
  // next solve is cold.
  reset_cutting_state();
  reset_packing_state();
  note_mutation();
  return node;
}

SsbSolution PlannerSession::solve_cold() const {
  PlannerSessionOptions options = options_;
  options.cold_polish = true;
  PlannerSession fresh(platform_, options);
  for (EdgeId e = 0; e < platform_.num_edges(); ++e) {
    if (removed_[e]) fresh.remove_link(e);
  }
  return fresh.solve();
}

// ---- packing (column generation) --------------------------------------------

void PlannerSession::reset_packing_state() {
  tree_seen_.clear();
  tree_pool_.clear();
  packing_dirty_ = true;
  packing_solution_ = SsbPackingSolution{};
}

void PlannerSession::drop_pool_trees_containing(EdgeId e) {
  std::vector<std::vector<EdgeId>> kept;
  kept.reserve(tree_pool_.size());
  for (std::vector<EdgeId>& tree : tree_pool_) {
    if (std::find(tree.begin(), tree.end(), e) != tree.end()) {
      std::vector<EdgeId> key = tree;
      std::sort(key.begin(), key.end());
      tree_seen_.erase(key);
    } else {
      kept.push_back(std::move(tree));
    }
  }
  tree_pool_ = std::move(kept);
}

void PlannerSession::run_packing_solve() {
  const Digraph& g = platform_.graph();
  const std::size_t p = g.num_nodes();
  const NodeId source = platform_.source();
  const SsbColumnGenOptions& options = options_.colgen;

  // Arc times seen by the pricing oracle; removed arcs are priced out.
  std::vector<double> arc_time = platform_.edge_times();
  bool any_removed = false;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (removed_[e]) {
      arc_time[e] = kRemovedArcPrice;
      any_removed = true;
    }
  }

  SsbPackingSolution solution;
  ThreadPool& pool = options.pool != nullptr ? *options.pool : global_thread_pool();
  solution.phase_stats.oracle_threads = pool.num_threads();

  // Rebuild the columns from the pooled trees under the *current* link
  // times: mutations change occupation coefficients, but yesterday's
  // optimal trees remain the best warm basis for today's packing (the
  // pool-seeded re-solve).  Trees over removed arcs were dropped at
  // removal time, so the pool only holds valid spanning trees.  The
  // rebuild fans out over the pool in contiguous chunks -- each task
  // writes only its trees' pre-sized slots, so the chunk layout never
  // changes the column order the master sees.
  std::vector<TreeColumn> columns(tree_pool_.size());
  {
    Timer rebuild_timer;
    const ChunkSplit rebuild_split(tree_pool_.size(), pool.num_threads());
    parallel_for(pool, rebuild_split.chunks, [&](std::size_t c) {
      for (std::size_t i = rebuild_split.chunk_begin(c); i < rebuild_split.chunk_begin(c + 1);
           ++i) {
        columns[i] = make_column(platform_, tree_pool_[i]);
      }
    });
    solution.phase_stats.pricing_wall_ms += rebuild_timer.millis();
  }

  // Deduplicate generated trees by sorted arc list: the pricing oracle can
  // legitimately return an existing tree when the LP is already optimal.
  auto add_column = [&](std::vector<EdgeId> edges) {
    std::vector<EdgeId> key = edges;
    std::sort(key.begin(), key.end());
    if (!tree_seen_.insert(std::move(key)).second) return false;
    tree_pool_.push_back(edges);
    columns.push_back(make_column(platform_, std::move(edges)));
    return true;
  };

  // Seed with one arborescence (cheapest total time; any spanning tree
  // works) when the pool is empty -- first solve, or every pooled tree was
  // invalidated by removals.
  if (columns.empty()) {
    const auto seed = min_arborescence(g, source, arc_time);
    BT_REQUIRE(seed.found, "solve_ssb_column_generation: platform not spanning");
    if (any_removed) {
      for (EdgeId e : seed.edges) {
        BT_REQUIRE(!removed_[e],
                   "PlannerSession: platform cannot broadcast (removals cut the source off)");
      }
    }
    add_column(seed.edges);
  }

  std::vector<double> lambda;

  const PortModel model = options.port_model;
  const std::size_t num_master_rows = model == PortModel::kBidirectional ? 2 * p : p;
  // Master rows for the first `ncols` columns, transposed from the
  // canonical per-column layout of master_terms (rows exist even when
  // empty, so indexing is stable as columns arrive).
  auto build_master_rows = [&](std::size_t ncols) {
    std::vector<std::vector<LpTerm>> rows(num_master_rows);
    for (std::size_t j = 0; j < ncols; ++j) {
      for (const LpTerm& t : master_terms(columns[j], p, model)) {
        rows[t.var].push_back({j, t.coeff});
      }
    }
    return rows;
  };

  // Pricing step shared by both master paths: min-weight arborescence under
  // the port duals `y` (2p or p entries, row layout as above).  Returns
  // true when an improving column was appended.  The arc-price fill fans
  // out over the pool (price[e] is a function of e alone, so tasks write
  // disjoint slots and the vector is bitwise-independent of the chunking);
  // the Chu-Liu/Edmonds call itself keeps thread_local workspaces
  // (graph/min_arborescence.cpp), so concurrent packing solves -- e.g.
  // sweep cells fanned out over the same pool -- price safely in parallel.
  const ChunkSplit price_split(g.num_edges(), pool.num_threads());
  std::vector<double> price(g.num_edges());
  auto price_and_append = [&](const std::vector<double>& y) {
    // Fault hook, counted once per pricing round in this serial section.
    if (fault_fire(FaultSite::kPricingOracle)) {
      throw Error("fault injection: pricing oracle failure");
    }
    Timer pricing_timer;
    parallel_for(pool, price_split.chunks, [&](std::size_t c) {
      for (EdgeId e = price_split.chunk_begin(c); e < price_split.chunk_begin(c + 1); ++e) {
        if (removed_[e]) {
          price[e] = kRemovedArcPrice;
          continue;
        }
        const double y_out =
            std::max(0.0, model == PortModel::kBidirectional ? y[2 * g.from(e)] : y[g.from(e)]);
        const double y_in =
            std::max(0.0, model == PortModel::kBidirectional ? y[2 * g.to(e) + 1] : y[g.to(e)]);
        price[e] = platform_.edge_time(e) * (y_out + y_in);
      }
    });
    const auto priced = min_arborescence(g, source, price);
    solution.phase_stats.pricing_wall_ms += pricing_timer.millis();
    BT_ASSERT(priced.found, "solve_ssb_column_generation: pricing lost spanning property");

    // Reduced cost of the best tree: 1 - priced.weight.  Non-positive means
    // no improving column exists and (for exact duals) the master is optimal.
    // A removed arc drives the weight past 1, so trees over removed arcs
    // never qualify.
    if (priced.weight >= 1.0 - options.tolerance) return false;
    return add_column(priced.edges);  // duplicate: numerically converged
  };

  // Master engine knobs shared by both paths (the rebuild path adds its
  // engine selection and warm basis per round).
  SimplexOptions master_lp_options;
  master_lp_options.pricing = options.master_pricing;
  master_lp_options.dual_row_rule = options.master_dual_row_rule;
  master_lp_options.solve_mode = options.master_solve_mode;
  master_lp_options.collect_kernel_timing = options.master_kernel_timing;

  if (options.incremental_master) {
    // ---- Standing master: rows are fixed up front and the model starts
    // from every pooled column; each pricing round appends one column and
    // re-optimizes from the current basis. ----
    LpProblem lp(Objective::kMaximize);
    for (std::size_t j = 0; j < columns.size(); ++j) {
      lp.add_variable(1.0, "tree" + std::to_string(j));
    }
    for (const std::vector<LpTerm>& row : build_master_rows(columns.size())) {
      lp.add_constraint(row, RowSense::kLessEqual, 1.0);
    }
    IncrementalSimplex engine(lp, master_lp_options);
    std::vector<double> smoothed;  // Wentges stabilization center
    while (columns.size() < options.max_columns) {
      ++solution.separation_rounds;
      Timer master_timer;
      const LpSolution master = engine.solve();
      solution.master_wall_ms += master_timer.millis();
      BT_REQUIRE(master.status == LpStatus::kOptimal,
                 "solve_ssb_column_generation: master LP " + to_string(master.status));
      solution.lp_iterations += master.iterations;
      lambda = master.x;

      // Price under smoothed duals; on mis-pricing fall back to the exact
      // duals, which alone certify optimality.
      const double alpha = options.dual_smoothing;
      bool progressed;
      if (alpha > 0.0 && !smoothed.empty()) {
        for (std::size_t i = 0; i < smoothed.size(); ++i) {
          smoothed[i] = alpha * smoothed[i] + (1.0 - alpha) * master.duals[i];
        }
        progressed = price_and_append(smoothed);
        if (!progressed) {
          smoothed = master.duals;  // re-center the stabilization
          progressed = price_and_append(master.duals);
        }
      } else {
        smoothed = master.duals;
        progressed = price_and_append(master.duals);
      }
      if (!progressed) break;
      engine.add_column(1.0, master_terms(columns.back(), p, model));
    }
    solution.lp_stats.accumulate(engine.engine_stats());
  } else {
    // ---- Legacy path: rebuild the whole master LP every round and re-solve
    // it from the previous optimal basis (kept for benchmarking). ----
    std::vector<std::size_t> warm_basis;  // master basis carried across rounds
    while (columns.size() < options.max_columns) {
      ++solution.separation_rounds;
      LpProblem lp(Objective::kMaximize);
      for (std::size_t j = 0; j < columns.size(); ++j) {
        lp.add_variable(1.0, "tree" + std::to_string(j));
      }
      for (const std::vector<LpTerm>& row : build_master_rows(columns.size())) {
        lp.add_constraint(row, RowSense::kLessEqual, 1.0);
      }

      SimplexOptions lp_options = master_lp_options;
      lp_options.engine = options.master_engine;
      lp_options.stats = &solution.lp_stats;
      if (!warm_basis.empty()) lp_options.warm_basis = &warm_basis;
      Timer master_timer;
      const LpSolution master = solve_lp(lp, lp_options);
      solution.master_wall_ms += master_timer.millis();
      BT_REQUIRE(master.status == LpStatus::kOptimal,
                 "solve_ssb_column_generation: master LP " + to_string(master.status));
      solution.lp_iterations += master.iterations;
      lambda = master.x;
      warm_basis = master.basis;
      if (!price_and_append(master.duals)) break;
    }
  }
  BT_REQUIRE(columns.size() < options.max_columns,
             "solve_ssb_column_generation: column cap hit without convergence");

  // ---- Assemble the solution. ----
  solution.solved = true;
  solution.edge_load.assign(g.num_edges(), 0.0);
  solution.throughput = 0.0;
  for (std::size_t j = 0; j < columns.size(); ++j) {
    const double rate = j < lambda.size() ? lambda[j] : 0.0;
    solution.throughput += rate;
    if (rate <= 0.0) continue;
    for (EdgeId e : columns[j].edges) solution.edge_load[e] += rate;
    PackedTree tree;
    tree.edges = columns[j].edges;
    tree.rate = rate;
    solution.trees.push_back(std::move(tree));
  }
  if (options.export_tree_columns) solution.tree_columns = solution.trees;
  solution.cuts_generated = columns.size();
  packing_solution_ = std::move(solution);
}

const SsbPackingSolution& PlannerSession::solve_packing() {
  if (!packing_dirty_) return packing_solution_;
  ++stats_.packing_solves;
  try {
    run_packing_solve();
  } catch (...) {
    // The packing master is rebuilt from the pool each run, so there is no
    // standing engine to roll back -- only the count matters.  tree_pool_ /
    // tree_seen_ stay consistent (add_column inserts into both).
    ++stats_.rollbacks;
    throw;
  }
  packing_dirty_ = false;
  return packing_solution_;
}

// ---- schedule synthesis -----------------------------------------------------

const PeriodicSchedule& PlannerSession::schedule() {
  if (schedule_ != nullptr && schedule_version_ == version_) return *schedule_;
  // Synthesis fans out over the same worker pool as the masters (per-tree
  // validation, the BvN consume step, the decomposition certificate), so a
  // caller pinning the pool width -- the churn determinism matrix -- covers
  // the schedule path too.
  OrchestrationOptions orchestration;
  TreeDecompositionOptions decomposition;
  PeriodicSchedule built;
  if (!packing_dirty_) {
    // Fresh packing solution: orchestrate its exact tree columns.
    orchestration.port_model = options_.colgen.port_model;
    orchestration.pool = options_.colgen.pool;
    decomposition.pool = options_.colgen.pool;
    built = synthesize_schedule(platform_, packing_solution_, orchestration, decomposition);
  } else if (!cutting_dirty_) {
    // Fresh cutting-plane loads: decompose, then orchestrate.
    orchestration.port_model = options_.cutting.port_model;
    orchestration.pool = options_.cutting.pool;
    decomposition.pool = options_.cutting.pool;
    built = synthesize_schedule(platform_, cutting_solution_, orchestration, decomposition);
  } else {
    orchestration.port_model = options_.colgen.port_model;
    orchestration.pool = options_.colgen.pool;
    decomposition.pool = options_.colgen.pool;
    built = synthesize_schedule(platform_, solve_packing(), orchestration, decomposition);
  }
  schedule_ = std::make_unique<PeriodicSchedule>(std::move(built));
  schedule_version_ = version_;
  ++stats_.schedules_built;
  return *schedule_;
}

}  // namespace bt
