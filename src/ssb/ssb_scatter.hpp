#pragma once

// Optimal steady-state *scatter* throughput (extension).
//
// Same framework as the broadcast program (2), but scatter messages to
// different destinations are disjoint, so constraint (d) becomes the sum
// n_e = sum_w x_e^w (the paper notes this explicitly in Section 4.1).  The
// resulting LP is an ordinary multicommodity flow -- polynomial without any
// cut/column machinery -- and bounds every tree-based scatter from above.

#include "platform/platform.hpp"
#include "ssb/ssb_solution.hpp"

namespace bt {

/// Solve the scatter analogue of program (2): maximize TP such that every
/// destination receives TP personalized slices per time-unit, with
/// n_e = sum of per-destination flows on e and the one-port port limits.
SsbSolution solve_scatter_optimal(const Platform& platform);

}  // namespace bt
