#pragma once

// Shared solve options of the SSB optimum masters.
//
// Both standing masters -- the cutting-plane value/stable pair and the
// column-generation packing master -- are configured from the same base so
// a PlannerSession (planner_session.hpp) can set tolerances, the port
// model and the LP engine knobs once and have the two masters agree on
// them.  The derived structs add the solver-specific fields and override
// the pricing defaults where the per-master A/B benchmarks picked
// different production configurations (see BENCH_lp.json).

#include "lp/simplex.hpp"
#include "ssb/ssb_solution.hpp"

namespace bt {

class ThreadPool;

struct SsbSolveOptions {
  /// Convergence tolerance of the outer loop (cut separation / column
  /// pricing); the master LPs themselves solve tighter.
  double tolerance = 1e-7;
  /// Keep one master LP alive across rounds (IncrementalSimplex warm
  /// re-solves).  When false, the master is rebuilt and re-solved every
  /// round -- the pre-incremental behavior, kept for benchmarking.
  bool incremental_master = true;
  /// Port model of the occupation rows: separate out/in rows per node
  /// (bidirectional one-port) or one combined row (unidirectional).
  PortModel port_model = PortModel::kBidirectional;
  /// Master LP engine knobs, forwarded into SimplexOptions for every
  /// master solve (warm and cold).  The pricing defaults here are the
  /// engine-wide production configuration (Devex primal + dual
  /// steepest-edge rows); SsbCuttingPlaneOptions overrides them -- its
  /// short lexicographic rounds re-optimize in a handful of pivots where
  /// the candidate-list Dantzig scan wins and reference weights never
  /// amortize (see the hypersparse-core ablation in BENCH_lp.json).
  PricingRule master_pricing = PricingRule::kDevex;
  DualRowRule master_dual_row_rule = DualRowRule::kSteepestEdge;
  BasisLu::SolveMode master_solve_mode = BasisLu::SolveMode::kReachSet;
  /// Also collect per-call FTRAN/BTRAN wall-clock into
  /// SsbSolution::lp_stats (the reach counters are always collected).
  bool master_kernel_timing = false;
  /// Worker pool for the parallel oracle phases (per-destination max-flow
  /// separation, pricing/column rebuild).  nullptr means the process-wide
  /// global_thread_pool(); point at a 1-thread pool to force the serial
  /// path.  Either way the solve is bitwise-identical -- the oracles write
  /// destination-/slot-indexed results and reduce them in serial order, so
  /// the pool width only changes wall-clock (see util/thread_pool.hpp).
  ThreadPool* pool = nullptr;
};

}  // namespace bt
