#pragma once

// Shared port-row construction of the SSB masters.
//
// All three solvers constrain the per-node serialized port occupation of
// the arc loads:
//
//  * bidirectional one-port: an out-port row then an in-port row per node;
//  * unidirectional one-port: one combined send+receive row per node.
//
// add_port_rows appends the rows for arc-load-indexed masters (cutting
// plane, direct transcription); `var_of_edge` maps an arc id to its LP
// variable.  Nodes without arcs on a port contribute no row here, so row
// indices are solver-local.  The column-generation master is the transpose
// (rows fixed up front, tree columns arrive) and keeps its own emission in
// master_terms() with a dense 2u/2u+1 (or u) layout -- the same semantic
// rows, but dual vectors are NOT index-compatible across solvers.

#include <vector>

#include "lp/lp_problem.hpp"
#include "platform/platform.hpp"
#include "ssb/ssb_solution.hpp"

namespace bt {

template <typename VarOfEdge>
void add_port_rows(LpProblem& lp, const Platform& platform, PortModel model,
                   const VarOfEdge& var_of_edge) {
  const Digraph& g = platform.graph();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (model == PortModel::kBidirectional) {
      std::vector<LpTerm> out_row, in_row;
      for (EdgeId e : g.out_edges(u)) out_row.push_back({var_of_edge(e), platform.edge_time(e)});
      for (EdgeId e : g.in_edges(u)) in_row.push_back({var_of_edge(e), platform.edge_time(e)});
      if (!out_row.empty()) lp.add_constraint(out_row, RowSense::kLessEqual, 1.0);
      if (!in_row.empty()) lp.add_constraint(in_row, RowSense::kLessEqual, 1.0);
    } else {
      std::vector<LpTerm> row;
      for (EdgeId e : g.out_edges(u)) row.push_back({var_of_edge(e), platform.edge_time(e)});
      for (EdgeId e : g.in_edges(u)) row.push_back({var_of_edge(e), platform.edge_time(e)});
      if (!row.empty()) lp.add_constraint(row, RowSense::kLessEqual, 1.0);
    }
  }
}

}  // namespace bt
