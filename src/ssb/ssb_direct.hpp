#pragma once

// Direct transcription of the steady-state broadcast linear program --
// program (2) of the paper -- with all per-destination commodity variables
// x^{u,v}_w.  The LP has Theta(m * p) variables and rows, so this solver is
// meant for small platforms; its role is to validate the cutting-plane
// solver (which scales to the paper's experiment sizes) and to expose the
// full variable set for inspection.

#include "platform/platform.hpp"
#include "ssb/ssb_solution.hpp"

namespace bt {

/// Extended result: also exposes the commodity variables.
struct SsbDirectSolution : SsbSolution {
  /// x[e * num_destinations + k]: slices destined to the k-th destination
  /// (destinations are all nodes except the source, in increasing node-id
  /// order) crossing arc e per time-unit.
  std::vector<double> commodity_flow;
  /// Destination node of each commodity index.
  std::vector<NodeId> destinations;
};

struct SsbDirectOptions {
  /// Port model of the per-node occupation rows ((f)/(g): separate send and
  /// receive ports, or one combined row per node).
  PortModel port_model = PortModel::kBidirectional;
};

/// Solve program (2) exactly as written (constraints (a)-(j), with the t
/// variables substituted away).  Throws bt::Error if the LP solver fails.
SsbDirectSolution solve_ssb_direct(const Platform& platform,
                                   const SsbDirectOptions& options = {});

}  // namespace bt
