#include "ssb/ssb_direct.hpp"

#include <vector>

#include "lp/simplex.hpp"
#include "ssb/ssb_port_rows.hpp"
#include "util/error.hpp"

namespace bt {

SsbDirectSolution solve_ssb_direct(const Platform& platform,
                                   const SsbDirectOptions& options) {
  const Digraph& g = platform.graph();
  const NodeId source = platform.source();
  const std::size_t p = g.num_nodes();
  const std::size_t m = g.num_edges();
  BT_REQUIRE(p >= 2, "solve_ssb_direct: need at least two nodes");

  SsbDirectSolution solution;
  for (NodeId w = 0; w < p; ++w) {
    if (w != source) solution.destinations.push_back(w);
  }
  const std::size_t num_dest = solution.destinations.size();

  LpProblem lp(Objective::kMaximize);
  // Variable layout: x[e][k] for arc e, commodity k; then n[e]; then TP.
  auto x_var = [&](EdgeId e, std::size_t k) { return e * num_dest + k; };
  for (EdgeId e = 0; e < m; ++e) {
    for (std::size_t k = 0; k < num_dest; ++k) {
      lp.add_variable(0.0, "x_e" + std::to_string(e) + "_w" +
                               std::to_string(solution.destinations[k]));
    }
  }
  const std::size_t n_base = lp.num_variables();
  auto n_var = [&](EdgeId e) { return n_base + e; };
  for (EdgeId e = 0; e < m; ++e) lp.add_variable(0.0, "n_e" + std::to_string(e));
  const std::size_t tp_var = lp.add_variable(1.0, "TP");

  for (std::size_t k = 0; k < num_dest; ++k) {
    const NodeId w = solution.destinations[k];

    // (a) everything destined to w leaving the source per time-unit = TP.
    // The paper writes a gross sum; we use the *net* outflow (out - in).
    // For genuine solutions the two coincide (the source never usefully
    // receives its own commodity), but the gross form also admits degenerate
    // circulations that fake delivery through cycles touching the source or
    // the destination -- see DESIGN.md.
    std::vector<LpTerm> send_row;
    for (EdgeId e : g.out_edges(source)) send_row.push_back({x_var(e, k), 1.0});
    for (EdgeId e : g.in_edges(source)) send_row.push_back({x_var(e, k), -1.0});
    send_row.push_back({tp_var, -1.0});
    lp.add_constraint(send_row, RowSense::kEqual, 0.0);

    // (b) everything destined to w arriving at w per time-unit = TP (net).
    std::vector<LpTerm> recv_row;
    for (EdgeId e : g.in_edges(w)) recv_row.push_back({x_var(e, k), 1.0});
    for (EdgeId e : g.out_edges(w)) recv_row.push_back({x_var(e, k), -1.0});
    recv_row.push_back({tp_var, -1.0});
    lp.add_constraint(recv_row, RowSense::kEqual, 0.0);

    // (c) conservation at every intermediate node v (v != source, v != w).
    for (NodeId v = 0; v < p; ++v) {
      if (v == source || v == w) continue;
      std::vector<LpTerm> row;
      for (EdgeId e : g.in_edges(v)) row.push_back({x_var(e, k), 1.0});
      for (EdgeId e : g.out_edges(v)) row.push_back({x_var(e, k), -1.0});
      lp.add_constraint(row, RowSense::kEqual, 0.0);
    }
  }

  // (d) n_e = max_w x_e^w, relaxed to n_e >= x_e^w (maximization of TP keeps
  // n as small as the binding port constraints allow).
  for (EdgeId e = 0; e < m; ++e) {
    for (std::size_t k = 0; k < num_dest; ++k) {
      lp.add_constraint({{x_var(e, k), 1.0}, {n_var(e), -1.0}}, RowSense::kLessEqual, 0.0);
    }
  }

  // (e)+(h): per-arc occupation t_e = n_e * T_e <= 1.
  for (EdgeId e = 0; e < m; ++e) {
    lp.add_constraint({{n_var(e), platform.edge_time(e)}}, RowSense::kLessEqual, 1.0);
  }
  // (f)+(i): serialized incoming occupation of each node <= 1.
  // (g)+(j): serialized outgoing occupation of each node <= 1.
  // (Unidirectional port model: one combined send+receive row per node.)
  add_port_rows(lp, platform, options.port_model, n_var);

  const LpSolution lp_solution = solve_lp(lp);
  BT_REQUIRE(lp_solution.status == LpStatus::kOptimal,
             "solve_ssb_direct: LP not optimal: " + to_string(lp_solution.status));
  BT_ASSERT(lp.max_violation(lp_solution.x) < 1e-6,
            "solve_ssb_direct: simplex returned an infeasible point (violation " +
                std::to_string(lp.max_violation(lp_solution.x)) + ")");

  solution.solved = true;
  solution.throughput = lp_solution.objective;
  solution.lp_iterations = lp_solution.iterations;
  solution.edge_load.resize(m);
  for (EdgeId e = 0; e < m; ++e) solution.edge_load[e] = lp_solution.x[n_var(e)];
  solution.commodity_flow.assign(lp_solution.x.begin(), lp_solution.x.begin() + m * num_dest);
  return solution;
}

}  // namespace bt
