#include "experiments/sweeps.hpp"

#include <cstdlib>
#include <string>

#include "experiments/evaluation.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace bt {

namespace {

void append_records(std::vector<SweepRecord>& records, const PlatformEvaluation& eval,
                    std::size_t num_nodes, double density, std::size_t replicate) {
  for (const HeuristicResult& r : eval.results) {
    SweepRecord record;
    record.num_nodes = num_nodes;
    record.density = density;
    record.replicate = replicate;
    record.heuristic = r.name;
    record.throughput = r.throughput;
    record.optimal = eval.optimal_throughput;
    record.ratio = r.ratio;
    records.push_back(std::move(record));
  }
}

}  // namespace

std::vector<SweepRecord> run_random_sweep(const RandomSweepConfig& config) {
  const std::vector<HeuristicSpec> heuristics =
      !config.heuristics.empty()
          ? config.heuristics
          : (config.multiport_eval ? multiport_heuristics() : one_port_heuristics());

  // Enumerate all (size, density, replicate) cells up front; every cell's
  // seed depends only on its coordinates, so the cells are embarrassingly
  // parallel and scheduling order cannot change any record.
  struct Cell {
    std::size_t size = 0;
    double density = 0.0;
    std::size_t rep = 0;
  };
  std::vector<Cell> cells;
  cells.reserve(config.sizes.size() * config.densities.size() * config.replicates);
  for (std::size_t size : config.sizes) {
    for (double density : config.densities) {
      for (std::size_t rep = 0; rep < config.replicates; ++rep) {
        cells.push_back({size, density, rep});
      }
    }
  }

  std::vector<std::vector<SweepRecord>> per_cell(cells.size());
  ThreadPool pool(config.num_threads);
  parallel_for(pool, cells.size(), [&](std::size_t i) {
    const Cell& cell = cells[i];
    // One independent stream per cell replicate: reproducible regardless
    // of sweep order or subsetting.
    const std::uint64_t seed = config.base_seed ^ (cell.size * 0x9e3779b9ULL) ^
                               static_cast<std::uint64_t>(cell.density * 1e6) ^
                               (cell.rep * 0x85ebca6bULL);
    Rng rng(seed);
    RandomPlatformConfig pc;
    pc.num_nodes = cell.size;
    pc.density = cell.density;
    pc.multiport_ratio = config.multiport_ratio;
    const Platform platform = generate_random_platform(pc, rng);
    const PlatformEvaluation eval =
        evaluate_platform(platform, heuristics, config.multiport_eval, config.optimal_solver);
    append_records(per_cell[i], eval, cell.size, cell.density, cell.rep);
  });
  return concatenate_in_order(std::move(per_cell));
}

std::vector<SweepRecord> run_tiers_sweep(const TiersSweepConfig& config) {
  const std::vector<HeuristicSpec> heuristics =
      !config.heuristics.empty()
          ? config.heuristics
          : (config.multiport_eval ? multiport_heuristics() : one_port_heuristics());

  struct Cell {
    const TiersConfig* family = nullptr;
    std::size_t rep = 0;
  };
  std::vector<Cell> cells;
  cells.reserve(config.families.size() * config.replicates);
  for (const TiersConfig& family : config.families) {
    for (std::size_t rep = 0; rep < config.replicates; ++rep) {
      cells.push_back({&family, rep});
    }
  }

  std::vector<std::vector<SweepRecord>> per_cell(cells.size());
  ThreadPool pool(config.num_threads);
  parallel_for(pool, cells.size(), [&](std::size_t i) {
    const TiersConfig& family = *cells[i].family;
    const std::size_t rep = cells[i].rep;
    const std::uint64_t seed = config.base_seed ^ (family.num_nodes * 0xc2b2ae35ULL) ^
                               (rep * 0x27d4eb2fULL);
    Rng rng(seed);
    const Platform platform = generate_tiers_platform(family, rng);
    const PlatformEvaluation eval =
        evaluate_platform(platform, heuristics, config.multiport_eval, config.optimal_solver);
    append_records(per_cell[i], eval, family.num_nodes, platform.graph().density(), rep);
  });
  return concatenate_in_order(std::move(per_cell));
}

std::size_t replicates_from_env(std::size_t default_value) {
  const char* env = std::getenv("BT_REPLICATES");
  if (env == nullptr) return default_value;
  const long parsed = std::strtol(env, nullptr, 10);
  BT_REQUIRE(parsed > 0, "BT_REPLICATES must be a positive integer");
  return static_cast<std::size_t>(parsed);
}

std::vector<std::size_t> sizes_from_env(const char* name,
                                        std::vector<std::size_t> default_sizes) {
  const char* env = std::getenv(name);
  if (env == nullptr) return default_sizes;
  std::vector<std::size_t> sizes;
  const char* cursor = env;
  while (*cursor != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(cursor, &end, 10);
    BT_REQUIRE(end != cursor && parsed > 1,
               std::string(name) + " must be a comma-separated list of sizes > 1");
    sizes.push_back(static_cast<std::size_t>(parsed));
    cursor = end;
    while (*cursor == ',' || *cursor == ' ') ++cursor;
  }
  BT_REQUIRE(!sizes.empty(), std::string(name) + " must name at least one size");
  return sizes;
}

}  // namespace bt
