#include "experiments/sweep_json.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace bt {

namespace {

void write_scaling(std::ostream& out, const ThreadScaling& scaling) {
  out << "  \"thread_scaling\": {\"threads\": " << scaling.threads
      << ", \"wall_ms_threads\": " << scaling.wall_ms_threads
      << ", \"wall_ms_single\": " << scaling.wall_ms_single
      << ", \"single_core_hardware\": " << (scaling.single_core_hardware ? "true" : "false")
      << "}\n";
}

}  // namespace

bool thread_scaling_enabled() {
  const char* env = std::getenv("BT_THREAD_SCALING");
  return env == nullptr || std::string(env) != "0";
}

std::string describe(const ThreadScaling& scaling) {
  std::ostringstream out;
  if (scaling.single_core_hardware) {
    out << "single-core hardware: multicore scaling not measurable here "
        << "(wall " << scaling.wall_ms_threads << " ms at 1 thread)";
  } else if (scaling.wall_ms_single <= 0.0) {
    out << "thread scaling skipped (BT_THREAD_SCALING=0); wall "
        << scaling.wall_ms_threads << " ms at " << scaling.threads << " threads";
  } else {
    out << "wall " << scaling.wall_ms_single << " ms at 1 thread vs "
        << scaling.wall_ms_threads << " ms at " << scaling.threads << " threads ("
        << (scaling.wall_ms_threads > 0.0 ? scaling.wall_ms_single / scaling.wall_ms_threads
                                          : 0.0)
        << "x)";
  }
  return out.str();
}

void write_sweep_json(const std::string& path, const std::string& bench,
                      const std::vector<SweepRecord>& records,
                      const ThreadScaling& scaling) {
  std::ofstream out(path);
  BT_REQUIRE(out.good(), "write_sweep_json: cannot open " + path);
  out << "{\n  \"bench\": \"" << bench << "\",\n  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const SweepRecord& r = records[i];
    out << "    {\"nodes\": " << r.num_nodes << ", \"density\": " << r.density
        << ", \"replicate\": " << r.replicate << ", \"heuristic\": \"" << r.heuristic
        << "\", \"throughput\": " << r.throughput << ", \"optimal\": " << r.optimal
        << ", \"ratio\": " << r.ratio << "}" << (i + 1 < records.size() ? ",\n" : "\n");
  }
  out << "  ],\n";
  write_scaling(out, scaling);
  out << "}\n";
}

void write_robustness_json(const std::string& path, const std::string& bench,
                           const std::vector<RobustnessRecord>& records,
                           const ThreadScaling& scaling) {
  std::ofstream out(path);
  BT_REQUIRE(out.good(), "write_robustness_json: cannot open " + path);
  out << "{\n  \"bench\": \"" << bench << "\",\n  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const RobustnessRecord& r = records[i];
    out << "    {\"nodes\": " << r.num_nodes << ", \"eps\": " << r.eps
        << ", \"replicate\": " << r.replicate << ", \"planner\": \"" << r.planner
        << "\", \"achieved_ratio\": " << r.achieved_ratio << "}"
        << (i + 1 < records.size() ? ",\n" : "\n");
  }
  out << "  ],\n";
  write_scaling(out, scaling);
  out << "}\n";
}

}  // namespace bt
