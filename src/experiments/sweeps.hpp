#pragma once

// Parameter sweeps reproducing the paper's experiment workloads
// (Section 5.1): the random-platform grid of Table 2 and the Tiers-style
// platform batches of Table 3.  Each sweep returns one flat record per
// (platform, heuristic) pair; aggregate.hpp groups and summarizes them.

#include <cstdint>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "experiments/evaluation.hpp"
#include "platform/random_generator.hpp"
#include "platform/tiers_generator.hpp"

namespace bt {

/// One (platform, heuristic) measurement.
struct SweepRecord {
  std::size_t num_nodes = 0;
  double density = 0.0;       ///< requested density (random) / actual (tiers)
  std::size_t replicate = 0;  ///< seed index within the cell
  std::string heuristic;
  double throughput = 0.0;
  double optimal = 0.0;
  double ratio = 0.0;
};

/// Grid sweep over random platforms (Table 2 defaults).
struct RandomSweepConfig {
  std::vector<std::size_t> sizes = {10, 20, 30, 40, 50};
  std::vector<double> densities = {0.04, 0.08, 0.12, 0.16, 0.20};
  std::size_t replicates = 10;  ///< platforms per (size, density) cell
  std::uint64_t base_seed = 42;
  bool multiport_eval = false;  ///< rate trees with the multi-port period
  double multiport_ratio = 0.8;
  /// Heuristic line-up; empty = one_port_heuristics() (or multiport line-up
  /// when multiport_eval is set).
  std::vector<HeuristicSpec> heuristics;
  /// Worker threads; 0 = BT_THREADS / hardware concurrency.  The records are
  /// bitwise-identical for every thread count (per-cell seeding).
  std::size_t num_threads = 0;
  /// Solver computing the reference TP* and the LP-heuristic loads; the
  /// benches pick the cutting plane for the lifted 100-200 node grids
  /// (see OptimalSolver in evaluation.hpp).
  OptimalSolver optimal_solver = OptimalSolver::kColumnGeneration;
};

std::vector<SweepRecord> run_random_sweep(const RandomSweepConfig& config);

/// Batch sweep over Tiers-style platforms (Table 3: 100 platforms each of
/// 30 and 65 nodes).
struct TiersSweepConfig {
  std::vector<TiersConfig> families = {tiers_config_30(), tiers_config_65()};
  std::size_t replicates = 100;
  std::uint64_t base_seed = 1337;
  bool multiport_eval = false;
  std::vector<HeuristicSpec> heuristics;
  /// Worker threads; 0 = BT_THREADS / hardware concurrency (deterministic
  /// for every value).
  std::size_t num_threads = 0;
  /// Reference-optimum solver, as in RandomSweepConfig.
  OptimalSolver optimal_solver = OptimalSolver::kColumnGeneration;
};

std::vector<SweepRecord> run_tiers_sweep(const TiersSweepConfig& config);

/// Honor the BT_REPLICATES environment variable (benches use it so CI runs
/// stay quick while full paper-scale runs remain one env var away).
std::size_t replicates_from_env(std::size_t default_value);

/// Honor a comma-separated size-list environment variable (e.g.
/// BT_SIZES="100,150,200"), falling back to `default_sizes` when unset.
/// The benches use it to lift the paper-size grids to the solvers' current
/// ceiling without recompiling.
std::vector<std::size_t> sizes_from_env(const char* name,
                                        std::vector<std::size_t> default_sizes);

}  // namespace bt
