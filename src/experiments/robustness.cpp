#include "experiments/robustness.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bt {

Platform perturb_platform(const Platform& platform, double eps, Rng& rng,
                          double multiport_ratio) {
  BT_REQUIRE(eps >= 0.0, "perturb_platform: negative perturbation");
  const Digraph& g = platform.graph();
  Digraph copy(g.num_nodes());
  std::vector<LinkCost> costs;
  costs.reserve(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    copy.add_edge(g.from(e), g.to(e));
    LinkCost cost = platform.link_cost(e);
    // Multiplicative noise symmetric in log-space: rate estimates are off by
    // at most a factor (1 + eps) in either direction.
    const double factor = eps == 0.0
                              ? 1.0
                              : std::exp(rng.uniform_real(-std::log1p(eps), std::log1p(eps)));
    cost.beta *= factor;
    cost.alpha *= factor;
    costs.push_back(cost);
  }
  Platform perturbed(std::move(copy), std::move(costs), platform.slice_size(),
                     platform.source());
  perturbed.set_multiport_overheads(multiport_ratio);
  return perturbed;
}

double packing_throughput_on(const Platform& truth, const SsbPackingSolution& plan) {
  BT_REQUIRE(plan.solved, "packing_throughput_on: unsolved plan");
  const Digraph& g = truth.graph();
  std::vector<double> out_time(g.num_nodes(), 0.0), in_time(g.num_nodes(), 0.0);
  double planned_rate = 0.0;
  for (const PackedTree& tree : plan.trees) {
    planned_rate += tree.rate;
    for (EdgeId e : tree.edges) {
      const double t = tree.rate * truth.edge_time(e);
      out_time[g.from(e)] += t;
      in_time[g.to(e)] += t;
    }
  }
  BT_REQUIRE(planned_rate > 0.0, "packing_throughput_on: empty plan");
  double worst_occupation = 0.0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    worst_occupation = std::max({worst_occupation, out_time[u], in_time[u]});
  }
  // Occupation <= 1 means the plan runs as-is; above 1 every rate must be
  // scaled down by the overload factor.
  const double scale = worst_occupation > 1.0 ? 1.0 / worst_occupation : 1.0;
  return planned_rate * scale;
}

}  // namespace bt
