#include "experiments/robustness.hpp"

#include <algorithm>

#include "core/registry.hpp"
#include "core/throughput.hpp"
#include "platform/random_generator.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace bt {

Platform perturb_platform(const Platform& platform, double eps, Rng& rng,
                          double multiport_ratio) {
  BT_REQUIRE(eps >= 0.0, "perturb_platform: negative perturbation");
  const Digraph& g = platform.graph();
  Digraph copy(g.num_nodes());
  std::vector<LinkCost> costs;
  costs.reserve(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    copy.add_edge(g.from(e), g.to(e));
    LinkCost cost = platform.link_cost(e);
    // Multiplicative noise symmetric in log-space: rate estimates are off by
    // at most a factor (1 + eps) in either direction.
    const double factor = eps == 0.0
                              ? 1.0
                              : std::exp(rng.uniform_real(-std::log1p(eps), std::log1p(eps)));
    cost.beta *= factor;
    cost.alpha *= factor;
    costs.push_back(cost);
  }
  Platform perturbed(std::move(copy), std::move(costs), platform.slice_size(),
                     platform.source());
  perturbed.set_multiport_overheads(multiport_ratio);
  return perturbed;
}

double packing_throughput_on(const Platform& truth, const SsbPackingSolution& plan) {
  BT_REQUIRE(plan.solved, "packing_throughput_on: unsolved plan");
  const Digraph& g = truth.graph();
  std::vector<double> out_time(g.num_nodes(), 0.0), in_time(g.num_nodes(), 0.0);
  double planned_rate = 0.0;
  for (const PackedTree& tree : plan.trees) {
    planned_rate += tree.rate;
    for (EdgeId e : tree.edges) {
      const double t = tree.rate * truth.edge_time(e);
      out_time[g.from(e)] += t;
      in_time[g.to(e)] += t;
    }
  }
  BT_REQUIRE(planned_rate > 0.0, "packing_throughput_on: empty plan");
  double worst_occupation = 0.0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    worst_occupation = std::max({worst_occupation, out_time[u], in_time[u]});
  }
  // Occupation <= 1 means the plan runs as-is; above 1 every rate must be
  // scaled down by the overload factor.
  const double scale = worst_occupation > 1.0 ? 1.0 / worst_occupation : 1.0;
  return planned_rate * scale;
}

std::vector<RobustnessRecord> run_robustness_sweep(const RobustnessSweepConfig& config) {
  // Pre-split the per-replicate generators in deterministic (size, eps,
  // replicate) order on the calling thread; afterwards every task owns two
  // independent streams (platform draw, noise draw) and can run on any
  // worker.  A single-size config seeds exactly as the pre-sizes protocol
  // did, so legacy records stay bitwise-reproducible.
  const std::vector<std::size_t> sizes =
      config.sizes.empty() ? std::vector<std::size_t>{config.num_nodes} : config.sizes;
  struct Task {
    std::size_t nodes = 0;
    double eps = 0.0;
    std::size_t rep = 0;
    Rng platform_rng{0};
    Rng noise_rng{0};
  };
  std::vector<Task> tasks;
  tasks.reserve(sizes.size() * config.eps_values.size() * config.replicates);
  for (std::size_t nodes : sizes) {
    for (double eps : config.eps_values) {
      Rng rng(config.base_seed ^ static_cast<std::uint64_t>(eps * 1000) ^
              (nodes == config.num_nodes ? 0 : nodes * 0x9e3779b9ULL));
      for (std::size_t rep = 0; rep < config.replicates; ++rep) {
        Task task;
        task.nodes = nodes;
        task.eps = eps;
        task.rep = rep;
        task.platform_rng = rng.split();
        task.noise_rng = rng.split();
        tasks.push_back(std::move(task));
      }
    }
  }

  std::vector<std::vector<RobustnessRecord>> per_task(tasks.size());
  ThreadPool pool(config.num_threads);
  parallel_for(pool, tasks.size(), [&](std::size_t i) {
    Task& task = tasks[i];
    RandomPlatformConfig pc;
    pc.num_nodes = task.nodes;
    pc.density = config.density;
    pc.multiport_ratio = config.multiport_ratio;
    const Platform truth = generate_random_platform(pc, task.platform_rng);
    const Platform estimate =
        perturb_platform(truth, task.eps, task.noise_rng, config.multiport_ratio);

    const SsbPackingSolution true_opt = solve_ssb(truth);
    const SsbPackingSolution planned_opt = solve_ssb(estimate);

    auto emit = [&](const std::string& planner, double achieved) {
      RobustnessRecord record;
      record.num_nodes = task.nodes;
      record.eps = task.eps;
      record.replicate = task.rep;
      record.planner = planner;
      record.achieved_ratio = achieved / true_opt.throughput;
      per_task[i].push_back(std::move(record));
    };
    for (const std::string& name : config.planners) {
      const HeuristicSpec& spec = find_heuristic(name);
      const std::vector<double>* loads =
          spec.needs_lp_loads ? &planned_opt.edge_load : nullptr;
      const BroadcastTree tree = spec.build(estimate, loads);  // planned blind
      emit(name, one_port_throughput(truth, tree));
    }
    // The multi-tree schedule planned on the estimate, executed on truth.
    emit(mtp_planner_name(), packing_throughput_on(truth, planned_opt));
  });

  return concatenate_in_order(std::move(per_task));
}

}  // namespace bt
