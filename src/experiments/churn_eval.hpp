#pragma once

// The churn sweep: live-churn scenarios (scenario/scenario_engine.hpp) over
// a grid of churn rates and platform sizes, the dynamic-platform companion
// to the one-shot E9 robustness sweep.  Each cell generates the standard
// random platform for its size, runs the seeded timeline against a
// PlannerService, and reports the integrated availability (delivered work
// over the offline re-solved optimum) plus loss and re-plan latency
// figures.  bench/bench_churn.cpp archives the records as BENCH_churn.json;
// tests/test_scenario.cpp runs trimmed cells.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "platform/platform.hpp"
#include "scenario/scenario_engine.hpp"

namespace bt {

struct ChurnSweepConfig {
  std::vector<std::size_t> sizes = {50, 120, 200};
  /// Expected events per period (ChurnTimelineConfig::events_per_period).
  std::vector<double> churn_rates = {0.25, 0.75};
  std::size_t num_periods = 48;
  /// Platform seed is seed_scale * n (the bench-family convention).
  std::uint64_t seed_scale = 424243;
  /// Worker pool for every solve in the sweep (nullptr: solver default).
  ThreadPool* pool = nullptr;
};

struct ChurnSweepRecord {
  std::size_t nodes = 0;
  double churn_rate = 0.0;
  ChurnScenarioResult result;
};

/// The standard churn-bench platform at size `n` (same density schedule as
/// the service bench; seeded by seed_scale * n).
Platform churn_instance(std::size_t n, std::uint64_t seed_scale);

/// Run every (size, rate) cell.  Record order is sizes-major, rates-minor,
/// independent of the pool width.
std::vector<ChurnSweepRecord> run_churn_sweep(const ChurnSweepConfig& config);

/// One-line human-readable cell summary.
std::string describe(const ChurnSweepRecord& record);

}  // namespace bt
