#pragma once

// Per-platform evaluation: the core measurement of Section 5.
//
// For one platform, compute the optimal MTP throughput TP* (cutting-plane
// solver under the one-port model -- the paper normalizes *all* experiments,
// including the multi-port ones, against this same value) and the
// steady-state throughput of every requested heuristic.  "Relative
// performance" is heuristic throughput / TP*.

#include <string>
#include <vector>

#include "core/registry.hpp"
#include "platform/platform.hpp"

namespace bt {

struct HeuristicResult {
  std::string name;
  double throughput = 0.0;  ///< slices per second of the built tree
  double ratio = 0.0;       ///< throughput / optimal MTP throughput
};

struct PlatformEvaluation {
  double optimal_throughput = 0.0;  ///< TP* of the one-port MTP program
  std::vector<HeuristicResult> results;
};

/// Evaluate `heuristics` on `platform`.  When `multiport_eval` is set the
/// trees are rated with the multi-port period (Figure 5); the reference TP*
/// stays the one-port LP optimum, so ratios may exceed 1 exactly as in the
/// paper.
PlatformEvaluation evaluate_platform(const Platform& platform,
                                     const std::vector<HeuristicSpec>& heuristics,
                                     bool multiport_eval = false);

}  // namespace bt
