#pragma once

// Per-platform evaluation: the core measurement of Section 5.
//
// For one platform, compute the optimal MTP throughput TP* (cutting-plane
// solver under the one-port model -- the paper normalizes *all* experiments,
// including the multi-port ones, against this same value) and the
// steady-state throughput of every requested heuristic.  "Relative
// performance" is heuristic throughput / TP*.

#include <string>
#include <vector>

#include "core/registry.hpp"
#include "platform/platform.hpp"
#include "ssb/ssb_solution.hpp"

namespace bt {

struct HeuristicResult {
  std::string name;
  double throughput = 0.0;  ///< slices per second of the built tree
  double ratio = 0.0;       ///< throughput / optimal MTP throughput
};

struct PlatformEvaluation {
  double optimal_throughput = 0.0;  ///< TP* of the one-port MTP program
  std::vector<HeuristicResult> results;
};

/// Which solver computes the reference optimum TP* (and the edge loads fed
/// to the LP-based heuristics).  Both agree to ~1e-9 relative (pinned by
/// tests/test_ssb_agreement.cpp); they differ in cost profile: column
/// generation also yields the explicit tree packing but tails off on
/// massively degenerate masters beyond ~150 nodes, while the cutting plane
/// rides the incremental dual-simplex master and stays fast to 200+ nodes
/// -- the experiment sweeps pick it for the lifted 100-200 node grids.
enum class OptimalSolver { kColumnGeneration, kCuttingPlane };

/// Evaluate `heuristics` on `platform`.  When `multiport_eval` is set the
/// trees are rated with the multi-port period (Figure 5); the reference TP*
/// stays the one-port LP optimum, so ratios may exceed 1 exactly as in the
/// paper.
PlatformEvaluation evaluate_platform(const Platform& platform,
                                     const std::vector<HeuristicSpec>& heuristics,
                                     bool multiport_eval = false,
                                     OptimalSolver solver = OptimalSolver::kColumnGeneration);

/// End-to-end schedule synthesis measurement (the sched/ + sim/ pipeline):
/// solve the SSB optimum, decompose it into weighted trees, orchestrate the
/// one-port rounds, statically validate, and replay.  The benches record
/// these per platform size.
struct ScheduleSynthesisResult {
  double optimal_throughput = 0.0;   ///< TP* under the chosen port model
  double designed_throughput = 0.0;  ///< schedule.throughput()
  double replay_throughput = 0.0;    ///< measured steady-state rate
  double replay_ratio = 0.0;         ///< replay / TP*
  bool valid = false;                ///< static checker verdict
  bool used_solution_columns = false;
  std::size_t num_trees = 0;
  std::size_t num_rounds = 0;
  double solve_ms = 0.0;
  double decompose_ms = 0.0;
  double orchestrate_ms = 0.0;
  double replay_ms = 0.0;
};

/// Run the full synthesis pipeline on one platform.  `from_solver_columns`
/// selects the exact colgen-column path; disabling it forces the edge-load
/// decomposer (the path cutting-plane solutions take).
ScheduleSynthesisResult evaluate_schedule_synthesis(const Platform& platform,
                                                    PortModel port_model,
                                                    bool from_solver_columns = true);

}  // namespace bt
