#include "experiments/aggregate.hpp"

#include <set>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace bt {

RatioSeries aggregate_ratios(const std::vector<SweepRecord>& records, GroupBy group_by) {
  std::map<std::string, std::map<double, std::vector<double>>> buckets;
  for (const SweepRecord& r : records) {
    const double key = group_by == GroupBy::kNumNodes
                           ? static_cast<double>(r.num_nodes)
                           : r.density;
    buckets[r.heuristic][key].push_back(r.ratio);
  }
  // Summarize the buckets, in parallel once there is enough data to amortize
  // the dispatch: each task owns one pre-inserted Summary slot (std::map
  // nodes are stable), so the series is identical for any thread count.
  // Below the threshold the serial loop is faster and never touches the
  // shared pool.
  RatioSeries series;
  if (records.size() < 65536) {
    for (const auto& [heuristic, by_key] : buckets) {
      for (const auto& [key, values] : by_key) {
        series[heuristic][key] = summarize(values);
      }
    }
    return series;
  }
  std::vector<const std::vector<double>*> values;
  std::vector<Summary*> slots;
  for (const auto& [heuristic, by_key] : buckets) {
    for (const auto& [key, bucket] : by_key) {
      values.push_back(&bucket);
      slots.push_back(&series[heuristic][key]);
    }
  }
  parallel_for(global_thread_pool(), slots.size(),
               [&](std::size_t i) { *slots[i] = summarize(*values[i]); });
  return series;
}

TablePrinter series_table(const RatioSeries& series, const std::string& key_name,
                          const std::vector<std::string>& heuristic_order,
                          bool with_deviation) {
  // Collect the union of keys across heuristics (they normally coincide).
  std::set<double> keys;
  for (const auto& [heuristic, by_key] : series) {
    for (const auto& [key, summary] : by_key) keys.insert(key);
  }

  std::vector<std::string> header{key_name};
  for (const std::string& name : heuristic_order) header.push_back(name);
  TablePrinter table(std::move(header));

  for (double key : keys) {
    std::vector<std::string> row{TablePrinter::fmt(key, key_name == "density" ? 2 : 0)};
    for (const std::string& name : heuristic_order) {
      const auto it = series.find(name);
      if (it == series.end() || it->second.find(key) == it->second.end()) {
        row.push_back("-");
        continue;
      }
      const Summary& s = it->second.at(key);
      std::string cell = TablePrinter::fmt(s.mean, 3);
      if (with_deviation) cell += " (±" + TablePrinter::fmt(s.stddev, 3) + ")";
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  return table;
}

TablePrinter tiers_table(const std::vector<SweepRecord>& records,
                         const std::vector<std::string>& heuristic_order) {
  const RatioSeries series = aggregate_ratios(records, GroupBy::kNumNodes);

  std::set<double> sizes;
  for (const auto& [heuristic, by_key] : series) {
    for (const auto& [key, summary] : by_key) sizes.insert(key);
  }

  std::vector<std::string> header{"nodes"};
  for (const std::string& name : heuristic_order) header.push_back(name);
  TablePrinter table(std::move(header));

  for (double size : sizes) {
    std::vector<std::string> row{TablePrinter::fmt(size, 0)};
    for (const std::string& name : heuristic_order) {
      const auto it = series.find(name);
      if (it == series.end() || it->second.find(size) == it->second.end()) {
        row.push_back("-");
        continue;
      }
      const Summary& s = it->second.at(size);
      row.push_back(TablePrinter::pct(s.mean) + " (±" + TablePrinter::pct(s.stddev) + ")");
    }
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace bt
