#include "experiments/evaluation.hpp"

#include "core/throughput.hpp"
#include "sched/orchestrate.hpp"
#include "sched/tree_decomposition.hpp"
#include "sched/validate.hpp"
#include "sim/schedule_replay.hpp"
#include "ssb/ssb_column_generation.hpp"
#include "ssb/ssb_cutting_plane.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace bt {

PlatformEvaluation evaluate_platform(const Platform& platform,
                                     const std::vector<HeuristicSpec>& heuristics,
                                     bool multiport_eval, OptimalSolver solver) {
  PlatformEvaluation evaluation;

  // One LP solve per platform feeds both the reference value and the
  // LP-based heuristics (only TP* and the edge loads are consumed here, so
  // either solver serves; see OptimalSolver).
  const SsbSolution optimum = solver == OptimalSolver::kCuttingPlane
                                  ? static_cast<SsbSolution>(solve_ssb_cutting_plane(platform))
                                  : static_cast<SsbSolution>(solve_ssb(platform));
  BT_ASSERT(optimum.solved, "evaluate_platform: SSB solver did not converge");
  evaluation.optimal_throughput = optimum.throughput;

  for (const HeuristicSpec& spec : heuristics) {
    const std::vector<double>* loads = spec.needs_lp_loads ? &optimum.edge_load : nullptr;
    const BroadcastOverlay overlay = spec.build_overlay(platform, loads);
    HeuristicResult result;
    result.name = spec.name;
    result.throughput = multiport_eval ? multiport_throughput(platform, overlay)
                                       : one_port_throughput(platform, overlay);
    result.ratio = evaluation.optimal_throughput > 0.0
                       ? result.throughput / evaluation.optimal_throughput
                       : 0.0;
    evaluation.results.push_back(std::move(result));
  }
  return evaluation;
}

ScheduleSynthesisResult evaluate_schedule_synthesis(const Platform& platform,
                                                    PortModel port_model,
                                                    bool from_solver_columns) {
  ScheduleSynthesisResult result;

  SsbColumnGenOptions solver_options;
  solver_options.port_model = port_model;
  solver_options.export_tree_columns = from_solver_columns;
  Timer timer;
  const SsbPackingSolution optimum = solve_ssb_column_generation(platform, solver_options);
  result.solve_ms = timer.millis();
  result.optimal_throughput = optimum.throughput;

  timer.reset();
  const TreeDecomposition decomposition = decompose_edge_load(platform, optimum);
  result.decompose_ms = timer.millis();
  result.used_solution_columns = decomposition.from_columns;
  result.num_trees = decomposition.trees.size();

  OrchestrationOptions orchestration;
  orchestration.port_model = port_model;
  timer.reset();
  const PeriodicSchedule schedule =
      orchestrate_one_port(platform, decomposition.trees, orchestration);
  result.orchestrate_ms = timer.millis();
  result.num_rounds = schedule.rounds.size();
  result.designed_throughput = schedule.throughput();

  ScheduleCheckOptions check_options;
  check_options.reference = &optimum;
  result.valid = check_schedule(platform, schedule, check_options).ok;

  timer.reset();
  const ReplayResult replay = replay_schedule(platform, schedule);
  result.replay_ms = timer.millis();
  result.replay_throughput = replay.steady_throughput;
  result.replay_ratio = result.optimal_throughput > 0.0
                            ? result.replay_throughput / result.optimal_throughput
                            : 0.0;
  return result;
}

}  // namespace bt
