#include "experiments/evaluation.hpp"

#include "core/throughput.hpp"
#include "ssb/ssb_column_generation.hpp"
#include "util/error.hpp"

namespace bt {

PlatformEvaluation evaluate_platform(const Platform& platform,
                                     const std::vector<HeuristicSpec>& heuristics,
                                     bool multiport_eval) {
  PlatformEvaluation evaluation;

  // One LP solve per platform feeds both the reference value and the
  // LP-based heuristics.
  const SsbSolution optimum = solve_ssb(platform);
  BT_ASSERT(optimum.solved, "evaluate_platform: SSB solver did not converge");
  evaluation.optimal_throughput = optimum.throughput;

  for (const HeuristicSpec& spec : heuristics) {
    const std::vector<double>* loads = spec.needs_lp_loads ? &optimum.edge_load : nullptr;
    const BroadcastOverlay overlay = spec.build_overlay(platform, loads);
    HeuristicResult result;
    result.name = spec.name;
    result.throughput = multiport_eval ? multiport_throughput(platform, overlay)
                                       : one_port_throughput(platform, overlay);
    result.ratio = evaluation.optimal_throughput > 0.0
                       ? result.throughput / evaluation.optimal_throughput
                       : 0.0;
    evaluation.results.push_back(std::move(result));
  }
  return evaluation;
}

}  // namespace bt
