#pragma once

// Robustness experiment (extension, E9).
//
// The paper's conclusion argues that (i) heuristics should be fed link
// estimates from grid information services, and (ii) "a communication
// scheme using a single broadcast tree may well be more robust to small
// changes in link performances".  This module makes both claims testable:
// trees (and the optimal multi-tree schedule) are *planned* on a perturbed
// copy of the platform and *executed* on the true one.

#include <cstdint>

#include "platform/platform.hpp"
#include "ssb/ssb_column_generation.hpp"
#include "util/rng.hpp"

namespace bt {

/// A copy of `platform` whose inverse bandwidths are multiplied by
/// independent factors drawn uniformly from [1/(1+eps), 1+eps] -- the
/// "measured" platform an information service would report.  Start-up
/// latencies and multi-port overheads are re-derived consistently.
Platform perturb_platform(const Platform& platform, double eps, Rng& rng,
                          double multiport_ratio = 0.8);

/// Throughput actually achieved when the multi-tree schedule `plan`
/// (computed on some estimated platform) is executed on `truth`: the
/// planned per-tree rates are scaled down uniformly until every one-port
/// constraint of the true platform is met, i.e.
/// TP = sum(rates) / max_u max(out-occupation, in-occupation).
double packing_throughput_on(const Platform& truth, const SsbPackingSolution& plan);

}  // namespace bt
