#pragma once

// Robustness experiment (extension, E9).
//
// The paper's conclusion argues that (i) heuristics should be fed link
// estimates from grid information services, and (ii) "a communication
// scheme using a single broadcast tree may well be more robust to small
// changes in link performances".  This module makes both claims testable:
// trees (and the optimal multi-tree schedule) are *planned* on a perturbed
// copy of the platform and *executed* on the true one.

#include <cstdint>
#include <string>
#include <vector>

#include "platform/platform.hpp"
#include "ssb/ssb_column_generation.hpp"
#include "util/rng.hpp"

namespace bt {

/// A copy of `platform` whose inverse bandwidths are multiplied by
/// independent factors drawn uniformly from [1/(1+eps), 1+eps] -- the
/// "measured" platform an information service would report.  Start-up
/// latencies and multi-port overheads are re-derived consistently.
Platform perturb_platform(const Platform& platform, double eps, Rng& rng,
                          double multiport_ratio = 0.8);

/// Throughput actually achieved when the multi-tree schedule `plan`
/// (computed on some estimated platform) is executed on `truth`: the
/// planned per-tree rates are scaled down uniformly until every one-port
/// constraint of the true platform is met, i.e.
/// TP = sum(rates) / max_u max(out-occupation, in-occupation).
double packing_throughput_on(const Platform& truth, const SsbPackingSolution& plan);

/// Planner label used for the optimal multi-tree schedule in the records.
inline const char* mtp_planner_name() { return "mtp_schedule"; }

/// One (size, noise level, replicate, planner) measurement of the E9
/// protocol.
struct RobustnessRecord {
  std::size_t num_nodes = 0;  ///< platform size of this measurement
  double eps = 0.0;           ///< link-estimate noise bound (factor 1 + eps)
  std::size_t replicate = 0;  ///< platform index within the eps level
  std::string planner;        ///< heuristic code name or mtp_planner_name()
  double achieved_ratio = 0.0;  ///< throughput on truth / true optimum
};

/// Full E9 protocol: for every size, eps and replicate, draw a random
/// platform ("truth"), perturb it into the estimate the planner sees, plan
/// trees and the MTP schedule on the estimate, execute on truth.
struct RobustnessSweepConfig {
  std::vector<double> eps_values = {0.0, 0.1, 0.25, 0.5, 1.0};
  std::size_t replicates = 5;
  std::size_t num_nodes = 30;
  /// Platform sizes to sweep; empty = the single legacy `num_nodes`.  The
  /// lifted bench runs this at 100-200 nodes (env-tunable).
  std::vector<std::size_t> sizes;
  double density = 0.12;
  double multiport_ratio = 0.8;
  std::vector<std::string> planners = {"prune_degree", "grow_tree", "lp_prune"};
  std::uint64_t base_seed = 0xE9;
  /// Worker threads; 0 = BT_THREADS / hardware concurrency.  Per-replicate
  /// generators are pre-split with Rng::split before dispatch, so the
  /// records are bitwise-identical for every thread count.
  std::size_t num_threads = 0;
};

std::vector<RobustnessRecord> run_robustness_sweep(const RobustnessSweepConfig& config);

}  // namespace bt
