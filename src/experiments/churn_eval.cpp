#include "experiments/churn_eval.hpp"

#include <sstream>

#include "experiments/service_eval.hpp"
#include "platform/random_generator.hpp"
#include "util/rng.hpp"

namespace bt {

Platform churn_instance(std::size_t n, std::uint64_t seed_scale) {
  Rng rng(n * seed_scale);
  RandomPlatformConfig config;
  config.num_nodes = n;
  config.density = n <= 12 ? 0.25 : 0.12;
  return generate_random_platform(config, rng);
}

std::vector<ChurnSweepRecord> run_churn_sweep(const ChurnSweepConfig& config) {
  std::vector<ChurnSweepRecord> records;
  records.reserve(config.sizes.size() * config.churn_rates.size());
  for (const std::size_t n : config.sizes) {
    const Platform platform = churn_instance(n, config.seed_scale);
    for (const double rate : config.churn_rates) {
      ChurnScenarioOptions options;
      options.timeline.num_periods = config.num_periods;
      options.timeline.events_per_period = rate;
      options.timeline.seed = config.seed_scale + static_cast<std::uint64_t>(n);
      options.pool = config.pool;
      ChurnSweepRecord record;
      record.nodes = n;
      record.churn_rate = rate;
      record.result = run_churn_scenario(platform, options);
      records.push_back(std::move(record));
    }
  }
  return records;
}

std::string describe(const ChurnSweepRecord& record) {
  const ChurnScenarioResult& r = record.result;
  const LatencySummary replans = summarize_latencies(r.replan_latency_ms);
  std::ostringstream out;
  out << "n=" << record.nodes << " rate=" << record.churn_rate << ": availability "
      << r.availability << " (" << r.delivered_total << " delivered / " << r.offline_capacity
      << " offline capacity), " << r.lost_total << " slices lost, " << r.num_events << " events ("
      << r.num_degrades << " degrade, " << r.num_recoveries << " recover, " << r.num_failures
      << " fail, " << r.num_joins << " join), " << r.num_swaps << " swaps, replan p50 "
      << replans.p50_ms << " ms p99 " << replans.p99_ms << " ms";
  return out.str();
}

}  // namespace bt
