#pragma once

// Workload driver for the broadcast-planning service.
//
// The service bench (bench/bench_service.cpp) and the service tests need
// the same thing: a reproducible mixed stream of planner requests --
// throughput queries, schedule fetches, link degradations and restores --
// played against a PlannerService with per-kind latencies recorded.  This
// header provides the stream generator (seeded bt::Rng, so a (platform,
// config, seed) triple pins the exact request sequence) and the
// single-threaded replay driver; the bench adds its own ThreadPool layer
// for the concurrent-reader throughput measurement on top.
//
// Degrade/restore come in matched pairs per arc: a degrade scales the
// arc's cost by a factor > 1 (slower link), a restore puts back the
// pristine cost captured from the platform at stream-generation time.
// Restores therefore also reactivate removed links, mirroring how a
// monitoring daemon would push a fresh measurement for a link that came
// back.  The pairing machinery (outstanding set, pristine costs, LIFO
// restore order) lives in scenario/event_stream.hpp's LinkChurnSampler,
// shared with the churn-timeline generator so the two workload generators
// cannot drift apart.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "platform/platform.hpp"
#include "service/planner_service.hpp"
#include "util/rng.hpp"

namespace bt {

enum class ServiceRequestKind {
  kThroughput,  ///< "TP* for source s?"
  kSchedule,    ///< "give me the schedule for source s"
  kDegrade,     ///< "link e degraded: times scaled by `factor`"
  kRestore,     ///< "link e re-measured at its pristine cost"
};

struct ServiceRequest {
  ServiceRequestKind kind = ServiceRequestKind::kThroughput;
  NodeId source = 0;     ///< queried source (read kinds; also re-planned after a mutation)
  EdgeId edge = 0;       ///< mutated arc (kDegrade / kRestore)
  double factor = 1.0;   ///< time scale (kDegrade)
  LinkCost cost;         ///< pristine cost (kRestore)
};

struct ServiceStreamConfig {
  std::size_t num_requests = 200;
  /// Fraction of requests that are mutations (split evenly degrade/restore,
  /// degrades first per arc).
  double mutation_fraction = 0.1;
  /// Among read requests, fraction asking for the schedule instead of TP*.
  double schedule_fraction = 0.25;
  /// Degradation factor range (times are *multiplied*: 1.43 ~= "bandwidth
  /// down 30%").
  double min_degrade_factor = 1.2;
  double max_degrade_factor = 2.0;
  /// Sources the read traffic rotates over (must be < platform nodes).
  std::vector<NodeId> sources = {0};
  std::uint64_t seed = 104729;
};

/// A reproducible mixed request stream over `platform`'s arcs and the
/// configured sources.  Degrades pick random arcs; each restore targets
/// the most recently degraded arc still outstanding (LIFO), with its
/// pristine cost from `platform`.
std::vector<ServiceRequest> make_request_stream(const Platform& platform,
                                                const ServiceStreamConfig& config);

/// Order statistics of one latency population (milliseconds).
struct LatencySummary {
  std::size_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Summarize `samples_ms` (empirical quantiles, nearest-rank).
LatencySummary summarize_latencies(std::vector<double> samples_ms);

std::string describe(const LatencySummary& s);

/// Replay result: per-kind latency populations plus a checksum so the
/// solves cannot be optimized away and runs can be compared for identity.
struct ServiceStreamResult {
  LatencySummary reads;    ///< kThroughput / kSchedule request latencies
  LatencySummary replans;  ///< kDegrade / kRestore: mutation + re-plan of one source
  double throughput_checksum = 0.0;  ///< sum of every TP* observed
  std::size_t schedules_fetched = 0;
  std::size_t mutations_applied = 0;
};

/// Play `stream` against `service` single-threaded, timing each request.
/// Mutation requests are timed *through* the follow-up re-plan (a
/// throughput query for the request's source): the figure of merit is
/// "link degraded -> new plan in hand", not the cheap delta application
/// alone.
ServiceStreamResult run_request_stream(PlannerService& service,
                                       const std::vector<ServiceRequest>& stream);

}  // namespace bt
