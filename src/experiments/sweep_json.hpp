#pragma once

// Machine-readable archives of the experiment sweeps.
//
// The paper-figure benches (Fig. 4a/4b/5, Table 3, E9 robustness) print
// human-readable tables; CI additionally archives their raw records as
// BENCH_<figure>.json next to BENCH_lp.json so the lifted 100-200 node
// curves are tracked per commit.  Each archive also carries a
// thread-scaling record: the sweep's wall-clock at 1 worker thread vs the
// BT_THREADS / hardware default, with single-core hardware flagged
// explicitly (CI runners often expose one core, where speedup parity is
// the expected result).

#include <string>
#include <vector>

#include "experiments/robustness.hpp"
#include "experiments/sweeps.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace bt {

/// Wall-clock of one sweep at the default thread count and, when the
/// hardware is multicore, at a single worker thread.
struct ThreadScaling {
  std::size_t threads = 1;       ///< worker count of the parallel run
  double wall_ms_threads = 0.0;  ///< sweep wall-clock at `threads` workers
  double wall_ms_single = 0.0;   ///< at 1 worker (0 = not measured)
  bool single_core_hardware = false;
};

/// BT_THREAD_SCALING != "0" (default on): whether the 1-thread comparison
/// run of measure_thread_scaling is taken.
bool thread_scaling_enabled();

/// Run `sweep(num_threads)` once at the default worker count and -- on
/// multicore hardware, unless BT_THREAD_SCALING=0 -- once more with a
/// single worker, timing both.  The sweep records are bitwise-identical
/// across thread counts (the sweeps pre-split their seeds), so the second
/// run only buys the scaling measurement.
template <typename Sweep>
ThreadScaling measure_thread_scaling(const Sweep& sweep) {
  ThreadScaling scaling;
  scaling.threads = ThreadPool::default_thread_count();
  Timer timer;
  sweep(/*num_threads=*/0);
  scaling.wall_ms_threads = timer.millis();
  scaling.single_core_hardware = scaling.threads <= 1;
  if (!scaling.single_core_hardware && thread_scaling_enabled()) {
    timer.reset();
    sweep(/*num_threads=*/1);
    scaling.wall_ms_single = timer.millis();
  }
  return scaling;
}

/// One-line human-readable summary of `scaling` (speedup, or the
/// single-core note where it applies).
std::string describe(const ThreadScaling& scaling);

/// Archive a random/Tiers sweep: raw records plus the scaling block.
void write_sweep_json(const std::string& path, const std::string& bench,
                      const std::vector<SweepRecord>& records,
                      const ThreadScaling& scaling);

/// Archive an E9 robustness sweep, same layout with eps instead of density.
void write_robustness_json(const std::string& path, const std::string& bench,
                           const std::vector<RobustnessRecord>& records,
                           const ThreadScaling& scaling);

}  // namespace bt
