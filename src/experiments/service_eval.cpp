#include "experiments/service_eval.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "scenario/event_stream.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace bt {

std::vector<ServiceRequest> make_request_stream(const Platform& platform,
                                                const ServiceStreamConfig& config) {
  BT_REQUIRE(!config.sources.empty(), "make_request_stream: need at least one source");
  for (NodeId s : config.sources) {
    BT_REQUIRE(s < platform.num_nodes(), "make_request_stream: source out of range");
  }
  BT_REQUIRE(platform.num_edges() > 0, "make_request_stream: platform has no arcs");
  BT_REQUIRE(config.mutation_fraction >= 0.0 && config.mutation_fraction <= 1.0,
             "make_request_stream: mutation_fraction must be in [0,1]");

  Rng rng(config.seed);
  // Degrade/restore pairing (LIFO, pristine costs) is shared with the churn
  // timeline generator; the sampler's no-removals path draws exactly the
  // arcs this function drew inline before, so historical streams are
  // unchanged.
  LinkChurnSampler::Config sampler_config;
  sampler_config.min_degrade_factor = config.min_degrade_factor;
  sampler_config.max_degrade_factor = config.max_degrade_factor;
  LinkChurnSampler sampler(platform, sampler_config);
  std::vector<ServiceRequest> stream;
  stream.reserve(config.num_requests);

  for (std::size_t i = 0; i < config.num_requests; ++i) {
    ServiceRequest req;
    req.source = config.sources[rng.index(config.sources.size())];
    const bool mutate = rng.bernoulli(config.mutation_fraction);
    if (mutate && sampler.has_outstanding() && rng.bernoulli(0.5)) {
      const auto restore = sampler.pop_restore();
      req.kind = ServiceRequestKind::kRestore;
      req.edge = restore.edge;
      req.cost = restore.cost;
    } else if (mutate) {
      const auto degrade = sampler.sample_degrade(rng);
      req.kind = ServiceRequestKind::kDegrade;
      req.edge = degrade.edge;
      req.factor = degrade.factor;
    } else if (rng.bernoulli(config.schedule_fraction)) {
      req.kind = ServiceRequestKind::kSchedule;
    } else {
      req.kind = ServiceRequestKind::kThroughput;
    }
    stream.push_back(req);
  }
  return stream;
}

LatencySummary summarize_latencies(std::vector<double> samples_ms) {
  LatencySummary s;
  s.count = samples_ms.size();
  if (samples_ms.empty()) return s;
  std::sort(samples_ms.begin(), samples_ms.end());
  s.mean_ms = std::accumulate(samples_ms.begin(), samples_ms.end(), 0.0) /
              static_cast<double>(samples_ms.size());
  // Nearest-rank quantiles: ceil(q * n) - 1, clamped.
  auto rank = [&](double q) {
    const std::size_t n = samples_ms.size();
    std::size_t r = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
    return samples_ms[std::min(n - 1, r > 0 ? r - 1 : 0)];
  };
  s.p50_ms = rank(0.50);
  s.p99_ms = rank(0.99);
  s.max_ms = samples_ms.back();
  return s;
}

std::string describe(const LatencySummary& s) {
  std::ostringstream out;
  out << s.count << " samples, mean " << s.mean_ms << " ms, p50 " << s.p50_ms << " ms, p99 "
      << s.p99_ms << " ms, max " << s.max_ms << " ms";
  return out.str();
}

ServiceStreamResult run_request_stream(PlannerService& service,
                                       const std::vector<ServiceRequest>& stream) {
  ServiceStreamResult result;
  std::vector<double> read_ms, replan_ms;
  read_ms.reserve(stream.size());

  for (const ServiceRequest& req : stream) {
    Timer t;
    switch (req.kind) {
      case ServiceRequestKind::kThroughput:
        result.throughput_checksum += service.throughput(req.source);
        read_ms.push_back(t.millis());
        break;
      case ServiceRequestKind::kSchedule: {
        auto schedule = service.schedule(req.source);
        result.throughput_checksum += schedule->throughput();
        ++result.schedules_fetched;
        read_ms.push_back(t.millis());
        break;
      }
      case ServiceRequestKind::kDegrade:
        service.scale_link_time(req.edge, req.factor);
        result.throughput_checksum += service.throughput(req.source);
        replan_ms.push_back(t.millis());
        ++result.mutations_applied;
        break;
      case ServiceRequestKind::kRestore:
        service.set_link_cost(req.edge, req.cost);
        result.throughput_checksum += service.throughput(req.source);
        replan_ms.push_back(t.millis());
        ++result.mutations_applied;
        break;
    }
  }

  result.reads = summarize_latencies(std::move(read_ms));
  result.replans = summarize_latencies(std::move(replan_ms));
  return result;
}

}  // namespace bt
