#pragma once

// Grouping and summarizing sweep records into the series/rows the paper
// plots: relative performance per heuristic, keyed by platform size
// (Figures 4a and 5), by density (Figure 4b), or as a single mean +-
// deviation row per platform family (Table 3).

#include <map>
#include <string>
#include <vector>

#include "experiments/sweeps.hpp"
#include "util/statistics.hpp"
#include "util/table.hpp"

namespace bt {

/// How to key the aggregation.
enum class GroupBy { kNumNodes, kDensity };

/// series[heuristic][key] = summary of `ratio` over all matching records.
using RatioSeries = std::map<std::string, std::map<double, Summary>>;

/// Group records and summarize the relative-performance ratios.
RatioSeries aggregate_ratios(const std::vector<SweepRecord>& records, GroupBy group_by);

/// Render a RatioSeries as a table: one row per key value, one column per
/// heuristic (columns ordered by `heuristic_order`), mean ratios.
TablePrinter series_table(const RatioSeries& series, const std::string& key_name,
                          const std::vector<std::string>& heuristic_order,
                          bool with_deviation = false);

/// Table 3 style: one row per platform size, "mean% (+-dev%)" per heuristic.
TablePrinter tiers_table(const std::vector<SweepRecord>& records,
                         const std::vector<std::string>& heuristic_order);

}  // namespace bt
