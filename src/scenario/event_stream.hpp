#pragma once

// Shared seeded link-churn sampling.
//
// Two workload generators need the same primitive: a reproducible stream of
// link degradations and restores over a platform's arcs --
//
//  * experiments/service_eval.hpp samples a mixed read/mutate *request*
//    stream for the planner-service bench;
//  * scenario/churn_timeline.hpp samples an *event timeline* of platform
//    mutations for the live-churn scenario engine.
//
// Both used to duplicate the pairing logic (which arcs are currently
// degraded, what their pristine costs were, LIFO restore order); this
// sampler owns it once.  Degrades pick a uniformly random live arc and a
// uniformly random slowdown factor from the configured range; each restore
// pops the most recently degraded arc still outstanding and carries the
// pristine cost captured when the sampler (or a later extend()) first saw
// the arc.  Removed arcs can be marked so the sampler stops proposing them;
// the no-removals fast path draws exactly one arc index per degrade, which
// keeps the historical service_eval streams unchanged.
//
// All draws come from the caller's bt::Rng, so a (platform, config, seed)
// triple pins the exact sequence.

#include <cstddef>
#include <vector>

#include "platform/platform.hpp"
#include "util/rng.hpp"

namespace bt {

class LinkChurnSampler {
 public:
  struct Config {
    /// Degradation factor range (times are *multiplied*: 1.43 ~= "bandwidth
    /// down 30%").
    double min_degrade_factor = 1.2;
    double max_degrade_factor = 2.0;
  };

  /// Captures the pristine cost of every arc of `platform`.  Throws
  /// bt::Error on a platform without arcs or an inverted factor range.
  LinkChurnSampler(const Platform& platform, Config config);

  /// Register arcs a grown platform added since construction (node joins);
  /// their current costs become the pristine reference.  No-op when the
  /// platform has not grown.
  void extend(const Platform& platform);

  /// Exclude arc `e` from future degrade proposals (link failed).  Any
  /// outstanding degradation of `e` is skipped by later restores.
  void mark_removed(EdgeId e);

  /// Apply a shrink_platform arc remap (node leave): old arc id ->
  /// `edge_map[old]`, with Digraph::npos for arcs the leave dropped.
  /// Pristine costs and removal marks follow their surviving arcs;
  /// outstanding degradations of dropped arcs are forgotten.  `edge_map`
  /// must cover every arc the sampler knows and map into
  /// [0, new_num_edges).
  void compact(const std::vector<EdgeId>& edge_map, std::size_t new_num_edges);

  /// Arcs currently degraded and not removed (restores available).
  bool has_outstanding() const;
  std::size_t num_outstanding() const;

  struct Degrade {
    EdgeId edge = 0;
    double factor = 1.0;
  };
  /// Sample a degradation: a uniformly random live arc (resampled past
  /// removed arcs) and a factor from the configured range; the arc joins
  /// the outstanding list.  Requires at least one live arc.
  Degrade sample_degrade(Rng& rng);

  struct Restore {
    EdgeId edge = 0;
    LinkCost cost;  ///< pristine cost to put back
  };
  /// Pop the most recent outstanding degradation (LIFO), skipping arcs
  /// removed since they were degraded.  Requires has_outstanding().
  Restore pop_restore();

 private:
  Config config_;
  std::vector<LinkCost> pristine_;  ///< by arc id
  std::vector<char> removed_;
  std::vector<EdgeId> outstanding_;  ///< degraded arcs, most recent last
  std::size_t num_removed_ = 0;
};

}  // namespace bt
