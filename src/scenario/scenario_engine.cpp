#include "scenario/scenario_engine.hpp"

#include <cstring>
#include <memory>
#include <utility>

#include "sim/replay_session.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace bt {

namespace {

bool bits_equal(double a, double b) {
  std::uint64_t x = 0, y = 0;
  std::memcpy(&x, &a, sizeof(x));
  std::memcpy(&y, &b, sizeof(y));
  return x == y;
}

/// TP* of the live platform from a throwaway cold session (the offline
/// reference an omniscient re-planner would hit).
double offline_reference(const Platform& live, const std::vector<char>& removed,
                         NodeId source, const PlannerSessionOptions& options) {
  PlannerSession session(live.with_source(source), options);
  for (EdgeId e = 0; e < removed.size(); ++e) {
    if (removed[e]) session.remove_link(e);
  }
  return session.throughput();
}

}  // namespace

ChurnScenarioResult run_churn_scenario(const Platform& platform,
                                       const ChurnScenarioOptions& options) {
  // Leaves compact node ids, so the source's id can shift mid-scenario.
  NodeId source = platform.source();
  const ChurnTimeline timeline = make_churn_timeline(platform, options.timeline);

  ChurnScenarioOptions opts = options;
  opts.service.session.cutting.pool = options.pool;
  opts.service.session.colgen.pool = options.pool;
  const bool async = opts.service.async_replan;
  PlannerService service(platform, opts.service);
  ScheduleSubscription sub;
  sub.source = source;

  // Offline reference sessions run the batch path (cold_polish on): their
  // TP* is the bitwise-reproducible cold number at every pool width.
  PlannerSessionOptions offline_options = opts.service.session;
  offline_options.cold_polish = true;

  // The engine's mirror of the service's live topology: the replayer
  // executes against this, not against the planning view.
  Platform live = platform;
  std::vector<char> removed(platform.num_edges(), 0);

  ChurnScenarioResult result;
  result.periods.reserve(options.timeline.num_periods);

  // Initial plan: plan() first so schedule() synthesizes from the cutting
  // loads (the warm re-plan path) instead of running packing column
  // generation per boundary.
  PlanTier installed_tier = service.plan(source)->tier;
  auto installed = service.schedule(source);
  service.poll_schedule(sub);  // adopt the initial build's version
  std::uint64_t installed_version = sub.seen_version;
  ReplaySession replay(live, installed);
  if (options.warm_handoff) {
    // Start in steady state: the scenario window opens on a broadcast that
    // is already running, so a quiet timeline loses nothing and every loss
    // recorded below is churn, not the startup fill transient.
    replay.install(live, installed, /*warm_handoff=*/true);
  }

  double offline_tp = offline_reference(live, removed, source, offline_options);

  std::size_t next_event = 0;
  for (std::size_t p = 0; p < options.timeline.num_periods; ++p) {
    // 1. Pick up a re-plan finished at an earlier boundary (hot-swap).  In
    // async mode, drain first: the worker finishes every job queued by the
    // previous boundary's batch, so which builds exist at each boundary is
    // a function of the timeline, never of worker timing.
    if (async) {
      service.drain_replans();
      for (double ms : service.take_replan_latencies()) {
        result.replan_latency_ms.push_back(ms);
      }
    }
    if (auto fresh = service.poll_schedule(sub)) {
      replay.install(live, fresh, options.warm_handoff);
      installed_version = sub.seen_version;
      // Pre-events, the service's newest plan is the one behind the build
      // the poll just returned, so this read is its tier (a cache/snapshot
      // hit, no solve).
      installed_tier = service.plan(source)->tier;
      ++result.num_swaps;
    }

    // 2. Apply this boundary's events to the service.  Synchronous mode
    // re-plans inline after each; async mode pauses the worker so the whole
    // batch coalesces into one re-plan of the final state on resume.
    if (async) service.pause_replans();
    std::uint64_t events_applied = 0;
    bool left = false;
    while (next_event < timeline.events.size() &&
           timeline.events[next_event].period == p) {
      const ChurnEvent& event = timeline.events[next_event];
      switch (event.kind) {
        case ChurnEventKind::kDegrade: {
          service.scale_link_time(event.edge, event.factor);
          LinkCost cost = live.link_cost(event.edge);
          cost.alpha *= event.factor;
          cost.beta *= event.factor;
          live.set_link_cost(event.edge, cost);
          ++result.num_degrades;
          break;
        }
        case ChurnEventKind::kRecover:
          service.set_link_cost(event.edge, event.cost);
          live.set_link_cost(event.edge, event.cost);
          ++result.num_recoveries;
          break;
        case ChurnEventKind::kLinkFailure:
          service.remove_link(event.edge);
          removed[event.edge] = 1;
          ++result.num_failures;
          break;
        case ChurnEventKind::kNodeJoin:
          service.add_node(event.in_links, event.out_links);
          live = grow_platform(live, event.in_links, event.out_links);
          removed.resize(live.num_edges(), 0);
          ++result.num_joins;
          break;
        case ChurnEventKind::kNodeLeave: {
          // Mirror the service's id compaction onto the engine's live view.
          // Both run shrink_platform on identical topology, so the remap
          // the service hands back applies verbatim to `live`'s arc ids.
          ShrinkRemap remap;
          service.remove_node(event.node, &remap);
          live = shrink_platform(live, event.node);
          std::vector<char> compact_removed(live.num_edges(), 0);
          for (EdgeId e = 0; e < remap.edge_map.size(); ++e) {
            if (remap.edge_map[e] != Digraph::npos) {
              compact_removed[remap.edge_map[e]] = removed[e];
            }
          }
          removed = std::move(compact_removed);
          source = remap.node_map[source];
          left = true;
          ++result.num_leaves;
          break;
        }
      }
      if (!async) {
        Timer replan;
        service.plan(source);
        service.schedule(source);
        result.replan_latency_ms.push_back(replan.millis());
      }
      ++events_applied;
      ++next_event;
      ++result.num_events;
    }
    if (async) service.resume_replans();

    if (left) {
      // A leave dropped every session, snapshot and queued job, and the
      // installed schedule addresses the old id space -- force a
      // synchronous re-plan (even in async mode) and rebuild the replayer,
      // whose install() cannot shrink its platform.
      Timer replan;
      service.plan(source);
      auto fresh = service.schedule(source);
      if (async) result.replan_latency_ms.push_back(replan.millis());
      sub = ScheduleSubscription{};
      sub.source = source;
      service.poll_schedule(sub);
      installed_version = sub.seen_version;
      installed_tier = service.plan(source)->tier;
      replay = ReplaySession(live, fresh);
      if (options.warm_handoff) {
        replay.install(live, fresh, /*warm_handoff=*/true);
      }
    }
    if (events_applied > 0) {
      offline_tp = offline_reference(live, removed, source, offline_options);
    }

    // 3. Execute one period of the installed schedule on the live platform.
    replay.set_platform(live, removed);
    const PeriodDelivery delivery = replay.run_period();

    ChurnPeriodRecord record;
    record.period = p;
    record.schedule_version = installed_version;
    record.events_applied = events_applied;
    record.live_nodes = live.num_nodes();
    record.period_seconds = delivery.seconds;
    record.designed_slices = delivery.designed_slices;
    record.delivered_total = delivery.delivered_total;
    record.min_delivered = delivery.min_delivered;
    record.lost_slices = delivery.lost_slices;
    record.offline_throughput = offline_tp;
    record.tier = static_cast<std::uint32_t>(installed_tier);
    record.stale = installed_version < service.version() ? 1 : 0;
    result.stale_periods += record.stale;
    switch (installed_tier) {
      case PlanTier::kExact: ++result.periods_exact; break;
      case PlanTier::kRebuild: ++result.periods_rebuild; break;
      case PlanTier::kHeuristic: ++result.periods_heuristic; break;
    }
    result.periods.push_back(record);

    result.delivered_total += delivery.delivered_total;
    result.lost_total += delivery.lost_slices;
    result.offline_capacity +=
        offline_tp * delivery.seconds * static_cast<double>(live.num_nodes() - 1);
  }

  if (async) {
    // Jobs queued by the final boundary: finish and account for them.
    service.drain_replans();
    for (double ms : service.take_replan_latencies()) {
      result.replan_latency_ms.push_back(ms);
    }
  }
  result.replans_failed = service.stats().replans_failed;

  result.availability =
      result.offline_capacity > 0.0 ? result.delivered_total / result.offline_capacity : 0.0;
  return result;
}

bool payload_bitwise_equal(const ChurnScenarioResult& a, const ChurnScenarioResult& b) {
  if (a.periods.size() != b.periods.size()) return false;
  for (std::size_t i = 0; i < a.periods.size(); ++i) {
    const ChurnPeriodRecord& x = a.periods[i];
    const ChurnPeriodRecord& y = b.periods[i];
    if (x.period != y.period || x.schedule_version != y.schedule_version ||
        x.events_applied != y.events_applied || x.live_nodes != y.live_nodes ||
        x.tier != y.tier || x.stale != y.stale)
      return false;
    if (!bits_equal(x.period_seconds, y.period_seconds) ||
        !bits_equal(x.designed_slices, y.designed_slices) ||
        !bits_equal(x.delivered_total, y.delivered_total) ||
        !bits_equal(x.min_delivered, y.min_delivered) ||
        !bits_equal(x.lost_slices, y.lost_slices) ||
        !bits_equal(x.offline_throughput, y.offline_throughput))
      return false;
  }
  return bits_equal(a.delivered_total, b.delivered_total) &&
         bits_equal(a.lost_total, b.lost_total) &&
         bits_equal(a.offline_capacity, b.offline_capacity) &&
         bits_equal(a.availability, b.availability) && a.num_events == b.num_events &&
         a.num_swaps == b.num_swaps && a.num_degrades == b.num_degrades &&
         a.num_recoveries == b.num_recoveries && a.num_failures == b.num_failures &&
         a.num_joins == b.num_joins && a.num_leaves == b.num_leaves &&
         a.stale_periods == b.stale_periods && a.periods_exact == b.periods_exact &&
         a.periods_rebuild == b.periods_rebuild &&
         a.periods_heuristic == b.periods_heuristic && a.replans_failed == b.replans_failed;
}

}  // namespace bt
