#include "scenario/churn_timeline.hpp"

#include <cmath>
#include <utility>

#include "graph/reachability.hpp"
#include "util/error.hpp"

namespace bt {

bool removal_keeps_broadcast(const Platform& platform, NodeId source,
                             const std::vector<char>& removed, EdgeId e) {
  BT_REQUIRE(e < platform.num_edges(), "removal_keeps_broadcast: arc out of range");
  EdgeMask active(platform.num_edges(), 1);
  for (EdgeId a = 0; a < removed.size() && a < active.size(); ++a) {
    if (removed[a]) active[a] = 0;
  }
  return all_reachable_without(platform.graph(), source, active, e);
}

namespace {

/// Pick an arc whose failure keeps the broadcast feasible: uniformly random
/// proposals, bounded attempts.  Returns false when none was found (dense
/// churn on a sparse platform) -- the caller downgrades to a degrade event.
bool pick_failure_arc(const Platform& live, NodeId source, const std::vector<char>& removed,
                      Rng& rng, EdgeId* out) {
  for (int attempt = 0; attempt < 48; ++attempt) {
    const EdgeId e = static_cast<EdgeId>(rng.index(live.num_edges()));
    if (removed[e]) continue;
    if (removal_keeps_broadcast(live, source, removed, e)) {
      *out = e;
      return true;
    }
  }
  return false;
}

/// Wire a joining node: `join_links` distinct peers, each giving one
/// in-link (peer -> new) and one out-link (new -> peer), costs copied from
/// uniformly random pristine arcs so the new links blend into the
/// platform's cost distribution.
void sample_join(const Platform& live, Rng& rng, std::size_t join_links,
                 std::vector<SessionLink>* in_links, std::vector<SessionLink>* out_links) {
  const std::size_t peers = std::min(join_links, live.num_nodes());
  std::vector<char> used(live.num_nodes(), 0);
  for (std::size_t k = 0; k < peers; ++k) {
    NodeId peer;
    do {
      peer = static_cast<NodeId>(rng.index(live.num_nodes()));
    } while (used[peer]);
    used[peer] = 1;
    const EdgeId in_template = static_cast<EdgeId>(rng.index(live.num_edges()));
    const EdgeId out_template = static_cast<EdgeId>(rng.index(live.num_edges()));
    in_links->push_back({peer, live.link_cost(in_template)});
    out_links->push_back({peer, live.link_cost(out_template)});
  }
}

/// Pick a node whose leave keeps the broadcast feasible: uniformly random
/// proposals, bounded attempts.  A candidate must not be the source, must
/// leave at least three nodes behind (shrink_platform's floor plus headroom
/// for later leaves), and every survivor must stay reachable from the
/// source through the non-removed arcs that do not touch it.  Returns false
/// when none was found -- the caller downgrades to a degrade event.
bool pick_leave_node(const Platform& live, NodeId source, const std::vector<char>& removed,
                     Rng& rng, NodeId* out) {
  if (live.num_nodes() <= 3) return false;
  for (int attempt = 0; attempt < 48; ++attempt) {
    const NodeId v = static_cast<NodeId>(rng.index(live.num_nodes()));
    if (v == source) continue;
    EdgeMask active(live.num_edges(), 1);
    for (EdgeId e = 0; e < live.num_edges(); ++e) {
      if (removed[e] || live.graph().from(e) == v || live.graph().to(e) == v) active[e] = 0;
    }
    const std::vector<char> reach = reachable_from(live.graph(), source, active);
    bool ok = true;
    for (NodeId u = 0; u < live.num_nodes(); ++u) {
      if (u != v && !reach[u]) {
        ok = false;
        break;
      }
    }
    if (ok) {
      *out = v;
      return true;
    }
  }
  return false;
}

}  // namespace

ChurnTimeline make_churn_timeline(const Platform& platform, const ChurnTimelineConfig& config) {
  BT_REQUIRE(platform.num_edges() > 0, "make_churn_timeline: platform has no arcs");
  BT_REQUIRE(config.events_per_period >= 0.0, "make_churn_timeline: negative churn rate");
  BT_REQUIRE(config.failure_fraction >= 0.0 && config.join_fraction >= 0.0 &&
                 config.leave_fraction >= 0.0 && config.recover_fraction >= 0.0 &&
                 config.failure_fraction + config.join_fraction + config.leave_fraction +
                         config.recover_fraction <=
                     1.0,
             "make_churn_timeline: event-kind fractions must be >= 0 and sum to <= 1");

  Rng rng(config.seed);
  LinkChurnSampler::Config sampler_config;
  sampler_config.min_degrade_factor = config.min_degrade_factor;
  sampler_config.max_degrade_factor = config.max_degrade_factor;
  LinkChurnSampler sampler(platform, sampler_config);

  ChurnTimeline timeline{{}, platform, std::vector<char>(platform.num_edges(), 0)};
  Platform& live = timeline.final_platform;
  std::vector<char>& removed = timeline.final_removed;
  // Leaves compact node ids, so the source's id can shift mid-timeline.
  NodeId source = platform.source();

  const std::size_t base_events = static_cast<std::size_t>(std::floor(config.events_per_period));
  const double extra_prob = config.events_per_period - static_cast<double>(base_events);

  for (std::size_t p = 0; p < config.num_periods; ++p) {
    std::size_t count = base_events;
    if (extra_prob > 0.0 && rng.bernoulli(extra_prob)) ++count;
    for (std::size_t k = 0; k < count; ++k) {
      ChurnEvent event;
      event.period = p;
      const double r = rng.uniform_real(0.0, 1.0);
      if (r < config.failure_fraction) {
        EdgeId e;
        if (pick_failure_arc(live, source, removed, rng, &e)) {
          event.kind = ChurnEventKind::kLinkFailure;
          event.edge = e;
          removed[e] = 1;
          sampler.mark_removed(e);
        } else {
          const auto d = sampler.sample_degrade(rng);
          event.kind = ChurnEventKind::kDegrade;
          event.edge = d.edge;
          event.factor = d.factor;
        }
      } else if (r < config.failure_fraction + config.join_fraction) {
        event.kind = ChurnEventKind::kNodeJoin;
        sample_join(live, rng, config.join_links, &event.in_links, &event.out_links);
        live = grow_platform(live, event.in_links, event.out_links);
        removed.resize(live.num_edges(), 0);
        sampler.extend(live);
      } else if (r < config.failure_fraction + config.join_fraction + config.leave_fraction) {
        NodeId v;
        if (pick_leave_node(live, source, removed, rng, &v)) {
          event.kind = ChurnEventKind::kNodeLeave;
          event.node = v;
          ShrinkRemap remap;
          live = shrink_platform(live, v, &remap);
          std::vector<char> compact_removed(live.num_edges(), 0);
          for (EdgeId e = 0; e < remap.edge_map.size(); ++e) {
            if (remap.edge_map[e] != Digraph::npos) compact_removed[remap.edge_map[e]] = removed[e];
          }
          removed = std::move(compact_removed);
          sampler.compact(remap.edge_map, live.num_edges());
          source = remap.node_map[source];
        } else {
          const auto d = sampler.sample_degrade(rng);
          event.kind = ChurnEventKind::kDegrade;
          event.edge = d.edge;
          event.factor = d.factor;
        }
      } else if (r < config.failure_fraction + config.join_fraction + config.leave_fraction +
                         config.recover_fraction &&
                 sampler.has_outstanding()) {
        const auto restore = sampler.pop_restore();
        event.kind = ChurnEventKind::kRecover;
        event.edge = restore.edge;
        event.cost = restore.cost;
      } else {
        const auto d = sampler.sample_degrade(rng);
        event.kind = ChurnEventKind::kDegrade;
        event.edge = d.edge;
        event.factor = d.factor;
      }

      // Mirror the event on the live copy (joins were applied above).
      switch (event.kind) {
        case ChurnEventKind::kDegrade: {
          LinkCost cost = live.link_cost(event.edge);
          cost.alpha *= event.factor;
          cost.beta *= event.factor;
          live.set_link_cost(event.edge, cost);
          break;
        }
        case ChurnEventKind::kRecover:
          live.set_link_cost(event.edge, event.cost);
          break;
        case ChurnEventKind::kLinkFailure:
        case ChurnEventKind::kNodeJoin:
        case ChurnEventKind::kNodeLeave:
          break;
      }
      timeline.events.push_back(std::move(event));
    }
  }
  return timeline;
}

}  // namespace bt
