#include "scenario/event_stream.hpp"

#include "util/error.hpp"

namespace bt {

LinkChurnSampler::LinkChurnSampler(const Platform& platform, Config config)
    : config_(config), removed_(platform.num_edges(), 0) {
  BT_REQUIRE(platform.num_edges() > 0, "LinkChurnSampler: platform has no arcs");
  BT_REQUIRE(config_.min_degrade_factor <= config_.max_degrade_factor,
             "LinkChurnSampler: inverted degrade factor range");
  pristine_.reserve(platform.num_edges());
  for (EdgeId e = 0; e < platform.num_edges(); ++e) pristine_.push_back(platform.link_cost(e));
}

void LinkChurnSampler::extend(const Platform& platform) {
  BT_REQUIRE(platform.num_edges() >= pristine_.size(),
             "LinkChurnSampler::extend: platform shrank");
  for (EdgeId e = static_cast<EdgeId>(pristine_.size()); e < platform.num_edges(); ++e) {
    pristine_.push_back(platform.link_cost(e));
  }
  removed_.resize(pristine_.size(), 0);
}

void LinkChurnSampler::mark_removed(EdgeId e) {
  BT_REQUIRE(e < removed_.size(), "LinkChurnSampler::mark_removed: arc out of range");
  if (!removed_[e]) ++num_removed_;
  removed_[e] = 1;
}

void LinkChurnSampler::compact(const std::vector<EdgeId>& edge_map, std::size_t new_num_edges) {
  BT_REQUIRE(edge_map.size() >= pristine_.size(),
             "LinkChurnSampler::compact: remap does not cover the sampler");
  std::vector<LinkCost> pristine(new_num_edges);
  std::vector<char> removed(new_num_edges, 0);
  std::size_t num_removed = 0;
  for (EdgeId e = 0; e < pristine_.size(); ++e) {
    const EdgeId ne = edge_map[e];
    if (ne == Digraph::npos) continue;
    BT_REQUIRE(ne < new_num_edges, "LinkChurnSampler::compact: remap target out of range");
    pristine[ne] = pristine_[e];
    removed[ne] = removed_[e];
    if (removed_[e]) ++num_removed;
  }
  std::vector<EdgeId> outstanding;
  outstanding.reserve(outstanding_.size());
  for (EdgeId e : outstanding_) {
    if (edge_map[e] != Digraph::npos) outstanding.push_back(edge_map[e]);
  }
  pristine_ = std::move(pristine);
  removed_ = std::move(removed);
  outstanding_ = std::move(outstanding);
  num_removed_ = num_removed;
}

bool LinkChurnSampler::has_outstanding() const { return num_outstanding() > 0; }

std::size_t LinkChurnSampler::num_outstanding() const {
  std::size_t live = 0;
  for (EdgeId e : outstanding_) {
    if (!removed_[e]) ++live;
  }
  return live;
}

LinkChurnSampler::Degrade LinkChurnSampler::sample_degrade(Rng& rng) {
  BT_REQUIRE(num_removed_ < pristine_.size(),
             "LinkChurnSampler: every arc has been removed");
  Degrade d;
  // One draw when nothing is removed (the historical service_eval stream);
  // otherwise resample past removed arcs -- at least one arc is live, so
  // this terminates.
  do {
    d.edge = static_cast<EdgeId>(rng.index(pristine_.size()));
  } while (removed_[d.edge]);
  d.factor = rng.uniform_real(config_.min_degrade_factor, config_.max_degrade_factor);
  outstanding_.push_back(d.edge);
  return d;
}

LinkChurnSampler::Restore LinkChurnSampler::pop_restore() {
  while (!outstanding_.empty() && removed_[outstanding_.back()]) outstanding_.pop_back();
  BT_REQUIRE(!outstanding_.empty(), "LinkChurnSampler: no outstanding degradation");
  Restore r;
  r.edge = outstanding_.back();
  outstanding_.pop_back();
  r.cost = pristine_[r.edge];
  return r;
}

}  // namespace bt
