#pragma once

// The live-churn scenario engine: a seeded ChurnTimeline replayed against a
// running PlannerService while a ReplaySession keeps executing the
// currently installed schedule.
//
// Per period boundary, in this order:
//
//   1. poll   -- ScheduleSubscription::poll_schedule picks up the newest
//                schedule the service has *built* (never blocks on a
//                solve); a newer build is hot-swapped into the replayer
//                with a warm handoff, so refill transients do not masquerade
//                as churn losses.
//   2. events -- the boundary's timeline events hit the service
//                (scale_link_time / set_link_cost / remove_link / add_node /
//                remove_node) and, in synchronous mode, a timed
//                plan()+schedule() re-plan runs per event
//                (ChurnScenarioResult::replan_latency_ms).  Because the
//                poll ran *before* the events, the periods between an event
//                batch and the next boundary execute the now-stale
//                schedule: the replayer caps every transfer by the live arc
//                times and ships nothing over removed arcs, and that
//                shortfall is the bytes-lost-to-staleness signal.
//   3. run    -- one period of the installed schedule executes against the
//                live platform; delivery, loss, the installed plan's ladder
//                tier and the offline reference throughput are recorded.
//
// Async mode (options.service.async_replan): mutations enqueue re-plan jobs
// on the service's background worker instead of solving inline, so step 2
// applies the whole batch between pause_replans()/resume_replans() (the
// worker then solves only the batch's final state) and step 1 starts with
// drain_replans() so the set of finished builds at every boundary is a
// deterministic function of the timeline, not of worker timing.  The
// latency samples then come from PlannerService::take_replan_latencies
// (mutation to published snapshot, queue wait included).
//
// kNodeLeave is structural in both modes: the service drops every warm
// session and published snapshot (remove_node), the engine mirrors the id
// compaction onto its live platform and removal mask via the returned
// ShrinkRemap, and a forced synchronous re-plan rebuilds the replayer
// (ReplaySession::install cannot shrink its platform) -- so a leave, unlike
// every other event, never executes stale periods.
//
// Availability is delivered work divided by the offline-optimal capacity:
//   sum_p delivered_total_p  /  sum_p TP*_p * period_seconds_p * receivers_p
// where TP*_p is a *cold* re-solve of the live platform after the period's
// events (a throwaway PlannerSession with the removals replayed) -- the
// number an omniscient planner that re-plans instantly would achieve.
//
// Determinism contract: every field of ChurnScenarioResult except the
// latency samples is a pure function of (platform, options) -- no
// wall-clock, no iteration-order nondeterminism, and the solver stack is
// pool-width invariant (index-ordered merges; util/thread_pool.hpp) -- so
// payload_bitwise_equal must hold across pool widths and across repeated
// same-seed runs.  tests/test_scenario.cpp pins this; BENCH_churn.json
// carries the same contract into CI.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "platform/platform.hpp"
#include "scenario/churn_timeline.hpp"
#include "service/planner_service.hpp"
#include "util/thread_pool.hpp"

namespace bt {

/// Delivery accounting of one executed period (the bitwise payload of one
/// BENCH_churn record).
struct ChurnPeriodRecord {
  std::uint64_t period = 0;
  /// Service version the installed schedule was built at.
  std::uint64_t schedule_version = 0;
  /// Timeline events applied at this period's start boundary.
  std::uint64_t events_applied = 0;
  std::uint64_t live_nodes = 0;
  double period_seconds = 0.0;
  /// Slices per period the installed schedule promises each receiver.
  double designed_slices = 0.0;
  double delivered_total = 0.0;
  double min_delivered = 0.0;
  /// Shortfall vs the installed schedule's promise (stale-schedule loss).
  double lost_slices = 0.0;
  /// TP* of the live platform: cold re-solve, the offline reference.
  double offline_throughput = 0.0;
  /// Ladder tier of the plan behind the installed schedule
  /// (static_cast<std::uint32_t>(PlanTier): 0 exact, 1 rebuild, 2 heuristic).
  std::uint32_t tier = 0;
  /// 1 when the period executed a schedule older than the service's platform
  /// version (a re-plan was pending or skipped), else 0.
  std::uint32_t stale = 0;
};

struct ChurnScenarioResult {
  std::vector<ChurnPeriodRecord> periods;
  // ---- integrated over the scenario (part of the bitwise payload) ----
  double delivered_total = 0.0;
  double lost_total = 0.0;
  /// Integral of TP*_p * seconds_p * receivers_p.
  double offline_capacity = 0.0;
  double availability = 0.0;  ///< delivered_total / offline_capacity
  std::uint64_t num_events = 0;
  std::uint64_t num_swaps = 0;  ///< hot-swaps picked up by polling
  std::uint64_t num_degrades = 0;
  std::uint64_t num_recoveries = 0;
  std::uint64_t num_failures = 0;
  std::uint64_t num_joins = 0;
  std::uint64_t num_leaves = 0;
  /// Periods that executed a schedule older than the platform (record.stale).
  std::uint64_t stale_periods = 0;
  /// Periods executed per installed-plan ladder tier (sum = periods.size()).
  std::uint64_t periods_exact = 0;
  std::uint64_t periods_rebuild = 0;
  std::uint64_t periods_heuristic = 0;
  /// Async jobs that exhausted their retries (last-good snapshot kept
  /// serving); always 0 in synchronous mode.
  std::uint64_t replans_failed = 0;
  // ---- timing (NOT in the bitwise payload) ----
  /// Wall-clock per re-plan: synchronous mode times the inline
  /// plan()+schedule() per event; async mode reports the worker's
  /// mutation-to-published-snapshot latencies.
  std::vector<double> replan_latency_ms;
};

struct ChurnScenarioOptions {
  ChurnTimelineConfig timeline;
  /// Service configuration (warm sessions, caches).  The engine overrides
  /// the solver pools with `pool` below.
  PlannerServiceOptions service;
  /// Worker pool for every solve the scenario runs (service sessions and
  /// the offline reference).  nullptr: the solvers' default.  The result
  /// payload must not depend on the pool's width.
  ThreadPool* pool = nullptr;
  /// Hot-swap handoff mode (see sim/replay_session.hpp).  Warm is the
  /// default: churn losses then measure staleness, not pipeline refills.
  bool warm_handoff = true;
};

/// Run the scenario: generate the timeline from (platform, options) and
/// replay it.  Throws bt::Error if a solve fails mid-scenario (the
/// generator's connectivity-checked failures make this unreachable for
/// timelines it built itself).
ChurnScenarioResult run_churn_scenario(const Platform& platform,
                                       const ChurnScenarioOptions& options);

/// Field-wise bitwise equality of everything except the latency samples.
/// Field-wise (not whole-struct memcmp) so padding bytes can't fake a
/// mismatch.
bool payload_bitwise_equal(const ChurnScenarioResult& a, const ChurnScenarioResult& b);

}  // namespace bt
