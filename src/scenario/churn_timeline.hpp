#pragma once

// Event grammar and seeded timeline generation for the live-churn scenario
// engine.
//
// The paper's robustness study (E9) perturbs link *estimates* once, before
// solving.  A churn timeline is the production-scale version of the same
// question: a sequence of platform mutations stamped with the period at
// whose start boundary they strike, replayed against a live PlannerService
// while the scenario engine (scenario_engine.hpp) keeps executing the
// currently installed schedule.  Five event kinds:
//
//   kDegrade     -- arc e's times scale by `factor` > 1 (link slowed down);
//   kRecover     -- arc e re-measured at its pristine `cost` (LIFO over the
//                   outstanding degradations, via LinkChurnSampler);
//   kLinkFailure -- arc e removed for good (failures do not resurrect; the
//                   generator only fails arcs whose loss keeps every node
//                   reachable from the source, so the service stays
//                   solvable);
//   kNodeJoin    -- a new node wired to `join_links` random peers by
//                   symmetric in/out links whose costs are copied from a
//                   random pristine arc (grow_platform semantics: old arc
//                   ids stay stable, new arcs follow, in-links first);
//   kNodeLeave   -- node `node` and every arc touching it disappear
//                   (shrink_platform semantics: surviving node/arc ids
//                   compact, keeping their relative order).  The generator
//                   only drops nodes whose leave keeps every survivor
//                   reachable from the source; `node` is the id in the
//                   pre-leave numbering, and every later event's ids are in
//                   the post-leave numbering.
//
// kNodeLeave renumbers ids mid-timeline, so consumers must mirror the
// compaction (PlannerService::remove_node returns the same ShrinkRemap the
// generator used -- both call shrink_platform on identical state).
//
// Generation applies each event to a private copy of the platform as it
// goes, so connectivity checks, join wiring and compounding degradations
// always see the live topology.  Everything is drawn from one bt::Rng
// seeded by the config, so a (platform, config) pair pins the timeline
// bitwise -- the determinism contract of BENCH_churn.json starts here.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "platform/platform.hpp"
#include "scenario/event_stream.hpp"
#include "ssb/planner_session.hpp"

namespace bt {

enum class ChurnEventKind {
  kDegrade,
  kRecover,
  kLinkFailure,
  kNodeJoin,
  kNodeLeave,
};

/// One platform mutation, applied at the start boundary of `period`.
struct ChurnEvent {
  std::size_t period = 0;
  ChurnEventKind kind = ChurnEventKind::kDegrade;
  EdgeId edge = 0;      ///< kDegrade / kRecover / kLinkFailure
  double factor = 1.0;  ///< kDegrade
  LinkCost cost;        ///< kRecover (pristine)
  std::vector<SessionLink> in_links;   ///< kNodeJoin (peer -> new)
  std::vector<SessionLink> out_links;  ///< kNodeJoin (new -> peer)
  NodeId node = 0;      ///< kNodeLeave (pre-leave id)
};

struct ChurnTimelineConfig {
  /// Timeline length, in schedule periods.
  std::size_t num_periods = 48;
  /// Expected events per period (the churn rate): each period fires
  /// floor(rate) events plus one more with probability frac(rate).
  double events_per_period = 0.25;
  /// Event-kind mix.  Failure, join and leave are drawn first; a recover
  /// draw falls back to degrade while no degradation is outstanding.  The
  /// remainder is degrades.  leave_fraction defaults to 0 so pre-existing
  /// (platform, config, seed) triples replay bitwise-unchanged.
  double failure_fraction = 0.12;
  double join_fraction = 0.08;
  double leave_fraction = 0.0;
  double recover_fraction = 0.35;
  /// Degradation factor range (see LinkChurnSampler).
  double min_degrade_factor = 1.3;
  double max_degrade_factor = 2.5;
  /// Peers a joining node is wired to (each contributes one in- and one
  /// out-link); clamped to the current node count.
  std::size_t join_links = 3;
  std::uint64_t seed = 424243;
};

/// The generated timeline plus the platform state it ends in (the offline
/// reference a post-mortem would re-solve).
struct ChurnTimeline {
  std::vector<ChurnEvent> events;
  Platform final_platform;
  std::vector<char> final_removed;  ///< by final arc id
};

/// Generate a seeded timeline over `platform` (broadcast source =
/// platform.source()).  Throws bt::Error on a platform without arcs or a
/// config whose fractions leave nothing to draw.
ChurnTimeline make_churn_timeline(const Platform& platform, const ChurnTimelineConfig& config);

/// True iff dropping arc `e` on top of the already-removed set keeps every
/// node reachable from `source`.  Exposed for tests and for callers picking
/// a safe failure arc by hand.
bool removal_keeps_broadcast(const Platform& platform, NodeId source,
                             const std::vector<char>& removed, EdgeId e);

}  // namespace bt
