#include "core/stp_exhaustive.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/throughput.hpp"
#include "util/error.hpp"

namespace bt {

namespace {

/// Depth-first enumeration over per-node parent choices with incremental
/// cycle pruning: node order is fixed; a partial assignment is abandoned as
/// soon as the chosen parent arcs contain a cycle among assigned nodes.
class Enumerator {
 public:
  Enumerator(const Platform& platform, std::size_t max_trees)
      : platform_(platform), graph_(platform.graph()), max_trees_(max_trees) {
    const NodeId source = platform.source();
    for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
      if (v != source) targets_.push_back(v);
    }
    parent_.assign(graph_.num_nodes(), Digraph::npos);
    out_degree_.assign(graph_.num_nodes(), 0.0);
    best_period_ = std::numeric_limits<double>::infinity();
  }

  StpExhaustiveResult run() {
    recurse(0, 0.0);
    StpExhaustiveResult result;
    result.completed = !cap_hit_;
    result.trees_enumerated = enumerated_;
    BT_REQUIRE(best_period_ < std::numeric_limits<double>::infinity(),
               "stp_optimal_tree: no spanning arborescence found");
    result.best_period = best_period_;
    result.best_tree.root = platform_.source();
    result.best_tree.edges = best_edges_;
    return result;
  }

 private:
  /// True iff assigning `arc` as the parent of its head creates a cycle
  /// within the currently assigned arcs.
  bool creates_cycle(EdgeId arc) const {
    const NodeId head = graph_.to(arc);
    NodeId cur = graph_.from(arc);
    while (cur != platform_.source()) {
      if (cur == head) return true;
      const EdgeId up = parent_[cur];
      if (up == Digraph::npos) return false;  // reaches an unassigned node
      cur = graph_.from(up);
    }
    return false;
  }

  void recurse(std::size_t index, double max_degree_so_far) {
    if (cap_hit_ || max_degree_so_far >= best_period_) return;  // prune
    if (index == targets_.size()) {
      ++enumerated_;
      if (max_degree_so_far < best_period_) {
        best_period_ = max_degree_so_far;
        best_edges_.clear();
        for (NodeId v : targets_) best_edges_.push_back(parent_[v]);
      }
      return;
    }
    // Cap on *complete* trees, with a generous guard on partial assignments
    // so the search cannot wander exponentially without ever finishing one.
    if (enumerated_ >= max_trees_ ||
        (enumerated_ > 0 && visited_ >= 1000 * max_trees_)) {
      cap_hit_ = true;
      return;
    }
    ++visited_;
    const NodeId v = targets_[index];
    for (EdgeId e : graph_.in_edges(v)) {
      if (creates_cycle(e)) continue;
      const NodeId u = graph_.from(e);
      parent_[v] = e;
      out_degree_[u] += platform_.edge_time(e);
      recurse(index + 1, std::max(max_degree_so_far, out_degree_[u]));
      out_degree_[u] -= platform_.edge_time(e);
      parent_[v] = Digraph::npos;
    }
  }

  const Platform& platform_;
  const Digraph& graph_;
  std::size_t max_trees_;
  std::vector<NodeId> targets_;
  std::vector<EdgeId> parent_;
  std::vector<double> out_degree_;
  double best_period_ = 0.0;
  std::vector<EdgeId> best_edges_;
  std::size_t enumerated_ = 0;
  std::size_t visited_ = 0;
  bool cap_hit_ = false;
};

}  // namespace

StpExhaustiveResult stp_optimal_tree(const Platform& platform, std::size_t max_trees) {
  BT_REQUIRE(platform.num_nodes() >= 2, "stp_optimal_tree: need at least two nodes");
  Enumerator enumerator(platform, max_trees);
  StpExhaustiveResult result = enumerator.run();
  result.best_tree.validate(platform);
  return result;
}

}  // namespace bt
