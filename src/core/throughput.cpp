#include "core/throughput.hpp"

#include <algorithm>

#include "graph/arborescence.hpp"
#include "util/error.hpp"

namespace bt {

double one_port_period(const Platform& platform, const BroadcastTree& tree) {
  BT_REQUIRE(!tree.edges.empty(),
             "one_port_period: degenerate tree with no arcs has no steady-state period");
  const auto degree = BroadcastTree::weighted_out_degrees(platform, tree);
  double period = 0.0;
  for (double d : degree) period = std::max(period, d);
  BT_ASSERT(period > 0.0, "one_port_period: zero period on a non-empty tree");
  return period;
}

double one_port_throughput(const Platform& platform, const BroadcastTree& tree) {
  return 1.0 / one_port_period(platform, tree);
}

double multiport_period(const Platform& platform, const BroadcastTree& tree) {
  BT_REQUIRE(!tree.edges.empty(),
             "multiport_period: degenerate tree with no arcs has no steady-state period");
  const Digraph& g = platform.graph();
  std::vector<double> max_link(platform.num_nodes(), 0.0);
  std::vector<std::size_t> out_degree(platform.num_nodes(), 0);
  for (EdgeId e : tree.edges) {
    const NodeId u = g.from(e);
    max_link[u] = std::max(max_link[u], platform.edge_time(e));
    ++out_degree[u];
  }
  double period = 0.0;
  for (NodeId u = 0; u < platform.num_nodes(); ++u) {
    if (out_degree[u] == 0) continue;
    const double node_period =
        std::max(static_cast<double>(out_degree[u]) * platform.send_overhead(u),
                 max_link[u]);
    period = std::max(period, node_period);
  }
  BT_ASSERT(period > 0.0, "multiport_period: zero period on a non-empty tree");
  return period;
}

double multiport_throughput(const Platform& platform, const BroadcastTree& tree) {
  return 1.0 / multiport_period(platform, tree);
}

double one_port_period(const Platform& platform, const BroadcastOverlay& overlay) {
  BT_REQUIRE(!overlay.arcs.empty(),
             "one_port_period: degenerate overlay with no arcs has no steady-state period");
  const auto loads = overlay.port_loads(platform);
  double period = 0.0;
  for (NodeId u = 0; u < platform.num_nodes(); ++u) {
    period = std::max({period, loads.out_time[u], loads.in_time[u]});
  }
  BT_ASSERT(period > 0.0, "one_port_period: zero period on a non-empty overlay");
  return period;
}

double one_port_throughput(const Platform& platform, const BroadcastOverlay& overlay) {
  return 1.0 / one_port_period(platform, overlay);
}

double multiport_period(const Platform& platform, const BroadcastOverlay& overlay) {
  BT_REQUIRE(!overlay.arcs.empty(),
             "multiport_period: degenerate overlay with no arcs has no steady-state period");
  const Digraph& g = platform.graph();
  std::vector<double> max_link(platform.num_nodes(), 0.0);
  std::vector<std::size_t> multiplicity(platform.num_nodes(), 0);
  for (EdgeId e : overlay.arcs) {
    const NodeId u = g.from(e);
    max_link[u] = std::max(max_link[u], platform.edge_time(e));
    ++multiplicity[u];
  }
  double period = 0.0;
  for (NodeId u = 0; u < platform.num_nodes(); ++u) {
    if (multiplicity[u] == 0) continue;
    period = std::max(period,
                      std::max(static_cast<double>(multiplicity[u]) *
                                   platform.send_overhead(u),
                               max_link[u]));
  }
  BT_ASSERT(period > 0.0, "multiport_period: zero period on a non-empty overlay");
  return period;
}

double multiport_throughput(const Platform& platform, const BroadcastOverlay& overlay) {
  return 1.0 / multiport_period(platform, overlay);
}

double sta_makespan(const Platform& platform, const BroadcastTree& tree,
                    double message_size, ChildOrder order) {
  BT_REQUIRE(message_size > 0.0, "sta_makespan: message size must be positive");
  const Digraph& g = platform.graph();
  auto children = tree.children(platform);
  const auto parent = tree.parent_edges(platform);
  const auto bfs = bfs_order(g, tree.root, parent);

  if (order == ChildOrder::kHeaviestSubtree) {
    // Subtree drain-time upper bound per node, computed bottom-up in one
    // pass over the reversed BFS order (children settle before parents), so
    // the sort comparator below is a plain table lookup.  The weights are
    // order-independent sums, so sorting the child lists afterwards is safe.
    std::vector<double> weight(platform.num_nodes(), 0.0);
    for (auto it = bfs.rbegin(); it != bfs.rend(); ++it) {
      double total = 0.0;
      for (EdgeId e : children[*it]) {
        total += platform.edge_time(e) + weight[g.to(e)];
      }
      weight[*it] = total;
    }
    for (auto& list : children) {
      std::sort(list.begin(), list.end(), [&](EdgeId a, EdgeId b) {
        const double wa = platform.link_cost(a).at(message_size) + weight[g.to(a)];
        const double wb = platform.link_cost(b).at(message_size) + weight[g.to(b)];
        if (wa != wb) return wa > wb;
        return a < b;
      });
    }
  }

  // Forward pass in BFS order: parent finishes receiving, then emits to its
  // children back-to-back (one-port).
  std::vector<double> received(platform.num_nodes(), 0.0);
  double makespan = 0.0;
  for (NodeId u : bfs) {
    double clock = received[u];
    for (EdgeId e : children[u]) {
      clock += platform.link_cost(e).at(message_size);
      received[g.to(e)] = clock;
      makespan = std::max(makespan, clock);
    }
  }
  return makespan;
}

double pipelined_completion_time(const Platform& platform, const BroadcastTree& tree,
                                 std::size_t num_slices) {
  BT_REQUIRE(num_slices >= 1, "pipelined_completion_time: need at least one slice");
  const double fill = sta_makespan(platform, tree, platform.slice_size(),
                                   ChildOrder::kTreeOrder);
  const double period = one_port_period(platform, tree);
  return fill + static_cast<double>(num_slices - 1) * period;
}

}  // namespace bt
