#pragma once

// Broadcast trees: the central object of the paper.
//
// A BroadcastTree is a spanning out-arborescence of the platform graph
// rooted at the source processor.  Message slices are pipelined along it; in
// steady state the tree's throughput is determined by its most loaded node
// (see throughput.hpp).

#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "platform/platform.hpp"

namespace bt {

/// A spanning out-arborescence of a platform graph.
struct BroadcastTree {
  NodeId root = 0;
  /// Arc ids (into the platform graph) of the n-1 tree arcs.
  std::vector<EdgeId> edges;

  /// Validate against a platform; throws bt::Error when not a spanning
  /// arborescence rooted at the platform source.
  void validate(const Platform& platform) const;

  /// parent_edge[v] = tree arc entering v (Digraph::npos for the root).
  std::vector<EdgeId> parent_edges(const Platform& platform) const;

  /// children[u] = tree arcs leaving u.
  std::vector<std::vector<EdgeId>> children(const Platform& platform) const;

  /// Weighted out-degree of node u in the tree: sum of T_e over tree arcs
  /// leaving u.  This is the per-slice emission time of u in steady state.
  static std::vector<double> weighted_out_degrees(const Platform& platform,
                                                  const BroadcastTree& tree);
};

/// Human-readable one-line-per-node rendering (for examples / debugging).
std::string describe_tree(const Platform& platform, const BroadcastTree& tree);

/// A pipelined broadcast *overlay*: a multiset of arcs, one entry per
/// point-to-point hop of the schedule, over which every slice is shipped.
///
/// A spanning tree is the special case with n-1 distinct arcs; the
/// Binomial-Tree heuristic (Algorithm 4) produces a genuine multiset because
/// its index-based transfers are routed over shortest paths that overlap --
/// hub nodes relay several copies of every slice, which is precisely why the
/// MPI-style baseline performs poorly on sparse topologies.  Overlays are
/// what the experiment harness rates; tree heuristics convert losslessly.
struct BroadcastOverlay {
  NodeId root = 0;
  /// Arc ids with multiplicity (an arc used by k transfers appears k times).
  std::vector<EdgeId> arcs;

  /// Lossless view of a spanning tree as an overlay.
  static BroadcastOverlay from_tree(const BroadcastTree& tree);

  /// Check that every slice can reach every node: each non-root node has at
  /// least one incoming overlay arc and is reachable from the root through
  /// overlay arcs.  Throws bt::Error otherwise.
  void validate(const Platform& platform) const;

  /// Per-node serialized occupation times per slice under the one-port
  /// model: {emission time, reception time} for each node.
  struct PortLoads {
    std::vector<double> out_time;
    std::vector<double> in_time;
    std::vector<std::size_t> out_multiplicity;
  };
  PortLoads port_loads(const Platform& platform) const;
};

}  // namespace bt
