#include "core/registry.hpp"

#include "core/heuristics.hpp"
#include "util/error.hpp"

namespace bt {

namespace {

std::vector<HeuristicSpec> make_catalog() {
  std::vector<HeuristicSpec> catalog;
  auto topo = [](BroadcastTree (*fn)(const Platform&)) {
    return [fn](const Platform& platform, const std::vector<double>*) {
      return fn(platform);
    };
  };
  auto lp = [](BroadcastTree (*fn)(const Platform&, const std::vector<double>&)) {
    return [fn](const Platform& platform, const std::vector<double>* loads) {
      BT_REQUIRE(loads != nullptr, "heuristic requires LP edge loads");
      return fn(platform, *loads);
    };
  };
  auto add = [&](std::string name, std::string label, bool needs_lp, bool multiport,
                 std::function<BroadcastTree(const Platform&, const std::vector<double>*)>
                     build) {
    HeuristicSpec spec;
    spec.name = std::move(name);
    spec.paper_label = std::move(label);
    spec.needs_lp_loads = needs_lp;
    spec.multiport = multiport;
    spec.build = build;
    spec.build_overlay = [build](const Platform& platform,
                                 const std::vector<double>* loads) {
      return BroadcastOverlay::from_tree(build(platform, loads));
    };
    catalog.push_back(std::move(spec));
  };

  add("prune_simple", "Prune Platform Simple", false, false, topo(&prune_platform_simple));
  add("prune_degree", "Prune Platform Degree", false, false, topo(&prune_platform_degree));
  add("grow_tree", "Grow Tree", false, false, topo(&grow_tree));
  add("binomial", "Binomial Tree", false, false, topo(&binomial_tree));
  // The rated artifact for binomial is the faithful multiset of routed hops.
  catalog.back().build_overlay = [](const Platform& platform, const std::vector<double>*) {
    return binomial_overlay(platform);
  };
  add("lp_grow_tree", "LP Grow Tree", true, false, lp(&lp_grow_tree));
  add("lp_prune", "LP Prune", true, false, lp(&lp_prune));
  add("multiport_grow_tree", "Multi Port Grow Tree", false, true,
      topo(&multiport_grow_tree));
  add("multiport_prune_degree", "Multi Port Prune Degree", false, true,
      topo(&multiport_prune_degree));
  add("fastest_node_first", "Fastest Node First", false, false, topo(&fastest_node_first));
  add("fastest_edge_first", "Fastest Edge First", false, false, topo(&fastest_edge_first));
  return catalog;
}

}  // namespace

const std::vector<HeuristicSpec>& heuristic_catalog() {
  static const std::vector<HeuristicSpec> catalog = make_catalog();
  return catalog;
}

std::vector<HeuristicSpec> one_port_heuristics() {
  // Figure 4 / Table 3 line-up, in the paper's legend order.
  const char* names[] = {"prune_simple", "prune_degree", "grow_tree",
                         "lp_grow_tree", "lp_prune", "binomial"};
  std::vector<HeuristicSpec> result;
  for (const char* name : names) result.push_back(find_heuristic(name));
  return result;
}

std::vector<HeuristicSpec> multiport_heuristics() {
  // Figure 5 line-up.
  const char* names[] = {"multiport_prune_degree", "multiport_grow_tree",
                         "lp_grow_tree", "lp_prune", "binomial"};
  std::vector<HeuristicSpec> result;
  for (const char* name : names) result.push_back(find_heuristic(name));
  return result;
}

const HeuristicSpec& find_heuristic(const std::string& name) {
  for (const HeuristicSpec& spec : heuristic_catalog()) {
    if (spec.name == name) return spec;
  }
  BT_REQUIRE(false, "find_heuristic: unknown heuristic '" + name + "'");
  // Unreachable; silences the compiler.
  return heuristic_catalog().front();
}

}  // namespace bt
