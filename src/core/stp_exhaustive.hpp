#pragma once

// Exhaustive STP optimum (extension).
//
// Finding the best single broadcast tree is NP-hard (the paper normalizes
// against the *multi-tree* LP optimum for exactly that reason), but on small
// platforms the optimum is computable by enumerating every spanning
// arborescence.  This gives a second, tighter yardstick: it separates "the
// heuristic is far from the best tree" from "no single tree can do better"
// -- a distinction the paper's evaluation cannot make.

#include <cstddef>

#include "core/broadcast_tree.hpp"
#include "platform/platform.hpp"

namespace bt {

struct StpExhaustiveResult {
  bool completed = false;  ///< false when the enumeration cap was hit
  BroadcastTree best_tree;
  double best_period = 0.0;
  std::size_t trees_enumerated = 0;
};

/// Enumerate spanning arborescences rooted at the source and return the one
/// with the smallest one-port period.  The enumeration visits at most
/// `max_trees` candidate parent assignments (product of in-degrees); when
/// the cap is exceeded, `completed` is false and the best tree found so far
/// is returned.
StpExhaustiveResult stp_optimal_tree(const Platform& platform,
                                     std::size_t max_trees = 2'000'000);

}  // namespace bt
