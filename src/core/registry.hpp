#pragma once

// Named catalog of all tree-construction heuristics.  The experiment harness
// and the benches iterate the catalog instead of hard-coding call sites, so
// adding a heuristic automatically adds it to every sweep.

#include <functional>
#include <string>
#include <vector>

#include "core/broadcast_tree.hpp"
#include "platform/platform.hpp"

namespace bt {

/// A registered tree heuristic.  `build` receives the platform and, for the
/// LP-based heuristics, the MTP edge loads n_{u,v} (null otherwise).
struct HeuristicSpec {
  std::string name;         ///< stable code name, e.g. "grow_tree"
  std::string paper_label;  ///< legend label used by the paper's figures
  bool needs_lp_loads = false;
  bool multiport = false;   ///< designed for the multi-port model
  std::function<BroadcastTree(const Platform&, const std::vector<double>* loads)> build;
  /// What the experiment harness rates.  For tree heuristics this is the
  /// tree viewed as an overlay; the binomial baseline returns the faithful
  /// multiset of routed hops instead (Algorithm 4 as written).
  std::function<BroadcastOverlay(const Platform&, const std::vector<double>* loads)>
      build_overlay;
};

/// All registered heuristics, in the paper's presentation order.
const std::vector<HeuristicSpec>& heuristic_catalog();

/// The subset evaluated in the one-port experiments (Figures 4a/4b, Table 3).
std::vector<HeuristicSpec> one_port_heuristics();

/// The subset evaluated in the multi-port experiment (Figure 5).
std::vector<HeuristicSpec> multiport_heuristics();

/// Lookup by code name; throws bt::Error when unknown.
const HeuristicSpec& find_heuristic(const std::string& name);

}  // namespace bt
