#include <algorithm>
#include <numeric>

#include "core/heuristics.hpp"
#include "core/heuristics/prune_common.hpp"
#include "graph/reachability.hpp"
#include "util/error.hpp"

namespace bt {

BroadcastTree prune_platform_degree(const Platform& platform) {
  const Digraph& g = platform.graph();
  const std::size_t n = g.num_nodes();
  const std::size_t target = n - 1;

  EdgeMask mask(g.num_edges(), 1);
  std::size_t active = g.num_edges();
  BT_REQUIRE(active >= target, "prune_platform_degree: too few arcs");

  // Algorithm 2: OutDegree(u) = sum of active outgoing weights.
  std::vector<double> out_degree(n, 0.0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) out_degree[g.from(e)] += platform.edge_time(e);

  std::vector<NodeId> nodes(n);
  std::iota(nodes.begin(), nodes.end(), NodeId{0});

  while (active > target) {
    // Nodes sorted by non-increasing weighted out-degree (line 5).
    std::sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
      if (out_degree[a] != out_degree[b]) return out_degree[a] > out_degree[b];
      return a < b;
    });
    bool removed = false;
    for (NodeId u : nodes) {
      // u's active arcs by decreasing weight (line 7).
      std::vector<EdgeId> arcs;
      for (EdgeId e : g.out_edges(u)) {
        if (mask[e]) arcs.push_back(e);
      }
      std::sort(arcs.begin(), arcs.end(), [&](EdgeId a, EdgeId b) {
        if (platform.edge_time(a) != platform.edge_time(b)) {
          return platform.edge_time(a) > platform.edge_time(b);
        }
        return a < b;
      });
      for (EdgeId e : arcs) {
        if (all_reachable_without(g, platform.source(), mask, e)) {
          mask[e] = 0;
          --active;
          out_degree[u] -= platform.edge_time(e);
          removed = true;
          break;  // "goto 4": re-rank nodes after every removal
        }
      }
      if (removed) break;
    }
    BT_REQUIRE(removed, "prune_platform_degree: stuck above n-1 arcs");
  }
  return detail::mask_to_tree(platform, mask);
}

}  // namespace bt
