#include <algorithm>
#include <limits>

#include "core/heuristics.hpp"
#include "util/error.hpp"

namespace bt {

namespace {

/// Greedy STA construction shared by Fastest-Node-First and
/// Fastest-Edge-First.  Both maintain, for every informed node, the time its
/// outgoing port frees up; at each step one uninformed node is attached via
/// a direct arc and the sender's port advances by T_{u,v} (one-port,
/// non-pipelined semantics).  The two baselines differ only in how the next
/// (sender, receiver) pair is chosen.
struct StaState {
  std::vector<char> informed;
  std::vector<double> port_free;  ///< next time the node's out port is free
  std::vector<double> received;   ///< time the node finished receiving
};

BroadcastTree greedy_sta(const Platform& platform, bool fastest_node_first) {
  const Digraph& g = platform.graph();
  const std::size_t n = g.num_nodes();
  const NodeId source = platform.source();

  StaState st;
  st.informed.assign(n, 0);
  st.port_free.assign(n, 0.0);
  st.received.assign(n, 0.0);
  st.informed[source] = 1;

  // FNF node-speed estimate: the fastest rate at which the node can forward
  // (min outgoing per-slice time); smaller = faster.
  std::vector<double> node_speed(n, std::numeric_limits<double>::infinity());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    node_speed[g.from(e)] = std::min(node_speed[g.from(e)], platform.edge_time(e));
  }

  BroadcastTree tree;
  tree.root = source;
  tree.edges.reserve(n - 1);

  for (std::size_t added = 0; added + 1 < n; ++added) {
    EdgeId best = Digraph::npos;
    double best_completion = std::numeric_limits<double>::infinity();
    double best_speed = std::numeric_limits<double>::infinity();
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const NodeId u = g.from(e);
      const NodeId v = g.to(e);
      if (!st.informed[u] || st.informed[v]) continue;
      const double start = std::max(st.port_free[u], st.received[u]);
      const double completion = start + platform.edge_time(e);
      bool better = false;
      if (fastest_node_first) {
        // Primary key: attach the fastest forwarder next; secondary key:
        // earliest completion of the transfer to it.
        if (node_speed[v] < best_speed ||
            (node_speed[v] == best_speed && completion < best_completion)) {
          better = true;
        }
      } else {
        // Fastest-Edge-First: pure earliest completion.
        better = completion < best_completion;
      }
      if (better || (completion == best_completion && node_speed[v] == best_speed &&
                     best != Digraph::npos && e < best)) {
        best = e;
        best_completion = completion;
        best_speed = node_speed[v];
      }
    }
    BT_REQUIRE(best != Digraph::npos, "greedy_sta: frontier empty before spanning");
    const NodeId u = g.from(best);
    const NodeId v = g.to(best);
    st.port_free[u] = best_completion;
    st.received[v] = best_completion;
    st.informed[v] = 1;
    tree.edges.push_back(best);
  }
  tree.validate(platform);
  return tree;
}

}  // namespace

BroadcastTree fastest_node_first(const Platform& platform) {
  return greedy_sta(platform, /*fastest_node_first=*/true);
}

BroadcastTree fastest_edge_first(const Platform& platform) {
  return greedy_sta(platform, /*fastest_node_first=*/false);
}

}  // namespace bt
