#include "core/heuristics/prune_common.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bt::detail {

EdgeMask prune_with_static_order(const Platform& platform,
                                 const std::vector<EdgeId>& order) {
  const Digraph& g = platform.graph();
  const std::size_t target = g.num_nodes() - 1;
  EdgeMask mask(g.num_edges(), 1);
  std::size_t active = g.num_edges();
  BT_REQUIRE(active >= target, "prune: graph has fewer than n-1 arcs");

  // Removals never make a previously unremovable arc removable again, so a
  // single pass in priority order reaches n-1 arcs; the outer loop guards
  // the invariant anyway.
  while (active > target) {
    bool removed_any = false;
    for (EdgeId e : order) {
      if (active == target) break;
      if (!mask[e]) continue;
      if (all_reachable_without(g, platform.source(), mask, e)) {
        mask[e] = 0;
        --active;
        removed_any = true;
      }
    }
    BT_REQUIRE(removed_any, "prune: stuck above n-1 arcs (graph not prunable)");
  }
  return mask;
}

std::size_t active_count(const EdgeMask& mask) {
  return static_cast<std::size_t>(std::count(mask.begin(), mask.end(), char{1}));
}

BroadcastTree mask_to_tree(const Platform& platform, const EdgeMask& mask) {
  BroadcastTree tree;
  tree.root = platform.source();
  for (EdgeId e = 0; e < mask.size(); ++e) {
    if (mask[e]) tree.edges.push_back(e);
  }
  tree.validate(platform);
  return tree;
}

}  // namespace bt::detail
