#include <algorithm>
#include <numeric>

#include "core/heuristics.hpp"
#include "core/heuristics/prune_common.hpp"

namespace bt {

BroadcastTree prune_platform_simple(const Platform& platform) {
  const Digraph& g = platform.graph();
  // Algorithm 1: try to delete arcs by non-increasing weight T_{u,v}.
  std::vector<EdgeId> order(g.num_edges());
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    if (platform.edge_time(a) != platform.edge_time(b)) {
      return platform.edge_time(a) > platform.edge_time(b);
    }
    return a < b;  // deterministic tie-break
  });
  const auto mask = detail::prune_with_static_order(platform, order);
  return detail::mask_to_tree(platform, mask);
}

}  // namespace bt
