#pragma once

// Internal helpers shared by the pruning heuristics (Algorithms 1, 2, 6 and
// the multi-port pruning variant).  Not part of the public API.

#include <vector>

#include "core/broadcast_tree.hpp"
#include "graph/reachability.hpp"
#include "platform/platform.hpp"

namespace bt::detail {

/// Prune arcs following a fixed priority order (first entries tried first),
/// keeping every node reachable from the source, until exactly n-1 arcs
/// remain.  Returns the surviving arc mask.
EdgeMask prune_with_static_order(const Platform& platform,
                                 const std::vector<EdgeId>& order);

/// Number of active arcs in a mask.
std::size_t active_count(const EdgeMask& mask);

/// Convert a mask with exactly n-1 active arcs into a validated tree.
BroadcastTree mask_to_tree(const Platform& platform, const EdgeMask& mask);

}  // namespace bt::detail
