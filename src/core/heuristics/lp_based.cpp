#include <algorithm>
#include <limits>
#include <numeric>

#include "core/heuristics.hpp"
#include "core/heuristics/prune_common.hpp"
#include "util/error.hpp"

namespace bt {

BroadcastTree lp_prune(const Platform& platform, const std::vector<double>& edge_load) {
  const Digraph& g = platform.graph();
  BT_REQUIRE(edge_load.size() == g.num_edges(), "lp_prune: edge_load size mismatch");

  // Algorithm 6: delete the arcs carrying the fewest messages in the MTP
  // optimum first.  (The paper's pseudo-code says "non-increasing n_{u,v}"
  // but its prose -- "delete the edges ... [that] have minimum weight, i.e.
  // edges carrying the fewest messages" -- fixes the intent; see DESIGN.md.)
  std::vector<EdgeId> order(g.num_edges());
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    if (edge_load[a] != edge_load[b]) return edge_load[a] < edge_load[b];
    return a < b;
  });
  const auto mask = detail::prune_with_static_order(platform, order);
  return detail::mask_to_tree(platform, mask);
}

BroadcastTree lp_grow_tree(const Platform& platform, const std::vector<double>& edge_load) {
  const Digraph& g = platform.graph();
  BT_REQUIRE(edge_load.size() == g.num_edges(), "lp_grow_tree: edge_load size mismatch");
  const std::size_t n = g.num_nodes();
  const NodeId source = platform.source();

  // Algorithm 7: grow from the source, always following the frontier arc
  // with the largest n_{u,v}.
  std::vector<char> in_tree(n, 0);
  in_tree[source] = 1;

  BroadcastTree tree;
  tree.root = source;
  tree.edges.reserve(n - 1);

  for (std::size_t added = 0; added + 1 < n; ++added) {
    EdgeId best = Digraph::npos;
    double best_load = -std::numeric_limits<double>::infinity();
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (!in_tree[g.from(e)] || in_tree[g.to(e)]) continue;
      if (edge_load[e] > best_load || (edge_load[e] == best_load && e < best)) {
        best_load = edge_load[e];
        best = e;
      }
    }
    BT_REQUIRE(best != Digraph::npos, "lp_grow_tree: frontier empty before spanning");
    in_tree[g.to(best)] = 1;
    tree.edges.push_back(best);
  }
  tree.validate(platform);
  return tree;
}

}  // namespace bt
