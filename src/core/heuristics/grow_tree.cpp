#include <limits>

#include "core/heuristics.hpp"
#include "util/error.hpp"

namespace bt {

BroadcastTree grow_tree(const Platform& platform) {
  const Digraph& g = platform.graph();
  const std::size_t n = g.num_nodes();
  const NodeId source = platform.source();

  // Algorithm 3: grow from the source, always adding the frontier arc (u,v)
  // whose addition yields the smallest weighted out-degree of u, i.e.
  // cost(u,v) = OutDegree_tree(u) + T_{u,v}.  (The paper's pseudo-code
  // accumulates cost(u,v) into sibling arcs, which double-counts earlier
  // children; we implement the metric its prose defines -- see DESIGN.md.)
  std::vector<char> in_tree(n, 0);
  std::vector<double> out_degree(n, 0.0);
  in_tree[source] = 1;

  BroadcastTree tree;
  tree.root = source;
  tree.edges.reserve(n - 1);

  for (std::size_t added = 0; added + 1 < n; ++added) {
    EdgeId best = Digraph::npos;
    double best_cost = std::numeric_limits<double>::infinity();
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const NodeId u = g.from(e);
      const NodeId v = g.to(e);
      if (!in_tree[u] || in_tree[v]) continue;
      const double cost = out_degree[u] + platform.edge_time(e);
      if (cost < best_cost || (cost == best_cost && e < best)) {
        best_cost = cost;
        best = e;
      }
    }
    BT_REQUIRE(best != Digraph::npos, "grow_tree: frontier empty before spanning");
    const NodeId u = g.from(best);
    const NodeId v = g.to(best);
    out_degree[u] += platform.edge_time(best);
    in_tree[v] = 1;
    tree.edges.push_back(best);
  }
  tree.validate(platform);
  return tree;
}

}  // namespace bt
