#include <algorithm>
#include <limits>
#include <numeric>

#include "core/heuristics.hpp"
#include "graph/reachability.hpp"
#include "core/heuristics/prune_common.hpp"
#include "util/error.hpp"

namespace bt {

namespace {

/// Multi-port steady-state period of node u given its children count and the
/// largest outgoing tree-arc time (Section 3.2):
/// Tperiod(u) = max(deltaout(u) * send_u, max_child T_{u,child}).
double node_period(const Platform& platform, NodeId u, std::size_t num_children,
                   double max_link) {
  return std::max(static_cast<double>(num_children) * platform.send_overhead(u), max_link);
}

}  // namespace

BroadcastTree multiport_grow_tree(const Platform& platform) {
  const Digraph& g = platform.graph();
  const std::size_t n = g.num_nodes();
  const NodeId source = platform.source();

  // Algorithm 5: the attachment cost of arc (u,v) is the period u would have
  // after gaining v as an extra child.
  std::vector<char> in_tree(n, 0);
  std::vector<std::size_t> num_children(n, 0);
  std::vector<double> max_link(n, 0.0);
  in_tree[source] = 1;

  BroadcastTree tree;
  tree.root = source;
  tree.edges.reserve(n - 1);

  for (std::size_t added = 0; added + 1 < n; ++added) {
    EdgeId best = Digraph::npos;
    double best_cost = std::numeric_limits<double>::infinity();
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const NodeId u = g.from(e);
      const NodeId v = g.to(e);
      if (!in_tree[u] || in_tree[v]) continue;
      const double cost =
          node_period(platform, u, num_children[u] + 1,
                      std::max(max_link[u], platform.edge_time(e)));
      if (cost < best_cost || (cost == best_cost && e < best)) {
        best_cost = cost;
        best = e;
      }
    }
    BT_REQUIRE(best != Digraph::npos, "multiport_grow_tree: frontier empty");
    const NodeId u = g.from(best);
    ++num_children[u];
    max_link[u] = std::max(max_link[u], platform.edge_time(best));
    in_tree[g.to(best)] = 1;
    tree.edges.push_back(best);
  }
  tree.validate(platform);
  return tree;
}

BroadcastTree multiport_prune_degree(const Platform& platform) {
  const Digraph& g = platform.graph();
  const std::size_t n = g.num_nodes();
  const std::size_t target = n - 1;

  EdgeMask mask(g.num_edges(), 1);
  std::size_t active = g.num_edges();
  BT_REQUIRE(active >= target, "multiport_prune_degree: too few arcs");

  // Per-node multi-port period over the *active* outgoing arcs.
  auto period_of = [&](NodeId u) {
    std::size_t degree = 0;
    double link = 0.0;
    for (EdgeId e : g.out_edges(u)) {
      if (!mask[e]) continue;
      ++degree;
      link = std::max(link, platform.edge_time(e));
    }
    if (degree == 0) return 0.0;
    return node_period(platform, u, degree, link);
  };

  std::vector<NodeId> nodes(n);
  std::iota(nodes.begin(), nodes.end(), NodeId{0});

  while (active > target) {
    std::sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
      const double pa = period_of(a);
      const double pb = period_of(b);
      if (pa != pb) return pa > pb;
      return a < b;
    });
    bool removed = false;
    for (NodeId u : nodes) {
      std::vector<EdgeId> arcs;
      for (EdgeId e : g.out_edges(u)) {
        if (mask[e]) arcs.push_back(e);
      }
      std::sort(arcs.begin(), arcs.end(), [&](EdgeId a, EdgeId b) {
        if (platform.edge_time(a) != platform.edge_time(b)) {
          return platform.edge_time(a) > platform.edge_time(b);
        }
        return a < b;
      });
      for (EdgeId e : arcs) {
        if (all_reachable_without(g, platform.source(), mask, e)) {
          mask[e] = 0;
          --active;
          removed = true;
          break;
        }
      }
      if (removed) break;
    }
    BT_REQUIRE(removed, "multiport_prune_degree: stuck above n-1 arcs");
  }
  return detail::mask_to_tree(platform, mask);
}

}  // namespace bt
