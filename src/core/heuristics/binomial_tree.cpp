#include <vector>

#include "core/heuristics.hpp"
#include "graph/shortest_paths.hpp"
#include "util/error.hpp"

namespace bt {

namespace {

/// Logical transfer of the MPI binomial schedule: index `holder` forwards to
/// index `receiver`.
struct Transfer {
  std::size_t holder;
  std::size_t receiver;
};

/// The classical binomial broadcast schedule over indices 0..p-1 with the
/// source at index 0 (Algorithm 4): stage q doubles the number of holders
/// among the first 2^m indices; remaining indices x >= 2^m then receive from
/// x - 2^m.
std::vector<Transfer> binomial_schedule(std::size_t p) {
  std::size_t m = 0;
  while ((std::size_t{1} << (m + 1)) <= p) ++m;
  std::vector<Transfer> transfers;
  for (std::size_t q = 0; q < m; ++q) {
    const std::size_t stride = std::size_t{1} << (m - q);
    for (std::size_t x = 0; x < (std::size_t{1} << q); ++x) {
      transfers.push_back(Transfer{x * stride, x * stride + stride / 2});
    }
  }
  for (std::size_t x = (std::size_t{1} << m); x < p; ++x) {
    transfers.push_back(Transfer{x - (std::size_t{1} << m), x});
  }
  return transfers;
}

/// Index 0 is the source; the other processors keep their node-id order.
/// The binomial schedule is built on indices only -- deliberately blind to
/// the topology, as in MPI implementations (that is the point of this
/// baseline).
std::vector<NodeId> index_mapping(const Digraph& g, NodeId source) {
  std::vector<NodeId> index_to_node;
  index_to_node.reserve(g.num_nodes());
  index_to_node.push_back(source);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (u != source) index_to_node.push_back(u);
  }
  return index_to_node;
}

/// Route every scheduled transfer over the T-weighted shortest path and
/// return the concatenation of all path arcs (with multiplicity).
std::vector<EdgeId> routed_transfer_arcs(const Platform& platform) {
  const Digraph& g = platform.graph();
  const auto index_to_node = index_mapping(g, platform.source());
  const auto weights = platform.edge_times();
  std::vector<EdgeId> arcs;
  for (const Transfer& transfer : binomial_schedule(g.num_nodes())) {
    const NodeId from = index_to_node[transfer.holder];
    const NodeId to = index_to_node[transfer.receiver];
    const auto spt = dijkstra(g, from, weights);
    BT_REQUIRE(spt.reachable(to), "binomial: transfer target unreachable");
    for (EdgeId e : spt.path_to(g, to)) arcs.push_back(e);
  }
  return arcs;
}

}  // namespace

BroadcastOverlay binomial_overlay(const Platform& platform) {
  BroadcastOverlay overlay;
  overlay.root = platform.source();
  overlay.arcs = routed_transfer_arcs(platform);
  overlay.validate(platform);
  return overlay;
}

BroadcastTree binomial_tree(const Platform& platform) {
  const Digraph& g = platform.graph();
  const std::size_t p = g.num_nodes();
  const NodeId source = platform.source();

  // Sanitize the routed hop sequence into an arborescence: walking the hops
  // in schedule order, a node joins the tree with the first arc that reaches
  // it (relay nodes become tree members when first traversed).
  std::vector<char> in_tree(p, 0);
  std::vector<EdgeId> parent(p, Digraph::npos);
  in_tree[source] = 1;
  for (EdgeId e : routed_transfer_arcs(platform)) {
    const NodeId v = g.to(e);
    // Hops whose tail is not yet informed cannot deliver a fresh slice
    // first; in schedule order this does not occur for fresh targets.
    if (!in_tree[v] && in_tree[g.from(e)]) {
      in_tree[v] = 1;
      parent[v] = e;
    }
  }

  BroadcastTree tree;
  tree.root = source;
  tree.edges.reserve(p - 1);
  for (NodeId v = 0; v < p; ++v) {
    if (parent[v] != Digraph::npos) tree.edges.push_back(parent[v]);
  }
  tree.validate(platform);
  return tree;
}

}  // namespace bt
