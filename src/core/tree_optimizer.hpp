#pragma once

// Local-search improvement of broadcast trees (extension).
//
// The paper's heuristics build a tree once; none of them revisits earlier
// decisions.  This optimizer post-processes any spanning arborescence with
// subtree-reattachment moves: pick a bottleneck node (one whose serialized
// emission time equals the tree period), detach one of its child subtrees,
// and re-attach that subtree below a different node through any platform arc
// entering the subtree root, whenever the resulting tree has a strictly
// smaller period.  Moves repeat until a local optimum (or the move cap) is
// reached.
//
// The corresponding ablation bench measures how much head-room the one-shot
// heuristics leave on the table.

#include <cstddef>

#include "core/broadcast_tree.hpp"
#include "platform/platform.hpp"

namespace bt {

struct TreeOptimizeResult {
  BroadcastTree tree;
  double initial_period = 0.0;
  double final_period = 0.0;
  std::size_t moves = 0;  ///< accepted reattachment moves
};

/// Improve `tree` for the one-port steady-state period.  The input tree must
/// be a valid spanning arborescence of the platform.
TreeOptimizeResult optimize_tree_one_port(const Platform& platform, BroadcastTree tree,
                                          std::size_t max_moves = 1000);

/// Improve `tree` for the multi-port steady-state period.
TreeOptimizeResult optimize_tree_multiport(const Platform& platform, BroadcastTree tree,
                                           std::size_t max_moves = 1000);

}  // namespace bt
