#include "core/scatter.hpp"

#include <algorithm>

#include "graph/arborescence.hpp"
#include "util/error.hpp"

namespace bt {

std::vector<std::size_t> subtree_sizes(const Platform& platform, const BroadcastTree& tree) {
  const Digraph& g = platform.graph();
  const auto parent = tree.parent_edges(platform);
  const auto order = bfs_order(g, tree.root, parent);
  std::vector<std::size_t> size(g.num_nodes(), 1);
  // Accumulate bottom-up: reverse BFS order visits children before parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    if (parent[v] != Digraph::npos) size[g.from(parent[v])] += size[v];
  }
  return size;
}

double scatter_period(const Platform& platform, const BroadcastTree& tree) {
  BT_REQUIRE(!tree.edges.empty(),
             "scatter_period: degenerate tree with no arcs has no steady-state period");
  const Digraph& g = platform.graph();
  const auto size = subtree_sizes(platform, tree);
  const auto children = tree.children(platform);
  double period = 0.0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    double emission = 0.0;
    for (EdgeId e : children[u]) {
      const double arc_time =
          platform.edge_time(e) * static_cast<double>(size[g.to(e)]);
      emission += arc_time;
      // Reception at the child: its single in-arc carries |subtree| slices.
      period = std::max(period, arc_time);
    }
    period = std::max(period, emission);
  }
  BT_ASSERT(period > 0.0, "scatter_period: zero period on a non-empty tree");
  return period;
}

double scatter_throughput(const Platform& platform, const BroadcastTree& tree) {
  return 1.0 / scatter_period(platform, tree);
}

double gather_period(const Platform& platform, const BroadcastTree& tree) {
  BT_REQUIRE(!tree.edges.empty(),
             "gather_period: degenerate tree with no arcs has no steady-state period");
  const Digraph& g = platform.graph();
  const auto size = subtree_sizes(platform, tree);
  const auto children = tree.children(platform);
  double period = 0.0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    double reception = 0.0;  // u's in-port collects from all children
    for (EdgeId e : children[u]) {
      const NodeId v = g.to(e);
      const EdgeId reverse = g.find_edge(v, u);
      BT_REQUIRE(reverse != Digraph::npos,
                 "gather_period: tree arc has no reverse platform arc");
      const double arc_time =
          platform.edge_time(reverse) * static_cast<double>(size[v]);
      reception += arc_time;
      // Emission at the child: its single up-arc carries |subtree| slices.
      period = std::max(period, arc_time);
    }
    period = std::max(period, reception);
  }
  BT_ASSERT(period > 0.0, "gather_period: zero period on a non-empty tree");
  return period;
}

double gather_throughput(const Platform& platform, const BroadcastTree& tree) {
  return 1.0 / gather_period(platform, tree);
}

}  // namespace bt
