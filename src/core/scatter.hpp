#pragma once

// Steady-state scatter and gather on trees (extension).
//
// Section 4.1 of the paper points out the structural difference between
// broadcast and scatter: on an arc, broadcast messages to different
// destinations overlap (n_e = max_w x_e^w) while scatter messages are
// disjoint (n_e = sum_w x_e^w).  On a tree this has a clean closed form: in
// every steady-state round the source emits one personalized slice per
// destination, so the arc from u to child v carries |subtree(v)| slices per
// round and the one-port period is
//
//   max_u max( sum_{v in children(u)} T_{u,v} * |subtree(v)|,   (emission)
//              T_{parent(u),u} * |subtree(u)| )                 (reception)
//
// Gather (or reduce with constant-size partial results) is the
// time-reversed operation on the reversed tree and has the same period when
// the reverse arcs have the same cost; we evaluate it on the reverse arcs
// explicitly so asymmetric links are honored.
//
// Degenerate inputs: a tree with no arcs (single-node platform) has no
// steady state, so the period / throughput functions throw bt::Error --
// the same policy as throughput.hpp.

#include <vector>

#include "core/broadcast_tree.hpp"
#include "platform/platform.hpp"

namespace bt {

/// Number of nodes in the subtree rooted at each node (the node included).
std::vector<std::size_t> subtree_sizes(const Platform& platform, const BroadcastTree& tree);

/// One-port steady-state period of a pipelined *scatter* along the tree:
/// per round, every destination receives one personalized slice.
double scatter_period(const Platform& platform, const BroadcastTree& tree);

/// Scatter throughput: rounds per second (each round = one slice per node).
double scatter_throughput(const Platform& platform, const BroadcastTree& tree);

/// One-port steady-state period of a pipelined *gather* along the tree:
/// children forward their subtree's slices to the parent over the reverse
/// arcs.  Throws bt::Error if some reverse arc does not exist in the
/// platform graph.
double gather_period(const Platform& platform, const BroadcastTree& tree);

/// Gather throughput: rounds per second.
double gather_throughput(const Platform& platform, const BroadcastTree& tree);

}  // namespace bt
