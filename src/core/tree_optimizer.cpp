#include "core/tree_optimizer.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <vector>

#include "core/throughput.hpp"
#include "util/error.hpp"

namespace bt {

namespace {

/// Per-node emission period under the active model, given the node's current
/// tree out-arcs described by (weighted sum, count, max arc time).
struct NodeLoad {
  double sum = 0.0;       ///< sum of T over tree out-arcs
  std::size_t count = 0;  ///< number of children
  double max_link = 0.0;  ///< largest out-arc time
};

double node_period(const Platform& platform, NodeId u, const NodeLoad& load,
                   bool multiport) {
  if (load.count == 0) return 0.0;
  if (!multiport) return load.sum;
  return std::max(static_cast<double>(load.count) * platform.send_overhead(u),
                  load.max_link);
}

/// The three largest node periods with their owners.  Excluding at most two
/// nodes (the detach and re-attach endpoints of a candidate move) always
/// leaves the true maximum of the remaining graph among the top three, so a
/// candidate's full-tree period is O(1) instead of an O(n) rescan.
struct TopPeriods {
  std::array<double, 3> value{{0.0, 0.0, 0.0}};
  std::array<NodeId, 3> node{{Digraph::npos, Digraph::npos, Digraph::npos}};

  void offer(double period, NodeId u) {
    for (std::size_t i = 0; i < value.size(); ++i) {
      if (node[i] == Digraph::npos || period > value[i]) {
        for (std::size_t j = value.size() - 1; j > i; --j) {
          value[j] = value[j - 1];
          node[j] = node[j - 1];
        }
        value[i] = period;
        node[i] = u;
        return;
      }
    }
  }

  /// Largest period over all nodes other than `a` and `b` (0 when none).
  double max_excluding(NodeId a, NodeId b) const {
    for (std::size_t i = 0; i < value.size(); ++i) {
      if (node[i] == Digraph::npos) break;
      if (node[i] != a && node[i] != b) return value[i];
    }
    return 0.0;
  }
};

/// Nodes inside the subtree rooted at v (including v), walking the
/// pre-built children lists.
std::vector<char> subtree_mask(const std::vector<std::vector<NodeId>>& children,
                               NodeId v) {
  std::vector<char> mask(children.size(), 0);
  std::vector<NodeId> stack{v};
  mask[v] = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (NodeId c : children[u]) {
      if (!mask[c]) {
        mask[c] = 1;
        stack.push_back(c);
      }
    }
  }
  return mask;
}

TreeOptimizeResult optimize(const Platform& platform, BroadcastTree tree,
                            std::size_t max_moves, bool multiport) {
  tree.validate(platform);
  const Digraph& g = platform.graph();
  const std::size_t n = g.num_nodes();

  auto parent = tree.parent_edges(platform);

  // Node loads from the parent array, built once and delta-maintained on
  // every accepted move (only the old and new parent of the moved subtree
  // root change).
  std::vector<NodeLoad> load(n);
  for (NodeId v = 0; v < n; ++v) {
    const EdgeId e = parent[v];
    if (e == Digraph::npos) continue;
    NodeLoad& l = load[g.from(e)];
    l.sum += platform.edge_time(e);
    ++l.count;
    l.max_link = std::max(l.max_link, platform.edge_time(e));
  }

  auto current_period = [&]() {
    double period = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      period = std::max(period, node_period(platform, u, load[u], multiport));
    }
    return period;
  };

  TreeOptimizeResult result;
  result.initial_period = current_period();

  // Children lists, rebuilt once per move iteration (every candidate's
  // subtree mask and max_link recomputation walks them).
  std::vector<std::vector<NodeId>> children(n);

  for (std::size_t move = 0; move < max_moves; ++move) {
    for (auto& list : children) list.clear();
    TopPeriods top;
    double period = 0.0;
    for (NodeId w = 0; w < n; ++w) {
      if (parent[w] != Digraph::npos) children[g.from(parent[w])].push_back(w);
      const double pw = node_period(platform, w, load[w], multiport);
      top.offer(pw, w);
      period = std::max(period, pw);
    }
    const double eps = 1e-12 * std::max(1.0, period);

    // Candidate moves: detach a child v of a bottleneck node b and re-attach
    // the subtree(v) through another platform arc entering v.
    EdgeId best_new_arc = Digraph::npos;
    NodeId best_child = 0;
    double best_period = period - eps;

    for (NodeId b = 0; b < n; ++b) {
      if (node_period(platform, b, load[b], multiport) < period - eps) continue;
      // b is a bottleneck; try each of its children.
      for (NodeId v : children[b]) {
        const auto in_subtree = subtree_mask(children, v);
        // Simulate the detachment of v from b.
        NodeLoad b_load = load[b];
        b_load.sum -= platform.edge_time(parent[v]);
        --b_load.count;
        if (b_load.count > 0) {
          // max_link may shrink; recompute from b's remaining children.
          b_load.max_link = 0.0;
          for (NodeId w : children[b]) {
            if (w != v) {
              b_load.max_link = std::max(b_load.max_link, platform.edge_time(parent[w]));
            }
          }
        }
        const double b_period = node_period(platform, b, b_load, multiport);
        for (EdgeId f : g.in_edges(v)) {
          const NodeId u = g.from(f);
          if (u == b || in_subtree[u]) continue;  // would disconnect / cycle
          NodeLoad u_load = load[u];
          u_load.sum += platform.edge_time(f);
          ++u_load.count;
          u_load.max_link = std::max(u_load.max_link, platform.edge_time(f));
          // New period: max over u, b and everything else (the latter from
          // the top-period table -- no full-graph rescan per candidate).
          const double candidate =
              std::max({b_period, node_period(platform, u, u_load, multiport),
                        top.max_excluding(b, u)});
          if (candidate < best_period) {
            best_period = candidate;
            best_new_arc = f;
            best_child = v;
          }
        }
      }
    }

    if (best_new_arc == Digraph::npos) break;  // local optimum

    // Apply the move with delta load updates on the two affected parents.
    const EdgeId old_arc = parent[best_child];
    const NodeId old_parent = g.from(old_arc);
    NodeLoad& from_load = load[old_parent];
    from_load.sum -= platform.edge_time(old_arc);
    --from_load.count;
    from_load.max_link = 0.0;
    for (NodeId w : children[old_parent]) {
      if (w != best_child) {
        from_load.max_link = std::max(from_load.max_link, platform.edge_time(parent[w]));
      }
    }
    NodeLoad& to_load = load[g.from(best_new_arc)];
    to_load.sum += platform.edge_time(best_new_arc);
    ++to_load.count;
    to_load.max_link = std::max(to_load.max_link, platform.edge_time(best_new_arc));
    parent[best_child] = best_new_arc;
    ++result.moves;
  }

  // Rebuild the tree from the parent array.
  result.tree.root = tree.root;
  for (NodeId v = 0; v < n; ++v) {
    if (parent[v] != Digraph::npos) result.tree.edges.push_back(parent[v]);
  }
  result.tree.validate(platform);
  result.final_period = current_period();
  BT_ASSERT(result.final_period <= result.initial_period + 1e-9,
            "optimize_tree: local search worsened the tree");
  return result;
}

}  // namespace

TreeOptimizeResult optimize_tree_one_port(const Platform& platform, BroadcastTree tree,
                                          std::size_t max_moves) {
  return optimize(platform, std::move(tree), max_moves, /*multiport=*/false);
}

TreeOptimizeResult optimize_tree_multiport(const Platform& platform, BroadcastTree tree,
                                           std::size_t max_moves) {
  return optimize(platform, std::move(tree), max_moves, /*multiport=*/true);
}

}  // namespace bt
