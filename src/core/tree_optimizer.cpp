#include "core/tree_optimizer.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/throughput.hpp"
#include "util/error.hpp"

namespace bt {

namespace {

/// Per-node emission period under the active model, given the node's current
/// tree out-arcs described by (weighted sum, count, max arc time).
struct NodeLoad {
  double sum = 0.0;       ///< sum of T over tree out-arcs
  std::size_t count = 0;  ///< number of children
  double max_link = 0.0;  ///< largest out-arc time
};

double node_period(const Platform& platform, NodeId u, const NodeLoad& load,
                   bool multiport) {
  if (load.count == 0) return 0.0;
  if (!multiport) return load.sum;
  return std::max(static_cast<double>(load.count) * platform.send_overhead(u),
                  load.max_link);
}

/// Nodes inside the subtree rooted at v (including v) for the given parent
/// array.
std::vector<char> subtree_mask(const Platform& platform,
                               const std::vector<EdgeId>& parent, NodeId v) {
  const Digraph& g = platform.graph();
  std::vector<char> mask(g.num_nodes(), 0);
  // children lists from the parent array.
  std::vector<std::vector<NodeId>> children(g.num_nodes());
  for (NodeId w = 0; w < g.num_nodes(); ++w) {
    if (parent[w] != Digraph::npos) children[g.from(parent[w])].push_back(w);
  }
  std::vector<NodeId> stack{v};
  mask[v] = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (NodeId c : children[u]) {
      if (!mask[c]) {
        mask[c] = 1;
        stack.push_back(c);
      }
    }
  }
  return mask;
}

TreeOptimizeResult optimize(const Platform& platform, BroadcastTree tree,
                            std::size_t max_moves, bool multiport) {
  tree.validate(platform);
  const Digraph& g = platform.graph();
  const std::size_t n = g.num_nodes();

  auto parent = tree.parent_edges(platform);

  // Node loads from the parent array.
  std::vector<NodeLoad> load(n);
  auto rebuild_loads = [&]() {
    std::fill(load.begin(), load.end(), NodeLoad{});
    for (NodeId v = 0; v < n; ++v) {
      const EdgeId e = parent[v];
      if (e == Digraph::npos) continue;
      NodeLoad& l = load[g.from(e)];
      l.sum += platform.edge_time(e);
      ++l.count;
      l.max_link = std::max(l.max_link, platform.edge_time(e));
    }
  };
  rebuild_loads();

  auto current_period = [&]() {
    double period = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      period = std::max(period, node_period(platform, u, load[u], multiport));
    }
    return period;
  };

  TreeOptimizeResult result;
  result.initial_period = current_period();

  for (std::size_t move = 0; move < max_moves; ++move) {
    const double period = current_period();
    const double eps = 1e-12 * std::max(1.0, period);

    // Candidate moves: detach a child v of a bottleneck node b and re-attach
    // the subtree(v) through another platform arc entering v.
    EdgeId best_new_arc = Digraph::npos;
    NodeId best_child = 0;
    double best_period = period - eps;

    for (NodeId b = 0; b < n; ++b) {
      if (node_period(platform, b, load[b], multiport) < period - eps) continue;
      // b is a bottleneck; try each of its children.
      for (NodeId v = 0; v < n; ++v) {
        if (parent[v] == Digraph::npos || g.from(parent[v]) != b) continue;
        const auto in_subtree = subtree_mask(platform, parent, v);
        // Simulate the detachment of v from b.
        NodeLoad b_load = load[b];
        b_load.sum -= platform.edge_time(parent[v]);
        --b_load.count;
        if (b_load.count > 0) {
          // max_link may shrink; recompute from b's remaining children.
          b_load.max_link = 0.0;
          for (NodeId w = 0; w < n; ++w) {
            if (w != v && parent[w] != Digraph::npos && g.from(parent[w]) == b) {
              b_load.max_link = std::max(b_load.max_link, platform.edge_time(parent[w]));
            }
          }
        }
        for (EdgeId f : g.in_edges(v)) {
          const NodeId u = g.from(f);
          if (u == b || in_subtree[u]) continue;  // would disconnect / cycle
          NodeLoad u_load = load[u];
          u_load.sum += platform.edge_time(f);
          ++u_load.count;
          u_load.max_link = std::max(u_load.max_link, platform.edge_time(f));
          // New period: max over u, b and everything else.
          double candidate = std::max(node_period(platform, b, b_load, multiport),
                                      node_period(platform, u, u_load, multiport));
          for (NodeId w = 0; w < n && candidate < best_period; ++w) {
            if (w == b || w == u) continue;
            candidate = std::max(candidate,
                                 node_period(platform, w, load[w], multiport));
          }
          if (candidate < best_period) {
            best_period = candidate;
            best_new_arc = f;
            best_child = v;
          }
        }
      }
    }

    if (best_new_arc == Digraph::npos) break;  // local optimum
    parent[best_child] = best_new_arc;
    rebuild_loads();
    ++result.moves;
  }

  // Rebuild the tree from the parent array.
  result.tree.root = tree.root;
  for (NodeId v = 0; v < n; ++v) {
    if (parent[v] != Digraph::npos) result.tree.edges.push_back(parent[v]);
  }
  result.tree.validate(platform);
  result.final_period = current_period();
  BT_ASSERT(result.final_period <= result.initial_period + 1e-9,
            "optimize_tree: local search worsened the tree");
  return result;
}

}  // namespace

TreeOptimizeResult optimize_tree_one_port(const Platform& platform, BroadcastTree tree,
                                          std::size_t max_moves) {
  return optimize(platform, std::move(tree), max_moves, /*multiport=*/false);
}

TreeOptimizeResult optimize_tree_multiport(const Platform& platform, BroadcastTree tree,
                                           std::size_t max_moves) {
  return optimize(platform, std::move(tree), max_moves, /*multiport=*/true);
}

}  // namespace bt
