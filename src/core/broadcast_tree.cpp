#include "core/broadcast_tree.hpp"

#include <iomanip>
#include <sstream>

#include "graph/arborescence.hpp"
#include "graph/reachability.hpp"
#include "util/error.hpp"

namespace bt {

void BroadcastTree::validate(const Platform& platform) const {
  BT_REQUIRE(root == platform.source(),
             "BroadcastTree::validate: tree root is not the platform source");
  std::string why;
  BT_REQUIRE(is_spanning_arborescence(platform.graph(), root, edges, &why),
             "BroadcastTree::validate: " + why);
}

std::vector<EdgeId> BroadcastTree::parent_edges(const Platform& platform) const {
  return parent_edge_array(platform.graph(), root, edges);
}

std::vector<std::vector<EdgeId>> BroadcastTree::children(const Platform& platform) const {
  return children_lists(platform.graph(), parent_edges(platform));
}

std::vector<double> BroadcastTree::weighted_out_degrees(const Platform& platform,
                                                        const BroadcastTree& tree) {
  std::vector<double> degree(platform.num_nodes(), 0.0);
  for (EdgeId e : tree.edges) degree[platform.graph().from(e)] += platform.edge_time(e);
  return degree;
}

BroadcastOverlay BroadcastOverlay::from_tree(const BroadcastTree& tree) {
  BroadcastOverlay overlay;
  overlay.root = tree.root;
  overlay.arcs = tree.edges;
  return overlay;
}

void BroadcastOverlay::validate(const Platform& platform) const {
  const Digraph& g = platform.graph();
  BT_REQUIRE(root == platform.source(),
             "BroadcastOverlay::validate: root is not the platform source");
  EdgeMask active(g.num_edges(), 0);
  for (EdgeId e : arcs) {
    BT_REQUIRE(e < g.num_edges(), "BroadcastOverlay::validate: arc id out of range");
    active[e] = 1;
  }
  BT_REQUIRE(all_reachable_from(g, root, active),
             "BroadcastOverlay::validate: overlay does not reach every node");
}

BroadcastOverlay::PortLoads BroadcastOverlay::port_loads(const Platform& platform) const {
  const Digraph& g = platform.graph();
  PortLoads loads;
  loads.out_time.assign(g.num_nodes(), 0.0);
  loads.in_time.assign(g.num_nodes(), 0.0);
  loads.out_multiplicity.assign(g.num_nodes(), 0);
  for (EdgeId e : arcs) {
    const double t = platform.edge_time(e);
    loads.out_time[g.from(e)] += t;
    loads.in_time[g.to(e)] += t;
    ++loads.out_multiplicity[g.from(e)];
  }
  return loads;
}

std::string describe_tree(const Platform& platform, const BroadcastTree& tree) {
  const Digraph& g = platform.graph();
  const auto parent = tree.parent_edges(platform);
  const auto depth = node_depths(g, tree.root, parent);
  const auto order = bfs_order(g, tree.root, parent);
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  for (NodeId u : order) {
    os << std::string(2 * depth[u], ' ');
    if (u == tree.root) {
      os << "P" << u << " (source)\n";
    } else {
      const EdgeId e = parent[u];
      os << "P" << u << "  <- P" << g.from(e) << "  (" << platform.edge_time(e) * 1e3
         << " ms/slice)\n";
    }
  }
  return os.str();
}

}  // namespace bt
