#pragma once

// Steady-state throughput and makespan evaluation of broadcast trees.
//
// One-port (bidirectional) model, pipelined broadcast (STP):
//   a node sends each slice to its children one after another, so node u
//   contributes a period of sum_{v in children(u)} T_{u,v}; receives overlap
//   with sends (bidirectional) and a node's single receive per period is
//   already counted inside its parent's out-sum.  Tree period =
//   max_u weighted-out-degree(u); throughput = 1 / period.
//
// Multi-port model (Section 3.2), pipelined broadcast:
//   link occupations out of a node may overlap, but the node's own per-slice
//   send overhead send_u serializes, so
//   Tperiod(u) = max( deltaout(u) * send_u, max_child T_{u,child} )
//   and the tree period is max_u Tperiod(u); throughput = 1 / period.
//
// STA (single tree, atomic): the whole message is sent at once; makespan is
// the time the last node finishes receiving, with each node forwarding to
// its children sequentially after its own reception completes.
//
// Degenerate inputs: a tree (or overlay) with no arcs -- the single-node
// broadcast -- has no steady state to measure, so every period / throughput
// function below throws bt::Error instead of dividing by a zero period.
// This mirrors the SSB solvers, which require at least two nodes.

#include <vector>

#include "core/broadcast_tree.hpp"
#include "platform/platform.hpp"

namespace bt {

/// Steady-state period of `tree` under the bidirectional one-port model.
/// Throws bt::Error on a degenerate tree with no arcs.
double one_port_period(const Platform& platform, const BroadcastTree& tree);

/// Steady-state throughput (slices per second) under one-port; 1 / period.
double one_port_throughput(const Platform& platform, const BroadcastTree& tree);

/// Steady-state period under the multi-port model.
double multiport_period(const Platform& platform, const BroadcastTree& tree);

/// Steady-state throughput under multi-port; 1 / period.
double multiport_throughput(const Platform& platform, const BroadcastTree& tree);

// --------------------------- overlays (multisets of arcs) ------------------
// For a general overlay every scheduled hop of a slice occupies its sender's
// and receiver's ports, so under one-port the period is
//   max_u max( sum of T over overlay arcs out of u,
//              sum of T over overlay arcs into u )
// which reduces to the tree formula when the overlay is a tree.  Under
// multi-port the paper's Section 3.2 formula generalizes with the hop
// multiplicity: max_u max( mult_out(u) * send_u, max out-arc T ).

double one_port_period(const Platform& platform, const BroadcastOverlay& overlay);
double one_port_throughput(const Platform& platform, const BroadcastOverlay& overlay);
double multiport_period(const Platform& platform, const BroadcastOverlay& overlay);
double multiport_throughput(const Platform& platform, const BroadcastOverlay& overlay);

/// Children emission order used by makespan evaluation.
enum class ChildOrder {
  kTreeOrder,       ///< the order the arcs appear in the tree
  kHeaviestSubtree  ///< send toward the most expensive subtree first
};

/// STA makespan of broadcasting one message of size `message_size` along the
/// tree under the one-port model: node u starts forwarding only after fully
/// receiving, sends to children sequentially.  Returns the time the last
/// node finishes receiving.
double sta_makespan(const Platform& platform, const BroadcastTree& tree,
                    double message_size, ChildOrder order = ChildOrder::kHeaviestSubtree);

/// Upper bound on the time to pipeline `num_slices` slices along the tree
/// (one-port): pipeline fill (the first slice's makespan in tree order) +
/// (num_slices - 1) periods.  It is exact whenever the slowest-filling branch
/// contains the bottleneck node (chains, stars, most balanced trees);
/// otherwise it over-estimates the simulated completion by the fill
/// difference between the fill-critical branch and the bottleneck branch,
/// which is strictly less than one fill time.  Both the exactness cases and
/// the worst-case gap are pinned against sim/pipeline_simulator in
/// tests/test_pipeline_bound.cpp.  Throws bt::Error on a no-arc tree.
double pipelined_completion_time(const Platform& platform, const BroadcastTree& tree,
                                 std::size_t num_slices);

}  // namespace bt
