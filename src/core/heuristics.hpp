#pragma once

// The paper's broadcast-tree heuristics (Sections 3 and 4.2) plus the STA
// baselines from related work (Section 6).  Every function returns a valid
// spanning out-arborescence rooted at the platform source and throws
// bt::Error on unusable inputs.  Interpretation choices for the paper's
// pseudo-code on directed graphs are documented in DESIGN.md.

#include <vector>

#include "core/broadcast_tree.hpp"
#include "platform/platform.hpp"

namespace bt {

// --------------------------- platform-based (Section 3.1) ------------------

/// Algorithm 1, Topo-Prune-Simple: repeatedly delete the heaviest arc whose
/// removal keeps every node reachable from the source, down to n-1 arcs.
BroadcastTree prune_platform_simple(const Platform& platform);

/// Algorithm 2, Topo-Prune-Degree: delete arcs from the node whose current
/// weighted out-degree is largest (heaviest arc of that node first), as long
/// as reachability from the source is preserved.
BroadcastTree prune_platform_degree(const Platform& platform);

/// Algorithm 3, Grow-Tree: Prim-style growth that always adds the frontier
/// arc minimizing the resulting weighted out-degree of its sender.
BroadcastTree grow_tree(const Platform& platform);

/// Algorithm 4, Binomial-Tree: the MPI-style index binomial tree, with each
/// logical transfer routed along the T-weighted shortest path.  This variant
/// sanitizes the union of paths into a spanning arborescence (first parent
/// wins), which is what the simulator and the tree API consume.
BroadcastTree binomial_tree(const Platform& platform);

/// Algorithm 4 as written: the *multiset* of all routed transfer hops.  Hub
/// arcs shared by several transfers appear with multiplicity and congest
/// their endpoints -- the faithful model of an MPI binomial broadcast on a
/// sparse topology, and the variant the experiment harness rates.
BroadcastOverlay binomial_overlay(const Platform& platform);

// --------------------------- multi-port (Section 3.2) ----------------------

/// Algorithm 5, Multi-Port Grow-Tree: Grow-Tree with the multi-port period
/// max(deltaout(u) * send_u, max_child T) as the cost of attaching a child.
BroadcastTree multiport_grow_tree(const Platform& platform);

/// Multiport-Prune-Degree (Section 5.2.2): Topo-Prune-Degree with the
/// multi-port node period as pruning metric.
BroadcastTree multiport_prune_degree(const Platform& platform);

// --------------------------- LP-based (Section 4.2) ------------------------

/// Algorithm 6, LP-Prune: delete arcs carrying the fewest messages in the
/// optimal MTP solution (`edge_load` = n_{u,v}, indexed by arc id) while
/// reachability from the source is preserved.
BroadcastTree lp_prune(const Platform& platform, const std::vector<double>& edge_load);

/// Algorithm 7, LP-Grow-Tree: grow from the source always following the
/// frontier arc with the largest n_{u,v}.
BroadcastTree lp_grow_tree(const Platform& platform, const std::vector<double>& edge_load);

// --------------------------- STA baselines (Section 6) ---------------------

/// Fastest Node First [Banikazemi et al.]: attach the frontier node with the
/// smallest forwarding speed estimate first (node speed = min outgoing T),
/// via the sender that completes the transfer earliest (STA semantics).
BroadcastTree fastest_node_first(const Platform& platform);

/// Fastest Edge First / earliest-completion greedy [Bhat et al.]: repeatedly
/// perform the transfer (informed -> uninformed) that completes earliest
/// under one-port STA semantics.
BroadcastTree fastest_edge_first(const Platform& platform);

}  // namespace bt
