#pragma once

// Maximum flow (Dinic's algorithm) on capacitated digraphs.
//
// Used by the cutting-plane solver for the steady-state broadcast LP: for a
// fixed vector of edge loads n_e, a broadcast of throughput TP is feasible
// iff maxflow(source -> w) >= TP for every destination w (max-flow/min-cut
// duality applied per commodity).  The separation oracle needs both the flow
// value and a minimum cut, which Dinic provides directly from the last level
// graph.

#include <vector>

#include "graph/digraph.hpp"

namespace bt {

/// Result of a max-flow computation.
struct MaxFlowResult {
  double value = 0.0;
  /// Flow on every arc of the input graph (indexed by the graph's arc ids).
  std::vector<double> flow;
  /// Arc ids of a minimum source-sink cut (arcs from the source side to the
  /// sink side, saturated by the flow).
  std::vector<EdgeId> min_cut_edges;
  /// min_cut_side[v] = 1 iff v is on the source side of the minimum cut.
  std::vector<char> min_cut_side;
};

/// Dinic max-flow from `source` to `sink` with arc capacities `capacity`
/// (indexed by arc id; capacities must be >= 0).  Antiparallel arcs are
/// handled (each input arc gets its own residual pair).
class MaxFlowSolver {
 public:
  /// Prepares the residual network once; `solve` can then be called for many
  /// (source, sink, capacity) combinations on the same structure.
  explicit MaxFlowSolver(const Digraph& graph);

  MaxFlowResult solve(NodeId source, NodeId sink, const std::vector<double>& capacity);

 private:
  struct ResidualArc {
    NodeId to;
    std::size_t rev;    ///< index of the reverse arc in adj_[to]
    double cap;         ///< remaining capacity
    EdgeId original;    ///< arc id in the input graph; npos for reverse arcs
  };

  bool bfs_levels(NodeId source, NodeId sink);
  double dfs_push(NodeId u, NodeId sink, double limit);

  const Digraph& graph_;
  std::vector<std::vector<ResidualArc>> adj_;
  std::vector<int> level_;
  std::vector<std::size_t> next_arc_;
};

/// One-shot convenience wrapper.
MaxFlowResult max_flow(const Digraph& graph, NodeId source, NodeId sink,
                       const std::vector<double>& capacity);

}  // namespace bt
