#pragma once

// Maximum flow (Dinic's algorithm) on capacitated digraphs.
//
// Used by the cutting-plane solver for the steady-state broadcast LP: for a
// fixed vector of edge loads n_e, a broadcast of throughput TP is feasible
// iff maxflow(source -> w) >= TP for every destination w (max-flow/min-cut
// duality applied per commodity).  The separation oracle needs both the flow
// value and a minimum cut, which Dinic provides directly from the last level
// graph.
//
// The residual network lives in a flat CSR-style arc array built once per
// solver.  Because the separation oracle calls solve() once per destination
// with the *same* capacity vector, the solver tracks which residual arcs the
// previous run touched and, when the capacities repeat, restores only those
// instead of reloading all 2m arcs.  The augmenting walk is iterative (an
// explicit path stack), so deep platforms cannot overflow the call stack.

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace bt {

/// Result of a max-flow computation.
struct MaxFlowResult {
  double value = 0.0;
  /// Flow on every arc of the input graph (indexed by the graph's arc ids).
  std::vector<double> flow;
  /// Arc ids of a minimum source-sink cut (arcs from the source side to the
  /// sink side, saturated by the flow).
  std::vector<EdgeId> min_cut_edges;
  /// min_cut_side[v] = 1 iff v is on the source side of the minimum cut.
  std::vector<char> min_cut_side;
};

/// Dinic max-flow from `source` to `sink` with arc capacities `capacity`
/// (indexed by arc id; capacities must be >= 0).  Antiparallel arcs are
/// handled (each input arc gets its own residual pair).
///
/// A MaxFlowSolver is inherently single-consumer: the touched-arc restore
/// fast path mutates the residual arc array in place across solve() calls.
/// Parallel per-destination oracles therefore use one solver instance per
/// chunk/thread (see the separation oracle in ssb/planner_session.cpp);
/// solve() results depend only on (source, sink, capacity), so which
/// instance computes a destination never changes the answer.
class MaxFlowSolver {
 public:
  /// Prepares the residual network once; `solve` can then be called for many
  /// (source, sink, capacity) combinations on the same structure.
  explicit MaxFlowSolver(const Digraph& graph);

  MaxFlowResult solve(NodeId source, NodeId sink, const std::vector<double>& capacity);

  /// Result-reuse overload: identical computation, but `out`'s vectors are
  /// recycled (assign/clear keep their capacity) instead of freshly
  /// allocated.  The per-destination separation loop calls solve() once per
  /// destination with |flow| = m and |min_cut_side| = n; without reuse the
  /// parallel oracle spends its time in the allocator.
  void solve(NodeId source, NodeId sink, const std::vector<double>& capacity,
             MaxFlowResult& out);

 private:
  struct ResidualArc {
    NodeId to;
    std::uint32_t rev;  ///< index of the reverse arc in arcs_
    double cap;         ///< remaining capacity
    EdgeId original;    ///< arc id in the input graph; npos for reverse arcs
  };

  void load_capacities(const std::vector<double>& capacity);
  void touch(std::uint32_t arc);
  bool bfs_levels(NodeId source, NodeId sink);
  double blocking_flow(NodeId source, NodeId sink);

  const Digraph& graph_;
  std::vector<ResidualArc> arcs_;   ///< CSR arc array
  std::vector<std::size_t> start_;  ///< node u's arcs: [start_[u], start_[u+1])
  std::vector<std::uint32_t> fwd_arc_of_edge_;

  std::vector<double> loaded_capacity_;  ///< capacities of the last full load
  std::vector<std::uint32_t> touched_;   ///< arcs modified since that load
  std::vector<char> touched_flag_;
  bool has_load_ = false;

  std::vector<int> level_;
  std::vector<std::size_t> next_arc_;
  std::vector<std::uint32_t> path_;  ///< iterative DFS: arc indices of the walk
};

/// One-shot convenience wrapper.
MaxFlowResult max_flow(const Digraph& graph, NodeId source, NodeId sink,
                       const std::vector<double>& capacity);

}  // namespace bt
