#include "flow/maxflow.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/error.hpp"

namespace bt {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-12;
}  // namespace

MaxFlowSolver::MaxFlowSolver(const Digraph& graph) : graph_(graph) {
  const std::size_t n = graph.num_nodes();
  const std::size_t m = graph.num_edges();
  // CSR layout: node u's residual arcs (forward + reverse) are contiguous.
  std::vector<std::size_t> degree(n, 0);
  for (EdgeId e = 0; e < m; ++e) {
    ++degree[graph.from(e)];
    ++degree[graph.to(e)];
  }
  start_.assign(n + 1, 0);
  for (NodeId u = 0; u < n; ++u) start_[u + 1] = start_[u] + degree[u];
  arcs_.resize(2 * m);
  fwd_arc_of_edge_.resize(m);
  std::vector<std::size_t> cursor(start_.begin(), start_.end() - 1);
  for (EdgeId e = 0; e < m; ++e) {
    const NodeId u = graph.from(e);
    const NodeId v = graph.to(e);
    const auto fwd = static_cast<std::uint32_t>(cursor[u]++);
    const auto rev = static_cast<std::uint32_t>(cursor[v]++);
    arcs_[fwd] = ResidualArc{v, rev, 0.0, e};
    arcs_[rev] = ResidualArc{u, fwd, 0.0, Digraph::npos};
    fwd_arc_of_edge_[e] = fwd;
  }
  touched_flag_.assign(arcs_.size(), 0);
  level_.assign(n, -1);
  next_arc_.assign(n, 0);
}

void MaxFlowSolver::touch(std::uint32_t arc) {
  if (!touched_flag_[arc]) {
    touched_flag_[arc] = 1;
    touched_.push_back(arc);
  }
}

void MaxFlowSolver::load_capacities(const std::vector<double>& capacity) {
  // Fast path: the separation oracle re-solves with the same capacity vector
  // once per destination; only the arcs the previous run pushed flow through
  // need their capacity restored.
  if (has_load_ && capacity == loaded_capacity_) {
    for (const std::uint32_t a : touched_) {
      arcs_[a].cap = arcs_[a].original != Digraph::npos ? capacity[arcs_[a].original] : 0.0;
      touched_flag_[a] = 0;
    }
    touched_.clear();
    return;
  }
  for (const std::uint32_t a : touched_) touched_flag_[a] = 0;
  touched_.clear();
  for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
    BT_REQUIRE(capacity[e] >= 0.0, "max_flow: negative capacity");
    const std::uint32_t fwd = fwd_arc_of_edge_[e];
    arcs_[fwd].cap = capacity[e];
    arcs_[arcs_[fwd].rev].cap = 0.0;
  }
  loaded_capacity_ = capacity;
  has_load_ = true;
}

MaxFlowResult MaxFlowSolver::solve(NodeId source, NodeId sink,
                                   const std::vector<double>& capacity) {
  MaxFlowResult result;
  solve(source, sink, capacity, result);
  return result;
}

void MaxFlowSolver::solve(NodeId source, NodeId sink, const std::vector<double>& capacity,
                          MaxFlowResult& result) {
  BT_REQUIRE(source < graph_.num_nodes(), "max_flow: source out of range");
  BT_REQUIRE(sink < graph_.num_nodes(), "max_flow: sink out of range");
  BT_REQUIRE(source != sink, "max_flow: source == sink");
  BT_REQUIRE(capacity.size() == graph_.num_edges(), "max_flow: capacity size mismatch");

  load_capacities(capacity);

  result.value = 0.0;
  result.min_cut_edges.clear();
  while (bfs_levels(source, sink)) {
    std::copy(start_.begin(), start_.end() - 1, next_arc_.begin());
    result.value += blocking_flow(source, sink);
  }

  // Per-arc flow = capacity - residual.
  result.flow.assign(graph_.num_edges(), 0.0);
  for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
    result.flow[e] = capacity[e] - arcs_[fwd_arc_of_edge_[e]].cap;
  }

  // Min cut: the last BFS leaves exactly the source side labeled.
  result.min_cut_side.assign(graph_.num_nodes(), 0);
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    result.min_cut_side[v] = level_[v] >= 0 ? 1 : 0;
  }
  for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
    if (result.min_cut_side[graph_.from(e)] && !result.min_cut_side[graph_.to(e)]) {
      result.min_cut_edges.push_back(e);
    }
  }
}

bool MaxFlowSolver::bfs_levels(NodeId source, NodeId sink) {
  std::fill(level_.begin(), level_.end(), -1);
  std::queue<NodeId> queue;
  level_[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    for (std::size_t a = start_[u]; a < start_[u + 1]; ++a) {
      const ResidualArc& arc = arcs_[a];
      if (arc.cap > kEps && level_[arc.to] < 0) {
        level_[arc.to] = level_[u] + 1;
        queue.push(arc.to);
      }
    }
  }
  return level_[sink] >= 0;
}

/// One full blocking flow on the current level graph, as an iterative
/// advance/retreat walk over an explicit arc stack (deep level graphs on
/// chain-like platforms would overflow a recursive implementation).
double MaxFlowSolver::blocking_flow(NodeId source, NodeId sink) {
  double total = 0.0;
  path_.clear();
  NodeId u = source;
  while (true) {
    if (u == sink) {
      // Augment along the path by its bottleneck, then retreat to the tail
      // of the first saturated arc.
      double push = kInf;
      for (const std::uint32_t a : path_) push = std::min(push, arcs_[a].cap);
      for (const std::uint32_t a : path_) {
        touch(a);
        touch(arcs_[a].rev);
        arcs_[a].cap -= push;
        arcs_[arcs_[a].rev].cap += push;
      }
      total += push;
      std::size_t cut = 0;
      while (cut < path_.size() && arcs_[path_[cut]].cap > kEps) ++cut;
      path_.resize(cut + 1);
      u = arcs_[arcs_[path_.back()].rev].to;  // tail of the saturated arc
      path_.pop_back();
      continue;
    }
    // Advance along the next admissible arc out of u, if any.
    bool advanced = false;
    for (std::size_t& a = next_arc_[u]; a < start_[u + 1]; ++a) {
      const ResidualArc& arc = arcs_[a];
      if (arc.cap > kEps && level_[arc.to] == level_[u] + 1) {
        path_.push_back(static_cast<std::uint32_t>(a));
        u = arc.to;
        advanced = true;
        break;
      }
    }
    if (advanced) continue;
    // Dead end: retreat (or finish once the source itself is exhausted).
    if (u == source) break;
    const std::uint32_t back = path_.back();
    path_.pop_back();
    u = arcs_[arcs_[back].rev].to;
    ++next_arc_[u];  // skip the arc that led into the dead end
  }
  return total;
}

MaxFlowResult max_flow(const Digraph& graph, NodeId source, NodeId sink,
                       const std::vector<double>& capacity) {
  MaxFlowSolver solver(graph);
  return solver.solve(source, sink, capacity);
}

}  // namespace bt
