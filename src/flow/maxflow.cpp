#include "flow/maxflow.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/error.hpp"

namespace bt {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-12;
}  // namespace

MaxFlowSolver::MaxFlowSolver(const Digraph& graph) : graph_(graph) {
  adj_.assign(graph.num_nodes(), {});
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const NodeId u = graph.from(e);
    const NodeId v = graph.to(e);
    adj_[u].push_back(ResidualArc{v, adj_[v].size(), 0.0, e});
    adj_[v].push_back(ResidualArc{u, adj_[u].size() - 1, 0.0, Digraph::npos});
  }
  level_.assign(graph.num_nodes(), -1);
  next_arc_.assign(graph.num_nodes(), 0);
}

MaxFlowResult MaxFlowSolver::solve(NodeId source, NodeId sink,
                                   const std::vector<double>& capacity) {
  BT_REQUIRE(source < graph_.num_nodes(), "max_flow: source out of range");
  BT_REQUIRE(sink < graph_.num_nodes(), "max_flow: sink out of range");
  BT_REQUIRE(source != sink, "max_flow: source == sink");
  BT_REQUIRE(capacity.size() == graph_.num_edges(), "max_flow: capacity size mismatch");

  // (Re)load capacities into the residual network.
  for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
    for (ResidualArc& arc : adj_[u]) {
      if (arc.original != Digraph::npos) {
        BT_REQUIRE(capacity[arc.original] >= 0.0, "max_flow: negative capacity");
        arc.cap = capacity[arc.original];
      } else {
        arc.cap = 0.0;
      }
    }
  }

  MaxFlowResult result;
  while (bfs_levels(source, sink)) {
    std::fill(next_arc_.begin(), next_arc_.end(), std::size_t{0});
    while (true) {
      const double pushed = dfs_push(source, sink, kInf);
      if (pushed <= kEps) break;
      result.value += pushed;
    }
  }

  // Per-arc flow = capacity - residual.
  result.flow.assign(graph_.num_edges(), 0.0);
  for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
    for (const ResidualArc& arc : adj_[u]) {
      if (arc.original != Digraph::npos) {
        result.flow[arc.original] = capacity[arc.original] - arc.cap;
      }
    }
  }

  // Min cut: the last BFS leaves exactly the source side labeled.
  result.min_cut_side.assign(graph_.num_nodes(), 0);
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    result.min_cut_side[v] = level_[v] >= 0 ? 1 : 0;
  }
  for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
    if (result.min_cut_side[graph_.from(e)] && !result.min_cut_side[graph_.to(e)]) {
      result.min_cut_edges.push_back(e);
    }
  }
  return result;
}

bool MaxFlowSolver::bfs_levels(NodeId source, NodeId sink) {
  std::fill(level_.begin(), level_.end(), -1);
  std::queue<NodeId> queue;
  level_[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    for (const ResidualArc& arc : adj_[u]) {
      if (arc.cap > kEps && level_[arc.to] < 0) {
        level_[arc.to] = level_[u] + 1;
        queue.push(arc.to);
      }
    }
  }
  return level_[sink] >= 0;
}

double MaxFlowSolver::dfs_push(NodeId u, NodeId sink, double limit) {
  if (u == sink) return limit;
  for (std::size_t& i = next_arc_[u]; i < adj_[u].size(); ++i) {
    ResidualArc& arc = adj_[u][i];
    if (arc.cap > kEps && level_[arc.to] == level_[u] + 1) {
      const double pushed = dfs_push(arc.to, sink, std::min(limit, arc.cap));
      if (pushed > kEps) {
        arc.cap -= pushed;
        adj_[arc.to][arc.rev].cap += pushed;
        return pushed;
      }
    }
  }
  return 0.0;
}

MaxFlowResult max_flow(const Digraph& graph, NodeId source, NodeId sink,
                       const std::vector<double>& capacity) {
  MaxFlowSolver solver(graph);
  return solver.solve(source, sink, capacity);
}

}  // namespace bt
