#pragma once

// Linear program builder.
//
// The paper solves the steady-state broadcast program (2) "with standard
// tools such as Maple or MuPAD"; this repository builds its own solver.
// LpProblem is the model layer: variables with non-negative domains and an
// objective coefficient, plus sparse constraint rows.  Solving happens in
// simplex.hpp.

#include <string>
#include <vector>

namespace bt {

enum class RowSense { kLessEqual, kGreaterEqual, kEqual };
enum class Objective { kMaximize, kMinimize };

/// Sparse constraint entry: coefficient on a variable.
struct LpTerm {
  std::size_t var;
  double coeff;
};

/// A linear program with non-negative variables.
class LpProblem {
 public:
  explicit LpProblem(Objective objective = Objective::kMaximize)
      : objective_(objective) {}

  /// Add a variable x >= 0 with the given objective coefficient.
  std::size_t add_variable(double objective_coeff, std::string name = {});

  /// Add a constraint  sum_i terms[i].coeff * x_{terms[i].var}  <sense>  rhs.
  /// Duplicate variable entries in `terms` are summed.
  std::size_t add_constraint(const std::vector<LpTerm>& terms, RowSense sense, double rhs);

  Objective objective() const { return objective_; }
  std::size_t num_variables() const { return objective_coeff_.size(); }
  std::size_t num_constraints() const { return rows_.size(); }

  double objective_coeff(std::size_t var) const;
  const std::string& variable_name(std::size_t var) const;

  struct Row {
    std::vector<LpTerm> terms;
    RowSense sense;
    double rhs;
  };
  const Row& row(std::size_t i) const;

  /// Evaluate the objective at a point.
  double objective_value(const std::vector<double>& x) const;

  /// Max violation of any constraint or variable bound at `x` (0 = feasible).
  double max_violation(const std::vector<double>& x) const;

 private:
  Objective objective_;
  std::vector<double> objective_coeff_;
  std::vector<std::string> names_;
  std::vector<Row> rows_;
};

}  // namespace bt
