#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "lp/basis_lu.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace bt {

std::string to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kUnbounded: return "unbounded";
    case LpStatus::kIterationLimit: return "iteration-limit";
  }
  return "unknown";
}

std::string to_string(PricingRule rule) {
  switch (rule) {
    case PricingRule::kDantzig: return "dantzig";
    case PricingRule::kDevex: return "devex";
  }
  return "unknown";
}

std::string to_string(DualRowRule rule) {
  switch (rule) {
    case DualRowRule::kMostInfeasible: return "most-infeasible";
    case DualRowRule::kDevex: return "dual-devex";
    case DualRowRule::kSteepestEdge: return "steepest-edge";
  }
  return "unknown";
}

namespace detail {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// Candidate-list (partial) pricing: a pricing pass stops collecting after
/// this many violating columns and enters the best of them, resuming the
/// cyclic scan where it left off on the next iteration.  Optimality is only
/// declared after a full scan finds no violating column.
constexpr std::size_t kPricingWindow = 64;

/// Devex reference weights above this trigger a framework reset (weights
/// back to 1): growth of the max-form recurrence signals the reference
/// frame has drifted too far to steer pricing usefully.
constexpr double kDevexResetThreshold = 1e7;

/// Floor of the Forrest-Goldfarb dual steepest-edge recurrence: the exact
/// update can go non-positive under rounding, so weights are clamped here.
constexpr double kDseWeightFloor = 1e-4;

/// Sparse column: (row index, value) pairs.
struct SparseCol {
  std::vector<std::uint32_t> rows;
  std::vector<double> vals;

  void push(std::uint32_t row, double value) {
    if (value == 0.0) return;
    rows.push_back(row);
    vals.push_back(value);
  }
  std::size_t nnz() const { return rows.size(); }
};

/// Append-only compressed-sparse-column arena: all columns live in two
/// contiguous arrays, so the pricing scan streams through memory instead of
/// chasing one heap allocation per column.
struct ColumnStore {
  std::vector<std::uint32_t> rows;
  std::vector<double> vals;
  std::vector<std::size_t> start{0};  ///< per-column offsets; size = ncols+1

  std::size_t num_cols() const { return start.size() - 1; }
  std::size_t nnz(std::size_t j) const { return start[j + 1] - start[j]; }
  const std::uint32_t* col_rows(std::size_t j) const { return rows.data() + start[j]; }
  const double* col_vals(std::size_t j) const { return vals.data() + start[j]; }

  /// Append an entry to the column under construction (zeros are dropped).
  void push(std::uint32_t row, double value) {
    if (value == 0.0) return;
    rows.push_back(row);
    vals.push_back(value);
  }
  /// Seal the column under construction and start the next one.
  void end_column() { start.push_back(rows.size()); }
};

/// Role of an internal column in the standard form.
enum class ColKind : unsigned char { kStructural, kSlack, kSurplus, kArtificial };

// ---------------------------------------------------------------------------
// Sparse engine: LU-factored basis (basis_lu.hpp) with product-form eta
// updates between periodic refactorizations, candidate-list pricing, and an
// append-column path for incremental (column-generation) use.
//
// Internal standard form: minimize c.z subject to A z = b, z >= 0.  Rows
// whose right-hand side starts non-negative with a +1 slack begin basic;
// only >= and = rows require phase-1 artificials.
// ---------------------------------------------------------------------------
class SparseSimplexCore {
 public:
  SparseSimplexCore(const LpProblem& problem, const SimplexOptions& options)
      : options_(options) {
    lu_.set_update_mode(options.update_mode);
    lu_.set_solve_mode(options.solve_mode);
    lu_.set_collect_timing(options.collect_kernel_timing);
    stats_.pricing_mode =
        to_string(options.pricing) + "/" + to_string(options.dual_row_rule) + "/" +
        (options.solve_mode == BasisLu::SolveMode::kReachSet ? "reach" : "sweep");
    build(problem);
  }

  std::size_t num_structural() const { return num_structural_; }
  std::size_t num_rows_total() const { return num_rows_ + pending_rows_.size(); }

  /// Engine-lifetime diagnostics: simplex-layer counters plus the LU
  /// kernel's reach/timing counters.
  LpEngineStats engine_stats() const {
    LpEngineStats s = stats_;
    s.accumulate(lu_.stats());
    return s;
  }

  /// Basis-label extraction only serves cross-solve warm starts; a standing
  /// IncrementalSimplex keeps its basis in place and can skip it.
  void set_emit_basis_labels(bool emit) { emit_basis_labels_ = emit; }

  /// Sum `terms` into the rhs_work_ scratch (dimension `size`, indices
  /// bound-checked).  The nonzero list may carry duplicates when a
  /// coefficient passes through exactly zero mid-accumulation; consumers
  /// must either read densely or clear slots as they emit.
  ScatteredVector& accumulate_terms(const std::vector<LpTerm>& terms, std::size_t size,
                                    const char* bound_message) {
    ScatteredVector& acc = rhs_work_;
    acc.reset(size);
    for (const LpTerm& t : terms) {
      BT_REQUIRE(t.var < size, bound_message);
      if (acc.value[t.var] == 0.0 && t.coeff != 0.0) {
        acc.nonzero.push_back(static_cast<std::uint32_t>(t.var));
      }
      acc.value[t.var] += t.coeff;
    }
    return acc;
  }

  /// Append a structural column; the standing basis/factorization stay
  /// valid (the new column enters non-basic at zero).
  std::size_t add_column(double objective_coeff, const std::vector<LpTerm>& terms) {
    BT_REQUIRE(!rows_dropped_,
               "IncrementalSimplex::add_column: a redundant row was dropped; "
               "appended columns can no longer be aligned with the rows");
    merge_pending_rows();
    {
      ScatteredVector& acc = accumulate_terms(
          terms, num_rows_, "IncrementalSimplex::add_column: row index out of range");
      const std::size_t j = cols_.num_cols();
      for (std::size_t i = 0; i < num_rows_; ++i) {
        if (acc.value[i] != 0.0) {
          const double v = row_flip_[i] * acc.value[i];
          cols_.push(static_cast<std::uint32_t>(i), v);
          if (v != 0.0) row_entries_[i].push_back({j, v});
        }
      }
      cols_.end_column();
      acc.reset(num_rows_);
    }
    const double sense = maximize_ ? -1.0 : 1.0;
    kind_.push_back(ColKind::kStructural);
    structural_id_.push_back(num_structural_);
    orig_obj_.push_back(objective_coeff);
    cost_.push_back(sense * objective_coeff);
    phase1_cost_.push_back(0.0);
    col_of_structural_.push_back(cols_.num_cols() - 1);
    ++stats_.columns_appended;
    return num_structural_++;
  }

  /// Buffer a <= or >= row over the structural variables; rows are merged
  /// into the model lazily at the next solve / reoptimize / add_column.
  /// Returns the new row's external index.
  std::size_t append_row(const std::vector<LpTerm>& terms, RowSense sense, double rhs) {
    BT_REQUIRE(!rows_dropped_,
               "IncrementalSimplex::append_row: a redundant row was dropped; "
               "appended rows can no longer be aligned with the duals");
    BT_REQUIRE(sense != RowSense::kEqual,
               "IncrementalSimplex::append_row: equality rows are not supported; "
               "append the two inequalities instead");
    PendingRow row;
    row.rhs = rhs;
    row.sense = sense;
    // Sum duplicate variable entries, mirroring add_constraint semantics;
    // emission clears each slot so duplicate nonzero entries are no-ops.
    ScatteredVector& acc = accumulate_terms(
        terms, num_structural_, "IncrementalSimplex::append_row: variable index out of range");
    for (const std::uint32_t v : acc.nonzero) {
      if (acc.value[v] != 0.0) row.terms.push_back({v, acc.value[v]});
      acc.value[v] = 0.0;
    }
    acc.nonzero.clear();
    pending_rows_.push_back(std::move(row));
    ++stats_.rows_appended;
    return num_rows_ + pending_rows_.size() - 1;
  }

  /// Change the right-hand side of an existing row.  Reduced costs are
  /// untouched, so a dual-feasible basis stays dual feasible; only the
  /// basic values move (recomputed here), which reoptimize_dual repairs.
  void set_row_rhs(std::size_t row, double rhs) {
    merge_pending_rows();
    BT_REQUIRE(!rows_dropped_,
               "IncrementalSimplex::set_row_rhs: a redundant row was dropped");
    BT_REQUIRE(row < num_rows_, "IncrementalSimplex::set_row_rhs: row out of range");
    const double internal = row_flip_[row] * rhs;
    // Before the first solve, rows without a slack carry a basic artificial
    // whose phase-1 treatment assumes b >= 0; a sign-changing rhs there
    // would silently corrupt phase 1 (solve first -- the dual repair then
    // handles any sign).  Slack rows are safe pre-solve: the dual phase
    // runs for them right after phase 1.
    BT_REQUIRE(phase1_done_ || internal >= 0.0 || slack_col_of_row_[row] != kNpos,
               "IncrementalSimplex::set_row_rhs: cannot turn this row's internal rhs "
               "negative before the first solve");
    const double delta = internal - b_[row];
    b_[row] = internal;
    ++stats_.rhs_updates;
    if (delta == 0.0) return;
    // Sparse delta: xb += delta * B^{-1} e_row -- one hypersparse unit FTRAN
    // instead of re-solving B xb = b from scratch.  The standing cutting
    // plane re-ranges one rhs every separation round, so this is a hot path.
    rhs_work_.reset(num_rows_);
    rhs_work_.push(static_cast<std::uint32_t>(row), delta);
    lu_.ftran(rhs_work_, BasisLu::SolveHint::kSparse);
    for (const std::uint32_t i : rhs_work_.nonzero) xb_[i] += rhs_work_.value[i];
  }

  /// Full two-phase solve on the first call; re-optimization from the
  /// standing basis on subsequent calls (a dual phase first when appended
  /// rows left the standing point primal infeasible).
  LpSolution solve() { return optimize(); }

  /// Dual-first re-optimization after append_row / set_row_rhs (see
  /// header).  Equivalent to solve(); the name documents intent.
  LpSolution reoptimize_dual() { return optimize(); }

 private:
  LpSolution optimize() {
    merge_pending_rows();
    LpSolution solution;
    // A phase that aborts on numerical breakdown (reverted-pivot bans, an
    // unrepairable drifted basis) gets ONE full retry from the pristine
    // unit start basis -- trading the warm start for survival; 190+-node
    // cutting-plane masters genuinely hit this.  A genuine iteration-limit
    // exhaustion (no breakdown observed) is returned as-is: retrying would
    // silently double the caller's requested budget.
    for (int attempt = 0;; ++attempt) {
      numerical_breakdown_ = false;
      solution.status = run_phases(solution);
      if (solution.status != LpStatus::kIterationLimit || !numerical_breakdown_ ||
          attempt > 0 || !reset_to_initial_basis()) {
        break;
      }
    }
    if (solution.status == LpStatus::kOptimal) extract_solution(solution);
    return solution;
  }

  LpStatus run_phases(LpSolution& solution) {
    // phase1_done_ is only latched on success: a re-solve after an
    // infeasible (or iteration-limited) phase 1 runs phase 1 again from the
    // current basis rather than silently optimizing with artificials basic.
    if (!phase1_done_) {
      if (num_artificials_ > 0) {
        active_cost_ = &phase1_cost_;
        allow_artificial_entering_ = true;
        const LpStatus st = iterate(&solution.iterations);
        // Phase 1 is bounded below by 0, so anything else is a limit.
        if (st != LpStatus::kOptimal) return LpStatus::kIterationLimit;
        if (phase_objective() > 1e-7) return LpStatus::kInfeasible;
        purge_artificials();
      }
      phase1_done_ = true;
    }
    if (primal_infeasible()) {
      // Appended rows / changed rhs broke primal feasibility; the dual
      // simplex restores it from the standing basis (dual feasible when
      // the previous solve ended optimal; mild dual infeasibility is
      // tolerated -- reduced costs are clamped in the ratio test and the
      // primal cleanup below restores optimality).  This also covers
      // set_row_rhs turning a right-hand side negative *before* the first
      // solve, which phase 1 cannot see (the row's slack is basic, not an
      // artificial).
      active_cost_ = &cost_;
      allow_artificial_entering_ = false;
      const LpStatus st = dual_iterate(&solution.iterations);
      if (st != LpStatus::kOptimal) return st;
    }
    active_cost_ = &cost_;
    allow_artificial_entering_ = false;
    return iterate(&solution.iterations);
  }

  void extract_solution(LpSolution& solution) {
    // Structural primal values and the objective in the caller's sense.
    solution.x.assign(num_structural_, 0.0);
    for (std::size_t r = 0; r < num_rows_; ++r) {
      const std::size_t j = basis_[r];
      if (kind_[j] == ColKind::kStructural) {
        solution.x[structural_id_[j]] = std::max(0.0, xb_[r]);
      }
    }
    solution.objective = 0.0;
    for (std::size_t i = 0; i < num_structural_; ++i) {
      solution.objective += orig_obj_[i] * solution.x[i];
    }

    // Duals: y = c_B^T B^{-1}, mapped back through row flips / objective
    // sense (rows dropped as redundant keep dual 0).
    btran_costs(y_work_);
    solution.duals.assign(num_orig_rows_, 0.0);
    for (std::size_t i = 0; i < num_rows_; ++i) {
      double v = row_flip_[i] * y_work_.value[i];
      if (maximize_) v = -v;
      solution.duals[row_origin_[i]] = v;
    }

    // Basis labels for warm starts (only when every basic variable has a
    // stable label and no rows were dropped).
    if (emit_basis_labels_ && num_rows_ == num_orig_rows_) {
      solution.basis.resize(num_rows_);
      bool labelable = true;
      for (std::size_t r = 0; r < num_rows_ && labelable; ++r) {
        const std::size_t j = basis_[r];
        if (kind_[j] == ColKind::kStructural) {
          solution.basis[r] = structural_id_[j];
        } else if (kind_[j] == ColKind::kSlack) {
          const std::size_t row = cols_.col_rows(j)[0];
          solution.basis[r] = kSlackLabelBase - row;
        } else {
          labelable = false;  // surplus or artificial stuck in the basis
        }
      }
      if (!labelable) solution.basis.clear();
    }
  }

  // ---------- model construction ----------
  void build(const LpProblem& problem) {
    maximize_ = problem.objective() == Objective::kMaximize;
    const std::size_t m = problem.num_constraints();
    num_orig_rows_ = m;
    num_structural_ = problem.num_variables();
    num_rows_ = m;
    row_flip_.assign(m, 1.0);
    row_origin_.resize(m);
    b_.resize(m);

    kind_.assign(num_structural_, ColKind::kStructural);
    structural_id_.resize(num_structural_);
    col_of_structural_.resize(num_structural_);
    orig_obj_.resize(num_structural_);
    cost_.assign(num_structural_, 0.0);
    const double sense = maximize_ ? -1.0 : 1.0;
    for (std::size_t j = 0; j < num_structural_; ++j) {
      structural_id_[j] = j;
      col_of_structural_[j] = j;  // structural columns come first at build
      orig_obj_[j] = problem.objective_coeff(j);
      cost_[j] = sense * orig_obj_[j];
    }
    std::vector<RowSense> senses(m);
    for (std::size_t i = 0; i < m; ++i) {
      row_origin_[i] = i;
      const auto& row = problem.row(i);
      double flip = 1.0;
      RowSense s = row.sense;
      if (row.rhs < 0.0) {
        flip = -1.0;
        if (s == RowSense::kLessEqual) s = RowSense::kGreaterEqual;
        else if (s == RowSense::kGreaterEqual) s = RowSense::kLessEqual;
      }
      row_flip_[i] = flip;
      b_[i] = flip * row.rhs;
      senses[i] = s;
    }
    // Structural columns, transposed from the row-wise LpProblem into the
    // contiguous column arena (count, prefix-sum, fill).
    {
      std::vector<std::size_t> count(num_structural_, 0);
      for (std::size_t i = 0; i < m; ++i) {
        for (const LpTerm& t : problem.row(i).terms) {
          if (t.coeff != 0.0) ++count[t.var];
        }
      }
      cols_.start.assign(num_structural_ + 1, 0);
      for (std::size_t j = 0; j < num_structural_; ++j) {
        cols_.start[j + 1] = cols_.start[j] + count[j];
      }
      const std::size_t total = cols_.start[num_structural_];
      cols_.rows.assign(total, 0);
      cols_.vals.assign(total, 0.0);
      std::vector<std::size_t> cursor(cols_.start.begin(), cols_.start.end() - 1);
      for (std::size_t i = 0; i < m; ++i) {
        for (const LpTerm& t : problem.row(i).terms) {
          if (t.coeff == 0.0) continue;
          cols_.rows[cursor[t.var]] = static_cast<std::uint32_t>(i);
          cols_.vals[cursor[t.var]] = row_flip_[i] * t.coeff;
          ++cursor[t.var];
        }
      }
    }

    // Slack / surplus columns, then artificials.
    basis_.assign(m, kNpos);
    slack_col_of_row_.assign(m, kNpos);
    for (std::size_t i = 0; i < m; ++i) {
      if (senses[i] == RowSense::kLessEqual) {
        const std::size_t j = add_unit_column(i, +1.0, ColKind::kSlack);
        slack_col_of_row_[i] = j;
        basis_[i] = j;  // slack starts basic (b >= 0)
      } else if (senses[i] == RowSense::kGreaterEqual) {
        add_unit_column(i, -1.0, ColKind::kSurplus);  // cannot start basic
      }
    }
    for (std::size_t i = 0; i < m; ++i) {
      if (basis_[i] == kNpos) {
        basis_[i] = add_unit_column(i, +1.0, ColKind::kArtificial);
        ++num_artificials_;
      }
    }
    initial_basis_col_ = basis_;  // the unit (slack/artificial) start basis
    phase1_cost_.assign(cols_.num_cols(), 0.0);
    for (std::size_t j = 0; j < cols_.num_cols(); ++j) {
      if (kind_[j] == ColKind::kArtificial) phase1_cost_[j] = 1.0;
    }

    rebuild_row_entries();

    // try_warm_start() leaves an accepted warm basis already factorized;
    // only the slack basis (or a rejected warm start) still needs one.
    if (num_artificials_ > 0 || !try_warm_start()) {
      BT_ASSERT(try_refactor(), "simplex: singular basis during refactor [build]");
    }
  }

  /// Replace the default slack basis with the caller-provided labels when
  /// they decode to a primal-feasible basis of this problem.  Returns true
  /// when the warm basis was adopted (and is then already factorized).
  bool try_warm_start() {
    const std::vector<std::size_t>* warm = options_.warm_basis;
    if (warm == nullptr || warm->size() != num_rows_) return false;
    std::vector<std::size_t> candidate(num_rows_);
    std::vector<char> used(cols_.num_cols(), 0);
    for (std::size_t r = 0; r < num_rows_; ++r) {
      std::size_t col;
      const std::size_t label = (*warm)[r];
      if (label < num_structural_) {
        col = label;  // structural columns come first at build time
      } else if (kSlackLabelBase - label < num_rows_) {
        col = slack_col_of_row_[kSlackLabelBase - label];
        if (col == kNpos) return false;  // row has no slack
      } else {
        return false;  // undecodable label
      }
      if (used[col]) return false;  // duplicate basic variable
      used[col] = 1;
      candidate[r] = col;
    }
    const std::vector<std::size_t> saved = basis_;
    basis_ = candidate;
    try {
      refactor();
    } catch (const Error&) {
      basis_ = saved;  // singular warm basis: fall back to the slack basis
      return false;
    }
    for (double v : xb_) {
      if (v < -1e-7) {  // warm basis not primal feasible here
        basis_ = saved;
        return false;
      }
    }
    return true;
  }

  std::size_t add_unit_column(std::size_t row, double value, ColKind kind) {
    cols_.push(static_cast<std::uint32_t>(row), value);
    cols_.end_column();
    kind_.push_back(kind);
    structural_id_.push_back(kNpos);
    cost_.push_back(0.0);
    return cols_.num_cols() - 1;
  }

  // ---------- linear algebra (all through the LU factorization) ----------
  /// Refactorize the current basis; returns false (factorization invalid)
  /// when it is numerically singular, which pivot() uses to revert a basis
  /// change gone bad instead of dying.
  bool try_refactor() {
    const std::size_t m = num_rows_;
    std::vector<SparseColumnView> views(m);
    for (std::size_t r = 0; r < m; ++r) {
      const std::size_t j = basis_[r];
      views[r] = SparseColumnView{cols_.col_rows(j), cols_.col_vals(j), cols_.nnz(j)};
    }
    if (!lu_.factorize(m, views)) return false;
    recompute_xb();
    ++stats_.refactorizations;
    // Pricing weights attach to the *basis*, which a refactorization does
    // not change, so the reference frameworks survive it; the safeguard
    // against drift is the per-pivot exact anchor of the dual weights
    // (update_dual_weights) and the overflow / Bland-exit resets of the
    // primal ones.
    return true;
  }

  void refactor() {
    BT_ASSERT(try_refactor(), "simplex: singular basis during refactor");
  }

  /// Last-resort recovery for a numerically singular standing basis: fall
  /// back to the all-slack basis, which is an identity and always
  /// factorizes.  Only possible when every row carries a slack (pure-<=
  /// models -- all the SSB masters); the solve then continues cold from
  /// the slack basis, trading the warm start for survival.  Returns false
  /// for models without full slack cover.
  bool reset_to_slack_basis() {
    for (std::size_t i = 0; i < num_rows_; ++i) {
      if (slack_col_of_row_[i] == kNpos) return false;
    }
    for (std::size_t i = 0; i < num_rows_; ++i) basis_[i] = slack_col_of_row_[i];
    BT_ASSERT(try_refactor(), "simplex: singular basis during refactor [slack-reset]");
    primal_weight_reset_pending_ = true;
    dual_weight_reset_pending_ = true;
    return true;
  }

  /// Ensure some valid factorized basis exists: the current one, else the
  /// all-slack fallback.  `basis_reset` tells the caller to rebuild its
  /// phase-local state; false means nothing factorizes (mixed-sense model
  /// whose drifted basis cannot be repaired) and the phase must abort.
  bool ensure_factorizable_basis(bool& basis_reset) {
    if (try_refactor()) return true;
    basis_reset = true;
    return reset_to_slack_basis();
  }

  /// Full cold restart from the pristine unit start basis (slacks +
  /// artificials as built): the optimize() retry after a phase aborted on
  /// numerical breakdown.  Re-arms phase 1 when artificials come back
  /// basic, so the whole two-phase method reruns from scratch.
  bool reset_to_initial_basis() {
    if (initial_basis_col_.size() != num_rows_) return false;  // rows dropped
    bool artificial_basic = false;
    for (std::size_t i = 0; i < num_rows_; ++i) {
      basis_[i] = initial_basis_col_[i];
      if (kind_[basis_[i]] == ColKind::kArtificial) artificial_basic = true;
    }
    if (artificial_basic) phase1_done_ = false;
    if (!try_refactor()) return false;  // unit basis: cannot happen
    primal_weight_reset_pending_ = true;
    dual_weight_reset_pending_ = true;
    return true;
  }

  /// Rebuild the row-wise mirror of the column arena (internal column id,
  /// internal coefficient, in column order per row).  The mirror lets the
  /// dual ratio test and the Devex pivot-row pass accumulate rho^T A over
  /// only the rows a hypersparse rho touches instead of one dot product per
  /// column.
  void rebuild_row_entries() {
    row_entries_.assign(num_rows_, {});
    for (std::size_t j = 0; j < cols_.num_cols(); ++j) {
      const std::uint32_t* rows = cols_.col_rows(j);
      const double* vals = cols_.col_vals(j);
      for (std::size_t k = 0; k < cols_.nnz(j); ++k) {
        row_entries_[rows[k]].push_back({j, vals[k]});
      }
    }
  }

  /// Scatter the pivot row alpha = rho^T A (rho in rho_work_) over the
  /// internal columns into alpha_work_.  The nonzero list may carry
  /// duplicates when an entry cancels through zero; consumers read each
  /// slot once and clear it.
  void accumulate_pivot_row() {
    alpha_work_.reset(cols_.num_cols());
    for (const std::uint32_t i : rho_work_.nonzero) {
      const double r = rho_work_.value[i];
      if (r == 0.0) continue;
      for (const LpTerm& t : row_entries_[i]) {
        if (alpha_work_.value[t.var] == 0.0) {
          alpha_work_.nonzero.push_back(static_cast<std::uint32_t>(t.var));
        }
        alpha_work_.value[t.var] += r * t.coeff;
      }
    }
  }

  void reset_primal_weights(std::size_t n) {
    devex_w_.assign(n, 1.0);
    primal_weight_reset_pending_ = false;
    ++stats_.pricing_weight_resets;
  }

  /// Carry the standing Devex framework across re-solves: appended columns
  /// enter at the reference weight 1, everything else keeps its weight
  /// (the framework attaches to the basis trajectory, not to one solve).
  void ensure_primal_weights(std::size_t n) {
    if (primal_weight_reset_pending_ || devex_w_.empty()) reset_primal_weights(n);
    else if (devex_w_.size() < n) devex_w_.resize(n, 1.0);
  }

  void reset_dual_weights() {
    dual_w_.assign(num_rows_, 1.0);
    dual_weight_reset_pending_ = false;
    ++stats_.pricing_weight_resets;
  }

  /// Devex (max-form) primal weight update for the pivot (entering,
  /// leave_row): one hypersparse unit BTRAN recovers the pivot row, one
  /// row-mirror pass updates the weights of the nonbasic columns it
  /// touches.  Must run before pivot() swaps the basis.
  void update_primal_weights(std::size_t entering, std::size_t leave_row) {
    rho_work_.reset(num_rows_);
    rho_work_.push(static_cast<std::uint32_t>(leave_row), 1.0);
    lu_.btran(rho_work_, BasisLu::SolveHint::kSparse);
    const double alpha_q = w_work_.value[leave_row];
    if (alpha_q == 0.0) return;
    accumulate_pivot_row();
    alpha_cols_.clear();
    alpha_vals_.clear();
    for (const std::uint32_t j : alpha_work_.nonzero) {
      const double alpha = alpha_work_.value[j];
      alpha_work_.value[j] = 0.0;
      if (alpha == 0.0) continue;
      alpha_cols_.push_back(j);
      alpha_vals_.push_back(alpha);
    }
    alpha_work_.nonzero.clear();
    apply_devex_update(entering, leave_row, alpha_q);
  }

  /// Devex max-form recurrence over the cached pivot row
  /// (alpha_cols_/alpha_vals_): nonbasic weights lift to
  /// (alpha_j/alpha_q)^2 * w_q, the leaving variable re-enters the
  /// framework at max(w_q/alpha_q^2, 1).  Shared by the primal pivots
  /// (which compute the pivot row for exactly this) and the dual pivots
  /// (where the ratio test already computed it) -- maintaining the primal
  /// framework through dual phases keeps it valid across the
  /// dual-then-primal re-optimizations of the standing masters.
  void apply_devex_update(std::size_t entering, std::size_t leave_row, double alpha_q) {
    const double wq = std::max(devex_w_[entering], 1.0);
    double max_w = 0.0;
    for (std::size_t t = 0; t < alpha_cols_.size(); ++t) {
      const std::uint32_t j = alpha_cols_[t];
      if (in_basis_[j] || j == entering) continue;
      const double ratio = alpha_vals_[t] / alpha_q;
      const double candidate = ratio * ratio * wq;
      if (candidate > devex_w_[j]) devex_w_[j] = candidate;
      max_w = std::max(max_w, devex_w_[j]);
    }
    devex_w_[basis_[leave_row]] = std::max(wq / (alpha_q * alpha_q), 1.0);
    max_w = std::max(max_w, devex_w_[basis_[leave_row]]);
    if (max_w > kDevexResetThreshold) primal_weight_reset_pending_ = true;
  }

  /// Dual row-weight update for the pivot on `leave_row` with FTRAN
  /// direction w_work_ (pivot element `wr`).  Steepest edge runs the exact
  /// Forrest-Goldfarb recurrence (one extra hypersparse FTRAN for tau =
  /// B^{-1} rho); Devex runs the max-form recurrence.  Both anchor the
  /// leaving row's weight at its exact value ||rho||^2, which is free here
  /// -- the ratio test already BTRAN'd rho -- and double as the drift
  /// safeguard: a stored weight far off the exact one restarts the frame.
  void update_dual_weights(std::size_t leave_row, double wr) {
    double gamma_exact = 0.0;
    for (const std::uint32_t i : rho_work_.nonzero) {
      gamma_exact += rho_work_.value[i] * rho_work_.value[i];
    }
    const double stored = dual_w_[leave_row];
    if (stored > 16.0 * gamma_exact || gamma_exact > 16.0 * stored) {
      dual_weight_reset_pending_ = true;
    }
    if (options_.dual_row_rule == DualRowRule::kSteepestEdge) {
      tau_work_.reset(num_rows_);
      for (const std::uint32_t i : rho_work_.nonzero) {
        if (rho_work_.value[i] != 0.0) tau_work_.push(i, rho_work_.value[i]);
      }
      lu_.ftran(tau_work_, BasisLu::SolveHint::kSparse);
      for (const std::uint32_t r : w_work_.nonzero) {
        if (r == leave_row) continue;
        const double ratio = w_work_.value[r] / wr;
        if (ratio == 0.0) continue;
        const double updated =
            dual_w_[r] - 2.0 * ratio * tau_work_.value[r] + ratio * ratio * gamma_exact;
        dual_w_[r] = std::max(updated, kDseWeightFloor);
      }
      dual_w_[leave_row] = std::max(gamma_exact / (wr * wr), kDseWeightFloor);
    } else {
      const double gamma_r = std::max(gamma_exact, 1.0);
      double max_w = 0.0;
      for (const std::uint32_t r : w_work_.nonzero) {
        if (r == leave_row) continue;
        const double ratio = w_work_.value[r] / wr;
        const double candidate = ratio * ratio * gamma_r;
        if (candidate > dual_w_[r]) dual_w_[r] = candidate;
        max_w = std::max(max_w, dual_w_[r]);
      }
      dual_w_[leave_row] = std::max(gamma_r / (wr * wr), 1.0);
      if (std::max(max_w, dual_w_[leave_row]) > kDevexResetThreshold) {
        dual_weight_reset_pending_ = true;
      }
    }
  }

  void recompute_xb() {
    rhs_work_.reset(num_rows_);
    for (std::size_t i = 0; i < num_rows_; ++i) {
      if (b_[i] != 0.0) rhs_work_.push(static_cast<std::uint32_t>(i), b_[i]);
    }
    lu_.ftran(rhs_work_);
    xb_.assign(num_rows_, 0.0);
    for (const std::uint32_t i : rhs_work_.nonzero) xb_[i] = rhs_work_.value[i];
  }

  /// w = B^{-1} * column j, sparse.
  void ftran_col(std::size_t j, ScatteredVector& w) {
    w.reset(num_rows_);
    const std::uint32_t* rows = cols_.col_rows(j);
    const double* vals = cols_.col_vals(j);
    for (std::size_t k = 0; k < cols_.nnz(j); ++k) w.push(rows[k], vals[k]);
    lu_.ftran(w);
  }

  /// y = (active cost of basis)^T * B^{-1}.  Only rows with non-zero basic
  /// cost feed the solve, which keeps this cheap in both phases.
  void btran_costs(ScatteredVector& y) {
    y.reset(num_rows_);
    for (std::size_t r = 0; r < num_rows_; ++r) {
      const double cb = (*active_cost_)[basis_[r]];
      if (cb != 0.0) y.push(static_cast<std::uint32_t>(r), cb);
    }
    lu_.btran(y);
  }

  double reduced_cost(std::size_t j, const double* y) const {
    double d = (*active_cost_)[j];
    const std::uint32_t* rows = cols_.col_rows(j);
    const double* vals = cols_.col_vals(j);
    const std::size_t nnz = cols_.nnz(j);
    for (std::size_t k = 0; k < nnz; ++k) d -= y[rows[k]] * vals[k];
    return d;
  }

  double phase_objective() const {
    double v = 0.0;
    for (std::size_t r = 0; r < num_rows_; ++r) v += (*active_cost_)[basis_[r]] * xb_[r];
    return v;
  }

  bool column_may_enter(std::size_t j) const {
    if (in_basis_[j] || banned_[j]) return false;
    if (!allow_artificial_entering_ && kind_[j] == ColKind::kArtificial) return false;
    return true;
  }

  // ---------- simplex iterations ----------
  LpStatus iterate(std::size_t* iteration_counter) {
    if (fault_fire(FaultSite::kSimplexStall)) return LpStatus::kIterationLimit;
    const std::size_t n = cols_.num_cols();
    const double tol = options_.tolerance;
    const std::size_t max_iter = options_.max_iterations > 0
                                     ? options_.max_iterations
                                     : std::max<std::size_t>(2000, 60 * (num_rows_ + n));
    in_basis_.assign(n, 0);
    for (std::size_t r = 0; r < num_rows_; ++r) in_basis_[basis_[r]] = 1;
    banned_.assign(n, 0);
    bool banned_any = false;
    bool ban_retry_used = false;
    std::size_t reverted_col = kNpos;  // one clean retry before banning

    // Devex reference framework: carried across re-solves of a standing
    // master (short warm re-optimizations would otherwise reset to plain
    // Dantzig before the weights learn anything); appended columns join at
    // the reference weight.
    const bool use_devex = options_.pricing == PricingRule::kDevex;
    if (use_devex) ensure_primal_weights(n);

    bool bland = false;
    double last_objective = phase_objective();
    std::size_t stalled = 0;

    for (std::size_t iter = 0; iter < max_iter; ++iter) {
      if (iteration_counter != nullptr) ++(*iteration_counter);
      if (use_devex && primal_weight_reset_pending_) reset_primal_weights(n);
      btran_costs(y_work_);
      const double* y = y_work_.value.data();

      // Pricing.  Bland mode scans in index order and takes the first
      // violating column (termination guarantee); otherwise a cyclic
      // candidate-list scan picks the best of a bounded window -- most
      // negative reduced cost under Dantzig, largest d^2 / w under Devex
      // reference weights.
      std::size_t entering = kNpos;
      if (bland) {
        for (std::size_t j = 0; j < n; ++j) {
          if (!column_may_enter(j)) continue;
          if (reduced_cost(j, y) < -tol) {
            entering = j;
            break;
          }
        }
      } else {
        double best_reduced = -tol;
        double best_score = 0.0;
        std::size_t candidates = 0;
        std::size_t j = pricing_cursor_ < n ? pricing_cursor_ : 0;
        for (std::size_t examined = 0; examined < n; ++examined, j = (j + 1 < n ? j + 1 : 0)) {
          if (!column_may_enter(j)) continue;
          const double d = reduced_cost(j, y);
          if (d < -tol) {
            ++candidates;
            if (use_devex) {
              const double score = d * d / devex_w_[j];
              if (score > best_score) {
                best_score = score;
                entering = j;
              }
            } else if (d < best_reduced) {
              best_reduced = d;
              entering = j;
            }
            if (candidates >= kPricingWindow) {
              j = (j + 1 < n ? j + 1 : 0);
              break;
            }
          }
        }
        pricing_cursor_ = j;
      }
      // Optimality holds only if no column was banned by a reverted pivot
      // this phase (a banned column could still price favorably).  Before
      // giving up, retry once under Bland's rule: its different pivot
      // trajectory routinely sidesteps the numerically singular corner
      // that provoked the bans.
      if (entering == kNpos) {
        if (banned_any && !ban_retry_used) {
          ban_retry_used = true;
          banned_.assign(n, 0);
          banned_any = false;
          bland = true;
          continue;
        }
        return banned_any ? LpStatus::kIterationLimit : LpStatus::kOptimal;
      }

      // Ratio test over the nonzeros of w = B^{-1} A_entering.  Bland mode
      // breaks ratio ties *solely* by the smallest basic-variable index --
      // mixing in the pivot-magnitude preference would void the
      // anti-cycling guarantee.
      ftran_col(entering, w_work_);
      std::size_t leave_row = kNpos;
      double best_ratio = kInf;
      double best_pivot = 0.0;
      for (const std::uint32_t r : w_work_.nonzero) {
        const double wv = w_work_.value[r];
        if (wv > tol) {
          const double ratio = std::max(0.0, xb_[r]) / wv;
          const bool better =
              ratio < best_ratio - tol ||
              (ratio < best_ratio + tol &&
               (bland ? (leave_row == kNpos || basis_[r] < basis_[leave_row])
                      : wv > best_pivot));
          if (better) {
            best_ratio = ratio;
            best_pivot = wv;
            leave_row = r;
          }
        }
      }
      if (leave_row == kNpos) return LpStatus::kUnbounded;

      if (use_devex && !bland) update_primal_weights(entering, leave_row);
      const PivotOutcome outcome = pivot(leave_row, entering, w_work_);
      if (outcome != PivotOutcome::kOk) {
        numerical_breakdown_ = true;
        if (outcome == PivotOutcome::kFailed) return LpStatus::kIterationLimit;
        // The new basis was numerically singular.  The revert installed a
        // fresh factorization, so grant the column one clean retry (its
        // direction -- and with it the leaving row -- may have been
        // garbage off the drifted factors); a second failure excludes it
        // for the rest of the phase.  On a slack-basis reset the
        // phase-local state is stale -- rebuild it.
        if (outcome == PivotOutcome::kReset) {
          in_basis_.assign(n, 0);
          for (std::size_t r = 0; r < num_rows_; ++r) in_basis_[basis_[r]] = 1;
          banned_.assign(n, 0);
          banned_any = false;
          bland = false;
          stalled = 0;
          last_objective = phase_objective();
        }
        if (entering == reverted_col || outcome == PivotOutcome::kReset) {
          banned_[entering] = 1;
          banned_any = true;
        }
        reverted_col = entering;
        if (use_devex) primal_weight_reset_pending_ = true;
        continue;
      }
      reverted_col = kNpos;
      ++stats_.primal_pivots;

      // Cycling guard: persistent stalling switches to Bland's rule.
      const double objective_now = phase_objective();
      if (objective_now < last_objective - tol) {
        stalled = 0;
        if (bland) {
          bland = false;
          // Weights went stale while Bland pivoted without updating them.
          if (use_devex) primal_weight_reset_pending_ = true;
        }
      } else if (++stalled > 2 * num_rows_ + 50) {
        bland = true;
      }
      last_objective = objective_now;
    }
    return LpStatus::kIterationLimit;
  }

  enum class PivotOutcome {
    kOk,        ///< basis changed, factorization valid
    kReverted,  ///< new basis singular; swap undone, old basis re-factorized
    kReset,     ///< basis replaced by the all-slack fallback (rebuild state)
    kFailed,    ///< nothing factorizes; abort the phase
  };

  /// Basis change on `leave_row` with direction `w` (= B^{-1} A_entering,
  /// with `entering` already chosen): delta-update xb over the nonzeros of
  /// w, swap the basic variable, and update the factors in place --
  /// refactorizing when the update file is full or the update pivot is
  /// numerically unsafe.  When the *new* basis turns out numerically
  /// singular the swap is reverted (the caller bans the entering column
  /// for the rest of the phase and picks another pivot); when even the old
  /// basis has drifted singular, fall back to the all-slack basis.
  /// Pre-PR-5 both cases crashed the solve, which 190+-node cutting-plane
  /// masters actually hit.
  PivotOutcome pivot(std::size_t leave_row, std::size_t entering, const ScatteredVector& w) {
    const double step = xb_[leave_row] / w.value[leave_row];
    for (const std::uint32_t r : w.nonzero) {
      if (r != leave_row) xb_[r] -= step * w.value[r];
    }
    xb_[leave_row] = step;
    const std::size_t leaving = basis_[leave_row];
    in_basis_[leaving] = 0;
    in_basis_[entering] = 1;
    basis_[leave_row] = entering;
    if (!lu_.update(leave_row, w) || lu_.update_count() >= options_.refactor_period) {
      if (!try_refactor()) {
        in_basis_[entering] = 0;
        in_basis_[leaving] = 1;
        basis_[leave_row] = leaving;
        if (try_refactor()) return PivotOutcome::kReverted;
        return reset_to_slack_basis() ? PivotOutcome::kReset : PivotOutcome::kFailed;
      }
    }
    return PivotOutcome::kOk;
  }

  // ---------- dual simplex ----------
  bool primal_infeasible() const {
    const double tol = options_.tolerance;
    for (std::size_t r = 0; r < num_rows_; ++r) {
      if (xb_[r] < -tol) return true;
    }
    return false;
  }

  /// Dual simplex phase: from a dual-feasible basis, drive negative basic
  /// values out with dual pivots.  The leaving row is chosen by
  /// DualRowRule (steepest-edge / Devex weighted infeasibility, or the
  /// plain most negative xb); the entering column by a two-pass
  /// Harris-style ratio test over the pivot row, which is accumulated
  /// hypersparsely from the rows rho touches (row-wise mirror) instead of
  /// one dot product per column.  Terminates kOptimal when primal
  /// feasible, kInfeasible when a violated row admits no entering column
  /// (dual unbounded = primal empty).
  LpStatus dual_iterate(std::size_t* iteration_counter) {
    if (fault_fire(FaultSite::kSimplexStall)) return LpStatus::kIterationLimit;
    const std::size_t n = cols_.num_cols();
    const double tol = options_.tolerance;
    const std::size_t max_iter = options_.max_iterations > 0
                                     ? options_.max_iterations
                                     : std::max<std::size_t>(2000, 60 * (num_rows_ + n));
    in_basis_.assign(n, 0);
    for (std::size_t r = 0; r < num_rows_; ++r) in_basis_[basis_[r]] = 1;
    banned_.assign(n, 0);
    bool banned_any = false;
    bool ban_retry_used = false;
    std::size_t reverted_col = kNpos;  // one clean retry before banning

    // Weighted row selection frameworks start fresh each dual phase (the
    // phases are short re-optimizations after appended rows / rhs changes).
    const bool use_weights = options_.dual_row_rule != DualRowRule::kMostInfeasible;
    if (use_weights) reset_dual_weights();

    bool bland = false;
    std::size_t stalled = 0;
    std::size_t bad_pivots = 0;
    double last_infeasibility = kInf;

    for (std::size_t iter = 0; iter < max_iter; ++iter) {
      if (use_weights && dual_weight_reset_pending_) reset_dual_weights();
      // Leaving row: largest weighted infeasibility xb^2 / gamma under
      // steepest-edge / Devex, the most negative basic value otherwise
      // (Bland: the smallest *basic-variable index* among the infeasible
      // rows).
      std::size_t leave_row = kNpos;
      double most_negative = -tol;
      double best_score = 0.0;
      double infeasibility = 0.0;
      for (std::size_t r = 0; r < num_rows_; ++r) {
        if (xb_[r] < -tol) {
          infeasibility -= xb_[r];
          if (bland) {
            if (leave_row == kNpos || basis_[r] < basis_[leave_row]) leave_row = r;
          } else if (use_weights) {
            const double score = xb_[r] * xb_[r] / dual_w_[r];
            if (score > best_score) {
              best_score = score;
              leave_row = r;
            }
          } else if (xb_[r] < most_negative) {
            most_negative = xb_[r];
            leave_row = r;
          }
        }
      }
      if (leave_row == kNpos) return LpStatus::kOptimal;
      if (iteration_counter != nullptr) ++(*iteration_counter);

      // rho = row `leave_row` of B^{-1} (row space); the pivot row
      // alpha = rho^T A is accumulated over the rows rho touches.
      rho_work_.reset(num_rows_);
      rho_work_.push(static_cast<std::uint32_t>(leave_row), 1.0);
      lu_.btran(rho_work_, BasisLu::SolveHint::kSparse);
      btran_costs(y_work_);
      const double* y = y_work_.value.data();
      accumulate_pivot_row();

      // Pass 1 (Harris): relaxed minimum dual ratio over the eligible
      // columns (alpha < 0 so that entering increases xb[leave_row]).
      // Bland mode instead needs the *strict* minimum ratio -- admitting
      // tolerance-expanded ties would void the anti-cycling guarantee.
      dual_cand_col_.clear();
      dual_cand_alpha_.clear();
      dual_cand_d_.clear();
      alpha_cols_.clear();
      alpha_vals_.clear();
      double theta_relaxed = kInf;
      double theta_strict = kInf;
      for (const std::uint32_t j : alpha_work_.nonzero) {
        const double alpha = alpha_work_.value[j];
        alpha_work_.value[j] = 0.0;  // consume the slot (duplicates read 0)
        if (alpha == 0.0) continue;
        alpha_cols_.push_back(j);  // full pivot row, cached for the Devex
        alpha_vals_.push_back(alpha);  // framework update after the pivot
        if (!column_may_enter(j)) continue;
        if (alpha >= -tol) continue;
        const double d = std::max(0.0, reduced_cost(j, y));
        dual_cand_col_.push_back(j);
        dual_cand_alpha_.push_back(alpha);
        dual_cand_d_.push_back(d);
        theta_relaxed = std::min(theta_relaxed, (d + tol) / (-alpha));
        theta_strict = std::min(theta_strict, d / (-alpha));
      }
      alpha_work_.nonzero.clear();
      // Dual unboundedness (= primal infeasibility) can only be declared
      // when no column was banned by a reverted pivot this phase.  As in
      // the primal phase, retry once under Bland's rule before giving up.
      if (dual_cand_col_.empty()) {
        if (banned_any && !ban_retry_used) {
          ban_retry_used = true;
          banned_.assign(n, 0);
          banned_any = false;
          bland = true;
          continue;
        }
        return banned_any ? LpStatus::kIterationLimit : LpStatus::kInfeasible;
      }

      // Pass 2: among candidates within the ratio bound, take the largest
      // pivot magnitude (Bland: the smallest column index among the strict
      // minimizers).
      const double theta_bound = bland ? theta_strict : theta_relaxed;
      std::size_t entering = kNpos;
      double entering_alpha = 0.0;
      double best_pivot = 0.0;
      for (std::size_t k = 0; k < dual_cand_col_.size(); ++k) {
        const double alpha = dual_cand_alpha_[k];
        if (dual_cand_d_[k] / (-alpha) > theta_bound) continue;
        if (bland) {
          if (entering == kNpos || dual_cand_col_[k] < entering) {
            entering = dual_cand_col_[k];
            entering_alpha = alpha;
          }
        } else if (-alpha > best_pivot) {
          best_pivot = -alpha;
          entering = dual_cand_col_[k];
          entering_alpha = alpha;
        }
      }
      BT_ASSERT(entering != kNpos, "dual simplex: empty ratio-test pass-2");

      // FTRAN the entering column and cross-check the pivot against the
      // row-wise alpha: serious *relative* disagreement (or an unusable
      // sign) means the factorization has drifted -- refactorize and retry
      // the iteration.  A genuinely tiny pivot that both solves agree on
      // is accepted: the ratio test already bounded it by the tolerance.
      ftran_col(entering, w_work_);
      const double wr = w_work_.value[leave_row];
      if (wr >= -tol || std::abs(wr - entering_alpha) > 0.5 * std::abs(entering_alpha)) {
        if (++bad_pivots > 2) {
          numerical_breakdown_ = true;
          return LpStatus::kIterationLimit;
        }
        bool basis_reset = false;
        if (!ensure_factorizable_basis(basis_reset)) return LpStatus::kIterationLimit;
        if (basis_reset) {
          in_basis_.assign(n, 0);
          for (std::size_t r = 0; r < num_rows_; ++r) in_basis_[basis_[r]] = 1;
          banned_.assign(n, 0);
          banned_any = false;
          bland = false;
          stalled = 0;
          last_infeasibility = kInf;
        }
        continue;
      }
      bad_pivots = 0;
      if (use_weights && !bland) update_dual_weights(leave_row, wr);
      if (options_.pricing == PricingRule::kDevex && !bland) {
        // Keep the standing primal Devex framework current through the
        // dual phase -- the pivot row is already in alpha_cols_/vals_.
        ensure_primal_weights(n);
        apply_devex_update(entering, leave_row, entering_alpha);
      }
      const PivotOutcome outcome = pivot(leave_row, entering, w_work_);
      if (outcome != PivotOutcome::kOk) {
        numerical_breakdown_ = true;
        if (outcome == PivotOutcome::kFailed) return LpStatus::kIterationLimit;
        if (outcome == PivotOutcome::kReset) {
          in_basis_.assign(n, 0);
          for (std::size_t r = 0; r < num_rows_; ++r) in_basis_[basis_[r]] = 1;
          banned_.assign(n, 0);
          banned_any = false;
          bland = false;
          stalled = 0;
          last_infeasibility = kInf;
        }
        // The weight updates above encoded a basis change that never
        // happened: restart both frameworks.
        dual_weight_reset_pending_ = true;
        primal_weight_reset_pending_ = true;
        // One clean retry off the freshly reverted factorization, then ban
        // (see the primal phase).
        if (entering == reverted_col || outcome == PivotOutcome::kReset) {
          banned_[entering] = 1;
          banned_any = true;
        }
        reverted_col = entering;
        continue;
      }
      reverted_col = kNpos;
      ++stats_.dual_pivots;

      // Cycling guard: persistent stalling switches to Bland's rule.
      if (infeasibility < last_infeasibility - tol) {
        stalled = 0;
        if (bland) {
          bland = false;
          // Row weights went stale while Bland pivoted without updates.
          if (use_weights) dual_weight_reset_pending_ = true;
        }
      } else if (++stalled > 2 * num_rows_ + 50) {
        bland = true;
      }
      last_infeasibility = infeasibility;
    }
    return LpStatus::kIterationLimit;
  }

  // ---------- row append ----------
  /// Fold the buffered append_row rows into the model: extend every
  /// existing column, give each new row a basic slack (so an optimal
  /// standing basis stays dual feasible), and refactorize once at the new
  /// dimension.  Rows appended before the first solve behave like built
  /// rows (negative right-hand sides get the usual flip + artificial).
  void merge_pending_rows() {
    if (pending_rows_.empty()) return;
    const std::size_t k = pending_rows_.size();
    const std::size_t old_m = num_rows_;

    // Internal orientation per pending row.  After the first solve every
    // row must start with a *basic slack* (nothing else keeps the standing
    // basis intact), so >= rows are negated into <= form: flip = -1, which
    // also maps the reported dual back to the caller's sense, exactly like
    // rows flipped at build time.  Before the first solve the rules mirror
    // build(): flip on negative rhs, give slack-less rows an artificial.
    for (std::size_t i = 0; i < k; ++i) {
      PendingRow& row = pending_rows_[i];
      if (phase1_done_) {
        row.flip = row.sense == RowSense::kGreaterEqual ? -1.0 : 1.0;
      } else {
        row.flip = row.rhs < 0.0 ? -1.0 : 1.0;
      }
    }

    // Per-column extras gathered from the pending rows.
    std::vector<std::vector<std::pair<std::uint32_t, double>>> extra(cols_.num_cols());
    for (std::size_t i = 0; i < k; ++i) {
      const PendingRow& row = pending_rows_[i];
      const std::uint32_t ri = static_cast<std::uint32_t>(old_m + i);
      for (const LpTerm& t : row.terms) {
        extra[col_of_structural_[t.var]].push_back({ri, row.flip * t.coeff});
      }
    }

    // Rebuild the column arena with the extra entries appended per column.
    {
      ColumnStore nc;
      nc.rows.reserve(cols_.rows.size());
      nc.vals.reserve(cols_.vals.size());
      for (std::size_t j = 0; j < cols_.num_cols(); ++j) {
        const std::uint32_t* rows = cols_.col_rows(j);
        const double* vals = cols_.col_vals(j);
        for (std::size_t s = 0; s < cols_.nnz(j); ++s) nc.push(rows[s], vals[s]);
        for (const auto& entry : extra[j]) nc.push(entry.first, entry.second);
        nc.end_column();
      }
      cols_ = std::move(nc);
    }

    for (std::size_t i = 0; i < k; ++i) {
      const PendingRow& row = pending_rows_[i];
      const std::size_t ri = old_m + i;
      // Sense in internal orientation (after the flip).
      RowSense sense = row.sense;
      if (row.flip < 0.0) {
        sense = sense == RowSense::kLessEqual ? RowSense::kGreaterEqual : RowSense::kLessEqual;
      }
      row_flip_.push_back(row.flip);
      row_origin_.push_back(num_orig_rows_ + i);
      b_.push_back(row.flip * row.rhs);
      if (phase1_done_ || sense == RowSense::kLessEqual) {
        // Post-solve rows are always oriented <= (see above); a basic
        // slack keeps the standing basis and its duals valid.
        BT_ASSERT(sense == RowSense::kLessEqual, "merge_pending_rows: bad orientation");
        const std::size_t slack = add_unit_column(ri, +1.0, ColKind::kSlack);
        slack_col_of_row_.push_back(slack);
        basis_.push_back(slack);
        initial_basis_col_.push_back(slack);
      } else {
        // Pre-solve >= row with non-negative rhs: surplus non-basic,
        // artificial basic; the coming phase 1 clears it.
        add_unit_column(ri, -1.0, ColKind::kSurplus);
        const std::size_t art = add_unit_column(ri, +1.0, ColKind::kArtificial);
        slack_col_of_row_.push_back(kNpos);
        basis_.push_back(art);
        initial_basis_col_.push_back(art);
        ++num_artificials_;
      }
    }
    phase1_cost_.resize(cols_.num_cols(), 0.0);
    for (std::size_t j = 0; j < cols_.num_cols(); ++j) {
      if (kind_[j] == ColKind::kArtificial) phase1_cost_[j] = 1.0;
    }
    num_rows_ += k;
    num_orig_rows_ += k;
    pending_rows_.clear();
    rebuild_row_entries();
    // Dimension change: the weight frameworks no longer match the model.
    primal_weight_reset_pending_ = true;
    dual_weight_reset_pending_ = true;
    // New dimension: fresh factorization + xb.  A standing basis that
    // drifted numerically singular falls back to the slack basis.
    if (!try_refactor()) {
      BT_ASSERT(reset_to_slack_basis(),
                "simplex: singular basis after row merge and no slack fallback");
    }
  }

  /// After phase 1: pivot zero-valued artificials out of the basis; rows
  /// whose artificial cannot be replaced are redundant and dropped.
  void purge_artificials() {
    std::vector<std::size_t> redundant_rows;
    in_basis_.assign(cols_.num_cols(), 0);
    for (std::size_t r = 0; r < num_rows_; ++r) in_basis_[basis_[r]] = 1;
    for (std::size_t r = 0; r < num_rows_; ++r) {
      if (kind_[basis_[r]] != ColKind::kArtificial) continue;
      bool replaced = false;
      for (std::size_t j = 0; j < cols_.num_cols() && !replaced; ++j) {
        if (kind_[j] == ColKind::kArtificial || in_basis_[j]) continue;
        ftran_col(j, w_work_);
        if (std::abs(w_work_.value[r]) > 1e-7) {
          // Degenerate pivot (xb_[r] ~ 0): basis changes, solution does not.
          if (pivot(r, j, w_work_) == PivotOutcome::kOk) {
            recompute_xb();
            replaced = true;
          }
        }
      }
      if (!replaced) redundant_rows.push_back(r);
    }
    if (!redundant_rows.empty()) drop_rows(redundant_rows);
    // The purge pivots bypass the weight-updating pivot paths.
    primal_weight_reset_pending_ = true;
  }

  void drop_rows(const std::vector<std::size_t>& rows) {
    rows_dropped_ = true;
    std::vector<char> dead(num_rows_, 0);
    for (std::size_t r : rows) dead[r] = 1;
    std::vector<std::uint32_t> remap(num_rows_, 0);
    std::vector<std::size_t> keep;
    for (std::size_t r = 0; r < num_rows_; ++r) {
      if (!dead[r]) {
        remap[r] = static_cast<std::uint32_t>(keep.size());
        keep.push_back(r);
      }
    }
    const std::size_t new_m = keep.size();
    {
      // Compact the column arena in place, dropping dead-row entries.
      ColumnStore nc;
      for (std::size_t j = 0; j < cols_.num_cols(); ++j) {
        const std::uint32_t* rows = cols_.col_rows(j);
        const double* vals = cols_.col_vals(j);
        for (std::size_t k = 0; k < cols_.nnz(j); ++k) {
          if (!dead[rows[k]]) nc.push(remap[rows[k]], vals[k]);
        }
        nc.end_column();
      }
      cols_ = std::move(nc);
    }
    std::vector<double> nb(new_m), nflip(new_m);
    std::vector<std::size_t> norigin(new_m), nbasis(new_m), nslack(new_m), ninit(new_m);
    for (std::size_t k = 0; k < new_m; ++k) {
      nb[k] = b_[keep[k]];
      nflip[k] = row_flip_[keep[k]];
      norigin[k] = row_origin_[keep[k]];
      nbasis[k] = basis_[keep[k]];
      nslack[k] = slack_col_of_row_[keep[k]];
      ninit[k] = initial_basis_col_[keep[k]];
    }
    b_ = std::move(nb);
    row_flip_ = std::move(nflip);
    row_origin_ = std::move(norigin);
    basis_ = std::move(nbasis);
    slack_col_of_row_ = std::move(nslack);
    initial_basis_col_ = std::move(ninit);
    num_rows_ = new_m;
    rebuild_row_entries();
    primal_weight_reset_pending_ = true;
    dual_weight_reset_pending_ = true;
    BT_ASSERT(try_refactor(), "simplex: singular basis during refactor [drop-rows]");
  }

  // ---------- state ----------
  SimplexOptions options_;
  bool maximize_ = false;
  bool phase1_done_ = false;
  bool rows_dropped_ = false;
  bool emit_basis_labels_ = true;

  std::size_t num_structural_ = 0;
  std::size_t num_rows_ = 0;
  std::size_t num_orig_rows_ = 0;
  std::size_t num_artificials_ = 0;

  ColumnStore cols_;                       // constraint matrix, CSC arena
  std::vector<ColKind> kind_;              // role of each internal column
  std::vector<std::size_t> structural_id_; // index into x for structural cols
  std::vector<std::size_t> col_of_structural_;  // inverse of structural_id_
  std::vector<double> orig_obj_;           // objective in the caller's sense
  std::vector<double> cost_;               // phase-2 cost (min sense)
  std::vector<double> phase1_cost_;
  std::vector<double> b_;
  std::vector<double> row_flip_;
  std::vector<std::size_t> row_origin_;
  std::vector<std::size_t> slack_col_of_row_;
  /// The unit (slack or artificial) column each row started basic with --
  /// the pristine restart basis of reset_to_initial_basis().
  std::vector<std::size_t> initial_basis_col_;

  /// Rows buffered by append_row until the next merge, in the caller's
  /// orientation; `flip` (internal orientation) is decided at merge time.
  struct PendingRow {
    std::vector<LpTerm> terms;  // structural variable id, coefficient
    double rhs = 0.0;
    RowSense sense = RowSense::kLessEqual;
    double flip = 1.0;
  };
  std::vector<PendingRow> pending_rows_;

  std::vector<std::size_t> basis_;  // basic variable per row
  std::vector<double> xb_;          // basic variable values
  BasisLu lu_;                      // factorized basis + update files

  ScatteredVector y_work_, w_work_, rhs_work_, rho_work_;
  // Pivot row scattered over the internal columns; tau = B^{-1} rho for the
  // dual steepest-edge recurrence.
  ScatteredVector alpha_work_, tau_work_;
  std::vector<char> in_basis_;
  /// Columns excluded for the rest of the current phase after a reverted
  /// (numerically singular) pivot; re-assigned at each phase start.
  std::vector<char> banned_;
  std::size_t pricing_cursor_ = 0;
  // Dual ratio-test candidate cache (column, pivot-row entry, reduced cost).
  std::vector<std::size_t> dual_cand_col_;
  std::vector<double> dual_cand_alpha_;
  std::vector<double> dual_cand_d_;

  /// Row-wise mirror of cols_ (see rebuild_row_entries).
  std::vector<std::vector<LpTerm>> row_entries_;
  /// Pivot row cache (column, alpha) consumed by apply_devex_update.
  std::vector<std::uint32_t> alpha_cols_;
  std::vector<double> alpha_vals_;
  /// Devex reference weights (primal, per internal column) and dual row
  /// weights (steepest-edge / Devex, per row); reset pending flags are the
  /// refactorization / overflow safeguards.
  std::vector<double> devex_w_;
  std::vector<double> dual_w_;
  bool primal_weight_reset_pending_ = false;
  bool dual_weight_reset_pending_ = false;
  /// Set by the phases whenever a limit / ban stems from numerical
  /// breakdown (reverted or failed pivots, drift retries) rather than a
  /// genuine iteration budget; gates optimize()'s cold-restart retry.
  bool numerical_breakdown_ = false;
  LpEngineStats stats_;

  const std::vector<double>* active_cost_ = nullptr;
  bool allow_artificial_entering_ = true;
};

// ---------------------------------------------------------------------------
// Dense reference engine (the pre-LU implementation): explicit dense basis
// inverse with O(m^2) pivots and O(m^3) Gauss-Jordan refactorization.  Kept
// for differential testing and as the benchmark baseline; select it with
// SimplexOptions::engine = LpEngine::kDenseReference.
// ---------------------------------------------------------------------------
class DenseSimplexCore {
 public:
  DenseSimplexCore(const LpProblem& problem, const SimplexOptions& options)
      : options_(options), problem_(problem) {
    build(problem);
  }

  LpSolution run() {
    LpSolution solution;
    // ---- Phase 1: minimize the sum of artificials (when any exist). ----
    if (num_artificials_ > 0) {
      active_cost_ = &phase1_cost_;
      allow_artificial_entering_ = true;
      const LpStatus st = iterate(&solution.iterations);
      if (st != LpStatus::kOptimal) {
        // Phase 1 is bounded below by 0, so anything else is a limit.
        solution.status = LpStatus::kIterationLimit;
        return solution;
      }
      if (phase_objective() > 1e-7) {
        solution.status = LpStatus::kInfeasible;
        return solution;
      }
      purge_artificials();
    }
    // ---- Phase 2: minimize the real cost. ----
    active_cost_ = &cost_;
    allow_artificial_entering_ = false;
    const LpStatus st = iterate(&solution.iterations);
    solution.status = st;
    if (st != LpStatus::kOptimal) return solution;

    // Extract structural primal values.
    solution.x.assign(num_structural_, 0.0);
    for (std::size_t r = 0; r < num_rows_; ++r) {
      if (basis_[r] < num_structural_) solution.x[basis_[r]] = std::max(0.0, xb_[r]);
    }
    solution.objective = problem_.objective_value(solution.x);

    // Duals: y = c_B^T B^{-1}, mapped back through row flips / objective
    // sense (rows dropped as redundant keep dual 0).
    std::vector<double> y(num_rows_, 0.0);
    for (std::size_t r = 0; r < num_rows_; ++r) {
      const double cb = cost_[basis_[r]];
      if (cb == 0.0) continue;
      const double* binv_row = &binv_[r * num_rows_];
      for (std::size_t i = 0; i < num_rows_; ++i) y[i] += cb * binv_row[i];
    }
    solution.duals.assign(problem_.num_constraints(), 0.0);
    for (std::size_t i = 0; i < num_rows_; ++i) {
      const std::size_t orig = row_origin_[i];
      double v = row_flip_[i] * y[i];
      if (problem_.objective() == Objective::kMaximize) v = -v;
      solution.duals[orig] = v;
    }

    // Basis labels for warm starts (only when every basic variable has a
    // stable label and no rows were dropped).
    if (num_rows_ == problem_.num_constraints()) {
      solution.basis.resize(num_rows_);
      bool labelable = true;
      for (std::size_t r = 0; r < num_rows_ && labelable; ++r) {
        const std::size_t j = basis_[r];
        if (j < num_structural_) {
          solution.basis[r] = j;
        } else if (j < first_artificial_) {
          // Slack or surplus: label by its row; surplus columns are not
          // representable (they never arise in warm-started problems here).
          const std::size_t row = cols_[j].rows.front();
          if (slack_col_of_row_[row] == j) {
            solution.basis[r] = kSlackLabelBase - row;
          } else {
            labelable = false;
          }
        } else {
          labelable = false;  // artificial stuck in the basis
        }
      }
      if (!labelable) solution.basis.clear();
    }
    return solution;
  }

 private:
  // ---------- model construction ----------
  void build(const LpProblem& problem) {
    const std::size_t m = problem.num_constraints();
    num_structural_ = problem.num_variables();
    num_rows_ = m;
    row_flip_.assign(m, 1.0);
    row_origin_.resize(m);
    b_.resize(m);

    cols_.assign(num_structural_, SparseCol{});
    cost_.assign(num_structural_, 0.0);
    const double sense = problem.objective() == Objective::kMaximize ? -1.0 : 1.0;
    for (std::size_t j = 0; j < num_structural_; ++j) {
      cost_[j] = sense * problem.objective_coeff(j);
    }
    std::vector<RowSense> senses(m);
    for (std::size_t i = 0; i < m; ++i) {
      row_origin_[i] = i;
      const auto& row = problem.row(i);
      double flip = 1.0;
      RowSense s = row.sense;
      if (row.rhs < 0.0) {
        flip = -1.0;
        if (s == RowSense::kLessEqual) s = RowSense::kGreaterEqual;
        else if (s == RowSense::kGreaterEqual) s = RowSense::kLessEqual;
      }
      row_flip_[i] = flip;
      b_[i] = flip * row.rhs;
      senses[i] = s;
      for (const LpTerm& t : row.terms) {
        cols_[t.var].push(static_cast<std::uint32_t>(i), flip * t.coeff);
      }
    }

    // Slack / surplus columns, then artificials.
    basis_.assign(m, kNpos);
    slack_col_of_row_.assign(m, kNpos);
    for (std::size_t i = 0; i < m; ++i) {
      if (senses[i] == RowSense::kLessEqual) {
        const std::size_t j = add_unit_column(i, +1.0);
        slack_col_of_row_[i] = j;
        basis_[i] = j;  // slack starts basic (b >= 0)
      } else if (senses[i] == RowSense::kGreaterEqual) {
        add_unit_column(i, -1.0);  // surplus, cannot start basic
      }
    }
    first_artificial_ = cols_.size();
    for (std::size_t i = 0; i < m; ++i) {
      if (basis_[i] == kNpos) {
        basis_[i] = add_unit_column(i, +1.0);
        ++num_artificials_;
      }
    }
    phase1_cost_.assign(cols_.size(), 0.0);
    for (std::size_t j = first_artificial_; j < cols_.size(); ++j) phase1_cost_[j] = 1.0;

    if (num_artificials_ == 0) try_warm_start();
    refactor();
  }

  /// Replace the default slack basis with the caller-provided labels when
  /// they decode to a primal-feasible basis of this problem.
  void try_warm_start() {
    const std::vector<std::size_t>* warm = options_.warm_basis;
    if (warm == nullptr || warm->size() != num_rows_) return;
    std::vector<std::size_t> candidate(num_rows_);
    std::vector<char> used(cols_.size(), 0);
    for (std::size_t r = 0; r < num_rows_; ++r) {
      std::size_t col;
      const std::size_t label = (*warm)[r];
      if (label < num_structural_) {
        col = label;
      } else if (kSlackLabelBase - label < num_rows_) {
        col = slack_col_of_row_[kSlackLabelBase - label];
        if (col == kNpos) return;  // row has no slack
      } else {
        return;  // undecodable label
      }
      if (used[col]) return;  // duplicate basic variable
      used[col] = 1;
      candidate[r] = col;
    }
    const std::vector<std::size_t> saved = basis_;
    basis_ = candidate;
    try {
      refactor();
    } catch (const Error&) {
      basis_ = saved;  // singular warm basis: fall back to the slack basis
      return;
    }
    for (double v : xb_) {
      if (v < -1e-7) {  // warm basis not primal feasible here
        basis_ = saved;
        return;
      }
    }
  }

  std::size_t add_unit_column(std::size_t row, double value) {
    cols_.emplace_back();
    cols_.back().push(static_cast<std::uint32_t>(row), value);
    cost_.push_back(0.0);
    return cols_.size() - 1;
  }

  // ---------- linear algebra ----------
  /// Rebuild binv_ by Gauss-Jordan inversion of the basis matrix, then
  /// recompute xb_.  O(m^3); called rarely.
  void refactor() {
    const std::size_t m = num_rows_;
    std::vector<double> mat(m * m, 0.0);  // basis matrix, row-major
    for (std::size_t r = 0; r < m; ++r) {
      const SparseCol& col = cols_[basis_[r]];
      for (std::size_t k = 0; k < col.nnz(); ++k) mat[col.rows[k] * m + r] = col.vals[k];
    }
    binv_.assign(m * m, 0.0);
    for (std::size_t i = 0; i < m; ++i) binv_[i * m + i] = 1.0;
    for (std::size_t col = 0; col < m; ++col) {
      std::size_t piv = col;
      double best = std::abs(mat[col * m + col]);
      for (std::size_t r = col + 1; r < m; ++r) {
        const double v = std::abs(mat[r * m + col]);
        if (v > best) {
          best = v;
          piv = r;
        }
      }
      BT_ASSERT(best > 1e-12, "simplex: singular basis during refactor");
      if (piv != col) {
        for (std::size_t k = 0; k < m; ++k) {
          std::swap(mat[piv * m + k], mat[col * m + k]);
          std::swap(binv_[piv * m + k], binv_[col * m + k]);
        }
      }
      const double inv = 1.0 / mat[col * m + col];
      for (std::size_t k = 0; k < m; ++k) {
        mat[col * m + k] *= inv;
        binv_[col * m + k] *= inv;
      }
      for (std::size_t r = 0; r < m; ++r) {
        if (r == col) continue;
        const double f = mat[r * m + col];
        if (f == 0.0) continue;
        for (std::size_t k = 0; k < m; ++k) {
          mat[r * m + k] -= f * mat[col * m + k];
          binv_[r * m + k] -= f * binv_[col * m + k];
        }
      }
    }
    recompute_xb();
  }

  void recompute_xb() {
    const std::size_t m = num_rows_;
    xb_.assign(m, 0.0);
    for (std::size_t r = 0; r < m; ++r) {
      double v = 0.0;
      const double* binv_row = &binv_[r * m];
      for (std::size_t i = 0; i < m; ++i) v += binv_row[i] * b_[i];
      xb_[r] = v;
    }
  }

  /// w = B^{-1} * column j.  O(m * nnz(col)).
  void ftran(std::size_t j, std::vector<double>& w) const {
    const std::size_t m = num_rows_;
    const SparseCol& col = cols_[j];
    w.assign(m, 0.0);
    for (std::size_t k = 0; k < col.nnz(); ++k) {
      const std::size_t i = col.rows[k];
      const double v = col.vals[k];
      for (std::size_t r = 0; r < m; ++r) w[r] += binv_[r * m + i] * v;
    }
  }

  /// y = (active cost of basis)^T * B^{-1}.  Only rows with non-zero basic
  /// cost contribute, which keeps this cheap in both phases.
  void btran(std::vector<double>& y) const {
    const std::size_t m = num_rows_;
    y.assign(m, 0.0);
    for (std::size_t r = 0; r < m; ++r) {
      const double cb = (*active_cost_)[basis_[r]];
      if (cb == 0.0) continue;
      const double* binv_row = &binv_[r * m];
      for (std::size_t i = 0; i < m; ++i) y[i] += cb * binv_row[i];
    }
  }

  double phase_objective() const {
    double v = 0.0;
    for (std::size_t r = 0; r < num_rows_; ++r) v += (*active_cost_)[basis_[r]] * xb_[r];
    return v;
  }

  // ---------- simplex iterations ----------
  LpStatus iterate(std::size_t* iteration_counter) {
    const std::size_t m = num_rows_;
    const std::size_t n = cols_.size();
    const double tol = options_.tolerance;
    const std::size_t max_iter = options_.max_iterations > 0
                                     ? options_.max_iterations
                                     : std::max<std::size_t>(2000, 60 * (m + n));
    std::vector<char> in_basis(n, 0);
    for (std::size_t r = 0; r < m; ++r) in_basis[basis_[r]] = 1;

    std::vector<double> y, w;
    bool bland = false;
    double last_objective = phase_objective();
    std::size_t stalled = 0;
    std::size_t since_refactor = 0;

    for (std::size_t iter = 0; iter < max_iter; ++iter) {
      if (iteration_counter != nullptr) ++(*iteration_counter);
      btran(y);

      // Pricing: pick the entering column (sparse dot products).
      std::size_t entering = kNpos;
      double best_reduced = -tol;
      for (std::size_t j = 0; j < n; ++j) {
        if (in_basis[j]) continue;
        if (!allow_artificial_entering_ && j >= first_artificial_) continue;
        const SparseCol& col = cols_[j];
        double d = (*active_cost_)[j];
        for (std::size_t k = 0; k < col.nnz(); ++k) d -= y[col.rows[k]] * col.vals[k];
        if (bland) {
          if (d < -tol) {
            entering = j;
            break;
          }
        } else if (d < best_reduced) {
          best_reduced = d;
          entering = j;
        }
      }
      if (entering == kNpos) return LpStatus::kOptimal;

      // Ratio test (Bland mode: ties broken solely by the smallest
      // basic-variable index, see the sparse core).
      ftran(entering, w);
      std::size_t leave_row = kNpos;
      double best_ratio = kInf;
      double best_pivot = 0.0;
      for (std::size_t r = 0; r < m; ++r) {
        if (w[r] > tol) {
          const double ratio = std::max(0.0, xb_[r]) / w[r];
          const bool better =
              ratio < best_ratio - tol ||
              (ratio < best_ratio + tol &&
               (bland ? (leave_row == kNpos || basis_[r] < basis_[leave_row])
                      : w[r] > best_pivot));
          if (better) {
            best_ratio = ratio;
            best_pivot = w[r];
            leave_row = r;
          }
        }
      }
      if (leave_row == kNpos) return LpStatus::kUnbounded;

      pivot(leave_row, w);
      in_basis[basis_[leave_row]] = 0;
      in_basis[entering] = 1;
      basis_[leave_row] = entering;

      if (++since_refactor >= options_.refactor_period) {
        refactor();
        since_refactor = 0;
      }

      // Cycling guard: persistent stalling switches to Bland's rule.
      const double objective_now = phase_objective();
      if (objective_now < last_objective - tol) {
        stalled = 0;
        bland = false;
      } else if (++stalled > 2 * m + 50) {
        bland = true;
      }
      last_objective = objective_now;
    }
    return LpStatus::kIterationLimit;
  }

  /// Rank-1 update of the basis inverse and basic solution for a pivot on
  /// `leave_row` with direction `w` (= B^{-1} A_entering).
  void pivot(std::size_t leave_row, const std::vector<double>& w) {
    const std::size_t m = num_rows_;
    const double step = xb_[leave_row] / w[leave_row];
    for (std::size_t r = 0; r < m; ++r) {
      if (r != leave_row) xb_[r] -= step * w[r];
    }
    xb_[leave_row] = step;
    const double piv = w[leave_row];
    double* pivot_row = &binv_[leave_row * m];
    for (std::size_t k = 0; k < m; ++k) pivot_row[k] /= piv;
    for (std::size_t r = 0; r < m; ++r) {
      if (r == leave_row) continue;
      const double f = w[r];
      if (f == 0.0) continue;
      double* row = &binv_[r * m];
      for (std::size_t k = 0; k < m; ++k) row[k] -= f * pivot_row[k];
    }
  }

  /// After phase 1: pivot zero-valued artificials out of the basis; rows
  /// whose artificial cannot be replaced are redundant and dropped.
  void purge_artificials() {
    std::vector<double> w;
    std::vector<std::size_t> redundant_rows;
    std::vector<char> is_basic(cols_.size(), 0);
    for (std::size_t r = 0; r < num_rows_; ++r) is_basic[basis_[r]] = 1;
    for (std::size_t r = 0; r < num_rows_; ++r) {
      if (basis_[r] < first_artificial_) continue;
      bool replaced = false;
      for (std::size_t j = 0; j < first_artificial_ && !replaced; ++j) {
        if (is_basic[j]) continue;
        ftran(j, w);
        if (std::abs(w[r]) > 1e-7) {
          // Degenerate pivot (xb_[r] ~ 0): basis changes, solution does not.
          is_basic[basis_[r]] = 0;
          pivot(r, w);
          basis_[r] = j;
          is_basic[j] = 1;
          recompute_xb();
          replaced = true;
        }
      }
      if (!replaced) redundant_rows.push_back(r);
    }
    if (!redundant_rows.empty()) drop_rows(redundant_rows);
  }

  void drop_rows(const std::vector<std::size_t>& rows) {
    std::vector<char> dead(num_rows_, 0);
    for (std::size_t r : rows) dead[r] = 1;
    std::vector<std::uint32_t> remap(num_rows_, 0);
    std::vector<std::size_t> keep;
    for (std::size_t r = 0; r < num_rows_; ++r) {
      if (!dead[r]) {
        remap[r] = static_cast<std::uint32_t>(keep.size());
        keep.push_back(r);
      }
    }
    const std::size_t new_m = keep.size();
    for (SparseCol& col : cols_) {
      SparseCol nc;
      for (std::size_t k = 0; k < col.nnz(); ++k) {
        if (!dead[col.rows[k]]) nc.push(remap[col.rows[k]], col.vals[k]);
      }
      col = std::move(nc);
    }
    std::vector<double> nb(new_m), nflip(new_m);
    std::vector<std::size_t> norigin(new_m), nbasis(new_m);
    for (std::size_t k = 0; k < new_m; ++k) {
      nb[k] = b_[keep[k]];
      nflip[k] = row_flip_[keep[k]];
      norigin[k] = row_origin_[keep[k]];
      nbasis[k] = basis_[keep[k]];
    }
    b_ = std::move(nb);
    row_flip_ = std::move(nflip);
    row_origin_ = std::move(norigin);
    basis_ = std::move(nbasis);
    num_rows_ = new_m;
    refactor();
  }

  // ---------- state ----------
  SimplexOptions options_;
  const LpProblem& problem_;

  std::size_t num_structural_ = 0;
  std::size_t num_rows_ = 0;
  std::size_t first_artificial_ = 0;
  std::size_t num_artificials_ = 0;

  std::vector<SparseCol> cols_;  // constraint matrix, sparse columns
  std::vector<double> cost_;     // phase-2 cost (min sense)
  std::vector<double> phase1_cost_;
  std::vector<double> b_;
  std::vector<double> row_flip_;
  std::vector<std::size_t> row_origin_;
  std::vector<std::size_t> slack_col_of_row_;

  std::vector<std::size_t> basis_;  // basic variable per row
  std::vector<double> binv_;        // dense basis inverse, row-major
  std::vector<double> xb_;          // basic variable values

  const std::vector<double>* active_cost_ = nullptr;
  bool allow_artificial_entering_ = true;
};

}  // namespace detail

LpSolution solve_lp(const LpProblem& problem, const SimplexOptions& options) {
  BT_REQUIRE(problem.num_variables() > 0, "solve_lp: no variables");
  if (problem.num_constraints() == 0) {
    // Unconstrained: optimum is 0 unless some coefficient improves without
    // bound (x >= 0 only).
    LpSolution solution;
    solution.x.assign(problem.num_variables(), 0.0);
    const double sense = problem.objective() == Objective::kMaximize ? 1.0 : -1.0;
    for (std::size_t j = 0; j < problem.num_variables(); ++j) {
      if (sense * problem.objective_coeff(j) > 0.0) {
        solution.status = LpStatus::kUnbounded;
        return solution;
      }
    }
    solution.status = LpStatus::kOptimal;
    solution.objective = 0.0;
    return solution;
  }
  if (options.engine == LpEngine::kDenseReference) {
    detail::DenseSimplexCore core(problem, options);
    return core.run();
  }
  detail::SparseSimplexCore core(problem, options);
  const LpSolution solution = core.solve();
  if (options.stats != nullptr) options.stats->accumulate(core.engine_stats());
  return solution;
}

IncrementalSimplex::IncrementalSimplex(const LpProblem& problem, const SimplexOptions& options) {
  BT_REQUIRE(problem.num_variables() > 0, "IncrementalSimplex: no variables");
  BT_REQUIRE(problem.num_constraints() > 0, "IncrementalSimplex: no constraints");
  core_ = std::make_unique<detail::SparseSimplexCore>(problem, options);
  core_->set_emit_basis_labels(false);
}

IncrementalSimplex::~IncrementalSimplex() = default;
IncrementalSimplex::IncrementalSimplex(IncrementalSimplex&&) noexcept = default;
IncrementalSimplex& IncrementalSimplex::operator=(IncrementalSimplex&&) noexcept = default;

std::size_t IncrementalSimplex::add_column(double objective_coeff,
                                           const std::vector<LpTerm>& terms) {
  return core_->add_column(objective_coeff, terms);
}

std::size_t IncrementalSimplex::append_row(const std::vector<LpTerm>& terms, RowSense sense,
                                           double rhs) {
  return core_->append_row(terms, sense, rhs);
}

void IncrementalSimplex::set_row_rhs(std::size_t row, double rhs) {
  core_->set_row_rhs(row, rhs);
}

std::size_t IncrementalSimplex::num_variables() const { return core_->num_structural(); }

std::size_t IncrementalSimplex::num_rows() const { return core_->num_rows_total(); }

LpSolution IncrementalSimplex::solve() { return core_->solve(); }

LpSolution IncrementalSimplex::reoptimize_dual() { return core_->reoptimize_dual(); }

LpEngineStats IncrementalSimplex::engine_stats() const { return core_->engine_stats(); }

}  // namespace bt
