#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/error.hpp"

namespace bt {

std::string to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kUnbounded: return "unbounded";
    case LpStatus::kIterationLimit: return "iteration-limit";
  }
  return "unknown";
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Sparse column: (row index, value) pairs.
struct SparseCol {
  std::vector<std::uint32_t> rows;
  std::vector<double> vals;

  void push(std::uint32_t row, double value) {
    if (value == 0.0) return;
    rows.push_back(row);
    vals.push_back(value);
  }
  std::size_t nnz() const { return rows.size(); }
};

/// Internal standard form: minimize c.z subject to A z = b, z >= 0, with an
/// explicit dense basis inverse and sparse constraint columns.  Rows whose
/// right-hand side starts non-negative with a +1 slack begin basic; only
/// >= and = rows require phase-1 artificials.
class SimplexCore {
 public:
  SimplexCore(const LpProblem& problem, const SimplexOptions& options)
      : options_(options), problem_(problem) {
    build(problem);
  }

  LpSolution run() {
    LpSolution solution;
    // ---- Phase 1: minimize the sum of artificials (when any exist). ----
    if (num_artificials_ > 0) {
      active_cost_ = &phase1_cost_;
      allow_artificial_entering_ = true;
      const LpStatus st = iterate(&solution.iterations);
      if (st != LpStatus::kOptimal) {
        // Phase 1 is bounded below by 0, so anything else is a limit.
        solution.status = LpStatus::kIterationLimit;
        return solution;
      }
      if (phase_objective() > 1e-7) {
        solution.status = LpStatus::kInfeasible;
        return solution;
      }
      purge_artificials();
    }
    // ---- Phase 2: minimize the real cost. ----
    active_cost_ = &cost_;
    allow_artificial_entering_ = false;
    const LpStatus st = iterate(&solution.iterations);
    solution.status = st;
    if (st != LpStatus::kOptimal) return solution;

    // Extract structural primal values.
    solution.x.assign(num_structural_, 0.0);
    for (std::size_t r = 0; r < num_rows_; ++r) {
      if (basis_[r] < num_structural_) solution.x[basis_[r]] = std::max(0.0, xb_[r]);
    }
    solution.objective = problem_.objective_value(solution.x);

    // Duals: y = c_B^T B^{-1}, mapped back through row flips / objective
    // sense (rows dropped as redundant keep dual 0).
    std::vector<double> y(num_rows_, 0.0);
    for (std::size_t r = 0; r < num_rows_; ++r) {
      const double cb = cost_[basis_[r]];
      if (cb == 0.0) continue;
      const double* binv_row = &binv_[r * num_rows_];
      for (std::size_t i = 0; i < num_rows_; ++i) y[i] += cb * binv_row[i];
    }
    solution.duals.assign(problem_.num_constraints(), 0.0);
    for (std::size_t i = 0; i < num_rows_; ++i) {
      const std::size_t orig = row_origin_[i];
      double v = row_flip_[i] * y[i];
      if (problem_.objective() == Objective::kMaximize) v = -v;
      solution.duals[orig] = v;
    }

    // Basis labels for warm starts (only when every basic variable has a
    // stable label and no rows were dropped).
    if (num_rows_ == problem_.num_constraints()) {
      solution.basis.resize(num_rows_);
      bool labelable = true;
      for (std::size_t r = 0; r < num_rows_ && labelable; ++r) {
        const std::size_t j = basis_[r];
        if (j < num_structural_) {
          solution.basis[r] = j;
        } else if (j < first_artificial_) {
          // Slack or surplus: label by its row; surplus columns are not
          // representable (they never arise in warm-started problems here).
          const std::size_t row = cols_[j].rows.front();
          if (slack_col_of_row_[row] == j) {
            solution.basis[r] = kSlackLabelBase - row;
          } else {
            labelable = false;
          }
        } else {
          labelable = false;  // artificial stuck in the basis
        }
      }
      if (!labelable) solution.basis.clear();
    }
    return solution;
  }

 private:
  // ---------- model construction ----------
  void build(const LpProblem& problem) {
    const std::size_t m = problem.num_constraints();
    num_structural_ = problem.num_variables();
    num_rows_ = m;
    row_flip_.assign(m, 1.0);
    row_origin_.resize(m);
    b_.resize(m);

    cols_.assign(num_structural_, SparseCol{});
    cost_.assign(num_structural_, 0.0);
    const double sense = problem.objective() == Objective::kMaximize ? -1.0 : 1.0;
    for (std::size_t j = 0; j < num_structural_; ++j) {
      cost_[j] = sense * problem.objective_coeff(j);
    }
    std::vector<RowSense> senses(m);
    for (std::size_t i = 0; i < m; ++i) {
      row_origin_[i] = i;
      const auto& row = problem.row(i);
      double flip = 1.0;
      RowSense s = row.sense;
      if (row.rhs < 0.0) {
        flip = -1.0;
        if (s == RowSense::kLessEqual) s = RowSense::kGreaterEqual;
        else if (s == RowSense::kGreaterEqual) s = RowSense::kLessEqual;
      }
      row_flip_[i] = flip;
      b_[i] = flip * row.rhs;
      senses[i] = s;
      for (const LpTerm& t : row.terms) {
        cols_[t.var].push(static_cast<std::uint32_t>(i), flip * t.coeff);
      }
    }

    // Slack / surplus columns, then artificials.
    basis_.assign(m, static_cast<std::size_t>(-1));
    slack_col_of_row_.assign(m, static_cast<std::size_t>(-1));
    for (std::size_t i = 0; i < m; ++i) {
      if (senses[i] == RowSense::kLessEqual) {
        const std::size_t j = add_unit_column(i, +1.0, 0.0);
        slack_col_of_row_[i] = j;
        basis_[i] = j;  // slack starts basic (b >= 0)
      } else if (senses[i] == RowSense::kGreaterEqual) {
        add_unit_column(i, -1.0, 0.0);  // surplus, cannot start basic
      }
    }
    first_artificial_ = cols_.size();
    for (std::size_t i = 0; i < m; ++i) {
      if (basis_[i] == static_cast<std::size_t>(-1)) {
        const std::size_t j = add_unit_column(i, +1.0, 0.0);
        basis_[i] = j;
        ++num_artificials_;
      }
    }
    phase1_cost_.assign(cols_.size(), 0.0);
    for (std::size_t j = first_artificial_; j < cols_.size(); ++j) phase1_cost_[j] = 1.0;

    if (num_artificials_ == 0) try_warm_start();
    refactor();
  }

  /// Replace the default slack basis with the caller-provided labels when
  /// they decode to a primal-feasible basis of this problem.
  void try_warm_start() {
    const std::vector<std::size_t>* warm = options_.warm_basis;
    if (warm == nullptr || warm->size() != num_rows_) return;
    std::vector<std::size_t> candidate(num_rows_);
    std::vector<char> used(cols_.size(), 0);
    for (std::size_t r = 0; r < num_rows_; ++r) {
      std::size_t col;
      const std::size_t label = (*warm)[r];
      if (label < num_structural_) {
        col = label;
      } else if (kSlackLabelBase - label < num_rows_) {
        col = slack_col_of_row_[kSlackLabelBase - label];
        if (col == static_cast<std::size_t>(-1)) return;  // row has no slack
      } else {
        return;  // undecodable label
      }
      if (used[col]) return;  // duplicate basic variable
      used[col] = 1;
      candidate[r] = col;
    }
    const std::vector<std::size_t> saved = basis_;
    basis_ = candidate;
    try {
      refactor();
    } catch (const Error&) {
      basis_ = saved;  // singular warm basis: fall back to the slack basis
      return;
    }
    for (double v : xb_) {
      if (v < -1e-7) {  // warm basis not primal feasible here
        basis_ = saved;
        return;
      }
    }
  }

  std::size_t add_unit_column(std::size_t row, double value, double cost) {
    cols_.emplace_back();
    cols_.back().push(static_cast<std::uint32_t>(row), value);
    cost_.push_back(cost);
    return cols_.size() - 1;
  }

  // ---------- linear algebra ----------
  /// Rebuild binv_ by Gauss-Jordan inversion of the basis matrix, then
  /// recompute xb_.  O(m^3); called rarely.
  void refactor() {
    const std::size_t m = num_rows_;
    std::vector<double> mat(m * m, 0.0);  // basis matrix, row-major
    for (std::size_t r = 0; r < m; ++r) {
      const SparseCol& col = cols_[basis_[r]];
      for (std::size_t k = 0; k < col.nnz(); ++k) mat[col.rows[k] * m + r] = col.vals[k];
    }
    binv_.assign(m * m, 0.0);
    for (std::size_t i = 0; i < m; ++i) binv_[i * m + i] = 1.0;
    for (std::size_t col = 0; col < m; ++col) {
      std::size_t piv = col;
      double best = std::abs(mat[col * m + col]);
      for (std::size_t r = col + 1; r < m; ++r) {
        const double v = std::abs(mat[r * m + col]);
        if (v > best) {
          best = v;
          piv = r;
        }
      }
      BT_ASSERT(best > 1e-12, "simplex: singular basis during refactor");
      if (piv != col) {
        for (std::size_t k = 0; k < m; ++k) {
          std::swap(mat[piv * m + k], mat[col * m + k]);
          std::swap(binv_[piv * m + k], binv_[col * m + k]);
        }
      }
      const double inv = 1.0 / mat[col * m + col];
      for (std::size_t k = 0; k < m; ++k) {
        mat[col * m + k] *= inv;
        binv_[col * m + k] *= inv;
      }
      for (std::size_t r = 0; r < m; ++r) {
        if (r == col) continue;
        const double f = mat[r * m + col];
        if (f == 0.0) continue;
        for (std::size_t k = 0; k < m; ++k) {
          mat[r * m + k] -= f * mat[col * m + k];
          binv_[r * m + k] -= f * binv_[col * m + k];
        }
      }
    }
    recompute_xb();
  }

  void recompute_xb() {
    const std::size_t m = num_rows_;
    xb_.assign(m, 0.0);
    for (std::size_t r = 0; r < m; ++r) {
      double v = 0.0;
      const double* binv_row = &binv_[r * m];
      for (std::size_t i = 0; i < m; ++i) v += binv_row[i] * b_[i];
      xb_[r] = v;
    }
  }

  /// w = B^{-1} * column j.  O(m * nnz(col)).
  void ftran(std::size_t j, std::vector<double>& w) const {
    const std::size_t m = num_rows_;
    const SparseCol& col = cols_[j];
    w.assign(m, 0.0);
    for (std::size_t k = 0; k < col.nnz(); ++k) {
      const std::size_t i = col.rows[k];
      const double v = col.vals[k];
      for (std::size_t r = 0; r < m; ++r) w[r] += binv_[r * m + i] * v;
    }
  }

  /// y = (active cost of basis)^T * B^{-1}.  Only rows with non-zero basic
  /// cost contribute, which keeps this cheap in both phases.
  void btran(std::vector<double>& y) const {
    const std::size_t m = num_rows_;
    y.assign(m, 0.0);
    for (std::size_t r = 0; r < m; ++r) {
      const double cb = (*active_cost_)[basis_[r]];
      if (cb == 0.0) continue;
      const double* binv_row = &binv_[r * m];
      for (std::size_t i = 0; i < m; ++i) y[i] += cb * binv_row[i];
    }
  }

  double phase_objective() const {
    double v = 0.0;
    for (std::size_t r = 0; r < num_rows_; ++r) v += (*active_cost_)[basis_[r]] * xb_[r];
    return v;
  }

  // ---------- simplex iterations ----------
  LpStatus iterate(std::size_t* iteration_counter) {
    const std::size_t m = num_rows_;
    const std::size_t n = cols_.size();
    const double tol = options_.tolerance;
    const std::size_t max_iter = options_.max_iterations > 0
                                     ? options_.max_iterations
                                     : std::max<std::size_t>(2000, 60 * (m + n));
    std::vector<char> in_basis(n, 0);
    for (std::size_t r = 0; r < m; ++r) in_basis[basis_[r]] = 1;

    std::vector<double> y, w;
    bool bland = false;
    double last_objective = phase_objective();
    std::size_t stalled = 0;
    std::size_t since_refactor = 0;

    for (std::size_t iter = 0; iter < max_iter; ++iter) {
      if (iteration_counter != nullptr) ++(*iteration_counter);
      btran(y);

      // Pricing: pick the entering column (sparse dot products).
      std::size_t entering = static_cast<std::size_t>(-1);
      double best_reduced = -tol;
      for (std::size_t j = 0; j < n; ++j) {
        if (in_basis[j]) continue;
        if (!allow_artificial_entering_ && j >= first_artificial_) continue;
        const SparseCol& col = cols_[j];
        double d = (*active_cost_)[j];
        for (std::size_t k = 0; k < col.nnz(); ++k) d -= y[col.rows[k]] * col.vals[k];
        if (bland) {
          if (d < -tol) {
            entering = j;
            break;
          }
        } else if (d < best_reduced) {
          best_reduced = d;
          entering = j;
        }
      }
      if (entering == static_cast<std::size_t>(-1)) return LpStatus::kOptimal;

      // Ratio test.
      ftran(entering, w);
      std::size_t leave_row = static_cast<std::size_t>(-1);
      double best_ratio = kInf;
      double best_pivot = 0.0;
      for (std::size_t r = 0; r < m; ++r) {
        if (w[r] > tol) {
          const double ratio = std::max(0.0, xb_[r]) / w[r];
          const bool better =
              ratio < best_ratio - tol ||
              (ratio < best_ratio + tol &&
               (w[r] > best_pivot ||
                (bland && leave_row != static_cast<std::size_t>(-1) &&
                 basis_[r] < basis_[leave_row])));
          if (better) {
            best_ratio = ratio;
            best_pivot = w[r];
            leave_row = r;
          }
        }
      }
      if (leave_row == static_cast<std::size_t>(-1)) return LpStatus::kUnbounded;

      pivot(leave_row, w);
      in_basis[basis_[leave_row]] = 0;
      in_basis[entering] = 1;
      basis_[leave_row] = entering;

      if (++since_refactor >= options_.refactor_period) {
        refactor();
        since_refactor = 0;
      }

      // Cycling guard: persistent stalling switches to Bland's rule.
      const double objective_now = phase_objective();
      if (objective_now < last_objective - tol) {
        stalled = 0;
        bland = false;
      } else if (++stalled > 2 * m + 50) {
        bland = true;
      }
      last_objective = objective_now;
    }
    return LpStatus::kIterationLimit;
  }

  /// Rank-1 update of the basis inverse and basic solution for a pivot on
  /// `leave_row` with direction `w` (= B^{-1} A_entering).
  void pivot(std::size_t leave_row, const std::vector<double>& w) {
    const std::size_t m = num_rows_;
    const double step = xb_[leave_row] / w[leave_row];
    for (std::size_t r = 0; r < m; ++r) {
      if (r != leave_row) xb_[r] -= step * w[r];
    }
    xb_[leave_row] = step;
    const double piv = w[leave_row];
    double* pivot_row = &binv_[leave_row * m];
    for (std::size_t k = 0; k < m; ++k) pivot_row[k] /= piv;
    for (std::size_t r = 0; r < m; ++r) {
      if (r == leave_row) continue;
      const double f = w[r];
      if (f == 0.0) continue;
      double* row = &binv_[r * m];
      for (std::size_t k = 0; k < m; ++k) row[k] -= f * pivot_row[k];
    }
  }

  /// After phase 1: pivot zero-valued artificials out of the basis; rows
  /// whose artificial cannot be replaced are redundant and dropped.
  void purge_artificials() {
    std::vector<double> w;
    std::vector<std::size_t> redundant_rows;
    std::vector<char> is_basic(cols_.size(), 0);
    for (std::size_t r = 0; r < num_rows_; ++r) is_basic[basis_[r]] = 1;
    for (std::size_t r = 0; r < num_rows_; ++r) {
      if (basis_[r] < first_artificial_) continue;
      bool replaced = false;
      for (std::size_t j = 0; j < first_artificial_ && !replaced; ++j) {
        if (is_basic[j]) continue;
        ftran(j, w);
        if (std::abs(w[r]) > 1e-7) {
          // Degenerate pivot (xb_[r] ~ 0): basis changes, solution does not.
          is_basic[basis_[r]] = 0;
          pivot(r, w);
          basis_[r] = j;
          is_basic[j] = 1;
          recompute_xb();
          replaced = true;
        }
      }
      if (!replaced) redundant_rows.push_back(r);
    }
    if (!redundant_rows.empty()) drop_rows(redundant_rows);
  }

  void drop_rows(const std::vector<std::size_t>& rows) {
    std::vector<char> dead(num_rows_, 0);
    for (std::size_t r : rows) dead[r] = 1;
    std::vector<std::uint32_t> remap(num_rows_, 0);
    std::vector<std::size_t> keep;
    for (std::size_t r = 0; r < num_rows_; ++r) {
      if (!dead[r]) {
        remap[r] = static_cast<std::uint32_t>(keep.size());
        keep.push_back(r);
      }
    }
    const std::size_t new_m = keep.size();
    for (SparseCol& col : cols_) {
      SparseCol nc;
      for (std::size_t k = 0; k < col.nnz(); ++k) {
        if (!dead[col.rows[k]]) nc.push(remap[col.rows[k]], col.vals[k]);
      }
      col = std::move(nc);
    }
    std::vector<double> nb(new_m), nflip(new_m);
    std::vector<std::size_t> norigin(new_m), nbasis(new_m);
    for (std::size_t k = 0; k < new_m; ++k) {
      nb[k] = b_[keep[k]];
      nflip[k] = row_flip_[keep[k]];
      norigin[k] = row_origin_[keep[k]];
      nbasis[k] = basis_[keep[k]];
    }
    b_ = std::move(nb);
    row_flip_ = std::move(nflip);
    row_origin_ = std::move(norigin);
    basis_ = std::move(nbasis);
    num_rows_ = new_m;
    refactor();
  }

  // ---------- state ----------
  SimplexOptions options_;
  const LpProblem& problem_;

  std::size_t num_structural_ = 0;
  std::size_t num_rows_ = 0;
  std::size_t first_artificial_ = 0;
  std::size_t num_artificials_ = 0;

  std::vector<SparseCol> cols_;  // constraint matrix, sparse columns
  std::vector<double> cost_;     // phase-2 cost (min sense)
  std::vector<double> phase1_cost_;
  std::vector<double> b_;
  std::vector<double> row_flip_;
  std::vector<std::size_t> row_origin_;
  std::vector<std::size_t> slack_col_of_row_;

  std::vector<std::size_t> basis_;  // basic variable per row
  std::vector<double> binv_;        // dense basis inverse, row-major
  std::vector<double> xb_;          // basic variable values

  const std::vector<double>* active_cost_ = nullptr;
  bool allow_artificial_entering_ = true;
};

}  // namespace

LpSolution solve_lp(const LpProblem& problem, const SimplexOptions& options) {
  BT_REQUIRE(problem.num_variables() > 0, "solve_lp: no variables");
  if (problem.num_constraints() == 0) {
    // Unconstrained: optimum is 0 unless some coefficient improves without
    // bound (x >= 0 only).
    LpSolution solution;
    solution.x.assign(problem.num_variables(), 0.0);
    const double sense = problem.objective() == Objective::kMaximize ? 1.0 : -1.0;
    for (std::size_t j = 0; j < problem.num_variables(); ++j) {
      if (sense * problem.objective_coeff(j) > 0.0) {
        solution.status = LpStatus::kUnbounded;
        return solution;
      }
    }
    solution.status = LpStatus::kOptimal;
    solution.objective = 0.0;
    return solution;
  }
  SimplexCore core(problem, options);
  return core.run();
}

}  // namespace bt
