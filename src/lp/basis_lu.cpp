#include "lp/basis_lu.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <limits>

#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace bt {

namespace {

/// Markowitz threshold: a pivot must be at least this fraction of the
/// largest entry in its column (stability vs. sparsity trade-off).
constexpr double kPivotThreshold = 0.1;
/// Entries below this are not acceptable pivots; a basis whose remaining
/// columns have no larger entry is reported singular.
constexpr double kSingularTol = 1e-11;
/// Safety floor for the update pivot; below it update() asks the caller to
/// refactorize instead.
constexpr double kUpdateTol = 1e-11;
/// A Forrest-Tomlin elimination multiplier above this magnitude signals an
/// unstable update; the caller refactorizes instead.
constexpr double kFtGrowthLimit = 1e8;
/// Markowitz search examines at most this many eligible columns per step
/// (walking the count buckets upward), Suhl-style.  Scanning everything
/// would make each factorization O(m * nnz).
constexpr std::size_t kMarkowitzCandidates = 8;

/// Reach-set cutover: the structural closure is only *processed* sparsely
/// while it stays below this fraction of the dimension; a flood that grows
/// past the budget abandons the traversal and the solve falls back to the
/// full sweep.  Reach bookkeeping (flood stack + sorts) costs ~2-3x the
/// plain per-step sweep work, so hypersparse processing only profits on
/// genuinely sparse closures -- unit rho rows, rhs deltas, sparse entering
/// columns -- which is exactly where it turns O(m) solves into O(reach).
constexpr double kReachBudgetFraction = 0.3;

/// Adaptive kAuto solves: after this many consecutive abandoned reach
/// traversals the structural flood is skipped entirely ...
constexpr std::uint32_t kDenseStreakLimit = 4;
/// ... re-probing the closure density once per this many skipped calls.
constexpr std::uint32_t kSparseProbePeriod = 16;

}  // namespace

void BasisLu::set_update_mode(UpdateMode mode) {
  BT_ASSERT(updates_ == 0,
            "BasisLu::set_update_mode: updates pending; refactorize first");
  mode_ = mode;
}

void BasisLu::set_solve_mode(SolveMode mode) {
  // Both strategies maintain the all-zero work_ invariant (the full sweep
  // re-zeros each slot in its scatter pass), so switching is free.
  solve_mode_ = mode;
}

bool BasisLu::factorize(std::size_t m, const std::vector<SparseColumnView>& columns) {
  if (fault_fire(FaultSite::kSingularRefactor)) return false;
  m_ = m;
  etas_.clear();
  ft_etas_.clear();
  updates_ = 0;
  pivot_row_.clear();
  pivot_col_.clear();
  diag_.clear();
  if (lrows_.size() < m) {
    lrows_.resize(m);
    lvals_.resize(m);
    ucols_.resize(m);
    uvals_.resize(m);
  }
  for (std::size_t k = 0; k < m; ++k) {
    lrows_[k].clear();
    lvals_[k].clear();
    ucols_[k].clear();
    uvals_[k].clear();
  }
  pivot_row_.reserve(m);
  pivot_col_.reserve(m);
  diag_.reserve(m);
  work_.assign(m, 0.0);
  flag_.assign(m, 0);
  reach_flag_.assign(m, 0);
  reach_.clear();
  // Fresh factor structure: let the adaptive solves re-probe their density.
  for (std::size_t c = 0; c < 2; ++c) {
    ftran_dense_streak_[c] = 0;
    btran_dense_streak_[c] = 0;
    ftran_probe_countdown_[c] = 0;
    btran_probe_countdown_[c] = 0;
  }
  spike_.assign(m, 0.0);
  spike_flag_.assign(m, 0);
  spike_nz_.clear();
  elim_.assign(m, 0.0);
  elim_flag_.assign(m, 0);
  elim_heap_.clear();
  order_.resize(m);
  order_pos_.resize(m);
  for (std::size_t k = 0; k < m; ++k) {
    order_[k] = static_cast<std::uint32_t>(k);
    order_pos_[k] = static_cast<std::uint32_t>(k);
  }

  // Working copy of B, column-wise, plus row occupancy for Markowitz counts.
  // Column entry lists stay exact (entries are removed the moment their row
  // or column leaves the active submatrix); row_cols may carry stale column
  // ids, which are filtered on use.  All of it lives in the reusable
  // workspace: clear()ed vectors keep their heap buffers across refactors.
  auto& crows = fw_.crows;
  auto& cvals = fw_.cvals;
  auto& row_count = fw_.row_count;
  auto& row_cols = fw_.row_cols;
  auto& colmax = fw_.colmax;
  if (crows.size() < m) {
    crows.resize(m);
    cvals.resize(m);
    row_cols.resize(m);
  }
  row_count.assign(m, 0);
  colmax.assign(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) row_cols[i].clear();
  for (std::size_t j = 0; j < m; ++j) {
    const SparseColumnView& col = columns[j];
    crows[j].assign(col.rows, col.rows + col.nnz);
    cvals[j].assign(col.vals, col.vals + col.nnz);
    for (std::size_t t = 0; t < col.nnz; ++t) {
      ++row_count[col.rows[t]];
      row_cols[col.rows[t]].push_back(static_cast<std::uint32_t>(j));
      colmax[j] = std::max(colmax[j], std::abs(col.vals[t]));
    }
  }
  auto& row_active = fw_.row_active;
  auto& col_active = fw_.col_active;
  auto& epos = fw_.epos;
  row_active.assign(m, 1);
  col_active.assign(m, 1);
  epos.assign(m, -1);  // scatter map for the column update

  // Count buckets: intrusive doubly-linked lists of active columns keyed by
  // their entry count, so the pivot search walks the sparsest columns first
  // instead of scanning everything.
  const std::size_t nil = m;
  auto& bucket_head = fw_.bucket_head;
  auto& bnext = fw_.bnext;
  auto& bprev = fw_.bprev;
  auto& bkey = fw_.bkey;
  bucket_head.assign(m + 1, nil);
  bnext.assign(m, nil);
  bprev.assign(m, nil);
  bkey.assign(m, nil);
  auto bucket_remove = [&](std::size_t j) {
    if (bkey[j] == nil) return;
    if (bprev[j] != nil) bnext[bprev[j]] = bnext[j];
    else bucket_head[bkey[j]] = bnext[j];
    if (bnext[j] != nil) bprev[bnext[j]] = bprev[j];
    bkey[j] = nil;
  };
  auto bucket_insert = [&](std::size_t j) {
    const std::size_t c = std::min(crows[j].size(), m);
    bkey[j] = c;
    bprev[j] = nil;
    bnext[j] = bucket_head[c];
    if (bucket_head[c] != nil) bprev[bucket_head[c]] = j;
    bucket_head[c] = j;
  };
  for (std::size_t j = 0; j < m; ++j) bucket_insert(j);

  for (std::size_t step = 0; step < m; ++step) {
    // ---- Markowitz pivot search with threshold partial pivoting: examine
    // the first kMarkowitzCandidates eligible columns, sparsest first. ----
    double best_cost = std::numeric_limits<double>::infinity();
    double best_val = 0.0;
    std::uint32_t best_row = 0, best_col = 0;
    bool found = false;
    std::size_t examined = 0;
    for (std::size_t c = 0; c <= m && examined < kMarkowitzCandidates && best_cost > 0.0; ++c) {
      for (std::size_t j = bucket_head[c];
           j != nil && examined < kMarkowitzCandidates && best_cost > 0.0; j = bnext[j]) {
        if (colmax[j] < kSingularTol) continue;
        ++examined;
        const double ccount = static_cast<double>(crows[j].size()) - 1.0;
        for (std::size_t t = 0; t < crows[j].size(); ++t) {
          const double av = std::abs(cvals[j][t]);
          if (av < kPivotThreshold * colmax[j] || av < kSingularTol) continue;
          const std::uint32_t i = crows[j][t];
          const double cost = (static_cast<double>(row_count[i]) - 1.0) * ccount;
          if (cost < best_cost || (cost == best_cost && av > std::abs(best_val))) {
            best_cost = cost;
            best_val = cvals[j][t];
            best_row = i;
            best_col = static_cast<std::uint32_t>(j);
            found = true;
          }
        }
      }
    }
    if (!found) return false;  // numerically singular basis

    const std::uint32_t ip = best_row, jp = best_col;
    const double d = best_val;
    pivot_row_.push_back(ip);
    pivot_col_.push_back(jp);
    diag_.push_back(d);
    row_active[ip] = 0;
    col_active[jp] = 0;
    bucket_remove(jp);

    // L column: the pivot column's remaining entries, scaled by 1/d.
    auto& lr = lrows_[step];
    auto& lv = lvals_[step];
    for (std::size_t t = 0; t < crows[jp].size(); ++t) {
      const std::uint32_t i = crows[jp][t];
      if (i == ip) continue;
      lr.push_back(i);
      lv.push_back(cvals[jp][t] / d);
      --row_count[i];  // the entry leaves the active submatrix with column jp
    }
    crows[jp].clear();
    cvals[jp].clear();

    // U row + rank-1 update, one pass per affected column: scatter the
    // column into epos once, detach the pivot-row entry through it (O(1)
    // instead of a linear search), apply W[j] -= u_j * L through it, and
    // refresh the column's cached max and count bucket.
    auto& uc = ucols_[step];
    auto& uv = uvals_[step];
    for (const std::uint32_t j : row_cols[ip]) {
      if (!col_active[j]) continue;
      for (std::size_t t = 0; t < crows[j].size(); ++t) {
        epos[crows[j][t]] = static_cast<std::int64_t>(t);
      }
      const std::int64_t pos = epos[ip];
      if (pos < 0) {  // stale occupancy entry
        for (const std::uint32_t i : crows[j]) epos[i] = -1;
        continue;
      }
      const double u = cvals[j][static_cast<std::size_t>(pos)];
      uc.push_back(j);
      uv.push_back(u);
      // Detach the pivot-row entry (swap-pop), keeping epos consistent.
      epos[crows[j].back()] = pos;
      epos[ip] = -1;
      crows[j][static_cast<std::size_t>(pos)] = crows[j].back();
      crows[j].pop_back();
      cvals[j][static_cast<std::size_t>(pos)] = cvals[j].back();
      cvals[j].pop_back();
      if (u != 0.0) {
        for (std::size_t t = 0; t < lr.size(); ++t) {
          const std::uint32_t i = lr[t];
          const double delta = lv[t] * u;
          if (epos[i] >= 0) {
            cvals[j][static_cast<std::size_t>(epos[i])] -= delta;
          } else if (delta != 0.0) {
            epos[i] = static_cast<std::int64_t>(crows[j].size());
            crows[j].push_back(i);
            cvals[j].push_back(-delta);
            ++row_count[i];
            row_cols[i].push_back(j);
          }
        }
      }
      double cm = 0.0;
      for (const double v : cvals[j]) cm = std::max(cm, std::abs(v));
      colmax[j] = cm;
      for (const std::uint32_t i : crows[j]) epos[i] = -1;
      bucket_remove(j);
      bucket_insert(j);
    }
    row_cols[ip].clear();
  }

  step_of_row_.assign(m, 0);
  step_of_col_.assign(m, 0);
  for (std::size_t k = 0; k < m; ++k) {
    step_of_row_[pivot_row_[k]] = static_cast<std::uint32_t>(k);
    step_of_col_[pivot_col_[k]] = static_cast<std::uint32_t>(k);
  }

  // Transposed factors for the push-style backward substitutions.
  if (utrans_step_.size() < m) {
    utrans_step_.resize(m);
    utrans_val_.resize(m);
    ltrans_step_.resize(m);
    ltrans_val_.resize(m);
  }
  for (std::size_t k = 0; k < m; ++k) {
    utrans_step_[k].clear();
    utrans_val_[k].clear();
    ltrans_step_[k].clear();
    ltrans_val_[k].clear();
  }
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t t = 0; t < ucols_[k].size(); ++t) {
      const std::uint32_t later = step_of_col_[ucols_[k][t]];
      utrans_step_[later].push_back(static_cast<std::uint32_t>(k));
      utrans_val_[later].push_back(uvals_[k][t]);
    }
    for (std::size_t t = 0; t < lrows_[k].size(); ++t) {
      const std::uint32_t later = step_of_row_[lrows_[k][t]];
      ltrans_step_[later].push_back(static_cast<std::uint32_t>(k));
      ltrans_val_[later].push_back(lvals_[k][t]);
    }
  }
  return true;
}

void BasisLu::compact_nonzeros(ScatteredVector& x) {
  std::size_t out = 0;
  for (const std::uint32_t i : x.nonzero) {
    if (x.value[i] != 0.0 && !flag_[i]) {
      flag_[i] = 1;
      x.nonzero[out++] = i;
    }
  }
  x.nonzero.resize(out);
  for (const std::uint32_t i : x.nonzero) flag_[i] = 0;
}

void BasisLu::ftran(ScatteredVector& x, SolveHint hint) {
  ++stats_.ftran_calls;
  stats_.ftran_dim_steps += m_;
  if (collect_timing_) {
    const auto t0 = std::chrono::steady_clock::now();
    ftran_dispatch(x, hint);
    stats_.ftran_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0).count());
  } else {
    ftran_dispatch(x, hint);
  }
}

void BasisLu::btran(ScatteredVector& x, SolveHint hint) {
  ++stats_.btran_calls;
  stats_.btran_dim_steps += m_;
  if (collect_timing_) {
    const auto t0 = std::chrono::steady_clock::now();
    btran_dispatch(x, hint);
    stats_.btran_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0).count());
  } else {
    btran_dispatch(x, hint);
  }
}

void BasisLu::ftran_dispatch(ScatteredVector& x, SolveHint hint) {
  bool attempt = solve_mode_ == SolveMode::kReachSet && hint != SolveHint::kDense;
  bool track = false;
  const std::size_t cls = hint == SolveHint::kSparse ? 1 : 0;
  if (attempt) {
    if (x.nonzero.size() > reach_budget()) {
      attempt = false;  // dense support: skip for free, don't bias the streak
    } else if (ftran_dense_streak_[cls] >= kDenseStreakLimit) {
      if (++ftran_probe_countdown_[cls] < kSparseProbePeriod) attempt = false;
      else {
        ftran_probe_countdown_[cls] = 0;
        track = true;
      }
    } else {
      track = true;
    }
  }
  const bool sparse = attempt && ftran_reach(x);
  if (track) ftran_dense_streak_[cls] = sparse ? 0 : ftran_dense_streak_[cls] + 1;
  if (!sparse) {
    ftran_full(x);
    stats_.ftran_reach_steps += m_;
  }

  // Product-form etas, oldest first (explicit about the positions they
  // touch; shared by both solve strategies).
  for (const Eta& e : etas_) {
    double t = x.value[e.pivot_pos];
    if (t == 0.0) continue;
    t /= e.pivot_value;
    x.value[e.pivot_pos] = t;
    for (std::size_t s = 0; s < e.idx.size(); ++s) {
      const std::uint32_t i = e.idx[s];
      if (x.value[i] == 0.0) x.nonzero.push_back(i);
      x.value[i] -= e.val[s] * t;
    }
  }
  compact_nonzeros(x);
}

void BasisLu::btran_dispatch(ScatteredVector& x, SolveHint hint) {
  // Product-form eta transposes, newest first: only the eta's pivot
  // position changes (shared by both solve strategies).
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double acc = x.value[it->pivot_pos];
    for (std::size_t s = 0; s < it->idx.size(); ++s) acc -= it->val[s] * x.value[it->idx[s]];
    acc /= it->pivot_value;
    if (x.value[it->pivot_pos] == 0.0 && acc != 0.0) x.nonzero.push_back(it->pivot_pos);
    x.value[it->pivot_pos] = acc;
  }

  bool attempt = solve_mode_ == SolveMode::kReachSet && hint != SolveHint::kDense;
  bool track = false;
  const std::size_t cls = hint == SolveHint::kSparse ? 1 : 0;
  if (attempt) {
    if (x.nonzero.size() > reach_budget()) {
      attempt = false;  // dense support: skip for free, don't bias the streak
    } else if (btran_dense_streak_[cls] >= kDenseStreakLimit) {
      if (++btran_probe_countdown_[cls] < kSparseProbePeriod) attempt = false;
      else {
        btran_probe_countdown_[cls] = 0;
        track = true;
      }
    } else {
      track = true;
    }
  }
  const bool sparse = attempt && btran_reach(x);
  if (track) btran_dense_streak_[cls] = sparse ? 0 : btran_dense_streak_[cls] + 1;
  if (!sparse) {
    btran_full(x);
    stats_.btran_reach_steps += m_;
  }
  compact_nonzeros(x);
}

template <typename Adjacency>
bool BasisLu::extend_reach(std::size_t first, std::size_t budget, const Adjacency& adj) {
  // Iterative flood fill: close reach_[first..] over `adj`.  Every visited
  // step is flagged and appended, so repeated extensions (L closure, then
  // eta targets, then U closure) compose into one combined reach list.
  // Growing past `budget` aborts: reach bookkeeping costs more than the
  // plain sweep saves on dense-ish closures (see kReachBudgetFraction).
  reach_stack_.clear();
  for (std::size_t i = first; i < reach_.size(); ++i) reach_stack_.push_back(reach_[i]);
  while (!reach_stack_.empty()) {
    const std::uint32_t k = reach_stack_.back();
    reach_stack_.pop_back();
    adj(k, [this](std::uint32_t next) {
      if (!reach_flag_[next]) {
        reach_flag_[next] = 1;
        reach_.push_back(next);
        reach_stack_.push_back(next);
      }
    });
    if (reach_.size() > budget) return false;
  }
  return true;
}

void BasisLu::abandon_reach() {
  for (const std::uint32_t k : reach_) reach_flag_[k] = 0;
  reach_.clear();
}

std::size_t BasisLu::reach_budget() const {
  return std::max<std::size_t>(
      16, static_cast<std::size_t>(kReachBudgetFraction * static_cast<double>(m_)));
}

bool BasisLu::ftran_reach(ScatteredVector& x) {
  // ---- Structural pass (no numerics touched yet): close the rhs support
  // over L's row structure, pull in row-eta targets, close over U's column
  // structure.  Abandon to the full sweep when the closure outgrows the
  // budget. ----
  const std::size_t budget = reach_budget();
  reach_.clear();
  for (const std::uint32_t i : x.nonzero) {
    const std::uint32_t k = step_of_row_[i];
    if (!reach_flag_[k]) {
      reach_flag_[k] = 1;
      reach_.push_back(k);
    }
  }
  if (reach_.size() > budget ||
      !extend_reach(0, budget, [this](std::uint32_t k, auto&& visit) {
        for (const std::uint32_t row : lrows_[k]) visit(step_of_row_[row]);
      })) {
    abandon_reach();
    return false;
  }
  // Row-eta targets, oldest first (a target flagged here can feed later
  // etas, matching the numeric application order below).
  for (const RowEta& e : ft_etas_) {
    if (reach_flag_[e.step]) continue;
    bool touched = false;
    for (const std::uint32_t src : e.src) touched = touched || reach_flag_[src] != 0;
    if (touched) {
      reach_flag_[e.step] = 1;
      reach_.push_back(e.step);
    }
  }
  if (reach_.size() > budget ||
      !extend_reach(0, budget, [this](std::uint32_t k, auto&& visit) {
        for (const std::uint32_t s : utrans_step_[k]) visit(s);
      })) {
    abandon_reach();
    return false;
  }

  // ---- Numeric phases over the (sorted) closure -- exactly the
  // subsequence of steps the full sweep would visit, in its visit order,
  // so both strategies perform bit-identical arithmetic.  Steps reached
  // only through later phases read zeros here, as they would in the full
  // sweep. ----
  double* r = x.value.data();
  std::sort(reach_.begin(), reach_.end());
  for (const std::uint32_t k : reach_) {
    const double zk = r[pivot_row_[k]];
    work_[k] = zk;
    if (zk == 0.0) continue;
    const auto& lr = lrows_[k];
    const auto& lv = lvals_[k];
    for (std::size_t t = 0; t < lr.size(); ++t) {
      r[lr[t]] -= lv[t] * zk;
      x.nonzero.push_back(lr[t]);
    }
  }
  for (const std::uint32_t i : x.nonzero) r[i] = 0.0;
  x.nonzero.clear();

  // Forrest-Tomlin row etas, oldest first; unreached sources read zero.
  for (const RowEta& e : ft_etas_) {
    if (!reach_flag_[e.step]) continue;
    double acc = work_[e.step];
    for (std::size_t s = 0; s < e.src.size(); ++s) acc -= e.mult[s] * work_[e.src[s]];
    work_[e.step] = acc;
  }

  // Backward substitution over U in (update-permuted) elimination order.
  std::sort(reach_.begin(), reach_.end(), [this](std::uint32_t a, std::uint32_t b) {
    return order_pos_[a] > order_pos_[b];
  });
  for (const std::uint32_t k : reach_) {
    const double wk = work_[k] / diag_[k];
    work_[k] = wk;
    if (wk == 0.0) continue;
    const auto& us = utrans_step_[k];
    const auto& uv = utrans_val_[k];
    for (std::size_t t = 0; t < us.size(); ++t) work_[us[t]] -= uv[t] * wk;
  }

  // Scatter to position space in ascending step order (the full sweep's
  // scatter order, so downstream consumers see identical nonzero lists)
  // and restore the all-zero work_ invariant.
  std::sort(reach_.begin(), reach_.end());
  for (const std::uint32_t k : reach_) {
    if (work_[k] != 0.0) x.push(pivot_col_[k], work_[k]);
    work_[k] = 0.0;
    reach_flag_[k] = 0;
  }
  stats_.ftran_reach_steps += reach_.size();
  return true;
}

bool BasisLu::btran_reach(ScatteredVector& x) {
  // ---- Structural pass: close the cost support over U's row structure,
  // pull in transposed row-eta sources (newest first), close over L^T. ----
  const std::size_t budget = reach_budget();
  reach_.clear();
  for (const std::uint32_t i : x.nonzero) {
    const std::uint32_t k = step_of_col_[i];
    if (!reach_flag_[k]) {
      reach_flag_[k] = 1;
      reach_.push_back(k);
    }
  }
  if (reach_.size() > budget ||
      !extend_reach(0, budget, [this](std::uint32_t k, auto&& visit) {
        for (const std::uint32_t colid : ucols_[k]) visit(step_of_col_[colid]);
      })) {
    abandon_reach();
    return false;
  }
  for (auto it = ft_etas_.rbegin(); it != ft_etas_.rend(); ++it) {
    if (!reach_flag_[it->step]) continue;
    for (const std::uint32_t src : it->src) {
      if (!reach_flag_[src]) {
        reach_flag_[src] = 1;
        reach_.push_back(src);
      }
    }
  }
  if (reach_.size() > budget ||
      !extend_reach(0, budget, [this](std::uint32_t k, auto&& visit) {
        for (const std::uint32_t s : ltrans_step_[k]) visit(s);
      })) {
    abandon_reach();
    return false;
  }

  // ---- Numeric phases over the sorted closure (see ftran_reach). ----
  double* c = x.value.data();
  std::sort(reach_.begin(), reach_.end(), [this](std::uint32_t a, std::uint32_t b) {
    return order_pos_[a] < order_pos_[b];
  });
  for (const std::uint32_t k : reach_) {
    const double tk = c[pivot_col_[k]] / diag_[k];
    work_[k] = tk;
    if (tk == 0.0) continue;
    const auto& uc = ucols_[k];
    const auto& uv = uvals_[k];
    for (std::size_t t = 0; t < uc.size(); ++t) {
      c[uc[t]] -= uv[t] * tk;
      x.nonzero.push_back(uc[t]);
    }
  }
  for (const std::uint32_t i : x.nonzero) c[i] = 0.0;
  x.nonzero.clear();

  // Transposed Forrest-Tomlin row etas, newest first.
  for (auto it = ft_etas_.rbegin(); it != ft_etas_.rend(); ++it) {
    const double v = work_[it->step];
    if (v == 0.0) continue;
    for (std::size_t s = 0; s < it->src.size(); ++s) work_[it->src[s]] -= it->mult[s] * v;
  }

  // L^T solve, backward in step order (L is untouched by updates).
  std::sort(reach_.begin(), reach_.end(), std::greater<std::uint32_t>());
  for (const std::uint32_t k : reach_) {
    const double vk = work_[k];
    if (vk == 0.0) continue;
    const auto& ls = ltrans_step_[k];
    const auto& lv = ltrans_val_[k];
    for (std::size_t t = 0; t < ls.size(); ++t) work_[ls[t]] -= lv[t] * vk;
  }

  // Scatter to row space in ascending step order; restore the invariant.
  std::sort(reach_.begin(), reach_.end());
  for (const std::uint32_t k : reach_) {
    if (work_[k] != 0.0) x.push(pivot_row_[k], work_[k]);
    work_[k] = 0.0;
    reach_flag_[k] = 0;
  }
  stats_.btran_reach_steps += reach_.size();
  return true;
}

void BasisLu::ftran_full(ScatteredVector& x) {
  double* r = x.value.data();
  // L z = P a, in step order; z lands in work_.  Touched rows are appended
  // to the nonzero list so the row-space residue can be cleared in O(nnz).
  // L is never modified by Forrest-Tomlin updates, so the original step
  // order remains the valid substitution order here.
  for (std::size_t k = 0; k < m_; ++k) {
    const double zk = r[pivot_row_[k]];
    work_[k] = zk;
    if (zk == 0.0) continue;
    const auto& lr = lrows_[k];
    const auto& lv = lvals_[k];
    for (std::size_t t = 0; t < lr.size(); ++t) {
      r[lr[t]] -= lv[t] * zk;
      x.nonzero.push_back(lr[t]);
    }
  }
  for (const std::uint32_t i : x.nonzero) r[i] = 0.0;
  x.nonzero.clear();

  // Forrest-Tomlin row etas, oldest first: the row operations that kept U
  // triangular act on the intermediate vector between the L and U solves.
  for (const RowEta& e : ft_etas_) {
    double acc = work_[e.step];
    for (std::size_t s = 0; s < e.src.size(); ++s) acc -= e.mult[s] * work_[e.src[s]];
    work_[e.step] = acc;
  }

  // U w = z, backward substitution, push-style over U's columns: a zero
  // position propagates nothing, so sparse right-hand sides only pay for
  // the steps they actually reach.  U is triangular with respect to the
  // (update-permuted) elimination order, so iterate order_, not the step id.
  for (std::size_t idx = m_; idx-- > 0;) {
    const std::uint32_t k = order_[idx];
    const double wk = work_[k] / diag_[k];
    work_[k] = wk;
    if (wk == 0.0) continue;
    const auto& us = utrans_step_[k];
    const auto& uv = utrans_val_[k];
    for (std::size_t t = 0; t < us.size(); ++t) work_[us[t]] -= uv[t] * wk;
  }

  // Scatter to position space (x[q_k] = w_k), re-zeroing each slot so the
  // all-zero work_ invariant of the reach traversal survives full sweeps.
  for (std::size_t k = 0; k < m_; ++k) {
    const double wk = work_[k];
    work_[k] = 0.0;
    if (wk != 0.0) x.push(pivot_col_[k], wk);
  }
}

void BasisLu::btran_full(ScatteredVector& x) {
  double* c = x.value.data();
  // U^T t = Q^T c, forward over the elimination order (push to later
  // steps); t lands in work_.
  for (std::size_t idx = 0; idx < m_; ++idx) {
    const std::uint32_t k = order_[idx];
    const double tk = c[pivot_col_[k]] / diag_[k];
    work_[k] = tk;
    if (tk == 0.0) continue;
    const auto& uc = ucols_[k];
    const auto& uv = uvals_[k];
    for (std::size_t t = 0; t < uc.size(); ++t) {
      c[uc[t]] -= uv[t] * tk;
      x.nonzero.push_back(uc[t]);
    }
  }
  for (const std::uint32_t i : x.nonzero) c[i] = 0.0;
  x.nonzero.clear();

  // Transposed Forrest-Tomlin row etas, newest first.
  for (auto it = ft_etas_.rbegin(); it != ft_etas_.rend(); ++it) {
    const double v = work_[it->step];
    if (v == 0.0) continue;
    for (std::size_t s = 0; s < it->src.size(); ++s) work_[it->src[s]] -= it->mult[s] * v;
  }

  // L^T v = t, backward, push-style over L's transposed rows (zero
  // positions propagate nothing), in place in work_.  L is untouched by
  // updates, so the original step order is the right substitution order.
  for (std::size_t k = m_; k-- > 0;) {
    const double vk = work_[k];
    if (vk == 0.0) continue;
    const auto& ls = ltrans_step_[k];
    const auto& lv = ltrans_val_[k];
    for (std::size_t t = 0; t < ls.size(); ++t) work_[ls[t]] -= lv[t] * vk;
  }

  // Scatter to row space (y[p_k] = v_k), re-zeroing each slot so the
  // all-zero work_ invariant of the reach traversal survives full sweeps.
  for (std::size_t k = 0; k < m_; ++k) {
    const double vk = work_[k];
    work_[k] = 0.0;
    if (vk != 0.0) x.push(pivot_row_[k], vk);
  }
}

bool BasisLu::update(std::size_t leave_pos, const ScatteredVector& w) {
  const double piv = w.value[leave_pos];
  if (std::abs(piv) < kUpdateTol) return false;
  if (mode_ == UpdateMode::kForrestTomlin) {
    return forrest_tomlin_update(static_cast<std::uint32_t>(leave_pos), w);
  }
  Eta e;
  e.pivot_pos = static_cast<std::uint32_t>(leave_pos);
  e.pivot_value = piv;
  for (const std::uint32_t i : w.nonzero) {
    if (i == leave_pos || w.value[i] == 0.0) continue;
    e.idx.push_back(i);
    e.val.push_back(w.value[i]);
  }
  etas_.push_back(std::move(e));
  ++updates_;
  return true;
}

bool BasisLu::forrest_tomlin_update(std::uint32_t leave_pos, const ScatteredVector& w) {
  // Replace basis column `leave_pos`, factored at step t, with the entering
  // column a (given as w = B^{-1} a).  On failure the factors are left
  // partially modified and invalid: the caller must refactorize.
  const std::uint32_t t = step_of_col_[leave_pos];

  // ---- 1. Spike s = L^{-1} a, recovered as s = U w (both in step space;
  // valid because the Forrest-Tomlin file keeps U exact -- no product-form
  // etas are pending).  U column c holds diag_[c] plus utrans entries.
  spike_nz_.clear();
  for (const std::uint32_t j : w.nonzero) {
    const double wv = w.value[j];
    if (wv == 0.0) continue;
    const std::uint32_t c = step_of_col_[j];
    if (!spike_flag_[c]) {
      spike_flag_[c] = 1;
      spike_[c] = 0.0;
      spike_nz_.push_back(c);
    }
    spike_[c] += diag_[c] * wv;
    const auto& us = utrans_step_[c];
    const auto& uv = utrans_val_[c];
    for (std::size_t s = 0; s < us.size(); ++s) {
      const std::uint32_t k = us[s];
      if (!spike_flag_[k]) {
        spike_flag_[k] = 1;
        spike_[k] = 0.0;
        spike_nz_.push_back(k);
      }
      spike_[k] += uv[s] * wv;
    }
  }
  double dval = spike_flag_[t] ? spike_[t] : 0.0;

  // ---- 2. Detach row t of U; its entries seed the elimination row. ----
  elim_heap_.clear();
  for (std::size_t s = 0; s < ucols_[t].size(); ++s) {
    const std::uint32_t cstep = step_of_col_[ucols_[t][s]];
    elim_[cstep] = uvals_[t][s];
    elim_flag_[cstep] = 1;
    elim_heap_.push_back(cstep);
    auto& ts = utrans_step_[cstep];
    auto& tv = utrans_val_[cstep];
    for (std::size_t q = 0; q < ts.size(); ++q) {
      if (ts[q] == t) {
        ts[q] = ts.back();
        ts.pop_back();
        tv[q] = tv.back();
        tv.pop_back();
        break;
      }
    }
  }
  ucols_[t].clear();
  uvals_[t].clear();

  // ---- 3. Detach column t of U. ----
  for (const std::uint32_t k : utrans_step_[t]) {
    auto& rc = ucols_[k];
    auto& rv = uvals_[k];
    for (std::size_t q = 0; q < rc.size(); ++q) {
      if (rc[q] == leave_pos) {
        rc[q] = rc.back();
        rc.pop_back();
        rv[q] = rv.back();
        rv.pop_back();
        break;
      }
    }
  }
  utrans_step_[t].clear();
  utrans_val_[t].clear();

  // ---- 4. Rotate step t to the end of the elimination order. ----
  for (std::uint32_t p = order_pos_[t]; p + 1 < m_; ++p) {
    order_[p] = order_[p + 1];
    order_pos_[order_[p]] = p;
  }
  order_[m_ - 1] = t;
  order_pos_[t] = static_cast<std::uint32_t>(m_ - 1);

  // ---- 5. Insert the spike as the new column t: every other step now
  // precedes t in the order, so all its entries are upper triangular. ----
  for (const std::uint32_t k : spike_nz_) {
    const double sv = spike_[k];
    spike_flag_[k] = 0;
    spike_[k] = 0.0;
    if (k == t || sv == 0.0) continue;
    ucols_[k].push_back(leave_pos);
    uvals_[k].push_back(sv);
    utrans_step_[t].push_back(k);
    utrans_val_[t].push_back(sv);
  }
  spike_nz_.clear();

  // ---- 6. Eliminate the detached row with row operations against the
  // triangular part, walking the entries in elimination order (a min-heap
  // on order_pos_; fill lands strictly later in the order).  The operations
  // become one row eta; the updated last-column entry is the new diagonal.
  auto heap_less = [this](std::uint32_t a, std::uint32_t b) {
    return order_pos_[a] > order_pos_[b];  // min-heap on order position
  };
  std::make_heap(elim_heap_.begin(), elim_heap_.end(), heap_less);
  RowEta eta;
  eta.step = t;
  while (!elim_heap_.empty()) {
    std::pop_heap(elim_heap_.begin(), elim_heap_.end(), heap_less);
    const std::uint32_t c = elim_heap_.back();
    elim_heap_.pop_back();
    const double rv = elim_[c];
    elim_[c] = 0.0;
    elim_flag_[c] = 0;
    if (rv == 0.0) continue;
    const double mu = rv / diag_[c];
    if (!std::isfinite(mu) || std::abs(mu) > kFtGrowthLimit) {
      // Unstable elimination: bail out and clean the scratch state.
      for (const std::uint32_t q : elim_heap_) {
        elim_[q] = 0.0;
        elim_flag_[q] = 0;
      }
      elim_heap_.clear();
      return false;
    }
    eta.src.push_back(c);
    eta.mult.push_back(mu);
    const auto& rc = ucols_[c];
    const auto& rvv = uvals_[c];
    for (std::size_t q = 0; q < rc.size(); ++q) {
      const std::uint32_t cj = rc[q];
      if (cj == leave_pos) {
        dval -= mu * rvv[q];
        continue;
      }
      const std::uint32_t cstep = step_of_col_[cj];
      if (!elim_flag_[cstep]) {
        elim_flag_[cstep] = 1;
        elim_[cstep] = 0.0;
        elim_heap_.push_back(cstep);
        std::push_heap(elim_heap_.begin(), elim_heap_.end(), heap_less);
      }
      elim_[cstep] -= mu * rvv[q];
    }
  }
  if (std::abs(dval) < kUpdateTol || !std::isfinite(dval)) return false;
  diag_[t] = dval;
  if (!eta.src.empty()) ft_etas_.push_back(std::move(eta));
  ++updates_;
  return true;
}

std::size_t BasisLu::factor_nonzeros() const {
  std::size_t nnz = m_;  // U diagonal
  for (std::size_t k = 0; k < m_; ++k) nnz += lrows_[k].size() + ucols_[k].size();
  for (const Eta& e : etas_) nnz += e.idx.size() + 1;
  for (const RowEta& e : ft_etas_) nnz += e.src.size();
  return nnz;
}

}  // namespace bt
