#pragma once

// Sparse LU factorization of a simplex basis with Forrest-Tomlin updates.
//
// The revised simplex needs two kernels per iteration: FTRAN (solve
// B w = a for the entering column's direction) and BTRAN (solve
// B^T y = c_B for the duals used in pricing).  This module keeps B in
// factored form
//
//     B = P^T L U Q^T,   updated in place as basis columns are replaced
//
// where L/U come from a Markowitz-ordered sparse Gaussian elimination
// (pivots chosen to minimize (row_count-1)*(col_count-1) fill, subject to a
// threshold |a_ij| >= tau * max|column|).  Solves walk only the stored
// nonzeros; right-hand sides and results are carried as ScatteredVector
// (dense values + the list of touched positions) so that clearing between
// solves is O(nnz), not O(m).
//
// Two update strategies are available (UpdateMode):
//
//  * Forrest-Tomlin (default): replace the leaving column of U with the
//    spike L^{-1} a, rotate the pivot to the end of the elimination order,
//    and eliminate the leaving row's entries with row operations that are
//    recorded as a short "row eta".  U stays genuinely triangular (in the
//    permuted order), so FTRAN/BTRAN cost stays proportional to the factor
//    fill plus the (small) row-eta file -- it does not grow with one dense
//    eta vector per pivot.  Both the row-wise U and the transposed factors
//    used by the push-style BTRAN are updated in place.
//
//  * Product form: each pivot appends an eta matrix holding the full FTRAN
//    direction, and solves replay the whole file.  Retained for
//    differential testing and benchmarking against Forrest-Tomlin.
//
// The owning solver refactorizes periodically
// (SimplexOptions::refactor_period) or when update() reports a numerically
// unsafe pivot, which restores a fresh L U and empties the update files.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bt {

/// Dense-storage sparse vector: `value` has size m, `nonzero` lists the
/// positions that may hold non-zeros (a superset is fine).  Clearing touches
/// only the listed positions.
struct ScatteredVector {
  std::vector<double> value;
  std::vector<std::uint32_t> nonzero;

  void reset(std::size_t m) {
    for (const std::uint32_t i : nonzero) value[i] = 0.0;
    nonzero.clear();
    if (value.size() != m) value.assign(m, 0.0);
  }
  void push(std::uint32_t i, double v) {
    value[i] = v;
    nonzero.push_back(i);
  }
};

/// Read-only view of one sparse basis column: (row, value) pairs.
struct SparseColumnView {
  const std::uint32_t* rows = nullptr;
  const double* vals = nullptr;
  std::size_t nnz = 0;
};

/// LU-factored simplex basis with in-place (Forrest-Tomlin) or product-form
/// eta updates between refactorizations.
///
/// Position space: basis position k holds the k-th basic variable, i.e.
/// column k of B; row space: the constraint rows.  ftran maps a row-space
/// right-hand side to a position-space result, btran the reverse.
class BasisLu {
 public:
  /// Basis-change strategy applied by update() between refactorizations.
  enum class UpdateMode {
    kForrestTomlin,  ///< rotate U in place + short row etas (production)
    kProductForm,    ///< append one full eta per pivot (reference)
  };

  /// Select the update strategy.  Must be called while no updates are
  /// pending (i.e. right after construction or a factorize()).
  void set_update_mode(UpdateMode mode);
  UpdateMode update_mode() const { return mode_; }

  /// Factorize the m x m basis whose k-th column is `columns[k]`.  Discards
  /// any pending updates.  Returns false if the basis is numerically
  /// singular (the previous factorization is then invalid).
  bool factorize(std::size_t m, const std::vector<SparseColumnView>& columns);

  /// Solve B x = a in place: on entry `x` holds a row-space right-hand side,
  /// on exit the position-space solution (nonzero list maintained).
  void ftran(ScatteredVector& x);

  /// Solve B^T y = c in place: on entry `x` holds a position-space cost
  /// vector, on exit the row-space duals (nonzero list maintained).
  void btran(ScatteredVector& x);

  /// Update the factorization for a pivot that replaces the basic variable
  /// at position `leave_pos`, where `w` = ftran(entering column).  Returns
  /// false when the update pivot is too small (or, under Forrest-Tomlin,
  /// the elimination is unstable); the factorization is then invalid and
  /// the caller must refactorize with the new basis.
  bool update(std::size_t leave_pos, const ScatteredVector& w);

  /// Number of update() pivots applied since the last factorization.
  std::size_t update_count() const { return updates_; }
  std::size_t dimension() const { return m_; }

  /// Total nonzeros in L + U of the current factors plus the update files
  /// (diagnostic; under product form this grows by one eta per pivot, under
  /// Forrest-Tomlin only by the eliminated row stubs).
  std::size_t factor_nonzeros() const;

 private:
  struct Eta {
    std::uint32_t pivot_pos;
    double pivot_value;                  ///< w[pivot_pos]
    std::vector<std::uint32_t> idx;      ///< other positions with w != 0
    std::vector<double> val;             ///< w at those positions
  };
  /// Forrest-Tomlin row eta: the row operations that eliminated the leaving
  /// row, i.e. z[step] -= sum_i mult[i] * z[src[i]] applied between the L
  /// and U solves (transposed in BTRAN).
  struct RowEta {
    std::uint32_t step;
    std::vector<std::uint32_t> src;
    std::vector<double> mult;
  };

  UpdateMode mode_ = UpdateMode::kForrestTomlin;
  std::size_t m_ = 0;
  std::size_t updates_ = 0;
  // Elimination step k pivoted on (row pivot_row_[k], column pivot_col_[k]).
  std::vector<std::uint32_t> pivot_row_;
  std::vector<std::uint32_t> pivot_col_;
  std::vector<double> diag_;  ///< U diagonal per step
  // L column per step: multipliers at still-active original rows.
  std::vector<std::vector<std::uint32_t>> lrows_;
  std::vector<std::vector<double>> lvals_;
  // U row per step: entries at still-active original columns (excl. diag).
  std::vector<std::vector<std::uint32_t>> ucols_;
  std::vector<std::vector<double>> uvals_;
  std::vector<std::uint32_t> step_of_row_;  ///< inverse of pivot_row_
  std::vector<std::uint32_t> step_of_col_;  ///< inverse of pivot_col_
  // Transposed factors, indexed by step: U by column and L^T by row.  The
  // backward substitutions run push-style over these so that a sparse
  // right-hand side only touches the steps it actually reaches (the forward
  // substitutions already skip zero positions on the row-wise factors).
  std::vector<std::vector<std::uint32_t>> utrans_step_;
  std::vector<std::vector<double>> utrans_val_;
  std::vector<std::vector<std::uint32_t>> ltrans_step_;
  std::vector<std::vector<double>> ltrans_val_;

  // Elimination order of the steps.  A fresh factorization uses the
  // identity; Forrest-Tomlin updates rotate the updated step to the end.
  // U is upper triangular with respect to this order, so the triangular
  // solves iterate order_ instead of the raw step index.
  std::vector<std::uint32_t> order_;
  std::vector<std::uint32_t> order_pos_;  ///< inverse of order_

  std::vector<Eta> etas_;       ///< product-form file (kProductForm)
  std::vector<RowEta> ft_etas_; ///< row-eta file (kForrestTomlin)

  bool forrest_tomlin_update(std::uint32_t leave_pos, const ScatteredVector& w);

  /// Deduplicate a nonzero list and drop exact zeros, so callers can treat
  /// it as an exact support set (e.g. for delta updates of xb).
  void compact_nonzeros(ScatteredVector& x);

  // Solve workspaces (sized m_), reused across calls.
  std::vector<double> work_;
  std::vector<char> flag_;
  // Forrest-Tomlin update workspaces (sized m_).
  std::vector<double> spike_;
  std::vector<char> spike_flag_;
  std::vector<std::uint32_t> spike_nz_;
  std::vector<double> elim_;
  std::vector<char> elim_flag_;
  std::vector<std::uint32_t> elim_heap_;

  // Factorization workspace, reused across refactorizations so a periodic
  // refactor costs no per-column allocations (the inner vectors keep their
  // capacity between calls).
  struct FactorWorkspace {
    std::vector<std::vector<std::uint32_t>> crows;
    std::vector<std::vector<double>> cvals;
    std::vector<std::vector<std::uint32_t>> row_cols;
    std::vector<std::uint32_t> row_count;
    std::vector<double> colmax;
    std::vector<char> row_active, col_active;
    std::vector<std::int64_t> epos;
    std::vector<std::size_t> bucket_head, bnext, bprev, bkey;
  };
  FactorWorkspace fw_;
};

}  // namespace bt
