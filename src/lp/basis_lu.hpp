#pragma once

// Sparse LU factorization of a simplex basis with Forrest-Tomlin updates.
//
// The revised simplex needs two kernels per iteration: FTRAN (solve
// B w = a for the entering column's direction) and BTRAN (solve
// B^T y = c_B for the duals used in pricing).  This module keeps B in
// factored form
//
//     B = P^T L U Q^T,   updated in place as basis columns are replaced
//
// where L/U come from a Markowitz-ordered sparse Gaussian elimination
// (pivots chosen to minimize (row_count-1)*(col_count-1) fill, subject to a
// threshold |a_ij| >= tau * max|column|).  Solves walk only the stored
// nonzeros; right-hand sides and results are carried as ScatteredVector
// (dense values + the list of touched positions) so that clearing between
// solves is O(nnz), not O(m).
//
// Two update strategies are available (UpdateMode):
//
//  * Forrest-Tomlin (default): replace the leaving column of U with the
//    spike L^{-1} a, rotate the pivot to the end of the elimination order,
//    and eliminate the leaving row's entries with row operations that are
//    recorded as a short "row eta".  U stays genuinely triangular (in the
//    permuted order), so FTRAN/BTRAN cost stays proportional to the factor
//    fill plus the (small) row-eta file -- it does not grow with one dense
//    eta vector per pivot.  Both the row-wise U and the transposed factors
//    used by the push-style BTRAN are updated in place.
//
//  * Product form: each pivot appends an eta matrix holding the full FTRAN
//    direction, and solves replay the whole file.  Retained for
//    differential testing and benchmarking against Forrest-Tomlin.
//
// Two solve strategies are available (SolveMode):
//
//  * Reach set (default): before each triangular solve, a Gilbert-Peierls
//    flood fill over the static factor dependency structure computes the
//    exact structural closure of the right-hand side's nonzeros; only the
//    reached elimination steps are visited, so a hypersparse solve (unit
//    rho rows, entering columns, rhs deltas) costs O(reach log reach)
//    instead of O(m).  The reached steps are processed in the *same*
//    elimination order the full sweep uses (sorted, not DFS postorder), so
//    both modes perform bit-identical floating-point arithmetic.
//
//  * Full sweep: walk all m elimination steps, skipping zero positions --
//    the pre-hypersparse behavior, retained for differential testing and
//    A/B benchmarking.
//
// The owning solver refactorizes periodically
// (SimplexOptions::refactor_period) or when update() reports a numerically
// unsafe pivot, which restores a fresh L U and empties the update files.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lp/engine_stats.hpp"

namespace bt {

/// Dense-storage sparse vector: `value` has size m, `nonzero` lists the
/// positions that may hold non-zeros (a superset is fine).  Clearing touches
/// only the listed positions.
struct ScatteredVector {
  std::vector<double> value;
  std::vector<std::uint32_t> nonzero;

  void reset(std::size_t m) {
    for (const std::uint32_t i : nonzero) value[i] = 0.0;
    nonzero.clear();
    if (value.size() != m) value.assign(m, 0.0);
  }
  void push(std::uint32_t i, double v) {
    value[i] = v;
    nonzero.push_back(i);
  }
};

/// Read-only view of one sparse basis column: (row, value) pairs.
struct SparseColumnView {
  const std::uint32_t* rows = nullptr;
  const double* vals = nullptr;
  std::size_t nnz = 0;
};

/// LU-factored simplex basis with in-place (Forrest-Tomlin) or product-form
/// eta updates between refactorizations.
///
/// Position space: basis position k holds the k-th basic variable, i.e.
/// column k of B; row space: the constraint rows.  ftran maps a row-space
/// right-hand side to a position-space result, btran the reverse.
class BasisLu {
 public:
  /// Basis-change strategy applied by update() between refactorizations.
  enum class UpdateMode {
    kForrestTomlin,  ///< rotate U in place + short row etas (production)
    kProductForm,    ///< append one full eta per pivot (reference)
  };

  /// Triangular-solve strategy of ftran()/btran().
  enum class SolveMode {
    kReachSet,   ///< Gilbert-Peierls reach traversal (production)
    kFullSweep,  ///< visit all m elimination steps (reference)
  };

  /// Caller-side density class of one solve (reach-set mode only).  kAuto
  /// (bulk solves: basic values, cost BTRANs, entering columns) and
  /// kSparse (unit rho rows, rhs deltas, tau solves) adapt independently:
  /// each class attempts the budgeted reach traversal until a streak of
  /// abandoned floods shows its closures are dense here, then skips the
  /// flood and re-probes periodically.  A right-hand side whose support
  /// already exceeds the budget skips for free without biasing the
  /// streak.  kDense always takes the full sweep.
  enum class SolveHint { kAuto, kSparse, kDense };

  /// Select the update strategy.  Must be called while no updates are
  /// pending (i.e. right after construction or a factorize()).
  void set_update_mode(UpdateMode mode);
  UpdateMode update_mode() const { return mode_; }

  /// Select the solve strategy; both modes compute bit-identical results
  /// (the reach set is processed in full-sweep elimination order), so this
  /// may be switched at any time.
  void set_solve_mode(SolveMode mode);
  SolveMode solve_mode() const { return solve_mode_; }

  /// Collect per-call wall-clock in the stats (counters are always on).
  void set_collect_timing(bool collect) { collect_timing_ = collect; }

  /// FTRAN/BTRAN call, reach and (optional) timing counters accumulated
  /// since the last reset_stats(); only the kernel fields are filled.
  const LpEngineStats& stats() const { return stats_; }
  void reset_stats() { stats_ = LpEngineStats{}; }

  /// Factorize the m x m basis whose k-th column is `columns[k]`.  Discards
  /// any pending updates.  Returns false if the basis is numerically
  /// singular (the previous factorization is then invalid).
  bool factorize(std::size_t m, const std::vector<SparseColumnView>& columns);

  /// Solve B x = a in place: on entry `x` holds a row-space right-hand side,
  /// on exit the position-space solution (nonzero list maintained).
  void ftran(ScatteredVector& x, SolveHint hint = SolveHint::kAuto);

  /// Solve B^T y = c in place: on entry `x` holds a position-space cost
  /// vector, on exit the row-space duals (nonzero list maintained).
  void btran(ScatteredVector& x, SolveHint hint = SolveHint::kAuto);

  /// Update the factorization for a pivot that replaces the basic variable
  /// at position `leave_pos`, where `w` = ftran(entering column).  Returns
  /// false when the update pivot is too small (or, under Forrest-Tomlin,
  /// the elimination is unstable); the factorization is then invalid and
  /// the caller must refactorize with the new basis.
  bool update(std::size_t leave_pos, const ScatteredVector& w);

  /// Number of update() pivots applied since the last factorization.
  std::size_t update_count() const { return updates_; }
  std::size_t dimension() const { return m_; }

  /// Total nonzeros in L + U of the current factors plus the update files
  /// (diagnostic; under product form this grows by one eta per pivot, under
  /// Forrest-Tomlin only by the eliminated row stubs).
  std::size_t factor_nonzeros() const;

 private:
  struct Eta {
    std::uint32_t pivot_pos;
    double pivot_value;                  ///< w[pivot_pos]
    std::vector<std::uint32_t> idx;      ///< other positions with w != 0
    std::vector<double> val;             ///< w at those positions
  };
  /// Forrest-Tomlin row eta: the row operations that eliminated the leaving
  /// row, i.e. z[step] -= sum_i mult[i] * z[src[i]] applied between the L
  /// and U solves (transposed in BTRAN).
  struct RowEta {
    std::uint32_t step;
    std::vector<std::uint32_t> src;
    std::vector<double> mult;
  };

  UpdateMode mode_ = UpdateMode::kForrestTomlin;
  SolveMode solve_mode_ = SolveMode::kReachSet;
  bool collect_timing_ = false;
  LpEngineStats stats_;
  std::size_t m_ = 0;
  std::size_t updates_ = 0;
  // Elimination step k pivoted on (row pivot_row_[k], column pivot_col_[k]).
  std::vector<std::uint32_t> pivot_row_;
  std::vector<std::uint32_t> pivot_col_;
  std::vector<double> diag_;  ///< U diagonal per step
  // L column per step: multipliers at still-active original rows.
  std::vector<std::vector<std::uint32_t>> lrows_;
  std::vector<std::vector<double>> lvals_;
  // U row per step: entries at still-active original columns (excl. diag).
  std::vector<std::vector<std::uint32_t>> ucols_;
  std::vector<std::vector<double>> uvals_;
  std::vector<std::uint32_t> step_of_row_;  ///< inverse of pivot_row_
  std::vector<std::uint32_t> step_of_col_;  ///< inverse of pivot_col_
  // Transposed factors, indexed by step: U by column and L^T by row.  The
  // backward substitutions run push-style over these so that a sparse
  // right-hand side only touches the steps it actually reaches (the forward
  // substitutions already skip zero positions on the row-wise factors).
  std::vector<std::vector<std::uint32_t>> utrans_step_;
  std::vector<std::vector<double>> utrans_val_;
  std::vector<std::vector<std::uint32_t>> ltrans_step_;
  std::vector<std::vector<double>> ltrans_val_;

  // Elimination order of the steps.  A fresh factorization uses the
  // identity; Forrest-Tomlin updates rotate the updated step to the end.
  // U is upper triangular with respect to this order, so the triangular
  // solves iterate order_ instead of the raw step index.
  std::vector<std::uint32_t> order_;
  std::vector<std::uint32_t> order_pos_;  ///< inverse of order_

  std::vector<Eta> etas_;       ///< product-form file (kProductForm)
  std::vector<RowEta> ft_etas_; ///< row-eta file (kForrestTomlin)

  bool forrest_tomlin_update(std::uint32_t leave_pos, const ScatteredVector& w);

  /// Deduplicate a nonzero list and drop exact zeros, so callers can treat
  /// it as an exact support set (e.g. for delta updates of xb).
  void compact_nonzeros(ScatteredVector& x);

  // Solve workspaces (sized m_), reused across calls.  Under the reach-set
  // mode `work_` is all-zero between solves (each solve clears exactly the
  // steps it reached); the full sweep overwrites every entry anyway.
  std::vector<double> work_;
  std::vector<char> flag_;
  // Reach-set traversal state: flags + the reached step list (segments per
  // solve phase) and the flood-fill stack.
  std::vector<char> reach_flag_;
  std::vector<std::uint32_t> reach_;
  std::vector<std::uint32_t> reach_stack_;
  // Adaptive solve behavior, per kernel x hint class (0 = kAuto,
  // 1 = kSparse): after kDenseStreakLimit consecutive abandoned floods the
  // flood is skipped, re-probing every kSparseProbePeriod calls.
  std::uint32_t ftran_dense_streak_[2] = {0, 0};
  std::uint32_t btran_dense_streak_[2] = {0, 0};
  std::uint32_t ftran_probe_countdown_[2] = {0, 0};
  std::uint32_t btran_probe_countdown_[2] = {0, 0};

  /// Flood-fill the structural closure of the steps already in
  /// reach_[first..] over the step adjacency `adj` (L rows mapped through
  /// step_of_row_, or the transposed-factor step lists), appending newly
  /// reached steps to reach_.  Returns false -- leaving the partial
  /// closure flagged for the caller to abandon -- as soon as the list
  /// grows past `budget`.
  template <typename Adjacency>
  bool extend_reach(std::size_t first, std::size_t budget, const Adjacency& adj);

  /// Unflag and drop the current reach list (abandoned traversal).
  void abandon_reach();
  /// Reach budget for this factor dimension (kReachBudgetFraction * m).
  std::size_t reach_budget() const;

  void ftran_dispatch(ScatteredVector& x, SolveHint hint);
  void btran_dispatch(ScatteredVector& x, SolveHint hint);
  // Triangular solves without the product-form eta pass (the dispatchers
  // own it); the reach variants run the budgeted structural closure first
  // and return false -- with no numeric state touched -- when it exceeds
  // the budget, upon which the dispatcher falls back to the full sweep.
  void ftran_full(ScatteredVector& x);
  void btran_full(ScatteredVector& x);
  bool ftran_reach(ScatteredVector& x);
  bool btran_reach(ScatteredVector& x);
  // Forrest-Tomlin update workspaces (sized m_).
  std::vector<double> spike_;
  std::vector<char> spike_flag_;
  std::vector<std::uint32_t> spike_nz_;
  std::vector<double> elim_;
  std::vector<char> elim_flag_;
  std::vector<std::uint32_t> elim_heap_;

  // Factorization workspace, reused across refactorizations so a periodic
  // refactor costs no per-column allocations (the inner vectors keep their
  // capacity between calls).
  struct FactorWorkspace {
    std::vector<std::vector<std::uint32_t>> crows;
    std::vector<std::vector<double>> cvals;
    std::vector<std::vector<std::uint32_t>> row_cols;
    std::vector<std::uint32_t> row_count;
    std::vector<double> colmax;
    std::vector<char> row_active, col_active;
    std::vector<std::int64_t> epos;
    std::vector<std::size_t> bucket_head, bnext, bprev, bkey;
  };
  FactorWorkspace fw_;
};

}  // namespace bt
