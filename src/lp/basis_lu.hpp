#pragma once

// Sparse LU factorization of a simplex basis with product-form eta updates.
//
// The revised simplex needs two kernels per iteration: FTRAN (solve
// B w = a for the entering column's direction) and BTRAN (solve
// B^T y = c_B for the duals used in pricing).  This module keeps B in
// factored form
//
//     B = P^T L U Q^T,   then   B_k = E_k ... E_1-updated B
//
// where L/U come from a Markowitz-ordered sparse Gaussian elimination
// (pivots chosen to minimize (row_count-1)*(col_count-1) fill, subject to a
// threshold |a_ij| >= tau * max|column|), and each simplex pivot appends a
// product-form eta matrix instead of retouching the factors.  Solves walk
// only the stored nonzeros; right-hand sides and results are carried as
// ScatteredVector (dense values + the list of touched positions) so that
// clearing between solves is O(nnz), not O(m).
//
// The eta file grows by one vector per pivot; the owning solver refactorizes
// periodically (SimplexOptions::refactor_period) or when update() reports a
// numerically unsafe pivot, which restores a fresh L U and empties the file.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bt {

/// Dense-storage sparse vector: `value` has size m, `nonzero` lists the
/// positions that may hold non-zeros (a superset is fine).  Clearing touches
/// only the listed positions.
struct ScatteredVector {
  std::vector<double> value;
  std::vector<std::uint32_t> nonzero;

  void reset(std::size_t m) {
    for (const std::uint32_t i : nonzero) value[i] = 0.0;
    nonzero.clear();
    if (value.size() != m) value.assign(m, 0.0);
  }
  void push(std::uint32_t i, double v) {
    value[i] = v;
    nonzero.push_back(i);
  }
};

/// Read-only view of one sparse basis column: (row, value) pairs.
struct SparseColumnView {
  const std::uint32_t* rows = nullptr;
  const double* vals = nullptr;
  std::size_t nnz = 0;
};

/// LU-factored simplex basis with an eta-update file.
///
/// Position space: basis position k holds the k-th basic variable, i.e.
/// column k of B; row space: the constraint rows.  ftran maps a row-space
/// right-hand side to a position-space result, btran the reverse.
class BasisLu {
 public:
  /// Factorize the m x m basis whose k-th column is `columns[k]`.  Discards
  /// any eta file.  Returns false if the basis is numerically singular (the
  /// previous factorization is then invalid).
  bool factorize(std::size_t m, const std::vector<SparseColumnView>& columns);

  /// Solve B x = a in place: on entry `x` holds a row-space right-hand side,
  /// on exit the position-space solution (nonzero list maintained).
  void ftran(ScatteredVector& x);

  /// Solve B^T y = c in place: on entry `x` holds a position-space cost
  /// vector, on exit the row-space duals (nonzero list maintained).
  void btran(ScatteredVector& x);

  /// Append the product-form eta for a pivot that replaces the basic
  /// variable at position `leave_pos`, where `w` = ftran(entering column).
  /// Returns false when |w[leave_pos]| is too small to update safely; the
  /// caller must refactorize (with the new basis) instead.
  bool update(std::size_t leave_pos, const ScatteredVector& w);

  std::size_t eta_count() const { return etas_.size(); }
  std::size_t dimension() const { return m_; }

  /// Total nonzeros in L + U of the last factorization (diagnostic).
  std::size_t factor_nonzeros() const;

 private:
  struct Eta {
    std::uint32_t pivot_pos;
    double pivot_value;                  ///< w[pivot_pos]
    std::vector<std::uint32_t> idx;      ///< other positions with w != 0
    std::vector<double> val;             ///< w at those positions
  };

  std::size_t m_ = 0;
  // Elimination step k pivoted on (row pivot_row_[k], column pivot_col_[k]).
  std::vector<std::uint32_t> pivot_row_;
  std::vector<std::uint32_t> pivot_col_;
  std::vector<double> diag_;  ///< U diagonal per step
  // L column per step: multipliers at still-active original rows.
  std::vector<std::vector<std::uint32_t>> lrows_;
  std::vector<std::vector<double>> lvals_;
  // U row per step: entries at still-active original columns (excl. diag).
  std::vector<std::vector<std::uint32_t>> ucols_;
  std::vector<std::vector<double>> uvals_;
  std::vector<std::uint32_t> step_of_row_;  ///< inverse of pivot_row_
  std::vector<std::uint32_t> step_of_col_;  ///< inverse of pivot_col_
  // Transposed factors, indexed by step: U by column and L^T by row.  The
  // backward substitutions run push-style over these so that a sparse
  // right-hand side only touches the steps it actually reaches (the forward
  // substitutions already skip zero positions on the row-wise factors).
  std::vector<std::vector<std::uint32_t>> utrans_step_;
  std::vector<std::vector<double>> utrans_val_;
  std::vector<std::vector<std::uint32_t>> ltrans_step_;
  std::vector<std::vector<double>> ltrans_val_;

  std::vector<Eta> etas_;

  /// Deduplicate a nonzero list and drop exact zeros, so callers can treat
  /// it as an exact support set (e.g. for delta updates of xb).
  void compact_nonzeros(ScatteredVector& x);

  // Solve workspaces (sized m_), reused across calls.
  std::vector<double> work_;
  std::vector<char> flag_;

  // Factorization workspace, reused across refactorizations so a periodic
  // refactor costs no per-column allocations (the inner vectors keep their
  // capacity between calls).
  struct FactorWorkspace {
    std::vector<std::vector<std::uint32_t>> crows;
    std::vector<std::vector<double>> cvals;
    std::vector<std::vector<std::uint32_t>> row_cols;
    std::vector<std::uint32_t> row_count;
    std::vector<double> colmax;
    std::vector<char> row_active, col_active;
    std::vector<std::int64_t> epos;
    std::vector<std::size_t> bucket_head, bnext, bprev, bkey;
  };
  FactorWorkspace fw_;
};

}  // namespace bt
