#pragma once

// Exact tableau simplex over the rationals.
//
// Validation-grade solver for small programs of the form
//   maximize c.x  subject to  A x <= b,  x >= 0,  b >= 0,
// i.e. the shape of the master programs in this repository.  Bland's rule
// guarantees termination; all arithmetic is exact (bt::Rational), so the
// result certifies the floating-point revised simplex in the tests, echoing
// the paper's "solve over the rationals with Maple/MuPAD".
//
// Dense tableau, O(rows * cols) per pivot: intended for the test-suite's
// small instances, not for production solves.

#include <vector>

#include "lp/rational.hpp"

namespace bt {

struct ExactLp {
  /// Dense constraint matrix, rows x cols.
  std::vector<std::vector<Rational>> a;
  std::vector<Rational> b;  ///< right-hand sides, must be >= 0
  std::vector<Rational> c;  ///< objective (maximized)
};

enum class ExactStatus { kOptimal, kUnbounded };

struct ExactSolution {
  ExactStatus status = ExactStatus::kOptimal;
  Rational objective;
  std::vector<Rational> x;
  /// Optimal duals, one per constraint row (the reduced costs of the slack
  /// columns in the final tableau): y >= 0 and b^T y = c^T x exactly.
  std::vector<Rational> duals;
  std::size_t pivots = 0;
};

/// Solve `lp` exactly.  Throws bt::Error on malformed input (ragged matrix,
/// negative rhs).
ExactSolution solve_exact_lp(const ExactLp& lp);

}  // namespace bt
