#include "lp/lp_problem.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.hpp"

namespace bt {

std::size_t LpProblem::add_variable(double objective_coeff, std::string name) {
  objective_coeff_.push_back(objective_coeff);
  if (name.empty()) name = "x" + std::to_string(objective_coeff_.size() - 1);
  names_.push_back(std::move(name));
  return objective_coeff_.size() - 1;
}

std::size_t LpProblem::add_constraint(const std::vector<LpTerm>& terms, RowSense sense,
                                      double rhs) {
  // Merge duplicate variables so the simplex sees clean columns.
  std::map<std::size_t, double> merged;
  for (const LpTerm& t : terms) {
    BT_REQUIRE(t.var < num_variables(), "LpProblem::add_constraint: unknown variable");
    merged[t.var] += t.coeff;
  }
  Row row;
  row.sense = sense;
  row.rhs = rhs;
  row.terms.reserve(merged.size());
  for (const auto& [var, coeff] : merged) {
    if (coeff != 0.0) row.terms.push_back(LpTerm{var, coeff});
  }
  rows_.push_back(std::move(row));
  return rows_.size() - 1;
}

double LpProblem::objective_coeff(std::size_t var) const {
  BT_REQUIRE(var < num_variables(), "LpProblem::objective_coeff: unknown variable");
  return objective_coeff_[var];
}

const std::string& LpProblem::variable_name(std::size_t var) const {
  BT_REQUIRE(var < num_variables(), "LpProblem::variable_name: unknown variable");
  return names_[var];
}

const LpProblem::Row& LpProblem::row(std::size_t i) const {
  BT_REQUIRE(i < rows_.size(), "LpProblem::row: unknown row");
  return rows_[i];
}

double LpProblem::objective_value(const std::vector<double>& x) const {
  BT_REQUIRE(x.size() == num_variables(), "LpProblem::objective_value: size mismatch");
  double v = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) v += objective_coeff_[i] * x[i];
  return v;
}

double LpProblem::max_violation(const std::vector<double>& x) const {
  BT_REQUIRE(x.size() == num_variables(), "LpProblem::max_violation: size mismatch");
  double worst = 0.0;
  for (double xi : x) worst = std::max(worst, -xi);  // x >= 0
  for (const Row& row : rows_) {
    double lhs = 0.0;
    for (const LpTerm& t : row.terms) lhs += t.coeff * x[t.var];
    switch (row.sense) {
      case RowSense::kLessEqual:
        worst = std::max(worst, lhs - row.rhs);
        break;
      case RowSense::kGreaterEqual:
        worst = std::max(worst, row.rhs - lhs);
        break;
      case RowSense::kEqual:
        worst = std::max(worst, std::abs(lhs - row.rhs));
        break;
    }
  }
  return worst;
}

}  // namespace bt
