#pragma once

// Two-phase revised simplex over a sparse LU-factored basis.
//
// Solves LpProblem instances (non-negative variables, <=/>=/= rows).  The
// production engine keeps the basis in sparse LU form (basis_lu.hpp) with
// product-form eta updates between periodic refactorizations, prices with a
// cyclic candidate-list (partial) pricing rule plus a Bland's-rule fallback
// against cycling, and uses a two-phase start (artificial variables
// minimized first).  The previous dense-inverse engine is retained as
// LpEngine::kDenseReference for benchmarking and differential testing.
//
// IncrementalSimplex exposes the engine statefully for column generation:
// columns can be appended to a standing model, and each re-solve continues
// from the current basis, factorization and duals instead of rebuilding.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "lp/lp_problem.hpp"

namespace bt {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

/// Human-readable status name.
std::string to_string(LpStatus status);

/// Which simplex core services a solve.
enum class LpEngine {
  kSparse,          ///< sparse LU basis + eta updates (production)
  kDenseReference,  ///< dense basis inverse (reference / benchmarking)
};

struct SimplexOptions {
  double tolerance = 1e-9;        ///< feasibility / optimality tolerance
  std::size_t max_iterations = 0; ///< 0 = automatic (scales with problem size)
  /// Refactorize the basis from scratch every this many pivots (between
  /// refactorizations the sparse engine accumulates eta updates).
  std::size_t refactor_period = 64;
  /// Optional warm-start basis (labels from a previous LpSolution::basis on
  /// a problem with the same rows; extra columns may have been added since).
  /// Honored only when the labeled basis is primal feasible and the problem
  /// needs no artificials; silently ignored otherwise.
  const std::vector<std::size_t>* warm_basis = nullptr;
  LpEngine engine = LpEngine::kSparse;
};

/// Basis label encoding for warm starts: structural variable j is labeled j;
/// the slack of row i is labeled kSlackLabelBase - i.
inline constexpr std::size_t kSlackLabelBase = static_cast<std::size_t>(-2);

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  /// Objective value in the problem's own sense (max or min).
  double objective = 0.0;
  /// Primal values of the structural variables.
  std::vector<double> x;
  /// Dual values (one per constraint row); sign convention: for a maximize
  /// problem duals of binding <= rows are >= 0.
  std::vector<double> duals;
  /// Basis labels (one per row) for warm-starting a related problem; empty
  /// when a row's basic variable has no stable label (e.g. an artificial).
  std::vector<std::size_t> basis;
  std::size_t iterations = 0;
};

/// Solve `problem` with the revised simplex method.
LpSolution solve_lp(const LpProblem& problem, const SimplexOptions& options = {});

namespace detail {
class SparseSimplexCore;
}  // namespace detail

/// Stateful sparse simplex for column generation: the model, basis and
/// factorization persist across solves, and columns can be appended without
/// rebuilding.  Usage pattern:
///
///   IncrementalSimplex master(lp);            // rows fixed here
///   auto sol = master.solve();                // full two-phase solve
///   master.add_column(coeff, {{row, a}, ...});
///   sol = master.solve();                     // re-optimizes from the
///                                             // standing basis and duals
///
/// add_column requires that no rows were dropped as redundant during a prior
/// solve (never the case for pure <= programs such as the packing masters).
class IncrementalSimplex {
 public:
  explicit IncrementalSimplex(const LpProblem& problem, const SimplexOptions& options = {});
  ~IncrementalSimplex();
  IncrementalSimplex(IncrementalSimplex&&) noexcept;
  IncrementalSimplex& operator=(IncrementalSimplex&&) noexcept;

  /// Append a structural variable x >= 0 with objective coefficient
  /// `objective_coeff` (in the problem's own sense) and coefficients `terms`
  /// on the existing constraint rows ({row index, coefficient}; duplicate
  /// rows are summed).  Returns the variable's index in LpSolution::x.  The
  /// current basis stays valid (the new column enters non-basic at zero).
  std::size_t add_column(double objective_coeff, const std::vector<LpTerm>& terms);

  /// Number of structural variables currently in the model.
  std::size_t num_variables() const;

  /// Solve or re-optimize.  The first call runs the full two-phase method;
  /// subsequent calls continue from the current basis (phase 2 only, since
  /// appending columns never destroys primal feasibility).
  LpSolution solve();

 private:
  std::unique_ptr<detail::SparseSimplexCore> core_;
};

}  // namespace bt
