#pragma once

// Two-phase revised simplex over a sparse LU-factored basis.
//
// Solves LpProblem instances (non-negative variables, <=/>=/= rows).  The
// production engine keeps the basis in sparse LU form (basis_lu.hpp) with
// Forrest-Tomlin updates between periodic refactorizations (product-form
// etas remain selectable for differential testing), solves its triangular
// systems with hypersparse reach-set traversal (BasisLu::SolveMode), prices
// with Devex reference weights over a cyclic candidate-list window (primal)
// and dual steepest-edge row selection (dual) -- Dantzig / most-infeasible
// remain selectable for A/B runs -- plus a Bland's-rule fallback against
// cycling, and uses a two-phase start (artificial variables minimized
// first).  The previous dense-inverse engine is retained as
// LpEngine::kDenseReference for benchmarking and differential testing.
//
// Besides the primal method the sparse engine carries a dual simplex phase
// (two-pass Harris-style ratio test): starting from a dual-feasible basis
// it drives negative basic values out of the solution, which is how a
// re-optimization after appended rows proceeds.
//
// IncrementalSimplex exposes the engine statefully for column and row
// generation: columns can be appended to a standing model (column
// generation) and constraint rows can be appended to it (cutting planes);
// each re-solve continues from the current basis, factorization and duals
// instead of rebuilding.  Appended rows keep the standing basis dual
// feasible (the new slack is basic, the old duals still price every
// column), so reoptimize_dual() needs only a handful of dual pivots where
// a cold solve would redo the whole optimization.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "lp/basis_lu.hpp"
#include "lp/engine_stats.hpp"
#include "lp/lp_problem.hpp"

namespace bt {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

/// Human-readable status name.
std::string to_string(LpStatus status);

/// Which simplex core services a solve.
enum class LpEngine {
  kSparse,          ///< sparse LU basis + Forrest-Tomlin updates (production)
  kDenseReference,  ///< dense basis inverse (reference / benchmarking)
};

/// Entering-column rule of the primal simplex (sparse engine).
enum class PricingRule {
  kDantzig,  ///< most negative reduced cost within the candidate window
  kDevex,    ///< best d_j^2 / w_j under Devex reference weights (production)
};

/// Leaving-row rule of the dual simplex (sparse engine).
enum class DualRowRule {
  kMostInfeasible,  ///< most negative basic value (pre-PR-5 behavior)
  kDevex,           ///< best xb_r^2 / gamma_r, Devex max-form weight updates
  kSteepestEdge,    ///< exact Forrest-Goldfarb weights via an extra FTRAN
                    ///< per pivot (production)
};

std::string to_string(PricingRule rule);
std::string to_string(DualRowRule rule);

struct SimplexOptions {
  double tolerance = 1e-9;        ///< feasibility / optimality tolerance
  std::size_t max_iterations = 0; ///< 0 = automatic (scales with problem size)
  /// Refactorize the basis from scratch every this many pivots (between
  /// refactorizations the sparse engine updates the factors in place).
  std::size_t refactor_period = 64;
  /// Optional warm-start basis (labels from a previous LpSolution::basis on
  /// a problem with the same rows; extra columns may have been added since).
  /// Honored only when the labeled basis is primal feasible and the problem
  /// needs no artificials; silently ignored otherwise.
  const std::vector<std::size_t>* warm_basis = nullptr;
  LpEngine engine = LpEngine::kSparse;
  /// Basis-update strategy of the sparse engine between refactorizations.
  /// Forrest-Tomlin keeps the factors short; the product-form eta file is
  /// retained for differential testing (see BasisLu::UpdateMode).
  BasisLu::UpdateMode update_mode = BasisLu::UpdateMode::kForrestTomlin;
  /// Triangular-solve strategy: hypersparse reach-set traversal (default)
  /// or the all-m full sweep (reference; see BasisLu::SolveMode).
  BasisLu::SolveMode solve_mode = BasisLu::SolveMode::kReachSet;
  /// Pricing rules of the sparse engine.  The Devex / steepest-edge weight
  /// maintenance rides the hypersparse kernels (one extra unit BTRAN per
  /// primal pivot, one extra FTRAN per dual steepest-edge pivot) and resets
  /// its reference framework on every refactorization as a drift safeguard.
  PricingRule pricing = PricingRule::kDevex;
  DualRowRule dual_row_rule = DualRowRule::kSteepestEdge;
  /// Collect per-call FTRAN/BTRAN wall-clock into the engine stats (the
  /// structural reach counters are always collected).
  bool collect_kernel_timing = false;
  /// When set, solve_lp() accumulates the solve's LpEngineStats here
  /// (sparse engine only; the dense reference engine records nothing).
  LpEngineStats* stats = nullptr;
};

/// Basis label encoding for warm starts: structural variable j is labeled j;
/// the slack of row i is labeled kSlackLabelBase - i.
inline constexpr std::size_t kSlackLabelBase = static_cast<std::size_t>(-2);

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  /// Objective value in the problem's own sense (max or min).
  double objective = 0.0;
  /// Primal values of the structural variables.
  std::vector<double> x;
  /// Dual values (one per constraint row); sign convention: for a maximize
  /// problem duals of binding <= rows are >= 0.
  std::vector<double> duals;
  /// Basis labels (one per row) for warm-starting a related problem; empty
  /// when a row's basic variable has no stable label (e.g. an artificial).
  std::vector<std::size_t> basis;
  std::size_t iterations = 0;
};

/// Solve `problem` with the revised simplex method.
LpSolution solve_lp(const LpProblem& problem, const SimplexOptions& options = {});

namespace detail {
class SparseSimplexCore;
}  // namespace detail

/// Stateful sparse simplex for column and row generation: the model, basis
/// and factorization persist across solves; columns and constraint rows can
/// be appended without rebuilding.  Usage pattern:
///
///   IncrementalSimplex master(lp);
///   auto sol = master.solve();                // full two-phase solve
///   master.add_column(coeff, {{row, a}, ...});
///   sol = master.solve();                     // re-optimizes from the
///                                             // standing basis and duals
///   master.append_row({{var, a}, ...}, RowSense::kLessEqual, rhs);
///   sol = master.reoptimize_dual();           // dual pivots from the
///                                             // standing (dual-feasible)
///                                             // basis restore feasibility
///
/// add_column and append_row require that no rows were dropped as redundant
/// during a prior solve (never the case for pure <= programs such as the
/// packing and cutting-plane masters).
class IncrementalSimplex {
 public:
  explicit IncrementalSimplex(const LpProblem& problem, const SimplexOptions& options = {});
  ~IncrementalSimplex();
  IncrementalSimplex(IncrementalSimplex&&) noexcept;
  IncrementalSimplex& operator=(IncrementalSimplex&&) noexcept;

  /// Append a structural variable x >= 0 with objective coefficient
  /// `objective_coeff` (in the problem's own sense) and coefficients `terms`
  /// on the existing constraint rows ({row index, coefficient}; duplicate
  /// rows are summed).  Returns the variable's index in LpSolution::x.  The
  /// current basis stays valid (the new column enters non-basic at zero).
  std::size_t add_column(double objective_coeff, const std::vector<LpTerm>& terms);

  /// Append a constraint row over the existing structural variables
  /// ({variable index, coefficient}; duplicates are summed).  Supports <=
  /// and >= rows (a >= row is negated into a <= row internally); equality
  /// rows are rejected -- append the two inequalities instead.  Returns the
  /// row's index in LpSolution::duals.  The row is merged lazily at the
  /// next solve / reoptimize_dual / add_column call; its slack enters the
  /// basis, so an optimal standing basis stays dual feasible and only
  /// primal feasibility needs repair (see reoptimize_dual).
  std::size_t append_row(const std::vector<LpTerm>& terms, RowSense sense, double rhs);

  /// Change the right-hand side of an existing row (in the sense the row
  /// was stated: a >= row keeps >= semantics).  The standing basis keeps
  /// its reduced costs, so dual feasibility is preserved and
  /// reoptimize_dual() re-optimizes with a handful of dual pivots -- the
  /// textbook use of the dual simplex for rhs ranging.
  void set_row_rhs(std::size_t row, double rhs);

  /// Number of structural variables currently in the model.
  std::size_t num_variables() const;
  /// Number of constraint rows currently in the model (appended included).
  std::size_t num_rows() const;

  /// Solve or re-optimize.  The first call runs the full two-phase method;
  /// subsequent calls continue from the current basis.  If appended rows
  /// made the standing point primal infeasible, a dual simplex phase runs
  /// first (the basis is dual feasible when the previous solve was optimal),
  /// then the primal cleans up.
  LpSolution solve();

  /// Re-optimize after append_row / set_row_rhs calls via the dual
  /// simplex: restore primal feasibility with dual pivots from the
  /// standing basis, then finish with primal pivots.  The dual phase is
  /// cheap when the previous solve ended kOptimal (the basis is then dual
  /// feasible); otherwise it still terminates and the primal phase
  /// restores optimality.  Equivalent to solve(); the name documents the
  /// intended usage pattern.
  LpSolution reoptimize_dual();

  /// Hypersparsity / pricing diagnostics accumulated over the engine's
  /// lifetime (FTRAN/BTRAN reach fractions, pivot and refactorization
  /// counts, pricing mode; see engine_stats.hpp).
  LpEngineStats engine_stats() const;

 private:
  std::unique_ptr<detail::SparseSimplexCore> core_;
};

}  // namespace bt
