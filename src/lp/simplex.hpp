#pragma once

// Two-phase dense revised simplex.
//
// Solves LpProblem instances (non-negative variables, <=/>=/= rows).  The
// implementation keeps an explicit dense basis inverse, refreshed from
// scratch periodically for numerical hygiene, uses Dantzig pricing with a
// Bland's-rule fallback against cycling, and a two-phase start (artificial
// variables minimized first).  Problem sizes in this repository stay in the
// hundreds-to-low-thousands of rows, where a dense inverse is both simple
// and fast.

#include <cstddef>
#include <string>
#include <vector>

#include "lp/lp_problem.hpp"

namespace bt {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

/// Human-readable status name.
std::string to_string(LpStatus status);

struct SimplexOptions {
  double tolerance = 1e-9;        ///< feasibility / optimality tolerance
  std::size_t max_iterations = 0; ///< 0 = automatic (scales with problem size)
  /// Recompute the basis inverse from scratch every this many pivots.
  std::size_t refactor_period = 128;
  /// Optional warm-start basis (labels from a previous LpSolution::basis on
  /// a problem with the same rows; extra columns may have been added since).
  /// Honored only when the labeled basis is primal feasible and the problem
  /// needs no artificials; silently ignored otherwise.
  const std::vector<std::size_t>* warm_basis = nullptr;
};

/// Basis label encoding for warm starts: structural variable j is labeled j;
/// the slack of row i is labeled kSlackLabelBase - i.
inline constexpr std::size_t kSlackLabelBase = static_cast<std::size_t>(-2);

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  /// Objective value in the problem's own sense (max or min).
  double objective = 0.0;
  /// Primal values of the structural variables.
  std::vector<double> x;
  /// Dual values (one per constraint row); sign convention: for a maximize
  /// problem duals of binding <= rows are >= 0.
  std::vector<double> duals;
  /// Basis labels (one per row) for warm-starting a related problem; empty
  /// when a row's basic variable has no stable label (e.g. an artificial).
  std::vector<std::size_t> basis;
  std::size_t iterations = 0;
};

/// Solve `problem` with the revised simplex method.
LpSolution solve_lp(const LpProblem& problem, const SimplexOptions& options = {});

}  // namespace bt
