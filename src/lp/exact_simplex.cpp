#include "lp/exact_simplex.hpp"

#include "util/error.hpp"

namespace bt {

ExactSolution solve_exact_lp(const ExactLp& lp) {
  const std::size_t m = lp.a.size();
  BT_REQUIRE(lp.b.size() == m, "solve_exact_lp: rhs arity mismatch");
  const std::size_t n = lp.c.size();
  for (const auto& row : lp.a) {
    BT_REQUIRE(row.size() == n, "solve_exact_lp: ragged constraint matrix");
  }
  for (const Rational& bi : lp.b) {
    BT_REQUIRE(bi >= Rational(0), "solve_exact_lp: negative rhs not supported");
  }

  // Tableau layout: columns [structural | slacks | rhs]; last row is the
  // objective (reduced costs, maximization => entering columns have
  // positive row entries after negation convention below).
  const std::size_t cols = n + m + 1;
  std::vector<std::vector<Rational>> t(m + 1, std::vector<Rational>(cols, Rational(0)));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) t[i][j] = lp.a[i][j];
    t[i][n + i] = Rational(1);
    t[i][cols - 1] = lp.b[i];
  }
  for (std::size_t j = 0; j < n; ++j) t[m][j] = -lp.c[j];  // min row of -c

  std::vector<std::size_t> basis(m);
  for (std::size_t i = 0; i < m; ++i) basis[i] = n + i;

  ExactSolution solution;
  while (true) {
    // Bland: smallest-index column with negative objective-row entry.
    std::size_t entering = cols;
    for (std::size_t j = 0; j + 1 < cols; ++j) {
      if (t[m][j] < Rational(0)) {
        entering = j;
        break;
      }
    }
    if (entering == cols) break;  // optimal

    // Ratio test, ties broken by smallest basis variable (Bland).
    std::size_t leaving = m;
    Rational best_ratio;
    for (std::size_t i = 0; i < m; ++i) {
      if (t[i][entering] > Rational(0)) {
        const Rational ratio = t[i][cols - 1] / t[i][entering];
        if (leaving == m || ratio < best_ratio ||
            (ratio == best_ratio && basis[i] < basis[leaving])) {
          best_ratio = ratio;
          leaving = i;
        }
      }
    }
    if (leaving == m) {
      solution.status = ExactStatus::kUnbounded;
      return solution;
    }

    // Pivot.
    const Rational pivot = t[leaving][entering];
    for (std::size_t j = 0; j < cols; ++j) t[leaving][j] /= pivot;
    for (std::size_t i = 0; i <= m; ++i) {
      if (i == leaving || t[i][entering].is_zero()) continue;
      const Rational factor = t[i][entering];
      for (std::size_t j = 0; j < cols; ++j) {
        t[i][j] -= factor * t[leaving][j];
      }
    }
    basis[leaving] = entering;
    ++solution.pivots;
  }

  solution.x.assign(n, Rational(0));
  for (std::size_t i = 0; i < m; ++i) {
    if (basis[i] < n) solution.x[basis[i]] = t[i][cols - 1];
  }
  solution.objective = Rational(0);
  for (std::size_t j = 0; j < n; ++j) solution.objective += lp.c[j] * solution.x[j];
  // Duals: the objective-row entries of the slack columns (y = c_B B^{-1}).
  solution.duals.assign(m, Rational(0));
  for (std::size_t i = 0; i < m; ++i) solution.duals[i] = t[m][n + i];
  return solution;
}

}  // namespace bt
