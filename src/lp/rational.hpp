#pragma once

// Exact rational arithmetic.
//
// The paper solves its linear program "over the rationals, using standard
// tools such as Maple or MuPAD".  Our production simplex uses doubles; this
// module provides overflow-checked 64-bit rationals and backs an exact
// tableau simplex (exact_simplex.hpp) used by the test-suite to certify the
// floating-point solver on randomly generated programs.

#include <cstdint>
#include <iosfwd>

namespace bt {

/// Rational number num/den with den > 0, always kept in lowest terms.
/// Arithmetic throws bt::Error on signed-64-bit overflow (intermediates are
/// computed in 128 bits, so overflow means the *result* does not fit).
class Rational {
 public:
  Rational() = default;
  Rational(std::int64_t value) : num_(value) {}  // NOLINT: implicit by design
  Rational(std::int64_t num, std::int64_t den);

  std::int64_t num() const { return num_; }
  std::int64_t den() const { return den_; }

  Rational operator-() const;
  Rational operator+(const Rational& other) const;
  Rational operator-(const Rational& other) const;
  Rational operator*(const Rational& other) const;
  Rational operator/(const Rational& other) const;
  Rational& operator+=(const Rational& other) { return *this = *this + other; }
  Rational& operator-=(const Rational& other) { return *this = *this - other; }
  Rational& operator*=(const Rational& other) { return *this = *this * other; }
  Rational& operator/=(const Rational& other) { return *this = *this / other; }

  bool operator==(const Rational& other) const;
  bool operator!=(const Rational& other) const { return !(*this == other); }
  bool operator<(const Rational& other) const;
  bool operator<=(const Rational& other) const;
  bool operator>(const Rational& other) const { return other < *this; }
  bool operator>=(const Rational& other) const { return other <= *this; }

  bool is_zero() const { return num_ == 0; }
  int sign() const { return num_ > 0 ? 1 : (num_ < 0 ? -1 : 0); }

  double to_double() const;

 private:
  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace bt
