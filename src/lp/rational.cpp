#include "lp/rational.hpp"

#include <numeric>
#include <ostream>

#include "util/error.hpp"

namespace bt {

namespace {

using Wide = __int128;

std::int64_t narrow(Wide value) {
  BT_REQUIRE(value <= INT64_MAX && value >= INT64_MIN,
             "Rational: 64-bit overflow");
  return static_cast<std::int64_t>(value);
}

Wide wide_gcd(Wide a, Wide b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const Wide t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

Rational::Rational(std::int64_t num, std::int64_t den) {
  BT_REQUIRE(den != 0, "Rational: zero denominator");
  if (den < 0) {
    num = -num;
    den = -den;
  }
  const std::int64_t g = std::gcd(num, den);
  num_ = g == 0 ? 0 : num / g;
  den_ = g == 0 ? 1 : den / g;
}

Rational Rational::operator-() const {
  Rational r;
  r.num_ = -num_;
  r.den_ = den_;
  return r;
}

Rational Rational::operator+(const Rational& other) const {
  const Wide num = Wide(num_) * other.den_ + Wide(other.num_) * den_;
  const Wide den = Wide(den_) * other.den_;
  const Wide g = wide_gcd(num, den);
  if (g == 0) return Rational(0);
  Rational r;
  r.num_ = narrow(num / g);
  r.den_ = narrow(den / g);
  return r;
}

Rational Rational::operator-(const Rational& other) const { return *this + (-other); }

Rational Rational::operator*(const Rational& other) const {
  // Cross-reduce before multiplying to keep intermediates small.
  const Wide g1 = wide_gcd(num_, other.den_);
  const Wide g2 = wide_gcd(other.num_, den_);
  const Wide a = g1 == 0 ? 0 : Wide(num_) / g1;
  const Wide b = g2 == 0 ? 0 : Wide(other.num_) / g2;
  const Wide c = g2 == 0 ? Wide(den_) : Wide(den_) / g2;
  const Wide d = g1 == 0 ? Wide(other.den_) : Wide(other.den_) / g1;
  Rational r;
  r.num_ = narrow(a * b);
  r.den_ = narrow(c * d);
  if (r.num_ == 0) r.den_ = 1;
  return r;
}

Rational Rational::operator/(const Rational& other) const {
  BT_REQUIRE(!other.is_zero(), "Rational: division by zero");
  Rational inverse;
  if (other.num_ < 0) {
    inverse.num_ = -other.den_;
    inverse.den_ = -other.num_;
  } else {
    inverse.num_ = other.den_;
    inverse.den_ = other.num_;
  }
  return *this * inverse;
}

bool Rational::operator==(const Rational& other) const {
  return num_ == other.num_ && den_ == other.den_;
}

bool Rational::operator<(const Rational& other) const {
  return Wide(num_) * other.den_ < Wide(other.num_) * den_;
}

bool Rational::operator<=(const Rational& other) const {
  return Wide(num_) * other.den_ <= Wide(other.num_) * den_;
}

double Rational::to_double() const {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  os << r.num();
  if (r.den() != 1) os << '/' << r.den();
  return os;
}

}  // namespace bt
