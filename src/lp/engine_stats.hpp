#pragma once

// Hypersparsity / pricing diagnostics of the sparse LP engine.
//
// BasisLu fills the FTRAN/BTRAN counters (calls, elimination steps actually
// visited by the reach-set traversal vs the factor dimension, and optional
// wall-clock when timing collection is on); SparseSimplexCore adds pivot and
// refactorization counts plus the pricing mode it ran under.  The struct is
// additive: accumulate() merges the stats of several solves or several
// standing masters, which is how the SSB solvers aggregate their value +
// stable masters into one SsbSolution::lp_stats record for BENCH_lp.json.

#include <cstdint>
#include <string>

namespace bt {

struct LpEngineStats {
  // ---- BasisLu solve kernels ----
  std::uint64_t ftran_calls = 0;
  std::uint64_t btran_calls = 0;
  /// Elimination steps processed across all FTRAN/BTRAN calls.  Under the
  /// reach-set mode this is the Gilbert-Peierls reach (the structural
  /// nonzero closure of the right-hand side); under the full sweep it is the
  /// factor dimension per call.
  std::uint64_t ftran_reach_steps = 0;
  std::uint64_t btran_reach_steps = 0;
  /// Factor dimension summed over calls (the full-sweep step count), i.e.
  /// the denominator of the reach fractions.
  std::uint64_t ftran_dim_steps = 0;
  std::uint64_t btran_dim_steps = 0;
  /// Wall-clock inside the kernels; stays 0 unless timing collection was
  /// requested (SimplexOptions::collect_kernel_timing).
  std::uint64_t ftran_ns = 0;
  std::uint64_t btran_ns = 0;

  // ---- simplex layer ----
  std::uint64_t primal_pivots = 0;
  std::uint64_t dual_pivots = 0;
  std::uint64_t refactorizations = 0;
  std::uint64_t pricing_weight_resets = 0;  ///< Devex / steepest-edge resets

  // ---- incremental (standing-master) layer ----
  // Model-delta traffic of an IncrementalSimplex over its lifetime: how a
  // standing master was grown and re-ranged between re-solves.  Planner
  // sessions surface these so a service operator can see whether re-plans
  // ride warm deltas (rows/columns appended, rhs updates) or cold rebuilds.
  std::uint64_t rows_appended = 0;
  std::uint64_t columns_appended = 0;
  std::uint64_t rhs_updates = 0;
  /// Pricing configuration the solves ran under ("dantzig", "devex", ...;
  /// set by the owning engine, last writer wins on accumulate).
  std::string pricing_mode;

  /// Mean fraction of the factor dimension actually visited per FTRAN
  /// (1.0 = dense-equivalent work, small = hypersparse).
  double ftran_reach_fraction() const {
    return ftran_dim_steps == 0
               ? 0.0
               : static_cast<double>(ftran_reach_steps) / static_cast<double>(ftran_dim_steps);
  }
  double btran_reach_fraction() const {
    return btran_dim_steps == 0
               ? 0.0
               : static_cast<double>(btran_reach_steps) / static_cast<double>(btran_dim_steps);
  }
  double ftran_ns_per_call() const {
    return ftran_calls == 0 ? 0.0
                            : static_cast<double>(ftran_ns) / static_cast<double>(ftran_calls);
  }
  double btran_ns_per_call() const {
    return btran_calls == 0 ? 0.0
                            : static_cast<double>(btran_ns) / static_cast<double>(btran_calls);
  }

  void accumulate(const LpEngineStats& other) {
    ftran_calls += other.ftran_calls;
    btran_calls += other.btran_calls;
    ftran_reach_steps += other.ftran_reach_steps;
    btran_reach_steps += other.btran_reach_steps;
    ftran_dim_steps += other.ftran_dim_steps;
    btran_dim_steps += other.btran_dim_steps;
    ftran_ns += other.ftran_ns;
    btran_ns += other.btran_ns;
    primal_pivots += other.primal_pivots;
    dual_pivots += other.dual_pivots;
    refactorizations += other.refactorizations;
    pricing_weight_resets += other.pricing_weight_resets;
    rows_appended += other.rows_appended;
    columns_appended += other.columns_appended;
    rhs_updates += other.rhs_updates;
    if (!other.pricing_mode.empty()) pricing_mode = other.pricing_mode;
  }
};

/// Wall-clock of the solver phases that fan out over the worker pool, next
/// to the serial master time they complement (SsbSolution::master_wall_ms).
/// The SSB solvers fill the phases they own -- the cutting plane its
/// per-destination max-flow separation, the packing solver its arborescence
/// pricing -- and record the pool width they ran at, so BENCH_lp.json's
/// in-solver scaling block can report where the threads actually went.
/// Additive like LpEngineStats: accumulate() merges several solves.
struct ParallelPhaseStats {
  /// Wall-clock inside the parallel separation oracle (all rounds).
  double separation_wall_ms = 0.0;
  /// Wall-clock inside the pricing oracle / column rebuild (all rounds).
  double pricing_wall_ms = 0.0;
  /// Worker threads the oracle pool exposed (1 = serial; max over merges).
  std::size_t oracle_threads = 0;

  void accumulate(const ParallelPhaseStats& other) {
    separation_wall_ms += other.separation_wall_ms;
    pricing_wall_ms += other.pricing_wall_ms;
    if (other.oracle_threads > oracle_threads) oracle_threads = other.oracle_threads;
  }
};

}  // namespace bt
