#include "sim/pipeline_simulator.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace bt {

namespace {

/// Job sequence of a sender: slice-major, children in tree order.  Job j of
/// node u transfers slice (j / deg) over u's (j % deg)-th tree arc.
struct NodeState {
  std::vector<EdgeId> child_arcs;       ///< tree arcs leaving this node
  std::size_t next_job = 0;             ///< next (slice, child) pair to start
  std::size_t slices_received = 0;      ///< prefix of slices fully received
  bool sending = false;                 ///< one-port: a transfer is in flight
  double cpu_free = 0.0;                ///< multi-port: CPU available time
};

struct Event {
  double time;
  enum Kind { kTransferComplete, kCpuFree } kind;
  NodeId node;       ///< sender for both kinds
  std::size_t job;   ///< job index (kTransferComplete only)

  bool operator>(const Event& other) const { return time > other.time; }
};

class Simulator {
 public:
  Simulator(const Platform& platform, const BroadcastTree& tree, std::size_t num_slices,
            SimModel model)
      : platform_(platform), num_slices_(num_slices), model_(model) {
    tree.validate(platform);
    const Digraph& g = platform.graph();
    nodes_.resize(g.num_nodes());
    const auto children = tree.children(platform);
    for (NodeId u = 0; u < g.num_nodes(); ++u) nodes_[u].child_arcs = children[u];
    nodes_[tree.root].slices_received = num_slices;  // the source holds everything
    link_free_.assign(g.num_edges(), 0.0);
    result_.received.assign(g.num_nodes(), std::vector<double>(num_slices, 0.0));
    root_ = tree.root;
  }

  SimResult run() {
    try_start(root_, 0.0);
    while (!events_.empty()) {
      const Event event = events_.top();
      events_.pop();
      dispatch(event);
    }
    finalize();
    return std::move(result_);
  }

 private:
  void dispatch(const Event& event) {
    NodeState& sender = nodes_[event.node];
    if (event.kind == Event::kCpuFree) {
      try_start(event.node, event.time);
      return;
    }
    // Transfer complete: the receiver now holds the slice.
    const std::size_t deg = sender.child_arcs.size();
    const std::size_t slice = event.job / deg;
    const EdgeId arc = sender.child_arcs[event.job % deg];
    const NodeId receiver = platform_.graph().to(arc);
    NodeState& recv = nodes_[receiver];
    BT_ASSERT(recv.slices_received == slice, "simulator: out-of-order slice delivery");
    recv.slices_received = slice + 1;
    result_.received[receiver][slice] = event.time;
    ++result_.transfers;
    if (model_ == SimModel::kOnePort) sender.sending = false;
    try_start(receiver, event.time);
    try_start(event.node, event.time);
  }

  /// Start as many of u's pending jobs as the model allows at time `now`.
  void try_start(NodeId u, double now) {
    NodeState& st = nodes_[u];
    const std::size_t deg = st.child_arcs.size();
    if (deg == 0) return;
    while (st.next_job < deg * num_slices_) {
      const std::size_t slice = st.next_job / deg;
      const EdgeId arc = st.child_arcs[st.next_job % deg];
      if (st.slices_received <= slice) return;  // slice not yet received
      if (model_ == SimModel::kOnePort) {
        if (st.sending) return;  // out port busy; retriggered on completion
        st.sending = true;
        const double done = now + platform_.edge_time(arc);
        events_.push(Event{done, Event::kTransferComplete, u, st.next_job});
        ++st.next_job;
        return;  // one transfer at a time
      }
      // Multi-port: needs the CPU (send overhead serializes) and the link.
      if (st.cpu_free > now) return;  // a kCpuFree event will retrigger
      if (link_free_[arc] > now) return;  // completion on that link retriggers
      const double overhead = platform_.send_overhead(u);
      st.cpu_free = now + overhead;
      const double done = now + platform_.edge_time(arc);
      link_free_[arc] = done;
      events_.push(Event{done, Event::kTransferComplete, u, st.next_job});
      if (overhead > 0.0) events_.push(Event{st.cpu_free, Event::kCpuFree, u, 0});
      ++st.next_job;
      if (overhead > 0.0) return;  // CPU busy until kCpuFree fires
    }
  }

  void finalize() {
    BT_ASSERT(result_.transfers == (nodes_.size() - 1) * num_slices_,
              "simulator: not all transfers executed (deadlock)");
    double first = 0.0, last = 0.0;
    for (NodeId v = 0; v < nodes_.size(); ++v) {
      if (v == root_) continue;
      first = std::max(first, result_.received[v].front());
      last = std::max(last, result_.received[v].back());
    }
    result_.first_slice_time = first;
    result_.completion_time = last;
    result_.end_to_end_throughput =
        last > 0.0 ? static_cast<double>(num_slices_) / last : 0.0;
    if (num_slices_ > 1 && last > first) {
      result_.steady_throughput = static_cast<double>(num_slices_ - 1) / (last - first);
    } else {
      result_.steady_throughput = result_.end_to_end_throughput;
    }
  }

  const Platform& platform_;
  std::size_t num_slices_;
  SimModel model_;
  NodeId root_ = 0;
  std::vector<NodeState> nodes_;
  std::vector<double> link_free_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  SimResult result_;
};

}  // namespace

SimResult simulate_pipelined_broadcast(const Platform& platform, const BroadcastTree& tree,
                                       std::size_t num_slices, SimModel model) {
  BT_REQUIRE(num_slices >= 1, "simulate_pipelined_broadcast: need at least one slice");
  Simulator sim(platform, tree, num_slices, model);
  return sim.run();
}

}  // namespace bt
