#pragma once

// Periodic-schedule replay: execute a synthesized PeriodicSchedule and
// measure the steady-state rate it actually achieves.
//
// This extends the tree simulator (pipeline_simulator.hpp) to multi-tree
// periodic schedules: the executor walks the schedule's rounds period by
// period -- the round boundaries are the events -- and moves tree traffic
// under the real precedence constraint that a node can only forward data it
// has fully received *before the current round started*.  The port model is
// enforced by construction (rounds are matchings; validate.hpp checks that
// statically), so what replay adds is the pipelining dynamics: a startup
// transient of one period per tree level, then -- if the schedule is
// consistent -- a steady state in which every node receives exactly
// slices_per_period slices per period.
//
// The measured steady-state rate is the binding check that schedule
// synthesis closed the loop: for a bidirectional-one-port SSB optimum it
// must converge to TP* (tests require >= 0.999 x), for a single-tree
// schedule to the tree's closed-form throughput.

#include <cstddef>
#include <vector>

#include "platform/platform.hpp"
#include "sched/periodic_schedule.hpp"

namespace bt {

struct ReplayOptions {
  /// Periods to run before the measurement window; 0 = automatic (max tree
  /// depth + 2, the worst-case pipeline fill plus slack).
  std::size_t warmup_periods = 0;
  /// Length of the measurement window, in periods.
  std::size_t measure_periods = 4;
};

struct ReplayResult {
  /// Worst per-node delivery rate over the measurement window (slices/s);
  /// the converged steady-state rate of the executed schedule.
  double steady_throughput = 0.0;
  /// Worst per-node end-to-end rate: total delivered / total time.
  double end_to_end_throughput = 0.0;
  /// First period index in which every non-root node received the full
  /// slices_per_period (the measured pipeline-fill transient).
  std::size_t transient_periods = 0;
  std::size_t periods = 0;   ///< periods simulated
  double total_time = 0.0;   ///< periods * schedule.period
  /// Total slices delivered to every node (root excluded from measurement).
  std::vector<double> delivered;
};

/// Execute `schedule` for warmup + measurement periods.  Throws bt::Error on
/// an empty or period-less schedule.
ReplayResult replay_schedule(const Platform& platform, const PeriodicSchedule& schedule,
                             const ReplayOptions& options = {});

}  // namespace bt
