#pragma once

// Discrete-event simulation of a pipelined broadcast along a tree.
//
// The closed-form throughput of throughput.hpp is a steady-state argument;
// the simulator executes the schedule slice by slice and measures what a
// real pipelined run achieves, including the fill and drain transients the
// steady-state analysis deliberately ignores.  It supports both platform
// models of the paper:
//
//  * one-port (bidirectional): a node forwards each slice to its children
//    sequentially, may receive from its parent while sending, and starts
//    forwarding a slice only after having received it completely;
//  * multi-port: per-transfer CPU overhead send_u serializes at the sender,
//    while link occupations T_{u,v} to different children may overlap; each
//    link carries one slice at a time.
//
// Nodes forward slices in increasing slice order, children in tree order
// (the same assumption the closed form makes).

#include <cstddef>
#include <vector>

#include "core/broadcast_tree.hpp"
#include "platform/platform.hpp"

namespace bt {

enum class SimModel { kOnePort, kMultiPort };

struct SimResult {
  /// Time the last node finished receiving the last slice.
  double completion_time = 0.0;
  /// Time the last node finished receiving the *first* slice (pipeline fill).
  double first_slice_time = 0.0;
  /// Steady-state throughput estimate: (num_slices - 1) / (completion_time -
  /// first_slice_time); equals num_slices when only one slice is simulated.
  double steady_throughput = 0.0;
  /// End-to-end throughput: num_slices / completion_time.
  double end_to_end_throughput = 0.0;
  /// Number of transfer events executed (n-1 arcs * num_slices).
  std::size_t transfers = 0;
  /// received[v][k]: time node v finished receiving slice k.
  std::vector<std::vector<double>> received;
};

/// Simulate the pipelined broadcast of `num_slices` slices along `tree`.
SimResult simulate_pipelined_broadcast(const Platform& platform, const BroadcastTree& tree,
                                       std::size_t num_slices,
                                       SimModel model = SimModel::kOnePort);

}  // namespace bt
