#include "sim/replay_session.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "graph/arborescence.hpp"
#include "util/error.hpp"

namespace bt {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

ReplaySession::ReplaySession(Platform platform, std::shared_ptr<const PeriodicSchedule> schedule)
    : platform_(std::move(platform)) {
  delivered_.assign(platform_.num_nodes(), 0.0);
  install(platform_, std::move(schedule), /*warm_handoff=*/false);
}

void ReplaySession::index_schedule() {
  const Digraph& g = platform_.graph();
  max_depth_ = 1;
  sorted_edges_.assign(schedule_->trees.size(), {});
  for (std::size_t t = 0; t < schedule_->trees.size(); ++t) {
    // Tree depths bound the pipeline-fill transient: data advances at least
    // one tree level per period (a node forwards what it held at round
    // start).
    const auto parent = parent_edge_array(g, schedule_->root, schedule_->trees[t].edges);
    const auto depth = node_depths(g, schedule_->root, parent);
    max_depth_ = std::max(max_depth_, *std::max_element(depth.begin(), depth.end()));
    sorted_edges_[t] = schedule_->trees[t].edges;
    std::sort(sorted_edges_[t].begin(), sorted_edges_[t].end());
  }
}

void ReplaySession::install(Platform platform, std::shared_ptr<const PeriodicSchedule> schedule,
                            bool warm_handoff) {
  BT_REQUIRE(schedule != nullptr, "ReplaySession: null schedule");
  BT_REQUIRE(schedule->period > 0.0, "ReplaySession: schedule has no period");
  BT_REQUIRE(!schedule->trees.empty(), "ReplaySession: schedule has no trees");
  BT_REQUIRE(schedule->slices_per_period > 0.0, "ReplaySession: schedule ships no slices");
  platform_ = std::move(platform);
  removed_.assign(platform_.num_edges(), 0);
  schedule_ = std::move(schedule);
  BT_REQUIRE(schedule_->root < platform_.num_nodes(),
             "ReplaySession: schedule root outside the platform");
  index_schedule();

  const std::size_t n = platform_.num_nodes();
  delivered_.resize(n, 0.0);
  have_.assign(schedule_->trees.size(), std::vector<double>(n, 0.0));
  shipped_.assign(schedule_->trees.size(), {});
  for (std::size_t t = 0; t < schedule_->trees.size(); ++t) {
    if (warm_handoff) {
      // Steady-state headroom: one period's worth of the tree's slices
      // buffered at every non-root node, so each arc can ship its full
      // amount in the first period while fresh slices flow in behind it.
      std::fill(have_[t].begin(), have_[t].end(), schedule_->trees[t].slices_per_period);
    }
    have_[t][schedule_->root] = kInf;
    shipped_[t].assign(sorted_edges_[t].size(), 0.0);
  }
}

void ReplaySession::set_platform(Platform platform, std::vector<char> removed) {
  BT_REQUIRE(platform.num_nodes() >= platform_.num_nodes(),
             "ReplaySession::set_platform: platform shrank");
  platform_ = std::move(platform);
  removed_ = std::move(removed);
  delivered_.resize(platform_.num_nodes(), 0.0);
  for (auto& have : have_) have.resize(platform_.num_nodes(), 0.0);
}

PeriodDelivery ReplaySession::run_period() {
  const Digraph& g = platform_.graph();
  const std::size_t n = platform_.num_nodes();
  std::vector<double> before = delivered_;

  for (const ScheduleRound& round : schedule_->rounds) {
    // Round-start snapshot semantics: compute every transfer's movable
    // amount first, apply afterwards -- nothing received during a round is
    // forwarded within it.
    moves_.clear();
    for (const ScheduleTransfer& transfer : round.transfers) {
      const NodeId u = g.from(transfer.arc);
      const auto& sorted = sorted_edges_[transfer.tree];
      const auto it = std::lower_bound(sorted.begin(), sorted.end(), transfer.arc);
      BT_REQUIRE(it != sorted.end() && *it == transfer.arc,
                 "ReplaySession: transfer over an arc not in its tree");
      const std::size_t slot = static_cast<std::size_t>(it - sorted.begin());
      const double available = have_[transfer.tree][u] - shipped_[transfer.tree][slot];
      double amount = std::min(transfer.amount, std::max(0.0, available));
      if (amount <= 0.0) continue;
      // Stale-schedule cap: only what the *live* arc time lets through in
      // this round's duration.  The 1e-9 relative guard keeps planned
      // amounts exact when the schedule is consistent with the platform.
      if (transfer.arc < removed_.size() && removed_[transfer.arc]) continue;
      const double live_time = platform_.edge_time(transfer.arc);
      if (live_time > 0.0) {
        const double allowed = round.duration / live_time;
        if (allowed < amount * (1.0 - 1e-9)) amount = std::max(0.0, allowed);
      }
      if (amount <= 0.0) continue;
      moves_.push_back({transfer.tree, slot, g.to(transfer.arc), amount});
    }
    for (const Move& move : moves_) {
      shipped_[move.tree][move.slot] += move.amount;
      have_[move.tree][move.to] += move.amount;
      delivered_[move.to] += move.amount;
    }
  }
  ++periods_run_;

  PeriodDelivery out;
  out.seconds = schedule_->period;
  out.designed_slices = schedule_->slices_per_period;
  out.delivered.assign(n, 0.0);
  out.min_delivered = kInf;
  for (NodeId v = 0; v < n; ++v) {
    if (v == schedule_->root) continue;
    out.delivered[v] = delivered_[v] - before[v];
    out.delivered_total += out.delivered[v];
    out.min_delivered = std::min(out.min_delivered, out.delivered[v]);
  }
  if (out.min_delivered == kInf) out.min_delivered = 0.0;
  const double promised = out.designed_slices * static_cast<double>(n > 0 ? n - 1 : 0);
  out.lost_slices = std::max(0.0, promised - out.delivered_total);
  return out;
}

}  // namespace bt
