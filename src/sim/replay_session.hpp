#pragma once

// Interruptible periodic-schedule replay with schedule hot-swap.
//
// replay_schedule (schedule_replay.hpp) executes one schedule start to
// finish on the platform it was built for.  The live-churn scenario engine
// (scenario/scenario_engine.hpp) needs the same executor, opened up along
// two axes:
//
//  * one period at a time, with per-period delivery counters -- the engine
//    interleaves periods with platform mutations and re-plans;
//  * against a *live* platform that may have drifted from the one the
//    schedule was planned on: every transfer is additionally capped by
//    what the current arc time lets through in its round
//    (duration / T_live), and a removed arc ships nothing.  That shortfall
//    is exactly the "bytes lost to a stale schedule" the scenario engine
//    measures.  A schedule consistent with the live platform is never
//    capped (the cap carries a 1e-9 relative guard so planned amounts are
//    not shaved by float division), so replay of an un-churned schedule is
//    arithmetically identical to replay_schedule, which is now a thin
//    wrapper over this class.
//
// Hot-swap: install() replaces the executing schedule at a period boundary.
// By default the handoff is *warm*: every non-root node starts with one
// period's worth of each new tree's slices buffered (the steady-state
// headroom -- in a broadcast, slices a node already holds under the old
// schedule are exactly what its new children still need), so the new
// schedule delivers at full rate from its first period and churn losses are
// attributed to stale periods, not to re-filling pipelines the platform
// never drained.  A cold install (warm_handoff = false) starts with empty
// pipelines and pays the fill transient of max tree depth periods --
// replay_schedule's startup behavior.
//
// Cumulative delivered counters persist across installs (grown to the new
// node count), so end-to-end delivered bytes integrate over the whole
// scenario.

#include <cstddef>
#include <memory>
#include <vector>

#include "platform/platform.hpp"
#include "sched/periodic_schedule.hpp"

namespace bt {

/// Delivery accounting of one executed period.
struct PeriodDelivery {
  double seconds = 0.0;         ///< the installed schedule's period length
  double designed_slices = 0.0; ///< slices_per_period the schedule promises each node
  /// Slices each node received during this period (root reads 0).
  std::vector<double> delivered;
  double delivered_total = 0.0;  ///< sum over non-root nodes
  double min_delivered = 0.0;    ///< worst non-root node
  /// Shortfall vs the promise: designed * receivers - delivered_total,
  /// clamped at 0 (a warm swap can briefly over-deliver buffered slices).
  double lost_slices = 0.0;
};

class ReplaySession {
 public:
  /// Cold install of `schedule` against `platform` (pipelines empty; the
  /// root holds everything).  Throws bt::Error on an empty or period-less
  /// schedule.
  ReplaySession(Platform platform, std::shared_ptr<const PeriodicSchedule> schedule);

  /// Swap to `schedule` at the current period boundary, against the given
  /// live platform (which may have grown -- delivered counters are resized,
  /// never reset).  Warm handoff pre-buffers one period of each tree at
  /// every non-root node; cold pays the pipeline-fill transient.
  void install(Platform platform, std::shared_ptr<const PeriodicSchedule> schedule,
               bool warm_handoff = true);

  /// Refresh the live platform (degraded / restored arc costs, removals,
  /// growth) without swapping the schedule.  Subsequent periods execute the
  /// now-stale schedule against it: transfers are capped by the live arc
  /// times, removed arcs ship nothing.  `removed` is indexed by arc id and
  /// may be empty (nothing removed).
  void set_platform(Platform platform, std::vector<char> removed = {});

  /// Execute one full period of the installed schedule.
  PeriodDelivery run_period();

  const PeriodicSchedule& schedule() const { return *schedule_; }
  const Platform& platform() const { return platform_; }
  std::size_t periods_run() const { return periods_run_; }
  /// Max depth over the installed schedule's trees (the fill transient of a
  /// cold install, in periods).
  std::size_t max_tree_depth() const { return max_depth_; }
  /// Cumulative slices delivered to each node since construction.
  const std::vector<double>& delivered_total() const { return delivered_; }

 private:
  void index_schedule();

  Platform platform_;
  std::vector<char> removed_;
  std::shared_ptr<const PeriodicSchedule> schedule_;
  std::size_t max_depth_ = 1;
  std::size_t periods_run_ = 0;

  /// Per-tree sorted arc lists for arc -> slot lookups.
  std::vector<std::vector<EdgeId>> sorted_edges_;
  /// have_[t][v]: slices of tree t fully received at v (root: +inf).
  std::vector<std::vector<double>> have_;
  /// shipped_[t][slot]: cumulative slices sent over the tree's slot-th arc.
  std::vector<std::vector<double>> shipped_;
  std::vector<double> delivered_;  ///< cumulative per node, across installs

  struct Move {
    std::size_t tree;
    std::size_t slot;
    NodeId to;
    double amount;
  };
  std::vector<Move> moves_;  ///< round scratch
};

}  // namespace bt
