#include "sim/schedule_replay.hpp"

#include <algorithm>
#include <limits>
#include <memory>

#include "sim/replay_session.hpp"
#include "util/error.hpp"

namespace bt {

ReplayResult replay_schedule(const Platform& platform, const PeriodicSchedule& schedule,
                             const ReplayOptions& options) {
  BT_REQUIRE(options.measure_periods >= 1, "replay_schedule: need a measurement window");
  // ReplaySession owns the executor (cold install: empty pipelines, the
  // fill-transient startup this function has always measured); this wrapper
  // adds the warmup/window bookkeeping.
  ReplaySession session(platform,
                        std::make_shared<const PeriodicSchedule>(schedule));
  const std::size_t warmup =
      options.warmup_periods > 0 ? options.warmup_periods : session.max_tree_depth() + 2;
  const std::size_t periods = warmup + options.measure_periods;
  const std::size_t n = platform.num_nodes();
  const double kInf = std::numeric_limits<double>::infinity();

  // Per-period minimum intake (for the transient) and the delivered
  // snapshot at the start of the measurement window.
  ReplayResult result;
  result.periods = periods;
  result.total_time = static_cast<double>(periods) * schedule.period;
  result.transient_periods = periods;
  std::vector<double> window_start;
  const double full = schedule.slices_per_period * (1.0 - 1e-9);
  bool transient_found = false;
  for (std::size_t p = 0; p < periods; ++p) {
    if (p == periods - options.measure_periods) window_start = session.delivered_total();
    const PeriodDelivery delivery = session.run_period();
    if (!transient_found && delivery.min_delivered >= full) {
      result.transient_periods = p;
      transient_found = true;
    }
  }

  result.delivered = session.delivered_total();
  result.delivered[schedule.root] = 0.0;
  double steady = kInf, end_to_end = kInf;
  for (NodeId v = 0; v < n; ++v) {
    if (v == schedule.root) continue;
    steady = std::min(steady, (result.delivered[v] - window_start[v]) /
                                  (static_cast<double>(options.measure_periods) *
                                   schedule.period));
    end_to_end = std::min(end_to_end, result.delivered[v] / result.total_time);
  }
  result.steady_throughput = steady == kInf ? 0.0 : steady;
  result.end_to_end_throughput = end_to_end == kInf ? 0.0 : end_to_end;
  return result;
}

}  // namespace bt
