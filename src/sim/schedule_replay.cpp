#include "sim/schedule_replay.hpp"

#include <algorithm>
#include <limits>

#include "graph/arborescence.hpp"
#include "util/error.hpp"

namespace bt {

namespace {

/// Per-tree sorted arc list for O(log) arc -> slot lookups.
struct TreeIndex {
  std::vector<EdgeId> sorted_edges;
  std::size_t slot(EdgeId arc) const {
    const auto it = std::lower_bound(sorted_edges.begin(), sorted_edges.end(), arc);
    BT_REQUIRE(it != sorted_edges.end() && *it == arc,
               "replay_schedule: transfer over an arc not in its tree");
    return static_cast<std::size_t>(it - sorted_edges.begin());
  }
};

}  // namespace

ReplayResult replay_schedule(const Platform& platform, const PeriodicSchedule& schedule,
                             const ReplayOptions& options) {
  const Digraph& g = platform.graph();
  const std::size_t n = g.num_nodes();
  BT_REQUIRE(schedule.period > 0.0, "replay_schedule: schedule has no period");
  BT_REQUIRE(!schedule.trees.empty(), "replay_schedule: schedule has no trees");
  BT_REQUIRE(schedule.slices_per_period > 0.0, "replay_schedule: schedule ships no slices");
  BT_REQUIRE(options.measure_periods >= 1, "replay_schedule: need a measurement window");

  // Tree depths bound the pipeline-fill transient: data advances at least
  // one tree level per period (a node forwards what it held at round start).
  std::size_t max_depth = 1;
  std::vector<TreeIndex> index(schedule.trees.size());
  for (std::size_t t = 0; t < schedule.trees.size(); ++t) {
    const auto parent = parent_edge_array(g, schedule.root, schedule.trees[t].edges);
    const auto depth = node_depths(g, schedule.root, parent);
    max_depth = std::max(max_depth, *std::max_element(depth.begin(), depth.end()));
    index[t].sorted_edges = schedule.trees[t].edges;
    std::sort(index[t].sorted_edges.begin(), index[t].sorted_edges.end());
  }
  const std::size_t warmup =
      options.warmup_periods > 0 ? options.warmup_periods : max_depth + 2;
  const std::size_t periods = warmup + options.measure_periods;

  // have[t][v]: slices of tree t fully received at v; the root holds
  // everything.  shipped[t][slot]: cumulative slices sent over the tree's
  // slot-th arc (children receive copies, so each arc has its own budget
  // bounded by what the sender holds).
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> have(schedule.trees.size(),
                                        std::vector<double>(n, 0.0));
  std::vector<std::vector<double>> shipped(schedule.trees.size());
  for (std::size_t t = 0; t < schedule.trees.size(); ++t) {
    have[t][schedule.root] = kInf;
    shipped[t].assign(index[t].sorted_edges.size(), 0.0);
  }
  std::vector<double> delivered(n, 0.0);
  // delivered at each period boundary, for transient and window measurement.
  std::vector<std::vector<double>> boundary;
  boundary.reserve(periods + 1);
  boundary.push_back(delivered);

  struct Move {
    std::size_t tree;
    std::size_t slot;
    NodeId to;
    double amount;
  };
  std::vector<Move> moves;
  for (std::size_t p = 0; p < periods; ++p) {
    for (const ScheduleRound& round : schedule.rounds) {
      // Round-start snapshot semantics: compute every transfer's movable
      // amount first, apply afterwards -- nothing received during a round
      // is forwarded within it.
      moves.clear();
      for (const ScheduleTransfer& transfer : round.transfers) {
        const NodeId u = g.from(transfer.arc);
        const std::size_t slot = index[transfer.tree].slot(transfer.arc);
        const double available = have[transfer.tree][u] - shipped[transfer.tree][slot];
        const double amount = std::min(transfer.amount, std::max(0.0, available));
        if (amount <= 0.0) continue;
        moves.push_back({transfer.tree, slot, g.to(transfer.arc), amount});
      }
      for (const Move& move : moves) {
        shipped[move.tree][move.slot] += move.amount;
        have[move.tree][move.to] += move.amount;
        delivered[move.to] += move.amount;
      }
    }
    boundary.push_back(delivered);
  }

  ReplayResult result;
  result.periods = periods;
  result.total_time = static_cast<double>(periods) * schedule.period;
  result.delivered = delivered;
  result.delivered[schedule.root] = 0.0;

  const double full = schedule.slices_per_period * (1.0 - 1e-9);
  result.transient_periods = periods;
  for (std::size_t p = 0; p < periods; ++p) {
    double min_intake = kInf;
    for (NodeId v = 0; v < n; ++v) {
      if (v == schedule.root) continue;
      min_intake = std::min(min_intake, boundary[p + 1][v] - boundary[p][v]);
    }
    if (min_intake >= full) {
      result.transient_periods = p;
      break;
    }
  }

  const std::size_t window = options.measure_periods;
  double steady = kInf, end_to_end = kInf;
  for (NodeId v = 0; v < n; ++v) {
    if (v == schedule.root) continue;
    steady = std::min(steady, (boundary[periods][v] - boundary[periods - window][v]) /
                                  (static_cast<double>(window) * schedule.period));
    end_to_end = std::min(end_to_end, boundary[periods][v] / result.total_time);
  }
  result.steady_throughput = steady == kInf ? 0.0 : steady;
  result.end_to_end_throughput = end_to_end == kInf ? 0.0 : end_to_end;
  return result;
}

}  // namespace bt
