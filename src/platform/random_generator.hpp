#pragma once

// Random platform generation following Table 2 of the paper:
//   number of nodes : 10, 20, ..., 50
//   density         : 0.04, 0.08, ..., 0.20
//   link rate       : Gaussian, mean 100 MB/s, deviation 20 MB/s
//   send_u          : 0.80 * min over outgoing arcs of T_{u,w}
//
// The paper does not say how sparse graphs are kept connected (a G(n, 0.04)
// graph on 10 nodes is disconnected w.h.p.).  We lay a uniformly random
// spanning tree first (as bidirectional links) and then fill with random
// bidirectional links up to the requested density -- see DESIGN.md.

#include "platform/platform.hpp"
#include "util/rng.hpp"

namespace bt {

/// Parameters of the random platform family (defaults = Table 2).
struct RandomPlatformConfig {
  std::size_t num_nodes = 30;
  /// Target arc density m / (n*(n-1)).  Clamped from below by the density of
  /// the bidirectional spanning-tree backbone, 2/n.
  double density = 0.12;
  /// Link rate distribution (bytes per second).
  double rate_mean = 100.0e6;
  double rate_stddev = 20.0e6;
  /// Rates below this floor are resampled (keeps T finite and positive).
  double rate_floor = 10.0e6;
  /// Per-slice start-up latency alpha (seconds).  The paper's experiments use
  /// pure bandwidth weights; alpha defaults to 0.
  double alpha = 0.0;
  /// Application slice size L (bytes).
  double slice_size = 1.0e6;
  /// Multi-port overhead ratio (Section 5.1: 80% of the fastest link).
  double multiport_ratio = 0.8;
  NodeId source = 0;
};

/// Generate one random platform; deterministic given `rng` state.
Platform generate_random_platform(const RandomPlatformConfig& config, Rng& rng);

}  // namespace bt
