#pragma once

// Plain-text (de)serialization of platforms, plus Graphviz export.
//
// Format (line oriented, '#' comments allowed):
//   platform <num_nodes> <source> <slice_size>
//   edge <from> <to> <alpha> <beta>          (one per arc)
//   send <node> <overhead>                   (optional, multi-port)
//   recv <node> <overhead>                   (optional, multi-port)

#include <iosfwd>
#include <string>

#include "platform/platform.hpp"

namespace bt {

/// Write `platform` in the text format above.
void write_platform(std::ostream& os, const Platform& platform);

/// Parse a platform from the text format above.  Throws bt::Error on
/// malformed input.
Platform read_platform(std::istream& is);

/// Round-trip helpers via std::string.
std::string platform_to_string(const Platform& platform);
Platform platform_from_string(const std::string& text);

/// Graphviz DOT rendering of the platform; arcs in `highlight` (e.g. a
/// broadcast tree) are drawn bold.  Arc labels show T_{u,v} in milliseconds.
std::string platform_to_dot(const Platform& platform,
                            const std::vector<EdgeId>& highlight = {});

}  // namespace bt
