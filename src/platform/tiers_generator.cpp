#include "platform/tiers_generator.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace bt {

namespace {

LinkCost draw_cost(const TiersConfig& config, Rng& rng) {
  const double rate =
      rng.truncated_gaussian(config.rate_mean, config.rate_stddev, config.rate_floor);
  return LinkCost{config.alpha, 1.0 / rate};
}

}  // namespace

TiersConfig tiers_config_30() {
  TiersConfig c;
  c.num_nodes = 30;
  c.wan_nodes = 4;
  c.mans_per_wan = 2;
  c.wan_redundancy = 2;
  c.man_redundancy = 1;
  return c;
}

TiersConfig tiers_config_65() {
  TiersConfig c;
  c.num_nodes = 65;
  c.wan_nodes = 6;
  c.mans_per_wan = 3;
  c.wan_redundancy = 4;
  c.man_redundancy = 2;
  return c;
}

TiersConfig tiers_config_for(std::size_t num_nodes) {
  BT_REQUIRE(num_nodes >= 4, "tiers_config_for: need at least 4 nodes");
  if (num_nodes == 30) return tiers_config_30();
  if (num_nodes == 65) return tiers_config_65();
  // Follow the 30/65-node proportions: the router levels grow with the
  // square root of the node count (so LAN hosts dominate, as in Tiers),
  // redundancy with the WAN width.
  TiersConfig c;
  c.num_nodes = num_nodes;
  c.wan_nodes = std::max<std::size_t>(2, static_cast<std::size_t>(0.75 * std::sqrt(
                                             static_cast<double>(num_nodes))));
  c.mans_per_wan = std::max<std::size_t>(2, c.wan_nodes / 2);
  // Keep at least one LAN host per MAN router.
  while (c.wan_nodes * (1 + c.mans_per_wan) * 2 > num_nodes && c.mans_per_wan > 2) {
    --c.mans_per_wan;
  }
  while (c.wan_nodes * (1 + c.mans_per_wan) * 2 > num_nodes && c.wan_nodes > 2) {
    --c.wan_nodes;
  }
  c.wan_redundancy = c.wan_nodes / 2 + 1;
  c.man_redundancy = c.mans_per_wan / 2;
  return c;
}

Platform generate_tiers_platform(const TiersConfig& config, Rng& rng) {
  const std::size_t wan = config.wan_nodes;
  const std::size_t mans = wan * config.mans_per_wan;
  BT_REQUIRE(wan >= 1, "generate_tiers_platform: need at least one WAN router");
  BT_REQUIRE(config.num_nodes >= wan + mans,
             "generate_tiers_platform: not enough nodes for WAN+MAN levels");
  const std::size_t hosts = config.num_nodes - wan - mans;

  Digraph g(config.num_nodes);
  std::vector<LinkCost> costs;
  std::vector<std::vector<char>> linked(config.num_nodes,
                                        std::vector<char>(config.num_nodes, 0));

  auto add_link = [&](NodeId a, NodeId b) {
    if (a == b || linked[a][b]) return false;
    g.add_bidirectional(a, b);
    costs.push_back(draw_cost(config, rng));
    costs.push_back(draw_cost(config, rng));
    linked[a][b] = linked[b][a] = 1;
    return true;
  };

  // Level 1 -- WAN core: random spanning tree + redundancy links.
  // Node ids [0, wan).
  const auto wan_order = rng.permutation(wan);
  for (std::size_t i = 1; i < wan; ++i) {
    add_link(static_cast<NodeId>(wan_order[rng.index(i)]),
             static_cast<NodeId>(wan_order[i]));
  }
  for (std::size_t r = 0; r < config.wan_redundancy && wan >= 2; ++r) {
    // A few attempts per redundancy link; dense cores simply saturate.
    for (int attempt = 0; attempt < 16; ++attempt) {
      if (add_link(static_cast<NodeId>(rng.index(wan)),
                   static_cast<NodeId>(rng.index(wan)))) {
        break;
      }
    }
  }

  // Level 2 -- MAN routers: ids [wan, wan + mans), star around their WAN
  // router plus intra-region redundancy.
  std::vector<std::vector<NodeId>> region_mans(wan);
  for (std::size_t w = 0; w < wan; ++w) {
    for (std::size_t k = 0; k < config.mans_per_wan; ++k) {
      const NodeId man = static_cast<NodeId>(wan + w * config.mans_per_wan + k);
      add_link(static_cast<NodeId>(w), man);
      region_mans[w].push_back(man);
    }
    for (std::size_t r = 0; r < config.man_redundancy && region_mans[w].size() >= 2; ++r) {
      for (int attempt = 0; attempt < 16; ++attempt) {
        const NodeId a = region_mans[w][rng.index(region_mans[w].size())];
        const NodeId b = region_mans[w][rng.index(region_mans[w].size())];
        if (add_link(a, b)) break;
      }
    }
  }

  // Level 3 -- LAN hosts: ids [wan + mans, num_nodes), assigned round-robin
  // across MAN routers (stars; Tiers LANs are trees).
  for (std::size_t h = 0; h < hosts; ++h) {
    const NodeId host = static_cast<NodeId>(wan + mans + h);
    const NodeId man = mans > 0 ? static_cast<NodeId>(wan + (h % mans))
                                : static_cast<NodeId>(h % wan);
    add_link(man, host);
  }

  // Host-level redundancy: a fraction of hosts get a second uplink to a
  // random other MAN router, keeping the density in the paper's 0.05-0.15
  // window (Tiers' RL parameter plays the same role).
  if (mans >= 2) {
    const std::size_t extra = hosts / 2;
    for (std::size_t r = 0; r < extra; ++r) {
      const NodeId host = static_cast<NodeId>(wan + mans + rng.index(hosts));
      const NodeId man = static_cast<NodeId>(wan + rng.index(mans));
      add_link(man, host);
    }
  }

  Platform platform(std::move(g), std::move(costs), config.slice_size, config.source);
  platform.set_multiport_overheads(config.multiport_ratio);
  return platform;
}

}  // namespace bt
