#include "platform/random_generator.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace bt {

namespace {

/// Draw a link cost: pure-bandwidth affine cost from a truncated Gaussian
/// rate.  Each *arc* gets an independent draw, so the two directions of a
/// physical link may differ slightly -- heterogeneity is the point.
LinkCost draw_cost(const RandomPlatformConfig& config, Rng& rng) {
  const double rate = rng.truncated_gaussian(config.rate_mean, config.rate_stddev,
                                             config.rate_floor);
  return LinkCost{config.alpha, 1.0 / rate};
}

}  // namespace

Platform generate_random_platform(const RandomPlatformConfig& config, Rng& rng) {
  const std::size_t n = config.num_nodes;
  BT_REQUIRE(n >= 2, "generate_random_platform: need at least 2 nodes");
  BT_REQUIRE(config.density > 0.0 && config.density <= 1.0,
             "generate_random_platform: density outside (0,1]");
  BT_REQUIRE(config.source < n, "generate_random_platform: source out of range");

  Digraph g(n);
  std::vector<LinkCost> costs;
  std::vector<std::vector<char>> linked(n, std::vector<char>(n, 0));

  auto add_link = [&](NodeId a, NodeId b) {
    g.add_bidirectional(a, b);
    costs.push_back(draw_cost(config, rng));
    costs.push_back(draw_cost(config, rng));
    linked[a][b] = linked[b][a] = 1;
  };

  // Backbone: random attachment spanning tree over a random node order.
  const auto order = rng.permutation(n);
  for (std::size_t i = 1; i < n; ++i) {
    const NodeId child = order[i];
    const NodeId parent = order[rng.index(i)];
    add_link(parent, child);
  }

  // Fill: random bidirectional links up to the target arc count.
  const auto target_arcs =
      static_cast<std::size_t>(config.density * static_cast<double>(n) *
                               static_cast<double>(n - 1));
  std::vector<std::pair<NodeId, NodeId>> candidates;
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      if (!linked[a][b]) candidates.emplace_back(a, b);
    }
  }
  std::shuffle(candidates.begin(), candidates.end(), rng.engine());
  for (const auto& [a, b] : candidates) {
    if (g.num_edges() + 2 > target_arcs) break;  // backbone may already exceed target
    add_link(a, b);
  }

  Platform platform(std::move(g), std::move(costs), config.slice_size, config.source);
  platform.set_multiport_overheads(config.multiport_ratio);
  return platform;
}

}  // namespace bt
