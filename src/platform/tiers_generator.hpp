#pragma once

// Tiers-style hierarchical topology generation.
//
// The paper's "realistic" platforms come from Tiers [Calvert, Doar, Zegura
// 1997], a generator of three-level (WAN / MAN / LAN) internet-like
// topologies.  The original binary is not available, so we implement a
// generator with the same structure (see DESIGN.md, substitutions):
//
//  * a WAN core: random spanning tree over the WAN routers plus a number of
//    redundancy links;
//  * each WAN router hosts some MANs: a star of MAN routers around it, plus
//    intra-MAN redundancy links;
//  * each MAN router hosts LAN leaf hosts (stars, no redundancy -- LANs are
//    trees in Tiers as well).
//
// All links are bidirectional; link rates follow the same Gaussian
// distribution as the random platforms (Section 5.1 of the paper).  The knobs
// below are tuned so 30- and 65-node instances land in the paper's density
// range of 0.05 - 0.15.

#include "platform/platform.hpp"
#include "util/rng.hpp"

namespace bt {

/// Parameters of the Tiers-style generator.
struct TiersConfig {
  /// Total number of nodes; the generator distributes them over the levels.
  std::size_t num_nodes = 30;
  /// Number of WAN core routers (level 1).
  std::size_t wan_nodes = 4;
  /// MAN routers attached per WAN router (level 2).
  std::size_t mans_per_wan = 2;
  /// Extra redundancy links inside the WAN core (beyond its spanning tree).
  std::size_t wan_redundancy = 2;
  /// Extra redundancy links among the MAN routers of the same WAN router.
  std::size_t man_redundancy = 1;
  /// Link rate distribution, shared with the random generator.
  double rate_mean = 100.0e6;
  double rate_stddev = 20.0e6;
  double rate_floor = 10.0e6;
  double alpha = 0.0;
  double slice_size = 1.0e6;
  double multiport_ratio = 0.8;
  /// Source is a WAN core router (index 0), matching a broadcast that
  /// originates at a well-connected site.
  NodeId source = 0;
};

/// Standard configurations used by the paper's Table 3 (30 and 65 nodes).
TiersConfig tiers_config_30();
TiersConfig tiers_config_65();

/// Configuration for an arbitrary node count: returns the exact paper
/// configuration at 30 / 65 nodes and scales the WAN/MAN level widths and
/// redundancy with the same proportions beyond that (the lifted Table 3
/// sweeps use it for 100-200 node platforms, which land in the paper's
/// 0.05-0.15 density range like the originals).
TiersConfig tiers_config_for(std::size_t num_nodes);

/// Generate one Tiers-style platform; deterministic given `rng` state.
Platform generate_tiers_platform(const TiersConfig& config, Rng& rng);

}  // namespace bt
