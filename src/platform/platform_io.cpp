#include "platform/platform_io.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace bt {

void write_platform(std::ostream& os, const Platform& platform) {
  const Digraph& g = platform.graph();
  os << std::setprecision(17);
  os << "platform " << g.num_nodes() << ' ' << platform.source() << ' '
     << platform.slice_size() << '\n';
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const LinkCost& c = platform.link_cost(e);
    os << "edge " << g.from(e) << ' ' << g.to(e) << ' ' << c.alpha << ' ' << c.beta
       << '\n';
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (platform.send_overhead(u) > 0.0) {
      os << "send " << u << ' ' << platform.send_overhead(u) << '\n';
    }
    if (platform.recv_overhead(u) > 0.0) {
      os << "recv " << u << ' ' << platform.recv_overhead(u) << '\n';
    }
  }
}

Platform read_platform(std::istream& is) {
  std::size_t num_nodes = 0;
  NodeId source = 0;
  double slice_size = 0.0;
  bool have_header = false;

  struct ParsedEdge {
    NodeId from, to;
    LinkCost cost;
  };
  std::vector<ParsedEdge> edges;
  std::vector<std::pair<NodeId, double>> sends, recvs;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;  // blank line
    auto malformed = [&](const std::string& what) {
      BT_REQUIRE(false, "read_platform: line " + std::to_string(line_no) + ": " + what);
    };
    if (keyword == "platform") {
      if (!(ls >> num_nodes >> source >> slice_size)) malformed("bad platform header");
      have_header = true;
    } else if (keyword == "edge") {
      ParsedEdge pe{};
      if (!(ls >> pe.from >> pe.to >> pe.cost.alpha >> pe.cost.beta)) {
        malformed("bad edge line");
      }
      edges.push_back(pe);
    } else if (keyword == "send" || keyword == "recv") {
      NodeId u = 0;
      double overhead = 0.0;
      if (!(ls >> u >> overhead)) malformed("bad overhead line");
      (keyword == "send" ? sends : recvs).emplace_back(u, overhead);
    } else {
      malformed("unknown keyword '" + keyword + "'");
    }
  }
  BT_REQUIRE(have_header, "read_platform: missing 'platform' header");

  Digraph g(num_nodes);
  std::vector<LinkCost> costs;
  costs.reserve(edges.size());
  for (const ParsedEdge& pe : edges) {
    g.add_edge(pe.from, pe.to);
    costs.push_back(pe.cost);
  }
  Platform platform(std::move(g), std::move(costs), slice_size, source);
  if (!sends.empty()) {
    std::vector<double> send(num_nodes, 0.0);
    for (const auto& [u, o] : sends) {
      BT_REQUIRE(u < num_nodes, "read_platform: send node out of range");
      send[u] = o;
    }
    platform.set_send_overheads(std::move(send));
  }
  if (!recvs.empty()) {
    std::vector<double> recv(num_nodes, 0.0);
    for (const auto& [u, o] : recvs) {
      BT_REQUIRE(u < num_nodes, "read_platform: recv node out of range");
      recv[u] = o;
    }
    platform.set_recv_overheads(std::move(recv));
  }
  return platform;
}

std::string platform_to_string(const Platform& platform) {
  std::ostringstream os;
  write_platform(os, platform);
  return os.str();
}

Platform platform_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_platform(is);
}

std::string platform_to_dot(const Platform& platform, const std::vector<EdgeId>& highlight) {
  const Digraph& g = platform.graph();
  std::vector<char> bold(g.num_edges(), 0);
  for (EdgeId e : highlight) {
    BT_REQUIRE(e < g.num_edges(), "platform_to_dot: highlight arc out of range");
    bold[e] = 1;
  }
  std::ostringstream os;
  os << "digraph platform {\n";
  os << "  node [shape=circle];\n";
  os << "  " << platform.source() << " [style=filled, fillcolor=lightblue];\n";
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    os << "  " << g.from(e) << " -> " << g.to(e) << " [label=\"" << std::fixed
       << std::setprecision(2) << platform.edge_time(e) * 1e3 << "ms\"";
    if (bold[e]) os << ", penwidth=3, color=red";
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace bt
