#include "platform/platform.hpp"

#include <algorithm>
#include <limits>

#include "graph/reachability.hpp"
#include "util/error.hpp"

namespace bt {

Platform::Platform(Digraph graph, std::vector<LinkCost> link_costs, double slice_size,
                   NodeId source)
    : graph_(std::move(graph)),
      link_(std::move(link_costs)),
      slice_size_(slice_size),
      source_(source),
      send_overhead_(graph_.num_nodes(), 0.0),
      recv_overhead_(graph_.num_nodes(), 0.0) {
  BT_REQUIRE(link_.size() == graph_.num_edges(), "Platform: one LinkCost per arc required");
  BT_REQUIRE(slice_size_ > 0.0, "Platform: slice size must be positive");
  BT_REQUIRE(source_ < graph_.num_nodes(), "Platform: source out of range");
  for (const LinkCost& c : link_) {
    BT_REQUIRE(c.alpha >= 0.0 && c.beta >= 0.0, "Platform: negative link cost");
    BT_REQUIRE(c.alpha > 0.0 || c.beta > 0.0, "Platform: zero-cost link");
  }
  set_slice_size(slice_size_);
  std::string why;
  BT_REQUIRE(valid(&why), "Platform: invalid platform: " + why);
}

const LinkCost& Platform::link_cost(EdgeId e) const {
  BT_REQUIRE(e < link_.size(), "Platform::link_cost: arc out of range");
  return link_[e];
}

double Platform::edge_time(EdgeId e) const {
  BT_REQUIRE(e < slice_time_.size(), "Platform::edge_time: arc out of range");
  return slice_time_[e];
}

void Platform::set_slice_size(double slice_size) {
  BT_REQUIRE(slice_size > 0.0, "Platform::set_slice_size: slice size must be positive");
  slice_size_ = slice_size;
  slice_time_.resize(link_.size());
  for (EdgeId e = 0; e < link_.size(); ++e) slice_time_[e] = link_[e].at(slice_size_);
}

void Platform::set_link_cost(EdgeId e, LinkCost cost) {
  BT_REQUIRE(e < link_.size(), "Platform::set_link_cost: arc out of range");
  BT_REQUIRE(cost.alpha >= 0.0 && cost.beta >= 0.0, "Platform::set_link_cost: negative link cost");
  BT_REQUIRE(cost.alpha > 0.0 || cost.beta > 0.0, "Platform::set_link_cost: zero-cost link");
  link_[e] = cost;
  slice_time_[e] = cost.at(slice_size_);
}

Platform Platform::with_source(NodeId source) const {
  BT_REQUIRE(source < graph_.num_nodes(), "Platform::with_source: source out of range");
  Platform copy(*this);
  copy.source_ = source;
  std::string why;
  BT_REQUIRE(copy.valid(&why), "Platform::with_source: invalid platform: " + why);
  return copy;
}

double Platform::send_overhead(NodeId u) const {
  BT_REQUIRE(u < send_overhead_.size(), "Platform::send_overhead: node out of range");
  return send_overhead_[u];
}

double Platform::recv_overhead(NodeId v) const {
  BT_REQUIRE(v < recv_overhead_.size(), "Platform::recv_overhead: node out of range");
  return recv_overhead_[v];
}

void Platform::set_multiport_overheads(double ratio) {
  BT_REQUIRE(ratio >= 0.0, "Platform::set_multiport_overheads: negative ratio");
  for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
    double min_out = std::numeric_limits<double>::infinity();
    for (EdgeId e : graph_.out_edges(u)) min_out = std::min(min_out, slice_time_[e]);
    send_overhead_[u] = graph_.out_edges(u).empty() ? 0.0 : ratio * min_out;

    double min_in = std::numeric_limits<double>::infinity();
    for (EdgeId e : graph_.in_edges(u)) min_in = std::min(min_in, slice_time_[e]);
    recv_overhead_[u] = graph_.in_edges(u).empty() ? 0.0 : ratio * min_in;
  }
}

void Platform::set_send_overheads(std::vector<double> send) {
  BT_REQUIRE(send.size() == graph_.num_nodes(), "set_send_overheads: size mismatch");
  for (double s : send) BT_REQUIRE(s >= 0.0, "set_send_overheads: negative overhead");
  send_overhead_ = std::move(send);
}

void Platform::set_recv_overheads(std::vector<double> recv) {
  BT_REQUIRE(recv.size() == graph_.num_nodes(), "set_recv_overheads: size mismatch");
  for (double r : recv) BT_REQUIRE(r >= 0.0, "set_recv_overheads: negative overhead");
  recv_overhead_ = std::move(recv);
}

bool Platform::valid(std::string* why) const {
  if (!all_reachable_from(graph_, source_)) {
    if (why != nullptr) *why = "not all nodes reachable from the source";
    return false;
  }
  if (why != nullptr) why->clear();
  return true;
}

}  // namespace bt
