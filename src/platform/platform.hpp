#pragma once

// Heterogeneous platform model (Section 2 of the paper).
//
// A Platform is the directed platform graph P = (V, E) annotated with:
//  * an affine communication cost per arc, T_{u,v}(L) = alpha + beta * L
//    (alpha: start-up cost in seconds, beta: inverse bandwidth in s/byte);
//  * the slice size L chosen at the application level -- once L is fixed the
//    paper works with the scalar arc weights T_{u,v} = T_{u,v}(L);
//  * per-node multi-port overheads send_u / recv_u (Section 3.2): the time a
//    node's CPU/NIC is busy per slice emission (serialized across children),
//    while the link occupations T_{u,v} may overlap.
//
// Under the bidirectional one-port model only the arc weights matter; the
// multi-port heuristics additionally consult send_u.

#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace bt {

/// Affine link cost T(L) = alpha + beta * L.
struct LinkCost {
  double alpha = 0.0;  ///< start-up latency (seconds)
  double beta = 0.0;   ///< inverse bandwidth (seconds per byte)

  double at(double message_size) const { return alpha + beta * message_size; }
};

/// Platform graph with per-arc costs and per-node multi-port overheads.
class Platform {
 public:
  /// Build from a graph and per-arc costs; `slice_size` is the application
  /// slice length L in bytes.
  Platform(Digraph graph, std::vector<LinkCost> link_costs, double slice_size,
           NodeId source);

  const Digraph& graph() const { return graph_; }
  NodeId source() const { return source_; }
  std::size_t num_nodes() const { return graph_.num_nodes(); }
  std::size_t num_edges() const { return graph_.num_edges(); }
  double slice_size() const { return slice_size_; }

  /// Affine cost of arc e.
  const LinkCost& link_cost(EdgeId e) const;

  /// T_{u,v} for a slice: link occupation of arc e per slice (seconds).
  double edge_time(EdgeId e) const;
  /// All per-slice arc times, indexed by arc id.
  const std::vector<double>& edge_times() const { return slice_time_; }

  /// Re-derive the cached per-slice times for a new slice size L.
  void set_slice_size(double slice_size);

  /// Replace the affine cost of arc e (platform delta: a link's bandwidth
  /// degraded or was re-measured) and refresh its cached per-slice time.
  /// The planner sessions translate this into warm master re-solves.
  void set_link_cost(EdgeId e, LinkCost cost);

  /// Copy of this platform broadcasting from a different source node (the
  /// planner service keeps one warm session per requested source).
  Platform with_source(NodeId source) const;

  /// Multi-port: serialized per-slice send overhead of node u (s_u). Zero by
  /// default, which degenerates the multi-port period into max link time.
  double send_overhead(NodeId u) const;
  /// Multi-port: per-slice receive overhead of node v (r_v).
  double recv_overhead(NodeId v) const;

  /// Configure multi-port overheads the way the paper's experiments do:
  /// send_u = ratio * min over outgoing arcs of T_{u,w} (Section 5.1 uses
  /// ratio = 0.8), and symmetrically recv_v = ratio * min over incoming arcs.
  /// Nodes without outgoing (incoming) arcs get overhead 0.
  void set_multiport_overheads(double ratio);

  /// Explicit per-node overrides (sizes must equal num_nodes()).
  void set_send_overheads(std::vector<double> send);
  void set_recv_overheads(std::vector<double> recv);

  /// True iff every node is reachable from the source (a broadcast is
  /// feasible).  Constructor enforces this.
  bool valid(std::string* why = nullptr) const;

 private:
  Digraph graph_;
  std::vector<LinkCost> link_;
  double slice_size_;
  NodeId source_;
  std::vector<double> slice_time_;
  std::vector<double> send_overhead_;
  std::vector<double> recv_overhead_;
};

}  // namespace bt
