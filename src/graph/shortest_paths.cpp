#include "graph/shortest_paths.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/error.hpp"

namespace bt {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

bool ShortestPathTree::reachable(NodeId v) const {
  BT_REQUIRE(v < dist.size(), "ShortestPathTree::reachable: node out of range");
  return dist[v] < kInf;
}

std::vector<EdgeId> ShortestPathTree::path_to(const Digraph& g, NodeId v) const {
  BT_REQUIRE(reachable(v), "ShortestPathTree::path_to: node unreachable");
  std::vector<EdgeId> path;
  NodeId cur = v;
  while (parent_edge[cur] != Digraph::npos) {
    const EdgeId e = parent_edge[cur];
    path.push_back(e);
    cur = g.from(e);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

ShortestPathTree dijkstra(const Digraph& g, NodeId source,
                          const std::vector<double>& weight) {
  BT_REQUIRE(source < g.num_nodes(), "dijkstra: source out of range");
  BT_REQUIRE(weight.size() == g.num_edges(), "dijkstra: weight size mismatch");
  for (double w : weight) BT_REQUIRE(w >= 0.0, "dijkstra: negative arc weight");

  ShortestPathTree t;
  t.dist.assign(g.num_nodes(), kInf);
  t.parent_edge.assign(g.num_nodes(), Digraph::npos);
  t.dist[source] = 0.0;

  using Item = std::pair<double, NodeId>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > t.dist[u]) continue;  // stale entry
    for (EdgeId e : g.out_edges(u)) {
      const NodeId v = g.to(e);
      const double candidate = d + weight[e];
      if (candidate < t.dist[v]) {
        t.dist[v] = candidate;
        t.parent_edge[v] = e;
        heap.emplace(candidate, v);
      }
    }
  }
  return t;
}

std::vector<ShortestPathTree> all_pairs_shortest_paths(const Digraph& g,
                                                       const std::vector<double>& weight) {
  std::vector<ShortestPathTree> trees;
  trees.reserve(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) trees.push_back(dijkstra(g, u, weight));
  return trees;
}

}  // namespace bt
