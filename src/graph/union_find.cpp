#include "graph/union_find.hpp"

#include <numeric>

#include "util/error.hpp"

namespace bt {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), rank_(n, 0), size_(n, 1), num_sets_(n) {
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});
}

std::size_t UnionFind::find(std::size_t x) {
  BT_REQUIRE(x < parent_.size(), "UnionFind::find: index out of range");
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::size_t a, std::size_t b) {
  std::size_t ra = find(a);
  std::size_t rb = find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --num_sets_;
  return true;
}

std::size_t UnionFind::set_size(std::size_t x) { return size_[find(x)]; }

}  // namespace bt
