#pragma once

// Out-arborescence (rooted spanning tree) utilities.
//
// A broadcast tree is an out-arborescence of the platform graph rooted at
// the source: every non-source node has exactly one incoming tree arc and is
// reachable from the source through tree arcs.  These helpers validate arc
// subsets and convert between the two natural representations (arc-id set
// and parent-arc array).

#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/reachability.hpp"

namespace bt {

/// Check whether `tree_edges` (arc ids of g) forms a spanning out-arborescence
/// of g rooted at `root`.  On failure returns false and, if `why` is non-null,
/// stores a human-readable reason.
bool is_spanning_arborescence(const Digraph& g, NodeId root,
                              const std::vector<EdgeId>& tree_edges,
                              std::string* why = nullptr);

/// parent_edge[v] = tree arc entering v (npos for the root).
/// Requires is_spanning_arborescence.
std::vector<EdgeId> parent_edge_array(const Digraph& g, NodeId root,
                                      const std::vector<EdgeId>& tree_edges);

/// children[u] = arc ids of tree arcs leaving u, from a parent-edge array.
std::vector<std::vector<EdgeId>> children_lists(const Digraph& g,
                                                const std::vector<EdgeId>& parent_edge);

/// Depth (number of tree arcs from the root) of every node.
std::vector<std::size_t> node_depths(const Digraph& g, NodeId root,
                                     const std::vector<EdgeId>& parent_edge);

/// Nodes in breadth-first order from the root (root first).
std::vector<NodeId> bfs_order(const Digraph& g, NodeId root,
                              const std::vector<EdgeId>& parent_edge);

/// Spanning out-arborescence of the subgraph of active arcs, built by BFS
/// from the root (the first active arc reaching a node becomes its parent
/// arc).  Returns an empty vector when the active subgraph does not span.
/// An empty mask means "all arcs active".  Used by the schedule-synthesis
/// decomposer to extract trees from the support of an edge-load vector.
std::vector<EdgeId> bfs_arborescence(const Digraph& g, NodeId root,
                                     const EdgeMask& active = {});

}  // namespace bt
