#pragma once

// Disjoint-set forest with union by rank and path compression.
// Used by generators (backbone construction) and tests.

#include <cstddef>
#include <vector>

namespace bt {

/// Union-find over {0, ..., n-1}.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  /// Representative of x's set.
  std::size_t find(std::size_t x);

  /// Merge the sets of a and b; returns false if already joined.
  bool unite(std::size_t a, std::size_t b);

  bool same(std::size_t a, std::size_t b) { return find(a) == find(b); }

  /// Number of disjoint sets remaining.
  std::size_t num_sets() const { return num_sets_; }

  /// Size of the set containing x.
  std::size_t set_size(std::size_t x);

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> rank_;
  std::vector<std::size_t> size_;
  std::size_t num_sets_;
};

}  // namespace bt
