#pragma once

// Directed graph substrate.
//
// The platform graph P = (V, E) of the paper is directed (a bidirectional
// physical link is modeled by two opposite arcs).  Digraph stores the pure
// structure -- nodes are dense indices [0, n), arcs are dense indices
// [0, m) -- and exposes out-/in-adjacency as arc-id lists.  All quantitative
// annotations (link costs T_{u,v}, LP edge loads n_{u,v}, ...) live in
// side arrays indexed by arc id, owned by the layers above (Platform, ssb).

#include <cstddef>
#include <vector>

namespace bt {

using NodeId = std::size_t;
using EdgeId = std::size_t;

/// A directed arc from `from` to `to`.
struct Arc {
  NodeId from;
  NodeId to;
};

/// Directed graph with dense node and arc ids.
class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::size_t num_nodes);

  /// Append a node; returns its id.
  NodeId add_node();

  /// Append an arc u -> v; returns its id. Self-loops are rejected.
  EdgeId add_edge(NodeId u, NodeId v);

  /// Append the two arcs u -> v and v -> u; returns {id(u->v), id(v->u)}.
  std::pair<EdgeId, EdgeId> add_bidirectional(NodeId u, NodeId v);

  std::size_t num_nodes() const { return out_.size(); }
  std::size_t num_edges() const { return arcs_.size(); }

  const Arc& arc(EdgeId e) const;
  NodeId from(EdgeId e) const { return arc(e).from; }
  NodeId to(EdgeId e) const { return arc(e).to; }

  /// Arc ids leaving u.
  const std::vector<EdgeId>& out_edges(NodeId u) const;
  /// Arc ids entering v.
  const std::vector<EdgeId>& in_edges(NodeId v) const;

  /// First arc id u -> v, or `npos` if absent.
  EdgeId find_edge(NodeId u, NodeId v) const;
  bool has_edge(NodeId u, NodeId v) const { return find_edge(u, v) != npos; }

  /// Arc density relative to the complete digraph: m / (n * (n-1)).
  double density() const;

  static constexpr EdgeId npos = static_cast<EdgeId>(-1);

 private:
  void check_node(NodeId u) const;

  std::vector<Arc> arcs_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace bt
