#include "graph/arborescence.hpp"

#include <queue>
#include <string>

#include "util/error.hpp"

namespace bt {

bool is_spanning_arborescence(const Digraph& g, NodeId root,
                              const std::vector<EdgeId>& tree_edges, std::string* why) {
  auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  const std::size_t n = g.num_nodes();
  if (root >= n) return fail("root out of range");
  if (n == 0) return fail("empty graph");
  if (tree_edges.size() != n - 1) {
    return fail("expected n-1 = " + std::to_string(n - 1) + " arcs, got " +
                std::to_string(tree_edges.size()));
  }
  std::vector<EdgeId> parent(n, Digraph::npos);
  for (EdgeId e : tree_edges) {
    if (e >= g.num_edges()) return fail("arc id out of range");
    const NodeId v = g.to(e);
    if (v == root) return fail("tree arc enters the root");
    if (parent[v] != Digraph::npos) {
      return fail("node " + std::to_string(v) + " has two tree parents");
    }
    parent[v] = e;
  }
  // n-1 arcs, each non-root node has exactly one parent => check reachability.
  std::vector<char> seen(n, 0);
  seen[root] = 1;
  std::size_t reached = 1;
  // Walk up from every node to the root; memoize via `seen`.
  for (NodeId v = 0; v < n; ++v) {
    std::vector<NodeId> trail;
    NodeId cur = v;
    while (!seen[cur]) {
      trail.push_back(cur);
      if (parent[cur] == Digraph::npos) {
        return fail("node " + std::to_string(cur) + " has no tree parent");
      }
      cur = g.from(parent[cur]);
      if (trail.size() > n) return fail("cycle in tree arcs");
    }
    for (NodeId t : trail) {
      seen[t] = 1;
      ++reached;
    }
  }
  if (reached != n) return fail("tree does not span all nodes");
  if (why != nullptr) why->clear();
  return true;
}

std::vector<EdgeId> parent_edge_array(const Digraph& g, NodeId root,
                                      const std::vector<EdgeId>& tree_edges) {
  std::string why;
  BT_REQUIRE(is_spanning_arborescence(g, root, tree_edges, &why),
             "parent_edge_array: not a spanning arborescence: " + why);
  std::vector<EdgeId> parent(g.num_nodes(), Digraph::npos);
  for (EdgeId e : tree_edges) parent[g.to(e)] = e;
  return parent;
}

std::vector<std::vector<EdgeId>> children_lists(const Digraph& g,
                                                const std::vector<EdgeId>& parent_edge) {
  BT_REQUIRE(parent_edge.size() == g.num_nodes(), "children_lists: size mismatch");
  std::vector<std::vector<EdgeId>> children(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const EdgeId e = parent_edge[v];
    if (e == Digraph::npos) continue;
    BT_REQUIRE(g.to(e) == v, "children_lists: parent arc does not enter its node");
    children[g.from(e)].push_back(e);
  }
  return children;
}

std::vector<std::size_t> node_depths(const Digraph& g, NodeId root,
                                     const std::vector<EdgeId>& parent_edge) {
  const auto order = bfs_order(g, root, parent_edge);
  std::vector<std::size_t> depth(g.num_nodes(), 0);
  const auto children = children_lists(g, parent_edge);
  for (NodeId u : order) {
    for (EdgeId e : children[u]) depth[g.to(e)] = depth[u] + 1;
  }
  return depth;
}

std::vector<EdgeId> bfs_arborescence(const Digraph& g, NodeId root, const EdgeMask& active) {
  BT_REQUIRE(root < g.num_nodes(), "bfs_arborescence: root out of range");
  BT_REQUIRE(active.empty() || active.size() == g.num_edges(),
             "bfs_arborescence: mask size mismatch");
  std::vector<EdgeId> tree;
  tree.reserve(g.num_nodes() - 1);
  std::vector<char> seen(g.num_nodes(), 0);
  seen[root] = 1;
  std::queue<NodeId> queue;
  queue.push(root);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    for (EdgeId e : g.out_edges(u)) {
      if (!active.empty() && !active[e]) continue;
      const NodeId v = g.to(e);
      if (seen[v]) continue;
      seen[v] = 1;
      tree.push_back(e);
      queue.push(v);
    }
  }
  if (tree.size() != g.num_nodes() - 1) tree.clear();
  return tree;
}

std::vector<NodeId> bfs_order(const Digraph& g, NodeId root,
                              const std::vector<EdgeId>& parent_edge) {
  const auto children = children_lists(g, parent_edge);
  std::vector<NodeId> order;
  order.reserve(g.num_nodes());
  std::queue<NodeId> queue;
  queue.push(root);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    order.push_back(u);
    for (EdgeId e : children[u]) queue.push(g.to(e));
  }
  return order;
}

}  // namespace bt
