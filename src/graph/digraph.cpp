#include "graph/digraph.hpp"

#include "util/error.hpp"

namespace bt {

Digraph::Digraph(std::size_t num_nodes) : out_(num_nodes), in_(num_nodes) {}

NodeId Digraph::add_node() {
  out_.emplace_back();
  in_.emplace_back();
  return out_.size() - 1;
}

EdgeId Digraph::add_edge(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  BT_REQUIRE(u != v, "Digraph::add_edge: self-loops are not allowed");
  const EdgeId e = arcs_.size();
  arcs_.push_back(Arc{u, v});
  out_[u].push_back(e);
  in_[v].push_back(e);
  return e;
}

std::pair<EdgeId, EdgeId> Digraph::add_bidirectional(NodeId u, NodeId v) {
  const EdgeId forward = add_edge(u, v);
  const EdgeId backward = add_edge(v, u);
  return {forward, backward};
}

const Arc& Digraph::arc(EdgeId e) const {
  BT_REQUIRE(e < arcs_.size(), "Digraph::arc: arc id out of range");
  return arcs_[e];
}

const std::vector<EdgeId>& Digraph::out_edges(NodeId u) const {
  check_node(u);
  return out_[u];
}

const std::vector<EdgeId>& Digraph::in_edges(NodeId v) const {
  check_node(v);
  return in_[v];
}

EdgeId Digraph::find_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  for (EdgeId e : out_[u]) {
    if (arcs_[e].to == v) return e;
  }
  return npos;
}

double Digraph::density() const {
  const auto n = static_cast<double>(num_nodes());
  if (n < 2.0) return 0.0;
  return static_cast<double>(num_edges()) / (n * (n - 1.0));
}

void Digraph::check_node(NodeId u) const {
  BT_REQUIRE(u < out_.size(), "Digraph: node id out of range");
}

}  // namespace bt
