#pragma once

// Reachability and connectivity queries over arc subsets.
//
// The pruning heuristics of the paper repeatedly ask "is the graph still
// connected if arc e is removed?".  For a broadcast the meaningful notion is
// *reachability from the source*: every node must remain reachable from
// Psource through active arcs.  All routines therefore take an `active`
// mask indexed by arc id; an empty mask means "all arcs active".

#include <vector>

#include "graph/digraph.hpp"

namespace bt {

/// Boolean per-arc mask; arcs with mask[e] == 0 are ignored.
using EdgeMask = std::vector<char>;

/// Nodes reachable from `source` via active arcs (BFS).
std::vector<char> reachable_from(const Digraph& g, NodeId source,
                                 const EdgeMask& active = {});

/// True iff every node is reachable from `source` via active arcs.
bool all_reachable_from(const Digraph& g, NodeId source,
                        const EdgeMask& active = {});

/// True iff every node is *still* reachable from `source` when arc `removed`
/// is additionally dropped from the active set.  This is the inner test of
/// the pruning heuristics; it runs one BFS (O(n + m)).
bool all_reachable_without(const Digraph& g, NodeId source,
                           const EdgeMask& active, EdgeId removed);

/// Strongly connected components (Tarjan, iterative).  Returns the component
/// index of every node; components are numbered in reverse topological order.
std::vector<std::size_t> strongly_connected_components(const Digraph& g,
                                                       std::size_t* num_components = nullptr);

/// True iff the whole graph is one strongly connected component.
bool is_strongly_connected(const Digraph& g);

}  // namespace bt
