#pragma once

// Single-source shortest paths (Dijkstra) over non-negative arc weights.
//
// The Binomial-Tree heuristic (Algorithm 4 of the paper) schedules transfers
// between arbitrary node pairs and routes each transfer over the shortest
// path in the platform graph, weighted by the per-slice link times T_{u,v}.

#include <vector>

#include "graph/digraph.hpp"

namespace bt {

/// Result of a single-source Dijkstra run.
struct ShortestPathTree {
  /// dist[v]: shortest distance from the source; +inf if unreachable.
  std::vector<double> dist;
  /// parent_edge[v]: arc id of the last arc on the shortest path to v,
  /// Digraph::npos for the source and unreachable nodes.
  std::vector<EdgeId> parent_edge;

  bool reachable(NodeId v) const;
  /// Arc ids of the source -> v path, in path order. Requires reachable(v).
  std::vector<EdgeId> path_to(const Digraph& g, NodeId v) const;
};

/// Dijkstra from `source` with arc weights `weight` (indexed by arc id,
/// all weights must be >= 0).
ShortestPathTree dijkstra(const Digraph& g, NodeId source,
                          const std::vector<double>& weight);

/// All-pairs wrapper: runs Dijkstra from every node. O(n * m log n).
std::vector<ShortestPathTree> all_pairs_shortest_paths(const Digraph& g,
                                                       const std::vector<double>& weight);

}  // namespace bt
