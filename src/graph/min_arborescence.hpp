#pragma once

// Minimum-weight spanning arborescence (Chu-Liu/Edmonds algorithm).
//
// Used as the pricing oracle of the column-generation SSB solver: given dual
// prices on the one-port constraints, the most violated packing column is
// the spanning arborescence of minimum total (priced) weight.

#include <vector>

#include "graph/digraph.hpp"

namespace bt {

struct ArborescenceResult {
  bool found = false;
  double weight = 0.0;
  /// Arc ids (into the input graph) of the n-1 arborescence arcs.
  std::vector<EdgeId> edges;
};

/// Minimum-weight spanning arborescence of `g` rooted at `root` under arc
/// weights `weight` (any sign).  Returns found == false when some node is
/// unreachable from the root.  O(V * E).
ArborescenceResult min_arborescence(const Digraph& g, NodeId root,
                                    const std::vector<double>& weight);

}  // namespace bt
