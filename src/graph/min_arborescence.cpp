#include "graph/min_arborescence.hpp"

#include <deque>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace bt {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// One level of the contraction recursion works on its own dense node ids
/// and edge array; each edge remembers its index in the parent level.
struct LevelEdge {
  std::size_t from;
  std::size_t to;
  double w;
  std::size_t parent;  ///< index into the parent level's edge array
};

/// Per-level scratch buffers.  The pricing loop of the column-generation
/// solver calls the oracle once per round and degenerate (mostly-tied) duals
/// drive the contraction tens of levels deep, so the buffers are pooled per
/// depth and reused across calls instead of being reallocated at every level.
struct LevelWorkspace {
  std::vector<std::size_t> best;
  std::vector<std::size_t> cycle_id;
  std::vector<std::size_t> new_id;
  std::vector<std::size_t> path;
  std::vector<std::size_t> sub_selected;
  std::vector<int> state;
  std::vector<char> displaced;
  std::vector<LevelEdge> contracted;
  // Cheapest-in arc per contracted node, computed for free during the
  // contraction scan and handed to the next level, which then skips its own
  // full best-in pass over the edge array.
  std::vector<std::size_t> next_best;
  std::vector<double> next_best_w;
};

struct ChuLiuWorkspace {
  // Deque, not vector: growing the pool at a deeper recursion level must not
  // invalidate the parent levels' buffers (their `contracted` arrays are
  // live references in the enclosing stack frames).
  std::deque<LevelWorkspace> levels;
  LevelWorkspace& level(std::size_t depth) {
    while (depth >= levels.size()) levels.emplace_back();
    return levels[depth];
  }

  // Epoch-stamped (nu, nv) -> contracted-edge slot map used to keep only the
  // cheapest parallel edge during contraction; shared by all levels (each
  // level claims a fresh epoch).
  std::vector<std::uint64_t> pair_epoch;
  std::vector<std::size_t> pair_index;
  std::uint64_t epoch = 0;
  void ensure_pairs(std::size_t slots) {
    if (pair_epoch.size() < slots) {
      pair_epoch.resize(slots, 0);
      pair_index.resize(slots, 0);
    }
  }
};

/// Pair-dedup is skipped above this node count (the slot table is O(n^2)).
constexpr std::size_t kMaxDedupNodes = 2048;

/// Returns the indices (into `edges`) of a minimum spanning arborescence
/// rooted at `root`, or an empty optional-equivalent (ok=false) when some
/// node has no incoming edge.  `inherited_best` optionally carries the
/// cheapest-in arc per node as precomputed by the parent level's
/// contraction scan (same argmin, one less O(m) pass).
bool chu_liu(ChuLiuWorkspace& ws, std::size_t depth, std::size_t num_nodes,
             std::size_t root, const std::vector<LevelEdge>& edges,
             std::vector<std::size_t>& selected,
             const std::vector<std::size_t>* inherited_best) {
  selected.clear();
  if (num_nodes <= 1) return true;
  LevelWorkspace& w = ws.level(depth);

  // 1. Cheapest incoming edge per node.
  if (inherited_best != nullptr) {
    w.best.assign(inherited_best->begin(), inherited_best->end());
  } else {
    w.best.assign(num_nodes, kNone);
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const LevelEdge& e = edges[i];
      if (e.to == root || e.from == e.to) continue;
      if (w.best[e.to] == kNone || e.w < edges[w.best[e.to]].w) w.best[e.to] = i;
    }
  }
  for (std::size_t v = 0; v < num_nodes; ++v) {
    if (v != root && w.best[v] == kNone) return false;
  }

  // 2. Find cycles in the best-in graph.
  w.cycle_id.assign(num_nodes, kNone);
  w.state.assign(num_nodes, 0);  // 0 unvisited, 1 on path, 2 done
  std::size_t num_cycles = 0;
  for (std::size_t start = 0; start < num_nodes; ++start) {
    if (w.state[start] != 0) continue;
    w.path.clear();
    std::size_t v = start;
    while (v != root && w.state[v] == 0) {
      w.state[v] = 1;
      w.path.push_back(v);
      v = edges[w.best[v]].from;
    }
    if (v != root && w.state[v] == 1) {
      // Found a new cycle; mark its members.
      std::size_t c = num_cycles++;
      std::size_t u = v;
      do {
        w.cycle_id[u] = c;
        u = edges[w.best[u]].from;
      } while (u != v);
    }
    for (std::size_t u : w.path) w.state[u] = 2;
  }

  if (num_cycles == 0) {
    for (std::size_t v = 0; v < num_nodes; ++v) {
      if (v != root) selected.push_back(w.best[v]);
    }
    return true;
  }

  // 3. Contract every cycle into a super-node.
  w.new_id.assign(num_nodes, kNone);
  std::size_t next = num_cycles;  // cycle c -> id c; others get fresh ids
  for (std::size_t v = 0; v < num_nodes; ++v) {
    w.new_id[v] = w.cycle_id[v] != kNone ? w.cycle_id[v] : next++;
  }
  w.contracted.clear();
  w.contracted.reserve(edges.size());
  const std::size_t next_root = w.new_id[root];
  w.next_best.assign(next, kNone);
  w.next_best_w.assign(next, std::numeric_limits<double>::infinity());
  const bool dedup = next <= kMaxDedupNodes;
  if (dedup) {
    ws.ensure_pairs(next * next);
    ++ws.epoch;
  }
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const LevelEdge& e = edges[i];
    const std::size_t nu = w.new_id[e.from];
    const std::size_t nv = w.new_id[e.to];
    if (nu == nv) continue;
    const double reduced = w.cycle_id[e.to] != kNone ? e.w - edges[w.best[e.to]].w : e.w;
    std::size_t where = w.contracted.size();
    if (dedup) {
      // Keep only the cheapest parallel edge per supernode pair: a dominated
      // parallel can never enter a minimum arborescence of the contraction.
      const std::size_t slot = nu * next + nv;
      if (ws.pair_epoch[slot] == ws.epoch) {
        where = ws.pair_index[slot];
        LevelEdge& kept = w.contracted[where];
        if (reduced < kept.w) {
          kept = LevelEdge{nu, nv, reduced, i};
          if (nv != next_root && reduced < w.next_best_w[nv]) {
            w.next_best_w[nv] = reduced;
            w.next_best[nv] = where;
          }
        }
        continue;
      }
      ws.pair_epoch[slot] = ws.epoch;
      ws.pair_index[slot] = where;
    }
    if (nv != next_root && reduced < w.next_best_w[nv]) {
      w.next_best_w[nv] = reduced;
      w.next_best[nv] = where;
    }
    w.contracted.push_back(LevelEdge{nu, nv, reduced, i});
  }

  if (!chu_liu(ws, depth + 1, next, next_root, w.contracted, w.sub_selected, &w.next_best)) {
    return false;
  }

  // 4. Expand: selected contracted edges map to this level; each cycle keeps
  // all its best-in edges except the one displaced by the entering edge.
  w.displaced.assign(num_nodes, 0);
  for (std::size_t idx : w.sub_selected) {
    const std::size_t this_level = w.contracted[idx].parent;
    selected.push_back(this_level);
    const std::size_t head = edges[this_level].to;
    if (w.cycle_id[head] != kNone) w.displaced[head] = 1;
  }
  for (std::size_t v = 0; v < num_nodes; ++v) {
    if (w.cycle_id[v] != kNone && !w.displaced[v]) selected.push_back(w.best[v]);
  }
  return true;
}

}  // namespace

ArborescenceResult min_arborescence(const Digraph& g, NodeId root,
                                    const std::vector<double>& weight) {
  BT_REQUIRE(root < g.num_nodes(), "min_arborescence: root out of range");
  BT_REQUIRE(weight.size() == g.num_edges(), "min_arborescence: weight size mismatch");

  // The workspace (including the top-level edge copy) persists per thread so
  // repeated oracle calls run allocation-free once warmed up.
  thread_local ChuLiuWorkspace ws;
  thread_local std::vector<LevelEdge> edges;
  thread_local std::vector<std::size_t> selected;
  edges.clear();
  edges.reserve(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    edges.push_back(LevelEdge{g.from(e), g.to(e), weight[e], e});
  }

  ArborescenceResult result;
  if (!chu_liu(ws, 0, g.num_nodes(), root, edges, selected, nullptr)) return result;
  result.found = true;
  for (std::size_t idx : selected) {
    result.edges.push_back(static_cast<EdgeId>(idx));
    result.weight += weight[idx];
  }
  BT_ASSERT(result.edges.size() + 1 == g.num_nodes() || g.num_nodes() == 0,
            "min_arborescence: wrong arc count after expansion");
  return result;
}

}  // namespace bt
