#include "graph/min_arborescence.hpp"

#include <limits>
#include <vector>

#include "util/error.hpp"

namespace bt {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// One level of the contraction recursion works on its own dense node ids
/// and edge array; each edge remembers its index in the parent level.
struct LevelEdge {
  std::size_t from;
  std::size_t to;
  double w;
  std::size_t parent;  ///< index into the parent level's edge array
};

/// Returns the indices (into `edges`) of a minimum spanning arborescence
/// rooted at `root`, or an empty optional-equivalent (ok=false) when some
/// node has no incoming edge.
bool chu_liu(std::size_t num_nodes, std::size_t root, const std::vector<LevelEdge>& edges,
             std::vector<std::size_t>& selected) {
  selected.clear();
  if (num_nodes <= 1) return true;

  // 1. Cheapest incoming edge per node.
  std::vector<std::size_t> best(num_nodes, kNone);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const LevelEdge& e = edges[i];
    if (e.to == root || e.from == e.to) continue;
    if (best[e.to] == kNone || e.w < edges[best[e.to]].w) best[e.to] = i;
  }
  for (std::size_t v = 0; v < num_nodes; ++v) {
    if (v != root && best[v] == kNone) return false;
  }

  // 2. Find cycles in the best-in graph.
  std::vector<std::size_t> cycle_id(num_nodes, kNone);
  std::vector<int> state(num_nodes, 0);  // 0 unvisited, 1 on path, 2 done
  std::size_t num_cycles = 0;
  for (std::size_t start = 0; start < num_nodes; ++start) {
    if (state[start] != 0) continue;
    std::vector<std::size_t> path;
    std::size_t v = start;
    while (v != root && state[v] == 0) {
      state[v] = 1;
      path.push_back(v);
      v = edges[best[v]].from;
    }
    if (v != root && state[v] == 1) {
      // Found a new cycle; mark its members.
      std::size_t c = num_cycles++;
      std::size_t w = v;
      do {
        cycle_id[w] = c;
        w = edges[best[w]].from;
      } while (w != v);
    }
    for (std::size_t u : path) state[u] = 2;
  }

  if (num_cycles == 0) {
    for (std::size_t v = 0; v < num_nodes; ++v) {
      if (v != root) selected.push_back(best[v]);
    }
    return true;
  }

  // 3. Contract every cycle into a super-node.
  std::vector<std::size_t> new_id(num_nodes, kNone);
  std::size_t next = num_cycles;  // cycle c -> id c; others get fresh ids
  for (std::size_t v = 0; v < num_nodes; ++v) {
    new_id[v] = cycle_id[v] != kNone ? cycle_id[v] : next++;
  }
  std::vector<LevelEdge> contracted;
  contracted.reserve(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const LevelEdge& e = edges[i];
    const std::size_t nu = new_id[e.from];
    const std::size_t nv = new_id[e.to];
    if (nu == nv) continue;
    const double reduced = cycle_id[e.to] != kNone ? e.w - edges[best[e.to]].w : e.w;
    contracted.push_back(LevelEdge{nu, nv, reduced, i});
  }

  std::vector<std::size_t> sub_selected;
  if (!chu_liu(next, new_id[root], contracted, sub_selected)) return false;

  // 4. Expand: selected contracted edges map to this level; each cycle keeps
  // all its best-in edges except the one displaced by the entering edge.
  std::vector<char> displaced(num_nodes, 0);
  for (std::size_t idx : sub_selected) {
    const std::size_t this_level = contracted[idx].parent;
    selected.push_back(this_level);
    const std::size_t head = edges[this_level].to;
    if (cycle_id[head] != kNone) displaced[head] = 1;
  }
  for (std::size_t v = 0; v < num_nodes; ++v) {
    if (cycle_id[v] != kNone && !displaced[v]) selected.push_back(best[v]);
  }
  return true;
}

}  // namespace

ArborescenceResult min_arborescence(const Digraph& g, NodeId root,
                                    const std::vector<double>& weight) {
  BT_REQUIRE(root < g.num_nodes(), "min_arborescence: root out of range");
  BT_REQUIRE(weight.size() == g.num_edges(), "min_arborescence: weight size mismatch");

  std::vector<LevelEdge> edges;
  edges.reserve(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    edges.push_back(LevelEdge{g.from(e), g.to(e), weight[e], e});
  }

  ArborescenceResult result;
  std::vector<std::size_t> selected;
  if (!chu_liu(g.num_nodes(), root, edges, selected)) return result;
  result.found = true;
  for (std::size_t idx : selected) {
    result.edges.push_back(static_cast<EdgeId>(idx));
    result.weight += weight[idx];
  }
  BT_ASSERT(result.edges.size() + 1 == g.num_nodes() || g.num_nodes() == 0,
            "min_arborescence: wrong arc count after expansion");
  return result;
}

}  // namespace bt
