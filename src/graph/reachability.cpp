#include "graph/reachability.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bt {

namespace {

bool arc_active(const EdgeMask& active, EdgeId e) {
  return active.empty() || active[e] != 0;
}

}  // namespace

std::vector<char> reachable_from(const Digraph& g, NodeId source, const EdgeMask& active) {
  BT_REQUIRE(source < g.num_nodes(), "reachable_from: source out of range");
  BT_REQUIRE(active.empty() || active.size() == g.num_edges(),
             "reachable_from: mask size mismatch");
  std::vector<char> seen(g.num_nodes(), 0);
  std::vector<NodeId> stack{source};
  seen[source] = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (EdgeId e : g.out_edges(u)) {
      if (!arc_active(active, e)) continue;
      const NodeId v = g.to(e);
      if (!seen[v]) {
        seen[v] = 1;
        stack.push_back(v);
      }
    }
  }
  return seen;
}

bool all_reachable_from(const Digraph& g, NodeId source, const EdgeMask& active) {
  const auto seen = reachable_from(g, source, active);
  return std::all_of(seen.begin(), seen.end(), [](char c) { return c != 0; });
}

bool all_reachable_without(const Digraph& g, NodeId source, const EdgeMask& active,
                           EdgeId removed) {
  BT_REQUIRE(removed < g.num_edges(), "all_reachable_without: arc out of range");
  EdgeMask mask = active;
  if (mask.empty()) mask.assign(g.num_edges(), 1);
  const char saved = mask[removed];
  mask[removed] = 0;
  const bool ok = all_reachable_from(g, source, mask);
  // The mask is a local copy, but restore anyway in case of future refactors
  // that hoist it out of the loop.
  mask[removed] = saved;
  return ok;
}

std::vector<std::size_t> strongly_connected_components(const Digraph& g,
                                                       std::size_t* num_components) {
  const std::size_t n = g.num_nodes();
  constexpr std::size_t kUnset = static_cast<std::size_t>(-1);
  std::vector<std::size_t> index(n, kUnset), lowlink(n, 0), component(n, kUnset);
  std::vector<char> on_stack(n, 0);
  std::vector<NodeId> scc_stack;
  std::size_t next_index = 0, next_component = 0;

  // Iterative Tarjan: frame = (node, position in its out-edge list).
  struct Frame {
    NodeId node;
    std::size_t edge_pos;
  };
  std::vector<Frame> call_stack;

  for (NodeId start = 0; start < n; ++start) {
    if (index[start] != kUnset) continue;
    call_stack.push_back({start, 0});
    index[start] = lowlink[start] = next_index++;
    scc_stack.push_back(start);
    on_stack[start] = 1;
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const NodeId u = frame.node;
      const auto& out = g.out_edges(u);
      if (frame.edge_pos < out.size()) {
        const NodeId v = g.to(out[frame.edge_pos++]);
        if (index[v] == kUnset) {
          index[v] = lowlink[v] = next_index++;
          scc_stack.push_back(v);
          on_stack[v] = 1;
          call_stack.push_back({v, 0});
        } else if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
      } else {
        if (lowlink[u] == index[u]) {
          while (true) {
            const NodeId w = scc_stack.back();
            scc_stack.pop_back();
            on_stack[w] = 0;
            component[w] = next_component;
            if (w == u) break;
          }
          ++next_component;
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const NodeId parent = call_stack.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
        }
      }
    }
  }
  if (num_components != nullptr) *num_components = next_component;
  return component;
}

bool is_strongly_connected(const Digraph& g) {
  if (g.num_nodes() <= 1) return true;
  std::size_t count = 0;
  strongly_connected_components(g, &count);
  return count == 1;
}

}  // namespace bt
