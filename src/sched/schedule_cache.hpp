#pragma once

// LRU cache of synthesized periodic schedules for the planner service.
//
// Schedule synthesis (decomposition + round coloring) costs milliseconds on
// paper-size platforms -- cheap next to a cold solve, expensive next to a
// cache hit.  The service keys cached schedules by (source, port model,
// service version): any platform mutation bumps the version, so stale
// schedules age out of the LRU naturally instead of needing explicit
// invalidation, and a rolled-back mutation (degrade then restore) still
// re-synthesizes -- versions never repeat, which is the conservative side.
//
// Entries are shared_ptr<const PeriodicSchedule>: a reader can keep using a
// schedule it fetched while the writer mutates the platform and the entry
// is evicted.

#include <cstdint>
#include <memory>

#include "graph/digraph.hpp"
#include "sched/periodic_schedule.hpp"
#include "util/lru_cache.hpp"

namespace bt {

struct ScheduleCacheKey {
  NodeId source = 0;
  PortModel port_model = PortModel::kBidirectional;
  std::uint64_t version = 0;  ///< service version the schedule was built at

  bool operator==(const ScheduleCacheKey& other) const {
    return source == other.source && port_model == other.port_model &&
           version == other.version;
  }
};

using ScheduleCache = LruCache<ScheduleCacheKey, std::shared_ptr<const PeriodicSchedule>>;

}  // namespace bt
