#include "sched/tree_decomposition.hpp"

#include <algorithm>
#include <functional>
#include <set>
#include <string>

#include "flow/maxflow.hpp"
#include "graph/arborescence.hpp"
#include "graph/min_arborescence.hpp"
#include "graph/reachability.hpp"
#include "lp/simplex.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace bt {

namespace {

/// The support subgraph of the load vector: arcs with load above threshold,
/// with their loads and a map back to the original arc ids.
struct Support {
  Digraph graph;
  std::vector<EdgeId> to_orig;
  std::vector<double> load;
};

Support build_support(const Digraph& g, const std::vector<double>& load, double threshold) {
  Support s;
  s.graph = Digraph(g.num_nodes());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (load[e] <= threshold) continue;
    s.graph.add_edge(g.from(e), g.to(e));
    s.to_orig.push_back(e);
    s.load.push_back(load[e]);
  }
  return s;
}

/// Greedy bottleneck peeling: repeatedly take a spanning arborescence of the
/// highest-loaded arcs (largest threshold tau whose support still spans) and
/// peel it by its minimum residual load.  The peeled trees both seed the
/// packing master and, when they already exhaust TP, short-circuit it.
struct GreedyPeel {
  std::vector<std::vector<EdgeId>> trees;  ///< sub arc ids
  std::vector<double> rates;
  double peeled = 0.0;  ///< sum of rates
};

GreedyPeel greedy_bottleneck_peel(const Support& s, NodeId source, double target,
                                  double support_tol) {
  GreedyPeel result;
  std::vector<double> residual = s.load;
  double remaining = target;
  // A small cap: greedy either exhausts TP quickly (the fast path) or its
  // columns merely seed the packing master, where too many near-parallel
  // seeds degrade the basis more than they help.
  while (result.trees.size() < 16 && remaining > support_tol) {
    std::vector<double> values;
    for (double v : residual) {
      if (v > support_tol) values.push_back(v);
    }
    if (values.empty()) break;
    std::sort(values.begin(), values.end(), std::greater<>());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    // Largest threshold whose support spans; spanning is monotone in the
    // threshold index (smaller threshold = more arcs), so binary search.
    auto spans_at = [&](double tau) {
      EdgeMask mask(s.graph.num_edges(), 0);
      for (EdgeId e = 0; e < s.graph.num_edges(); ++e) mask[e] = residual[e] >= tau ? 1 : 0;
      return all_reachable_from(s.graph, source, mask);
    };
    std::size_t lo = 0, hi = values.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (spans_at(values[mid])) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    if (lo == values.size()) break;  // residual support no longer spans
    const double tau = values[lo];
    EdgeMask mask(s.graph.num_edges(), 0);
    for (EdgeId e = 0; e < s.graph.num_edges(); ++e) mask[e] = residual[e] >= tau ? 1 : 0;
    const std::vector<EdgeId> tree = bfs_arborescence(s.graph, source, mask);
    if (tree.empty()) break;
    double rate = remaining;
    for (EdgeId e : tree) rate = std::min(rate, residual[e]);
    if (rate <= support_tol) break;
    for (EdgeId e : tree) residual[e] -= rate;
    remaining -= rate;
    result.trees.push_back(tree);
    result.rates.push_back(rate);
    result.peeled += rate;
  }
  return result;
}

}  // namespace

TreeDecomposition decompose_edge_load(const Platform& platform, const SsbSolution& solution,
                                      const TreeDecompositionOptions& options) {
  const Digraph& g = platform.graph();
  const std::size_t p = g.num_nodes();
  BT_REQUIRE(p >= 2, "decompose_edge_load: need at least two nodes");
  BT_REQUIRE(solution.solved, "decompose_edge_load: solution is not solved");
  BT_REQUIRE(solution.edge_load.size() == g.num_edges(),
             "decompose_edge_load: edge_load size mismatch");
  const double tp = solution.throughput;
  BT_REQUIRE(tp > 0.0, "decompose_edge_load: non-positive throughput");
  const double scale = std::max(1.0, tp);
  const double value_tol = options.tolerance * scale;

  TreeDecomposition result;

  // ---- Exact path: the solver already holds a tree decomposition. ----
  if (options.use_solution_columns && !solution.tree_columns.empty()) {
    double total = 0.0;
    for (const PackedTree& tree : solution.tree_columns) {
      if (tree.rate <= 0.0) continue;
      std::string why;
      BT_REQUIRE(is_spanning_arborescence(g, platform.source(), tree.edges, &why),
                 "decompose_edge_load: solver tree column is not spanning: " + why);
      result.trees.push_back(tree);
      total += tree.rate;
    }
    BT_REQUIRE(std::abs(total - tp) <= 1e-6 * scale,
               "decompose_edge_load: tree column rates do not sum to the throughput");
    if (total > tp) {
      for (PackedTree& tree : result.trees) tree.rate *= tp / total;
      total = tp;
    }
    result.throughput = total;
    result.from_columns = true;
    return result;
  }

  // ---- Reconstruction from the loads. ----
  const double support_tol = options.tolerance * scale;
  const Support support = build_support(g, solution.edge_load, support_tol);
  const NodeId source = platform.source();
  BT_REQUIRE(all_reachable_from(support.graph, source),
             "decompose_edge_load: edge-load support does not span the platform");

  // Precondition (Edmonds): the loads carry TP* units of flow to every
  // destination.  One max-flow per destination, exactly the cutting-plane
  // separation certificate -- and parallelized the same way: contiguous
  // destination chunks, one single-consumer MaxFlowSolver per chunk, values
  // into destination-indexed slots.  The check runs serially afterwards so
  // a failure always reports the *first* under-served destination,
  // whatever the pool width.
  {
    ThreadPool& pool = options.pool != nullptr ? *options.pool : global_thread_pool();
    std::vector<NodeId> dests;
    dests.reserve(p - 1);
    for (NodeId w = 0; w < p; ++w) {
      if (w != source) dests.push_back(w);
    }
    const ChunkSplit split(dests.size(), pool.num_threads());
    std::vector<double> cert_value(dests.size(), 0.0);
    parallel_for(pool, split.chunks, [&](std::size_t c) {
      MaxFlowSolver maxflow(support.graph);
      MaxFlowResult flow;
      for (std::size_t i = split.chunk_begin(c); i < split.chunk_begin(c + 1); ++i) {
        maxflow.solve(source, dests[i], support.load, flow);
        cert_value[i] = flow.value;
      }
    });
    for (std::size_t i = 0; i < dests.size(); ++i) {
      BT_REQUIRE(cert_value[i] >= tp - 1e-6 * scale,
                 "decompose_edge_load: loads do not support the throughput (destination " +
                     std::to_string(dests[i]) + " receives " + std::to_string(cert_value[i]) +
                     " < " + std::to_string(tp) + ")");
    }
  }

  const GreedyPeel greedy = greedy_bottleneck_peel(support, source, tp, support_tol);
  result.greedy_trees = greedy.trees.size();

  std::vector<std::vector<EdgeId>> columns;  // sub arc ids, aligned with LP variables
  std::vector<double> lambda;

  if (tp - greedy.peeled <= value_tol && !greedy.trees.empty()) {
    // Greedy already exhausted the throughput; its rates are feasible by
    // construction (residuals stayed non-negative).
    columns = greedy.trees;
    lambda = greedy.rates;
  } else {
    // Restricted packing master over the support arcs, seeded with the
    // greedy trees (their rates are discarded -- the LP re-prices them).
    std::set<std::vector<EdgeId>> seen;
    auto key_of = [](std::vector<EdgeId> edges) {
      std::sort(edges.begin(), edges.end());
      return edges;
    };
    LpProblem lp(Objective::kMaximize);
    auto seed_trees = greedy.trees;
    if (seed_trees.empty()) {
      const std::vector<EdgeId> any = bfs_arborescence(support.graph, source);
      BT_ASSERT(!any.empty(), "decompose_edge_load: spanning support lost its tree");
      seed_trees.push_back(any);
    }
    for (const auto& tree : seed_trees) {
      if (!seen.insert(key_of(tree)).second) continue;
      lp.add_variable(1.0, "tree" + std::to_string(columns.size()));
      columns.push_back(tree);
    }
    std::vector<std::vector<LpTerm>> rows(support.graph.num_edges());
    for (std::size_t j = 0; j < columns.size(); ++j) {
      for (EdgeId e : columns[j]) rows[e].push_back({j, 1.0});
    }
    for (EdgeId e = 0; e < support.graph.num_edges(); ++e) {
      lp.add_constraint(rows[e], RowSense::kLessEqual, support.load[e]);
    }

    IncrementalSimplex engine(lp);
    const std::size_t m_sub = support.graph.num_edges();
    // Accept a tree as a new column when its true reduced cost improves
    // (1 - sum of duals > 0) and it is not already in the pool.
    auto try_append = [&](const ArborescenceResult& priced, const std::vector<double>& y) {
      BT_ASSERT(priced.found, "decompose_edge_load: pricing lost the spanning property");
      double dual_cost = 0.0;
      for (EdgeId e : priced.edges) dual_cost += y[e];
      if (dual_cost >= 1.0 - 1e-12 || !seen.insert(key_of(priced.edges)).second) return false;
      std::vector<LpTerm> terms;
      terms.reserve(priced.edges.size());
      for (EdgeId e : priced.edges) terms.push_back({e, 1.0});
      engine.add_column(1.0, terms);
      columns.push_back(priced.edges);
      return true;
    };
    double objective = 0.0;
    bool have_optimum = false;
    while (true) {
      if (result.pricing_rounds >= options.max_pricing_rounds) {
        // Same good-enough fallback as the engine-stall path below: the
        // cold polish + repair finish from any iterate above the floor.
        BT_REQUIRE(have_optimum && objective >= tp - 1e-6 * scale,
                   "decompose_edge_load: pricing round cap hit without convergence");
        break;
      }
      ++result.pricing_rounds;
      const LpSolution master = engine.solve();
      if (master.status != LpStatus::kOptimal) {
        // The packing master grows massively degenerate near its optimum
        // and the engine can stall out; the previous optimal iterate is a
        // valid (slightly incomplete) decomposition -- fall back to it.
        BT_REQUIRE(have_optimum && objective >= tp - 1e-6 * scale,
                   "decompose_edge_load: packing master LP " + to_string(master.status));
        break;
      }
      objective = master.objective;
      lambda = master.x;
      have_optimum = true;
      // Stop at 1e-7 relative: the degenerate tail from there to 1e-9
      // costs more master time than the rest of the decomposition
      // combined, and the cold polish below re-derives the rates anyway.
      if (objective >= tp - std::max(value_tol, 1e-7 * scale)) break;

      std::vector<double> y(m_sub);
      for (EdgeId e = 0; e < m_sub; ++e) y[e] = std::max(0.0, master.duals[e]);
      // Primary pricing steers toward slack-rich arcs: among the many
      // reduced-cost-improving trees of the degenerate master, prefer one
      // whose arcs can still carry rate, so the entering column makes real
      // primal progress.  Without this bias the master tails off for
      // thousands of rounds at 80+ nodes (each raw-dual tree reuses nearly
      // exhausted arcs and enters with a tiny step).  The bias is bounded
      // by 0.1 in total, and acceptance always re-checks the *true*
      // reduced cost; pure-dual pricing remains the convergence
      // certificate.
      std::vector<double> usage(m_sub, 0.0);
      for (std::size_t j = 0; j < columns.size(); ++j) {
        if (j >= lambda.size() || lambda[j] <= 0.0) continue;
        for (EdgeId e : columns[j]) usage[e] += lambda[j];
      }
      double max_slack = 1e-300;
      std::vector<double> slack(m_sub);
      for (EdgeId e = 0; e < m_sub; ++e) {
        slack[e] = std::max(0.0, support.load[e] - usage[e]);
        max_slack = std::max(max_slack, slack[e]);
      }
      const double bonus = 0.1 / static_cast<double>(p);
      std::vector<double> steered(m_sub);
      for (EdgeId e = 0; e < m_sub; ++e) steered[e] = y[e] - bonus * (slack[e] / max_slack);
      bool progressed = try_append(min_arborescence(support.graph, source, steered), y);
      if (!progressed) {
        progressed = try_append(min_arborescence(support.graph, source, y), y);
      }
      if (!progressed) {
        BT_REQUIRE(objective >= tp - 1e-6 * scale,
                   "decompose_edge_load: packing master converged below the throughput");
        break;
      }
    }

    // Final cold polish (the cutting-plane master's pattern): a long
    // incrementally-updated run can hand back a primal with ~1e-5 row
    // drift on this degenerate master; one cold solve over the converged
    // column pool restores a cleanly feasible basic solution.
    {
      LpProblem polish(Objective::kMaximize);
      for (std::size_t j = 0; j < columns.size(); ++j) {
        polish.add_variable(1.0, "tree" + std::to_string(j));
      }
      std::vector<std::vector<LpTerm>> polish_rows(m_sub);
      for (std::size_t j = 0; j < columns.size(); ++j) {
        for (EdgeId e : columns[j]) polish_rows[e].push_back({j, 1.0});
      }
      for (EdgeId e = 0; e < m_sub; ++e) {
        polish.add_constraint(polish_rows[e], RowSense::kLessEqual, support.load[e]);
      }
      const LpSolution cold = solve_lp(polish);
      BT_REQUIRE(cold.status == LpStatus::kOptimal && cold.objective >= tp - 1e-6 * scale,
                 "decompose_edge_load: cold polish failed (" + to_string(cold.status) + ")");
      lambda = cold.x;
    }
  }

  // ---- Assemble: map back to original arc ids; cap the total at TP*. ----
  // Rates are only ever scaled *down* (the restricted master may pack more
  // than TP* when the loads have slack), never up -- scaling up could push
  // an arc above its load and void the checker's accounting.
  double total = 0.0;
  for (std::size_t j = 0; j < columns.size(); ++j) {
    const double rate = j < lambda.size() ? lambda[j] : 0.0;
    if (rate <= 1e-12 * scale) continue;
    PackedTree tree;
    tree.rate = rate;
    tree.edges.reserve(columns[j].size());
    for (EdgeId e : columns[j]) tree.edges.push_back(support.to_orig[e]);
    result.trees.push_back(std::move(tree));
    total += rate;
  }
  BT_REQUIRE(total >= tp - 1e-6 * scale,
             "decompose_edge_load: decomposition rate " + std::to_string(total) +
                 " below throughput " + std::to_string(tp));
  if (total > tp) {
    for (PackedTree& tree : result.trees) tree.rate *= tp / total;
    total = tp;
  }
  // Exact feasibility repair: the degenerate packing master can hand back
  // rates with a bounded (~1e-6 relative) excess over some arc loads; one
  // proportional scale-down removes it exactly, costing at most that much
  // rate (the 2e-6 floor below accounts for both shortfalls).
  {
    std::vector<double> usage(g.num_edges(), 0.0);
    for (const PackedTree& tree : result.trees) {
      for (EdgeId e : tree.edges) usage[e] += tree.rate;
    }
    double factor = 1.0;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (usage[e] > solution.edge_load[e] && usage[e] > 0.0) {
        factor = std::min(factor, solution.edge_load[e] / usage[e]);
      }
    }
    if (factor < 1.0) {
      for (PackedTree& tree : result.trees) tree.rate *= factor;
      total *= factor;
    }
  }
  BT_REQUIRE(total >= tp - 2e-6 * scale,
             "decompose_edge_load: decomposition rate " + std::to_string(total) +
                 " below throughput " + std::to_string(tp) + " after feasibility repair");
  result.throughput = total;
  return result;
}

}  // namespace bt
