#pragma once

// Flow -> tree decomposition: peel the fractional edge loads n_{u,v} of an
// SSB optimum into a convex combination of weighted spanning broadcast
// trees of total rate TP* (the constructive half of Edmonds' branching
// theorem the paper leans on).
//
// Two paths:
//
//  * exact: when the solution carries native tree columns (the
//    column-generation master prices spanning arborescences, so its
//    positive-rate columns *are* a decomposition), they are returned as is;
//
//  * reconstruction (cutting-plane / direct solver loads): the loads are
//    first checked to support TP* (one max-flow per destination -- the same
//    min-cut certificate the cutting-plane separation uses), then a
//    restricted packing master is solved over the *support* arcs:
//
//      maximize  sum_T lambda_T
//      s.t.      sum_{T ni e} lambda_T <= n_e     (every support arc e)
//
//    with columns generated lazily: under arc duals y_e the most violated
//    tree is the minimum-weight spanning arborescence (Chu-Liu/Edmonds),
//    improving while its weight is < 1.  The master is seeded with greedy
//    bottleneck trees (repeatedly: the spanning arborescence of the arcs
//    with the largest loads, peeled by its minimum load) so the LP usually
//    converges in a handful of pricing rounds.  Because the returned rates
//    form a *basic* optimal solution of a program with at most |E| rows,
//    the decomposition uses at most |E| trees.

#include <cstddef>
#include <vector>

#include "platform/platform.hpp"
#include "ssb/ssb_solution.hpp"

namespace bt {

class ThreadPool;

struct TreeDecompositionOptions {
  /// Relative target of the reconstruction.  Small platforms converge to
  /// it; at scale the massively degenerate packing master is stopped at
  /// 1e-7 relative (its tail costs more than the whole decomposition) and
  /// a cold polish plus exact feasibility repair finish the rates, so the
  /// reconstruction always completes at no worse than TP* * (1 - 2e-6)
  /// (the hard floor -- anything below throws) with arc usage <= edge_load
  /// exactly.  Arcs with load below tolerance * max(1, TP*) are treated as
  /// unused.
  double tolerance = 1e-9;
  /// Safety cap on pricing rounds of the restricted packing master.
  std::size_t max_pricing_rounds = 10000;
  /// Consume SsbSolution::tree_columns when present (exact path).  Disable
  /// to force the edge-load reconstruction, e.g. to test it on colgen loads.
  bool use_solution_columns = true;
  /// Worker pool for the per-destination max-flow certificate (nullptr:
  /// the process-wide global_thread_pool()).  The certificate values are
  /// collected into destination-indexed slots and checked serially, so the
  /// pool width changes wall-clock only.
  ThreadPool* pool = nullptr;
};

struct TreeDecomposition {
  /// Weighted spanning trees; rates are scaled to sum to the solution's
  /// TP* exactly and respect the arc loads within tolerance.
  std::vector<PackedTree> trees;
  double throughput = 0.0;         ///< sum of rates
  bool from_columns = false;       ///< exact path taken
  std::size_t greedy_trees = 0;    ///< seeds found by bottleneck peeling
  std::size_t pricing_rounds = 0;  ///< LP pricing rounds of the reconstruction
};

/// Decompose `solution.edge_load` (or adopt its native tree columns) into
/// weighted spanning broadcast trees.  Throws bt::Error on unsolved
/// solutions, platforms with fewer than two nodes, or loads that do not
/// support the claimed throughput.
TreeDecomposition decompose_edge_load(const Platform& platform, const SsbSolution& solution,
                                      const TreeDecompositionOptions& options = {});

}  // namespace bt
