#pragma once

// Executable periodic broadcast schedules.
//
// The SSB solvers (ssb/) compute the optimal steady-state throughput TP* and
// the per-arc loads n_{u,v} of program (2) -- the quantities the paper proves
// polynomial.  A PeriodicSchedule is the step the paper calls "complicated"
// and skips: an explicit period of conflict-free communication rounds that
// *realizes* those loads.  It is produced in two stages (sched/):
//
//  1. tree_decomposition.hpp peels the fractional edge loads into a convex
//     combination of weighted spanning broadcast trees (Edmonds' branching
//     theorem guarantees one exists at rate TP*);
//  2. orchestrate.hpp scales the trees to a common period and edge-colors
//     the resulting send x receive communication multigraph into rounds
//     (Birkhoff-von Neumann matching peeling), so that within a round no
//     port is used twice.
//
// Rounds are *fluid*: a transfer may ship a fractional number of slices
// (equivalently, the slice is subdivided), which is the standard preemptive
// one-port schedule of the steady-state scheduling literature.  All integral
// schedules are a special case.  sim/schedule_replay.hpp executes a schedule
// period by period and measures the achieved steady-state rate.

#include <cstddef>
#include <string>
#include <vector>

#include "platform/platform.hpp"
#include "ssb/ssb_solution.hpp"

namespace bt {

/// One tree of a periodic schedule: its arcs and how many slices it ships
/// per period (fractional; the fluid analog of an integer slice count).
struct ScheduledTree {
  std::vector<EdgeId> edges;       ///< spanning arborescence arcs
  double slices_per_period = 0.0;  ///< s_T = lambda_T * period
};

/// One point-to-point transfer inside a round: `amount` slices of tree
/// `tree` shipped over `arc`.  Its port occupation time is
/// amount * T_arc <= round duration.
struct ScheduleTransfer {
  EdgeId arc = 0;
  std::size_t tree = 0;  ///< index into PeriodicSchedule::trees
  double amount = 0.0;   ///< slices (fractional)
};

/// A conflict-free communication round: all transfers run concurrently for
/// `duration` seconds.  Under the bidirectional one-port model no two
/// transfers share a sender or share a receiver; under the unidirectional
/// model no two transfers share any endpoint.
struct ScheduleRound {
  double duration = 0.0;  ///< seconds
  std::vector<ScheduleTransfer> transfers;
};

/// A periodic broadcast schedule: every `period` seconds each tree T ships
/// s_T fresh slices one hop further, through the listed rounds.  In steady
/// state (after a transient of max tree depth periods) every node receives
/// slices_per_period slices per period, i.e. rate slices_per_period/period.
struct PeriodicSchedule {
  PortModel port_model = PortModel::kBidirectional;
  NodeId root = 0;
  double period = 0.0;             ///< seconds; sum of round durations
  double slices_per_period = 0.0;  ///< sum over trees of s_T
  std::vector<ScheduledTree> trees;
  std::vector<ScheduleRound> rounds;

  /// Designed steady-state rate (slices per second).
  double throughput() const { return period > 0.0 ? slices_per_period / period : 0.0; }
};

/// Human-readable round-by-round rendering; at most `max_rounds` rounds are
/// printed (0 = all).  For examples / debugging.
std::string describe_schedule(const Platform& platform, const PeriodicSchedule& schedule,
                              std::size_t max_rounds = 0);

}  // namespace bt
