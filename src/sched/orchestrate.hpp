#pragma once

// One-port orchestration: turn a weighted multi-tree decomposition into a
// conflict-free PeriodicSchedule.
//
// The trees are scaled to a common reference period (one slice in total per
// period), their per-arc transfer times are aggregated into a send x receive
// communication multigraph, and that multigraph is edge-colored into rounds
// by weighted matching peeling:
//
//  * bidirectional one-port (bipartite: a node's send and receive ports are
//    independent): the load matrix is padded with fictitious idle transfers
//    until every send and receive port carries exactly the maximum load L
//    (Birkhoff-von Neumann completion); then every round is a *perfect*
//    matching of the positive-weight edges -- one always exists by Hall's
//    condition, because padding keeps all port loads equal -- peeled by its
//    minimum edge weight.  The rounds sum to exactly L, so the schedule
//    realizes the decomposition's full rate: for an SSB optimum, TP*.
//
//  * unidirectional one-port (a node's single port serializes sends *and*
//    receives): rounds are matchings of the general conflict graph, built
//    greedily highest-loaded-ports-first.  Here matchings cannot always
//    realize the LP value: the unidirectional SSB program only carries
//    per-node rows, while a true schedule also obeys odd-set (fractional
//    edge-coloring) bounds.  On a uniform 3-node clique the LP claims
//    TP* = 2/3 while any schedule -- ours included -- tops out at 1/2,
//    because any two of the three transfers share a port.  The achieved
//    rate is schedule.throughput(); tests pin the 3/4 ratio on the
//    triangle.
//
// Rounds are fluid (transfers may carry fractional slices); see
// periodic_schedule.hpp.

#include <vector>

#include "core/broadcast_tree.hpp"
#include "sched/periodic_schedule.hpp"
#include "sched/tree_decomposition.hpp"

namespace bt {

struct OrchestrationOptions {
  PortModel port_model = PortModel::kBidirectional;
  /// Relative tolerance below which residual transfer time is dropped.
  double tolerance = 1e-12;
  /// Worker pool for the parallel pieces of the peel (nullptr: the
  /// process-wide global_thread_pool()): per-tree spanning validation, and
  /// each BvN round's consume step -- matched edges carry distinct arcs, so
  /// their queue drains are independent and the per-match transfer buckets
  /// concatenate in sender order.  Schedules are bitwise-identical at any
  /// pool width.
  ThreadPool* pool = nullptr;
};

/// Orchestrate weighted spanning trees (rates in slices per second) into a
/// periodic schedule.  Throws bt::Error when `trees` is empty, a tree is not
/// a spanning arborescence, or no rate is positive.
PeriodicSchedule orchestrate_one_port(const Platform& platform,
                                      const std::vector<PackedTree>& trees,
                                      const OrchestrationOptions& options = {});

/// Convenience: decomposition + orchestration from any SSB solution.
PeriodicSchedule synthesize_schedule(const Platform& platform, const SsbSolution& solution,
                                     const OrchestrationOptions& options = {},
                                     const TreeDecompositionOptions& decomposition = {});

/// A single-tree heuristic as a periodic schedule: the tree runs at the
/// highest rate its ports allow under `model` (for the bidirectional model
/// this reproduces 1 / one_port_period).  Lets the replay executor rate
/// heuristic trees and multi-tree optima with the same machinery.
PeriodicSchedule schedule_single_tree(const Platform& platform, const BroadcastTree& tree,
                                      PortModel model = PortModel::kBidirectional);

}  // namespace bt
