#include "sched/periodic_schedule.hpp"

#include <sstream>

namespace bt {

std::string describe_schedule(const Platform& platform, const PeriodicSchedule& schedule,
                              std::size_t max_rounds) {
  const Digraph& g = platform.graph();
  std::ostringstream out;
  out.precision(4);
  out << "periodic schedule ("
      << (schedule.port_model == PortModel::kBidirectional ? "bidirectional" : "unidirectional")
      << " one-port): period " << schedule.period << " s, " << schedule.slices_per_period
      << " slices/period (" << schedule.throughput() << " slices/s), " << schedule.trees.size()
      << " tree(s), " << schedule.rounds.size() << " round(s)\n";
  for (std::size_t i = 0; i < schedule.trees.size(); ++i) {
    out << "  tree " << i << ": " << schedule.trees[i].slices_per_period << " slices/period\n";
  }
  const std::size_t shown = max_rounds == 0
                                ? schedule.rounds.size()
                                : std::min(max_rounds, schedule.rounds.size());
  for (std::size_t r = 0; r < shown; ++r) {
    const ScheduleRound& round = schedule.rounds[r];
    out << "  round " << r << " (" << round.duration << " s):";
    for (const ScheduleTransfer& t : round.transfers) {
      out << "  " << g.from(t.arc) << "->" << g.to(t.arc) << " [tree " << t.tree << ", "
          << t.amount << " slice]";
    }
    out << "\n";
  }
  if (shown < schedule.rounds.size()) {
    out << "  ... " << schedule.rounds.size() - shown << " more round(s)\n";
  }
  return out.str();
}

}  // namespace bt
