#include "sched/orchestrate.hpp"

#include <algorithm>
#include <numeric>
#include <string>

#include "graph/arborescence.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace bt {

namespace {

/// An edge of the communication multigraph: total transfer time `w` between
/// the send port of `from` and the receive port of `to` this period.
/// Fictitious edges (arc == npos) are Birkhoff-von Neumann padding: idle
/// time inserted so every port load equals the maximum; they occupy ports
/// in the matching but emit no transfers.
struct CommEdge {
  NodeId from;
  NodeId to;
  double w;
  EdgeId arc;  ///< original arc id; Digraph::npos for padding
};

/// Per-arc queue of (tree, transfer time) segments; rounds consume it front
/// to back, so each tree's traffic over an arc occupies contiguous rounds.
struct ArcQueue {
  std::vector<std::pair<std::size_t, double>> items;
  std::size_t head = 0;
};

/// Pop `duration` seconds of traffic from `queue` into round transfers.
void consume(ArcQueue& queue, EdgeId arc, double arc_time, double duration, double eps,
             std::vector<ScheduleTransfer>& transfers) {
  while (duration > eps && queue.head < queue.items.size()) {
    auto& [tree, remaining] = queue.items[queue.head];
    const double used = std::min(duration, remaining);
    transfers.push_back({arc, tree, used / arc_time});
    remaining -= used;
    duration -= used;
    if (remaining <= eps) ++queue.head;
  }
}

/// Kuhn augmenting path over the active (w > eps) communication edges.
bool augment(NodeId u, const std::vector<std::vector<std::size_t>>& send_edges,
             const std::vector<CommEdge>& edges, double eps, std::vector<char>& visited,
             std::vector<std::size_t>& match_send, std::vector<std::size_t>& match_recv) {
  for (std::size_t idx : send_edges[u]) {
    if (edges[idx].w <= eps) continue;
    const NodeId v = edges[idx].to;
    if (visited[v]) continue;
    visited[v] = 1;
    if (match_recv[v] == Digraph::npos ||
        augment(edges[match_recv[v]].from, send_edges, edges, eps, visited, match_send,
                match_recv)) {
      match_send[u] = idx;
      match_recv[v] = idx;
      return true;
    }
  }
  return false;
}

/// Bidirectional rounds: BvN padding + perfect-matching peeling.  Realizes
/// period = max port load exactly (up to fp tail), which is optimal.
void peel_bidirectional(const Platform& platform, std::vector<CommEdge> edges,
                        std::vector<ArcQueue>& queues, double eps, ThreadPool& pool,
                        PeriodicSchedule& schedule) {
  const std::size_t n = platform.num_nodes();
  std::vector<double> out_load(n, 0.0), in_load(n, 0.0);
  for (const CommEdge& e : edges) {
    out_load[e.from] += e.w;
    in_load[e.to] += e.w;
  }
  const double max_load = std::max(*std::max_element(out_load.begin(), out_load.end()),
                                   *std::max_element(in_load.begin(), in_load.end()));
  // Padding: equalize every port to max_load (total send deficit equals
  // total receive deficit, so greedy pairing closes both).
  std::vector<std::pair<NodeId, double>> send_deficit, recv_deficit;
  for (NodeId u = 0; u < n; ++u) {
    if (max_load - out_load[u] > eps) send_deficit.push_back({u, max_load - out_load[u]});
    if (max_load - in_load[u] > eps) recv_deficit.push_back({u, max_load - in_load[u]});
  }
  std::size_t si = 0, ri = 0;
  while (si < send_deficit.size() && ri < recv_deficit.size()) {
    auto& [u, du] = send_deficit[si];
    auto& [v, dv] = recv_deficit[ri];
    const double w = std::min(du, dv);
    edges.push_back({u, v, w, Digraph::npos});
    du -= w;
    dv -= w;
    if (du <= eps) ++si;
    if (dv <= eps) ++ri;
  }

  std::vector<std::vector<std::size_t>> send_edges(n);
  for (std::size_t i = 0; i < edges.size(); ++i) send_edges[edges[i].from].push_back(i);
  std::vector<std::size_t> match_send(n, Digraph::npos), match_recv(n, Digraph::npos);
  std::vector<char> visited(n, 0);

  const std::size_t max_rounds = edges.size() + n + 8;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    // Re-match senders whose matched edge was exhausted (warm start: the
    // rest of the matching carries over between rounds).
    bool any_active = false;
    for (NodeId u = 0; u < n; ++u) {
      if (match_send[u] != Digraph::npos && edges[match_send[u]].w <= eps) {
        match_recv[edges[match_send[u]].to] = Digraph::npos;
        match_send[u] = Digraph::npos;
      }
    }
    for (NodeId u = 0; u < n; ++u) {
      if (match_send[u] != Digraph::npos) {
        any_active = true;
        continue;
      }
      const bool has_active = std::any_of(send_edges[u].begin(), send_edges[u].end(),
                                          [&](std::size_t i) { return edges[i].w > eps; });
      if (!has_active) continue;  // port fully drained
      std::fill(visited.begin(), visited.end(), 0);
      if (augment(u, send_edges, edges, eps, visited, match_send, match_recv)) {
        any_active = true;
      } else {
        // Only a numerically negligible tail can be unmatchable (padding
        // keeps all port loads equal); drop it.
        for (std::size_t i : send_edges[u]) {
          BT_ASSERT(edges[i].w <= 1e-6 * std::max(max_load, 1.0),
                    "orchestrate_one_port: unmatchable residual transfer time");
          edges[i].w = 0.0;
        }
      }
    }
    if (!any_active) break;

    double delta = max_load;
    std::vector<NodeId> matched;
    matched.reserve(n);
    for (NodeId u = 0; u < n; ++u) {
      if (match_send[u] == Digraph::npos) continue;
      delta = std::min(delta, edges[match_send[u]].w);
      matched.push_back(u);
    }
    ScheduleRound out_round;
    out_round.duration = delta;
    // Consume the matched edges' queues in parallel: every matched edge
    // carries a distinct arc (real arcs are aggregated one CommEdge each;
    // padding edges skip the queues), so the drains touch disjoint state.
    // Each match fills its own transfer bucket; concatenating the buckets
    // in sender order reproduces the serial append order exactly.
    const ChunkSplit msplit(matched.size(), pool.num_threads());
    std::vector<std::vector<ScheduleTransfer>> buckets(matched.size());
    parallel_for(pool, msplit.chunks, [&](std::size_t c) {
      for (std::size_t i = msplit.chunk_begin(c); i < msplit.chunk_begin(c + 1); ++i) {
        CommEdge& e = edges[match_send[matched[i]]];
        if (e.arc != Digraph::npos) {
          consume(queues[e.arc], e.arc, platform.edge_time(e.arc), delta, eps, buckets[i]);
        }
        e.w -= delta;
      }
    });
    out_round.transfers = concatenate_in_order(std::move(buckets));
    schedule.period += delta;
    schedule.rounds.push_back(std::move(out_round));
  }
  BT_ASSERT(std::none_of(edges.begin(), edges.end(),
                         [&](const CommEdge& e) { return e.w > eps; }),
            "orchestrate_one_port: round cap hit with residual transfer time");
}

/// Unidirectional rounds: greedy matchings of the general conflict graph,
/// highest-loaded ports first.  Matchings cannot always realize the LP
/// value here (odd-set bounds); see the header.
void peel_unidirectional(const Platform& platform, std::vector<CommEdge> edges,
                         std::vector<ArcQueue>& queues, double eps,
                         PeriodicSchedule& schedule) {
  const std::size_t n = platform.num_nodes();
  std::vector<double> load(n, 0.0);
  for (const CommEdge& e : edges) {
    load[e.from] += e.w;
    load[e.to] += e.w;
  }
  std::vector<std::size_t> order(edges.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<char> used(n, 0);
  const std::size_t max_rounds = edges.size() + 8;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const double ka = std::max(load[edges[a].from], load[edges[a].to]);
      const double kb = std::max(load[edges[b].from], load[edges[b].to]);
      if (ka != kb) return ka > kb;
      return edges[a].w > edges[b].w;
    });
    std::fill(used.begin(), used.end(), 0);
    std::vector<std::size_t> matched;
    for (std::size_t i : order) {
      const CommEdge& e = edges[i];
      if (e.w <= eps || used[e.from] || used[e.to]) continue;
      used[e.from] = used[e.to] = 1;
      matched.push_back(i);
    }
    if (matched.empty()) break;
    double delta = edges[matched.front()].w;
    for (std::size_t i : matched) delta = std::min(delta, edges[i].w);
    ScheduleRound out_round;
    out_round.duration = delta;
    for (std::size_t i : matched) {
      CommEdge& e = edges[i];
      consume(queues[e.arc], e.arc, platform.edge_time(e.arc), delta, eps,
              out_round.transfers);
      e.w -= delta;
      load[e.from] -= delta;
      load[e.to] -= delta;
    }
    schedule.period += delta;
    schedule.rounds.push_back(std::move(out_round));
  }
  BT_ASSERT(std::none_of(edges.begin(), edges.end(),
                         [&](const CommEdge& e) { return e.w > eps; }),
            "orchestrate_one_port: round cap hit with residual transfer time");
}

}  // namespace

PeriodicSchedule orchestrate_one_port(const Platform& platform,
                                      const std::vector<PackedTree>& trees,
                                      const OrchestrationOptions& options) {
  const Digraph& g = platform.graph();
  BT_REQUIRE(g.num_nodes() >= 2,
             "orchestrate_one_port: single-node platform has no transfers to schedule");
  ThreadPool& pool = options.pool != nullptr ? *options.pool : global_thread_pool();
  // Validate the trees over the pool (each spanning check is an independent
  // graph traversal), reporting failures serially so the error always names
  // the first bad tree regardless of the pool width.
  std::vector<char> tree_ok(trees.size(), 1);
  std::vector<std::string> tree_why(trees.size());
  const ChunkSplit vsplit(trees.size(), pool.num_threads());
  parallel_for(pool, vsplit.chunks, [&](std::size_t c) {
    for (std::size_t i = vsplit.chunk_begin(c); i < vsplit.chunk_begin(c + 1); ++i) {
      if (trees[i].rate <= 0.0) continue;
      tree_ok[i] =
          is_spanning_arborescence(g, platform.source(), trees[i].edges, &tree_why[i]) ? 1 : 0;
    }
  });
  double total_rate = 0.0;
  for (std::size_t i = 0; i < trees.size(); ++i) {
    if (trees[i].rate <= 0.0) continue;
    BT_REQUIRE(tree_ok[i],
               "orchestrate_one_port: tree is not a spanning arborescence: " + tree_why[i]);
    total_rate += trees[i].rate;
  }
  BT_REQUIRE(total_rate > 0.0, "orchestrate_one_port: no tree with positive rate");

  PeriodicSchedule schedule;
  schedule.port_model = options.port_model;
  schedule.root = platform.source();

  // Reference period: one slice in total per period (the schedule is
  // scale-free; round durations simply stretch with the period).
  const double ref_period = 1.0 / total_rate;
  for (const PackedTree& tree : trees) {
    if (tree.rate <= 0.0) continue;
    schedule.trees.push_back({tree.edges, tree.rate * ref_period});
    schedule.slices_per_period += tree.rate * ref_period;
  }

  // Aggregate per-arc transfer time and the per-tree segments behind it.
  std::vector<ArcQueue> queues(g.num_edges());
  std::vector<double> arc_time(g.num_edges(), 0.0);
  for (std::size_t t = 0; t < schedule.trees.size(); ++t) {
    for (EdgeId e : schedule.trees[t].edges) {
      const double w = schedule.trees[t].slices_per_period * platform.edge_time(e);
      queues[e].items.push_back({t, w});
      arc_time[e] += w;
    }
  }
  std::vector<CommEdge> edges;
  double max_time = 0.0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (arc_time[e] <= 0.0) continue;
    edges.push_back({g.from(e), g.to(e), arc_time[e], e});
    max_time = std::max(max_time, arc_time[e]);
  }
  const double eps = options.tolerance * std::max(max_time, 1e-300);

  if (options.port_model == PortModel::kBidirectional) {
    peel_bidirectional(platform, std::move(edges), queues, eps, pool, schedule);
  } else {
    peel_unidirectional(platform, std::move(edges), queues, eps, schedule);
  }
  // The schedule never runs faster than the given rates promise: when the
  // rounds finish ahead of the reference period (the tight port is only
  // (1 - eps) loaded when the rates sit a hair below the port optimum),
  // the remainder is explicit idle time.  Without this, the per-arc slice
  // rates would exceed the rates' own loads by that same hair.
  if (schedule.period < ref_period) {
    ScheduleRound idle;
    idle.duration = ref_period - schedule.period;
    schedule.rounds.push_back(std::move(idle));
    schedule.period = ref_period;
  }
  return schedule;
}

PeriodicSchedule synthesize_schedule(const Platform& platform, const SsbSolution& solution,
                                     const OrchestrationOptions& options,
                                     const TreeDecompositionOptions& decomposition) {
  const TreeDecomposition decomposed = decompose_edge_load(platform, solution, decomposition);
  return orchestrate_one_port(platform, decomposed.trees, options);
}

PeriodicSchedule schedule_single_tree(const Platform& platform, const BroadcastTree& tree,
                                      PortModel model) {
  tree.validate(platform);
  BT_REQUIRE(!tree.edges.empty(),
             "schedule_single_tree: tree has no arcs (single-node platform)");
  // The highest rate the tree's ports allow: 1 / max port occupation per
  // slice.  Under the bidirectional model this is 1 / one_port_period
  // (every reception is covered by its sender's out-sum).
  std::vector<double> out(platform.num_nodes(), 0.0), in(platform.num_nodes(), 0.0);
  for (EdgeId e : tree.edges) {
    out[platform.graph().from(e)] += platform.edge_time(e);
    in[platform.graph().to(e)] += platform.edge_time(e);
  }
  double max_load = 0.0;
  for (NodeId u = 0; u < platform.num_nodes(); ++u) {
    max_load = std::max(max_load, model == PortModel::kBidirectional
                                      ? std::max(out[u], in[u])
                                      : out[u] + in[u]);
  }
  PackedTree packed;
  packed.edges = tree.edges;
  packed.rate = 1.0 / max_load;
  OrchestrationOptions options;
  options.port_model = model;
  return orchestrate_one_port(platform, {packed}, options);
}

}  // namespace bt
