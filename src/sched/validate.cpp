#include "sched/validate.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "graph/arborescence.hpp"
#include "util/error.hpp"

namespace bt {

namespace {

constexpr std::size_t kMaxViolations = 32;

void report(ScheduleCheck& check, const std::string& message) {
  check.ok = false;
  if (check.violations.size() < kMaxViolations) check.violations.push_back(message);
}

std::string str(double v) {
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

}  // namespace

ScheduleCheck check_schedule(const Platform& platform, const PeriodicSchedule& schedule,
                             const ScheduleCheckOptions& options) {
  const Digraph& g = platform.graph();
  ScheduleCheck check;
  const double time_tol = options.tolerance * std::max(schedule.period, 1e-300);
  const double slice_tol = options.tolerance * std::max(schedule.slices_per_period, 1e-300);

  // ---- Trees: spanning arborescences with positive slice counts. ----
  // Per-tree sorted arc lists back both the membership test and the
  // shipping accumulators (slot = position in the sorted list), keeping
  // the checker O(trees * n) in memory instead of trees * |E|.
  std::vector<std::vector<EdgeId>> tree_arcs(schedule.trees.size());
  for (std::size_t t = 0; t < schedule.trees.size(); ++t) {
    const ScheduledTree& tree = schedule.trees[t];
    std::string why;
    if (!is_spanning_arborescence(g, schedule.root, tree.edges, &why)) {
      report(check, "tree " + std::to_string(t) + " is not a spanning arborescence: " + why);
    }
    if (tree.slices_per_period <= 0.0) {
      report(check, "tree " + std::to_string(t) + " ships no slices");
    }
    tree_arcs[t] = tree.edges;
    std::sort(tree_arcs[t].begin(), tree_arcs[t].end());
  }
  const auto tree_slot = [&](std::size_t t, EdgeId arc) -> std::size_t {
    const auto& arcs = tree_arcs[t];
    const auto it = std::lower_bound(arcs.begin(), arcs.end(), arc);
    if (it == arcs.end() || *it != arc) return arcs.size();  // not a tree arc
    return static_cast<std::size_t>(it - arcs.begin());
  };
  double total_slices = 0.0;
  for (const ScheduledTree& tree : schedule.trees) total_slices += tree.slices_per_period;
  if (std::abs(total_slices - schedule.slices_per_period) > slice_tol) {
    report(check, "slices_per_period " + str(schedule.slices_per_period) +
                      " does not match the trees' total " + str(total_slices));
  }

  // ---- Rounds: conflict freedom, fit, and period accounting. ----
  // shipped[t][slot]: slices of tree t over its slot-th sorted arc.
  std::vector<std::vector<double>> shipped(schedule.trees.size());
  for (std::size_t t = 0; t < schedule.trees.size(); ++t) {
    shipped[t].assign(tree_arcs[t].size(), 0.0);
  }
  double total_duration = 0.0;
  std::vector<int> port_user(g.num_nodes(), -1);  // round-local marker
  std::vector<int> recv_user(g.num_nodes(), -1);
  std::map<EdgeId, double> arc_busy;  // per-round occupation, merged per arc
  for (std::size_t r = 0; r < schedule.rounds.size(); ++r) {
    const ScheduleRound& round = schedule.rounds[r];
    if (round.duration < 0.0) {
      report(check, "round " + std::to_string(r) + " has negative duration");
    }
    total_duration += round.duration;
    arc_busy.clear();
    for (const ScheduleTransfer& transfer : round.transfers) {
      if (transfer.arc >= g.num_edges() || transfer.tree >= schedule.trees.size()) {
        report(check, "round " + std::to_string(r) + " references an invalid arc or tree");
        continue;
      }
      if (transfer.amount < -slice_tol) {
        report(check, "round " + std::to_string(r) + " has a negative transfer amount");
      }
      const std::size_t slot = tree_slot(transfer.tree, transfer.arc);
      if (slot == tree_arcs[transfer.tree].size()) {
        report(check, "round " + std::to_string(r) + " ships tree " +
                          std::to_string(transfer.tree) + " over arc " +
                          std::to_string(transfer.arc) + " which is not in that tree");
      } else {
        shipped[transfer.tree][slot] += transfer.amount;
      }
      arc_busy[transfer.arc] += transfer.amount * platform.edge_time(transfer.arc);
    }
    // Transfers over the *same* arc serialize trivially on the same port
    // pair; conflicts are between distinct arcs sharing a port.
    for (const auto& [arc, busy] : arc_busy) {
      check.max_port_overuse = std::max(check.max_port_overuse, busy - round.duration);
      if (busy > round.duration + time_tol) {
        report(check, "round " + std::to_string(r) + " occupies arc " + std::to_string(arc) +
                          " for " + str(busy) + " s > round duration " +
                          str(round.duration) + " s");
      }
      const NodeId from = g.from(arc);
      const NodeId to = g.to(arc);
      const int marker = static_cast<int>(r);
      const bool conflict =
          schedule.port_model == PortModel::kBidirectional
              ? (port_user[from] == marker || recv_user[to] == marker)
              : (port_user[from] == marker || port_user[to] == marker ||
                 recv_user[from] == marker || recv_user[to] == marker);
      if (conflict) {
        report(check, "round " + std::to_string(r) + " has a port conflict at arc " +
                          std::to_string(arc) + " (" + std::to_string(from) + "->" +
                          std::to_string(to) + ")");
      }
      port_user[from] = marker;
      recv_user[to] = marker;
    }
  }
  if (std::abs(total_duration - schedule.period) > time_tol) {
    report(check, "period " + str(schedule.period) + " does not match the rounds' total " +
                      str(total_duration));
  }

  // ---- Load accounting: every tree arc carries exactly s_T per period.
  // (Traffic over non-tree arcs was already reported per transfer above.)
  for (std::size_t t = 0; t < schedule.trees.size(); ++t) {
    for (std::size_t slot = 0; slot < tree_arcs[t].size(); ++slot) {
      const double error =
          std::abs(shipped[t][slot] - schedule.trees[t].slices_per_period);
      check.max_ship_error = std::max(check.max_ship_error, error);
      if (error > slice_tol) {
        report(check, "tree " + std::to_string(t) + " ships " + str(shipped[t][slot]) +
                          " slices over arc " + std::to_string(tree_arcs[t][slot]) +
                          ", expected " + str(schedule.trees[t].slices_per_period));
      }
    }
  }

  // ---- Optional accounting against a reference SSB solution. ----
  if (options.reference != nullptr) {
    const SsbSolution& ref = *options.reference;
    BT_REQUIRE(ref.edge_load.size() == g.num_edges(),
               "check_schedule: reference edge_load size mismatch");
    const double rate_scale = std::max(1.0, ref.throughput);
    const double rate_tol = options.tolerance * rate_scale;
    if (schedule.period <= 0.0) {
      report(check, "schedule has a non-positive period");
    } else {
      std::vector<double> arc_slices(g.num_edges(), 0.0);
      for (std::size_t t = 0; t < schedule.trees.size(); ++t) {
        for (std::size_t slot = 0; slot < tree_arcs[t].size(); ++slot) {
          arc_slices[tree_arcs[t][slot]] += shipped[t][slot];
        }
      }
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        const double rate = arc_slices[e] / schedule.period;
        check.max_load_excess = std::max(check.max_load_excess, rate - ref.edge_load[e]);
        const bool bad = options.require_exact_loads
                             ? std::abs(rate - ref.edge_load[e]) > rate_tol
                             : rate > ref.edge_load[e] + rate_tol;
        if (bad) {
          report(check, "arc " + std::to_string(e) + " carries " + str(rate) +
                            " slices/s vs reference load " + str(ref.edge_load[e]));
        }
      }
      const double tp = schedule.throughput();
      if (tp > ref.throughput + rate_tol) {
        report(check, "schedule throughput " + str(tp) + " exceeds the reference TP* " +
                          str(ref.throughput));
      }
      if (options.require_exact_loads && std::abs(tp - ref.throughput) > rate_tol) {
        report(check, "schedule throughput " + str(tp) + " does not match TP* " +
                          str(ref.throughput));
      }
    }
  }
  return check;
}

}  // namespace bt
