#pragma once

// Standalone validity checker for periodic schedules.
//
// Verifies, independently of how the schedule was synthesized:
//  * structure: every tree is a spanning arborescence rooted at the
//    schedule root with positive slices; every transfer references a valid
//    round, arc and tree, and each transfer's arc belongs to its tree;
//  * port-conflict freedom, per round: under the bidirectional one-port
//    model no two transfers share a send or a receive port, under the
//    unidirectional model no two transfers share any port; every transfer
//    fits its round (amount * T_arc <= duration);
//  * load accounting: over one period each tree ships exactly its
//    slices_per_period over each of its arcs; period and slices_per_period
//    match the rounds and trees; optionally, the per-arc slice rate is
//    checked against a reference SsbSolution's edge_load (never above it,
//    and exactly equal on request -- the colgen/exact-decomposition path).
//
// Used by the test suites and exposed to the examples; replay
// (sim/schedule_replay.hpp) is the dynamic complement of this static check.

#include <string>
#include <vector>

#include "sched/periodic_schedule.hpp"
#include "ssb/ssb_solution.hpp"

namespace bt {

struct ScheduleCheckOptions {
  /// Relative tolerance of all accounting checks (scaled by the schedule's
  /// natural magnitudes: period for times, slices_per_period for slices).
  double tolerance = 1e-9;
  /// When set, additionally check the schedule's per-arc slice rates
  /// against this solution's edge_load and its total rate against TP*.
  const SsbSolution* reference = nullptr;
  /// With a reference: require per-arc rates to *equal* edge_load (exact
  /// decompositions); otherwise rates must only stay below the loads.
  bool require_exact_loads = false;
};

struct ScheduleCheck {
  bool ok = true;
  /// Human-readable violations (capped at 32).
  std::vector<std::string> violations;
  /// Worst port over-occupation of any round, in seconds (<= 0 when clean).
  double max_port_overuse = 0.0;
  /// Worst per-(tree, arc) shipping mismatch, in slices.
  double max_ship_error = 0.0;
  /// Worst per-arc rate excess over the reference edge_load, slices/second
  /// (only with a reference; <= 0 when clean).
  double max_load_excess = 0.0;
};

/// Check `schedule` against `platform` (and optionally a reference
/// solution).  Never throws on a bad schedule -- all findings are reported
/// in the result; throws bt::Error only on size mismatches that make the
/// schedule uninterpretable.
ScheduleCheck check_schedule(const Platform& platform, const PeriodicSchedule& schedule,
                             const ScheduleCheckOptions& options = {});

}  // namespace bt
