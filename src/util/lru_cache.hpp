#pragma once

// Small internally-synchronized LRU cache.
//
// The planner service caches per-source plans and synthesized schedules
// keyed by (source, service version): a handful of hot entries, hit from
// many reader threads concurrently.  A get() promotes its entry to
// most-recently-used -- a *mutation*, even on the read path -- so the cache
// carries its own mutex instead of relying on the service's many-readers
// guard (under which concurrent readers would race on the recency list).
//
// Capacities are small by design (tens of entries), so the store is a
// plain recency-ordered list with linear lookup: no hash requirement on
// Key (operator== suffices), no allocation churn beyond the list nodes,
// and the critical section is a few pointer hops -- far cheaper than the
// solves it shields.

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <utility>

#include "util/error.hpp"

namespace bt {

template <typename Key, typename Value>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {
    BT_REQUIRE(capacity_ > 0, "LruCache: capacity must be positive");
  }

  /// The cached value for `key`, promoting it to most-recently-used;
  /// nullopt on miss.  Returns a copy (Value is a shared_ptr at every
  /// call site), so the entry may be evicted concurrently without
  /// invalidating the result.
  std::optional<Value> get(const Key& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == key) {
        entries_.splice(entries_.begin(), entries_, it);
        ++hits_;
        return entries_.front().second;
      }
    }
    ++misses_;
    return std::nullopt;
  }

  /// Insert (or refresh) `key`, evicting the least-recently-used entry
  /// when at capacity.
  void put(const Key& key, Value value) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == key) {
        it->second = std::move(value);
        entries_.splice(entries_.begin(), entries_, it);
        return;
      }
    }
    entries_.emplace_front(key, std::move(value));
    if (entries_.size() > capacity_) {
      entries_.pop_back();
      ++evictions_;
    }
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
  }
  std::uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
  }
  std::uint64_t evictions() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<std::pair<Key, Value>> entries_;  ///< front = most recent
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace bt
