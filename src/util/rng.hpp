#pragma once

// Deterministic random number generation.
//
// All stochastic components of the library (platform generators, workload
// drivers, tests) draw from bt::Rng so that every experiment is reproducible
// from a single 64-bit seed.  The generator is a thin wrapper over
// std::mt19937_64 with convenience samplers.

#include <cstdint>
#include <random>
#include <vector>

namespace bt {

/// Seedable pseudo-random generator with convenience samplers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability p in [0,1].
  bool bernoulli(double p);

  /// Gaussian sample with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Gaussian sample truncated (by resampling) to be >= floor.
  double truncated_gaussian(double mean, double stddev, double floor);

  /// Uniformly random permutation of {0, ..., n-1}.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Pick an index uniformly from [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Derive an independent child generator (for splitting seeds across
  /// parallel experiment arms without correlation).
  Rng split();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace bt
