#pragma once

// Error handling for the broadcast-trees library.
//
// The library throws bt::Error (a std::runtime_error subclass) on programmer
// and input errors.  BT_REQUIRE is used for precondition checking on public
// API boundaries; BT_ASSERT for internal invariants (also active in release
// builds -- the algorithms here are cheap relative to the cost of silently
// wrong schedules).

#include <stdexcept>
#include <string>

namespace bt {

/// Exception type thrown by all library components.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void throw_error(const char* file, int line, const std::string& message);

}  // namespace bt

#define BT_REQUIRE(cond, msg)                             \
  do {                                                    \
    if (!(cond)) ::bt::throw_error(__FILE__, __LINE__, (msg)); \
  } while (0)

#define BT_ASSERT(cond, msg)                              \
  do {                                                    \
    if (!(cond)) ::bt::throw_error(__FILE__, __LINE__, std::string("internal invariant violated: ") + (msg)); \
  } while (0)
