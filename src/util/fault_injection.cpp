#include "util/fault_injection.hpp"

#include <cstdlib>
#include <sstream>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace bt {

namespace {

thread_local FaultInjector* t_armed_injector = nullptr;

FaultSite site_from_name(const std::string& name) {
  if (name == "refactor") return FaultSite::kSingularRefactor;
  if (name == "stall") return FaultSite::kSimplexStall;
  if (name == "separation") return FaultSite::kSeparationOracle;
  if (name == "pricing") return FaultSite::kPricingOracle;
  if (name == "evict") return FaultSite::kSessionEviction;
  throw Error("FaultPlan: unknown fault site '" + name + "'");
}

std::uint64_t parse_u64(const std::string& text, const char* what) {
  BT_REQUIRE(!text.empty(), std::string("FaultPlan: empty ") + what);
  std::uint64_t value = 0;
  for (char c : text) {
    BT_REQUIRE(c >= '0' && c <= '9',
               std::string("FaultPlan: non-numeric ") + what + " '" + text + "'");
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kSingularRefactor: return "refactor";
    case FaultSite::kSimplexStall: return "stall";
    case FaultSite::kSeparationOracle: return "separation";
    case FaultSite::kPricingOracle: return "pricing";
    case FaultSite::kSessionEviction: return "evict";
    case FaultSite::kNumSites: break;
  }
  return "?";
}

void FaultPlan::add(FaultSite site, std::uint64_t at, std::uint64_t count) {
  BT_REQUIRE(site < FaultSite::kNumSites, "FaultPlan::add: site out of range");
  BT_REQUIRE(count > 0, "FaultPlan::add: count must be positive");
  events_.push_back({site, at, count});
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;
  if (spec.rfind("random:", 0) == 0) {
    std::istringstream in(spec.substr(7));
    std::string seed, events, span;
    BT_REQUIRE(std::getline(in, seed, ':') && std::getline(in, events, ':') &&
                   std::getline(in, span, ':'),
               "FaultPlan: random spec needs 'random:<seed>:<events>:<span>'");
    return FaultPlan::random(parse_u64(seed, "seed"),
                             static_cast<std::size_t>(parse_u64(events, "event count")),
                             parse_u64(span, "span"));
  }
  std::istringstream in(spec);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    const std::size_t at_pos = token.find('@');
    BT_REQUIRE(at_pos != std::string::npos,
               "FaultPlan: trigger '" + token + "' needs site@index");
    const FaultSite site = site_from_name(token.substr(0, at_pos));
    std::string rest = token.substr(at_pos + 1);
    std::uint64_t count = 1;
    const std::size_t x_pos = rest.find('x');
    if (x_pos != std::string::npos) {
      count = parse_u64(rest.substr(x_pos + 1), "repeat count");
      rest = rest.substr(0, x_pos);
    }
    plan.add(site, parse_u64(rest, "invocation index"), count);
  }
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const char* env = std::getenv("BT_FAULTS");
  return parse(env != nullptr ? std::string(env) : std::string());
}

FaultPlan FaultPlan::random(std::uint64_t seed, std::size_t events, std::uint64_t span) {
  BT_REQUIRE(span > 0, "FaultPlan::random: span must be positive");
  FaultPlan plan;
  Rng rng(seed);
  for (std::size_t k = 0; k < events; ++k) {
    const auto site = static_cast<FaultSite>(
        rng.index(static_cast<std::size_t>(FaultSite::kNumSites)));
    plan.add(site, static_cast<std::uint64_t>(rng.index(static_cast<std::size_t>(span))));
  }
  return plan;
}

bool FaultPlan::should_fire(FaultSite site, std::uint64_t invocation) const {
  for (const FaultEvent& event : events_) {
    if (event.site == site && invocation >= event.at && invocation < event.at + event.count)
      return true;
  }
  return false;
}

std::string FaultPlan::describe() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    if (i > 0) out << ",";
    out << to_string(e.site) << "@" << e.at;
    if (e.count > 1) out << "x" << e.count;
  }
  return out.str();
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  for (auto& c : count_) c.store(0, std::memory_order_relaxed);
  for (auto& f : fired_) f.store(0, std::memory_order_relaxed);
}

bool FaultInjector::fire(FaultSite site) {
  const auto s = static_cast<std::size_t>(site);
  const std::uint64_t n = count_[s].fetch_add(1, std::memory_order_relaxed);
  if (!plan_.should_fire(site, n)) return false;
  fired_[s].fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::uint64_t FaultInjector::invocations(FaultSite site) const {
  return count_[static_cast<std::size_t>(site)].load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::fired(FaultSite site) const {
  return fired_[static_cast<std::size_t>(site)].load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::total_fired() const {
  std::uint64_t total = 0;
  for (const auto& f : fired_) total += f.load(std::memory_order_relaxed);
  return total;
}

void FaultInjector::reset() {
  for (auto& c : count_) c.store(0, std::memory_order_relaxed);
  for (auto& f : fired_) f.store(0, std::memory_order_relaxed);
}

FaultScope::FaultScope(FaultInjector* injector) : previous_(t_armed_injector) {
  if (injector != nullptr) t_armed_injector = injector;
}

FaultScope::~FaultScope() { t_armed_injector = previous_; }

bool fault_fire(FaultSite site) {
  FaultInjector* injector = t_armed_injector;
  if (injector == nullptr) return false;
  return injector->fire(site);
}

FaultInjector* armed_fault_injector() { return t_armed_injector; }

}  // namespace bt
