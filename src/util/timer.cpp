#include "util/timer.hpp"

namespace bt {

double Timer::seconds() const {
  const auto elapsed = clock::now() - start_;
  return std::chrono::duration_cast<std::chrono::duration<double>>(elapsed).count();
}

}  // namespace bt
