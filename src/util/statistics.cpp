#include "util/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace bt {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::stddev() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

double RunningStats::min() const { return min_; }
double RunningStats::max() const { return max_; }

Summary summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) return s;
  RunningStats rs;
  for (double v : values) rs.add(v);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.median = quantile(values, 0.5);
  return s;
}

double quantile(std::vector<double> values, double q) {
  BT_REQUIRE(!values.empty(), "quantile: empty sample");
  BT_REQUIRE(q >= 0.0 && q <= 1.0, "quantile: q outside [0,1]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace bt
