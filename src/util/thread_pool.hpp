#pragma once

// Fixed-size worker pool for the experiment layer.
//
// Sweeps evaluate hundreds of independent (platform, heuristic) cells; each
// cell derives everything it needs from its own RNG seed, so cells can run
// on any thread in any order and still produce bitwise-identical records.
// The contract parallel_for relies on: the caller pre-computes all per-task
// seeds (Rng::split in task order, or a per-cell seed formula) *before*
// dispatch, tasks write only to their own slot of a pre-sized output vector,
// and results are concatenated in task order afterwards.
//
// BT_THREADS caps the pool size (default: hardware concurrency), mirroring
// how BT_REPLICATES scales the experiment workloads.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bt {

/// Fixed set of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Spawn `num_threads` workers; 0 means default_thread_count().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueue a task; runs on some worker as soon as one is free.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.  Rethrows the first
  /// exception any task raised since the last wait().
  void wait();

  /// BT_THREADS when set (must be positive), else hardware concurrency,
  /// else 1.
  static std::size_t default_thread_count();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// Run body(i) for every i in [0, count) across the pool and block until all
/// complete.  Task i must touch only state owned by index i (see the header
/// comment); the first exception a body raises is rethrown on the calling
/// thread.  Completion tracking is scoped to this call, so independent
/// parallel_for batches may share one pool concurrently (e.g. the global
/// pool) without observing each other's progress or errors.  Do not call it
/// from inside a pool task of the same pool -- with every worker blocked in
/// a nested wait the pool deadlocks.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// Flatten per-task result buckets in task order -- the second half of the
/// parallel_for contract (pre-sized slots in, deterministic concatenation
/// out).
template <typename Record>
std::vector<Record> concatenate_in_order(std::vector<std::vector<Record>> per_task) {
  std::vector<Record> flat;
  std::size_t total = 0;
  for (const auto& part : per_task) total += part.size();
  flat.reserve(total);
  for (auto& part : per_task) {
    for (Record& r : part) flat.push_back(std::move(r));
  }
  return flat;
}

/// Shared process-wide pool sized by default_thread_count(); lazily built.
ThreadPool& global_thread_pool();

}  // namespace bt
