#pragma once

// Fixed-size worker pool shared by the experiment layer and the in-solver
// parallel oracles.
//
// Sweeps evaluate hundreds of independent (platform, heuristic) cells; each
// cell derives everything it needs from its own RNG seed, so cells can run
// on any thread in any order and still produce bitwise-identical records.
// The contract parallel_for relies on: the caller pre-computes all per-task
// seeds (Rng::split in task order, or a per-cell seed formula) *before*
// dispatch, tasks write only to their own slot of a pre-sized output vector,
// and results are concatenated in task order afterwards.  The solver-side
// parallel phases (max-flow separation, arborescence pricing, the BvN
// consume step) follow the same slot-indexed pattern, which is what keeps
// them bitwise-deterministic across thread counts.
//
// BT_THREADS caps the pool size (default: hardware concurrency), mirroring
// how BT_REPLICATES scales the experiment workloads.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bt {

/// Fixed set of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Spawn `num_threads` workers; 0 means default_thread_count().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueue a task; runs on some worker as soon as one is free.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.  Rethrows the first
  /// exception any task raised since the last wait().
  void wait();

  /// BT_THREADS when set (must be a positive integer with no trailing
  /// garbage), else hardware concurrency, else 1.
  static std::size_t default_thread_count();

 private:
  friend void parallel_for(ThreadPool& pool, std::size_t count,
                           const std::function<void(std::size_t)>& body);

  /// Completion state of one parallel_for call, scoped to that call so
  /// concurrent batches on a shared pool stay independent.  Guarded by the
  /// pool's mutex_ (not a batch-local one): batch completion and queue
  /// growth share idle_ so help-running waiters never miss either event.
  struct Batch {
    std::size_t remaining = 0;
    std::exception_ptr first_error;
  };

  /// parallel_for core: enqueue `count` body(i) tasks, then *help-run*
  /// queued tasks (of any batch) until this batch completes.  Because the
  /// waiting thread drains the queue instead of parking, a parallel_for
  /// issued from inside a pool task -- every worker blocked in a nested
  /// wait -- makes progress instead of deadlocking.
  void run_batch(std::size_t count, const std::function<void(std::size_t)>& body);

  /// Pop the front task and run it (unlocked), then do the completion
  /// bookkeeping.  `lock` must hold mutex_ with a non-empty queue; it is
  /// re-held on return.
  void run_one_task(std::unique_lock<std::mutex>& lock);

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  /// Wakes help-running batch waiters: notified when a batch completes and
  /// whenever new tasks are enqueued (a nested parallel_for submitting from
  /// a worker must wake sleeping helpers so *someone* runs its tasks).
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// Run body(i) for every i in [0, count) across the pool and block until all
/// complete.  Task i must touch only state owned by index i (see the header
/// comment); the first exception a body raises is rethrown on the calling
/// thread.  Completion tracking is scoped to this call, so independent
/// parallel_for batches may share one pool concurrently (e.g. the global
/// pool) without observing each other's progress or errors.
///
/// Nesting-safe: while its batch is outstanding the calling thread
/// *help-runs* tasks from the pool queue instead of parking, so a
/// parallel_for issued from inside a pool task of the same pool (a parallel
/// solver phase under the experiment sweeps' per-cell fan-out) completes
/// instead of deadlocking.  Helped tasks may belong to any batch; since
/// every task writes only its own slot, results are unchanged.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// Flatten per-task result buckets in task order -- the second half of the
/// parallel_for contract (pre-sized slots in, deterministic concatenation
/// out).
template <typename Record>
std::vector<Record> concatenate_in_order(std::vector<std::vector<Record>> per_task) {
  std::vector<Record> flat;
  std::size_t total = 0;
  for (const auto& part : per_task) total += part.size();
  flat.reserve(total);
  for (auto& part : per_task) {
    for (Record& r : part) flat.push_back(std::move(r));
  }
  return flat;
}

/// Deterministic contiguous split of [0, count) into at most
/// pool.num_threads() chunks: chunk c covers [chunk_begin(c), chunk_begin(c+1)).
/// The parallel solver phases use one task per chunk with per-chunk scratch
/// state (e.g. a MaxFlowSolver instance), writing per-item results into
/// item-indexed slots -- the chunk layout affects scheduling only, never
/// results.
struct ChunkSplit {
  std::size_t count = 0;
  std::size_t chunks = 0;
  ChunkSplit(std::size_t item_count, std::size_t max_chunks)
      : count(item_count), chunks(item_count < max_chunks ? item_count : max_chunks) {
    if (chunks == 0) chunks = 1;  // keep chunk_begin well-defined when empty
  }
  std::size_t chunk_begin(std::size_t c) const {
    return c * (count / chunks) + (c < count % chunks ? c : count % chunks);
  }
};

/// Shared process-wide pool sized by default_thread_count(); lazily built.
ThreadPool& global_thread_pool();

}  // namespace bt
