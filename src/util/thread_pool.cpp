#include "util/thread_pool.hpp"

#include <cstdlib>
#include <string>

#include "util/error.hpp"

namespace bt {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = default_thread_count();
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    BT_REQUIRE(!stopping_, "ThreadPool::submit: pool is shutting down");
    queue_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
  // A help-running batch waiter asleep on idle_ is as good a consumer as a
  // worker; without this, tasks submitted while every worker is busy and
  // only helpers sleep would wait for a worker to free up.
  idle_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

std::size_t ThreadPool::default_thread_count() {
  const char* env = std::getenv("BT_THREADS");
  if (env != nullptr) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    // An endptr check, not just the sign test: strtol("2garbage") parses 2
    // and strtol("abc") parses 0, and both used to slip through with at
    // best a misleading "must be positive" message.
    BT_REQUIRE(end != env && *end == '\0',
               "BT_THREADS must be a positive integer, got \"" + std::string(env) + "\"");
    BT_REQUIRE(parsed > 0,
               "BT_THREADS must be a positive integer, got \"" + std::string(env) + "\"");
    return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ThreadPool::run_one_task(std::unique_lock<std::mutex>& lock) {
  std::function<void()> task = std::move(queue_.front());
  queue_.pop();
  lock.unlock();
  std::exception_ptr error;
  try {
    task();
  } catch (...) {
    error = std::current_exception();
  }
  lock.lock();
  if (error && !first_error_) first_error_ = error;
  --in_flight_;
  if (in_flight_ == 0) all_done_.notify_all();
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ and drained
    run_one_task(lock);
  }
}

void ThreadPool::run_batch(std::size_t count, const std::function<void(std::size_t)>& body) {
  Batch batch;
  batch.remaining = count;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    BT_REQUIRE(!stopping_, "parallel_for: pool is shutting down");
    for (std::size_t i = 0; i < count; ++i) {
      // The task closure updates the batch under mutex_ as its last touch of
      // `batch`; once remaining hits zero the owning frame may return and
      // destroy it.  Pool-level bookkeeping (in_flight_, first_error_) is
      // done by run_one_task around the closure, exactly as for submit().
      queue_.push([this, &batch, &body, i] {
        std::exception_ptr error;
        try {
          body(i);
        } catch (...) {
          error = std::current_exception();
        }
        std::lock_guard<std::mutex> task_lock(mutex_);
        if (error && !batch.first_error) batch.first_error = error;
        if (--batch.remaining == 0) idle_.notify_all();
      });
      ++in_flight_;
    }
  }
  task_ready_.notify_all();
  idle_.notify_all();

  // Help-run until the batch completes: drain queued tasks -- of any batch;
  // every task only writes its own slots, so who runs it never matters --
  // and sleep only while the queue is empty.  idle_ is notified both on
  // batch completion and on new submissions, so a nested parallel_for
  // enqueued by a worker while this thread sleeps wakes it to help.
  std::unique_lock<std::mutex> lock(mutex_);
  while (batch.remaining != 0) {
    if (!queue_.empty()) {
      run_one_task(lock);
    } else {
      idle_.wait(lock, [this, &batch] { return batch.remaining == 0 || !queue_.empty(); });
    }
  }
  if (batch.first_error) std::rethrow_exception(batch.first_error);
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (count == 1 || pool.num_threads() == 1) {
    // Run inline: identical results by construction, no queueing overhead.
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  pool.run_batch(count, body);
}

ThreadPool& global_thread_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace bt
