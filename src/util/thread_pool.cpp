#include "util/thread_pool.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace bt {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = default_thread_count();
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    BT_REQUIRE(!stopping_, "ThreadPool::submit: pool is shutting down");
    queue_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

std::size_t ThreadPool::default_thread_count() {
  const char* env = std::getenv("BT_THREADS");
  if (env != nullptr) {
    const long parsed = std::strtol(env, nullptr, 10);
    BT_REQUIRE(parsed > 0, "BT_THREADS must be a positive integer");
    return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (count == 1 || pool.num_threads() == 1) {
    // Run inline: identical results by construction, no queueing overhead.
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  // Batch-local completion state: concurrent parallel_for calls on a shared
  // pool must not wait on (or steal exceptions from) each other's tasks.
  struct Batch {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr first_error;
  } batch;
  batch.remaining = count;
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&body, &batch, i] {
      std::exception_ptr error;
      try {
        body(i);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(batch.mutex);
      if (error && !batch.first_error) batch.first_error = error;
      if (--batch.remaining == 0) batch.done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(batch.mutex);
  batch.done.wait(lock, [&batch] { return batch.remaining == 0; });
  if (batch.first_error) std::rethrow_exception(batch.first_error);
}

ThreadPool& global_thread_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace bt
