#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace bt {

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {
  BT_REQUIRE(!header_.empty(), "TablePrinter: empty header");
}

void TablePrinter::add_row(std::vector<std::string> row) {
  BT_REQUIRE(row.size() == header_.size(), "TablePrinter: row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string TablePrinter::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TablePrinter::pct(double ratio, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << ratio * 100.0 << "%";
  return os.str();
}

void TablePrinter::render(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::render_csv(std::ostream& os) const {
  auto sanitize = [](std::string s) {
    std::replace(s.begin(), s.end(), ',', ';');
    return s;
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << sanitize(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace bt
