#pragma once

// Streaming and batch descriptive statistics used by the experiment harness
// to aggregate per-platform results into the mean +- deviation values the
// paper reports (Table 3) and the averaged series of Figures 4 and 5.

#include <cstddef>
#include <vector>

namespace bt {

/// Welford streaming accumulator: numerically stable mean and variance.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary of a sample vector.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Compute a Summary over `values` (empty input yields an all-zero Summary).
Summary summarize(const std::vector<double>& values);

/// Quantile with linear interpolation, q in [0,1]. Requires non-empty input.
double quantile(std::vector<double> values, double q);

}  // namespace bt
