#pragma once

// Plain-text table rendering for the benchmark harness.  Benches print the
// same rows/series the paper reports; TablePrinter produces aligned ASCII
// output and an optional CSV mirror so results are machine-readable.

#include <ostream>
#include <string>
#include <vector>

namespace bt {

/// Column-aligned ASCII table with a header row.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Append a data row. Must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision.
  static std::string fmt(double value, int precision = 3);
  /// Format a ratio as a percentage string, e.g. 0.82 -> "82%".
  static std::string pct(double ratio, int precision = 0);

  /// Render as aligned ASCII (with a separator under the header).
  void render(std::ostream& os) const;

  /// Render as CSV (comma-separated, no quoting of embedded commas needed
  /// for our numeric content; commas in cells are replaced by ';').
  void render_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bt
