#pragma once

// Deterministic fault injection for the planner's survival chains.
//
// The resilience machinery built across PRs 5-9 -- the simplex singular-
// refactor revert, the slack-basis and initial-basis fallbacks, the
// PlannerSession error rollback, the service's degradation ladder -- only
// ever fired incidentally, on whatever numerical accident a seed happened
// to produce.  This header makes those paths *testable*: a FaultPlan names
// exact invocations of instrumented sites at which a synthetic fault fires,
// and a FaultInjector counts the invocations and triggers the plan.
//
// Determinism contract: every instrumented site sits in a *serial* section
// of its solver (one call per separation round, per pricing round, per
// basis factorization, per simplex phase entry -- never inside a
// parallel_for task), so the invocation counts are a pure function of the
// solve sequence and independent of the worker-pool width.  A faulted run
// therefore recovers byte-identically at pool widths {1, 2, 4}; the fault
// bench (bench/bench_faults.cpp) gates exactly that.
//
// Scoping: hooks read a thread_local injector pointer armed by a FaultScope
// RAII guard.  Only code executing under an armed scope consumes plan
// triggers -- the service arms its own solves and leaves e.g. the scenario
// engine's offline-reference solves untouched, so reference numbers never
// depend on the fault schedule.  With no scope armed the hook is one
// thread_local load and a null check.
//
// BT_FAULTS grammar (parsed by FaultPlan::parse / from_env):
//
//   spec     := trigger ("," trigger)* | "random:" seed ":" events ":" span
//   trigger  := site "@" at ["x" count]
//   site     := "refactor" | "stall" | "separation" | "pricing" | "evict"
//
// "refactor@3" fails the 4th basis factorization (0-based count) as if it
// were numerically singular; "stall@5x2" forces the 6th and 7th simplex
// phase entries to report an iteration-limit stall; "random:7:4:100" draws
// 4 triggers over the first 100 invocations per site from seed 7.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bt {

/// Instrumented sites.  Counting is per site, starting at 0.
enum class FaultSite : std::size_t {
  /// BasisLu::factorize reports a (synthetic) singular basis -- exercises
  /// the simplex revert / slack-basis / initial-basis survival chain.
  kSingularRefactor = 0,
  /// A simplex phase (primal or dual) reports kIterationLimit on entry --
  /// the pivot-budget-exhaustion / degenerate-stall shape.
  kSimplexStall,
  /// The cutting-plane separation oracle throws bt::Error at the start of a
  /// round -- exercises the session rollback and the service ladder.
  kSeparationOracle,
  /// The column-generation pricing oracle throws bt::Error at the start of
  /// a round.
  kPricingOracle,
  /// The service evicts the requested source's warm session just before
  /// solving -- the next answer is a cold rebuild.
  kSessionEviction,
  kNumSites,
};

const char* to_string(FaultSite site);

/// One trigger: site fires on invocations [at, at + count).
struct FaultEvent {
  FaultSite site = FaultSite::kSingularRefactor;
  std::uint64_t at = 0;
  std::uint64_t count = 1;
};

/// An immutable schedule of triggers.  Plans are data; arming one is the
/// FaultInjector's job.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Append a trigger.
  void add(FaultSite site, std::uint64_t at, std::uint64_t count = 1);

  /// Parse the BT_FAULTS grammar (see header comment).  Throws bt::Error on
  /// a malformed spec; an empty spec yields an empty plan.
  static FaultPlan parse(const std::string& spec);

  /// Plan from the BT_FAULTS environment variable (unset: empty plan).
  static FaultPlan from_env();

  /// Seeded random plan: `events` single-shot triggers, each over a
  /// uniformly random site and an invocation index in [0, span).
  static FaultPlan random(std::uint64_t seed, std::size_t events, std::uint64_t span);

  bool empty() const { return events_.empty(); }
  const std::vector<FaultEvent>& events() const { return events_; }

  /// Does the plan fire `site` at (0-based) invocation `invocation`?
  bool should_fire(FaultSite site, std::uint64_t invocation) const;

  /// "refactor@3,stall@5x2" round-trip rendering.
  std::string describe() const;

 private:
  std::vector<FaultEvent> events_;
};

/// Counts hook invocations per site and fires the plan's triggers.  fire()
/// is safe to call from several threads (atomic counters), but triggers are
/// only invocation-count-deterministic when the armed sections are serial
/// -- which every current arming site (service solves, session solves) is.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan = {});

  /// Count one invocation of `site`; true when the plan fires there.
  bool fire(FaultSite site);

  /// Invocations counted so far (all, fired or not).
  std::uint64_t invocations(FaultSite site) const;
  /// Triggers actually fired.
  std::uint64_t fired(FaultSite site) const;
  std::uint64_t total_fired() const;

  const FaultPlan& plan() const { return plan_; }

  /// Reset all counters (a fresh run of the same plan).
  void reset();

 private:
  static constexpr std::size_t kNumSites = static_cast<std::size_t>(FaultSite::kNumSites);
  FaultPlan plan_;
  std::array<std::atomic<std::uint64_t>, kNumSites> count_;
  std::array<std::atomic<std::uint64_t>, kNumSites> fired_;
};

/// RAII thread-scope arming: hooks on this thread consult `injector` until
/// the scope ends (scopes nest; the previous injector is restored).
/// Arming nullptr is a no-op scope, so call sites can arm unconditionally.
class FaultScope {
 public:
  explicit FaultScope(FaultInjector* injector);
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  FaultInjector* previous_;
};

/// The hook the instrumented sites call: false (and no count) when no
/// injector is armed on this thread.
bool fault_fire(FaultSite site);

/// The injector armed on this thread, or nullptr.
FaultInjector* armed_fault_injector();

}  // namespace bt
