#pragma once

// Wall-clock stopwatch used by the harness to report per-phase timings
// (e.g. LP solve time vs heuristic time in the ablation benches).

#include <chrono>

namespace bt {

/// Monotonic stopwatch; starts at construction.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const;
  /// Milliseconds elapsed since construction or the last reset().
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace bt
