#include "util/rng.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace bt {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  BT_REQUIRE(lo <= hi, "uniform_int: lo > hi");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::uniform_real(double lo, double hi) {
  BT_REQUIRE(lo <= hi, "uniform_real: lo > hi");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

bool Rng::bernoulli(double p) {
  BT_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli: p outside [0,1]");
  return std::bernoulli_distribution(p)(engine_);
}

double Rng::gaussian(double mean, double stddev) {
  BT_REQUIRE(stddev >= 0.0, "gaussian: negative stddev");
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::truncated_gaussian(double mean, double stddev, double floor) {
  // Resampling keeps the conditional distribution exact; the floor is always
  // several deviations below the mean in our workloads so this terminates in
  // a couple of draws.  A hard cap guards against degenerate parameters.
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const double x = gaussian(mean, stddev);
    if (x >= floor) return x;
  }
  return floor;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  std::shuffle(p.begin(), p.end(), engine_);
  return p;
}

std::size_t Rng::index(std::size_t n) {
  BT_REQUIRE(n > 0, "index: empty range");
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

Rng Rng::split() {
  const std::uint64_t child_seed = engine_() ^ 0xd1b54a32d192ed03ULL;
  return Rng(child_seed);
}

}  // namespace bt
