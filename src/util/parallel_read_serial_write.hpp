#pragma once

// Many-readers / one-writer guard for the planner service.
//
// The broadcast-planning service answers most requests from warm state
// (cached TP* values, synthesized schedules): those are *read* operations
// and may proceed concurrently.  Platform mutations ("link (u,v) degraded
// 30%", "node joined") must observe a quiescent service: they take the
// exclusive side, apply the delta to the base platform and every warm
// session, and bump the service version.
//
// This is the classic parallel-read / serial-write idiom over C++17
// std::shared_mutex, packaged as scope guards so call sites read as intent
// (`ReadGuard lock(guard_)`) rather than mechanism
// (`std::shared_lock<std::shared_mutex>`).  std::shared_mutex makes no
// fairness promise; on the platforms this repo targets (pthreads
// rwlocks) writers are not starved by a steady reader stream, and the
// service's writes are rare relative to reads by design -- the bench's
// mixed request stream exercises exactly that ratio.

#include <shared_mutex>

namespace bt {

/// The shared state guard.  Hold a ReadGuard to query, a WriteGuard to
/// mutate.  Not recursive: never acquire while already holding either
/// guard on the same ParallelReadSerialWrite from the same thread.
class ParallelReadSerialWrite {
 public:
  ParallelReadSerialWrite() = default;
  ParallelReadSerialWrite(const ParallelReadSerialWrite&) = delete;
  ParallelReadSerialWrite& operator=(const ParallelReadSerialWrite&) = delete;

  std::shared_mutex& mutex() { return mutex_; }

 private:
  std::shared_mutex mutex_;
};

/// Shared (reader) scope lock: any number may be held concurrently.
class ReadGuard {
 public:
  explicit ReadGuard(ParallelReadSerialWrite& guard) : lock_(guard.mutex()) {}

 private:
  std::shared_lock<std::shared_mutex> lock_;
};

/// Exclusive (writer) scope lock: excludes all readers and other writers.
class WriteGuard {
 public:
  explicit WriteGuard(ParallelReadSerialWrite& guard) : lock_(guard.mutex()) {}

 private:
  std::unique_lock<std::shared_mutex> lock_;
};

}  // namespace bt
