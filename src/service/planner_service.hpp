#pragma once

// The broadcast-planning service: a long-lived daemon over PlannerSession.
//
// A PlannerService loads one platform and then serves planning requests for
// the lifetime of the process:
//
//   "TP* for source s?"            -> throughput(s) / plan(s)
//   "give me the schedule"         -> schedule(s)
//   "link (u,v) degraded 30%"      -> scale_link_time(arc, 1/0.7), then
//                                     the next plan(s) is a warm re-plan
//   "link came back / re-measured" -> set_link_cost
//   "link died"                    -> remove_link
//   "node joined"                  -> add_node
//   "node left"                    -> remove_node
//
// Layering:
//
//  * One warm PlannerSession per requested source, LRU-bounded
//    (Options::max_sessions): each session keeps its standing cutting-plane
//    masters and pools, so repeated queries and post-mutation re-plans ride
//    the incremental machinery instead of cold solves.  Sessions default to
//    cold_polish = false -- the service trades the batch path's bitwise
//    pool-determinism for warm-re-plan latency; agreement with a cold solve
//    stays within 1e-9 relative (see planner_session.hpp).
//  * LRU caches of plans and synthesized schedules keyed by (source,
//    service version), so steady-state read traffic doesn't even touch the
//    sessions.
//  * A many-readers / one-writer guard (util/parallel_read_serial_write.hpp):
//    queries share the service; mutations serialize, apply their delta to
//    the base platform and every warm session, and bump the version (which
//    retires all cached plans/schedules at once).
//
// Degradation ladder: every solve the service runs goes through
// PlannerSession::solve_laddered under Options::ladder, so a recoverable
// solver fault (or an exhausted deadline budget) degrades the answer --
// exact -> pool-rebuild -> heuristic tree, tagged in SsbSolution::tier /
// quality_gap -- instead of surfacing an exception.  Only a platform that
// genuinely cannot broadcast still throws.  Options::faults arms a
// deterministic FaultInjector around every service-run solve (and the
// pre-solve session-eviction hook); solves run elsewhere -- e.g. an offline
// reference session -- never consume its triggers.
//
// Async re-planning (Options::async_replan): mutations enqueue
// version-stamped re-plan jobs on a background worker instead of leaving
// the next reader to pay the solve.  Readers serve the last-good published
// snapshot per source from a dedicated snapshot lock -- never blocking on
// the worker's write-guarded solves -- and poll_schedule hands the new
// build out at the consumer's next period boundary, so staleness overlaps
// solver latency.  The queue is bounded (oldest job dropped beyond
// capacity), jobs for the same source coalesce to the newest version, and
// a failed re-plan retries with linear backoff -- exact rungs only until
// the final attempt, which may degrade.  pause/resume/drain give batch
// mutators (the churn engine) deterministic barriers: pause around an
// event batch so the worker solves only the batch's final state, drain
// before reading to make results reproducible.
//
// Read methods are const-free on purpose: a cache miss escalates to the
// writer side to run the solve, so "read" describes the request, not the
// implementation.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "platform/platform.hpp"
#include "sched/schedule_cache.hpp"
#include "ssb/planner_session.hpp"
#include "util/fault_injection.hpp"
#include "util/parallel_read_serial_write.hpp"

namespace bt {

struct PlannerServiceOptions {
  /// Per-source session configuration.  The constructor default turns cold
  /// polish off (warm re-plans stay on the standing masters).
  PlannerSessionOptions session;
  /// Warm sessions kept alive at once (LRU-evicted beyond this).
  std::size_t max_sessions = 8;
  /// Cached (source, version) plans and schedules.
  std::size_t plan_cache_capacity = 32;
  std::size_t schedule_cache_capacity = 16;
  /// Degradation policy of every solve the service runs (deadline budgets,
  /// permitted rungs); see planner_session.hpp.
  LadderOptions ladder;
  /// Run re-plans on a background worker (see header comment).  Off by
  /// default: mutations then stay cheap and the next reader pays the solve.
  bool async_replan = false;
  /// Queued re-plan jobs beyond this drop the oldest (the service degrades
  /// to reader-paid solves for the dropped source, it never blocks).
  std::size_t replan_queue_capacity = 64;
  /// Re-plan attempts after a failed one (transient faults), with linear
  /// backoff of replan_retry_backoff_ms between attempts.
  std::size_t replan_max_retries = 2;
  double replan_retry_backoff_ms = 1.0;
  /// When set, armed (thread-locally) around every service-run solve; see
  /// util/fault_injection.hpp.  Not owned.
  FaultInjector* faults = nullptr;

  PlannerServiceOptions() { session.cold_polish = false; }
};

/// Service counters (monotonic since construction).
struct PlannerServiceStats {
  std::uint64_t queries = 0;           ///< plan/throughput/schedule requests
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t schedule_cache_hits = 0;
  std::uint64_t solves = 0;            ///< session solves run on a miss
  std::uint64_t schedules_built = 0;
  std::uint64_t mutations = 0;
  std::uint64_t sessions_created = 0;
  std::uint64_t sessions_evicted = 0;
  // Ladder tiers of the answers produced by service-run solves.
  std::uint64_t plans_exact = 0;
  std::uint64_t plans_rebuild = 0;
  std::uint64_t plans_heuristic = 0;
  // Async re-plan worker.
  std::uint64_t replans_enqueued = 0;
  std::uint64_t replans_coalesced = 0;  ///< superseded jobs folded into newer ones
  std::uint64_t replans_dropped = 0;    ///< oldest jobs dropped at capacity
  std::uint64_t replans_run = 0;        ///< jobs that published a snapshot
  std::uint64_t replan_retries = 0;     ///< failed attempts that were retried
  std::uint64_t replans_failed = 0;     ///< jobs that exhausted their retries
};

/// Cursor of a schedule consumer (e.g. the churn scenario engine's replay
/// loop): remembers the service version of the last schedule it took, so
/// PlannerService::poll_schedule can hand over *newer* builds without ever
/// blocking on a solve.
struct ScheduleSubscription {
  static constexpr std::uint64_t kNone = static_cast<std::uint64_t>(-1);
  NodeId source = 0;
  /// Version of the last schedule taken through poll_schedule (kNone:
  /// nothing taken yet -- the first poll returns the newest build, if any).
  std::uint64_t seen_version = kNone;
};

class PlannerService {
 public:
  explicit PlannerService(Platform platform, PlannerServiceOptions options = {});
  ~PlannerService();

  // ---- read requests (concurrent) ----

  /// TP* of the current platform broadcasting from `source`.
  double throughput(NodeId source);

  /// The full plan (TP*, edge loads, tier, diagnostics) for `source`.  The
  /// returned snapshot stays valid after later mutations.  In async mode
  /// this is the last-good published snapshot (possibly one or more
  /// versions stale while a re-plan is in flight); the first request for a
  /// source still solves synchronously.
  std::shared_ptr<const SsbSolution> plan(NodeId source);

  /// The synthesized periodic schedule for `source` (async: last-good
  /// snapshot, as for plan()).
  std::shared_ptr<const PeriodicSchedule> schedule(NodeId source);

  /// Non-blocking epoch hook: the newest *built* schedule for `sub.source`
  /// whose service version is newer than sub.seen_version, advancing the
  /// cursor -- or nullptr when nothing newer has been built (or the build
  /// was already LRU-evicted; call schedule() to force one).  Never solves
  /// or synthesizes, so an executor can poll at every period boundary and
  /// keep running its installed schedule while a re-plan is in flight.
  std::shared_ptr<const PeriodicSchedule> poll_schedule(ScheduleSubscription& sub);

  // ---- write requests (serialized) ----

  /// Replace arc e's affine cost (re-measured or restored link).
  void set_link_cost(EdgeId e, LinkCost cost);

  /// Scale arc e's cost: "bandwidth degraded 30%" is factor 1/0.7.
  void scale_link_time(EdgeId e, double factor);

  /// Remove arc e from service.  Sources whose broadcasts depended on it
  /// re-plan around it; if it disconnected them, their next query degrades
  /// down the ladder and ultimately throws.
  void remove_link(EdgeId e);

  /// Grow the platform by one node; returns its id.
  NodeId add_node(const std::vector<SessionLink>& in_links,
                  const std::vector<SessionLink>& out_links);

  /// Remove `node` and every arc touching it (the mirror of add_node; see
  /// shrink_platform).  Node and arc ids compact -- `remap` (optional)
  /// receives old-id -> new-id maps with Digraph::npos for the dropped ones
  /// -- so this is a structural fallback: all warm sessions, published
  /// snapshots, schedule cursors and queued re-plans for the old id space
  /// are dropped, and the next request per source solves cold.  Requires
  /// node != the base platform's source and >= 3 nodes.
  void remove_node(NodeId node, ShrinkRemap* remap = nullptr);

  // ---- async re-plan worker (no-ops when async_replan is off) ----

  /// Block until every queued job has run and the worker is idle.
  void drain_replans();

  /// Suspend job pickup (waiting out an in-flight job first), so a batch of
  /// mutations coalesces into one re-plan of the final state on resume.
  void pause_replans();
  void resume_replans();

  /// Wall-clock ms per published re-plan since the last take, mutation to
  /// snapshot (includes queue wait and retries).
  std::vector<double> take_replan_latencies();

  // ---- introspection ----

  /// Snapshot of the current platform (copy: safe under concurrency).
  Platform platform_snapshot();

  /// Mutation counter; cached plans/schedules are keyed by it.  Lock-free,
  /// so staleness accounting never blocks on an in-flight re-plan.
  std::uint64_t version() const { return version_.load(std::memory_order_acquire); }

  PlannerServiceStats stats();

 private:
  struct PlanKey {
    NodeId source = 0;
    std::uint64_t version = 0;
    bool operator==(const PlanKey& other) const {
      return source == other.source && version == other.version;
    }
  };

  /// One queued re-plan: solve `source` at (at least) `version`.
  struct ReplanJob {
    NodeId source = 0;
    std::uint64_t version = 0;
  };

  /// Last-good published answer per source (async mode).  Lives under
  /// snapshot_mutex_, NOT the guard, so readers copy shared_ptrs in O(1)
  /// while the worker holds the write guard through a solve.
  struct Snapshot {
    std::uint64_t version = 0;
    std::shared_ptr<const SsbSolution> plan;
    std::shared_ptr<const PeriodicSchedule> schedule;
  };

  /// Warm session for `source`, creating (and LRU-evicting) as needed.
  /// Caller must hold the write guard.
  PlannerSession& session_locked(NodeId source);
  void evict_session_locked(NodeId source);
  std::shared_ptr<const SsbSolution> plan_locked(NodeId source, const LadderOptions& ladder);
  std::shared_ptr<const PeriodicSchedule> schedule_locked(NodeId source,
                                                          const LadderOptions& ladder);
  void note_tier_locked(PlanTier tier);
  void publish_locked(NodeId source, std::shared_ptr<const SsbSolution> plan,
                      std::shared_ptr<const PeriodicSchedule> schedule);
  void enqueue_replans();
  void worker_loop();
  void run_replan(ReplanJob job);

  // Lock order: guard_ before snapshot_mutex_ / queue_mutex_ (never the
  // other way; the two leaf mutexes are never held together).
  ParallelReadSerialWrite guard_;
  Platform platform_;                 ///< base platform (source = as loaded)
  std::vector<char> removed_;         ///< arcs removed from service
  PlannerServiceOptions options_;
  /// Written under the write guard; atomic so version() is lock-free.
  std::atomic<std::uint64_t> version_{0};

  /// Warm sessions, most recently used first.
  std::list<std::pair<NodeId, std::unique_ptr<PlannerSession>>> sessions_;

  LruCache<PlanKey, std::shared_ptr<const SsbSolution>> plan_cache_;
  ScheduleCache schedule_cache_;
  /// Per-source service version of the newest schedule ever built, feeding
  /// poll_schedule (only grows; written under the write guard).
  std::map<NodeId, std::uint64_t> schedule_built_;

  // ---- async worker state ----
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;  ///< job available / stop / resume
  std::condition_variable idle_cv_;   ///< job finished (drain / pause)
  std::deque<ReplanJob> queue_;
  bool stopping_ = false;
  bool paused_ = false;
  bool worker_busy_ = false;
  std::vector<double> replan_latencies_;
  std::thread worker_;

  std::mutex snapshot_mutex_;
  std::map<NodeId, Snapshot> published_;

  // Counter discipline: queries_ is bumped on the read path (shared lock)
  // and the replans_* counters on the worker thread, so they're atomic;
  // everything else only changes under the write guard.
  std::atomic<std::uint64_t> queries_{0};
  std::uint64_t solves_ = 0;
  std::uint64_t schedules_built_ = 0;
  std::uint64_t mutations_ = 0;
  std::uint64_t sessions_created_ = 0;
  std::uint64_t sessions_evicted_ = 0;
  std::uint64_t plans_exact_ = 0;
  std::uint64_t plans_rebuild_ = 0;
  std::uint64_t plans_heuristic_ = 0;
  std::atomic<std::uint64_t> replans_enqueued_{0};
  std::atomic<std::uint64_t> replans_coalesced_{0};
  std::atomic<std::uint64_t> replans_dropped_{0};
  std::atomic<std::uint64_t> replans_run_{0};
  std::atomic<std::uint64_t> replan_retries_{0};
  std::atomic<std::uint64_t> replans_failed_{0};
};

}  // namespace bt
