#pragma once

// The broadcast-planning service: a long-lived daemon over PlannerSession.
//
// A PlannerService loads one platform and then serves planning requests for
// the lifetime of the process:
//
//   "TP* for source s?"            -> throughput(s) / plan(s)
//   "give me the schedule"         -> schedule(s)
//   "link (u,v) degraded 30%"      -> scale_link_time(arc, 1/0.7), then
//                                     the next plan(s) is a warm re-plan
//   "link came back / re-measured" -> set_link_cost
//   "link died"                    -> remove_link
//   "node joined"                  -> add_node
//
// Layering:
//
//  * One warm PlannerSession per requested source, LRU-bounded
//    (Options::max_sessions): each session keeps its standing cutting-plane
//    masters and pools, so repeated queries and post-mutation re-plans ride
//    the incremental machinery instead of cold solves.  Sessions default to
//    cold_polish = false -- the service trades the batch path's bitwise
//    pool-determinism for warm-re-plan latency; agreement with a cold solve
//    stays within 1e-9 relative (see planner_session.hpp).
//  * LRU caches of plans and synthesized schedules keyed by (source,
//    service version), so steady-state read traffic doesn't even touch the
//    sessions.
//  * A many-readers / one-writer guard (util/parallel_read_serial_write.hpp):
//    queries share the service; mutations serialize, apply their delta to
//    the base platform and every warm session, and bump the version (which
//    retires all cached plans/schedules at once).
//
// Read methods are const-free on purpose: a cache miss escalates to the
// writer side to run the solve, so "read" describes the request, not the
// implementation.  Errors from a solve (e.g. removals disconnected the
// requested source's platform) propagate to the requesting caller; the
// session rolls back its masters and the service stays up.

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "platform/platform.hpp"
#include "sched/schedule_cache.hpp"
#include "ssb/planner_session.hpp"
#include "util/parallel_read_serial_write.hpp"

namespace bt {

struct PlannerServiceOptions {
  /// Per-source session configuration.  The constructor default turns cold
  /// polish off (warm re-plans stay on the standing masters).
  PlannerSessionOptions session;
  /// Warm sessions kept alive at once (LRU-evicted beyond this).
  std::size_t max_sessions = 8;
  /// Cached (source, version) plans and schedules.
  std::size_t plan_cache_capacity = 32;
  std::size_t schedule_cache_capacity = 16;

  PlannerServiceOptions() { session.cold_polish = false; }
};

/// Service counters (monotonic since construction).
struct PlannerServiceStats {
  std::uint64_t queries = 0;           ///< plan/throughput/schedule requests
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t schedule_cache_hits = 0;
  std::uint64_t solves = 0;            ///< session solves run on a miss
  std::uint64_t schedules_built = 0;
  std::uint64_t mutations = 0;
  std::uint64_t sessions_created = 0;
  std::uint64_t sessions_evicted = 0;
};

/// Cursor of a schedule consumer (e.g. the churn scenario engine's replay
/// loop): remembers the service version of the last schedule it took, so
/// PlannerService::poll_schedule can hand over *newer* builds without ever
/// blocking on a solve.
struct ScheduleSubscription {
  static constexpr std::uint64_t kNone = static_cast<std::uint64_t>(-1);
  NodeId source = 0;
  /// Version of the last schedule taken through poll_schedule (kNone:
  /// nothing taken yet -- the first poll returns the newest build, if any).
  std::uint64_t seen_version = kNone;
};

class PlannerService {
 public:
  explicit PlannerService(Platform platform, PlannerServiceOptions options = {});

  // ---- read requests (concurrent) ----

  /// TP* of the current platform broadcasting from `source`.
  double throughput(NodeId source);

  /// The full plan (TP*, edge loads, diagnostics) for `source`.  The
  /// returned snapshot stays valid after later mutations.
  std::shared_ptr<const SsbSolution> plan(NodeId source);

  /// The synthesized periodic schedule for `source`.
  std::shared_ptr<const PeriodicSchedule> schedule(NodeId source);

  /// Non-blocking epoch hook: the newest *built* schedule for `sub.source`
  /// whose service version is newer than sub.seen_version, advancing the
  /// cursor -- or nullptr when nothing newer has been built (or the build
  /// was already LRU-evicted; call schedule() to force one).  Never solves
  /// or synthesizes, so an executor can poll at every period boundary and
  /// keep running its installed schedule while a re-plan is in flight.
  std::shared_ptr<const PeriodicSchedule> poll_schedule(ScheduleSubscription& sub);

  // ---- write requests (serialized) ----

  /// Replace arc e's affine cost (re-measured or restored link).
  void set_link_cost(EdgeId e, LinkCost cost);

  /// Scale arc e's cost: "bandwidth degraded 30%" is factor 1/0.7.
  void scale_link_time(EdgeId e, double factor);

  /// Remove arc e from service.  Sources whose broadcasts depended on it
  /// re-plan around it; if it disconnected them, their next query throws.
  void remove_link(EdgeId e);

  /// Grow the platform by one node; returns its id.
  NodeId add_node(const std::vector<SessionLink>& in_links,
                  const std::vector<SessionLink>& out_links);

  // ---- introspection ----

  /// Snapshot of the current platform (copy: safe under concurrency).
  Platform platform_snapshot();

  /// Mutation counter; cached plans/schedules are keyed by it.
  std::uint64_t version();

  PlannerServiceStats stats();

 private:
  struct PlanKey {
    NodeId source = 0;
    std::uint64_t version = 0;
    bool operator==(const PlanKey& other) const {
      return source == other.source && version == other.version;
    }
  };

  /// Warm session for `source`, creating (and LRU-evicting) as needed.
  /// Caller must hold the write guard.
  PlannerSession& session_locked(NodeId source);
  std::shared_ptr<const SsbSolution> plan_locked(NodeId source);
  std::shared_ptr<const PeriodicSchedule> schedule_locked(NodeId source);

  ParallelReadSerialWrite guard_;
  Platform platform_;                 ///< base platform (source = as loaded)
  std::vector<char> removed_;         ///< arcs removed from service
  PlannerServiceOptions options_;
  std::uint64_t version_ = 0;

  /// Warm sessions, most recently used first.
  std::list<std::pair<NodeId, std::unique_ptr<PlannerSession>>> sessions_;

  LruCache<PlanKey, std::shared_ptr<const SsbSolution>> plan_cache_;
  ScheduleCache schedule_cache_;
  /// Per-source service version of the newest schedule ever built, feeding
  /// poll_schedule (only grows; written under the write guard).
  std::map<NodeId, std::uint64_t> schedule_built_;

  // Counter discipline: queries_ is bumped on the read path (shared lock)
  // so it's atomic; hit counters are folded from the caches' own counters;
  // everything else only changes under the write guard.
  std::atomic<std::uint64_t> queries_{0};
  std::uint64_t solves_ = 0;
  std::uint64_t schedules_built_ = 0;
  std::uint64_t mutations_ = 0;
  std::uint64_t sessions_created_ = 0;
  std::uint64_t sessions_evicted_ = 0;
};

}  // namespace bt
