#include "service/planner_service.hpp"

#include <chrono>
#include <utility>

#include "sched/orchestrate.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace bt {

PlannerService::PlannerService(Platform platform, PlannerServiceOptions options)
    : platform_(std::move(platform)),
      removed_(platform_.num_edges(), 0),
      options_(options),
      plan_cache_(options.plan_cache_capacity),
      schedule_cache_(options.schedule_cache_capacity) {
  BT_REQUIRE(options_.max_sessions > 0, "PlannerService: max_sessions must be positive");
  BT_REQUIRE(options_.replan_queue_capacity > 0,
             "PlannerService: replan_queue_capacity must be positive");
  if (options_.async_replan) {
    worker_ = std::thread([this] { worker_loop(); });
  }
}

PlannerService::~PlannerService() {
  if (worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      stopping_ = true;
    }
    queue_cv_.notify_all();
    worker_.join();
  }
}

PlannerSession& PlannerService::session_locked(NodeId source) {
  BT_REQUIRE(source < platform_.num_nodes(), "PlannerService: source out of range");
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (it->first == source) {
      sessions_.splice(sessions_.begin(), sessions_, it);
      return *sessions_.front().second;
    }
  }
  // Cold session: rebase the current platform on the requested source and
  // replay the removals so the session sees the service's live topology.
  auto session = std::make_unique<PlannerSession>(platform_.with_source(source),
                                                  options_.session);
  for (EdgeId e = 0; e < removed_.size(); ++e) {
    if (removed_[e]) session->remove_link(e);
  }
  sessions_.emplace_front(source, std::move(session));
  ++sessions_created_;
  if (sessions_.size() > options_.max_sessions) {
    sessions_.pop_back();
    ++sessions_evicted_;
  }
  return *sessions_.front().second;
}

void PlannerService::evict_session_locked(NodeId source) {
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (it->first == source) {
      sessions_.erase(it);
      ++sessions_evicted_;
      return;
    }
  }
}

void PlannerService::note_tier_locked(PlanTier tier) {
  switch (tier) {
    case PlanTier::kExact: ++plans_exact_; break;
    case PlanTier::kRebuild: ++plans_rebuild_; break;
    case PlanTier::kHeuristic: ++plans_heuristic_; break;
  }
}

std::shared_ptr<const SsbSolution> PlannerService::plan_locked(NodeId source,
                                                               const LadderOptions& ladder) {
  // Re-check under the exclusive lock: another writer may have solved this
  // (source, version) while we waited to escalate.
  if (auto hit = plan_cache_.get({source, version_})) return *hit;
  FaultScope scope(options_.faults);
  // Injected mid-stream eviction: the warm session vanishes just before the
  // solve, so the answer comes from a cold rebuild (still kExact -- the
  // ladder tiers describe *how* a solve concluded, not its warmth).
  if (fault_fire(FaultSite::kSessionEviction)) evict_session_locked(source);
  PlannerSession& session = session_locked(source);
  auto solution = std::make_shared<const SsbSolution>(session.solve_laddered(ladder));
  ++solves_;
  note_tier_locked(solution->tier);
  plan_cache_.put({source, version_}, solution);
  return solution;
}

std::shared_ptr<const PeriodicSchedule> PlannerService::schedule_locked(
    NodeId source, const LadderOptions& ladder) {
  const PortModel port_model = options_.session.cutting.port_model;
  if (auto hit = schedule_cache_.get({source, port_model, version_})) return *hit;
  FaultScope scope(options_.faults);
  PlannerSession& session = session_locked(source);
  std::shared_ptr<const PeriodicSchedule> schedule;
  try {
    schedule = std::make_shared<const PeriodicSchedule>(session.schedule());
  } catch (const Error&) {
    // The synthesis path failed (e.g. an injected pricing-oracle fault in
    // the packing solve).  Route through the ladder: solve_laddered leaves
    // a fresh cutting-plane -- or heuristic single-tree -- solution for
    // schedule() to synthesize from instead.
    session.solve_laddered(ladder);
    schedule = std::make_shared<const PeriodicSchedule>(session.schedule());
  }
  ++schedules_built_;
  schedule_cache_.put({source, port_model, version_}, schedule);
  schedule_built_[source] = version_;
  return schedule;
}

void PlannerService::publish_locked(NodeId source, std::shared_ptr<const SsbSolution> plan,
                                    std::shared_ptr<const PeriodicSchedule> schedule) {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  Snapshot& snap = published_[source];
  snap.version = version_;
  snap.plan = std::move(plan);
  snap.schedule = std::move(schedule);
}

double PlannerService::throughput(NodeId source) { return plan(source)->throughput; }

std::shared_ptr<const SsbSolution> PlannerService::plan(NodeId source) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (options_.async_replan) {
    {
      std::lock_guard<std::mutex> lock(snapshot_mutex_);
      const auto it = published_.find(source);
      if (it != published_.end()) return it->second.plan;
    }
    // First request for this source: solve synchronously (there is no
    // last-good yet) and publish, so later reads and polls are O(1).
    WriteGuard lock(guard_);
    auto plan = plan_locked(source, options_.ladder);
    auto schedule = schedule_locked(source, options_.ladder);
    publish_locked(source, plan, schedule);
    return plan;
  }
  {
    ReadGuard lock(guard_);
    if (auto hit = plan_cache_.get({source, version_})) return *hit;
  }
  WriteGuard lock(guard_);
  return plan_locked(source, options_.ladder);
}

std::shared_ptr<const PeriodicSchedule> PlannerService::schedule(NodeId source) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (options_.async_replan) {
    {
      std::lock_guard<std::mutex> lock(snapshot_mutex_);
      const auto it = published_.find(source);
      if (it != published_.end()) return it->second.schedule;
    }
    WriteGuard lock(guard_);
    auto plan = plan_locked(source, options_.ladder);
    auto schedule = schedule_locked(source, options_.ladder);
    publish_locked(source, plan, schedule);
    return schedule;
  }
  {
    ReadGuard lock(guard_);
    const PortModel port_model = options_.session.cutting.port_model;
    if (auto hit = schedule_cache_.get({source, port_model, version_})) return *hit;
  }
  WriteGuard lock(guard_);
  return schedule_locked(source, options_.ladder);
}

std::shared_ptr<const PeriodicSchedule> PlannerService::poll_schedule(ScheduleSubscription& sub) {
  if (options_.async_replan) {
    // Snapshot lock only: a poll at a period boundary must not block on the
    // worker's write-guarded solve -- that wait is exactly the staleness
    // the async mode exists to hide.
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    const auto it = published_.find(sub.source);
    if (it == published_.end()) return nullptr;
    if (sub.seen_version != ScheduleSubscription::kNone &&
        it->second.version <= sub.seen_version) {
      return nullptr;
    }
    sub.seen_version = it->second.version;
    return it->second.schedule;
  }
  ReadGuard lock(guard_);
  const auto it = schedule_built_.find(sub.source);
  if (it == schedule_built_.end()) return nullptr;
  const std::uint64_t built = it->second;
  if (sub.seen_version != ScheduleSubscription::kNone && built <= sub.seen_version)
    return nullptr;
  const PortModel port_model = options_.session.cutting.port_model;
  auto hit = schedule_cache_.get({sub.source, port_model, built});
  if (!hit) return nullptr;  // LRU-evicted since it was built
  sub.seen_version = built;
  return *hit;
}

// ---- async worker -----------------------------------------------------------

void PlannerService::enqueue_replans() {
  if (!options_.async_replan) return;
  // Re-plan every source a consumer is subscribed to (= has a published
  // snapshot).  Sources nobody asked about yet have nothing to refresh.
  std::vector<NodeId> targets;
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    targets.reserve(published_.size());
    for (const auto& entry : published_) targets.push_back(entry.first);
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (NodeId source : targets) {
      bool coalesced = false;
      for (ReplanJob& job : queue_) {
        if (job.source == source) {
          // A queued job for this source is superseded: lift it to the new
          // version instead of queueing a second solve of a stale state.
          job.version = version_;
          coalesced = true;
          replans_coalesced_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
      if (coalesced) continue;
      if (queue_.size() >= options_.replan_queue_capacity) {
        queue_.pop_front();
        replans_dropped_.fetch_add(1, std::memory_order_relaxed);
      }
      queue_.push_back({source, version_});
      replans_enqueued_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  queue_cv_.notify_one();
}

void PlannerService::worker_loop() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  for (;;) {
    queue_cv_.wait(lock, [&] { return stopping_ || (!queue_.empty() && !paused_); });
    if (stopping_) return;
    const ReplanJob job = queue_.front();
    queue_.pop_front();
    worker_busy_ = true;
    lock.unlock();
    run_replan(job);
    lock.lock();
    worker_busy_ = false;
    idle_cv_.notify_all();
  }
}

void PlannerService::run_replan(ReplanJob job) {
  Timer latency;
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      WriteGuard lock(guard_);
      // The solve always runs against the *current* state -- job.version is
      // a floor, not a pin; coalescing means the newest mutation wins.
      LadderOptions ladder = options_.ladder;
      // Retries exist to recover the LP optimum from a transient fault;
      // only the final attempt is allowed to degrade to the heuristic.
      if (attempt < options_.replan_max_retries) ladder.allow_heuristic = false;
      auto plan = plan_locked(job.source, ladder);
      auto schedule = schedule_locked(job.source, ladder);
      publish_locked(job.source, std::move(plan), std::move(schedule));
      replans_run_.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> latency_lock(queue_mutex_);
        replan_latencies_.push_back(latency.millis());
      }
      return;
    } catch (const Error&) {
      if (attempt >= options_.replan_max_retries) {
        // Out of retries: the last-good snapshot stays published (stale but
        // answerable); the next mutation or direct request tries again.
        // Never let an exception escape the worker thread.
        replans_failed_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      replan_retries_.fetch_add(1, std::memory_order_relaxed);
      if (options_.replan_retry_backoff_ms > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            options_.replan_retry_backoff_ms * static_cast<double>(attempt + 1)));
      }
    }
  }
}

void PlannerService::drain_replans() {
  if (!options_.async_replan) return;
  std::unique_lock<std::mutex> lock(queue_mutex_);
  idle_cv_.wait(lock, [&] { return (queue_.empty() || paused_) && !worker_busy_; });
}

void PlannerService::pause_replans() {
  if (!options_.async_replan) return;
  std::unique_lock<std::mutex> lock(queue_mutex_);
  paused_ = true;
  // Wait out an in-flight job so callers get a real barrier: after pause,
  // no solve is running and none will start until resume.
  idle_cv_.wait(lock, [&] { return !worker_busy_; });
}

void PlannerService::resume_replans() {
  if (!options_.async_replan) return;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    paused_ = false;
  }
  queue_cv_.notify_one();
}

std::vector<double> PlannerService::take_replan_latencies() {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return std::exchange(replan_latencies_, {});
}

// ---- write requests ---------------------------------------------------------

void PlannerService::set_link_cost(EdgeId e, LinkCost cost) {
  {
    WriteGuard lock(guard_);
    BT_REQUIRE(e < platform_.num_edges(), "PlannerService: edge out of range");
    platform_.set_link_cost(e, cost);
    removed_[e] = 0;
    for (auto& entry : sessions_) entry.second->set_link_cost(e, cost);
    ++mutations_;
    ++version_;
  }
  enqueue_replans();
}

void PlannerService::scale_link_time(EdgeId e, double factor) {
  {
    WriteGuard lock(guard_);
    BT_REQUIRE(e < platform_.num_edges(), "PlannerService: edge out of range");
    LinkCost cost = platform_.link_cost(e);
    cost.alpha *= factor;
    cost.beta *= factor;
    platform_.set_link_cost(e, cost);
    removed_[e] = 0;
    for (auto& entry : sessions_) entry.second->scale_link_time(e, factor);
    ++mutations_;
    ++version_;
  }
  enqueue_replans();
}

void PlannerService::remove_link(EdgeId e) {
  {
    WriteGuard lock(guard_);
    BT_REQUIRE(e < platform_.num_edges(), "PlannerService: edge out of range");
    removed_[e] = 1;
    for (auto& entry : sessions_) entry.second->remove_link(e);
    ++mutations_;
    ++version_;
  }
  enqueue_replans();
}

NodeId PlannerService::add_node(const std::vector<SessionLink>& in_links,
                                const std::vector<SessionLink>& out_links) {
  NodeId node;
  {
    WriteGuard lock(guard_);
    platform_ = grow_platform(platform_, in_links, out_links);
    removed_.resize(platform_.num_edges(), 0);
    for (auto& entry : sessions_) entry.second->add_node(in_links, out_links);
    ++mutations_;
    ++version_;
    node = static_cast<NodeId>(platform_.num_nodes() - 1);
  }
  enqueue_replans();
  return node;
}

void PlannerService::remove_node(NodeId node, ShrinkRemap* remap) {
  WriteGuard lock(guard_);
  ShrinkRemap local;
  // Validates node != source and >= 3 nodes; throws (via the Platform
  // constructor) if the leave disconnects the remaining platform.
  Platform shrunk = shrink_platform(platform_, node, &local);
  std::vector<char> compact_removed;
  compact_removed.reserve(shrunk.num_edges());
  for (EdgeId e = 0; e < removed_.size(); ++e) {
    if (local.edge_map[e] != Digraph::npos) compact_removed.push_back(removed_[e]);
  }
  platform_ = std::move(shrunk);
  removed_ = std::move(compact_removed);
  // Structural fallback, service-wide: every warm session, published
  // snapshot, poll cursor and queued job speaks the old id space.  Drop
  // them all; the next request per source solves cold against the compact
  // platform (consumers re-subscribe through the remap).
  sessions_evicted_ += sessions_.size();
  sessions_.clear();
  schedule_built_.clear();
  {
    std::lock_guard<std::mutex> snapshot_lock(snapshot_mutex_);
    published_.clear();
  }
  {
    std::lock_guard<std::mutex> queue_lock(queue_mutex_);
    queue_.clear();
  }
  ++mutations_;
  ++version_;
  if (remap != nullptr) *remap = std::move(local);
}

// ---- introspection ----------------------------------------------------------

Platform PlannerService::platform_snapshot() {
  ReadGuard lock(guard_);
  return platform_;
}

PlannerServiceStats PlannerService::stats() {
  WriteGuard lock(guard_);
  PlannerServiceStats out;
  out.queries = queries_.load(std::memory_order_relaxed);
  out.plan_cache_hits = plan_cache_.hits();
  out.schedule_cache_hits = schedule_cache_.hits();
  out.solves = solves_;
  out.schedules_built = schedules_built_;
  out.mutations = mutations_;
  out.sessions_created = sessions_created_;
  out.sessions_evicted = sessions_evicted_;
  out.plans_exact = plans_exact_;
  out.plans_rebuild = plans_rebuild_;
  out.plans_heuristic = plans_heuristic_;
  out.replans_enqueued = replans_enqueued_.load(std::memory_order_relaxed);
  out.replans_coalesced = replans_coalesced_.load(std::memory_order_relaxed);
  out.replans_dropped = replans_dropped_.load(std::memory_order_relaxed);
  out.replans_run = replans_run_.load(std::memory_order_relaxed);
  out.replan_retries = replan_retries_.load(std::memory_order_relaxed);
  out.replans_failed = replans_failed_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace bt
