#include "service/planner_service.hpp"

#include <utility>

#include "sched/orchestrate.hpp"
#include "util/error.hpp"

namespace bt {

PlannerService::PlannerService(Platform platform, PlannerServiceOptions options)
    : platform_(std::move(platform)),
      removed_(platform_.num_edges(), 0),
      options_(options),
      plan_cache_(options.plan_cache_capacity),
      schedule_cache_(options.schedule_cache_capacity) {
  BT_REQUIRE(options_.max_sessions > 0, "PlannerService: max_sessions must be positive");
}

PlannerSession& PlannerService::session_locked(NodeId source) {
  BT_REQUIRE(source < platform_.num_nodes(), "PlannerService: source out of range");
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (it->first == source) {
      sessions_.splice(sessions_.begin(), sessions_, it);
      return *sessions_.front().second;
    }
  }
  // Cold session: rebase the current platform on the requested source and
  // replay the removals so the session sees the service's live topology.
  auto session = std::make_unique<PlannerSession>(platform_.with_source(source),
                                                  options_.session);
  for (EdgeId e = 0; e < removed_.size(); ++e) {
    if (removed_[e]) session->remove_link(e);
  }
  sessions_.emplace_front(source, std::move(session));
  ++sessions_created_;
  if (sessions_.size() > options_.max_sessions) {
    sessions_.pop_back();
    ++sessions_evicted_;
  }
  return *sessions_.front().second;
}

std::shared_ptr<const SsbSolution> PlannerService::plan_locked(NodeId source) {
  // Re-check under the exclusive lock: another writer may have solved this
  // (source, version) while we waited to escalate.
  if (auto hit = plan_cache_.get({source, version_})) return *hit;
  PlannerSession& session = session_locked(source);
  auto solution = std::make_shared<const SsbSolution>(session.solve());
  ++solves_;
  plan_cache_.put({source, version_}, solution);
  return solution;
}

std::shared_ptr<const PeriodicSchedule> PlannerService::schedule_locked(NodeId source) {
  const PortModel port_model = options_.session.cutting.port_model;
  if (auto hit = schedule_cache_.get({source, port_model, version_})) return *hit;
  PlannerSession& session = session_locked(source);
  auto schedule = std::make_shared<const PeriodicSchedule>(session.schedule());
  ++schedules_built_;
  schedule_cache_.put({source, port_model, version_}, schedule);
  schedule_built_[source] = version_;
  return schedule;
}

double PlannerService::throughput(NodeId source) { return plan(source)->throughput; }

std::shared_ptr<const SsbSolution> PlannerService::plan(NodeId source) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  {
    ReadGuard lock(guard_);
    if (auto hit = plan_cache_.get({source, version_})) return *hit;
  }
  WriteGuard lock(guard_);
  return plan_locked(source);
}

std::shared_ptr<const PeriodicSchedule> PlannerService::schedule(NodeId source) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  {
    ReadGuard lock(guard_);
    const PortModel port_model = options_.session.cutting.port_model;
    if (auto hit = schedule_cache_.get({source, port_model, version_})) return *hit;
  }
  WriteGuard lock(guard_);
  return schedule_locked(source);
}

std::shared_ptr<const PeriodicSchedule> PlannerService::poll_schedule(ScheduleSubscription& sub) {
  ReadGuard lock(guard_);
  const auto it = schedule_built_.find(sub.source);
  if (it == schedule_built_.end()) return nullptr;
  const std::uint64_t built = it->second;
  if (sub.seen_version != ScheduleSubscription::kNone && built <= sub.seen_version)
    return nullptr;
  const PortModel port_model = options_.session.cutting.port_model;
  auto hit = schedule_cache_.get({sub.source, port_model, built});
  if (!hit) return nullptr;  // LRU-evicted since it was built
  sub.seen_version = built;
  return *hit;
}

void PlannerService::set_link_cost(EdgeId e, LinkCost cost) {
  WriteGuard lock(guard_);
  BT_REQUIRE(e < platform_.num_edges(), "PlannerService: edge out of range");
  platform_.set_link_cost(e, cost);
  removed_[e] = 0;
  for (auto& entry : sessions_) entry.second->set_link_cost(e, cost);
  ++mutations_;
  ++version_;
}

void PlannerService::scale_link_time(EdgeId e, double factor) {
  WriteGuard lock(guard_);
  BT_REQUIRE(e < platform_.num_edges(), "PlannerService: edge out of range");
  LinkCost cost = platform_.link_cost(e);
  cost.alpha *= factor;
  cost.beta *= factor;
  platform_.set_link_cost(e, cost);
  removed_[e] = 0;
  for (auto& entry : sessions_) entry.second->scale_link_time(e, factor);
  ++mutations_;
  ++version_;
}

void PlannerService::remove_link(EdgeId e) {
  WriteGuard lock(guard_);
  BT_REQUIRE(e < platform_.num_edges(), "PlannerService: edge out of range");
  removed_[e] = 1;
  for (auto& entry : sessions_) entry.second->remove_link(e);
  ++mutations_;
  ++version_;
}

NodeId PlannerService::add_node(const std::vector<SessionLink>& in_links,
                                const std::vector<SessionLink>& out_links) {
  WriteGuard lock(guard_);
  platform_ = grow_platform(platform_, in_links, out_links);
  removed_.resize(platform_.num_edges(), 0);
  for (auto& entry : sessions_) entry.second->add_node(in_links, out_links);
  ++mutations_;
  ++version_;
  return static_cast<NodeId>(platform_.num_nodes() - 1);
}

Platform PlannerService::platform_snapshot() {
  ReadGuard lock(guard_);
  return platform_;
}

std::uint64_t PlannerService::version() {
  ReadGuard lock(guard_);
  return version_;
}

PlannerServiceStats PlannerService::stats() {
  WriteGuard lock(guard_);
  PlannerServiceStats out;
  out.queries = queries_.load(std::memory_order_relaxed);
  out.plan_cache_hits = plan_cache_.hits();
  out.schedule_cache_hits = schedule_cache_.hits();
  out.solves = solves_;
  out.schedules_built = schedules_built_;
  out.mutations = mutations_;
  out.sessions_created = sessions_created_;
  out.sessions_evicted = sessions_evicted_;
  return out;
}

}  // namespace bt
