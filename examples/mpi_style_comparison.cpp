// Scenario: what an MPI library would do vs what a topology-aware library
// can do.  Compares the index-based binomial tree (MPI_Bcast-style, STA and
// STP regimes) against the paper's pipelined heuristics for growing message
// sizes, reproducing the motivation of Section 1: pipelining plus topology
// awareness dominate for large messages.
//
//   $ ./mpi_style_comparison

#include <iostream>

#include "core/heuristics.hpp"
#include "core/throughput.hpp"
#include "platform/random_generator.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace bt;

  Rng rng(11);
  RandomPlatformConfig config;
  config.num_nodes = 20;
  config.density = 0.12;
  // Links get a realistic start-up latency so small messages favor few hops.
  config.alpha = 1e-4;
  const Platform base = generate_random_platform(config, rng);

  const BroadcastTree binomial = binomial_tree(base);
  const BroadcastTree pipelined = prune_platform_degree(base);

  std::cout << "20-node random platform; comparing broadcast strategies\n"
            << "(STA = whole message at once, STP = pipelined in 1 MB slices)\n\n";

  TablePrinter table({"message", "binomial STA (s)", "binomial STP (s)",
                      "prune_degree STP (s)", "speedup vs MPI-style"});
  for (double mb : {1.0, 10.0, 100.0, 1000.0}) {
    const double bytes = mb * 1e6;
    // STA: one shot along the binomial tree.
    const double sta = sta_makespan(base, binomial, bytes);
    // STP: split into 1 MB slices, pipeline along each tree.
    Platform platform = base;
    platform.set_slice_size(1e6);
    const auto slices = static_cast<std::size_t>(bytes / platform.slice_size());
    const double stp_binomial = pipelined_completion_time(platform, binomial, slices);
    const double stp_tuned = pipelined_completion_time(platform, pipelined, slices);
    table.add_row({TablePrinter::fmt(mb, 0) + " MB", TablePrinter::fmt(sta, 3),
                   TablePrinter::fmt(stp_binomial, 3), TablePrinter::fmt(stp_tuned, 3),
                   TablePrinter::fmt(sta / stp_tuned, 1) + "x"});
  }
  table.render(std::cout);

  std::cout << "\ntakeaway: pipelining alone already helps; adding topology awareness\n"
               "(prune_degree) compounds the gain as messages grow.\n";
  return 0;
}
