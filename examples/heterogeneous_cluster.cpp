// Scenario: dissemination of a large dataset across a heterogeneous
// cluster-of-clusters (the motivating workload of the paper's introduction).
// Generates a Tiers-style platform, runs every one-port heuristic, and shows
// how tree choice changes the time to broadcast a 1 GB dataset.
//
//   $ ./heterogeneous_cluster [seed]

#include <cstdlib>
#include <iostream>

#include "core/registry.hpp"
#include "core/throughput.hpp"
#include "platform/tiers_generator.hpp"
#include "sim/pipeline_simulator.hpp"
#include "ssb/ssb_cutting_plane.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bt;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  Rng rng(seed);
  const Platform platform = generate_tiers_platform(tiers_config_30(), rng);
  std::cout << "Tiers-style platform: " << platform.num_nodes() << " nodes, "
            << platform.num_edges() << " arcs, density "
            << TablePrinter::fmt(platform.graph().density(), 3) << ", source P"
            << platform.source() << "\n\n";

  const SsbSolution optimum = solve_ssb_cutting_plane(platform);
  std::cout << "optimal MTP throughput (LP bound): " << optimum.throughput
            << " slices/s\n\n";

  const double dataset_bytes = 1e9;  // 1 GB to disseminate
  const auto slices =
      static_cast<std::size_t>(dataset_bytes / platform.slice_size());

  TablePrinter table({"heuristic", "throughput (slices/s)", "% of optimal",
                      "1GB broadcast time (s)"});
  for (const HeuristicSpec& spec : one_port_heuristics()) {
    const std::vector<double>* loads = spec.needs_lp_loads ? &optimum.edge_load : nullptr;
    const BroadcastTree tree = spec.build(platform, loads);
    const double tp = one_port_throughput(platform, tree);
    const SimResult sim = simulate_pipelined_broadcast(platform, tree, slices);
    table.add_row({spec.name, TablePrinter::fmt(tp, 2),
                   TablePrinter::pct(tp / optimum.throughput, 1),
                   TablePrinter::fmt(sim.completion_time, 2)});
  }
  table.render(std::cout);

  std::cout << "\nNote how the topology-aware heuristics disseminate the dataset\n"
               "several times faster than the index-based binomial tree that MPI\n"
               "implementations use.\n";
  return 0;
}
