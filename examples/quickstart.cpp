// Quickstart: build a small heterogeneous platform by hand, construct a
// broadcast tree with the paper's best heuristic, and compare it to the
// optimal multi-tree throughput.
//
//   $ ./quickstart

#include <iostream>

#include "core/heuristics.hpp"
#include "core/throughput.hpp"
#include "platform/platform.hpp"
#include "sim/pipeline_simulator.hpp"
#include "ssb/ssb_cutting_plane.hpp"

int main() {
  using namespace bt;

  // A 6-node platform: one fast cluster (0-1-2), one slow site (3-4-5),
  // bridged by a WAN link.  Arc costs are per-slice times in seconds for a
  // 1 MB slice (LinkCost{alpha, beta} with T = alpha + beta * L).
  Digraph g(6);
  std::vector<LinkCost> costs;
  auto link = [&](NodeId a, NodeId b, double mb_per_s) {
    g.add_bidirectional(a, b);
    costs.push_back({0.0, 1.0 / (mb_per_s * 1e6)});
    costs.push_back({0.0, 1.0 / (mb_per_s * 1e6)});
  };
  link(0, 1, 120.0);  // fast cluster
  link(0, 2, 110.0);
  link(1, 2, 100.0);
  link(2, 3, 20.0);   // WAN bridge
  link(3, 4, 80.0);   // slow site
  link(3, 5, 70.0);
  link(4, 5, 60.0);

  const Platform platform(std::move(g), std::move(costs), /*slice_size=*/1e6,
                          /*source=*/0);

  // Build a pipelined broadcast tree with the Grow-Tree heuristic.
  const BroadcastTree tree = grow_tree(platform);
  std::cout << "broadcast tree (grow_tree heuristic):\n"
            << describe_tree(platform, tree) << "\n";

  const double throughput = one_port_throughput(platform, tree);
  std::cout << "steady-state throughput: " << throughput << " slices/s ("
            << throughput * platform.slice_size() / 1e6 << " MB/s)\n";

  // Compare against the optimal multi-tree (MTP) throughput from the LP.
  const SsbSolution optimum = solve_ssb_cutting_plane(platform);
  std::cout << "optimal MTP throughput:  " << optimum.throughput << " slices/s\n";
  std::cout << "relative performance:    "
            << 100.0 * throughput / optimum.throughput << "%\n\n";

  // Sanity-check the closed form with the discrete-event simulator.
  const SimResult sim = simulate_pipelined_broadcast(platform, tree, 500);
  std::cout << "simulated steady throughput (500 slices): " << sim.steady_throughput
            << " slices/s\n"
            << "broadcasting a 500 MB message takes " << sim.completion_time
            << " s end to end\n";
  return 0;
}
