// Scenario: synthesize the *executable* optimal multi-tree schedule -- the
// step the paper proves polynomial but calls too complicated to build.  The
// column-generation solver yields the weighted trees, sched/ orchestrates
// them into conflict-free one-port rounds, validate.hpp certifies the
// result, and the replay executor shows the rounds really sustain TP*.
//
//   $ ./multitree_schedule [nodes] [density]

#include <cstdlib>
#include <iostream>

#include "core/heuristics.hpp"
#include "core/stp_exhaustive.hpp"
#include "core/throughput.hpp"
#include "platform/random_generator.hpp"
#include "sched/orchestrate.hpp"
#include "sched/tree_decomposition.hpp"
#include "sched/validate.hpp"
#include "sim/schedule_replay.hpp"
#include "ssb/ssb_column_generation.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bt;
  const std::size_t nodes = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;
  const double density = argc > 2 ? std::strtod(argv[2], nullptr) : 0.3;

  Rng rng(4);
  RandomPlatformConfig config;
  config.num_nodes = nodes;
  config.density = density;
  const Platform platform = generate_random_platform(config, rng);
  std::cout << "platform: " << platform.num_nodes() << " nodes, "
            << platform.num_edges() << " arcs\n\n";

  // Optimal multi-tree packing, then the executable schedule from it.
  const SsbPackingSolution mtp = solve_ssb_column_generation(platform);
  const TreeDecomposition decomposition = decompose_edge_load(platform, mtp);
  const PeriodicSchedule schedule = orchestrate_one_port(platform, decomposition.trees);

  std::cout << "optimal MTP throughput: " << mtp.throughput << " slices/s, achieved by "
            << decomposition.trees.size() << " tree(s):\n";
  TablePrinter table({"tree", "rate (slices/s)", "share", "depth-1 children of source"});
  for (std::size_t i = 0; i < decomposition.trees.size(); ++i) {
    const PackedTree& t = decomposition.trees[i];
    std::size_t source_children = 0;
    for (EdgeId e : t.edges) {
      if (platform.graph().from(e) == platform.source()) ++source_children;
    }
    table.add_row({std::to_string(i), TablePrinter::fmt(t.rate, 2),
                   TablePrinter::pct(t.rate / mtp.throughput, 1),
                   std::to_string(source_children)});
  }
  table.render(std::cout);

  // The conflict-free one-port rounds and their certificate.
  std::cout << "\n" << describe_schedule(platform, schedule, 12);
  ScheduleCheckOptions check_options;
  check_options.reference = &mtp;
  check_options.require_exact_loads = true;
  const ScheduleCheck check = check_schedule(platform, schedule, check_options);
  std::cout << "\nvalidity checker: " << (check.ok ? "schedule is conflict-free" : "INVALID");
  if (!check.ok) {
    for (const std::string& why : check.violations) std::cout << "\n  " << why;
  }
  const ReplayResult replay = replay_schedule(platform, schedule);
  std::cout << "\nreplay: steady-state " << replay.steady_throughput << " slices/s = "
            << TablePrinter::pct(replay.steady_throughput / mtp.throughput, 2)
            << " of TP* after a " << replay.transient_periods << "-period transient\n";

  // The exact best single tree (exhaustive; platforms this size allow it).
  if (nodes <= 10) {
    const auto best = stp_optimal_tree(platform);
    std::cout << "\nbest single tree (exhaustive over " << best.trees_enumerated
              << " arborescences): " << 1.0 / best.best_period << " slices/s = "
              << TablePrinter::pct(1.0 / best.best_period / mtp.throughput, 1)
              << " of the MTP optimum\n";
    const BroadcastTree heuristic = grow_tree(platform);
    const PeriodicSchedule single = schedule_single_tree(platform, heuristic);
    const ReplayResult single_replay = replay_schedule(platform, single);
    std::cout << "grow_tree heuristic:  " << one_port_throughput(platform, heuristic)
              << " slices/s = "
              << TablePrinter::pct(one_port_throughput(platform, heuristic) / mtp.throughput, 1)
              << " of the MTP optimum (replayed: " << single_replay.steady_throughput
              << " slices/s)\n";
  }

  std::cout << "\nThe multi-tree schedule splits the message: each tree carries its\n"
               "`share` of the slices concurrently, saturating ports no single tree\n"
               "can saturate alone -- and the rounds above show *when* every arc\n"
               "fires so that no one-port constraint is ever violated.\n";
  return 0;
}
