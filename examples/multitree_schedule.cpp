// Scenario: extract and inspect the *optimal multi-tree schedule* (the MTP
// solution the paper proves polynomial but calls too complicated to build --
// our column-generation solver returns it directly), and compare it with the
// best single tree.
//
//   $ ./multitree_schedule [nodes] [density]

#include <cstdlib>
#include <iostream>

#include "core/heuristics.hpp"
#include "core/stp_exhaustive.hpp"
#include "core/throughput.hpp"
#include "platform/random_generator.hpp"
#include "ssb/ssb_column_generation.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bt;
  const std::size_t nodes = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;
  const double density = argc > 2 ? std::strtod(argv[2], nullptr) : 0.3;

  Rng rng(4);
  RandomPlatformConfig config;
  config.num_nodes = nodes;
  config.density = density;
  const Platform platform = generate_random_platform(config, rng);
  std::cout << "platform: " << platform.num_nodes() << " nodes, "
            << platform.num_edges() << " arcs\n\n";

  // The optimal multi-tree schedule.
  const SsbPackingSolution mtp = solve_ssb_column_generation(platform);
  std::cout << "optimal MTP throughput: " << mtp.throughput << " slices/s, achieved by "
            << mtp.trees.size() << " tree(s):\n";
  TablePrinter table({"tree", "rate (slices/s)", "share", "depth-1 children of source"});
  for (std::size_t i = 0; i < mtp.trees.size(); ++i) {
    const PackedTree& t = mtp.trees[i];
    std::size_t source_children = 0;
    for (EdgeId e : t.edges) {
      if (platform.graph().from(e) == platform.source()) ++source_children;
    }
    table.add_row({std::to_string(i), TablePrinter::fmt(t.rate, 2),
                   TablePrinter::pct(t.rate / mtp.throughput, 1),
                   std::to_string(source_children)});
  }
  table.render(std::cout);

  // The exact best single tree (exhaustive; platforms this size allow it).
  if (nodes <= 10) {
    const auto best = stp_optimal_tree(platform);
    std::cout << "\nbest single tree (exhaustive over " << best.trees_enumerated
              << " arborescences): " << 1.0 / best.best_period << " slices/s = "
              << TablePrinter::pct(1.0 / best.best_period / mtp.throughput, 1)
              << " of the MTP optimum\n";
    const BroadcastTree heuristic = grow_tree(platform);
    std::cout << "grow_tree heuristic:  " << one_port_throughput(platform, heuristic)
              << " slices/s = "
              << TablePrinter::pct(one_port_throughput(platform, heuristic) / mtp.throughput, 1)
              << " of the MTP optimum\n";
  }

  std::cout << "\nThe multi-tree schedule splits the message: each tree carries its\n"
               "`share` of the slices concurrently, saturating ports no single tree\n"
               "can saturate alone.\n";
  return 0;
}
