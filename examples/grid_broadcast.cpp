// Scenario: grid computing -- broadcasting input data from a lab's gateway
// over a random wide-area overlay, under both communication models.  Shows
// the one-port vs multi-port trade-off and exports the chosen tree as
// Graphviz DOT for visualization.
//
//   $ ./grid_broadcast [nodes] [density]

#include <cstdlib>
#include <iostream>

#include "core/registry.hpp"
#include "core/throughput.hpp"
#include "platform/platform_io.hpp"
#include "platform/random_generator.hpp"
#include "ssb/ssb_cutting_plane.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bt;
  const std::size_t nodes = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 24;
  const double density = argc > 2 ? std::strtod(argv[2], nullptr) : 0.12;

  Rng rng(2025);
  RandomPlatformConfig config;
  config.num_nodes = nodes;
  config.density = density;
  config.multiport_ratio = 0.8;
  const Platform platform = generate_random_platform(config, rng);

  std::cout << "random overlay: " << platform.num_nodes() << " nodes, "
            << platform.num_edges() << " arcs\n\n";

  const SsbSolution optimum = solve_ssb_cutting_plane(platform);

  // One-port: serialized sends -- narrow trees win.
  const BroadcastTree one_port_tree = find_heuristic("prune_degree").build(platform, nullptr);
  // Multi-port: overlapping links -- wider trees win.
  const BroadcastTree multi_tree = find_heuristic("multiport_grow_tree").build(platform, nullptr);

  TablePrinter table({"model", "tree heuristic", "period (ms)", "throughput (slices/s)",
                      "% of one-port optimum"});
  const double p1 = one_port_period(platform, one_port_tree);
  table.add_row({"one-port", "prune_degree", TablePrinter::fmt(p1 * 1e3, 2),
                 TablePrinter::fmt(1.0 / p1, 2),
                 TablePrinter::pct(1.0 / p1 / optimum.throughput, 1)});
  const double p2 = multiport_period(platform, multi_tree);
  table.add_row({"multi-port", "multiport_grow_tree", TablePrinter::fmt(p2 * 1e3, 2),
                 TablePrinter::fmt(1.0 / p2, 2),
                 TablePrinter::pct(1.0 / p2 / optimum.throughput, 1)});
  table.render(std::cout);

  // Tree-shape comparison: out-degree of the source under each model.
  std::cout << "\nsource out-degree: one-port tree "
            << one_port_tree.children(platform)[platform.source()].size()
            << ", multi-port tree "
            << multi_tree.children(platform)[platform.source()].size()
            << " (multi-port affords wider fan-out)\n";

  std::cout << "\nGraphviz DOT of the one-port tree (pipe into `dot -Tpng`):\n\n"
            << platform_to_dot(platform, one_port_tree.edges);
  return 0;
}
