// Tests for the sparse LU simplex engine (basis_lu.hpp + simplex.cpp):
// randomized cross-validation against the exact rational simplex and the
// dense reference engine, warm-start invariance, a degenerate/cycling
// regression that exercises the eta-update + refactorization path, and the
// incremental (append-column) API used by the column-generation master.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/exact_simplex.hpp"
#include "lp/lp_problem.hpp"
#include "lp/rational.hpp"
#include "lp/simplex.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bt {
namespace {

/// Random integer-coefficient maximization program with <= rows and
/// non-negative rhs, mirrored into both representations.
struct PairedLp {
  ExactLp exact;
  LpProblem approx{Objective::kMaximize};
};

PairedLp random_paired_lp(Rng& rng, std::size_t min_vars = 2, std::size_t max_extra = 6) {
  PairedLp lp;
  const std::size_t vars = min_vars + rng.index(max_extra);
  const std::size_t rows = 2 + rng.index(max_extra);
  lp.exact.c.resize(vars);
  for (std::size_t j = 0; j < vars; ++j) {
    const auto cj = rng.uniform_int(0, 9);
    lp.exact.c[j] = Rational(cj);
    lp.approx.add_variable(static_cast<double>(cj));
  }
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<Rational> row(vars);
    std::vector<LpTerm> terms;
    for (std::size_t j = 0; j < vars; ++j) {
      const auto aij = rng.uniform_int(0, 6);
      row[j] = Rational(aij);
      if (aij != 0) terms.push_back({j, static_cast<double>(aij)});
    }
    const auto bi = rng.uniform_int(1, 20);
    lp.exact.a.push_back(std::move(row));
    lp.exact.b.push_back(Rational(bi));
    lp.approx.add_constraint(terms, RowSense::kLessEqual, static_cast<double>(bi));
  }
  return lp;
}

// ------------------------------------------- exact-rational cross-check ----

TEST(SparseEngine, PropertyMatchesExactSimplexObjectiveAndDuals) {
  Rng rng(0x5EED);
  int optimal = 0;
  for (int trial = 0; trial < 80; ++trial) {
    PairedLp lp = random_paired_lp(rng);
    const auto exact = solve_exact_lp(lp.exact);
    const auto s = solve_lp(lp.approx);  // default engine: sparse LU
    if (exact.status == ExactStatus::kUnbounded) {
      EXPECT_EQ(s.status, LpStatus::kUnbounded) << "trial " << trial;
      continue;
    }
    ASSERT_EQ(s.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(s.objective, exact.objective.to_double(), 1e-7) << "trial " << trial;
    EXPECT_LE(lp.approx.max_violation(s.x), 1e-7) << "trial " << trial;
    // Strong duality: b^T y = c^T x, with y >= 0 on <= rows of a max program.
    double dual_objective = 0.0;
    for (std::size_t i = 0; i < lp.approx.num_constraints(); ++i) {
      EXPECT_GE(s.duals[i], -1e-7) << "trial " << trial << " row " << i;
      dual_objective += s.duals[i] * lp.approx.row(i).rhs;
    }
    EXPECT_NEAR(dual_objective, s.objective, 1e-6) << "trial " << trial;
    ++optimal;
  }
  EXPECT_GT(optimal, 40);
}

TEST(SparseEngine, AgreesWithDenseReferenceOnMixedSenseRows) {
  // >= and = rows force the phase-1 + artificial-purge path through the
  // factorization (including redundant-row drops).
  Rng rng(0xD1FF);
  for (int trial = 0; trial < 60; ++trial) {
    LpProblem sparse_lp(Objective::kMinimize);
    const std::size_t vars = 2 + rng.index(4);
    for (std::size_t j = 0; j < vars; ++j) {
      sparse_lp.add_variable(rng.uniform_real(0.5, 4.0));
    }
    const std::size_t rows = 2 + rng.index(4);
    for (std::size_t i = 0; i < rows; ++i) {
      std::vector<LpTerm> terms;
      for (std::size_t j = 0; j < vars; ++j) {
        const auto aij = rng.uniform_int(0, 3);
        if (aij != 0) terms.push_back({j, static_cast<double>(aij)});
      }
      const RowSense sense = i % 3 == 0   ? RowSense::kGreaterEqual
                             : i % 3 == 1 ? RowSense::kLessEqual
                                          : RowSense::kEqual;
      sparse_lp.add_constraint(terms, sense, static_cast<double>(rng.uniform_int(0, 8)));
    }
    SimplexOptions dense_options;
    dense_options.engine = LpEngine::kDenseReference;
    const LpSolution dense = solve_lp(sparse_lp, dense_options);
    const LpSolution sparse = solve_lp(sparse_lp);
    ASSERT_EQ(sparse.status, dense.status) << "trial " << trial;
    if (sparse.status == LpStatus::kOptimal) {
      EXPECT_NEAR(sparse.objective, dense.objective, 1e-6) << "trial " << trial;
    }
  }
}

// ------------------------------------------------------------ warm start ----

TEST(SparseEngine, WarmStartInvariance) {
  // solve(lp) == solve(lp, warm) objectives across random programs, and the
  // warm re-solve converges in at most one full pricing pass.
  Rng rng(0x3A2B);
  for (int trial = 0; trial < 40; ++trial) {
    PairedLp lp = random_paired_lp(rng);
    const LpSolution cold = solve_lp(lp.approx);
    if (cold.status != LpStatus::kOptimal || cold.basis.empty()) continue;
    SimplexOptions options;
    options.warm_basis = &cold.basis;
    const LpSolution warm = solve_lp(lp.approx, options);
    ASSERT_EQ(warm.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(warm.objective, cold.objective, 1e-8) << "trial " << trial;
    EXPECT_LE(warm.iterations, 2u) << "trial " << trial;
  }
}

// ---------------------------------------- eta-update / refactorization -----

TEST(SparseEngine, RefactorPeriodDoesNotChangeTheOptimum) {
  // The same degenerate program solved with refactorization after every
  // pivot, every third pivot, and only on the eta-file default must agree:
  // the eta file and a fresh LU are interchangeable representations.
  Rng rng(0xE7A);
  for (int trial = 0; trial < 25; ++trial) {
    PairedLp lp = random_paired_lp(rng, 4, 5);
    const auto exact = solve_exact_lp(lp.exact);
    if (exact.status != ExactStatus::kOptimal) continue;
    for (const std::size_t period : {std::size_t{1}, std::size_t{3}, std::size_t{64}}) {
      SimplexOptions options;
      options.refactor_period = period;
      const LpSolution s = solve_lp(lp.approx, options);
      ASSERT_EQ(s.status, LpStatus::kOptimal) << "trial " << trial << " period " << period;
      EXPECT_NEAR(s.objective, exact.objective.to_double(), 1e-7)
          << "trial " << trial << " period " << period;
    }
  }
}

TEST(SparseEngine, DegenerateCyclingRegression) {
  // Classic degeneracy: many constraints active at the origin.  The engine
  // must terminate (Bland fallback) and find the exact optimum while its
  // pivots run through the eta-update path.
  LpProblem lp(Objective::kMaximize);
  const auto x = lp.add_variable(1.0);
  const auto y = lp.add_variable(1.0);
  const auto z = lp.add_variable(1.0);
  for (int k = 1; k <= 12; ++k) {
    lp.add_constraint({{x, static_cast<double>(k)}, {y, 1.0}, {z, 0.5 * k}},
                      RowSense::kLessEqual, 0.0);
  }
  lp.add_constraint({{x, 1.0}, {y, 1.0}, {z, 1.0}}, RowSense::kLessEqual, 1.0);
  SimplexOptions options;
  options.refactor_period = 2;  // force the refactor path under degeneracy
  const LpSolution s = solve_lp(lp, options);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 0.0, 1e-9);  // y enters only at 0: all rows bind
}

// ------------------------------------------------- incremental simplex -----

TEST(IncrementalSimplex, MatchesRebuildAfterEachAppendedColumn) {
  // Column-generation pattern: fixed <= rows, one column appended per round.
  // After every append, the incremental re-solve must match a from-scratch
  // solve of the equivalent full problem (objective and duals).
  Rng rng(0x17C5);
  const std::size_t rows = 6;
  std::vector<double> rhs(rows);
  for (std::size_t i = 0; i < rows; ++i) rhs[i] = rng.uniform_real(1.0, 5.0);

  auto random_column = [&]() {
    std::vector<LpTerm> terms;
    for (std::size_t i = 0; i < rows; ++i) {
      if (rng.bernoulli(0.6)) terms.push_back({i, rng.uniform_real(0.1, 2.0)});
    }
    return terms;
  };

  std::vector<std::vector<LpTerm>> columns{random_column()};
  std::vector<double> objective{rng.uniform_real(0.5, 2.0)};

  auto build_full = [&]() {
    LpProblem lp(Objective::kMaximize);
    for (double c : objective) lp.add_variable(c);
    for (std::size_t i = 0; i < rows; ++i) {
      std::vector<LpTerm> row_terms;  // transpose the column list
      for (std::size_t j = 0; j < columns.size(); ++j) {
        for (const LpTerm& t : columns[j]) {
          if (t.var == i) row_terms.push_back({j, t.coeff});
        }
      }
      lp.add_constraint(row_terms, RowSense::kLessEqual, rhs[i]);
    }
    return lp;
  };

  LpProblem initial = build_full();
  IncrementalSimplex engine(initial);
  for (int round = 0; round < 12; ++round) {
    const LpSolution incremental = engine.solve();
    ASSERT_EQ(incremental.status, LpStatus::kOptimal) << "round " << round;
    const LpSolution reference = solve_lp(build_full());
    ASSERT_EQ(reference.status, LpStatus::kOptimal) << "round " << round;
    EXPECT_NEAR(incremental.objective, reference.objective, 1e-7) << "round " << round;
    ASSERT_EQ(incremental.x.size(), columns.size()) << "round " << round;
    // Duals of both solves price every column to within tolerance: reduced
    // costs of an optimal dual vector are <= 0 for a max program.
    for (std::size_t j = 0; j < columns.size(); ++j) {
      double reduced = objective[j];
      for (const LpTerm& t : columns[j]) reduced -= incremental.duals[t.var] * t.coeff;
      EXPECT_LE(reduced, 1e-6) << "round " << round << " column " << j;
    }
    columns.push_back(random_column());
    objective.push_back(rng.uniform_real(0.5, 2.0));
    engine.add_column(objective.back(), columns.back());
    EXPECT_EQ(engine.num_variables(), columns.size());
  }
}

TEST(IncrementalSimplex, RepeatedSolveIsIdempotent) {
  LpProblem lp(Objective::kMaximize);
  const auto x = lp.add_variable(3.0);
  lp.add_constraint({{x, 1.0}}, RowSense::kLessEqual, 4.0);
  IncrementalSimplex engine(lp);
  const LpSolution first = engine.solve();
  const LpSolution second = engine.solve();
  ASSERT_EQ(first.status, LpStatus::kOptimal);
  ASSERT_EQ(second.status, LpStatus::kOptimal);
  EXPECT_DOUBLE_EQ(first.objective, second.objective);
  EXPECT_LE(second.iterations, 1u);  // nothing to do from an optimal basis
}

TEST(IncrementalSimplex, AddColumnMergesDuplicateRowTerms) {
  LpProblem lp(Objective::kMaximize);
  const auto x = lp.add_variable(1.0);
  lp.add_constraint({{x, 1.0}}, RowSense::kLessEqual, 6.0);
  IncrementalSimplex engine(lp);
  ASSERT_EQ(engine.solve().status, LpStatus::kOptimal);
  // {row 0: 1.0} + {row 0: 2.0} must act as a single coefficient 3.0.
  engine.add_column(9.0, {{0, 1.0}, {0, 2.0}});
  const LpSolution s = engine.solve();
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 18.0, 1e-9);  // new column: 6/3 * 9 = 18 beats 6
}

TEST(IncrementalSimplex, InfeasibleModelStaysInfeasibleUntilAColumnFixesIt) {
  // x >= 2 and x <= 1 is infeasible.  Re-solving must not skip phase 1 and
  // "succeed" with artificials still basic; appending a column that makes
  // the model feasible must then solve for real.
  LpProblem lp(Objective::kMaximize);
  const auto x = lp.add_variable(1.0);
  lp.add_constraint({{x, 1.0}}, RowSense::kGreaterEqual, 2.0);
  lp.add_constraint({{x, 1.0}}, RowSense::kLessEqual, 1.0);
  IncrementalSimplex engine(lp);
  EXPECT_EQ(engine.solve().status, LpStatus::kInfeasible);
  EXPECT_EQ(engine.solve().status, LpStatus::kInfeasible);
  engine.add_column(-0.5, {{0, 1.0}});  // row 0 becomes x + y >= 2
  const LpSolution fixed = engine.solve();
  ASSERT_EQ(fixed.status, LpStatus::kOptimal);
  EXPECT_NEAR(fixed.objective, 0.5, 1e-9);  // x = 1, y = 1
}

// ------------------------------------------- dual simplex / row appends ----

TEST(IncrementalSimplex, AppendRowReoptimizesWithDualPivots) {
  // max 3x + 2y, x + y <= 4, x <= 3: optimum (3, 1) -> 11.  Appending
  // y <= 1 keeps it; appending x + 2y <= 3 cuts it to (3, 0) -> 9.
  LpProblem lp(Objective::kMaximize);
  const auto x = lp.add_variable(3.0);
  const auto y = lp.add_variable(2.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, RowSense::kLessEqual, 4.0);
  lp.add_constraint({{x, 1.0}}, RowSense::kLessEqual, 3.0);
  IncrementalSimplex engine(lp);
  ASSERT_EQ(engine.solve().status, LpStatus::kOptimal);

  engine.append_row({{y, 1.0}}, RowSense::kLessEqual, 1.0);
  LpSolution s = engine.reoptimize_dual();
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 11.0, 1e-9);
  EXPECT_EQ(engine.num_rows(), 3u);

  engine.append_row({{x, 1.0}, {y, 2.0}}, RowSense::kLessEqual, 3.0);
  s = engine.reoptimize_dual();
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 9.0, 1e-9);
  ASSERT_EQ(s.duals.size(), 4u);  // appended rows price like built rows
  double dual_objective = 4.0 * s.duals[0] + 3.0 * s.duals[1] + 1.0 * s.duals[2] +
                          3.0 * s.duals[3];
  EXPECT_NEAR(dual_objective, s.objective, 1e-8);
}

TEST(IncrementalSimplex, AppendRowMergesDuplicateTermsEvenThroughZero) {
  // {x: 1} + {x: -1} + {x: 2} must act as a single coefficient 2, even
  // though the running sum passes through exactly zero (regression: the
  // accumulator once emitted such a variable twice, doubling it to 4).
  LpProblem lp(Objective::kMaximize);
  const auto x = lp.add_variable(1.0);
  lp.add_constraint({{x, 1.0}}, RowSense::kLessEqual, 10.0);
  IncrementalSimplex engine(lp);
  ASSERT_EQ(engine.solve().status, LpStatus::kOptimal);
  engine.append_row({{x, 1.0}, {x, -1.0}, {x, 2.0}}, RowSense::kLessEqual, 4.0);
  const LpSolution s = engine.reoptimize_dual();
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);  // 2x <= 4, not 4x <= 4
}

TEST(IncrementalSimplex, AppendRowCanMakeTheModelInfeasible) {
  LpProblem lp(Objective::kMaximize);
  const auto x = lp.add_variable(1.0);
  lp.add_constraint({{x, 1.0}}, RowSense::kLessEqual, 4.0);
  IncrementalSimplex engine(lp);
  ASSERT_EQ(engine.solve().status, LpStatus::kOptimal);
  engine.append_row({{x, 1.0}}, RowSense::kGreaterEqual, 5.0);  // x >= 5 vs x <= 4
  EXPECT_EQ(engine.reoptimize_dual().status, LpStatus::kInfeasible);
}

TEST(IncrementalSimplex, SetRowRhsRangesWithTheDualSimplex) {
  LpProblem lp(Objective::kMaximize);
  const auto x = lp.add_variable(2.0);
  const auto y = lp.add_variable(1.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, RowSense::kLessEqual, 10.0);
  lp.add_constraint({{x, 1.0}}, RowSense::kLessEqual, 6.0);
  IncrementalSimplex engine(lp);
  ASSERT_EQ(engine.solve().status, LpStatus::kOptimal);  // (6, 4) -> 16
  engine.set_row_rhs(1, 2.0);                            // tighten x <= 2
  LpSolution s = engine.reoptimize_dual();
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 12.0, 1e-9);  // (2, 8)
  engine.set_row_rhs(1, 6.0);            // relax back
  s = engine.reoptimize_dual();
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 16.0, 1e-9);
}

TEST(IncrementalSimplex, SetRowRhsBeforeFirstSolveIsHonored) {
  // Regression: a pre-solve rhs change to a negative value leaves the
  // row's slack basic at a negative level, which phase 1 cannot see; the
  // first solve must still run the dual repair and report infeasibility.
  LpProblem lp(Objective::kMaximize);
  const auto x = lp.add_variable(1.0);
  lp.add_constraint({{x, 1.0}}, RowSense::kLessEqual, 4.0);
  IncrementalSimplex engine(lp);
  engine.set_row_rhs(0, -2.0);  // x <= -2 with x >= 0: infeasible
  EXPECT_EQ(engine.solve().status, LpStatus::kInfeasible);

  IncrementalSimplex relaxed(lp);
  relaxed.set_row_rhs(0, 9.0);
  const LpSolution s = relaxed.solve();
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 9.0, 1e-9);

  // Rows without a slack (here: built from a flipped negative-rhs row, so
  // phase 1 sees a basic artificial) reject a pre-solve sign change; after
  // the first solve the same change goes through the dual repair.
  LpProblem flipped(Objective::kMinimize);
  const auto z = flipped.add_variable(1.0);
  flipped.add_constraint({{z, -2.0}}, RowSense::kLessEqual, -2.0);  // z >= 1
  IncrementalSimplex guarded(flipped);
  EXPECT_THROW(guarded.set_row_rhs(0, 4.0), Error);  // internal rhs would flip sign
  ASSERT_EQ(guarded.solve().status, LpStatus::kOptimal);
  guarded.set_row_rhs(0, -4.0);  // z >= 2 now; fine post-solve
  const LpSolution tightened = guarded.reoptimize_dual();
  ASSERT_EQ(tightened.status, LpStatus::kOptimal);
  EXPECT_NEAR(tightened.objective, 2.0, 1e-9);
}

TEST(SparseEngine, UpdateModesAgreeOnRandomPrograms) {
  Rng rng(0xF71);
  for (int trial = 0; trial < 30; ++trial) {
    PairedLp lp = random_paired_lp(rng, 3, 5);
    SimplexOptions ft;
    ft.update_mode = BasisLu::UpdateMode::kForrestTomlin;
    ft.refactor_period = 1 + rng.index(8);
    SimplexOptions pf;
    pf.update_mode = BasisLu::UpdateMode::kProductForm;
    pf.refactor_period = ft.refactor_period;
    const LpSolution a = solve_lp(lp.approx, ft);
    const LpSolution b = solve_lp(lp.approx, pf);
    ASSERT_EQ(a.status, b.status) << "trial " << trial;
    if (a.status == LpStatus::kOptimal) {
      EXPECT_NEAR(a.objective, b.objective, 1e-8) << "trial " << trial;
    }
  }
}

// ------------------------------------ Devex / steepest-edge pricing (PR 5) --

TEST(SparseEngine, DevexWeightResetsAreCorrectAcrossRefactorPeriods) {
  // The Devex reference framework persists across re-solves and is reset by
  // the drift safeguards (overflow, Bland exits, structure changes); a
  // refactorization itself must not change where the solve lands.  Solving
  // the same programs with refactorization after every pivot, every other
  // pivot, and on the default period must agree with the exact optimum --
  // under both pricing rules and both dual row selections.
  Rng rng(0xDE5E);
  for (int trial = 0; trial < 30; ++trial) {
    PairedLp lp = random_paired_lp(rng, 4, 5);
    const auto exact = solve_exact_lp(lp.exact);
    if (exact.status != ExactStatus::kOptimal) continue;
    for (const std::size_t period : {std::size_t{1}, std::size_t{2}, std::size_t{64}}) {
      SimplexOptions options;
      options.pricing = PricingRule::kDevex;
      options.dual_row_rule = DualRowRule::kSteepestEdge;
      options.refactor_period = period;
      const LpSolution s = solve_lp(lp.approx, options);
      ASSERT_EQ(s.status, LpStatus::kOptimal) << "trial " << trial << " period " << period;
      EXPECT_NEAR(s.objective, exact.objective.to_double(), 1e-7)
          << "trial " << trial << " period " << period;
    }
  }
}

TEST(IncrementalSimplex, DevexWeightsSurviveRefactorizationDuringRowRanging) {
  // Standing-master usage under the production pricing: appended rows and
  // rhs ranging interleave dual and primal pivots across many
  // refactorizations (period 1 = refactor on every pivot); the weighted
  // frameworks must keep landing on the same optimum as the default-period
  // engine.
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t vars = 3 + rng.index(4);
    const std::size_t nrows = 3 + rng.index(3);
    LpProblem lp(Objective::kMaximize);
    std::vector<double> c(vars);
    for (std::size_t j = 0; j < vars; ++j) {
      c[j] = rng.uniform_int(1, 9);
      lp.add_variable(c[j]);
    }
    std::vector<std::vector<LpTerm>> rows(nrows);
    std::vector<double> rhs(nrows);
    for (std::size_t i = 0; i < nrows; ++i) {
      for (std::size_t j = 0; j < vars; ++j) {
        const int aij = rng.uniform_int(0, 5);
        if (aij != 0) rows[i].push_back({j, static_cast<double>(aij)});
      }
      rhs[i] = rng.uniform_int(1, 12);
      lp.add_constraint(rows[i], RowSense::kLessEqual, rhs[i]);
    }
    SimplexOptions every_pivot;
    every_pivot.pricing = PricingRule::kDevex;
    every_pivot.dual_row_rule = DualRowRule::kSteepestEdge;
    every_pivot.refactor_period = 1;
    IncrementalSimplex frequent(lp, every_pivot);
    IncrementalSimplex standard(lp);
    if (frequent.solve().status != LpStatus::kOptimal) continue;
    ASSERT_EQ(standard.solve().status, LpStatus::kOptimal) << "trial " << trial;
    for (int change = 0; change < 5; ++change) {
      const std::size_t row = rng.index(nrows);
      const double new_rhs = rng.uniform_int(0, 12);
      frequent.set_row_rhs(row, new_rhs);
      standard.set_row_rhs(row, new_rhs);
      const LpSolution a = frequent.reoptimize_dual();
      const LpSolution b = standard.reoptimize_dual();
      ASSERT_EQ(a.status, b.status) << "trial " << trial << " change " << change;
      if (a.status == LpStatus::kOptimal) {
        EXPECT_NEAR(a.objective, b.objective, 1e-7) << "trial " << trial << " change " << change;
      }
    }
  }
}

// ------------------------------------------- reach-set FTRAN/BTRAN (PR 5) --

namespace reach_test {

/// Owning sparse column set with view access for BasisLu::factorize.
struct Columns {
  std::vector<std::vector<std::uint32_t>> rows;
  std::vector<std::vector<double>> vals;

  void add(std::vector<std::uint32_t> r, std::vector<double> v) {
    rows.push_back(std::move(r));
    vals.push_back(std::move(v));
  }
  std::vector<SparseColumnView> views() const {
    std::vector<SparseColumnView> out(rows.size());
    for (std::size_t k = 0; k < rows.size(); ++k) {
      out[k] = SparseColumnView{rows[k].data(), vals[k].data(), rows[k].size()};
    }
    return out;
  }
};

/// Unit-vector FTRAN/BTRAN through `lu`, returning the number of
/// elimination steps the solve visited (reach under kReachSet, m under
/// kFullSweep) via the stats delta.
std::uint64_t probe_steps(BasisLu& lu, std::size_t m, std::size_t position, bool do_btran,
                          ScatteredVector& x) {
  x.reset(m);
  x.push(static_cast<std::uint32_t>(position), 1.0);
  const LpEngineStats before = lu.stats();
  if (do_btran) {
    lu.btran(x, BasisLu::SolveHint::kSparse);
    return lu.stats().btran_reach_steps - before.btran_reach_steps;
  }
  lu.ftran(x, BasisLu::SolveHint::kSparse);
  return lu.stats().ftran_reach_steps - before.ftran_reach_steps;
}

}  // namespace reach_test

TEST(BasisLuReach, IdentityBasisSolvesTouchOneStep) {
  using reach_test::Columns;
  const std::size_t m = 32;
  Columns cols;
  for (std::size_t k = 0; k < m; ++k) cols.add({static_cast<std::uint32_t>(k)}, {2.0});
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(m, cols.views()));
  ASSERT_EQ(lu.solve_mode(), BasisLu::SolveMode::kReachSet);  // production default
  ScatteredVector x;
  for (const std::size_t pos : {std::size_t{0}, std::size_t{7}, std::size_t{31}}) {
    EXPECT_EQ(reach_test::probe_steps(lu, m, pos, /*do_btran=*/false, x), 1u) << pos;
    EXPECT_DOUBLE_EQ(x.value[pos], 0.5);
    ASSERT_EQ(x.nonzero.size(), 1u);
    EXPECT_EQ(reach_test::probe_steps(lu, m, pos, /*do_btran=*/true, x), 1u) << pos;
    EXPECT_DOUBLE_EQ(x.value[pos], 0.5);
  }
}

TEST(BasisLuReach, BlockDiagonalBasisConfinesTheReachToOneBlock) {
  // Two decoupled lower-bidiagonal blocks: a right-hand side supported in
  // one block must never visit elimination steps of the other, and a unit
  // rhs at a block's *last* position reaches exactly one step.
  using reach_test::Columns;
  const std::size_t block = 6;
  const std::size_t m = 2 * block;
  Columns cols;
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t k = 0; k < block; ++k) {
      const std::uint32_t col = static_cast<std::uint32_t>(b * block + k);
      if (k + 1 < block) {
        cols.add({col, col + 1}, {1.0, -0.5});
      } else {
        cols.add({col}, {1.0});
      }
    }
  }
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(m, cols.views()));
  ScatteredVector x;

  // Head of block 0: the full chain of that block (and only it).
  EXPECT_EQ(reach_test::probe_steps(lu, m, 0, /*do_btran=*/false, x), block);
  for (std::size_t k = 0; k < block; ++k) {
    EXPECT_NEAR(x.value[k], std::pow(0.5, static_cast<double>(k)), 1e-12) << k;
  }
  for (std::size_t k = block; k < m; ++k) EXPECT_EQ(x.value[k], 0.0) << k;

  // Head of block 1: same shape, confined to the second block.
  EXPECT_EQ(reach_test::probe_steps(lu, m, block, /*do_btran=*/false, x), block);
  for (std::size_t k = 0; k < block; ++k) EXPECT_EQ(x.value[k], 0.0) << k;

  // Tail positions depend on no other column: exactly one step each.
  EXPECT_EQ(reach_test::probe_steps(lu, m, block - 1, /*do_btran=*/false, x), 1u);
  EXPECT_EQ(reach_test::probe_steps(lu, m, m - 1, /*do_btran=*/false, x), 1u);

  // BTRAN transposes the dependency: the tail of a block reaches the whole
  // block, its head exactly one step.
  EXPECT_EQ(reach_test::probe_steps(lu, m, block - 1, /*do_btran=*/true, x), block);
  EXPECT_EQ(reach_test::probe_steps(lu, m, 0, /*do_btran=*/true, x), 1u);
}

TEST(BasisLuReach, FullSweepCountsTheWholeDimensionAndMatchesReachValues) {
  // Differential: the same factorization solved in both modes returns
  // bit-identical values, while the stats separate reach from dimension.
  using reach_test::Columns;
  Rng rng(0x2EAC);
  const std::size_t m = 24;
  Columns cols;
  for (std::size_t k = 0; k < m; ++k) {
    std::vector<std::uint32_t> r{static_cast<std::uint32_t>(k)};
    std::vector<double> v{3.0 + rng.uniform_real(0.0, 2.0)};
    for (std::size_t i = 0; i < m; ++i) {
      if (i != k && rng.bernoulli(0.15)) {
        r.push_back(static_cast<std::uint32_t>(i));
        v.push_back(rng.uniform_real(-1.0, 1.0));
      }
    }
    cols.add(std::move(r), std::move(v));
  }
  BasisLu reach, sweep;
  sweep.set_solve_mode(BasisLu::SolveMode::kFullSweep);
  ASSERT_TRUE(reach.factorize(m, cols.views()));
  ASSERT_TRUE(sweep.factorize(m, cols.views()));
  ScatteredVector a, b;
  for (int probe = 0; probe < 12; ++probe) {
    a.reset(m);
    b.reset(m);
    for (std::size_t i = 0; i < m; ++i) {
      if (rng.bernoulli(0.2)) {
        const double value = rng.uniform_real(-2.0, 2.0);
        a.push(static_cast<std::uint32_t>(i), value);
        b.push(static_cast<std::uint32_t>(i), value);
      }
    }
    if (probe % 2 == 0) {
      reach.ftran(a, BasisLu::SolveHint::kSparse);
      sweep.ftran(b);
    } else {
      reach.btran(a, BasisLu::SolveHint::kSparse);
      sweep.btran(b);
    }
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_EQ(a.value[i], b.value[i]) << "probe " << probe << " pos " << i;
    }
  }
  // Full sweep always pays the whole dimension; the reach mode reports at
  // most that (and its budgeted fallbacks count m too, so the fraction is
  // an honest average).
  EXPECT_EQ(sweep.stats().ftran_reach_steps, sweep.stats().ftran_calls * m);
  EXPECT_EQ(sweep.stats().btran_reach_steps, sweep.stats().btran_calls * m);
  EXPECT_LE(reach.stats().ftran_reach_steps, sweep.stats().ftran_reach_steps);
  EXPECT_LE(reach.stats().btran_reach_steps, sweep.stats().btran_reach_steps);
}

TEST(IncrementalSimplex, RejectsBadInput) {
  LpProblem empty_rows(Objective::kMaximize);
  empty_rows.add_variable(1.0);
  EXPECT_THROW(IncrementalSimplex bad(empty_rows), Error);

  LpProblem lp(Objective::kMaximize);
  const auto x = lp.add_variable(1.0);
  lp.add_constraint({{x, 1.0}}, RowSense::kLessEqual, 1.0);
  IncrementalSimplex engine(lp);
  EXPECT_THROW(engine.add_column(1.0, {{7, 1.0}}), Error);  // row out of range
  EXPECT_THROW(engine.append_row({{x, 1.0}}, RowSense::kEqual, 1.0), Error);
  EXPECT_THROW(engine.append_row({{9, 1.0}}, RowSense::kLessEqual, 1.0), Error);
  EXPECT_THROW(engine.set_row_rhs(5, 1.0), Error);  // row out of range
}

}  // namespace
}  // namespace bt
