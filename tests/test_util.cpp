// Unit tests for the utility substrate: deterministic RNG, statistics,
// table rendering, timers, and error handling.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/statistics.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace bt {
namespace {

/// Keep the optimizer from discarding a busy-wait accumulator.
void benchmark_guard(double& value) {
  asm volatile("" : "+m"(value));
}

// ---------------------------------------------------------------- errors --

TEST(Error, RequireThrowsWithLocation) {
  try {
    BT_REQUIRE(false, "boom");
    FAIL() << "BT_REQUIRE(false) did not throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_util.cpp"), std::string::npos);
  }
}

TEST(Error, RequirePassesOnTrue) {
  EXPECT_NO_THROW(BT_REQUIRE(true, "never"));
}

// ------------------------------------------------------------------- rng --

TEST(Rng, SameSeedSameSequence) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000000), b.uniform_int(0, 1000000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform_int(0, 1 << 30) != b.uniform_int(0, 1 << 30)) ++differing;
  }
  EXPECT_GT(differing, 40);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_int(3, 2), Error);
}

TEST(Rng, UniformRealInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW(rng.bernoulli(1.5), Error);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.gaussian(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, TruncatedGaussianRespectsFloor) {
  Rng rng(19);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_GE(rng.truncated_gaussian(1.0, 5.0, 0.5), 0.5);
  }
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(23);
  const auto p = rng.permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, IndexBounds) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(7), 7u);
  EXPECT_THROW(rng.index(0), Error);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  // The child stream should not replay the parent's outputs.
  Rng parent_copy(31);
  (void)parent_copy.split();
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (child.uniform_int(0, 1 << 30) == parent.uniform_int(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 5);
}

// ------------------------------------------------------------- statistics --

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample stddev of this classic data set: sqrt(32/7).
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summarize, MatchesRunningStats) {
  std::vector<double> values{1.0, 2.0, 3.0, 4.0, 10.0};
  const Summary s = summarize(values);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
}

TEST(Summarize, EmptyIsAllZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Quantile, InterpolatesLinearly) {
  std::vector<double> values{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.25), 2.5);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW(quantile({}, 0.5), Error);
  EXPECT_THROW(quantile({1.0}, 1.5), Error);
}

// ------------------------------------------------------------------ table --

TEST(TablePrinter, AlignedRendering) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.render(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TablePrinter, CsvRendering) {
  TablePrinter t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.render_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinter, RejectsArityMismatch) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TablePrinter, Formatting) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::pct(0.7), "70%");
  EXPECT_EQ(TablePrinter::pct(0.705, 1), "70.5%");
}

// ------------------------------------------------------------------ timer --

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  // Busy-wait a tiny amount; just check monotonicity and non-negativity.
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<double>(i);
  benchmark_guard(sink);
  const double first = t.seconds();
  EXPECT_GE(first, 0.0);
  for (int i = 0; i < 100000; ++i) sink += static_cast<double>(i);
  benchmark_guard(sink);
  EXPECT_GE(t.seconds(), first);
  t.reset();
  EXPECT_LT(t.seconds(), first + 1.0);
}

}  // namespace
}  // namespace bt
