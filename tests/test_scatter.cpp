// Tests for the scatter/gather extension: closed-form tree periods, the
// scatter LP optimum, and their relationships to broadcast.

#include <gtest/gtest.h>

#include <tuple>

#include "core/heuristics.hpp"
#include "core/scatter.hpp"
#include "core/throughput.hpp"
#include "platform/random_generator.hpp"
#include "ssb/ssb_scatter.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bt {
namespace {

Platform make_platform(std::size_t n,
                       const std::vector<std::tuple<NodeId, NodeId, double>>& arcs) {
  Digraph g(n);
  std::vector<LinkCost> costs;
  for (const auto& [a, b, t] : arcs) {
    g.add_edge(a, b);
    costs.push_back({0.0, t});
  }
  return Platform(std::move(g), std::move(costs), 1.0, 0);
}

TEST(Scatter, SubtreeSizes) {
  // 0 -> 1 -> {2, 3}
  const Platform p = make_platform(4, {{0, 1, 1.0}, {1, 2, 1.0}, {1, 3, 1.0}});
  BroadcastTree tree;
  tree.root = 0;
  tree.edges = {0, 1, 2};
  const auto size = subtree_sizes(p, tree);
  EXPECT_EQ(size[0], 4u);
  EXPECT_EQ(size[1], 3u);
  EXPECT_EQ(size[2], 1u);
  EXPECT_EQ(size[3], 1u);
}

TEST(Scatter, ChainPeriodWeightsBySubtree) {
  // Chain 0 ->(0.5) 1 ->(0.25) 2: arc 0->1 carries 2 slices per round.
  const Platform p = make_platform(3, {{0, 1, 0.5}, {1, 2, 0.25}});
  BroadcastTree tree;
  tree.root = 0;
  tree.edges = {0, 1};
  EXPECT_NEAR(scatter_period(p, tree), 1.0, 1e-12);  // 2 * 0.5 dominates
  EXPECT_NEAR(scatter_throughput(p, tree), 1.0, 1e-12);
}

TEST(Scatter, StarPeriodIsSumOfArcs) {
  const Platform p = make_platform(3, {{0, 1, 0.5}, {0, 2, 0.25}});
  BroadcastTree tree;
  tree.root = 0;
  tree.edges = {0, 1};
  // Leaves: each arc carries one slice; emission sum = 0.75.
  EXPECT_NEAR(scatter_period(p, tree), 0.75, 1e-12);
}

TEST(Scatter, ScatterNeverFasterThanBroadcastOnATree) {
  // Broadcast sends one slice per round over each arc; scatter sends
  // |subtree| >= 1: scatter period dominates the broadcast period.
  Rng rng(111);
  for (int trial = 0; trial < 8; ++trial) {
    RandomPlatformConfig config;
    config.num_nodes = 15;
    config.density = 0.15;
    Rng prng = rng.split();
    const Platform p = generate_random_platform(config, prng);
    const BroadcastTree tree = grow_tree(p);
    EXPECT_GE(scatter_period(p, tree), one_port_period(p, tree) - 1e-12);
  }
}

TEST(Gather, MirrorsScatterOnSymmetricLinks) {
  // Bidirectional equal-cost links: gather over the reverse arcs has the
  // same period as scatter.
  Digraph g(4);
  std::vector<LinkCost> costs;
  auto link = [&](NodeId a, NodeId b, double t) {
    g.add_bidirectional(a, b);
    costs.push_back({0.0, t});
    costs.push_back({0.0, t});
  };
  link(0, 1, 0.3);
  link(1, 2, 0.2);
  link(1, 3, 0.4);
  const Platform p(std::move(g), std::move(costs), 1.0, 0);
  BroadcastTree tree;
  tree.root = 0;
  tree.edges = {0, 2, 4};  // forward arcs of each link
  EXPECT_NEAR(gather_period(p, tree), scatter_period(p, tree), 1e-12);
}

TEST(Gather, RequiresReverseArcs) {
  const Platform p = make_platform(2, {{0, 1, 1.0}});
  BroadcastTree tree;
  tree.root = 0;
  tree.edges = {0};
  EXPECT_THROW(gather_period(p, tree), Error);
}

TEST(ScatterLp, SingleArcIsLinkLimited) {
  const Platform p = make_platform(2, {{0, 1, 0.5}});
  const auto s = solve_scatter_optimal(p);
  ASSERT_TRUE(s.solved);
  EXPECT_NEAR(s.throughput, 2.0, 1e-7);
}

TEST(ScatterLp, StarIsPortLimited) {
  // 3 leaves over 0.25s arcs: the source port fits 4 slices/s total, and a
  // scatter round needs 3 distinct slices: TP = (1/0.25) / 3.
  const Platform p = make_platform(4, {{0, 1, 0.25}, {0, 2, 0.25}, {0, 3, 0.25}});
  const auto s = solve_scatter_optimal(p);
  EXPECT_NEAR(s.throughput, 4.0 / 3.0, 1e-7);
}

TEST(ScatterLp, ChainMatchesClosedForm) {
  const Platform p = make_platform(3, {{0, 1, 0.5}, {1, 2, 0.25}});
  const auto s = solve_scatter_optimal(p);
  BroadcastTree tree;
  tree.root = 0;
  tree.edges = {0, 1};
  // On a chain the only routing is the chain itself.
  EXPECT_NEAR(s.throughput, scatter_throughput(p, tree), 1e-7);
}

TEST(ScatterLp, BoundsEveryTreeScatter) {
  Rng rng(222);
  for (int trial = 0; trial < 6; ++trial) {
    RandomPlatformConfig config;
    config.num_nodes = 10;
    config.density = 0.25;
    Rng prng = rng.split();
    const Platform p = generate_random_platform(config, prng);
    const auto s = solve_scatter_optimal(p);
    for (const BroadcastTree& tree :
         {grow_tree(p), prune_platform_degree(p), binomial_tree(p)}) {
      EXPECT_LE(scatter_throughput(p, tree), s.throughput + 1e-6) << "trial " << trial;
    }
  }
}

TEST(ScatterLp, ScatterOptimumBelowBroadcastOptimumScale) {
  // Scatter moves p-1 distinct slices through the source port per round, so
  // its optimum is at most the broadcast optimum (which ships 1 slice per
  // round along each tree) and at least optimum/(p-1)-ish on stars.
  const Platform p = make_platform(4, {{0, 1, 0.25}, {0, 2, 0.25}, {0, 3, 0.25}});
  const auto scatter = solve_scatter_optimal(p);
  // Broadcast on the star: source out-sum 0.75 -> TP 4/3 as well (every arc
  // must carry every slice).  They coincide here.
  EXPECT_NEAR(scatter.throughput, 4.0 / 3.0, 1e-7);
}

}  // namespace
}  // namespace bt
