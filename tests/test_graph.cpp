// Unit and property tests for the graph substrate: digraph structure,
// union-find, reachability/SCC, Dijkstra, and arborescence validation.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <string>

#include "graph/arborescence.hpp"
#include "graph/digraph.hpp"
#include "graph/min_arborescence.hpp"
#include "graph/reachability.hpp"
#include "graph/shortest_paths.hpp"
#include "graph/union_find.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bt {
namespace {

Digraph line_graph(std::size_t n) {
  Digraph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) g.add_edge(u, u + 1);
  return g;
}

// ---------------------------------------------------------------- digraph --

TEST(Digraph, BasicConstruction) {
  Digraph g(3);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 0u);
  const EdgeId e = g.add_edge(0, 1);
  EXPECT_EQ(g.from(e), 0u);
  EXPECT_EQ(g.to(e), 1u);
  EXPECT_EQ(g.out_edges(0).size(), 1u);
  EXPECT_EQ(g.in_edges(1).size(), 1u);
  EXPECT_TRUE(g.out_edges(1).empty());
}

TEST(Digraph, AddNodeGrows) {
  Digraph g;
  EXPECT_EQ(g.add_node(), 0u);
  EXPECT_EQ(g.add_node(), 1u);
  EXPECT_EQ(g.num_nodes(), 2u);
}

TEST(Digraph, BidirectionalAddsTwoArcs) {
  Digraph g(2);
  const auto [fwd, bwd] = g.add_bidirectional(0, 1);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.from(fwd), 0u);
  EXPECT_EQ(g.from(bwd), 1u);
}

TEST(Digraph, RejectsSelfLoopAndBadIds) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(0, 0), Error);
  EXPECT_THROW(g.add_edge(0, 5), Error);
  EXPECT_THROW(g.arc(0), Error);
}

TEST(Digraph, FindEdge) {
  Digraph g(3);
  const EdgeId e = g.add_edge(0, 2);
  EXPECT_EQ(g.find_edge(0, 2), e);
  EXPECT_EQ(g.find_edge(2, 0), Digraph::npos);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 2));
}

TEST(Digraph, DensityOfCompleteDigraph) {
  Digraph g(4);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      if (u != v) g.add_edge(u, v);
    }
  }
  EXPECT_DOUBLE_EQ(g.density(), 1.0);
}

// ------------------------------------------------------------- union-find --

TEST(UnionFind, BasicMerging) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(0, 2));
  EXPECT_EQ(uf.num_sets(), 4u);
  EXPECT_EQ(uf.set_size(1), 2u);
}

TEST(UnionFind, ChainsCollapse) {
  UnionFind uf(100);
  for (std::size_t i = 0; i + 1 < 100; ++i) uf.unite(i, i + 1);
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_EQ(uf.set_size(0), 100u);
  EXPECT_TRUE(uf.same(0, 99));
}

TEST(UnionFind, OutOfRangeThrows) {
  UnionFind uf(3);
  EXPECT_THROW(uf.find(3), Error);
}

// ------------------------------------------------------------ reachability --

TEST(Reachability, LineGraphForwardOnly) {
  const Digraph g = line_graph(4);
  EXPECT_TRUE(all_reachable_from(g, 0));
  EXPECT_FALSE(all_reachable_from(g, 1));  // node 0 unreachable from 1
  const auto seen = reachable_from(g, 2);
  EXPECT_FALSE(seen[0]);
  EXPECT_FALSE(seen[1]);
  EXPECT_TRUE(seen[2]);
  EXPECT_TRUE(seen[3]);
}

TEST(Reachability, MaskDisablesArcs) {
  const Digraph g = line_graph(3);
  EdgeMask mask(g.num_edges(), 1);
  mask[0] = 0;  // cut 0 -> 1
  EXPECT_FALSE(all_reachable_from(g, 0, mask));
  EXPECT_TRUE(all_reachable_from(g, 0));  // empty mask = everything active
}

TEST(Reachability, RemovalProbe) {
  Digraph g(3);
  const EdgeId a = g.add_edge(0, 1);
  const EdgeId b = g.add_edge(0, 1);  // parallel arc
  g.add_edge(1, 2);
  EdgeMask all(g.num_edges(), 1);
  EXPECT_TRUE(all_reachable_without(g, 0, all, a));   // parallel arc survives
  EXPECT_TRUE(all_reachable_without(g, 0, all, b));
  EXPECT_FALSE(all_reachable_without(g, 0, all, 2));  // bridge to node 2
}

TEST(Scc, CycleIsOneComponent) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(Scc, LineIsAllSingletons) {
  const Digraph g = line_graph(4);
  std::size_t count = 0;
  const auto comp = strongly_connected_components(g, &count);
  EXPECT_EQ(count, 4u);
  std::set<std::size_t> distinct(comp.begin(), comp.end());
  EXPECT_EQ(distinct.size(), 4u);
  EXPECT_FALSE(is_strongly_connected(g));
}

TEST(Scc, TwoCyclesBridged) {
  Digraph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 2);
  g.add_edge(1, 2);  // bridge, one direction only
  g.add_edge(5, 0);  // lone tail
  std::size_t count = 0;
  const auto comp = strongly_connected_components(g, &count);
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[5], comp[0]);
  // Reverse topological numbering: the sink component (the 2-3-4 cycle)
  // must be numbered before the 0-1 component that feeds it.
  EXPECT_LT(comp[2], comp[0]);
}

TEST(Scc, EmptyAndSingleton) {
  Digraph empty;
  EXPECT_TRUE(is_strongly_connected(empty));
  Digraph one(1);
  EXPECT_TRUE(is_strongly_connected(one));
}

// ----------------------------------------------------------------- dijkstra --

TEST(Dijkstra, PicksCheaperIndirectPath) {
  Digraph g(3);
  const EdgeId direct = g.add_edge(0, 2);
  const EdgeId hop1 = g.add_edge(0, 1);
  const EdgeId hop2 = g.add_edge(1, 2);
  std::vector<double> w{10.0, 3.0, 3.0};
  const auto t = dijkstra(g, 0, w);
  EXPECT_DOUBLE_EQ(t.dist[2], 6.0);
  const auto path = t.path_to(g, 2);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], hop1);
  EXPECT_EQ(path[1], hop2);
  (void)direct;
}

TEST(Dijkstra, UnreachableIsInfinite) {
  Digraph g(3);
  g.add_edge(0, 1);
  const auto t = dijkstra(g, 0, {1.0});
  EXPECT_TRUE(t.reachable(1));
  EXPECT_FALSE(t.reachable(2));
  EXPECT_THROW(t.path_to(g, 2), Error);
}

TEST(Dijkstra, RejectsNegativeWeights) {
  Digraph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW(dijkstra(g, 0, {-1.0}), Error);
}

TEST(Dijkstra, ZeroWeightsAllowed) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto t = dijkstra(g, 0, {0.0, 0.0});
  EXPECT_DOUBLE_EQ(t.dist[2], 0.0);
}

// Property: on random graphs, Dijkstra distances satisfy the triangle
// inequality over every arc (no relaxable arc remains).
TEST(Dijkstra, PropertyNoRelaxableArc) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.index(20);
    Digraph g(n);
    std::vector<double> w;
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        if (u != v && rng.bernoulli(0.3)) {
          g.add_edge(u, v);
          w.push_back(rng.uniform_real(0.1, 10.0));
        }
      }
    }
    const auto t = dijkstra(g, 0, w);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (t.reachable(g.from(e))) {
        EXPECT_LE(t.dist[g.to(e)], t.dist[g.from(e)] + w[e] + 1e-12);
      }
    }
  }
}

TEST(AllPairs, MatchesSingleSource) {
  Digraph g(4);
  std::vector<double> w;
  g.add_edge(0, 1); w.push_back(1.0);
  g.add_edge(1, 2); w.push_back(2.0);
  g.add_edge(2, 3); w.push_back(3.0);
  g.add_edge(0, 3); w.push_back(10.0);
  const auto all = all_pairs_shortest_paths(g, w);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_DOUBLE_EQ(all[0].dist[3], 6.0);
  EXPECT_DOUBLE_EQ(all[1].dist[3], 5.0);
  EXPECT_FALSE(all[3].reachable(0));
}

// ------------------------------------------------------------ arborescence --

TEST(Arborescence, ValidLine) {
  const Digraph g = line_graph(4);
  std::vector<EdgeId> edges{0, 1, 2};
  EXPECT_TRUE(is_spanning_arborescence(g, 0, edges));
  const auto parent = parent_edge_array(g, 0, edges);
  EXPECT_EQ(parent[0], Digraph::npos);
  EXPECT_EQ(parent[3], 2u);
  const auto children = children_lists(g, parent);
  EXPECT_EQ(children[0].size(), 1u);
  EXPECT_TRUE(children[3].empty());
  const auto depth = node_depths(g, 0, parent);
  EXPECT_EQ(depth[3], 3u);
  const auto order = bfs_order(g, 0, parent);
  EXPECT_EQ(order.front(), 0u);
  EXPECT_EQ(order.size(), 4u);
}

TEST(Arborescence, RejectsWrongEdgeCount) {
  const Digraph g = line_graph(3);
  std::string why;
  EXPECT_FALSE(is_spanning_arborescence(g, 0, {0}, &why));
  EXPECT_NE(why.find("n-1"), std::string::npos);
}

TEST(Arborescence, RejectsDoubleParent) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  std::string why;
  EXPECT_FALSE(is_spanning_arborescence(g, 0, {1, 2}, &why));  // 2 has two parents...
  // arcs 1 (0->2) and 2 (1->2) both enter node 2.
  EXPECT_NE(why.find("two tree parents"), std::string::npos);
}

TEST(Arborescence, RejectsArcIntoRoot) {
  Digraph g(2);
  g.add_edge(1, 0);
  std::string why;
  EXPECT_FALSE(is_spanning_arborescence(g, 0, {0}, &why));
  EXPECT_NE(why.find("root"), std::string::npos);
}

TEST(Arborescence, RejectsCycleComponent) {
  Digraph g(4);
  g.add_edge(0, 1);  // 0
  g.add_edge(2, 3);  // 1
  g.add_edge(3, 2);  // 2  (cycle 2<->3, disconnected from the root side)
  EXPECT_FALSE(is_spanning_arborescence(g, 0, {0, 1, 2}));
}

TEST(Arborescence, RootOutOfRange) {
  const Digraph g = line_graph(2);
  EXPECT_FALSE(is_spanning_arborescence(g, 7, {0}));
}

TEST(Arborescence, SingleNodeTrivial) {
  Digraph g(1);
  EXPECT_TRUE(is_spanning_arborescence(g, 0, {}));
}

// -------------------------------------------------------- min arborescence --

TEST(MinArborescence, PicksCheapestParents) {
  Digraph g(3);
  g.add_edge(0, 1);  // 0: w=5
  g.add_edge(0, 2);  // 1: w=1
  g.add_edge(2, 1);  // 2: w=1
  const auto r = min_arborescence(g, 0, {5.0, 1.0, 1.0});
  ASSERT_TRUE(r.found);
  EXPECT_DOUBLE_EQ(r.weight, 2.0);
  std::vector<EdgeId> edges = r.edges;
  std::sort(edges.begin(), edges.end());
  EXPECT_EQ(edges, (std::vector<EdgeId>{1, 2}));
}

TEST(MinArborescence, ResolvesCycleOfCheapArcs) {
  // Greedy best-in picks the 2-cycle 1<->2; the algorithm must break it and
  // enter the pair from the root.
  Digraph g(3);
  g.add_edge(1, 2);  // 0: w=1
  g.add_edge(2, 1);  // 1: w=1
  g.add_edge(0, 1);  // 2: w=10
  g.add_edge(0, 2);  // 3: w=12
  const auto r = min_arborescence(g, 0, {1.0, 1.0, 10.0, 12.0});
  ASSERT_TRUE(r.found);
  // Enter via 0->1 (10) then 1->2 (1) = 11, cheaper than 0->2 (12) + 2->1 (1).
  EXPECT_DOUBLE_EQ(r.weight, 11.0);
  std::vector<EdgeId> edges = r.edges;
  std::sort(edges.begin(), edges.end());
  EXPECT_EQ(edges, (std::vector<EdgeId>{0, 2}));
}

TEST(MinArborescence, UnreachableNodeFails) {
  Digraph g(3);
  g.add_edge(0, 1);
  EXPECT_FALSE(min_arborescence(g, 0, {1.0}).found);
}

TEST(MinArborescence, ZeroAndNegativeWeights) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  const auto r = min_arborescence(g, 0, {0.0, -2.0, 0.5});
  ASSERT_TRUE(r.found);
  EXPECT_DOUBLE_EQ(r.weight, -2.0);
}

TEST(MinArborescence, SingleNodeTrivial) {
  Digraph g(1);
  const auto r = min_arborescence(g, 0, {});
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(r.edges.empty());
}

/// Brute force: enumerate all parent assignments on small graphs.
double brute_force_min_arb(const Digraph& g, NodeId root, const std::vector<double>& w) {
  const std::size_t n = g.num_nodes();
  std::vector<std::vector<EdgeId>> choices(n);
  for (NodeId v = 0; v < n; ++v) {
    if (v == root) continue;
    choices[v] = g.in_edges(v);
    if (choices[v].empty()) return std::numeric_limits<double>::infinity();
  }
  double best = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> pick(n, 0);
  while (true) {
    std::vector<EdgeId> edges;
    for (NodeId v = 0; v < n; ++v) {
      if (v != root) edges.push_back(choices[v][pick[v]]);
    }
    if (is_spanning_arborescence(g, root, edges)) {
      double total = 0.0;
      for (EdgeId e : edges) total += w[e];
      best = std::min(best, total);
    }
    // Odometer increment.
    NodeId v = 0;
    for (; v < n; ++v) {
      if (v == root) continue;
      if (++pick[v] < choices[v].size()) break;
      pick[v] = 0;
    }
    if (v == n) break;
  }
  return best;
}

TEST(MinArborescence, PropertyMatchesBruteForce) {
  Rng rng(777);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 2 + rng.index(4);  // up to 5 nodes
    Digraph g(n);
    std::vector<double> w;
    for (NodeId a = 0; a < n; ++a) {
      for (NodeId b = 0; b < n; ++b) {
        if (a != b && rng.bernoulli(0.6)) {
          g.add_edge(a, b);
          w.push_back(rng.uniform_real(0.0, 9.0));
        }
      }
    }
    const auto r = min_arborescence(g, 0, w);
    const double reference = brute_force_min_arb(g, 0, w);
    if (!r.found) {
      EXPECT_TRUE(std::isinf(reference)) << "trial " << trial;
      continue;
    }
    EXPECT_TRUE(is_spanning_arborescence(g, 0, r.edges)) << "trial " << trial;
    EXPECT_NEAR(r.weight, reference, 1e-9) << "trial " << trial;
  }
}

// Property: a random spanning arborescence built by random attachment always
// validates, and dropping any arc invalidates it.
TEST(Arborescence, PropertyRandomTreesValidate) {
  Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.index(30);
    Digraph g(n);
    std::vector<EdgeId> edges;
    for (NodeId v = 1; v < n; ++v) {
      const NodeId parent = static_cast<NodeId>(rng.index(v));
      edges.push_back(g.add_edge(parent, v));
    }
    EXPECT_TRUE(is_spanning_arborescence(g, 0, edges));
    auto broken = edges;
    broken.pop_back();
    EXPECT_FALSE(is_spanning_arborescence(g, 0, broken));
  }
}

}  // namespace
}  // namespace bt
