// Tests for the steady-state broadcast optimum solvers: the direct
// transcription of program (2) and the cutting-plane solver, cross-validated
// against each other and against hand-solvable topologies.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "flow/maxflow.hpp"
#include "graph/arborescence.hpp"
#include "platform/platform.hpp"
#include "platform/random_generator.hpp"
#include "platform/tiers_generator.hpp"
#include "ssb/ssb_column_generation.hpp"
#include "ssb/ssb_cutting_plane.hpp"
#include "ssb/ssb_direct.hpp"
#include "util/rng.hpp"

namespace bt {
namespace {

/// Star: source 0 linked to k leaves, every arc taking `t` seconds.  One-port
/// emission at the source binds: TP* = 1 / (k * t)... but with multiple trees
/// the source still serializes all sends, and every leaf must receive TP
/// slices per unit time, each arriving over its single incoming arc.  The
/// source port constraint gives sum_e n_e * t <= 1 with n_e >= TP, so
/// TP* = 1/(k*t).
Platform star_platform(std::size_t leaves, double t) {
  Digraph g(leaves + 1);
  std::vector<LinkCost> costs;
  for (NodeId v = 1; v <= leaves; ++v) {
    g.add_edge(0, v);
    costs.push_back({0.0, t});
  }
  return Platform(std::move(g), std::move(costs), 1.0, 0);
}

/// Chain 0 -> 1 -> ... -> n-1 with per-arc times `t[i]`.
Platform chain_platform(const std::vector<double>& t) {
  Digraph g(t.size() + 1);
  std::vector<LinkCost> costs;
  for (std::size_t i = 0; i < t.size(); ++i) {
    g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
    costs.push_back({0.0, t[i]});
  }
  return Platform(std::move(g), std::move(costs), 1.0, 0);
}

TEST(SsbDirect, StarThroughput) {
  const Platform p = star_platform(4, 0.5);
  const auto s = solve_ssb_direct(p);
  ASSERT_TRUE(s.solved);
  EXPECT_NEAR(s.throughput, 1.0 / (4 * 0.5), 1e-7);
}

TEST(SsbDirect, ChainThroughputBoundByslowestLink) {
  const Platform p = chain_platform({0.2, 0.5, 0.25});
  const auto s = solve_ssb_direct(p);
  ASSERT_TRUE(s.solved);
  // Each node forwards on a single outgoing arc; slowest arc (0.5 s) binds.
  EXPECT_NEAR(s.throughput, 2.0, 1e-7);
}

TEST(SsbDirect, EdgeLoadsMatchThroughputOnChain) {
  const Platform p = chain_platform({0.2, 0.5});
  const auto s = solve_ssb_direct(p);
  ASSERT_TRUE(s.solved);
  // Every arc of a chain carries every slice: n_e = TP on all arcs.
  for (EdgeId e = 0; e < p.num_edges(); ++e) {
    EXPECT_NEAR(s.edge_load[e], s.throughput, 1e-6);
  }
}

TEST(SsbCuttingPlane, StarThroughput) {
  const Platform p = star_platform(5, 0.25);
  const auto s = solve_ssb_cutting_plane(p);
  ASSERT_TRUE(s.solved);
  EXPECT_NEAR(s.throughput, 1.0 / (5 * 0.25), 1e-7);
}

TEST(SsbCuttingPlane, ChainThroughput) {
  const Platform p = chain_platform({0.1, 0.4, 0.2, 0.4});
  const auto s = solve_ssb_cutting_plane(p);
  ASSERT_TRUE(s.solved);
  EXPECT_NEAR(s.throughput, 2.5, 1e-7);
}

TEST(SsbCuttingPlane, TwoParallelPathsBeatOneTree) {
  // Source with two disjoint length-2 paths to the far node plus direct arcs
  // to the relays: the MTP optimum can use both paths for different slices.
  //    0 -> 1 -> 3,  0 -> 2 -> 3, all arcs 1s.
  Digraph g(4);
  std::vector<LinkCost> costs;
  auto add = [&](NodeId a, NodeId b) {
    g.add_edge(a, b);
    costs.push_back({0.0, 1.0});
  };
  add(0, 1);
  add(0, 2);
  add(1, 3);
  add(2, 3);
  const Platform p(std::move(g), std::move(costs), 1.0, 0);
  const auto s = solve_ssb_cutting_plane(p);
  ASSERT_TRUE(s.solved);
  // The source must send every slice to both 1 and 2 (their only in-arcs),
  // so its out-port binds: 2 sends of 1s per slice -> TP* = 1/2.  Node 3 can
  // receive alternating halves... its in-port must carry TP over two arcs
  // with combined occupation <= 1: n(1->3) + n(2->3) >= TP and each slice of
  // load costs 1s on the port, so TP <= 1/2 is binding -> TP* = 1/2 exactly.
  EXPECT_NEAR(s.throughput, 0.5, 1e-7);
}

TEST(SsbAgreement, DirectAndCuttingPlaneAgreeOnRandomPlatforms) {
  Rng rng(2024);
  for (int trial = 0; trial < 12; ++trial) {
    RandomPlatformConfig config;
    config.num_nodes = 5 + rng.index(4);  // 5..8 nodes keeps the direct LP small
    config.density = 0.3;
    Rng prng = rng.split();
    const Platform p = generate_random_platform(config, prng);
    const auto direct = solve_ssb_direct(p);
    const auto cut = solve_ssb_cutting_plane(p);
    ASSERT_TRUE(direct.solved);
    ASSERT_TRUE(cut.solved);
    EXPECT_NEAR(direct.throughput, cut.throughput,
                1e-5 * std::max(1.0, direct.throughput))
        << "trial " << trial;
  }
}

TEST(SsbCuttingPlane, LoadsRespectPortConstraints) {
  Rng rng(31337);
  RandomPlatformConfig config;
  config.num_nodes = 25;
  config.density = 0.12;
  const Platform p = generate_random_platform(config, rng);
  const auto s = solve_ssb_cutting_plane(p);
  ASSERT_TRUE(s.solved);
  const Digraph& g = p.graph();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    double out = 0.0, in = 0.0;
    for (EdgeId e : g.out_edges(u)) out += s.edge_load[e] * p.edge_time(e);
    for (EdgeId e : g.in_edges(u)) in += s.edge_load[e] * p.edge_time(e);
    EXPECT_LE(out, 1.0 + 1e-6);
    EXPECT_LE(in, 1.0 + 1e-6);
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) EXPECT_GE(s.edge_load[e], -1e-9);
}

TEST(SsbCuttingPlane, ThroughputIsMinCutUnderLoads) {
  // Certificate check: at the optimum, min over destinations of
  // maxflow(source -> w) under capacities n_e equals TP*.
  Rng rng(555);
  RandomPlatformConfig config;
  config.num_nodes = 15;
  config.density = 0.15;
  const Platform p = generate_random_platform(config, rng);
  const auto s = solve_ssb_cutting_plane(p);
  ASSERT_TRUE(s.solved);

  double min_flow = std::numeric_limits<double>::infinity();
  for (NodeId w = 0; w < p.num_nodes(); ++w) {
    if (w == p.source()) continue;
    min_flow = std::min(min_flow, max_flow(p.graph(), p.source(), w, s.edge_load).value);
  }
  EXPECT_NEAR(min_flow, s.throughput, 1e-6);
}

TEST(SsbCuttingPlane, WorksOnTiersPlatforms) {
  Rng rng(777);
  const Platform p = generate_tiers_platform(tiers_config_30(), rng);
  const auto s = solve_ssb_cutting_plane(p);
  ASSERT_TRUE(s.solved);
  EXPECT_GT(s.throughput, 0.0);
  EXPECT_GT(s.cuts_generated, 0u);
}

// ----------------------------------------------------- column generation --

TEST(SsbColumnGen, StarThroughput) {
  const Platform p = star_platform(5, 0.25);
  const auto s = solve_ssb_column_generation(p);
  ASSERT_TRUE(s.solved);
  EXPECT_NEAR(s.throughput, 1.0 / (5 * 0.25), 1e-7);
  // A star has exactly one spanning tree; the packing must use it alone.
  ASSERT_EQ(s.trees.size(), 1u);
  EXPECT_NEAR(s.trees[0].rate, s.throughput, 1e-9);
}

TEST(SsbColumnGen, ChainThroughput) {
  const Platform p = chain_platform({0.1, 0.4, 0.2, 0.4});
  const auto s = solve_ssb_column_generation(p);
  ASSERT_TRUE(s.solved);
  EXPECT_NEAR(s.throughput, 2.5, 1e-7);
}

TEST(SsbColumnGen, TwoParallelPaths) {
  Digraph g(4);
  std::vector<LinkCost> costs;
  auto add = [&](NodeId a, NodeId b) {
    g.add_edge(a, b);
    costs.push_back({0.0, 1.0});
  };
  add(0, 1);
  add(0, 2);
  add(1, 3);
  add(2, 3);
  const Platform p(std::move(g), std::move(costs), 1.0, 0);
  const auto s = solve_ssb_column_generation(p);
  ASSERT_TRUE(s.solved);
  EXPECT_NEAR(s.throughput, 0.5, 1e-7);
}

TEST(SsbColumnGen, AgreesWithDirectOnRandomPlatforms) {
  Rng rng(512);
  for (int trial = 0; trial < 12; ++trial) {
    RandomPlatformConfig config;
    config.num_nodes = 5 + rng.index(4);
    config.density = 0.3;
    Rng prng = rng.split();
    const Platform p = generate_random_platform(config, prng);
    const auto direct = solve_ssb_direct(p);
    const auto cg = solve_ssb_column_generation(p);
    EXPECT_NEAR(cg.throughput, direct.throughput,
                1e-5 * std::max(1.0, direct.throughput))
        << "trial " << trial;
  }
}

TEST(SsbColumnGen, AgreesWithCuttingPlaneAtScale) {
  Rng rng(513);
  RandomPlatformConfig config;
  config.num_nodes = 30;
  config.density = 0.08;
  const Platform p = generate_random_platform(config, rng);
  const auto cg = solve_ssb_column_generation(p);
  const auto cut = solve_ssb_cutting_plane(p);
  EXPECT_NEAR(cg.throughput, cut.throughput, 1e-5 * std::max(1.0, cg.throughput));
}

TEST(SsbColumnGen, PackingIsAValidSchedule) {
  // The headline feature: the returned trees form an explicit MTP schedule.
  Rng rng(514);
  RandomPlatformConfig config;
  config.num_nodes = 20;
  config.density = 0.16;
  const Platform p = generate_random_platform(config, rng);
  const auto s = solve_ssb_column_generation(p);
  ASSERT_TRUE(s.solved);
  ASSERT_FALSE(s.trees.empty());

  double total_rate = 0.0;
  std::vector<double> load(p.num_edges(), 0.0);
  for (const PackedTree& tree : s.trees) {
    EXPECT_GT(tree.rate, 0.0);
    EXPECT_TRUE(is_spanning_arborescence(p.graph(), p.source(), tree.edges));
    total_rate += tree.rate;
    for (EdgeId e : tree.edges) load[e] += tree.rate;
  }
  // Rates sum to the throughput; per-arc loads match edge_load.
  EXPECT_NEAR(total_rate, s.throughput, 1e-7);
  for (EdgeId e = 0; e < p.num_edges(); ++e) {
    EXPECT_NEAR(load[e], s.edge_load[e], 1e-7);
  }
  // And the schedule respects every port constraint.
  for (NodeId u = 0; u < p.num_nodes(); ++u) {
    double out = 0.0, in = 0.0;
    for (EdgeId e : p.graph().out_edges(u)) out += load[e] * p.edge_time(e);
    for (EdgeId e : p.graph().in_edges(u)) in += load[e] * p.edge_time(e);
    EXPECT_LE(out, 1.0 + 1e-6);
    EXPECT_LE(in, 1.0 + 1e-6);
  }
}

TEST(SsbColumnGen, SingleTreeOnTreePlatform) {
  // On a platform that *is* a tree (plus back arcs), the only spanning
  // arborescence is the tree itself: TP* = its one-port throughput.
  const Platform p = chain_platform({0.5, 0.25});
  const auto s = solve_ssb_column_generation(p);
  ASSERT_EQ(s.trees.size(), 1u);
  EXPECT_NEAR(s.throughput, 2.0, 1e-9);
}

TEST(SsbColumnGen, HandlesPathologicalCuttingPlaneInstance) {
  // The random 40-node / 0.12 instance on which the cutting-plane master
  // stalls for minutes (massively degenerate optimal face) -- column
  // generation must solve it quickly and exactly.
  Rng rng(40 * 31 + 12);
  RandomPlatformConfig config;
  config.num_nodes = 40;
  config.density = 0.12;
  const Platform p = generate_random_platform(config, rng);
  const auto s = solve_ssb_column_generation(p);
  ASSERT_TRUE(s.solved);
  EXPECT_NEAR(s.throughput, 66.0189, 0.01);
}

TEST(SsbColumnGen, WorksOnTiersPlatforms) {
  Rng rng(779);
  const Platform p = generate_tiers_platform(tiers_config_65(), rng);
  const auto s = solve_ssb(p);
  ASSERT_TRUE(s.solved);
  EXPECT_GT(s.throughput, 0.0);
}

TEST(SsbColumnGen, DeterministicAcrossRuns) {
  Rng rng(890);
  RandomPlatformConfig config;
  config.num_nodes = 25;
  config.density = 0.12;
  const Platform p = generate_random_platform(config, rng);
  const auto a = solve_ssb_column_generation(p);
  const auto b = solve_ssb_column_generation(p);
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.edge_load, b.edge_load);
}

TEST(SsbCuttingPlane, DeterministicAcrossRuns) {
  Rng rng(888);
  RandomPlatformConfig config;
  config.num_nodes = 20;
  config.density = 0.1;
  const Platform p = generate_random_platform(config, rng);
  const auto a = solve_ssb_cutting_plane(p);
  const auto b = solve_ssb_cutting_plane(p);
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.edge_load, b.edge_load);
}

TEST(SsbCuttingPlane, LoadPenaltyTamesThePathologicalInstance) {
  // With the anti-degeneracy load penalty (default on) the 40-node instance
  // that used to need hundreds of separation rounds converges in ~10 and
  // agrees with column generation.
  Rng rng(40 * 31 + 12);
  RandomPlatformConfig config;
  config.num_nodes = 40;
  config.density = 0.12;
  const Platform p = generate_random_platform(config, rng);
  const auto cut = solve_ssb_cutting_plane(p);
  ASSERT_TRUE(cut.solved);
  EXPECT_LE(cut.separation_rounds, 40u);
  const auto cg = solve_ssb_column_generation(p);
  EXPECT_NEAR(cut.throughput, cg.throughput, 1e-5 * std::max(1.0, cg.throughput));
}

TEST(SsbColumnGen, IncrementalAndRebuildMastersAgree) {
  // The incremental master (standing IncrementalSimplex, appended columns)
  // and the legacy rebuild-every-round master must find the same optimum --
  // with either LP engine under the rebuild path.
  Rng rng(611);
  for (int trial = 0; trial < 6; ++trial) {
    RandomPlatformConfig config;
    config.num_nodes = 10 + 5 * static_cast<std::size_t>(trial);
    config.density = 0.15;
    Rng prng = rng.split();
    const Platform p = generate_random_platform(config, prng);

    const auto incremental = solve_ssb_column_generation(p);

    SsbColumnGenOptions rebuild_sparse;
    rebuild_sparse.incremental_master = false;
    const auto legacy_sparse = solve_ssb_column_generation(p, rebuild_sparse);

    SsbColumnGenOptions rebuild_dense;
    rebuild_dense.incremental_master = false;
    rebuild_dense.master_engine = LpEngine::kDenseReference;
    const auto legacy_dense = solve_ssb_column_generation(p, rebuild_dense);

    const double scale = std::max(1.0, incremental.throughput);
    EXPECT_NEAR(incremental.throughput, legacy_sparse.throughput, 1e-6 * scale)
        << "trial " << trial;
    EXPECT_NEAR(incremental.throughput, legacy_dense.throughput, 1e-6 * scale)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace bt
