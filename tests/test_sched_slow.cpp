// Slow-labeled schedule synthesis cases: full-pipeline replay at the
// solvers' 100+-node ceiling, excluded from the default `ctest -LE slow`
// lane and run by the Release bench-smoke CI job (see CMakeLists.txt).

#include <gtest/gtest.h>

#include <algorithm>

#include "platform/random_generator.hpp"
#include "sched/orchestrate.hpp"
#include "sched/tree_decomposition.hpp"
#include "sched/validate.hpp"
#include "sim/schedule_replay.hpp"
#include "ssb/ssb_column_generation.hpp"
#include "ssb/ssb_cutting_plane.hpp"
#include "util/rng.hpp"

namespace bt {
namespace {

Platform instance(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  RandomPlatformConfig config;
  config.num_nodes = n;
  config.density = 0.12;
  return generate_random_platform(config, rng);
}

TEST(SchedSlow, ReplayConvergesAt120NodesBidirectional) {
  const Platform platform = instance(120, 120 * 7919);
  const SsbPackingSolution solution = solve_ssb_column_generation(platform);
  const PeriodicSchedule schedule = synthesize_schedule(platform, solution);
  EXPECT_LE(schedule.rounds.size(), platform.num_edges() + 2 * platform.num_nodes() + 8);

  ScheduleCheckOptions options;
  options.reference = &solution;
  const ScheduleCheck check = check_schedule(platform, schedule, options);
  ASSERT_TRUE(check.ok) << (check.violations.empty() ? "" : check.violations.front());

  const ReplayResult replay = replay_schedule(platform, schedule);
  EXPECT_GE(replay.steady_throughput, 0.999 * solution.throughput);
}

TEST(SchedSlow, DecomposerHandlesCuttingPlaneLoadsAtEighty) {
  const Platform platform = instance(80, 80 * 104729);
  const SsbSolution solution = solve_ssb_cutting_plane(platform);
  ASSERT_TRUE(solution.tree_columns.empty());

  const TreeDecomposition decomposition = decompose_edge_load(platform, solution);
  EXPECT_LE(decomposition.trees.size(), platform.num_edges());
  EXPECT_NEAR(decomposition.throughput, solution.throughput,
              2e-6 * std::max(1.0, solution.throughput));

  const PeriodicSchedule schedule =
      orchestrate_one_port(platform, decomposition.trees);
  ScheduleCheckOptions options;
  options.reference = &solution;
  ASSERT_TRUE(check_schedule(platform, schedule, options).ok);
  const ReplayResult replay = replay_schedule(platform, schedule);
  EXPECT_GE(replay.steady_throughput, 0.999 * solution.throughput);
}

TEST(SchedSlow, UnidirectionalReplayAtOneHundred) {
  const Platform platform = instance(100, 100 * 31337);
  SsbColumnGenOptions solver;
  solver.port_model = PortModel::kUnidirectional;
  const SsbPackingSolution solution = solve_ssb_column_generation(platform, solver);
  OrchestrationOptions orchestration;
  orchestration.port_model = PortModel::kUnidirectional;
  const PeriodicSchedule schedule = synthesize_schedule(platform, solution, orchestration);

  ScheduleCheckOptions options;
  options.reference = &solution;
  ASSERT_TRUE(check_schedule(platform, schedule, options).ok);
  EXPECT_LE(schedule.throughput(), solution.throughput * (1.0 + 1e-9));
  const ReplayResult replay = replay_schedule(platform, schedule);
  EXPECT_GE(replay.steady_throughput, 0.999 * schedule.throughput());
}

}  // namespace
}  // namespace bt
