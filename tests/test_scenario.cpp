// The live-churn scenario subsystem: seeded timelines, the interruptible
// replayer, the service subscription hook, and the engine's bitwise
// determinism contract (ISSUE 9).
//
// The determinism matrix is the headline: a full scenario -- timeline
// generation, service re-plans, offline reference solves, period replay --
// must produce field-wise memcmp-identical payloads at pool widths 1, 2
// and 4 and across repeated same-seed runs.  Everything the solver stack
// promised in test_parallel_determinism.cpp has to survive being composed
// behind a PlannerService and a replay loop.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "experiments/churn_eval.hpp"
#include "platform/random_generator.hpp"
#include "scenario/churn_timeline.hpp"
#include "scenario/event_stream.hpp"
#include "scenario/scenario_engine.hpp"
#include "sched/validate.hpp"
#include "service/planner_service.hpp"
#include "sim/replay_session.hpp"
#include "ssb/ssb_cutting_plane.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace bt {
namespace {

Platform test_platform(std::size_t nodes, std::uint64_t seed, double density = 0.3) {
  RandomPlatformConfig config;
  config.num_nodes = nodes;
  config.density = density;
  Rng rng(seed);
  return generate_random_platform(config, rng);
}

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

ChurnTimelineConfig small_timeline() {
  ChurnTimelineConfig config;
  config.num_periods = 12;
  config.events_per_period = 0.75;
  config.seed = 2026;
  return config;
}

// ---- LinkChurnSampler ------------------------------------------------------

TEST(LinkChurnSampler, LifoRestoresCarryPristineCosts) {
  const Platform platform = test_platform(10, 5);
  LinkChurnSampler sampler(platform, {});
  Rng rng(7);
  const auto d1 = sampler.sample_degrade(rng);
  const auto d2 = sampler.sample_degrade(rng);
  ASSERT_TRUE(sampler.has_outstanding());
  EXPECT_EQ(sampler.num_outstanding(), 2u);
  EXPECT_GE(d1.factor, 1.2);
  EXPECT_LE(d1.factor, 2.0);

  const auto r2 = sampler.pop_restore();
  EXPECT_EQ(r2.edge, d2.edge);
  EXPECT_EQ(r2.cost.alpha, platform.link_cost(d2.edge).alpha);
  EXPECT_EQ(r2.cost.beta, platform.link_cost(d2.edge).beta);
  const auto r1 = sampler.pop_restore();
  EXPECT_EQ(r1.edge, d1.edge);
  EXPECT_FALSE(sampler.has_outstanding());
}

TEST(LinkChurnSampler, RemovedArcsAreNeverProposedNorRestored) {
  const Platform platform = test_platform(10, 5);
  LinkChurnSampler sampler(platform, {});
  Rng rng(11);
  const auto d = sampler.sample_degrade(rng);
  sampler.mark_removed(d.edge);
  EXPECT_FALSE(sampler.has_outstanding());  // its only degradation is dead
  for (int i = 0; i < 64; ++i) {
    EXPECT_NE(sampler.sample_degrade(rng).edge, d.edge);
  }
}

// ---- timeline generation ---------------------------------------------------

TEST(ChurnTimeline, SameSeedPinsTheTimeline) {
  const Platform platform = test_platform(16, 21);
  const ChurnTimelineConfig config = small_timeline();
  const ChurnTimeline a = make_churn_timeline(platform, config);
  const ChurnTimeline b = make_churn_timeline(platform, config);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_FALSE(a.events.empty());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].period, b.events[i].period);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].edge, b.events[i].edge);
    EXPECT_TRUE(same_bits(a.events[i].factor, b.events[i].factor));
    EXPECT_EQ(a.events[i].in_links.size(), b.events[i].in_links.size());
  }
  EXPECT_EQ(a.final_platform.num_nodes(), b.final_platform.num_nodes());
  EXPECT_EQ(a.final_platform.num_edges(), b.final_platform.num_edges());
}

TEST(ChurnTimeline, FailuresKeepTheBroadcastFeasible) {
  const Platform platform = test_platform(16, 21);
  ChurnTimelineConfig config = small_timeline();
  config.failure_fraction = 0.5;  // force plenty of failures
  config.num_periods = 24;
  const ChurnTimeline timeline = make_churn_timeline(platform, config);

  // Replay the removals in order; each must have been connectivity-safe at
  // the moment it was generated, so the *final* removed set still reaches
  // every node of the final platform.
  std::size_t failures = 0;
  for (const ChurnEvent& event : timeline.events) {
    if (event.kind == ChurnEventKind::kLinkFailure) ++failures;
  }
  ASSERT_GT(failures, 0u);
  std::vector<char> all_but_final = timeline.final_removed;
  EdgeId last_failure = 0;
  for (auto it = timeline.events.rbegin(); it != timeline.events.rend(); ++it) {
    if (it->kind == ChurnEventKind::kLinkFailure) {
      last_failure = it->edge;
      break;
    }
  }
  all_but_final[last_failure] = 0;
  EXPECT_TRUE(removal_keeps_broadcast(timeline.final_platform, timeline.final_platform.source(),
                                      all_but_final, last_failure));
}

TEST(ChurnTimeline, JoinsGrowThePlatformAndKeepArcIdsStable) {
  const Platform platform = test_platform(16, 33);
  ChurnTimelineConfig config = small_timeline();
  config.join_fraction = 0.6;
  config.failure_fraction = 0.0;
  const ChurnTimeline timeline = make_churn_timeline(platform, config);
  std::size_t joins = 0;
  for (const ChurnEvent& event : timeline.events) {
    if (event.kind == ChurnEventKind::kNodeJoin) {
      ++joins;
      EXPECT_FALSE(event.in_links.empty());
      EXPECT_EQ(event.in_links.size(), event.out_links.size());
    }
  }
  ASSERT_GT(joins, 0u);
  EXPECT_EQ(timeline.final_platform.num_nodes(), platform.num_nodes() + joins);
  // Old arcs kept their ids (grow_platform appends).
  for (EdgeId e = 0; e < platform.num_edges(); ++e) {
    EXPECT_EQ(timeline.final_platform.graph().from(e), platform.graph().from(e));
    EXPECT_EQ(timeline.final_platform.graph().to(e), platform.graph().to(e));
  }
}

TEST(ChurnTimeline, LeavesShrinkThePlatformAndStayReproducible) {
  const Platform platform = test_platform(16, 44);
  ChurnTimelineConfig config = small_timeline();
  config.num_periods = 24;
  config.leave_fraction = 0.4;
  config.failure_fraction = 0.05;
  config.recover_fraction = 0.2;
  const ChurnTimeline timeline = make_churn_timeline(platform, config);

  std::size_t joins = 0, leaves = 0;
  for (const ChurnEvent& event : timeline.events) {
    if (event.kind == ChurnEventKind::kNodeJoin) ++joins;
    if (event.kind == ChurnEventKind::kNodeLeave) ++leaves;
  }
  ASSERT_GT(leaves, 0u);
  // Node ids compact at each leave, so the count is the only stable check.
  EXPECT_EQ(timeline.final_platform.num_nodes(), platform.num_nodes() + joins - leaves);
  EXPECT_EQ(timeline.final_removed.size(), timeline.final_platform.num_edges());
  // The final platform still broadcasts from its (possibly remapped) source.
  EXPECT_GT(solve_ssb_cutting_plane(timeline.final_platform).throughput, 0.0);

  const ChurnTimeline again = make_churn_timeline(platform, config);
  ASSERT_EQ(again.events.size(), timeline.events.size());
  for (std::size_t i = 0; i < timeline.events.size(); ++i) {
    EXPECT_EQ(again.events[i].kind, timeline.events[i].kind);
    EXPECT_EQ(again.events[i].node, timeline.events[i].node);
  }
}

// ---- ReplaySession ---------------------------------------------------------

TEST(ReplaySession, WarmHandoffDeliversFullRateImmediately) {
  const Platform platform = test_platform(12, 9);
  PlannerService service(platform);
  service.plan(0);
  auto schedule = service.schedule(0);

  ReplaySession cold(platform, schedule);
  const PeriodDelivery first_cold = cold.run_period();
  ReplaySession warm(platform, schedule);
  warm.install(platform, schedule, /*warm_handoff=*/true);
  const PeriodDelivery first_warm = warm.run_period();

  EXPECT_NEAR(first_warm.min_delivered, schedule->slices_per_period,
              1e-9 * schedule->slices_per_period);
  EXPECT_NEAR(first_warm.lost_slices, 0.0, 1e-9);
  // The cold pipeline cannot beat the warm one in its first period.
  EXPECT_LE(first_cold.delivered_total, first_warm.delivered_total + 1e-12);
}

TEST(ReplaySession, StaleScheduleIsCappedByLiveArcTimes) {
  const Platform platform = test_platform(12, 9);
  PlannerService service(platform);
  service.plan(0);
  auto schedule = service.schedule(0);

  ReplaySession session(platform, schedule);
  session.install(platform, schedule, /*warm_handoff=*/true);
  // Consistent platform: the 1e-9 guard keeps planned amounts exact.
  const PeriodDelivery before = session.run_period();
  EXPECT_NEAR(before.lost_slices, 0.0, 1e-9);

  // Slow down an arc the schedule actually uses, without re-planning.
  ASSERT_FALSE(schedule->trees.empty());
  ASSERT_FALSE(schedule->trees[0].edges.empty());
  const EdgeId victim = schedule->trees[0].edges.front();
  Platform degraded = platform;
  LinkCost cost = degraded.link_cost(victim);
  cost.alpha *= 8.0;
  cost.beta *= 8.0;
  degraded.set_link_cost(victim, cost);
  session.set_platform(degraded);
  const PeriodDelivery capped = session.run_period();
  EXPECT_GT(capped.lost_slices, 0.0);
  EXPECT_LT(capped.min_delivered, before.min_delivered);

  // Remove it outright: the subtree behind it starves for that tree.
  std::vector<char> removed(platform.num_edges(), 0);
  removed[victim] = 1;
  session.set_platform(degraded, removed);
  const PeriodDelivery dead = session.run_period();
  EXPECT_GT(dead.lost_slices, capped.lost_slices * (1.0 - 1e-9));
}

// ---- service subscription hook ---------------------------------------------

TEST(PlannerServiceSubscription, PollNeverSolvesAndTracksBuilds) {
  const Platform platform = test_platform(12, 13);
  PlannerService service(platform);
  ScheduleSubscription sub;
  sub.source = 0;

  // Nothing built yet: poll stays empty (and must not trigger a solve).
  EXPECT_EQ(service.poll_schedule(sub), nullptr);
  EXPECT_EQ(service.stats().solves, 0u);

  auto built = service.schedule(0);
  auto polled = service.poll_schedule(sub);
  ASSERT_NE(polled, nullptr);
  EXPECT_EQ(polled.get(), built.get());
  // Cursor advanced: same build is not handed out twice.
  EXPECT_EQ(service.poll_schedule(sub), nullptr);

  // A mutation alone is not a new build.
  service.scale_link_time(0, 1.5);
  EXPECT_EQ(service.poll_schedule(sub), nullptr);

  auto rebuilt = service.schedule(0);
  auto repolled = service.poll_schedule(sub);
  ASSERT_NE(repolled, nullptr);
  EXPECT_EQ(repolled.get(), rebuilt.get());
  EXPECT_NE(repolled.get(), built.get());
}

// ---- the engine ------------------------------------------------------------

TEST(ChurnScenario, QuietTimelineDeliversTheOfflineOptimum) {
  const Platform platform = test_platform(14, 17);
  ChurnScenarioOptions options;
  options.timeline = small_timeline();
  options.timeline.events_per_period = 0.0;  // no churn at all
  const ChurnScenarioResult result = run_churn_scenario(platform, options);
  ASSERT_EQ(result.periods.size(), options.timeline.num_periods);
  EXPECT_EQ(result.num_events, 0u);
  EXPECT_EQ(result.num_swaps, 0u);
  EXPECT_NEAR(result.lost_total, 0.0, 1e-9);
  // The installed schedule realizes TP* (schedule synthesis rounds the
  // certificate), so delivered work tracks the offline capacity tightly.
  EXPECT_GT(result.availability, 0.99);
  EXPECT_LT(result.availability, 1.05);
}

TEST(ChurnScenario, ChurnLosesBytesButRePlansRecover) {
  const Platform platform = test_platform(14, 17);
  ChurnScenarioOptions options;
  options.timeline = small_timeline();
  options.timeline.num_periods = 16;
  const ChurnScenarioResult result = run_churn_scenario(platform, options);
  EXPECT_GT(result.num_events, 0u);
  EXPECT_GT(result.num_swaps, 0u);
  EXPECT_GT(result.availability, 0.5);
  EXPECT_LT(result.availability, 1.05);
  ASSERT_EQ(result.replan_latency_ms.size(), result.num_events);
  // Every record's offline reference is a real solve.
  for (const ChurnPeriodRecord& record : result.periods) {
    EXPECT_GT(record.offline_throughput, 0.0);
    EXPECT_GT(record.period_seconds, 0.0);
  }
}

TEST(ChurnScenario, PayloadBitwiseIdenticalAcrossPoolWidthsAndRuns) {
  const Platform platform = test_platform(14, 17);
  ChurnScenarioOptions options;
  options.timeline = small_timeline();
  options.timeline.num_periods = 10;

  ThreadPool serial(1);
  options.pool = &serial;
  const ChurnScenarioResult reference = run_churn_scenario(platform, options);
  ASSERT_FALSE(reference.periods.empty());

  // Same seed, same width: the repeat run must agree bit for bit.
  const ChurnScenarioResult repeat = run_churn_scenario(platform, options);
  EXPECT_TRUE(payload_bitwise_equal(reference, repeat));

  for (std::size_t threads : {2u, 4u}) {
    ThreadPool pool(threads);
    options.pool = &pool;
    const ChurnScenarioResult wide = run_churn_scenario(platform, options);
    EXPECT_TRUE(payload_bitwise_equal(reference, wide)) << threads << " threads";
  }
}

TEST(ChurnScenario, NodeLeavesAreSurvivedAndAccounted) {
  const Platform platform = test_platform(14, 29);
  ChurnScenarioOptions options;
  options.timeline = small_timeline();
  options.timeline.num_periods = 20;
  options.timeline.leave_fraction = 0.4;
  const ChurnScenarioResult result = run_churn_scenario(platform, options);
  ASSERT_GT(result.num_leaves, 0u);
  EXPECT_GT(result.availability, 0.5);
  EXPECT_LT(result.availability, 1.05);
  // Every period was answered by some rung of the ladder.
  EXPECT_EQ(result.periods_exact + result.periods_rebuild + result.periods_heuristic,
            result.periods.size());
  // Events apply after a boundary's poll, so a period with events runs the
  // pre-event build (stale by one at most); quiet periods are never stale.
  EXPECT_LE(result.stale_periods, result.num_events);
  std::uint64_t stale = 0;
  for (const ChurnPeriodRecord& record : result.periods) stale += record.stale;
  EXPECT_EQ(stale, result.stale_periods);
}

TEST(ChurnScenario, AsyncModeServesStaleSchedulesWithoutLosingWork) {
  const Platform platform = test_platform(14, 17);
  ChurnScenarioOptions options;
  options.timeline = small_timeline();
  options.timeline.num_periods = 16;
  options.service.async_replan = true;
  const ChurnScenarioResult result = run_churn_scenario(platform, options);
  EXPECT_GT(result.num_events, 0u);
  EXPECT_GT(result.num_swaps, 0u);
  EXPECT_GT(result.availability, 0.5);
  EXPECT_EQ(result.replans_failed, 0u);
  // Mutation batches coalesce into background jobs whose latencies the
  // engine collects at drain points.
  EXPECT_FALSE(result.replan_latency_ms.empty());
}

TEST(ChurnScenario, AsyncFaultedPayloadBitwiseAcrossPoolWidthsAndRuns) {
  const Platform platform = test_platform(14, 17);
  ChurnScenarioOptions options;
  options.timeline = small_timeline();
  options.timeline.num_periods = 12;
  options.timeline.leave_fraction = 0.2;
  options.service.async_replan = true;
  options.service.ladder.pivot_budget = 100000;
  const FaultPlan plan = FaultPlan::parse("separation@1,refactor@2,stall@4,evict@1");

  ThreadPool serial(1);
  options.pool = &serial;
  FaultInjector reference_faults(plan);
  options.service.faults = &reference_faults;
  const ChurnScenarioResult reference = run_churn_scenario(platform, options);
  ASSERT_FALSE(reference.periods.empty());
  EXPECT_GT(reference_faults.total_fired(), 0u);

  // A same-seed repeat with a fresh injector must agree bit for bit --
  // including the per-period tier and staleness columns.
  FaultInjector repeat_faults(plan);
  options.service.faults = &repeat_faults;
  const ChurnScenarioResult repeat = run_churn_scenario(platform, options);
  EXPECT_TRUE(payload_bitwise_equal(reference, repeat));
  EXPECT_EQ(repeat_faults.total_fired(), reference_faults.total_fired());

  for (std::size_t threads : {2u, 4u}) {
    ThreadPool pool(threads);
    FaultInjector faults(plan);
    options.pool = &pool;
    options.service.faults = &faults;
    const ChurnScenarioResult wide = run_churn_scenario(platform, options);
    EXPECT_TRUE(payload_bitwise_equal(reference, wide)) << threads << " threads";
    EXPECT_EQ(faults.total_fired(), reference_faults.total_fired()) << threads << " threads";
  }
}

TEST(ChurnSweep, RunsEveryCellInDeterministicOrder) {
  ChurnSweepConfig config;
  config.sizes = {12};
  config.churn_rates = {0.0, 0.5};
  config.num_periods = 6;
  const auto records = run_churn_sweep(config);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].nodes, 12u);
  EXPECT_TRUE(same_bits(records[0].churn_rate, 0.0));
  EXPECT_TRUE(same_bits(records[1].churn_rate, 0.5));
  EXPECT_GT(records[0].result.availability, 0.99);
  EXPECT_FALSE(describe(records[1]).empty());
}

}  // namespace
}  // namespace bt
