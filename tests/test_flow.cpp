// Tests for the Dinic max-flow solver, including a property test against a
// brute-force minimum-cut enumerator on random small graphs.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "flow/maxflow.hpp"
#include "graph/digraph.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bt {
namespace {

TEST(MaxFlow, SingleArc) {
  Digraph g(2);
  g.add_edge(0, 1);
  const auto r = max_flow(g, 0, 1, {5.0});
  EXPECT_DOUBLE_EQ(r.value, 5.0);
  EXPECT_DOUBLE_EQ(r.flow[0], 5.0);
  ASSERT_EQ(r.min_cut_edges.size(), 1u);
  EXPECT_EQ(r.min_cut_edges[0], 0u);
}

TEST(MaxFlow, ClassicDiamond) {
  // Diamond 0 -> {1,2} -> 3 with the chord 1 -> 2.
  // Capacities: 0-1:3, 0-2:2, 1-3:2, 2-3:3, 1-2:1.
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.add_edge(1, 2);
  const auto r = max_flow(g, 0, 3, {3.0, 2.0, 2.0, 3.0, 1.0});
  EXPECT_DOUBLE_EQ(r.value, 5.0);
}

TEST(MaxFlow, DisconnectedSinkIsZero) {
  Digraph g(3);
  g.add_edge(0, 1);
  const auto r = max_flow(g, 0, 2, {4.0});
  EXPECT_DOUBLE_EQ(r.value, 0.0);
  EXPECT_TRUE(r.min_cut_edges.empty());
  EXPECT_TRUE(r.min_cut_side[0]);
  EXPECT_FALSE(r.min_cut_side[2]);
}

TEST(MaxFlow, AntiparallelArcs) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);  // antiparallel pair
  g.add_edge(1, 2);
  const auto r = max_flow(g, 0, 2, {2.0, 9.0, 1.5});
  EXPECT_DOUBLE_EQ(r.value, 1.5);
}

TEST(MaxFlow, ZeroCapacityArcsIgnored) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto r = max_flow(g, 0, 2, {0.0, 3.0});
  EXPECT_DOUBLE_EQ(r.value, 0.0);
}

TEST(MaxFlow, FlowConservationHolds) {
  Rng rng(77);
  Digraph g(8);
  std::vector<double> cap;
  for (NodeId u = 0; u < 8; ++u) {
    for (NodeId v = 0; v < 8; ++v) {
      if (u != v && rng.bernoulli(0.4)) {
        g.add_edge(u, v);
        cap.push_back(rng.uniform_real(0.0, 4.0));
      }
    }
  }
  const auto r = max_flow(g, 0, 7, cap);
  for (NodeId v = 1; v < 7; ++v) {
    double in = 0.0, out = 0.0;
    for (EdgeId e : g.in_edges(v)) in += r.flow[e];
    for (EdgeId e : g.out_edges(v)) out += r.flow[e];
    EXPECT_NEAR(in, out, 1e-9) << "node " << v;
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_GE(r.flow[e], -1e-9);
    EXPECT_LE(r.flow[e], cap[e] + 1e-9);
  }
}

TEST(MaxFlow, MinCutCapacityEqualsFlowValue) {
  Rng rng(88);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 4 + rng.index(6);
    Digraph g(n);
    std::vector<double> cap;
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        if (u != v && rng.bernoulli(0.5)) {
          g.add_edge(u, v);
          cap.push_back(rng.uniform_real(0.1, 5.0));
        }
      }
    }
    const auto r = max_flow(g, 0, static_cast<NodeId>(n - 1), cap);
    double cut_capacity = 0.0;
    for (EdgeId e : r.min_cut_edges) cut_capacity += cap[e];
    EXPECT_NEAR(r.value, cut_capacity, 1e-8) << "trial " << trial;
    EXPECT_TRUE(r.min_cut_side[0]);
    EXPECT_FALSE(r.min_cut_side[n - 1]);
  }
}

/// Brute-force min cut: enumerate all 2^(n-2) source/sink side assignments.
double brute_force_min_cut(const Digraph& g, NodeId s, NodeId t,
                           const std::vector<double>& cap) {
  const std::size_t n = g.num_nodes();
  double best = std::numeric_limits<double>::infinity();
  std::vector<NodeId> movable;
  for (NodeId v = 0; v < n; ++v) {
    if (v != s && v != t) movable.push_back(v);
  }
  for (std::size_t bits = 0; bits < (std::size_t{1} << movable.size()); ++bits) {
    std::vector<char> side(n, 0);
    side[s] = 1;
    for (std::size_t i = 0; i < movable.size(); ++i) {
      side[movable[i]] = (bits >> i) & 1u;
    }
    double capacity = 0.0;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (side[g.from(e)] && !side[g.to(e)]) capacity += cap[e];
    }
    best = std::min(best, capacity);
  }
  return best;
}

TEST(MaxFlow, PropertyMatchesBruteForceMinCut) {
  Rng rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 3 + rng.index(6);  // up to 8 nodes
    Digraph g(n);
    std::vector<double> cap;
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        if (u != v && rng.bernoulli(0.45)) {
          g.add_edge(u, v);
          cap.push_back(rng.uniform_real(0.0, 3.0));
        }
      }
    }
    const NodeId sink = static_cast<NodeId>(n - 1);
    const auto r = max_flow(g, 0, sink, cap);
    const double reference = brute_force_min_cut(g, 0, sink, cap);
    EXPECT_NEAR(r.value, reference, 1e-8) << "trial " << trial;
  }
}

TEST(MaxFlow, SolverReuseAcrossCalls) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  MaxFlowSolver solver(g);
  EXPECT_DOUBLE_EQ(solver.solve(0, 2, {2.0, 2.0}).value, 2.0);
  EXPECT_DOUBLE_EQ(solver.solve(0, 2, {5.0, 1.0}).value, 1.0);
  EXPECT_DOUBLE_EQ(solver.solve(0, 1, {3.0, 0.0}).value, 3.0);  // new sink
}

TEST(MaxFlow, RepeatedCapacityVectorMatchesFreshSolver) {
  // The separation-oracle pattern: one capacity vector, many sinks.  The
  // touched-arc restore fast path must agree with a cold solver per sink,
  // including after the capacities change and repeat again.
  Rng rng(4711);
  const std::size_t n = 9;
  Digraph g(n);
  std::vector<double> cap_a, cap_b;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v && rng.bernoulli(0.4)) {
        g.add_edge(u, v);
        cap_a.push_back(rng.uniform_real(0.0, 4.0));
        cap_b.push_back(rng.uniform_real(0.0, 4.0));
      }
    }
  }
  MaxFlowSolver reused(g);
  for (const auto* cap : {&cap_a, &cap_b, &cap_a}) {
    for (NodeId sink = 1; sink < n; ++sink) {
      const double expected = max_flow(g, 0, sink, *cap).value;
      EXPECT_NEAR(reused.solve(0, sink, *cap).value, expected, 1e-9) << "sink " << sink;
    }
  }
}

TEST(MaxFlow, ResultReuseOverloadMatchesReturningSolve) {
  // The scratch-result overload recycles the output vectors across calls;
  // every field must still match the allocating overload exactly, even when
  // the recycled result carries a *larger* previous answer.
  Rng rng(2026);
  const std::size_t n = 8;
  Digraph g(n);
  std::vector<double> cap;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v && rng.bernoulli(0.5)) {
        g.add_edge(u, v);
        cap.push_back(rng.uniform_real(0.0, 4.0));
      }
    }
  }
  MaxFlowSolver fresh(g);
  MaxFlowSolver recycled(g);
  MaxFlowResult scratch;
  scratch.flow.assign(1000, -1.0);  // stale junk the overload must replace
  scratch.min_cut_edges.assign(1000, 0);
  scratch.min_cut_side.assign(1000, 7);
  for (NodeId sink = 1; sink < n; ++sink) {
    const MaxFlowResult expected = fresh.solve(0, sink, cap);
    recycled.solve(0, sink, cap, scratch);
    EXPECT_DOUBLE_EQ(scratch.value, expected.value) << "sink " << sink;
    EXPECT_EQ(scratch.flow, expected.flow) << "sink " << sink;
    EXPECT_EQ(scratch.min_cut_edges, expected.min_cut_edges) << "sink " << sink;
    EXPECT_EQ(scratch.min_cut_side, expected.min_cut_side) << "sink " << sink;
  }
}

TEST(MaxFlow, DeepChainDoesNotOverflowTheStack) {
  // A 60k-node chain: the recursive augmenting walk used to risk stack
  // overflow here; the iterative blocking flow must just work.
  const std::size_t n = 60000;
  Digraph g(n);
  std::vector<double> cap(n - 1);
  for (NodeId v = 0; v + 1 < n; ++v) {
    g.add_edge(v, v + 1);
    cap[v] = 2.0 + static_cast<double>(v % 7);
  }
  const auto r = max_flow(g, 0, static_cast<NodeId>(n - 1), cap);
  EXPECT_DOUBLE_EQ(r.value, 2.0);  // bottleneck: the v % 7 == 0 links
}

TEST(MaxFlow, RejectsBadInput) {
  Digraph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW(max_flow(g, 0, 0, {1.0}), Error);
  EXPECT_THROW(max_flow(g, 0, 5, {1.0}), Error);
  EXPECT_THROW(max_flow(g, 0, 1, {1.0, 2.0}), Error);
  EXPECT_THROW(max_flow(g, 0, 1, {-1.0}), Error);
}

}  // namespace
}  // namespace bt
