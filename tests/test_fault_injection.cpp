// Tests for the deterministic fault-injection harness
// (util/fault_injection.hpp) and the survival chains it exercises: every
// instrumented fault kind must be absorbed by the degradation ladder
// (ssb/planner_session.hpp solve_laddered, service/planner_service.hpp)
// with the recovered answer agreeing with a fault-free solve, the session
// usable afterwards, and faulted recovery bitwise-identical across worker
// pool widths.  Runs in the ThreadSanitizer CI lane alongside the service
// suites.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "platform/random_generator.hpp"
#include "service/planner_service.hpp"
#include "ssb/planner_session.hpp"
#include "ssb/ssb_cutting_plane.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace bt {
namespace {

Platform random_platform(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  RandomPlatformConfig config;
  config.num_nodes = n;
  config.density = n <= 12 ? 0.3 : 0.18;
  return generate_random_platform(config, rng);
}

double rel_diff(double a, double b) {
  return std::abs(a - b) / std::max({1.0, std::abs(a), std::abs(b)});
}

bool bits_equal(double a, double b) {
  std::uint64_t x = 0, y = 0;
  std::memcpy(&x, &a, sizeof(x));
  std::memcpy(&y, &b, sizeof(y));
  return x == y;
}

// ---- the plan / injector / scope primitives ---------------------------------

TEST(FaultPlan, ParseDescribeRoundTrip) {
  const FaultPlan plan = FaultPlan::parse("refactor@3,stall@5x2,evict@0");
  ASSERT_EQ(plan.events().size(), 3u);
  EXPECT_EQ(plan.describe(), "refactor@3,stall@5x2,evict@0");

  EXPECT_TRUE(plan.should_fire(FaultSite::kSingularRefactor, 3));
  EXPECT_FALSE(plan.should_fire(FaultSite::kSingularRefactor, 2));
  EXPECT_FALSE(plan.should_fire(FaultSite::kSingularRefactor, 4));
  // stall@5x2 covers invocations [5, 7).
  EXPECT_FALSE(plan.should_fire(FaultSite::kSimplexStall, 4));
  EXPECT_TRUE(plan.should_fire(FaultSite::kSimplexStall, 5));
  EXPECT_TRUE(plan.should_fire(FaultSite::kSimplexStall, 6));
  EXPECT_FALSE(plan.should_fire(FaultSite::kSimplexStall, 7));
  EXPECT_TRUE(plan.should_fire(FaultSite::kSessionEviction, 0));
  // A site without a trigger never fires.
  EXPECT_FALSE(plan.should_fire(FaultSite::kSeparationOracle, 0));
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("bogus@1"), Error);
  EXPECT_THROW(FaultPlan::parse("refactor"), Error);
  EXPECT_THROW(FaultPlan::parse("refactor@"), Error);
  EXPECT_THROW(FaultPlan::parse("refactor@1x"), Error);
  EXPECT_THROW(FaultPlan::parse("random:1:2"), Error);
  EXPECT_TRUE(FaultPlan::parse("").empty());
}

TEST(FaultPlan, RandomPlansAreSeeded) {
  const FaultPlan a = FaultPlan::random(7, 6, 100);
  const FaultPlan b = FaultPlan::random(7, 6, 100);
  ASSERT_EQ(a.events().size(), 6u);
  EXPECT_EQ(a.describe(), b.describe());
  for (const FaultEvent& event : a.events()) {
    EXPECT_LT(static_cast<std::size_t>(event.site),
              static_cast<std::size_t>(FaultSite::kNumSites));
    EXPECT_LT(event.at, 100u);
    EXPECT_EQ(event.count, 1u);
  }
}

TEST(FaultInjector, CountsInvocationsAndFiresTriggers) {
  FaultPlan plan;
  plan.add(FaultSite::kSingularRefactor, 1);
  FaultInjector injector(plan);
  FaultScope scope(&injector);
  EXPECT_FALSE(fault_fire(FaultSite::kSingularRefactor));  // invocation 0
  EXPECT_TRUE(fault_fire(FaultSite::kSingularRefactor));   // invocation 1 fires
  EXPECT_FALSE(fault_fire(FaultSite::kSingularRefactor));  // invocation 2
  EXPECT_EQ(injector.invocations(FaultSite::kSingularRefactor), 3u);
  EXPECT_EQ(injector.fired(FaultSite::kSingularRefactor), 1u);
  EXPECT_EQ(injector.total_fired(), 1u);

  injector.reset();
  EXPECT_EQ(injector.invocations(FaultSite::kSingularRefactor), 0u);
  EXPECT_FALSE(fault_fire(FaultSite::kSingularRefactor));
  EXPECT_TRUE(fault_fire(FaultSite::kSingularRefactor));  // plan replays after reset
}

TEST(FaultInjector, UnarmedHooksNeitherCountNorFire) {
  FaultPlan plan;
  plan.add(FaultSite::kSeparationOracle, 0);
  FaultInjector injector(plan);
  // No scope armed: the hook is inert and consumes nothing.
  EXPECT_FALSE(fault_fire(FaultSite::kSeparationOracle));
  EXPECT_EQ(injector.invocations(FaultSite::kSeparationOracle), 0u);
  EXPECT_EQ(armed_fault_injector(), nullptr);

  FaultInjector other;
  {
    FaultScope scope(&injector);
    EXPECT_EQ(armed_fault_injector(), &injector);
    {
      // A nullptr scope is a no-op (call sites arm unconditionally): the
      // outer injector stays armed.  A real nested scope shadows it.
      FaultScope noop(nullptr);
      EXPECT_EQ(armed_fault_injector(), &injector);
      FaultScope inner(&other);
      EXPECT_EQ(armed_fault_injector(), &other);
      EXPECT_FALSE(fault_fire(FaultSite::kSeparationOracle));  // counts on `other`
    }
    EXPECT_EQ(armed_fault_injector(), &injector);  // restored
    EXPECT_TRUE(fault_fire(FaultSite::kSeparationOracle));
  }
  EXPECT_EQ(armed_fault_injector(), nullptr);
  EXPECT_EQ(injector.invocations(FaultSite::kSeparationOracle), 1u);
  EXPECT_EQ(other.invocations(FaultSite::kSeparationOracle), 1u);
  EXPECT_EQ(other.total_fired(), 0u);
}

// ---- survival chains: one per fault kind ------------------------------------

TEST(FaultSurvival, SeparationFaultRecoversOnTheRebuildRung) {
  const Platform p = random_platform(12, 314);
  PlannerSession reference(p);
  const double exact_tp = reference.solve().throughput;

  PlannerSession session(p);
  FaultPlan plan;
  plan.add(FaultSite::kSeparationOracle, 0);  // first separation round throws
  FaultInjector injector(plan);
  FaultScope scope(&injector);

  const SsbSolution& recovered = session.solve_laddered();
  EXPECT_EQ(recovered.tier, PlanTier::kRebuild);
  EXPECT_LE(rel_diff(recovered.throughput, exact_tp), 1e-9);
  EXPECT_GE(session.stats().rollbacks, 1u);
  EXPECT_EQ(injector.fired(FaultSite::kSeparationOracle), 1u);

  // The session stays usable: a mutation later, the (consumed) plan is
  // silent and the warm re-plan is exact again.
  session.scale_link_time(0, 1.5);
  reference.scale_link_time(0, 1.5);
  const SsbSolution& after = session.solve_laddered();
  EXPECT_EQ(after.tier, PlanTier::kExact);
  EXPECT_LE(rel_diff(after.throughput, reference.solve().throughput), 1e-9);
}

TEST(FaultSurvival, PricingFaultRollsBackPackingAndRecovers) {
  const Platform p = random_platform(10, 1234);
  PlannerSession session(p);
  const double exact_tp = session.solve().throughput;

  FaultPlan plan;
  plan.add(FaultSite::kPricingOracle, 0);
  FaultInjector injector(plan);
  FaultScope scope(&injector);
  EXPECT_THROW(session.solve_packing(), Error);
  EXPECT_GE(session.stats().rollbacks, 1u);

  // Trigger consumed; the retry prices cleanly and agrees with the
  // cutting-plane optimum.
  const SsbPackingSolution& packing = session.solve_packing();
  EXPECT_LE(rel_diff(packing.throughput, exact_tp), 1e-9);
}

TEST(FaultSurvival, SingularRefactorIsAbsorbedInsideTheSimplex) {
  const Platform p = random_platform(12, 2020);
  const double exact_tp = solve_ssb_cutting_plane(p).throughput;

  PlannerSession session(p);
  FaultPlan plan;
  plan.add(FaultSite::kSingularRefactor, 0);
  plan.add(FaultSite::kSingularRefactor, 3);
  FaultInjector injector(plan);
  FaultScope scope(&injector);

  // The simplex survival chain (revert, slack-basis restart) absorbs a
  // singular refactorization below the ladder; worst case the session
  // rolls back and the rebuild rung answers.  Either way: no throw, exact
  // agreement.
  const SsbSolution& recovered = session.solve_laddered();
  EXPECT_TRUE(recovered.solved);
  EXPECT_NE(recovered.tier, PlanTier::kHeuristic);
  EXPECT_LE(rel_diff(recovered.throughput, exact_tp), 1e-9);
  EXPECT_GE(injector.fired(FaultSite::kSingularRefactor), 1u);
}

TEST(FaultSurvival, SimplexStallIsAbsorbedOrDegradesGracefully) {
  const Platform p = random_platform(12, 555);
  const double exact_tp = solve_ssb_cutting_plane(p).throughput;

  PlannerSession session(p);
  FaultPlan plan;
  plan.add(FaultSite::kSimplexStall, 0, 2);
  FaultInjector injector(plan);
  FaultScope scope(&injector);

  const SsbSolution& recovered = session.solve_laddered();
  EXPECT_TRUE(recovered.solved);
  EXPECT_GE(injector.fired(FaultSite::kSimplexStall), 1u);
  if (recovered.tier != PlanTier::kHeuristic) {
    EXPECT_LE(rel_diff(recovered.throughput, exact_tp), 1e-9);
  } else {
    // The heuristic rung is a feasible single tree: positive rate, never
    // above the optimum (up to rounding).
    EXPECT_GT(recovered.throughput, 0.0);
    EXPECT_LE(recovered.throughput, exact_tp * (1.0 + 1e-9));
  }
}

TEST(FaultSurvival, SessionEvictionFaultStillAnswersExactly) {
  const Platform p = random_platform(12, 777);
  const double exact_tp = solve_ssb_cutting_plane(p).throughput;

  FaultPlan plan;
  plan.add(FaultSite::kSessionEviction, 1);  // evict before the second solve
  FaultInjector injector(plan);
  PlannerServiceOptions options;
  options.faults = &injector;
  PlannerService service(p, options);

  EXPECT_LE(rel_diff(service.throughput(0), exact_tp), 1e-9);
  service.scale_link_time(0, 1.0);  // version bump forces a re-solve
  EXPECT_LE(rel_diff(service.throughput(0), exact_tp), 1e-9);
  EXPECT_EQ(injector.fired(FaultSite::kSessionEviction), 1u);
  EXPECT_GE(service.stats().sessions_evicted, 1u);
  EXPECT_EQ(service.stats().plans_heuristic, 0u);
}

// ---- deadline budgets -------------------------------------------------------

TEST(LadderBudget, PivotBudgetDropsToHeuristicAndRecoversWhenLifted) {
  const Platform p = random_platform(16, 4242);
  PlannerSession session(p);
  const double exact_tp = session.solve().throughput;

  // Starve a re-plan: one pivot of budget ends the solve at the first
  // round boundary, and the ladder skips the (equally doomed) rebuild rung.
  session.scale_link_time(1, 1.8);
  LadderOptions starved;
  starved.pivot_budget = 1;
  const SsbSolution& degraded = session.solve_laddered(starved);
  EXPECT_EQ(degraded.tier, PlanTier::kHeuristic);
  EXPECT_TRUE(degraded.solved);
  EXPECT_GT(degraded.throughput, 0.0);
  ASSERT_EQ(degraded.tree_columns.size(), 1u);
  EXPECT_GE(degraded.quality_gap, 0.0);
  EXPECT_LE(degraded.quality_gap, 1.0);
  EXPECT_GE(session.stats().budget_exhausts, 1u);
  EXPECT_GE(session.stats().heuristic_plans, 1u);

  // A heuristic answer caches like any other; the next *mutation* clears it
  // and an unbudgeted ladder is exact again.
  session.set_link_cost(1, p.link_cost(1));
  const SsbSolution& restored = session.solve_laddered();
  EXPECT_EQ(restored.tier, PlanTier::kExact);
  EXPECT_LE(rel_diff(restored.throughput, exact_tp), 1e-9);
}

TEST(LadderBudget, HeuristicWithoutHistoryStillBroadcasts) {
  // Budget exhausted on the very first solve: no last-good loads exist, so
  // the heuristic prices on raw arc times and reports a zero gap estimate.
  const Platform p = random_platform(12, 99);
  PlannerSession session(p);
  LadderOptions starved;
  starved.pivot_budget = 1;
  const SsbSolution& degraded = session.solve_laddered(starved);
  EXPECT_EQ(degraded.tier, PlanTier::kHeuristic);
  EXPECT_GT(degraded.throughput, 0.0);
  EXPECT_EQ(degraded.quality_gap, 0.0);
  // And the schedule path synthesizes the single tree without LP work.
  EXPECT_GT(session.schedule().throughput(), 0.0);
}

TEST(LadderBudget, DisallowedHeuristicRethrows) {
  const Platform p = random_platform(12, 321);
  PlannerSession session(p);
  LadderOptions strict;
  strict.pivot_budget = 1;
  strict.allow_heuristic = false;
  EXPECT_THROW(session.solve_laddered(strict), Error);
  // The failure left the session dirty but intact: an unbudgeted solve works.
  EXPECT_GT(session.solve_laddered().throughput, 0.0);
}

// ---- determinism across pool widths -----------------------------------------

TEST(FaultDeterminism, FaultedRecoveryIsBitwiseAcrossPoolWidths) {
  const Platform p = random_platform(20, 31337);
  SsbSolution reference;
  bool have_reference = false;
  for (std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    PlannerSessionOptions options;
    options.cutting.pool = &pool;
    options.colgen.pool = &pool;
    PlannerSession session(p, options);

    FaultPlan plan;
    plan.add(FaultSite::kSeparationOracle, 0);
    plan.add(FaultSite::kSingularRefactor, 2);
    FaultInjector injector(plan);
    FaultScope scope(&injector);
    const SsbSolution recovered = session.solve_laddered();

    if (!have_reference) {
      reference = recovered;
      have_reference = true;
      continue;
    }
    EXPECT_EQ(recovered.tier, reference.tier) << "pool width " << threads;
    EXPECT_TRUE(bits_equal(recovered.throughput, reference.throughput))
        << "pool width " << threads;
    ASSERT_EQ(recovered.edge_load.size(), reference.edge_load.size());
    for (EdgeId e = 0; e < reference.edge_load.size(); ++e) {
      EXPECT_TRUE(bits_equal(recovered.edge_load[e], reference.edge_load[e]))
          << "pool width " << threads << ", arc " << e;
    }
  }
}

}  // namespace
}  // namespace bt
