// Cross-solver agreement for the steady-state broadcast optimum.
//
// The three solvers -- direct program (2), cutting plane (incremental and
// rebuild master paths) and arborescence column generation -- must compute
// the same optimal throughput under both port models, on hand-built
// platforms with dyadic arc times the value is additionally pinned against
// an *exact rational* solve of the projected cut LP (every source cut
// enumerated), which in particular is the regression test for the old
// cutting-plane bug of folding the 1e-6 anti-degeneracy load penalty into
// the reported objective (a ~1e-5 downward bias, vs the 1e-9 agreement
// asserted here).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "lp/exact_simplex.hpp"
#include "lp/rational.hpp"
#include "platform/platform.hpp"
#include "platform/random_generator.hpp"
#include "platform/tiers_generator.hpp"
#include "ssb/ssb_column_generation.hpp"
#include "ssb/ssb_cutting_plane.hpp"
#include "ssb/ssb_direct.hpp"
#include "util/rng.hpp"

namespace bt {
namespace {

/// Exact rational from a dyadic double (the test platforms use arc times
/// k/16, so the conversion is lossless).
Rational dyadic_rational(double v) {
  const double scaled = v * 16.0;
  const auto num = static_cast<std::int64_t>(scaled);
  EXPECT_EQ(static_cast<double>(num), scaled) << "non-dyadic arc time " << v;
  return Rational(num, 16);
}

/// Exact optimum of the projected SSB cut LP: maximize TP subject to the
/// port rows and one row per source-containing proper subset S
/// (sum over arcs leaving S of n_e >= TP).  Exponential in p; for the
/// small test platforms that is the point -- no separation, no floats.
Rational exact_ssb_optimum(const Platform& platform, PortModel model) {
  const Digraph& g = platform.graph();
  const std::size_t p = g.num_nodes();
  const std::size_t m = g.num_edges();
  const NodeId source = platform.source();
  EXPECT_LE(p, 16u) << "exact reference is exponential in nodes";

  ExactLp lp;  // variables: n_e (m of them), then TP
  for (EdgeId e = 0; e < m; ++e) lp.c.push_back(Rational(0));
  lp.c.push_back(Rational(1));

  auto add_row = [&](std::vector<Rational> row, Rational rhs) {
    lp.a.push_back(std::move(row));
    lp.b.push_back(rhs);
  };
  for (NodeId u = 0; u < p; ++u) {
    std::vector<Rational> out_row(m + 1, Rational(0)), in_row(m + 1, Rational(0));
    for (EdgeId e : g.out_edges(u)) out_row[e] = dyadic_rational(platform.edge_time(e));
    for (EdgeId e : g.in_edges(u)) in_row[e] = dyadic_rational(platform.edge_time(e));
    if (model == PortModel::kBidirectional) {
      add_row(std::move(out_row), Rational(1));
      add_row(std::move(in_row), Rational(1));
    } else {
      for (EdgeId e = 0; e < m; ++e) out_row[e] += in_row[e];
      add_row(std::move(out_row), Rational(1));
    }
  }
  // Every proper subset S containing the source: TP - sum_{delta+(S)} n_e <= 0.
  for (std::size_t mask = 0; mask < (std::size_t{1} << p); ++mask) {
    if (!(mask & (std::size_t{1} << source))) continue;
    if (mask + 1 == (std::size_t{1} << p)) continue;  // S = V
    std::vector<Rational> row(m + 1, Rational(0));
    row[m] = Rational(1);
    for (EdgeId e = 0; e < m; ++e) {
      const bool from_in = (mask >> g.from(e)) & 1;
      const bool to_in = (mask >> g.to(e)) & 1;
      if (from_in && !to_in) row[e] = Rational(-1);
    }
    add_row(std::move(row), Rational(0));
  }

  const ExactSolution solution = solve_exact_lp(lp);
  EXPECT_EQ(solution.status, ExactStatus::kOptimal);
  return solution.objective;
}

/// Random strongly-reachable platform with dyadic arc times k/16.
Platform dyadic_platform(Rng& rng, std::size_t p, double extra_arc_prob) {
  Digraph g(p);
  std::vector<LinkCost> costs;
  auto add_arc = [&](NodeId a, NodeId b) {
    g.add_edge(a, b);
    costs.push_back({0.0, static_cast<double>(rng.uniform_int(1, 32)) / 16.0});
  };
  for (NodeId v = 1; v < p; ++v) add_arc(static_cast<NodeId>(rng.index(v)), v);  // spanning
  for (NodeId a = 0; a < p; ++a) {
    for (NodeId b = 0; b < p; ++b) {
      if (a != b && rng.bernoulli(extra_arc_prob)) add_arc(a, b);
    }
  }
  return Platform(std::move(g), std::move(costs), 1.0, 0);
}

void expect_all_solvers_agree(const Platform& platform, PortModel model, bool with_exact,
                              const char* label) {
  SsbCuttingPlaneOptions cut_inc;
  cut_inc.port_model = model;
  SsbCuttingPlaneOptions cut_reb = cut_inc;
  cut_reb.incremental_master = false;
  SsbColumnGenOptions colgen;
  colgen.port_model = model;
  SsbDirectOptions direct;
  direct.port_model = model;

  const SsbSolution a = solve_ssb_cutting_plane(platform, cut_inc);
  const SsbSolution b = solve_ssb_cutting_plane(platform, cut_reb);
  const SsbPackingSolution c = solve_ssb_column_generation(platform, colgen);
  const SsbDirectSolution d = solve_ssb_direct(platform, direct);
  ASSERT_TRUE(a.solved && b.solved && c.solved && d.solved) << label;

  const double tol = 1e-9 * std::max(1.0, a.throughput);
  EXPECT_EQ(a.throughput, b.throughput) << label << ": cutting-plane paths not bitwise";
  EXPECT_NEAR(a.throughput, c.throughput, tol) << label;
  EXPECT_NEAR(a.throughput, d.throughput, tol) << label;
  if (with_exact) {
    const double exact = exact_ssb_optimum(platform, model).to_double();
    EXPECT_NEAR(a.throughput, exact, tol) << label << ": vs exact rational";
    EXPECT_NEAR(c.throughput, exact, tol) << label << ": colgen vs exact rational";
    EXPECT_NEAR(d.throughput, exact, tol) << label << ": direct vs exact rational";
  }
}

TEST(SsbAgreement, AllSolversMatchTheExactRationalOptimumBothPortModels) {
  Rng rng(0xE5B);
  for (int trial = 0; trial < 8; ++trial) {
    Rng prng = rng.split();
    const Platform platform = dyadic_platform(prng, 5 + prng.index(2), 0.3);
    for (const PortModel model : {PortModel::kBidirectional, PortModel::kUnidirectional}) {
      expect_all_solvers_agree(
          platform, model, /*with_exact=*/true,
          model == PortModel::kBidirectional ? "dyadic/bidirectional" : "dyadic/unidirectional");
    }
  }
}

TEST(SsbAgreement, ReportedCuttingPlaneThroughputIsUnpenalized) {
  // Regression for the load-penalty bias: on a platform whose loads are
  // heavily serialized, the old code under-reported TP by ~penalty * load.
  // The exact rational reference pins the unpenalized value to 1e-9.
  Rng rng(0xBEEF);
  Rng prng = rng.split();
  const Platform platform = dyadic_platform(prng, 6, 0.45);
  const Rational exact = exact_ssb_optimum(platform, PortModel::kBidirectional);
  const SsbSolution cut = solve_ssb_cutting_plane(platform);
  ASSERT_TRUE(cut.solved);
  EXPECT_NEAR(cut.throughput, exact.to_double(), 1e-9 * std::max(1.0, cut.throughput));
}

TEST(SsbAgreement, RandomPlatformsBothPortModels) {
  Rng rng(0xA5A5);
  for (const std::size_t n : {12, 20}) {
    RandomPlatformConfig config;
    config.num_nodes = n;
    config.density = 0.2;
    Rng prng = rng.split();
    const Platform platform = generate_random_platform(config, prng);
    for (const PortModel model : {PortModel::kBidirectional, PortModel::kUnidirectional}) {
      SsbCuttingPlaneOptions cut_inc;
      cut_inc.port_model = model;
      SsbCuttingPlaneOptions cut_reb = cut_inc;
      cut_reb.incremental_master = false;
      SsbColumnGenOptions colgen;
      colgen.port_model = model;
      const SsbSolution a = solve_ssb_cutting_plane(platform, cut_inc);
      const SsbSolution b = solve_ssb_cutting_plane(platform, cut_reb);
      const SsbPackingSolution c = solve_ssb_column_generation(platform, colgen);
      ASSERT_TRUE(a.solved && b.solved && c.solved);
      EXPECT_EQ(a.throughput, b.throughput) << "n=" << n;
      EXPECT_NEAR(a.throughput, c.throughput, 1e-9 * std::max(1.0, c.throughput)) << "n=" << n;
    }
  }
}

TEST(SsbAgreement, TiersPlatformsBothPortModels) {
  Rng rng(0x7135);
  const Platform platform = generate_tiers_platform(tiers_config_30(), rng);
  for (const PortModel model : {PortModel::kBidirectional, PortModel::kUnidirectional}) {
    SsbCuttingPlaneOptions cut_inc;
    cut_inc.port_model = model;
    SsbCuttingPlaneOptions cut_reb = cut_inc;
    cut_reb.incremental_master = false;
    SsbColumnGenOptions colgen;
    colgen.port_model = model;
    const SsbSolution a = solve_ssb_cutting_plane(platform, cut_inc);
    const SsbSolution b = solve_ssb_cutting_plane(platform, cut_reb);
    const SsbPackingSolution c = solve_ssb_column_generation(platform, colgen);
    ASSERT_TRUE(a.solved && b.solved && c.solved);
    EXPECT_EQ(a.throughput, b.throughput);
    EXPECT_NEAR(a.throughput, c.throughput, 1e-9 * std::max(1.0, c.throughput));
  }
}

TEST(SsbAgreement, UnidirectionalIsNeverFasterThanBidirectional) {
  // Sharing one port for sends and receives only removes capacity.
  Rng rng(0x60D);
  for (int trial = 0; trial < 4; ++trial) {
    Rng prng = rng.split();
    const Platform platform = dyadic_platform(prng, 6, 0.35);
    SsbCuttingPlaneOptions uni;
    uni.port_model = PortModel::kUnidirectional;
    const SsbSolution bi = solve_ssb_cutting_plane(platform);
    const SsbSolution un = solve_ssb_cutting_plane(platform, uni);
    EXPECT_LE(un.throughput, bi.throughput + 1e-9);
  }
}

}  // namespace
}  // namespace bt
