// Tests for the LP substrate: model building and the two-phase revised
// simplex, including property tests against a brute-force vertex enumerator
// on random small programs.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/lp_problem.hpp"
#include "lp/simplex.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bt {
namespace {

// -------------------------------------------------------------- lp problem --

TEST(LpProblem, MergesDuplicateTerms) {
  LpProblem lp;
  const auto x = lp.add_variable(1.0, "x");
  lp.add_constraint({{x, 1.0}, {x, 2.0}}, RowSense::kLessEqual, 6.0);
  ASSERT_EQ(lp.row(0).terms.size(), 1u);
  EXPECT_DOUBLE_EQ(lp.row(0).terms[0].coeff, 3.0);
}

TEST(LpProblem, ViolationMeasure) {
  LpProblem lp;
  const auto x = lp.add_variable(1.0);
  const auto y = lp.add_variable(1.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, RowSense::kLessEqual, 1.0);
  lp.add_constraint({{x, 1.0}}, RowSense::kGreaterEqual, 0.25);
  lp.add_constraint({{y, 1.0}}, RowSense::kEqual, 0.5);
  EXPECT_DOUBLE_EQ(lp.max_violation({0.25, 0.5}), 0.0);
  EXPECT_NEAR(lp.max_violation({2.0, 0.5}), 1.5, 1e-12);  // first row violated
  EXPECT_NEAR(lp.max_violation({0.25, 0.75}), 0.25, 1e-12);
}

TEST(LpProblem, RejectsUnknownVariable) {
  LpProblem lp;
  lp.add_variable(1.0);
  EXPECT_THROW(lp.add_constraint({{5, 1.0}}, RowSense::kEqual, 0.0), Error);
}

// ----------------------------------------------------------------- simplex --

TEST(Simplex, TextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  ->  x=2, y=6, obj=36.
  LpProblem lp(Objective::kMaximize);
  const auto x = lp.add_variable(3.0, "x");
  const auto y = lp.add_variable(5.0, "y");
  lp.add_constraint({{x, 1.0}}, RowSense::kLessEqual, 4.0);
  lp.add_constraint({{y, 2.0}}, RowSense::kLessEqual, 12.0);
  lp.add_constraint({{x, 3.0}, {y, 2.0}}, RowSense::kLessEqual, 18.0);
  const LpSolution s = solve_lp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-8);
  EXPECT_NEAR(s.x[x], 2.0, 1e-8);
  EXPECT_NEAR(s.x[y], 6.0, 1e-8);
}

TEST(Simplex, MinimizationWithGreaterEqual) {
  // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3  ->  x=7, y=3, obj=23.
  LpProblem lp(Objective::kMinimize);
  const auto x = lp.add_variable(2.0);
  const auto y = lp.add_variable(3.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, RowSense::kGreaterEqual, 10.0);
  lp.add_constraint({{x, 1.0}}, RowSense::kGreaterEqual, 2.0);
  lp.add_constraint({{y, 1.0}}, RowSense::kGreaterEqual, 3.0);
  const LpSolution s = solve_lp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 23.0, 1e-8);
  EXPECT_NEAR(s.x[x], 7.0, 1e-8);
  EXPECT_NEAR(s.x[y], 3.0, 1e-8);
}

TEST(Simplex, EqualityConstraints) {
  // max x + y s.t. x + y = 5, x - y = 1  ->  x=3, y=2.
  LpProblem lp(Objective::kMaximize);
  const auto x = lp.add_variable(1.0);
  const auto y = lp.add_variable(1.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, RowSense::kEqual, 5.0);
  lp.add_constraint({{x, 1.0}, {y, -1.0}}, RowSense::kEqual, 1.0);
  const LpSolution s = solve_lp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[x], 3.0, 1e-8);
  EXPECT_NEAR(s.x[y], 2.0, 1e-8);
}

TEST(Simplex, DetectsInfeasibility) {
  LpProblem lp(Objective::kMaximize);
  const auto x = lp.add_variable(1.0);
  lp.add_constraint({{x, 1.0}}, RowSense::kLessEqual, 1.0);
  lp.add_constraint({{x, 1.0}}, RowSense::kGreaterEqual, 2.0);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  LpProblem lp(Objective::kMaximize);
  const auto x = lp.add_variable(1.0);
  const auto y = lp.add_variable(0.0);
  lp.add_constraint({{y, 1.0}}, RowSense::kLessEqual, 1.0);  // x unconstrained
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
  (void)x;
}

TEST(Simplex, NegativeRhsNormalization) {
  // max -x s.t. -x <= -3  (i.e. x >= 3)  ->  x=3, obj=-3.
  LpProblem lp(Objective::kMaximize);
  const auto x = lp.add_variable(-1.0);
  lp.add_constraint({{x, -1.0}}, RowSense::kLessEqual, -3.0);
  const LpSolution s = solve_lp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[x], 3.0, 1e-8);
  EXPECT_NEAR(s.objective, -3.0, 1e-8);
}

TEST(Simplex, RedundantEqualityRowsAreDropped) {
  // x + y = 2 stated twice plus its double: rank-deficient but feasible.
  LpProblem lp(Objective::kMaximize);
  const auto x = lp.add_variable(1.0);
  const auto y = lp.add_variable(2.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, RowSense::kEqual, 2.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, RowSense::kEqual, 2.0);
  lp.add_constraint({{x, 2.0}, {y, 2.0}}, RowSense::kEqual, 4.0);
  const LpSolution s = solve_lp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-8);  // y=2, x=0
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degeneracy: many constraints active at the optimum.
  LpProblem lp(Objective::kMaximize);
  const auto x = lp.add_variable(1.0);
  const auto y = lp.add_variable(1.0);
  for (int k = 1; k <= 10; ++k) {
    lp.add_constraint({{x, static_cast<double>(k)}, {y, 1.0}}, RowSense::kLessEqual, 0.0);
  }
  const LpSolution s = solve_lp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 0.0, 1e-9);
}

TEST(Simplex, DualsSatisfyStrongDuality) {
  LpProblem lp(Objective::kMaximize);
  const auto x = lp.add_variable(3.0);
  const auto y = lp.add_variable(5.0);
  lp.add_constraint({{x, 1.0}}, RowSense::kLessEqual, 4.0);
  lp.add_constraint({{y, 2.0}}, RowSense::kLessEqual, 12.0);
  lp.add_constraint({{x, 3.0}, {y, 2.0}}, RowSense::kLessEqual, 18.0);
  const LpSolution s = solve_lp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  double dual_objective = 0.0;
  for (std::size_t i = 0; i < lp.num_constraints(); ++i) {
    dual_objective += s.duals[i] * lp.row(i).rhs;
    EXPECT_GE(s.duals[i], -1e-9);  // max problem, <= rows: duals >= 0
  }
  EXPECT_NEAR(dual_objective, s.objective, 1e-7);
}

TEST(Simplex, SolutionIsPrimalFeasible) {
  LpProblem lp(Objective::kMaximize);
  const auto a = lp.add_variable(1.0);
  const auto b = lp.add_variable(4.0);
  const auto c = lp.add_variable(2.0);
  lp.add_constraint({{a, 2.0}, {b, 1.0}, {c, 1.0}}, RowSense::kLessEqual, 14.0);
  lp.add_constraint({{a, 4.0}, {b, 2.0}, {c, 3.0}}, RowSense::kLessEqual, 28.0);
  lp.add_constraint({{a, 2.0}, {b, 5.0}, {c, 5.0}}, RowSense::kLessEqual, 30.0);
  const LpSolution s = solve_lp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_LE(lp.max_violation(s.x), 1e-7);
}

TEST(Simplex, NoConstraintsEdgeCases) {
  LpProblem bounded(Objective::kMaximize);
  bounded.add_variable(-1.0);
  EXPECT_EQ(solve_lp(bounded).status, LpStatus::kOptimal);

  LpProblem unbounded(Objective::kMaximize);
  unbounded.add_variable(1.0);
  EXPECT_EQ(solve_lp(unbounded).status, LpStatus::kUnbounded);

  LpProblem empty;
  EXPECT_THROW(solve_lp(empty), Error);
}

// ------------------------------------------------- brute-force cross-check --

/// Enumerate all basic solutions of {A x <= b, x >= 0} (2 variables) by
/// intersecting constraint pairs, and return the best feasible objective.
double brute_force_2d(const LpProblem& lp) {
  // Gather rows as a x + b y <= c (including x >= 0, y >= 0 as -x <= 0 ...).
  struct Line {
    double a, b, c;
  };
  std::vector<Line> lines;
  for (std::size_t i = 0; i < lp.num_constraints(); ++i) {
    const auto& row = lp.row(i);
    double a = 0.0, b = 0.0;
    for (const auto& t : row.terms) (t.var == 0 ? a : b) = t.coeff;
    lines.push_back({a, b, row.rhs});
  }
  lines.push_back({-1.0, 0.0, 0.0});
  lines.push_back({0.0, -1.0, 0.0});

  double best = -1e300;
  auto consider = [&](double x, double y) {
    for (const Line& l : lines) {
      if (l.a * x + l.b * y > l.c + 1e-7) return;
    }
    best = std::max(best, lp.objective_coeff(0) * x + lp.objective_coeff(1) * y);
  };
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (std::size_t j = i + 1; j < lines.size(); ++j) {
      const double det = lines[i].a * lines[j].b - lines[j].a * lines[i].b;
      if (std::abs(det) < 1e-12) continue;
      const double x = (lines[i].c * lines[j].b - lines[j].c * lines[i].b) / det;
      const double y = (lines[i].a * lines[j].c - lines[j].a * lines[i].c) / det;
      consider(x, y);
    }
  }
  return best;
}

TEST(Simplex, PropertyMatchesBruteForceOn2dPrograms) {
  Rng rng(4242);
  int solved = 0;
  for (int trial = 0; trial < 200; ++trial) {
    LpProblem lp(Objective::kMaximize);
    lp.add_variable(rng.uniform_real(-2.0, 5.0));
    lp.add_variable(rng.uniform_real(-2.0, 5.0));
    const int rows = 2 + static_cast<int>(rng.index(5));
    for (int i = 0; i < rows; ++i) {
      lp.add_constraint({{0, rng.uniform_real(-1.0, 3.0)}, {1, rng.uniform_real(-1.0, 3.0)}},
                        RowSense::kLessEqual, rng.uniform_real(0.5, 10.0));
    }
    const LpSolution s = solve_lp(lp);
    if (s.status != LpStatus::kOptimal) continue;  // unbounded cases skipped
    const double reference = brute_force_2d(lp);
    EXPECT_NEAR(s.objective, reference, 1e-5) << "trial " << trial;
    EXPECT_LE(lp.max_violation(s.x), 1e-6);
    ++solved;
  }
  EXPECT_GT(solved, 100);  // most random programs are bounded & feasible
}

// -------------------------------------------------------------- warm start --

TEST(Simplex, WarmStartReproducesOptimum) {
  LpProblem lp(Objective::kMaximize);
  const auto x = lp.add_variable(3.0);
  const auto y = lp.add_variable(5.0);
  lp.add_constraint({{x, 1.0}}, RowSense::kLessEqual, 4.0);
  lp.add_constraint({{y, 2.0}}, RowSense::kLessEqual, 12.0);
  lp.add_constraint({{x, 3.0}, {y, 2.0}}, RowSense::kLessEqual, 18.0);
  const LpSolution cold = solve_lp(lp);
  ASSERT_EQ(cold.status, LpStatus::kOptimal);
  ASSERT_FALSE(cold.basis.empty());

  SimplexOptions options;
  options.warm_basis = &cold.basis;
  const LpSolution warm = solve_lp(lp, options);
  ASSERT_EQ(warm.status, LpStatus::kOptimal);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
  // Re-solving from the optimal basis should take at most one pricing pass.
  EXPECT_LE(warm.iterations, 2u);
}

TEST(Simplex, WarmStartAfterAddingColumns) {
  // Column-generation pattern: same rows, one more variable.
  LpProblem lp(Objective::kMaximize);
  const auto a = lp.add_variable(1.0);
  lp.add_constraint({{a, 1.0}}, RowSense::kLessEqual, 2.0);
  lp.add_constraint({{a, 1.0}}, RowSense::kLessEqual, 5.0);
  const LpSolution first = solve_lp(lp);
  ASSERT_EQ(first.status, LpStatus::kOptimal);
  EXPECT_NEAR(first.objective, 2.0, 1e-9);

  LpProblem grown(Objective::kMaximize);
  const auto a2 = grown.add_variable(1.0);
  const auto b2 = grown.add_variable(3.0);
  grown.add_constraint({{a2, 1.0}, {b2, 1.0}}, RowSense::kLessEqual, 2.0);
  grown.add_constraint({{a2, 1.0}, {b2, 2.0}}, RowSense::kLessEqual, 5.0);
  SimplexOptions options;
  options.warm_basis = &first.basis;
  const LpSolution second = solve_lp(grown, options);
  ASSERT_EQ(second.status, LpStatus::kOptimal);
  EXPECT_NEAR(second.objective, 6.0, 1e-9);  // b=2 dominates
}

TEST(Simplex, BogusWarmBasisIsIgnored) {
  LpProblem lp(Objective::kMaximize);
  const auto x = lp.add_variable(1.0);
  lp.add_constraint({{x, 1.0}}, RowSense::kLessEqual, 3.0);
  // Wrong arity and undecodable labels must both fall back to a cold start.
  const std::vector<std::size_t> wrong_size{0, 1, 2};
  SimplexOptions options;
  options.warm_basis = &wrong_size;
  EXPECT_NEAR(solve_lp(lp, options).objective, 3.0, 1e-9);

  const std::vector<std::size_t> undecodable{12345};
  options.warm_basis = &undecodable;
  EXPECT_NEAR(solve_lp(lp, options).objective, 3.0, 1e-9);
}

TEST(Simplex, WarmStartPropertyOnRandomPrograms) {
  Rng rng(90210);
  for (int trial = 0; trial < 40; ++trial) {
    LpProblem lp(Objective::kMaximize);
    const std::size_t vars = 3 + rng.index(5);
    for (std::size_t j = 0; j < vars; ++j) lp.add_variable(rng.uniform_real(0.0, 3.0));
    const std::size_t rows = 3 + rng.index(5);
    for (std::size_t i = 0; i < rows; ++i) {
      std::vector<LpTerm> terms;
      for (std::size_t j = 0; j < vars; ++j) {
        terms.push_back({j, rng.uniform_real(0.1, 2.0)});
      }
      lp.add_constraint(terms, RowSense::kLessEqual, rng.uniform_real(1.0, 8.0));
    }
    const LpSolution cold = solve_lp(lp);
    ASSERT_EQ(cold.status, LpStatus::kOptimal);
    SimplexOptions options;
    options.warm_basis = &cold.basis;
    const LpSolution warm = solve_lp(lp, options);
    ASSERT_EQ(warm.status, LpStatus::kOptimal);
    EXPECT_NEAR(warm.objective, cold.objective, 1e-7) << "trial " << trial;
  }
}

TEST(Simplex, StatusToString) {
  EXPECT_EQ(to_string(LpStatus::kOptimal), "optimal");
  EXPECT_EQ(to_string(LpStatus::kInfeasible), "infeasible");
  EXPECT_EQ(to_string(LpStatus::kUnbounded), "unbounded");
  EXPECT_EQ(to_string(LpStatus::kIterationLimit), "iteration-limit");
}

}  // namespace
}  // namespace bt
