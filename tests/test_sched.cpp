// Schedule synthesis: flow -> tree decomposition, one-port orchestration,
// static validation and simulator replay.
//
// The headline checks: on dyadic platforms the decomposition reproduces the
// exact rational loads' throughput with at most |E| trees; bidirectional
// orchestration realizes TP* exactly (Birkhoff-von Neumann); the replay
// executor converges to the designed rate after the pipeline-fill
// transient; and the uniform 3-node clique pins the odd-set gap of the
// unidirectional LP (TP* = 3/4 is a relaxation -- no schedule beats 1/2,
// and the synthesized one achieves exactly that).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/heuristics.hpp"
#include "core/throughput.hpp"
#include "graph/arborescence.hpp"
#include "platform/random_generator.hpp"
#include "sched/orchestrate.hpp"
#include "sched/tree_decomposition.hpp"
#include "sched/validate.hpp"
#include "sim/schedule_replay.hpp"
#include "ssb/ssb_column_generation.hpp"
#include "ssb/ssb_cutting_plane.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bt {
namespace {

/// Random strongly-reachable platform with dyadic arc times k/16 (the same
/// family the cross-solver agreement suite uses).
Platform dyadic_platform(Rng& rng, std::size_t p, double extra_arc_prob) {
  Digraph g(p);
  std::vector<LinkCost> costs;
  auto add_arc = [&](NodeId a, NodeId b) {
    g.add_edge(a, b);
    costs.push_back({0.0, static_cast<double>(rng.uniform_int(1, 32)) / 16.0});
  };
  for (NodeId v = 1; v < p; ++v) add_arc(static_cast<NodeId>(rng.index(v)), v);
  for (NodeId a = 0; a < p; ++a) {
    for (NodeId b = 0; b < p; ++b) {
      if (a != b && rng.bernoulli(extra_arc_prob)) add_arc(a, b);
    }
  }
  return Platform(std::move(g), std::move(costs), 1.0, 0);
}

/// Uniform 3-node clique (all six arcs, T = 1).
Platform triangle_platform() {
  Digraph g(3);
  std::vector<LinkCost> costs;
  for (NodeId a = 0; a < 3; ++a) {
    for (NodeId b = 0; b < 3; ++b) {
      if (a == b) continue;
      g.add_edge(a, b);
      costs.push_back({0.0, 1.0});
    }
  }
  return Platform(std::move(g), std::move(costs), 1.0, 0);
}

/// Per-arc slice rate of a decomposition.
std::vector<double> decomposition_loads(const Platform& platform,
                                        const TreeDecomposition& decomposition) {
  std::vector<double> loads(platform.num_edges(), 0.0);
  for (const PackedTree& tree : decomposition.trees) {
    for (EdgeId e : tree.edges) loads[e] += tree.rate;
  }
  return loads;
}

TEST(TreeDecomposition, ReconstructsCuttingPlaneLoadsOnDyadicPlatforms) {
  Rng rng(71);
  for (std::size_t p : {5, 8, 12}) {
    const Platform platform = dyadic_platform(rng, p, 0.3);
    const SsbSolution solution = solve_ssb_cutting_plane(platform);
    ASSERT_TRUE(solution.tree_columns.empty());  // this solver has no columns

    const TreeDecomposition decomposition = decompose_edge_load(platform, solution);
    EXPECT_FALSE(decomposition.from_columns);
    EXPECT_LE(decomposition.trees.size(), platform.num_edges());
    // The reconstruction's documented floor is 2e-6 relative (small
    // platforms typically converge to far better).
    EXPECT_NEAR(decomposition.throughput, solution.throughput,
                2e-6 * std::max(1.0, solution.throughput));

    double total = 0.0;
    for (const PackedTree& tree : decomposition.trees) {
      EXPECT_GT(tree.rate, 0.0);
      std::string why;
      EXPECT_TRUE(is_spanning_arborescence(platform.graph(), platform.source(), tree.edges,
                                           &why))
          << why;
      total += tree.rate;
    }
    EXPECT_NEAR(total, solution.throughput, 1e-9 * std::max(1.0, solution.throughput));
    const std::vector<double> loads = decomposition_loads(platform, decomposition);
    for (EdgeId e = 0; e < platform.num_edges(); ++e) {
      EXPECT_LE(loads[e], solution.edge_load[e] + 1e-9 * std::max(1.0, solution.throughput))
          << "arc " << e << " over-used";
    }
  }
}

TEST(TreeDecomposition, AdoptsColgenColumnsAndCanBeForcedToReconstruct) {
  Rng rng(5);
  const Platform platform = dyadic_platform(rng, 8, 0.3);
  const SsbPackingSolution solution = solve_ssb_column_generation(platform);
  ASSERT_FALSE(solution.tree_columns.empty());
  ASSERT_EQ(solution.tree_columns.size(), solution.trees.size());

  const TreeDecomposition exact = decompose_edge_load(platform, solution);
  EXPECT_TRUE(exact.from_columns);
  EXPECT_EQ(exact.trees.size(), solution.trees.size());
  EXPECT_EQ(exact.pricing_rounds, 0u);

  TreeDecompositionOptions force;
  force.use_solution_columns = false;
  const TreeDecomposition rebuilt = decompose_edge_load(platform, solution, force);
  EXPECT_FALSE(rebuilt.from_columns);
  EXPECT_NEAR(rebuilt.throughput, solution.throughput,
              2e-6 * std::max(1.0, solution.throughput));
  EXPECT_LE(rebuilt.trees.size(), platform.num_edges());

  SsbColumnGenOptions no_export;
  no_export.export_tree_columns = false;
  const SsbPackingSolution stripped = solve_ssb_column_generation(platform, no_export);
  EXPECT_TRUE(stripped.tree_columns.empty());
  EXPECT_FALSE(stripped.trees.empty());  // the packing-specific field remains
}

TEST(TreeDecomposition, RejectsDegenerateInputs) {
  // Single-node platform: no steady state to decompose (PR-1 convention:
  // bt::Error, not an internal assert).
  Platform single(Digraph(1), {}, 1.0, 0);
  SsbSolution empty;
  empty.solved = true;
  empty.throughput = 1.0;
  EXPECT_THROW(decompose_edge_load(single, empty), Error);

  Rng rng(9);
  const Platform platform = dyadic_platform(rng, 6, 0.3);
  SsbSolution unsolved;
  unsolved.edge_load.assign(platform.num_edges(), 0.0);
  EXPECT_THROW(decompose_edge_load(platform, unsolved), Error);

  // Loads that cannot carry the claimed throughput must be rejected by the
  // max-flow precondition, not silently decomposed.
  SsbSolution bogus = solve_ssb_cutting_plane(platform);
  bogus.throughput *= 2.0;
  EXPECT_THROW(decompose_edge_load(platform, bogus), Error);
}

TEST(Orchestration, BidirectionalRealizesTheOptimumOnDyadicPlatforms) {
  Rng rng(31);
  for (std::size_t p : {5, 8, 12}) {
    const Platform platform = dyadic_platform(rng, p, 0.3);
    const SsbSolution solution = solve_ssb_cutting_plane(platform);
    const PeriodicSchedule schedule = synthesize_schedule(platform, solution);

    // Birkhoff-von Neumann peeling realizes period = max port load, which
    // at an SSB optimum is exactly 1/TP* per slice (up to the
    // reconstruction's 2e-6 completeness floor).
    EXPECT_NEAR(schedule.throughput(), solution.throughput,
                3e-6 * std::max(1.0, solution.throughput));
    EXPECT_LE(schedule.rounds.size(), platform.num_edges() + 2 * platform.num_nodes() + 8);

    ScheduleCheckOptions options;
    options.reference = &solution;
    const ScheduleCheck check = check_schedule(platform, schedule, options);
    EXPECT_TRUE(check.ok) << (check.violations.empty() ? "" : check.violations.front());
  }
}

TEST(Orchestration, ColgenColumnsGiveExactLoadAccounting) {
  Rng rng(13);
  const Platform platform = dyadic_platform(rng, 10, 0.25);
  const SsbPackingSolution solution = solve_ssb_column_generation(platform);
  const PeriodicSchedule schedule = synthesize_schedule(platform, solution);

  ScheduleCheckOptions options;
  options.reference = &solution;
  options.require_exact_loads = true;  // the exact decomposition path
  const ScheduleCheck check = check_schedule(platform, schedule, options);
  EXPECT_TRUE(check.ok) << (check.violations.empty() ? "" : check.violations.front());
  EXPECT_LE(check.max_port_overuse, 0.0);
}

TEST(Orchestration, UnidirectionalTrianglePinsTheOddSetGap) {
  // Uniform 3-node clique: the unidirectional LP (per-node rows only)
  // claims TP* = 3/4, but any two transfers among three nodes share a
  // port, so a real schedule runs at most one transfer at a time: one
  // slice takes >= 2 time units and no schedule beats 1/2.  Matching
  // peeling achieves exactly that true optimum -- the 2/3 ratio below is
  // the odd-set (fractional edge coloring) gap of the relaxation, not an
  // orchestration deficiency.
  const Platform platform = triangle_platform();
  SsbColumnGenOptions options;
  options.port_model = PortModel::kUnidirectional;
  const SsbPackingSolution solution = solve_ssb_column_generation(platform, options);
  EXPECT_NEAR(solution.throughput, 0.75, 1e-9);

  OrchestrationOptions orchestration;
  orchestration.port_model = PortModel::kUnidirectional;
  const PeriodicSchedule schedule = synthesize_schedule(platform, solution, orchestration);
  EXPECT_NEAR(schedule.throughput(), 0.5, 1e-9);

  ScheduleCheckOptions check_options;
  check_options.reference = &solution;
  const ScheduleCheck check = check_schedule(platform, schedule, check_options);
  EXPECT_TRUE(check.ok) << (check.violations.empty() ? "" : check.violations.front());

  const ReplayResult replay = replay_schedule(platform, schedule);
  EXPECT_NEAR(replay.steady_throughput, 0.5, 1e-9);

  // Bidirectional ports resolve the clique: TP* = 1 and the schedule
  // realizes it.
  const SsbPackingSolution bidirectional = solve_ssb_column_generation(platform);
  EXPECT_NEAR(bidirectional.throughput, 1.0, 1e-9);
  const PeriodicSchedule bi_schedule = synthesize_schedule(platform, bidirectional);
  EXPECT_NEAR(bi_schedule.throughput(), 1.0, 1e-9);
  EXPECT_NEAR(replay_schedule(platform, bi_schedule).steady_throughput, 1.0, 1e-9);
}

TEST(Orchestration, UnidirectionalRoundsOnRandomPlatforms) {
  Rng rng(47);
  for (std::size_t p : {6, 10}) {
    const Platform platform = dyadic_platform(rng, p, 0.3);
    SsbCuttingPlaneOptions solver;
    solver.port_model = PortModel::kUnidirectional;
    const SsbSolution solution = solve_ssb_cutting_plane(platform, solver);
    OrchestrationOptions orchestration;
    orchestration.port_model = PortModel::kUnidirectional;
    const PeriodicSchedule schedule = synthesize_schedule(platform, solution, orchestration);

    // The schedule can never beat the LP relaxation, and the matchings
    // keep it within a constant factor of it (Shannon/Vizing-style).
    EXPECT_LE(schedule.throughput(), solution.throughput * (1.0 + 1e-9));
    EXPECT_GE(schedule.throughput(), solution.throughput * 0.45);

    ScheduleCheckOptions check_options;
    check_options.reference = &solution;
    const ScheduleCheck check = check_schedule(platform, schedule, check_options);
    EXPECT_TRUE(check.ok) << (check.violations.empty() ? "" : check.violations.front());

    // Replay sustains exactly what the rounds promise.
    const ReplayResult replay = replay_schedule(platform, schedule);
    EXPECT_NEAR(replay.steady_throughput, schedule.throughput(),
                1e-6 * schedule.throughput());
  }
}

TEST(Validator, CatchesCorruptedSchedules) {
  Rng rng(3);
  const Platform platform = dyadic_platform(rng, 6, 0.3);
  const SsbPackingSolution solution = solve_ssb_column_generation(platform);
  const PeriodicSchedule good = synthesize_schedule(platform, solution);
  ASSERT_TRUE(check_schedule(platform, good).ok);

  {  // A dropped round leaves tree traffic unshipped.
    PeriodicSchedule bad = good;
    bad.period -= bad.rounds.back().duration;
    bad.rounds.pop_back();
    EXPECT_FALSE(check_schedule(platform, bad).ok);
  }
  {  // An inflated transfer overflows its round (and the accounting).
    PeriodicSchedule bad = good;
    for (ScheduleRound& round : bad.rounds) {
      if (round.transfers.empty()) continue;
      round.transfers.front().amount *= 3.0;
      break;
    }
    const ScheduleCheck check = check_schedule(platform, bad);
    EXPECT_FALSE(check.ok);
    EXPECT_GT(check.max_ship_error, 0.0);
  }
  {  // Squashing all rounds into one creates port conflicts.
    PeriodicSchedule bad = good;
    ScheduleRound merged;
    merged.duration = bad.period;
    for (const ScheduleRound& round : bad.rounds) {
      merged.transfers.insert(merged.transfers.end(), round.transfers.begin(),
                              round.transfers.end());
    }
    bad.rounds.assign(1, merged);
    EXPECT_FALSE(check_schedule(platform, bad).ok);
  }
  {  // A transfer over an arc outside its tree.
    PeriodicSchedule bad = good;
    const std::set<EdgeId> arcs(bad.trees[0].edges.begin(), bad.trees[0].edges.end());
    for (EdgeId e = 0; e < platform.num_edges(); ++e) {
      if (arcs.count(e)) continue;
      for (ScheduleRound& round : bad.rounds) {
        if (round.transfers.empty()) continue;
        round.transfers.front().arc = e;
        round.transfers.front().tree = 0;
        break;
      }
      break;
    }
    EXPECT_FALSE(check_schedule(platform, bad).ok);
  }
}

TEST(SingleTreeSchedules, MatchTheClosedFormAndReplay) {
  Rng rng(17);
  RandomPlatformConfig config;
  config.num_nodes = 20;
  config.density = 0.15;
  const Platform platform = generate_random_platform(config, rng);
  const BroadcastTree tree = grow_tree(platform);

  const PeriodicSchedule schedule = schedule_single_tree(platform, tree);
  EXPECT_NEAR(schedule.throughput(), one_port_throughput(platform, tree),
              1e-9 * one_port_throughput(platform, tree));
  EXPECT_TRUE(check_schedule(platform, schedule).ok);

  const ReplayResult replay = replay_schedule(platform, schedule);
  EXPECT_NEAR(replay.steady_throughput, schedule.throughput(),
              1e-6 * schedule.throughput());

  // Unidirectional single-tree schedules replay what they promise too.
  const PeriodicSchedule uni = schedule_single_tree(platform, tree,
                                                    PortModel::kUnidirectional);
  EXPECT_TRUE(check_schedule(platform, uni).ok);
  EXPECT_LE(uni.throughput(), schedule.throughput() * (1.0 + 1e-9));
  EXPECT_NEAR(replay_schedule(platform, uni).steady_throughput, uni.throughput(),
              1e-6 * uni.throughput());

  // Degenerate single-node platform: bt::Error, PR-1 convention.
  Platform single(Digraph(1), {}, 1.0, 0);
  BroadcastTree no_arcs;
  no_arcs.root = 0;
  EXPECT_THROW(schedule_single_tree(single, no_arcs), Error);
  EXPECT_THROW(orchestrate_one_port(single, {}), Error);
}

TEST(Replay, ConvergesToTheOptimumAtFifty) {
  Rng rng(23);
  RandomPlatformConfig config;
  config.num_nodes = 50;
  config.density = 0.12;
  const Platform platform = generate_random_platform(config, rng);

  const SsbPackingSolution solution = solve_ssb_column_generation(platform);
  const PeriodicSchedule schedule = synthesize_schedule(platform, solution);
  ScheduleCheckOptions check_options;
  check_options.reference = &solution;
  const ScheduleCheck check = check_schedule(platform, schedule, check_options);
  ASSERT_TRUE(check.ok) << (check.violations.empty() ? "" : check.violations.front());

  const ReplayResult replay = replay_schedule(platform, schedule);
  EXPECT_GE(replay.steady_throughput, 0.999 * solution.throughput);
  EXPECT_LE(replay.steady_throughput, solution.throughput * (1.0 + 1e-6));
  // The transient is bounded by the deepest tree level.
  EXPECT_LE(replay.transient_periods + 2, replay.periods);

  // Same platform, unidirectional: replay converges to the designed rate.
  SsbColumnGenOptions uni_solver;
  uni_solver.port_model = PortModel::kUnidirectional;
  const SsbPackingSolution uni_solution = solve_ssb_column_generation(platform, uni_solver);
  OrchestrationOptions uni_orchestration;
  uni_orchestration.port_model = PortModel::kUnidirectional;
  const PeriodicSchedule uni_schedule =
      synthesize_schedule(platform, uni_solution, uni_orchestration);
  ASSERT_TRUE(check_schedule(platform, uni_schedule).ok);
  const ReplayResult uni_replay = replay_schedule(platform, uni_schedule);
  EXPECT_GE(uni_replay.steady_throughput, 0.999 * uni_schedule.throughput());
}

}  // namespace
}  // namespace bt
