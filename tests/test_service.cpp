// Tests for the broadcast-planning service (service/planner_service.hpp)
// and its building blocks: the LRU cache, the read/write guard discipline,
// session eviction, mutation invalidation, and concurrent readers against
// a mutating writer.  The concurrency tests run under the ThreadSanitizer
// CI lane (BT_SANITIZE=thread).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "experiments/service_eval.hpp"
#include "platform/random_generator.hpp"
#include "sched/validate.hpp"
#include "service/planner_service.hpp"
#include "ssb/planner_session.hpp"
#include "ssb/ssb_cutting_plane.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/lru_cache.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace bt {
namespace {

Platform random_platform(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  RandomPlatformConfig config;
  config.num_nodes = n;
  config.density = n <= 12 ? 0.3 : 0.18;
  return generate_random_platform(config, rng);
}

double rel_diff(double a, double b) {
  return std::abs(a - b) / std::max({1.0, std::abs(a), std::abs(b)});
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<int, std::shared_ptr<int>> cache(2);
  cache.put(1, std::make_shared<int>(10));
  cache.put(2, std::make_shared<int>(20));
  ASSERT_TRUE(cache.get(1).has_value());  // 1 becomes most recent
  cache.put(3, std::make_shared<int>(30));
  EXPECT_FALSE(cache.get(2).has_value());  // 2 was LRU -> evicted
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCache, PutRefreshesExistingKey) {
  LruCache<int, std::shared_ptr<int>> cache(2);
  cache.put(1, std::make_shared<int>(10));
  cache.put(2, std::make_shared<int>(20));
  cache.put(1, std::make_shared<int>(11));  // refresh, no eviction
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(**cache.get(1), 11);
  cache.put(3, std::make_shared<int>(30));
  EXPECT_FALSE(cache.get(2).has_value());
}

TEST(LruCache, RejectsZeroCapacity) {
  EXPECT_THROW((LruCache<int, int>(0)), Error);
}

TEST(PlannerService, PlanIsCachedByPointerIdentityUntilMutation) {
  PlannerService service(random_platform(12, 7));
  const auto plan0 = service.plan(0);
  const auto plan1 = service.plan(0);
  EXPECT_EQ(plan0.get(), plan1.get());  // cache hit: same snapshot
  EXPECT_EQ(service.stats().solves, 1u);
  EXPECT_GE(service.stats().plan_cache_hits, 1u);

  service.scale_link_time(0, 1.5);
  const auto plan2 = service.plan(0);
  EXPECT_NE(plan0.get(), plan2.get());  // version bumped -> re-solved
  EXPECT_EQ(service.stats().solves, 2u);
  // The old snapshot stays valid for its holder.
  EXPECT_GT(plan0->throughput, 0.0);
}

TEST(PlannerService, PlansMatchBatchSolverPerSource) {
  const Platform p = random_platform(12, 21);
  PlannerService service(p);
  for (NodeId s : {NodeId{0}, NodeId{3}, NodeId{5}}) {
    const double service_tp = service.throughput(s);
    const SsbSolution batch = solve_ssb_cutting_plane(p.with_source(s));
    EXPECT_LE(rel_diff(service_tp, batch.throughput), 1e-9) << "source " << s;
  }
  EXPECT_EQ(service.stats().sessions_created, 3u);
}

TEST(PlannerService, EvictsSessionsPastMaxAndRecreatesOnDemand) {
  PlannerServiceOptions options;
  options.max_sessions = 2;
  PlannerService service(random_platform(10, 33), options);
  service.throughput(0);
  service.throughput(1);
  service.throughput(2);  // evicts source 0's session
  EXPECT_EQ(service.stats().sessions_created, 3u);
  EXPECT_EQ(service.stats().sessions_evicted, 1u);
  // Source 0 is still served (plan cache may answer; after a mutation a
  // fresh session is built transparently).
  service.scale_link_time(0, 1.2);
  EXPECT_GT(service.throughput(0), 0.0);
  EXPECT_EQ(service.stats().sessions_evicted, 2u);
}

TEST(PlannerService, MutationsReachColdAndWarmSessionsAlike) {
  // A session evicted before a mutation must see the mutation when it is
  // recreated (the service replays platform state, not mutation history).
  const Platform p = random_platform(10, 55);
  PlannerServiceOptions options;
  options.max_sessions = 1;
  PlannerService service(p, options);
  service.throughput(0);
  service.throughput(1);  // evicts session 0

  const EdgeId e = 2;
  service.scale_link_time(e, 2.0);   // only session 1 is warm
  service.remove_link(3);

  // Recreated session 0 must solve the mutated platform.
  Platform mutated = p;
  LinkCost cost = p.link_cost(e);
  cost.alpha *= 2.0;
  cost.beta *= 2.0;
  mutated.set_link_cost(e, cost);
  PlannerSession reference(mutated);
  reference.remove_link(3);
  EXPECT_LE(rel_diff(service.throughput(0), reference.solve().throughput), 1e-9);
}

TEST(PlannerService, ScheduleIsCachedAndInvalidated) {
  PlannerService service(random_platform(10, 91));
  const auto sched0 = service.schedule(0);
  const auto sched1 = service.schedule(0);
  EXPECT_EQ(sched0.get(), sched1.get());
  const double tp = service.throughput(0);
  EXPECT_LE(sched0->throughput(), tp * (1.0 + 1e-9));
  EXPECT_GE(sched0->throughput(), tp * 0.45);

  service.scale_link_time(1, 1.7);
  const auto sched2 = service.schedule(0);
  EXPECT_NE(sched0.get(), sched2.get());
  EXPECT_GE(service.stats().schedules_built, 2u);
}

TEST(PlannerService, AddNodeGrowsEverySession) {
  const Platform p = random_platform(8, 123);
  PlannerService service(p);
  service.throughput(0);
  service.throughput(1);

  std::vector<SessionLink> in_links = {{0, LinkCost{0.0, 2e-8}}, {3, LinkCost{0.0, 5e-8}}};
  std::vector<SessionLink> out_links = {{2, LinkCost{0.0, 4e-8}}};
  const NodeId added = service.add_node(in_links, out_links);
  EXPECT_EQ(added, p.num_nodes());
  EXPECT_EQ(service.platform_snapshot().num_nodes(), p.num_nodes() + 1);

  const Platform grown = grow_platform(p, in_links, out_links);
  for (NodeId s : {NodeId{0}, NodeId{1}, added}) {
    const SsbSolution batch = solve_ssb_cutting_plane(grown.with_source(s));
    EXPECT_LE(rel_diff(service.throughput(s), batch.throughput), 1e-9) << "source " << s;
  }
}

TEST(PlannerService, ScheduleSnapshotSurvivesRemoveLink) {
  // A consumer holding a schedule taken *before* a failure must keep a
  // valid, executable schedule for the platform it was built on, while the
  // service moves on: the post-mutation call returns a new version built
  // around the dead arc.
  const Platform p = random_platform(12, 4242);
  PlannerService service(p);
  const std::uint64_t version_before = service.version();
  auto snapshot = service.schedule(0);
  ASSERT_NE(snapshot, nullptr);
  EXPECT_TRUE(check_schedule(p, *snapshot).ok);

  // Fail an arc the snapshot actually ships over.
  ASSERT_FALSE(snapshot->trees.empty());
  const EdgeId victim = snapshot->trees[0].edges.front();
  service.remove_link(victim);
  EXPECT_EQ(service.version(), version_before + 1);  // cache invalidation pin

  auto rebuilt = service.schedule(0);
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_NE(rebuilt.get(), snapshot.get());
  for (const ScheduledTree& tree : rebuilt->trees) {
    for (const EdgeId e : tree.edges) EXPECT_NE(e, victim);
  }
  // The old snapshot is untouched by the mutation: still valid against the
  // platform it was planned for.
  EXPECT_TRUE(check_schedule(p, *snapshot).ok);
  EXPECT_TRUE(check_schedule(service.platform_snapshot(), *rebuilt).ok);
}

TEST(PlannerService, AddNodeColdFallbackMidStreamMatchesColdSolve) {
  // S2: joins arrive mid-stream, after degradations already re-planned the
  // warm sessions.  add_node is the structural cold fallback; the recreated
  // sessions must see the *current* platform (degradations included) and
  // match a from-scratch solve to 1e-9.
  const Platform p = random_platform(10, 909);
  PlannerService service(p);
  service.throughput(0);
  service.throughput(2);

  service.scale_link_time(1, 1.7);
  service.scale_link_time(4, 1.3);
  service.throughput(0);  // warm re-plan between mutations

  std::vector<SessionLink> in_links = {{0, LinkCost{0.0, 3e-8}}, {5, LinkCost{0.0, 6e-8}}};
  std::vector<SessionLink> out_links = {{1, LinkCost{0.0, 4e-8}}, {6, LinkCost{0.0, 7e-8}}};
  const NodeId added = service.add_node(in_links, out_links);
  EXPECT_EQ(added, p.num_nodes());

  const Platform current = service.platform_snapshot();
  EXPECT_EQ(current.num_nodes(), p.num_nodes() + 1);
  for (NodeId s : {NodeId{0}, NodeId{2}, added}) {
    const SsbSolution cold = solve_ssb_cutting_plane(current.with_source(s));
    EXPECT_LE(rel_diff(service.throughput(s), cold.throughput), 1e-9) << "source " << s;
  }
  // And the schedule synthesized on the grown platform is executable.
  EXPECT_TRUE(check_schedule(current, *service.schedule(0)).ok);
}

TEST(PlannerService, DisconnectedSourceThrowsButServiceStaysUp) {
  const Platform p = random_platform(10, 77);
  PlannerService service(p);
  const NodeId w = 4;
  ASSERT_NE(p.source(), w);
  service.throughput(0);
  for (EdgeId e : p.graph().in_edges(w)) service.remove_link(e);
  EXPECT_THROW(service.throughput(0), Error);
  // Restore and the same service recovers.
  for (EdgeId e : p.graph().in_edges(w)) service.set_link_cost(e, p.link_cost(e));
  EXPECT_LE(rel_diff(service.throughput(0), solve_ssb_cutting_plane(p).throughput), 1e-9);
}

TEST(PlannerService, RequestStreamIsReproducibleAndConsistent) {
  const Platform p = random_platform(12, 1001);
  ServiceStreamConfig config;
  config.num_requests = 60;
  config.mutation_fraction = 0.2;
  config.sources = {0, 2};
  config.seed = 42;
  const auto stream = make_request_stream(p, config);
  ASSERT_EQ(stream.size(), 60u);
  const auto stream2 = make_request_stream(p, config);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(static_cast<int>(stream[i].kind), static_cast<int>(stream2[i].kind));
    EXPECT_EQ(stream[i].source, stream2[i].source);
    EXPECT_EQ(stream[i].edge, stream2[i].edge);
  }

  PlannerService service(p);
  const ServiceStreamResult result = run_request_stream(service, stream);
  EXPECT_EQ(result.reads.count + result.replans.count, stream.size());
  EXPECT_GT(result.throughput_checksum, 0.0);

  // Replaying the same stream on a fresh service gives the same checksum:
  // the service is deterministic for a deterministic request sequence.
  PlannerService replay_service(p);
  const ServiceStreamResult replay = run_request_stream(replay_service, stream);
  EXPECT_LE(rel_diff(result.throughput_checksum, replay.throughput_checksum), 1e-9);
}

TEST(PlannerService, ConcurrentReadersAndWriterStayConsistent) {
  const Platform p = random_platform(10, 2718);
  PlannerService service(p);
  const std::vector<NodeId> sources = {0, 1, 2};
  for (NodeId s : sources) service.throughput(s);  // warm the sessions

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads_done{0};
  ThreadPool readers(4);
  for (std::size_t w = 0; w < 4; ++w) {
    readers.submit([&, w] {
      std::size_t i = w;
      while (!stop.load(std::memory_order_relaxed)) {
        const NodeId s = sources[i % sources.size()];
        if (i % 5 == 0) {
          auto sched = service.schedule(s);
          ASSERT_GT(sched->throughput(), 0.0);
        } else {
          ASSERT_GT(service.throughput(s), 0.0);
        }
        ++i;
        reads_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer: degrade/restore cycles racing the readers.  Mutations are
  // cheap (no solve), so on a loaded machine all six cycles can finish
  // before any reader completes its first solve -- hold the stop flag
  // until at least one read landed, or reads_done == 0 flakes.
  std::thread writer([&] {
    for (int c = 0; c < 6; ++c) {
      const EdgeId e = static_cast<EdgeId>(c % p.num_edges());
      service.scale_link_time(e, 1.5);
      service.set_link_cost(e, p.link_cost(e));
    }
    while (reads_done.load(std::memory_order_relaxed) == 0) std::this_thread::yield();
    stop.store(true);
  });
  writer.join();
  readers.wait();
  EXPECT_GT(reads_done.load(), 0u);

  // Final consistency: the writer's last restore left the pristine
  // platform, so every source must agree with the batch solver again.
  for (NodeId s : sources) {
    const SsbSolution batch = solve_ssb_cutting_plane(p.with_source(s));
    EXPECT_LE(rel_diff(service.throughput(s), batch.throughput), 1e-9) << "source " << s;
  }
}

TEST(PlannerService, StatsSnapshotIsCoherent) {
  PlannerService service(random_platform(10, 11));
  service.throughput(0);
  service.throughput(0);
  service.schedule(0);
  service.scale_link_time(0, 1.1);
  service.throughput(0);
  const PlannerServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries, 4u);
  EXPECT_EQ(stats.mutations, 1u);
  EXPECT_EQ(stats.solves, 2u);
  EXPECT_GE(stats.plan_cache_hits, 1u);
  EXPECT_EQ(stats.sessions_created, 1u);
  EXPECT_EQ(service.version(), 1u);
}

// ---- the degradation ladder at the service boundary -------------------------

TEST(PlannerServiceLadder, TransientSolverFaultDegradesInsteadOfThrowing) {
  // Regression for the retry gap: a warm re-plan that throws used to
  // surface bt::Error to the caller even though a pool rebuild would have
  // answered.  With the ladder in the service path the fault is absorbed.
  const Platform p = random_platform(12, 314);
  const double exact_tp = solve_ssb_cutting_plane(p).throughput;

  FaultPlan plan;
  plan.add(FaultSite::kSeparationOracle, 0);
  FaultInjector faults(plan);
  PlannerServiceOptions options;
  options.faults = &faults;
  PlannerService service(p, options);

  std::shared_ptr<const SsbSolution> answer;
  EXPECT_NO_THROW(answer = service.plan(0));
  ASSERT_NE(answer, nullptr);
  EXPECT_EQ(answer->tier, PlanTier::kRebuild);
  EXPECT_LE(rel_diff(answer->throughput, exact_tp), 1e-9);
  EXPECT_EQ(faults.fired(FaultSite::kSeparationOracle), 1u);
  EXPECT_EQ(service.stats().plans_rebuild, 1u);

  // The fault was transient: the next re-plan is exact again.
  service.scale_link_time(0, 1.0);
  EXPECT_EQ(service.plan(0)->tier, PlanTier::kExact);
}

TEST(PlannerServiceLadder, BudgetExhaustedAnswerCarriesTierAndGap) {
  const Platform p = random_platform(14, 2718);
  PlannerServiceOptions options;
  options.ladder.pivot_budget = 1;
  PlannerService service(p, options);
  const auto answer = service.plan(0);
  EXPECT_EQ(answer->tier, PlanTier::kHeuristic);
  EXPECT_GT(answer->throughput, 0.0);
  EXPECT_GE(answer->quality_gap, 0.0);
  EXPECT_LE(answer->quality_gap, 1.0);
  EXPECT_EQ(service.stats().plans_heuristic, 1u);
  // Even the degraded plan synthesizes a runnable schedule.
  auto schedule = service.schedule(0);
  ASSERT_NE(schedule, nullptr);
  EXPECT_GT(schedule->throughput(), 0.0);
}

// ---- async re-planning ------------------------------------------------------

TEST(PlannerServiceAsync, MutationsEnqueueAndPollPicksUpTheNewBuild) {
  const Platform p = random_platform(12, 99);
  PlannerServiceOptions options;
  options.async_replan = true;
  PlannerService service(p, options);

  // First request per source still solves synchronously and publishes.
  service.plan(0);
  auto first_build = service.schedule(0);
  ScheduleSubscription sub;
  sub.source = 0;
  ASSERT_NE(service.poll_schedule(sub), nullptr);

  // A mutation enqueues a background re-plan instead of dirtying readers.
  service.scale_link_time(0, 2.0);
  service.drain_replans();
  const PlannerServiceStats stats = service.stats();
  EXPECT_GE(stats.replans_enqueued, 1u);
  EXPECT_GE(stats.replans_run, 1u);
  EXPECT_EQ(stats.replans_failed, 0u);
  EXPECT_FALSE(service.take_replan_latencies().empty());

  // The worker's build is newer; poll hands it over without a solve.
  auto rebuilt = service.poll_schedule(sub);
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_NE(rebuilt.get(), first_build.get());

  // And the published plan matches a batch solve of the mutated platform.
  Platform mutated = service.platform_snapshot();
  EXPECT_LE(rel_diff(service.plan(0)->throughput,
                     solve_ssb_cutting_plane(mutated.with_source(0)).throughput),
            1e-9);
}

TEST(PlannerServiceAsync, PausedBatchesCoalesceIntoOneReplan) {
  const Platform p = random_platform(12, 7);
  PlannerServiceOptions options;
  options.async_replan = true;
  PlannerService service(p, options);
  service.plan(0);

  service.pause_replans();
  for (int i = 0; i < 4; ++i) service.scale_link_time(i, 1.25);
  service.resume_replans();
  service.drain_replans();

  // Coalescing happens at enqueue: the first mutation queues a job, the
  // next three lift its version instead of queueing stale re-solves.
  const PlannerServiceStats stats = service.stats();
  EXPECT_EQ(stats.replans_enqueued, 1u);
  EXPECT_EQ(stats.replans_coalesced, 3u);
  EXPECT_EQ(stats.replans_run, 1u);
  // The one re-plan that ran answered for the final state.
  const Platform mutated = service.platform_snapshot();
  EXPECT_LE(rel_diff(service.plan(0)->throughput,
                     solve_ssb_cutting_plane(mutated.with_source(0)).throughput),
            1e-9);
}

// ---- node leaves ------------------------------------------------------------

TEST(PlannerService, RemoveNodeCompactsIdsAndMatchesBatchSolve) {
  const Platform p = random_platform(12, 55);
  PlannerService service(p);
  service.plan(0);

  const NodeId victim = static_cast<NodeId>(p.num_nodes() - 1);
  ShrinkRemap remap;
  service.remove_node(victim, &remap);

  ASSERT_EQ(remap.node_map.size(), p.num_nodes());
  EXPECT_EQ(remap.node_map[victim], Digraph::npos);
  for (NodeId v = 0; v < victim; ++v) EXPECT_EQ(remap.node_map[v], v);
  std::size_t dropped = 0;
  for (EdgeId e = 0; e < p.num_edges(); ++e) {
    const bool touches = p.graph().from(e) == victim || p.graph().to(e) == victim;
    EXPECT_EQ(remap.edge_map[e] == Digraph::npos, touches) << "arc " << e;
    dropped += touches;
  }
  ASSERT_GT(dropped, 0u);

  const Platform shrunk = service.platform_snapshot();
  EXPECT_EQ(shrunk.num_nodes(), p.num_nodes() - 1);
  EXPECT_EQ(shrunk.num_edges(), p.num_edges() - dropped);
  // Post-leave answers match a batch solve of the compacted platform.
  EXPECT_LE(rel_diff(service.throughput(0),
                     solve_ssb_cutting_plane(shrunk.with_source(0)).throughput),
            1e-9);
  // The reference helper agrees with the service's own compaction.
  const Platform direct = shrink_platform(p, victim);
  EXPECT_EQ(direct.num_nodes(), shrunk.num_nodes());
  EXPECT_EQ(direct.num_edges(), shrunk.num_edges());
}

}  // namespace
}  // namespace bt
