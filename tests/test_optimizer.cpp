// Tests for the local-search tree optimizer (extension): validity, strict
// non-worsening, known improvable instances, and interaction with the paper
// heuristics on random platforms.

#include <gtest/gtest.h>

#include <tuple>

#include "core/heuristics.hpp"
#include "core/registry.hpp"
#include "core/throughput.hpp"
#include "core/tree_optimizer.hpp"
#include "platform/random_generator.hpp"
#include "ssb/ssb_column_generation.hpp"
#include "util/rng.hpp"

namespace bt {
namespace {

Platform make_platform(std::size_t n,
                       const std::vector<std::tuple<NodeId, NodeId, double>>& arcs) {
  Digraph g(n);
  std::vector<LinkCost> costs;
  for (const auto& [a, b, t] : arcs) {
    g.add_edge(a, b);
    costs.push_back({0.0, t});
  }
  return Platform(std::move(g), std::move(costs), 1.0, 0);
}

TEST(TreeOptimizer, ImprovesOverloadedStar) {
  // Star 0->{1,2,3} (period 3) can be rebalanced into a chain-ish tree using
  // the cheap 1->2 and 2->3 arcs (period 1).
  const Platform p = make_platform(
      4, {{0, 1, 1.0}, {0, 2, 1.0}, {0, 3, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}});
  BroadcastTree star;
  star.root = 0;
  star.edges = {0, 1, 2};
  const auto r = optimize_tree_one_port(p, star);
  EXPECT_NEAR(r.initial_period, 3.0, 1e-12);
  EXPECT_NEAR(r.final_period, 1.0, 1e-12);
  EXPECT_GE(r.moves, 2u);
  r.tree.validate(p);
}

TEST(TreeOptimizer, LocalOptimumIsFixedPoint) {
  const Platform p = make_platform(
      4, {{0, 1, 1.0}, {0, 2, 1.0}, {0, 3, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}});
  BroadcastTree star;
  star.root = 0;
  star.edges = {0, 1, 2};
  const auto first = optimize_tree_one_port(p, star);
  const auto second = optimize_tree_one_port(p, first.tree);
  EXPECT_EQ(second.moves, 0u);
  EXPECT_DOUBLE_EQ(second.initial_period, second.final_period);
}

TEST(TreeOptimizer, RespectsMoveCap) {
  const Platform p = make_platform(
      4, {{0, 1, 1.0}, {0, 2, 1.0}, {0, 3, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}});
  BroadcastTree star;
  star.root = 0;
  star.edges = {0, 1, 2};
  const auto r = optimize_tree_one_port(p, star, /*max_moves=*/1);
  EXPECT_EQ(r.moves, 1u);
  EXPECT_LT(r.final_period, r.initial_period);
}

TEST(TreeOptimizer, ChainIsAlreadyOptimal) {
  const Platform p = make_platform(3, {{0, 1, 1.0}, {1, 2, 1.0}});
  BroadcastTree chain;
  chain.root = 0;
  chain.edges = {0, 1};
  const auto r = optimize_tree_one_port(p, chain);
  EXPECT_EQ(r.moves, 0u);
}

TEST(TreeOptimizer, MultiportObjectiveDiffersFromOnePort) {
  // With tiny send overheads the multi-port period prefers the wide star;
  // one-port prefers depth.  Start from the star: the multi-port optimizer
  // must keep it, the one-port optimizer must not.
  Platform p = make_platform(
      4, {{0, 1, 1.0}, {0, 2, 1.0}, {0, 3, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}});
  p.set_send_overheads({0.01, 0.01, 0.01, 0.01});
  BroadcastTree star;
  star.root = 0;
  star.edges = {0, 1, 2};
  const auto multi = optimize_tree_multiport(p, star);
  EXPECT_EQ(multi.moves, 0u);  // star period ~1.0 is already optimal
  const auto one = optimize_tree_one_port(p, star);
  EXPECT_GT(one.moves, 0u);
}

TEST(TreeOptimizer, NeverWorsensAnyHeuristicTree) {
  Rng rng(606060);
  for (int trial = 0; trial < 4; ++trial) {
    RandomPlatformConfig config;
    config.num_nodes = 18;
    config.density = 0.15;
    Rng prng = rng.split();
    const Platform p = generate_random_platform(config, prng);
    const auto ssb = solve_ssb(p);
    for (const HeuristicSpec& spec : heuristic_catalog()) {
      const std::vector<double>* loads = spec.needs_lp_loads ? &ssb.edge_load : nullptr;
      const BroadcastTree tree = spec.build(p, loads);
      const auto r = optimize_tree_one_port(p, tree);
      EXPECT_LE(r.final_period, r.initial_period + 1e-9) << spec.name;
      r.tree.validate(p);
      // The improved tree still cannot beat the MTP optimum.
      EXPECT_LE(1.0 / r.final_period, ssb.throughput + 1e-7) << spec.name;
    }
  }
}

TEST(TreeOptimizer, ClosesPartOfTheGapOnAverage) {
  Rng rng(707070);
  double before = 0.0, after = 0.0;
  const int trials = 6;
  for (int trial = 0; trial < trials; ++trial) {
    RandomPlatformConfig config;
    config.num_nodes = 25;
    config.density = 0.12;
    Rng prng = rng.split();
    const Platform p = generate_random_platform(config, prng);
    const BroadcastTree tree = prune_platform_simple(p);
    const auto r = optimize_tree_one_port(p, tree);
    before += 1.0 / r.initial_period;
    after += 1.0 / r.final_period;
  }
  EXPECT_GE(after, before);          // never worse in aggregate
  EXPECT_GT(after, before * 1.02);   // and measurably better on prune_simple
}

}  // namespace
}  // namespace bt
