// Tests for the experiments layer details not covered by the end-to-end
// integration suite: evaluation ordering, table rendering options, sweep
// record bookkeeping, and the heuristic catalog metadata the renderers use.

#include <gtest/gtest.h>

#include <sstream>

#include "experiments/aggregate.hpp"
#include "experiments/evaluation.hpp"
#include "experiments/robustness.hpp"
#include "experiments/sweeps.hpp"
#include "platform/random_generator.hpp"
#include "util/rng.hpp"

namespace bt {
namespace {

bool same_records(const std::vector<SweepRecord>& a, const std::vector<SweepRecord>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].num_nodes != b[i].num_nodes || a[i].density != b[i].density ||
        a[i].replicate != b[i].replicate || a[i].heuristic != b[i].heuristic ||
        a[i].throughput != b[i].throughput || a[i].optimal != b[i].optimal ||
        a[i].ratio != b[i].ratio) {
      return false;
    }
  }
  return true;
}

TEST(Evaluation, PreservesHeuristicOrder) {
  Rng rng(31);
  RandomPlatformConfig config;
  config.num_nodes = 12;
  config.density = 0.2;
  const Platform p = generate_random_platform(config, rng);
  const auto heuristics = one_port_heuristics();
  const auto eval = evaluate_platform(p, heuristics);
  ASSERT_EQ(eval.results.size(), heuristics.size());
  for (std::size_t i = 0; i < heuristics.size(); ++i) {
    EXPECT_EQ(eval.results[i].name, heuristics[i].name);
  }
}

TEST(Evaluation, SubsetOfHeuristicsWorks) {
  Rng rng(32);
  RandomPlatformConfig config;
  config.num_nodes = 10;
  config.density = 0.25;
  const Platform p = generate_random_platform(config, rng);
  const std::vector<HeuristicSpec> just_one{find_heuristic("grow_tree")};
  const auto eval = evaluate_platform(p, just_one);
  ASSERT_EQ(eval.results.size(), 1u);
  EXPECT_EQ(eval.results[0].name, "grow_tree");
}

TEST(Catalog, PaperLabelsAreSet) {
  for (const HeuristicSpec& spec : heuristic_catalog()) {
    EXPECT_FALSE(spec.paper_label.empty()) << spec.name;
    EXPECT_TRUE(spec.build != nullptr) << spec.name;
    EXPECT_TRUE(spec.build_overlay != nullptr) << spec.name;
  }
}

TEST(SeriesTable, DeviationColumnRendersWhenRequested) {
  RandomSweepConfig config;
  config.sizes = {8};
  config.densities = {0.25};
  config.replicates = 3;
  const auto records = run_random_sweep(config);
  const auto series = aggregate_ratios(records, GroupBy::kNumNodes);
  const TablePrinter with = series_table(series, "nodes", {"grow_tree"}, true);
  std::ostringstream os;
  with.render(os);
  EXPECT_NE(os.str().find("±"), std::string::npos);
  const TablePrinter without = series_table(series, "nodes", {"grow_tree"}, false);
  std::ostringstream os2;
  without.render(os2);
  EXPECT_EQ(os2.str().find("±"), std::string::npos);
}

TEST(SeriesTable, UnknownHeuristicRendersDash) {
  RandomSweepConfig config;
  config.sizes = {8};
  config.densities = {0.25};
  config.replicates = 1;
  const auto records = run_random_sweep(config);
  const auto series = aggregate_ratios(records, GroupBy::kNumNodes);
  const TablePrinter table = series_table(series, "nodes", {"does_not_exist"});
  std::ostringstream os;
  table.render(os);
  EXPECT_NE(os.str().find('-'), std::string::npos);
}

TEST(TiersSweep, RecordsActualDensity) {
  TiersSweepConfig config;
  config.families = {tiers_config_30()};
  config.replicates = 1;
  const auto records = run_tiers_sweep(config);
  ASSERT_FALSE(records.empty());
  // Tiers records carry the generated platform's real density, not a target.
  EXPECT_GT(records.front().density, 0.0);
  EXPECT_LT(records.front().density, 0.5);
}

TEST(RandomSweep, MultiportEvalUsesMultiportLineUp) {
  RandomSweepConfig config;
  config.sizes = {8};
  config.densities = {0.25};
  config.replicates = 1;
  config.multiport_eval = true;
  const auto records = run_random_sweep(config);
  std::set<std::string> names;
  for (const auto& r : records) names.insert(r.heuristic);
  EXPECT_TRUE(names.count("multiport_grow_tree"));
  EXPECT_TRUE(names.count("multiport_prune_degree"));
  EXPECT_FALSE(names.count("prune_simple"));
}

TEST(RandomSweep, CustomHeuristicLineUp) {
  RandomSweepConfig config;
  config.sizes = {8};
  config.densities = {0.25};
  config.replicates = 1;
  config.heuristics = {find_heuristic("binomial")};
  const auto records = run_random_sweep(config);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records.front().heuristic, "binomial");
}

// ----------------------------------------------------- parallel determinism --

TEST(RandomSweep, BitwiseIdenticalAcrossThreadCounts) {
  RandomSweepConfig config;
  config.sizes = {8, 10};
  config.densities = {0.2, 0.3};
  config.replicates = 2;
  config.num_threads = 1;
  const auto serial = run_random_sweep(config);
  config.num_threads = 4;
  const auto parallel = run_random_sweep(config);
  EXPECT_TRUE(same_records(serial, parallel));
}

TEST(TiersSweep, BitwiseIdenticalAcrossThreadCounts) {
  TiersSweepConfig config;
  config.families = {tiers_config_30()};
  config.replicates = 3;
  config.num_threads = 1;
  const auto serial = run_tiers_sweep(config);
  config.num_threads = 4;
  const auto parallel = run_tiers_sweep(config);
  EXPECT_TRUE(same_records(serial, parallel));
}

TEST(RobustnessSweep, BitwiseIdenticalAcrossThreadCounts) {
  RobustnessSweepConfig config;
  config.eps_values = {0.0, 0.25};
  config.replicates = 2;
  config.num_nodes = 12;
  config.density = 0.2;
  config.num_threads = 1;
  const auto serial = run_robustness_sweep(config);
  config.num_threads = 4;
  const auto parallel = run_robustness_sweep(config);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].eps, parallel[i].eps);
    EXPECT_EQ(serial[i].replicate, parallel[i].replicate);
    EXPECT_EQ(serial[i].planner, parallel[i].planner);
    EXPECT_EQ(serial[i].achieved_ratio, parallel[i].achieved_ratio);
  }
}

TEST(RobustnessSweep, NoNoiseMeansOptimalMtpSchedule) {
  RobustnessSweepConfig config;
  config.eps_values = {0.0};
  config.replicates = 2;
  config.num_nodes = 12;
  config.density = 0.2;
  const auto records = run_robustness_sweep(config);
  ASSERT_EQ(records.size(), config.replicates * (config.planners.size() + 1));
  for (const RobustnessRecord& r : records) {
    EXPECT_EQ(r.eps, 0.0);
    EXPECT_GT(r.achieved_ratio, 0.0);
    // Trees cannot beat the MTP optimum; planning without noise keeps the
    // MTP schedule itself exactly optimal.
    EXPECT_LE(r.achieved_ratio, 1.0 + 1e-7) << r.planner;
    if (r.planner == mtp_planner_name()) {
      EXPECT_NEAR(r.achieved_ratio, 1.0, 1e-7);
    }
  }
}

}  // namespace
}  // namespace bt
