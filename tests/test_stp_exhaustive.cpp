// Tests for the exhaustive STP optimum and the robustness utilities.

#include <gtest/gtest.h>

#include <tuple>

#include "core/heuristics.hpp"
#include "core/registry.hpp"
#include "core/stp_exhaustive.hpp"
#include "core/throughput.hpp"
#include "experiments/robustness.hpp"
#include "platform/random_generator.hpp"
#include "ssb/ssb_column_generation.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bt {
namespace {

Platform make_platform(std::size_t n,
                       const std::vector<std::tuple<NodeId, NodeId, double>>& arcs) {
  Digraph g(n);
  std::vector<LinkCost> costs;
  for (const auto& [a, b, t] : arcs) {
    g.add_edge(a, b);
    costs.push_back({0.0, t});
  }
  return Platform(std::move(g), std::move(costs), 1.0, 0);
}

// ---------------------------------------------------------- stp exhaustive --

TEST(StpExhaustive, UniqueTreePlatform) {
  const Platform p = make_platform(3, {{0, 1, 0.5}, {1, 2, 0.25}});
  const auto r = stp_optimal_tree(p);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.trees_enumerated, 1u);
  EXPECT_NEAR(r.best_period, 0.5, 1e-12);
}

TEST(StpExhaustive, FindsTheChainOverTheStar) {
  // Star period 3 vs chain period 1: the optimum is the chain.
  const Platform p = make_platform(
      4, {{0, 1, 1.0}, {0, 2, 1.0}, {0, 3, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}});
  const auto r = stp_optimal_tree(p);
  EXPECT_TRUE(r.completed);
  EXPECT_NEAR(r.best_period, 1.0, 1e-12);
  r.best_tree.validate(p);
}

TEST(StpExhaustive, NeverWorseThanAnyHeuristic) {
  Rng rng(1010);
  for (int trial = 0; trial < 8; ++trial) {
    RandomPlatformConfig config;
    config.num_nodes = 7;
    config.density = 0.3;
    Rng prng = rng.split();
    const Platform p = generate_random_platform(config, prng);
    const auto exact = stp_optimal_tree(p);
    ASSERT_TRUE(exact.completed);
    const auto ssb = solve_ssb(p);
    for (const HeuristicSpec& spec : one_port_heuristics()) {
      const std::vector<double>* loads = spec.needs_lp_loads ? &ssb.edge_load : nullptr;
      const BroadcastTree tree = spec.build(p, loads);
      EXPECT_LE(1.0 / exact.best_period + -1e-9, 1e18);  // sanity
      EXPECT_GE(one_port_period(p, tree), exact.best_period - 1e-9)
          << spec.name << " beat the exhaustive optimum, trial " << trial;
    }
    // And the best single tree never beats the MTP bound.
    EXPECT_LE(1.0 / exact.best_period, ssb.throughput + 1e-7);
  }
}

TEST(StpExhaustive, CapIsHonored) {
  // Dense 8-node platform has far more than 3 parent assignments.
  Rng rng(2020);
  RandomPlatformConfig config;
  config.num_nodes = 8;
  config.density = 0.5;
  const Platform p = generate_random_platform(config, rng);
  const auto r = stp_optimal_tree(p, /*max_trees=*/3);
  EXPECT_FALSE(r.completed);
  r.best_tree.validate(p);  // still returns the best tree seen so far
}

TEST(StpExhaustive, RejectsTinyPlatforms) {
  Digraph g(1);
  // Platform construction itself requires slice cost checks; build 2 nodes.
  Digraph g2(2);
  g2.add_edge(0, 1);
  const Platform p(std::move(g2), {{0.0, 1.0}}, 1.0, 0);
  EXPECT_NO_THROW(stp_optimal_tree(p));
  (void)g;
}

// -------------------------------------------------------------- robustness --

TEST(Robustness, ZeroNoiseIsIdentity) {
  Rng rng(3030);
  RandomPlatformConfig config;
  config.num_nodes = 12;
  config.density = 0.2;
  const Platform p = generate_random_platform(config, rng);
  Rng noise(1);
  const Platform q = perturb_platform(p, 0.0, noise);
  for (EdgeId e = 0; e < p.num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(q.edge_time(e), p.edge_time(e));
  }
}

TEST(Robustness, NoiseIsBoundedByFactor) {
  Rng rng(4040);
  RandomPlatformConfig config;
  config.num_nodes = 12;
  config.density = 0.2;
  const Platform p = generate_random_platform(config, rng);
  Rng noise(2);
  const double eps = 0.5;
  const Platform q = perturb_platform(p, eps, noise);
  for (EdgeId e = 0; e < p.num_edges(); ++e) {
    const double ratio = q.edge_time(e) / p.edge_time(e);
    EXPECT_GE(ratio, 1.0 / (1.0 + eps) - 1e-9);
    EXPECT_LE(ratio, 1.0 + eps + 1e-9);
  }
  EXPECT_THROW(perturb_platform(p, -0.1, noise), Error);
}

TEST(Robustness, PackingOnTruePlatformIsExactlyOptimal) {
  Rng rng(5050);
  RandomPlatformConfig config;
  config.num_nodes = 15;
  config.density = 0.2;
  const Platform p = generate_random_platform(config, rng);
  const auto plan = solve_ssb(p);
  // Executing the plan on the platform it was planned for loses nothing.
  EXPECT_NEAR(packing_throughput_on(p, plan), plan.throughput,
              1e-7 * plan.throughput);
}

TEST(Robustness, MisestimatedPlanDegrades) {
  Rng rng(6060);
  RandomPlatformConfig config;
  config.num_nodes = 20;
  config.density = 0.16;
  const Platform truth = generate_random_platform(config, rng);
  Rng noise(3);
  const Platform estimate = perturb_platform(truth, 1.0, noise);
  const auto plan = solve_ssb(estimate);
  const auto true_opt = solve_ssb(truth);
  const double achieved = packing_throughput_on(truth, plan);
  EXPECT_LE(achieved, true_opt.throughput + 1e-7);
  EXPECT_GT(achieved, 0.0);
}

TEST(Robustness, TreesPlannedOnNoisyEstimatesStayValid) {
  Rng rng(7070);
  RandomPlatformConfig config;
  config.num_nodes = 15;
  config.density = 0.15;
  const Platform truth = generate_random_platform(config, rng);
  Rng noise(4);
  const Platform estimate = perturb_platform(truth, 0.5, noise);
  // Structure is shared, so a tree planned on the estimate is valid on the
  // true platform (same arc ids) and has a well-defined true throughput.
  const BroadcastTree tree = grow_tree(estimate);
  tree.validate(truth);
  EXPECT_GT(one_port_throughput(truth, tree), 0.0);
}

}  // namespace
}  // namespace bt
