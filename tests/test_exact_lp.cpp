// Tests for exact rational arithmetic and the exact tableau simplex, plus
// the certification of the floating-point revised simplex against it.

#include <gtest/gtest.h>

#include <sstream>

#include "lp/exact_simplex.hpp"
#include "lp/lp_problem.hpp"
#include "lp/rational.hpp"
#include "lp/simplex.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bt {
namespace {

// ---------------------------------------------------------------- rational --

TEST(Rational, NormalizationAndSigns) {
  EXPECT_EQ(Rational(6, 4), Rational(3, 2));
  EXPECT_EQ(Rational(-6, 4), Rational(-3, 2));
  EXPECT_EQ(Rational(6, -4), Rational(-3, 2));
  EXPECT_EQ(Rational(-6, -4), Rational(3, 2));
  EXPECT_EQ(Rational(0, 7), Rational(0));
  EXPECT_THROW(Rational(1, 0), Error);
}

TEST(Rational, Arithmetic) {
  const Rational a(1, 2), b(1, 3);
  EXPECT_EQ(a + b, Rational(5, 6));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 6));
  EXPECT_EQ(a / b, Rational(3, 2));
  EXPECT_EQ(-a, Rational(-1, 2));
  EXPECT_THROW(a / Rational(0), Error);
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_EQ(Rational(1, 2).sign(), 1);
  EXPECT_EQ(Rational(-7).sign(), -1);
  EXPECT_TRUE(Rational(0).is_zero());
}

TEST(Rational, CrossReductionAvoidsOverflow) {
  // (2^40 / 3) * (3 / 2^40) = 1 -- naive multiplication would overflow 64
  // bits in the numerator times denominator.
  const Rational big(std::int64_t(1) << 40, 3);
  const Rational small(3, std::int64_t(1) << 40);
  EXPECT_EQ(big * small, Rational(1));
}

TEST(Rational, OverflowIsDetected) {
  const Rational huge(INT64_MAX, 1);
  EXPECT_THROW(huge + huge, Error);
  EXPECT_THROW(huge * Rational(2), Error);
}

TEST(Rational, Streaming) {
  std::ostringstream os;
  os << Rational(3, 4) << ' ' << Rational(5);
  EXPECT_EQ(os.str(), "3/4 5");
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 4).to_double(), 0.25);
}

// ----------------------------------------------------------- exact simplex --

TEST(ExactSimplex, TextbookProblemExactOptimum) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> exactly 36.
  ExactLp lp;
  lp.c = {Rational(3), Rational(5)};
  lp.a = {{Rational(1), Rational(0)},
          {Rational(0), Rational(2)},
          {Rational(3), Rational(2)}};
  lp.b = {Rational(4), Rational(12), Rational(18)};
  const auto s = solve_exact_lp(lp);
  ASSERT_EQ(s.status, ExactStatus::kOptimal);
  EXPECT_EQ(s.objective, Rational(36));
  EXPECT_EQ(s.x[0], Rational(2));
  EXPECT_EQ(s.x[1], Rational(6));
}

TEST(ExactSimplex, FractionalOptimumIsExact) {
  // max x + y s.t. 3x + y <= 2, x + 3y <= 2  ->  x = y = 1/2, objective 1.
  ExactLp lp;
  lp.c = {Rational(1), Rational(1)};
  lp.a = {{Rational(3), Rational(1)}, {Rational(1), Rational(3)}};
  lp.b = {Rational(2), Rational(2)};
  const auto s = solve_exact_lp(lp);
  ASSERT_EQ(s.status, ExactStatus::kOptimal);
  EXPECT_EQ(s.objective, Rational(1));
  EXPECT_EQ(s.x[0], Rational(1, 2));
  EXPECT_EQ(s.x[1], Rational(1, 2));
}

TEST(ExactSimplex, DetectsUnboundedness) {
  ExactLp lp;
  lp.c = {Rational(1)};
  lp.a = {{Rational(-1)}};
  lp.b = {Rational(1)};
  EXPECT_EQ(solve_exact_lp(lp).status, ExactStatus::kUnbounded);
}

TEST(ExactSimplex, DegenerateProblemTerminates) {
  // Many constraints active at the origin; Bland's rule must terminate.
  ExactLp lp;
  lp.c = {Rational(1), Rational(1)};
  lp.a.clear();
  lp.b.clear();
  for (int k = 1; k <= 8; ++k) {
    lp.a.push_back({Rational(k), Rational(1)});
    lp.b.push_back(Rational(0));
  }
  const auto s = solve_exact_lp(lp);
  ASSERT_EQ(s.status, ExactStatus::kOptimal);
  EXPECT_EQ(s.objective, Rational(0));
}

TEST(ExactSimplex, RejectsMalformedInput) {
  ExactLp lp;
  lp.c = {Rational(1)};
  lp.a = {{Rational(1), Rational(2)}};  // ragged vs c
  lp.b = {Rational(1)};
  EXPECT_THROW(solve_exact_lp(lp), Error);
  lp.a = {{Rational(1)}};
  lp.b = {Rational(-1)};
  EXPECT_THROW(solve_exact_lp(lp), Error);
}

// ----------------------------------- certify the floating-point simplex ----

TEST(ExactSimplex, PropertyCertifiesDoubleSimplex) {
  // Random integer-coefficient programs: the double revised simplex must
  // match the exact rational optimum to floating-point accuracy.
  Rng rng(0xEAC7);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t vars = 2 + rng.index(4);
    const std::size_t rows = 2 + rng.index(5);
    ExactLp exact;
    LpProblem approx(Objective::kMaximize);
    exact.c.resize(vars);
    for (std::size_t j = 0; j < vars; ++j) {
      const auto cj = rng.uniform_int(0, 9);
      exact.c[j] = Rational(cj);
      approx.add_variable(static_cast<double>(cj));
    }
    for (std::size_t i = 0; i < rows; ++i) {
      std::vector<Rational> row(vars);
      std::vector<LpTerm> terms;
      for (std::size_t j = 0; j < vars; ++j) {
        const auto aij = rng.uniform_int(0, 6);
        row[j] = Rational(aij);
        if (aij != 0) terms.push_back({j, static_cast<double>(aij)});
      }
      const auto bi = rng.uniform_int(1, 20);
      exact.a.push_back(std::move(row));
      exact.b.push_back(Rational(bi));
      approx.add_constraint(terms, RowSense::kLessEqual, static_cast<double>(bi));
    }
    const auto exact_solution = solve_exact_lp(exact);
    const auto approx_solution = solve_lp(approx);
    if (exact_solution.status == ExactStatus::kUnbounded) {
      EXPECT_EQ(approx_solution.status, LpStatus::kUnbounded) << "trial " << trial;
      continue;
    }
    ASSERT_EQ(approx_solution.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(approx_solution.objective, exact_solution.objective.to_double(), 1e-7)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace bt
