// End-to-end integration tests: the full evaluation pipeline (generator ->
// SSB optimum -> heuristics -> ratios -> aggregation) that the benches use.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "experiments/aggregate.hpp"
#include "experiments/evaluation.hpp"
#include "experiments/sweeps.hpp"
#include "platform/random_generator.hpp"
#include "util/rng.hpp"

namespace bt {
namespace {

TEST(Evaluation, ProducesRatiosInUnitIntervalOnePort) {
  Rng rng(9001);
  RandomPlatformConfig config;
  config.num_nodes = 18;
  config.density = 0.12;
  const Platform p = generate_random_platform(config, rng);
  const auto eval = evaluate_platform(p, one_port_heuristics());
  EXPECT_GT(eval.optimal_throughput, 0.0);
  ASSERT_EQ(eval.results.size(), 6u);
  for (const auto& r : eval.results) {
    EXPECT_GT(r.throughput, 0.0) << r.name;
    EXPECT_GT(r.ratio, 0.0) << r.name;
    EXPECT_LE(r.ratio, 1.0 + 1e-7) << r.name;  // single tree <= MTP optimum
  }
}

TEST(Evaluation, MultiportRatiosMayExceedOne) {
  // The paper plots multi-port heuristic throughput against the *one-port*
  // LP optimum; ratios above 1 are expected and must not be clamped.
  Rng rng(9002);
  RandomPlatformConfig config;
  config.num_nodes = 20;
  config.density = 0.16;
  config.multiport_ratio = 0.2;  // cheap overheads favor wide multi-port trees
  const Platform p = generate_random_platform(config, rng);
  const auto eval = evaluate_platform(p, multiport_heuristics(), /*multiport_eval=*/true);
  double best = 0.0;
  for (const auto& r : eval.results) best = std::max(best, r.ratio);
  EXPECT_GT(best, 0.2);
}

TEST(RandomSweep, RecordLayoutComplete) {
  RandomSweepConfig config;
  config.sizes = {8, 12};
  config.densities = {0.15, 0.25};
  config.replicates = 2;
  const auto records = run_random_sweep(config);
  // sizes * densities * replicates * 6 heuristics.
  EXPECT_EQ(records.size(), 2u * 2u * 2u * 6u);
  std::set<std::string> names;
  for (const auto& r : records) {
    names.insert(r.heuristic);
    EXPECT_GT(r.optimal, 0.0);
    EXPECT_GT(r.throughput, 0.0);
    EXPECT_NEAR(r.ratio, r.throughput / r.optimal, 1e-12);
  }
  EXPECT_EQ(names.size(), 6u);
}

TEST(RandomSweep, DeterministicAcrossRuns) {
  RandomSweepConfig config;
  config.sizes = {10};
  config.densities = {0.2};
  config.replicates = 2;
  const auto a = run_random_sweep(config);
  const auto b = run_random_sweep(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].ratio, b[i].ratio);
  }
}

TEST(TiersSweep, ProducesBothFamilies) {
  TiersSweepConfig config;
  config.replicates = 2;
  const auto records = run_tiers_sweep(config);
  std::set<std::size_t> sizes;
  for (const auto& r : records) sizes.insert(r.num_nodes);
  EXPECT_EQ(sizes, (std::set<std::size_t>{30, 65}));
}

TEST(Aggregate, GroupsBySizeAndDensity) {
  RandomSweepConfig config;
  config.sizes = {8, 12};
  config.densities = {0.15, 0.25};
  config.replicates = 2;
  const auto records = run_random_sweep(config);

  const auto by_size = aggregate_ratios(records, GroupBy::kNumNodes);
  ASSERT_TRUE(by_size.count("grow_tree"));
  EXPECT_EQ(by_size.at("grow_tree").size(), 2u);  // two sizes
  // Each cell aggregates densities * replicates samples.
  EXPECT_EQ(by_size.at("grow_tree").begin()->second.count, 4u);

  const auto by_density = aggregate_ratios(records, GroupBy::kDensity);
  EXPECT_EQ(by_density.at("lp_prune").size(), 2u);
}

TEST(Aggregate, SeriesTableRendersAllColumns) {
  RandomSweepConfig config;
  config.sizes = {8};
  config.densities = {0.2};
  config.replicates = 2;
  const auto records = run_random_sweep(config);
  const auto series = aggregate_ratios(records, GroupBy::kNumNodes);
  std::vector<std::string> order;
  for (const auto& spec : one_port_heuristics()) order.push_back(spec.name);
  const TablePrinter table = series_table(series, "nodes", order);
  EXPECT_EQ(table.rows(), 1u);
  std::ostringstream os;
  table.render(os);
  for (const auto& name : order) {
    EXPECT_NE(os.str().find(name), std::string::npos) << name;
  }
}

TEST(Aggregate, TiersTableHasPercentCells) {
  TiersSweepConfig config;
  config.replicates = 2;
  config.families = {tiers_config_30()};
  const auto records = run_tiers_sweep(config);
  std::vector<std::string> order;
  for (const auto& spec : one_port_heuristics()) order.push_back(spec.name);
  const TablePrinter table = tiers_table(records, order);
  std::ostringstream os;
  table.render(os);
  EXPECT_NE(os.str().find('%'), std::string::npos);
  EXPECT_NE(os.str().find("30"), std::string::npos);
}

TEST(ReplicatesFromEnv, DefaultsWhenUnset) {
  unsetenv("BT_REPLICATES");
  EXPECT_EQ(replicates_from_env(7), 7u);
  setenv("BT_REPLICATES", "3", 1);
  EXPECT_EQ(replicates_from_env(7), 3u);
  unsetenv("BT_REPLICATES");
}

// Headline qualitative reproduction at reduced scale: on random platforms
// the advanced heuristics dominate Binomial-Tree and the simple pruning
// degrades with size (Figure 4a's story).
TEST(PaperShape, AdvancedHeuristicsDominateBinomial) {
  RandomSweepConfig config;
  config.sizes = {20};
  config.densities = {0.12};
  config.replicates = 4;
  const auto records = run_random_sweep(config);
  const auto series = aggregate_ratios(records, GroupBy::kNumNodes);
  const double binomial = series.at("binomial").at(20).mean;
  for (const char* name : {"prune_degree", "grow_tree", "lp_prune", "lp_grow_tree"}) {
    EXPECT_GT(series.at(name).at(20).mean, binomial) << name;
    EXPECT_GT(series.at(name).at(20).mean, 0.4) << name;
  }
}

}  // namespace
}  // namespace bt
