// Tests for the long-lived PlannerSession (ssb/planner_session.hpp): the
// load -> solve -> query -> mutate -> re-solve lifecycle, the differential
// guarantee that warm delta re-plans agree with cold solves to <= 1e-9
// relative throughput, the error-rollback contract, and the schedule /
// packing-pool caching.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "platform/platform.hpp"
#include "platform/random_generator.hpp"
#include "ssb/planner_session.hpp"
#include "ssb/ssb_column_generation.hpp"
#include "ssb/ssb_cutting_plane.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bt {
namespace {

Platform random_platform(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  RandomPlatformConfig config;
  config.num_nodes = n;
  config.density = n <= 12 ? 0.3 : 0.18;
  return generate_random_platform(config, rng);
}

double rel_diff(double a, double b) {
  return std::abs(a - b) / std::max({1.0, std::abs(a), std::abs(b)});
}

TEST(PlannerSession, MatchesBatchSolverOnFirstSolve) {
  // The batch entry points are wrappers over a throwaway session, so this
  // pins the wrapper plumbing: an explicit session with default (batch)
  // options reports the identical solution.
  const Platform p = random_platform(14, 42);
  const SsbSolution batch = solve_ssb_cutting_plane(p);
  PlannerSession session(p);
  const SsbSolution& s = session.solve();
  EXPECT_EQ(s.throughput, batch.throughput);  // bitwise: same code path
  ASSERT_EQ(s.edge_load.size(), batch.edge_load.size());
  for (std::size_t e = 0; e < s.edge_load.size(); ++e) {
    EXPECT_EQ(s.edge_load[e], batch.edge_load[e]) << "arc " << e;
  }
  EXPECT_EQ(session.stats().cutting_solves, 1u);
  // Cached: a second solve does no LP work.
  session.solve();
  EXPECT_EQ(session.stats().cutting_solves, 1u);
}

TEST(PlannerSession, RequiresTwoNodes) {
  Digraph g;
  g.add_node();
  EXPECT_THROW(PlannerSession(Platform(g, {}, 1.0, 0), PlannerSessionOptions{}), Error);
}

// The differential guarantee of the mutation layer: a mutation sequence
// absorbed warmly by the standing masters ends at the same optimum a cold
// solve of the final platform computes, to <= 1e-9 relative throughput.
void run_differential(PortModel port_model, std::uint64_t seed) {
  const Platform p = random_platform(18, seed);
  PlannerSessionOptions options;
  options.cutting.port_model = port_model;
  options.colgen.port_model = port_model;
  options.cold_polish = false;  // the service path: warm polish only
  PlannerSession session(p, options);
  session.solve();

  Rng rng(seed * 31 + 7);
  std::vector<EdgeId> removed;
  for (int step = 0; step < 12; ++step) {
    const int kind = static_cast<int>(rng.uniform_int(0, 3));
    const EdgeId e = static_cast<EdgeId>(rng.index(p.num_edges()));
    switch (kind) {
      case 0:
        session.scale_link_time(e, rng.uniform_real(1.1, 2.5));
        break;
      case 1:
        session.scale_link_time(e, rng.uniform_real(0.4, 0.95));
        break;
      case 2:
        session.set_link_cost(e, p.link_cost(e));  // restore pristine
        break;
      default:
        // Removing risks disconnecting the platform; keep at most two
        // outstanding and restore the oldest first when over.
        if (removed.size() >= 2) {
          const EdgeId back = removed.front();
          removed.erase(removed.begin());
          session.set_link_cost(back, p.link_cost(back));
        }
        session.remove_link(e);
        removed.push_back(e);
        break;
    }
    double warm = 0.0;
    bool disconnected = false;
    try {
      warm = session.solve().throughput;
    } catch (const Error&) {
      // Removals cut the source off: restore them and continue; the
      // rollback contract (masters reset, pools kept) is what lets this
      // session keep going.
      disconnected = true;
      for (EdgeId r : removed) session.set_link_cost(r, p.link_cost(r));
      removed.clear();
      warm = session.solve().throughput;
    }
    const double cold = session.solve_cold().throughput;
    EXPECT_LE(rel_diff(warm, cold), 1e-9)
        << "step " << step << " kind " << kind << " warm " << warm << " cold " << cold
        << (disconnected ? " (after reconnect)" : "");
  }
  EXPECT_GT(session.stats().warm_resolves, 0u);
  EXPECT_GT(session.stats().mutations, 0u);
}

TEST(PlannerSession, DifferentialWarmEqualsColdBidirectional) {
  run_differential(PortModel::kBidirectional, 1234);
  run_differential(PortModel::kBidirectional, 98765);
}

TEST(PlannerSession, DifferentialWarmEqualsColdUnidirectional) {
  run_differential(PortModel::kUnidirectional, 555);
  run_differential(PortModel::kUnidirectional, 31337);
}

TEST(PlannerSession, FailedSolveRollsBackAndSessionStaysUsable) {
  // Regression for the indeterminate-master bug: a solve that throws used
  // to leave the standing masters mid-append; subsequent re-solves
  // continued from that corrupt state.  Now the session rolls back to the
  // pools and the next solve rebuilds.
  const Platform p = random_platform(12, 77);
  PlannerSessionOptions options;
  options.cold_polish = false;
  PlannerSession session(p, options);
  const double tp0 = session.solve().throughput;

  // Cut node w (!= source) off: remove every arc into it.
  const NodeId w = (p.source() + 1) % p.num_nodes();
  for (EdgeId e : p.graph().in_edges(w)) session.remove_link(e);
  EXPECT_THROW(session.solve(), Error);
  EXPECT_GE(session.stats().rollbacks, 1u);

  // The session must remain usable: restore the arcs and re-solve.
  for (EdgeId e : p.graph().in_edges(w)) session.set_link_cost(e, p.link_cost(e));
  const double tp1 = session.solve().throughput;
  EXPECT_LE(rel_diff(tp1, tp0), 1e-9);
  const double cold = session.solve_cold().throughput;
  EXPECT_LE(rel_diff(tp1, cold), 1e-9);
}

TEST(PlannerSession, AddNodeMatchesBatchOnGrownPlatform) {
  const Platform p = random_platform(10, 2024);
  PlannerSession session(p);
  session.solve();

  std::vector<SessionLink> in_links, out_links;
  in_links.push_back({p.source(), LinkCost{0.0, 2e-8}});
  in_links.push_back({(p.source() + 2) % p.num_nodes(), LinkCost{0.0, 4e-8}});
  out_links.push_back({(p.source() + 1) % p.num_nodes(), LinkCost{0.0, 3e-8}});
  const NodeId added = session.add_node(in_links, out_links);
  EXPECT_EQ(added, p.num_nodes());
  EXPECT_EQ(session.platform().num_nodes(), p.num_nodes() + 1);

  const double warm = session.solve().throughput;
  const Platform grown = grow_platform(p, in_links, out_links);
  const SsbSolution batch = solve_ssb_cutting_plane(grown);
  EXPECT_LE(rel_diff(warm, batch.throughput), 1e-9);
}

TEST(PlannerSession, GrowPlatformValidates) {
  const Platform p = random_platform(8, 5);
  EXPECT_THROW(grow_platform(p, {}, {{0, LinkCost{0.0, 1e-8}}}), Error);  // unreachable node
  EXPECT_THROW(grow_platform(p, {{p.num_nodes() + 3, LinkCost{0.0, 1e-8}}}, {}), Error);
  const Platform grown = grow_platform(p, {{0, LinkCost{0.0, 1e-8}}}, {});
  EXPECT_EQ(grown.num_nodes(), p.num_nodes() + 1);
  EXPECT_EQ(grown.num_edges(), p.num_edges() + 1);
  EXPECT_EQ(grown.graph().to(p.num_edges()), p.num_nodes());
}

TEST(PlannerSession, ScheduleIsCachedPerVersionAndTracksThroughput) {
  const Platform p = random_platform(12, 99);
  PlannerSession session(p);
  const PeriodicSchedule& sched0 = session.schedule();
  const double tp = session.throughput();
  // The realized schedule never beats the LP optimum and stays within the
  // synthesis guarantees (see test_sched.cpp for the tight dyadic cases).
  EXPECT_LE(sched0.throughput(), tp * (1.0 + 1e-9));
  EXPECT_GE(sched0.throughput(), tp * 0.45);
  EXPECT_EQ(&session.schedule(), &sched0);  // cached object
  EXPECT_EQ(session.stats().schedules_built, 1u);

  const EdgeId e = 0;
  session.scale_link_time(e, 1.8);
  const PeriodicSchedule& sched1 = session.schedule();
  EXPECT_EQ(session.stats().schedules_built, 2u);
  const double tp1 = session.throughput();
  EXPECT_LE(sched1.throughput(), tp1 * (1.0 + 1e-9));
  EXPECT_GE(sched1.throughput(), tp1 * 0.45);
}

TEST(PlannerSession, PackingPoolSeededResolveMatchesBatch) {
  const Platform p = random_platform(14, 314);
  PlannerSession session(p);
  const SsbPackingSolution& pack0 = session.solve_packing();
  EXPECT_TRUE(pack0.solved);
  EXPECT_EQ(session.stats().packing_solves, 1u);
  session.solve_packing();  // cached
  EXPECT_EQ(session.stats().packing_solves, 1u);

  // Mutate and pool-seeded re-solve; a fresh batch colgen on the mutated
  // platform is the reference.
  Platform mutated = p;
  const EdgeId e = 1;
  LinkCost cost = p.link_cost(e);
  cost.alpha *= 1.6;
  cost.beta *= 1.6;
  mutated.set_link_cost(e, cost);
  session.scale_link_time(e, 1.6);
  const double warm = session.solve_packing().throughput;
  const double batch = solve_ssb_column_generation(mutated).throughput;
  EXPECT_LE(rel_diff(warm, batch), 1e-9);

  // Removing an arc drops pooled trees over it; the re-solve must not
  // route anything across the removed arc.
  session.remove_link(e);
  const SsbPackingSolution& pack2 = session.solve_packing();
  EXPECT_NEAR(pack2.edge_load[e], 0.0, 1e-12);
  for (const PackedTree& tree : pack2.tree_columns) {
    for (EdgeId arc : tree.edges) EXPECT_NE(arc, e);
  }
}

TEST(PlannerSession, StatsCountMutationMachinery) {
  const Platform p = random_platform(10, 404);
  PlannerSessionOptions options;
  options.cold_polish = false;
  PlannerSession session(p, options);
  session.solve();
  session.scale_link_time(0, 1.5);
  session.solve();
  const PlannerSessionStats& stats = session.stats();
  EXPECT_EQ(stats.mutations, 1u);
  EXPECT_GE(stats.kill_rows, 1u);
  EXPECT_GE(stats.replacement_columns, 1u);
  EXPECT_GE(stats.warm_resolves, 1u);
  EXPECT_EQ(stats.rollbacks, 0u);
}

}  // namespace
}  // namespace bt
