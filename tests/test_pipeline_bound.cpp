// Regression tests pinning pipelined_completion_time against the
// discrete-event simulator (satellite of the throughput edge-case fixes).
//
// The closed form fill + (num_slices - 1) * period is an *upper* bound on
// the simulated completion time; its over-estimate is strictly less than
// one pipeline-fill time and vanishes whenever the slowest-filling branch
// contains the bottleneck node.  These tests pin both the exactness cases
// (chain, star) and the documented worst-case gap on an unbalanced tree
// whose fill-critical branch is not the bottleneck branch.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/throughput.hpp"
#include "sim/pipeline_simulator.hpp"
#include "util/error.hpp"

namespace bt {
namespace {

Platform make_platform(std::size_t n,
                       const std::vector<std::tuple<NodeId, NodeId, double>>& arcs) {
  Digraph g(n);
  std::vector<LinkCost> costs;
  for (const auto& [a, b, t] : arcs) {
    g.add_edge(a, b);
    costs.push_back({0.0, t});
  }
  return Platform(std::move(g), std::move(costs), 1.0, 0);
}

BroadcastTree all_arcs_tree(const Platform& p) {
  BroadcastTree tree;
  tree.root = p.source();
  for (EdgeId e = 0; e < p.num_edges(); ++e) tree.edges.push_back(e);
  tree.validate(p);
  return tree;
}

void expect_upper_bound_within_one_fill(const Platform& p, const BroadcastTree& tree,
                                        std::size_t num_slices) {
  const double closed = pipelined_completion_time(p, tree, num_slices);
  const SimResult sim = simulate_pipelined_broadcast(p, tree, num_slices);
  const double fill = sta_makespan(p, tree, p.slice_size(), ChildOrder::kTreeOrder);
  EXPECT_GE(closed, sim.completion_time - 1e-9);         // never optimistic
  EXPECT_LT(closed, sim.completion_time + fill + 1e-9);  // gap < one fill time
}

TEST(PipelineBound, ExactOnChain) {
  const Platform p =
      make_platform(5, {{0, 1, 0.4}, {1, 2, 0.3}, {2, 3, 0.5}, {3, 4, 0.2}});
  const BroadcastTree chain = all_arcs_tree(p);
  for (std::size_t slices : {1u, 2u, 7u, 40u}) {
    const SimResult sim = simulate_pipelined_broadcast(p, chain, slices);
    EXPECT_NEAR(pipelined_completion_time(p, chain, slices), sim.completion_time, 1e-9)
        << slices;
  }
}

TEST(PipelineBound, ExactOnStar) {
  const Platform p =
      make_platform(4, {{0, 1, 0.5}, {0, 2, 0.8}, {0, 3, 0.3}});
  const BroadcastTree star = all_arcs_tree(p);
  for (std::size_t slices : {1u, 3u, 25u}) {
    const SimResult sim = simulate_pipelined_broadcast(p, star, slices);
    EXPECT_NEAR(pipelined_completion_time(p, star, slices), sim.completion_time, 1e-9)
        << slices;
  }
}

TEST(PipelineBound, UnbalancedTreeGapIsPositiveButUnderOneFill) {
  // Branch A: a 15-hop chain of cheap arcs -- it decides the pipeline fill
  // but sustains a small per-node period.  Branch B: a 3-child star behind
  // node 16 -- the bottleneck (period 3.0) but quick to fill.  The closed
  // form charges the last slice to the fill-critical branch, so it
  // over-estimates by the fill difference between the branches.
  std::vector<std::tuple<NodeId, NodeId, double>> arcs;
  for (NodeId v = 0; v < 15; ++v) arcs.push_back({v, v + 1, 0.3});
  arcs.push_back({0, 16, 0.3});
  arcs.push_back({16, 17, 1.0});
  arcs.push_back({16, 18, 1.0});
  arcs.push_back({16, 19, 1.0});
  const Platform p = make_platform(20, arcs);
  const BroadcastTree tree = all_arcs_tree(p);

  const std::size_t slices = 30;
  const double closed = pipelined_completion_time(p, tree, slices);
  const SimResult sim = simulate_pipelined_broadcast(p, tree, slices);
  const double fill = sta_makespan(p, tree, p.slice_size(), ChildOrder::kTreeOrder);
  EXPECT_GT(closed, sim.completion_time + 1e-9);  // the bound is not tight here
  EXPECT_LT(closed - sim.completion_time, fill);  // but off by less than one fill
  expect_upper_bound_within_one_fill(p, tree, slices);
}

TEST(PipelineBound, UpperBoundHoldsAcrossShapesAndSliceCounts) {
  const Platform chainy = make_platform(
      6, {{0, 1, 0.2}, {1, 2, 0.7}, {1, 3, 0.1}, {3, 4, 0.9}, {3, 5, 0.4}});
  const BroadcastTree tree = all_arcs_tree(chainy);
  for (std::size_t slices : {1u, 2u, 5u, 17u, 64u}) {
    expect_upper_bound_within_one_fill(chainy, tree, slices);
  }
}

TEST(PipelineBound, SingleSliceEqualsTreeOrderMakespan) {
  const Platform p =
      make_platform(4, {{0, 1, 0.5}, {1, 2, 0.8}, {0, 3, 0.3}});
  const BroadcastTree tree = all_arcs_tree(p);
  EXPECT_NEAR(pipelined_completion_time(p, tree, 1),
              sta_makespan(p, tree, p.slice_size(), ChildOrder::kTreeOrder), 1e-12);
}

TEST(PipelineBound, RejectsZeroSlices) {
  const Platform p = make_platform(2, {{0, 1, 0.5}});
  const BroadcastTree tree = all_arcs_tree(p);
  EXPECT_THROW(pipelined_completion_time(p, tree, 0), Error);
}

}  // namespace
}  // namespace bt
